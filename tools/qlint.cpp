// qlint — repo-specific static checks for the qcongest codebase.
//
//   qlint [--root DIR]... [--allow FILE] [--sarif FILE] [--quiet] [--list-rules]
//
// Scans every .cpp/.hpp under the given roots (default: src) for the
// determinism, accounting, and service-safety contracts the general-purpose
// tools cannot express — banned randomness sources, iteration over unordered
// containers, blocking calls in the poll() reactor, locks held across pool
// hand-offs, unchecked narrowing of wire-supplied values, swallowed
// exceptions. See src/check/lint.hpp for the rule definitions and
// suppression syntax. Exit status: 0 clean, 1 violations found, 2 usage
// error.
//
// Examples:
//   qlint --root src --root tools --root bench --root tests
//         --allow tools/qlint_allow.txt --sarif qlint.sarif

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/check/lint.hpp"
#include "src/check/sarif.hpp"

using qcongest::check::LintConfig;
using qcongest::check::LintResult;

namespace {

void print_rules() {
  std::fputs("rules:\n", stdout);
  for (const auto& rule : qcongest::check::rule_infos()) {
    std::printf("  %-22s %s\n", rule.id, rule.summary);
  }
  std::fputs(
      "suppress with `// qlint-allow(rule): reason` on the flagged line, or\n"
      "an allowlist entry `rule:path-substring[:line-substring]  # reason` —\n"
      "a suppression without a written reason does not suppress\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string allow_file;
  std::string sarif_file;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--list-rules") {
      print_rules();
      return 0;
    }
    if (flag == "--quiet") {
      quiet = true;
      continue;
    }
    if ((flag == "--root" || flag == "--allow" || flag == "--sarif") &&
        i + 1 >= argc) {
      std::fprintf(stderr, "qlint: %s needs a value\n", flag.c_str());
      return 2;
    }
    if (flag == "--root") {
      roots.push_back(argv[++i]);
    } else if (flag == "--allow") {
      allow_file = argv[++i];
    } else if (flag == "--sarif") {
      sarif_file = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: qlint [--root DIR]... [--allow FILE] [--sarif FILE] "
                   "[--quiet] [--list-rules]\n");
      return 2;
    }
  }
  if (roots.empty()) roots.push_back("src");

  LintConfig config;
  try {
    if (!allow_file.empty()) config = qcongest::check::load_allowlist(allow_file);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qlint: %s\n", e.what());
    return 2;
  }

  // One lint_trees call over all roots so the cross-TU symbol index spans
  // them: a tests/ TU sees unordered members of the src/ headers it includes.
  LintResult result;
  try {
    result = qcongest::check::lint_trees(roots, config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qlint: %s\n", e.what());
    return 2;
  }

  for (const auto& diag : result.diagnostics) {
    std::printf("%s\n", diag.to_string().c_str());
    if (!quiet) std::printf("    %s\n", diag.line_text.c_str());
  }

  if (!sarif_file.empty()) {
    std::ofstream out(sarif_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "qlint: cannot write %s\n", sarif_file.c_str());
      return 2;
    }
    out << qcongest::check::render_sarif(result.diagnostics) << "\n";
  }

  if (result.diagnostics.empty()) {
    std::printf("qlint: %zu files clean\n", result.files_scanned);
    return 0;
  }
  std::fprintf(stderr, "qlint: %zu violation(s) in %zu files scanned\n",
               result.diagnostics.size(), result.files_scanned);
  return 1;
}
