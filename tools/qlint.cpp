// qlint — repo-specific static checks for the qcongest codebase.
//
//   qlint [--root DIR]... [--allow FILE] [--quiet] [--list-rules]
//
// Scans every .cpp/.hpp under the given roots (default: src) for the
// determinism and accounting contracts the general-purpose tools cannot
// express — banned randomness sources, iteration over unordered containers,
// exact float equality in quantum code, discarded RunResults in framework
// phases. See src/check/lint.hpp for the rule definitions and suppression
// syntax. Exit status: 0 clean, 1 violations found, 2 usage error.
//
// Examples:
//   qlint --root src --allow tools/qlint_allow.txt
//   qlint --root src --root tools --quiet

#include <cstdio>
#include <string>
#include <vector>

#include "src/check/lint.hpp"

using qcongest::check::LintConfig;
using qcongest::check::LintResult;

namespace {

const char* kRuleHelp =
    "rules:\n"
    "  banned-random      rand()/srand()/std::random_device/time(NULL) outside\n"
    "                     src/util — randomness must flow through util::Rng\n"
    "  unordered-iter     iteration over std::unordered_{map,set}: visit order\n"
    "                     is implementation-defined (protocol nondeterminism)\n"
    "  float-equal        ==/!= against a float literal in src/quantum, src/query\n"
    "  runresult-discard  framework phase called without accumulating its cost\n"
    "suppress with `// qlint-allow(rule): reason` or an allowlist entry\n"
    "`rule:path-substring[:line-substring]`\n";

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string allow_file;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--list-rules") {
      std::fputs(kRuleHelp, stdout);
      return 0;
    }
    if (flag == "--quiet") {
      quiet = true;
      continue;
    }
    if ((flag == "--root" || flag == "--allow") && i + 1 >= argc) {
      std::fprintf(stderr, "qlint: %s needs a value\n", flag.c_str());
      return 2;
    }
    if (flag == "--root") {
      roots.push_back(argv[++i]);
    } else if (flag == "--allow") {
      allow_file = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: qlint [--root DIR]... [--allow FILE] [--quiet] "
                   "[--list-rules]\n");
      return 2;
    }
  }
  if (roots.empty()) roots.push_back("src");

  LintConfig config;
  try {
    if (!allow_file.empty()) config = qcongest::check::load_allowlist(allow_file);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qlint: %s\n", e.what());
    return 2;
  }

  std::size_t files = 0;
  std::size_t violations = 0;
  for (const std::string& root : roots) {
    LintResult result;
    try {
      result = qcongest::check::lint_tree(root, config);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "qlint: %s\n", e.what());
      return 2;
    }
    files += result.files_scanned;
    violations += result.diagnostics.size();
    for (const auto& diag : result.diagnostics) {
      std::printf("%s\n", diag.to_string().c_str());
      if (!quiet) std::printf("    %s\n", diag.line_text.c_str());
    }
  }

  if (violations == 0) {
    std::printf("qlint: %zu files clean\n", files);
    return 0;
  }
  std::fprintf(stderr, "qlint: %zu violation(s) in %zu files scanned\n", violations,
               files);
  return 1;
}
