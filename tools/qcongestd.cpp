// qcongestd: the fault-tolerant multi-tenant simulation service.
//
// A single binary that listens on a loopback TCP port, accepts job frames
// (app, topology, fault plan, seed, threads, deadline) over the
// length-prefixed wire protocol in src/serve/frame.hpp, runs each job on a
// shared util::ThreadPool, and streams back obs::RunReport JSON documents.
//
//   qcongestd --port 7143 --workers 4 --max-pending 32
//   qcongestd --port 0 --port-file /tmp/qcongestd.port   # ephemeral port
//
// Robustness properties (unit-tested in tests/serve_*_test.cpp, and
// exercised end to end by scripts/service_smoke.sh):
//   - bounded admission queue with structured load shedding;
//   - per-job watchdog deadlines: hung protocols become error reports;
//   - per-job exception isolation: a throwing job never kills the daemon;
//   - strict frame validation: garbage tears down one connection only;
//   - byte-identical reports for identical (job, seed) at any load.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/serve/server.hpp"
#include "src/util/env.hpp"

namespace {

qcongest::serve::Server* g_server = nullptr;

void handle_signal(int) {
  // request_stop only stores an atomic and write()s the self-pipe, both
  // async-signal-safe; the reactor does the actual teardown.
  if (g_server != nullptr) g_server->request_stop();
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port <n>            TCP port to bind (default 0 = ephemeral)\n"
      "  --bind <addr>         bind address (default 127.0.0.1)\n"
      "  --workers <n>         job worker threads (default 4)\n"
      "  --max-pending <n>     admission bound before shedding (default 32)\n"
      "  --max-connections <n> concurrent connections (default 64)\n"
      "  --max-nodes <n>       per-job node cap (default 256)\n"
      "  --deadline-rounds <n> default watchdog deadline (default 200000)\n"
      "  --cache-dir <path>    content-addressed result cache root\n"
      "                        (default $QCONGEST_CACHE_DIR; empty = off)\n"
      "  --journal-dir <path>  write-ahead job journal root (empty = off);\n"
      "                        on restart the journal is replayed: completed\n"
      "                        jobs re-serve from the cache, incomplete ones\n"
      "                        re-enqueue in journal order\n"
      "  --journal-fsync       fsync every journal record (power-loss\n"
      "                        durability; default off = survives SIGKILL)\n"
      "  --stats-json <path>   write final server/service/journal counters\n"
      "                        as JSON on clean shutdown\n"
      "  --port-file <path>    write the bound port to this file\n",
      argv0);
}

bool parse_size(const char* text, std::size_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  qcongest::serve::ServerConfig config;
  std::string port_file;
  std::string stats_json_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qcongestd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    std::size_t value = 0;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--port") {
      if (!parse_size(next(), &value) || value > 65535) {
        std::fprintf(stderr, "qcongestd: bad --port\n");
        return 2;
      }
      config.port = static_cast<std::uint16_t>(value);
    } else if (arg == "--bind") {
      config.bind_address = next();
    } else if (arg == "--workers") {
      if (!parse_size(next(), &value) || value == 0) {
        std::fprintf(stderr, "qcongestd: bad --workers\n");
        return 2;
      }
      config.service.workers = value;
    } else if (arg == "--max-pending") {
      if (!parse_size(next(), &value) || value == 0) {
        std::fprintf(stderr, "qcongestd: bad --max-pending\n");
        return 2;
      }
      config.service.max_pending = value;
    } else if (arg == "--max-connections") {
      if (!parse_size(next(), &value) || value == 0) {
        std::fprintf(stderr, "qcongestd: bad --max-connections\n");
        return 2;
      }
      config.max_connections = value;
    } else if (arg == "--max-nodes") {
      if (!parse_size(next(), &value) || value < 2) {
        std::fprintf(stderr, "qcongestd: bad --max-nodes\n");
        return 2;
      }
      config.service.limits.max_nodes = value;
    } else if (arg == "--deadline-rounds") {
      if (!parse_size(next(), &value) || value == 0) {
        std::fprintf(stderr, "qcongestd: bad --deadline-rounds\n");
        return 2;
      }
      config.service.default_deadline_rounds = value;
    } else if (arg == "--cache-dir") {
      config.service.cache_dir = next();
    } else if (arg == "--journal-dir") {
      config.service.journal_dir = next();
    } else if (arg == "--journal-fsync") {
      config.service.journal_fsync = true;
    } else if (arg == "--stats-json") {
      stats_json_file = next();
    } else if (arg == "--port-file") {
      port_file = next();
    } else {
      std::fprintf(stderr, "qcongestd: unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // --cache-dir wins; otherwise the strict QCONGEST_CACHE_DIR parse decides
  // (a malformed value disables caching with a visible reason, it never
  // half-configures the store).
  if (config.service.cache_dir.empty()) {
    std::string warning;
    config.service.cache_dir = qcongest::util::env_cache_dir(
        std::getenv("QCONGEST_CACHE_DIR"), &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "qcongestd: QCONGEST_CACHE_DIR %s\n", warning.c_str());
    }
  }

  // Durability without a result cache still replays incomplete jobs, but
  // completed ones lose their cheap re-serve path; say so once up front.
  if (!config.service.journal_dir.empty() && config.service.cache_dir.empty()) {
    std::fprintf(stderr,
                 "qcongestd: --journal-dir without --cache-dir: replayed "
                 "completed jobs will re-run instead of re-serving from the "
                 "cache\n");
  }

  qcongest::serve::Server server(config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "qcongestd: %s\n", error.c_str());
    return 1;
  }

  // Constructing the server replayed the journal (if any); surface what
  // the recovery found before the first new job arrives, so restart logs
  // carry the durability story.
  if (!config.service.journal_dir.empty()) {
    const auto& recovery = server.service().recovery();
    std::printf(
        "qcongestd: journal recovered incomplete=%zu completed=%zu "
        "aborted=%zu records=%zu segments=%zu corrupt=%zu torn_tails=%zu "
        "diagnostics=%zu\n",
        recovery.incomplete.size(), recovery.completed_jobs,
        recovery.aborted_jobs, recovery.records, recovery.segments,
        recovery.corrupt_records, recovery.torn_tails,
        recovery.diagnostics.size());
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("qcongestd: listening on %s:%u (workers=%zu max_pending=%zu)\n",
              config.bind_address.c_str(), unsigned{server.port()},
              config.service.workers, config.service.max_pending);
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "qcongestd: cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", unsigned{server.port()});
    std::fclose(f);
  }

  server.run();
  g_server = nullptr;

  const auto server_stats = server.stats();
  const auto service_stats = server.service().stats();
  std::printf(
      "qcongestd: shut down cleanly "
      "(connections=%zu shed_connections=%zu frames=%zu protocol_errors=%zu "
      "jobs=%zu completed=%zu shed_jobs=%zu invalid=%zu "
      "cache_hits=%zu cache_misses=%zu "
      "coalesced=%zu recovered=%zu recovery_aborted=%zu)\n",
      server_stats.connections_accepted, server_stats.connections_rejected,
      server_stats.frames_received, server_stats.protocol_errors,
      service_stats.submitted, service_stats.completed,
      service_stats.rejected_overload, service_stats.invalid_specs,
      service_stats.cache_hits, service_stats.cache_misses,
      service_stats.coalesced, service_stats.recovered,
      service_stats.recovery_aborted);
  if (const auto* journal = server.service().journal()) {
    const auto journal_stats = journal->stats();
    std::printf(
        "qcongestd: journal (appends=%zu dropped=%zu io_errors=%zu "
        "rotations=%zu compactions=%zu degraded=%d)\n",
        journal_stats.appends, journal_stats.dropped, journal_stats.io_errors,
        journal_stats.rotations, journal_stats.compactions,
        int{journal_stats.degraded});
  }

  if (!stats_json_file.empty()) {
    qcongest::obs::MetricsRegistry registry;
    registry.count("server.connections_accepted",
                   server_stats.connections_accepted);
    registry.count("server.connections_rejected",
                   server_stats.connections_rejected);
    registry.count("server.frames_received", server_stats.frames_received);
    registry.count("server.protocol_errors", server_stats.protocol_errors);
    registry.count("service.submitted", service_stats.submitted);
    registry.count("service.admitted", service_stats.admitted);
    registry.count("service.completed", service_stats.completed);
    registry.count("service.rejected_overload", service_stats.rejected_overload);
    registry.count("service.invalid_specs", service_stats.invalid_specs);
    registry.count("service.cache_hits", service_stats.cache_hits);
    registry.count("service.cache_misses", service_stats.cache_misses);
    registry.count("service.coalesced", service_stats.coalesced);
    registry.count("service.recovered", service_stats.recovered);
    registry.count("service.recovery_aborted", service_stats.recovery_aborted);
    if (const auto* journal = server.service().journal()) {
      journal->export_metrics(registry);
      const auto& recovery = server.service().recovery();
      registry.count("recovery.incomplete", recovery.incomplete.size());
      registry.count("recovery.completed_jobs", recovery.completed_jobs);
      registry.count("recovery.aborted_jobs", recovery.aborted_jobs);
      registry.count("recovery.records", recovery.records);
      registry.count("recovery.segments", recovery.segments);
      registry.count("recovery.corrupt_records", recovery.corrupt_records);
      registry.count("recovery.torn_tails", recovery.torn_tails);
    }
    std::FILE* f = std::fopen(stats_json_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "qcongestd: cannot write %s\n",
                   stats_json_file.c_str());
      return 1;
    }
    const std::string doc = registry.to_json();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}
