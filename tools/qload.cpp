// qload: load generator and correctness client for qcongestd.
//
// Drives a running daemon with a stream of job specs and checks the
// service-level contracts end to end:
//   - every submit gets exactly one structured reply (ok/invalid/rejected);
//   - overload shedding is graceful: rejected jobs carry a retry-after
//     hint and succeed when retried with capped, deterministically
//     jittered backoff (the same jitter discipline as the reliable
//     transport's RTO, see src/serve/backoff.hpp);
//   - identical (job, seed) pairs produce byte-identical reports at
//     thread budgets 1 and 8, under whatever load the rest of the run
//     puts on the server (--check-determinism).
//
//   qload --port 7143 --jobs 24 --apps bfs,leader --nodes 24
//   qload --port-file /tmp/p --jobs 64 --burst --expect-shed
//   qload --port 7143 --check-determinism --shutdown
//   qload --port 7143 --jobs 32 --reconnect --dump-dir /tmp/reports
//
// With --reconnect a lost connection (daemon crash, restart) is not an
// error: qload reconnects with bounded retries and re-submits every
// unacknowledged spec. Resubmission is idempotent end to end — the server
// keys jobs by their content-derived cache key, so the retried job either
// attaches to the original run, re-serves from the result cache, or
// re-runs to the same bytes. Used by scripts/crash_smoke.sh to prove the
// journal's crash-restart contract.
//
// Exit status: 0 when every check passed, 1 otherwise.

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/serve/backoff.hpp"
#include "src/serve/frame.hpp"

namespace {

using qcongest::serve::Frame;
using qcongest::serve::FrameReader;
using qcongest::serve::FrameType;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string port_file;
  std::size_t jobs = 8;
  std::vector<std::string> apps = {"bfs", "leader", "convergecast"};
  std::string graph = "tree";
  std::size_t nodes = 16;
  std::uint64_t seed = 1;
  std::size_t threads = 2;
  std::size_t deadline_rounds = 0;  // 0 = server default
  double drop = 0.0;
  bool burst = false;        // fire all submits before reading any reply
  bool expect_shed = false;  // fail unless at least one overload rejection
  bool check_determinism = false;
  bool shutdown_server = false;
  std::size_t max_retries = 8;
  int timeout_ms = 60000;
  /// Survive lost connections: reconnect (bounded retries, fixed delay)
  /// and re-submit every spec that never got its reply.
  bool reconnect = false;
  std::size_t reconnect_attempts = 120;
  std::uint64_t reconnect_delay_ms = 250;
  /// Write each ok reply body to <dump_dir>/<id>.json (byte-identity
  /// audits across runs; crash_smoke compares these with cmp).
  std::string dump_dir;
};

void sleep_ms(std::uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// Blocking framed client over one TCP connection.
class Client {
 public:
  Client() : reader_(qcongest::serve::kMaxPayload) {}
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect(const std::string& host, std::uint16_t port,
               std::string* error) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      *error = "bad host " + host;
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = host + ":" + std::to_string(port) + ": " + std::strerror(errno);
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool send_frame(FrameType type, std::string_view payload,
                  std::string* error) {
    std::string wire = qcongest::serve::encode_frame(type, payload);
    std::size_t sent = 0;
    while (sent < wire.size()) {
      ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                         MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    return true;
  }

  /// Block until one full frame arrives (or timeout/EOF/framing error).
  bool recv_frame(Frame* out, int timeout_ms, std::string* error) {
    while (true) {
      FrameReader::Result result = reader_.next(out);
      if (result == FrameReader::Result::kFrame) return true;
      if (result == FrameReader::Result::kError) {
        *error = "framing: " + std::string(reader_.error());
        return false;
      }
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready == 0) {
        *error = "timed out waiting for a reply (server hung?)";
        return false;
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        *error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      char buf[16384];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        continue;
      }
      if (n == 0) {
        *error = "server closed the connection";
        return false;
      }
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
  }

  /// Drop the connection and all buffered frame state, ready for a fresh
  /// connect() — the reconnect path after a daemon crash.
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    reader_ = FrameReader(qcongest::serve::kMaxPayload);
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

/// A parsed reply payload: `key=value` header lines, then (for ok) a blank
/// line and the report JSON.
struct Reply {
  std::string id;
  std::string status;  // ok | invalid | rejected
  std::string reason;  // rejected: overloaded | shutting_down
  std::string parse_error;
  std::uint64_t retry_after_ms = 0;
  std::string body;  // report JSON (ok only)
};

Reply parse_reply(std::string_view payload) {
  Reply reply;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      reply.body = std::string(payload.substr(pos));
      break;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    std::string_view key = line.substr(0, eq);
    std::string_view value = line.substr(eq + 1);
    if (key == "id") {
      reply.id = std::string(value);
    } else if (key == "status") {
      reply.status = std::string(value);
    } else if (key == "reason" || key == "error") {
      reply.reason = std::string(value);
    } else if (key == "retry_after_ms") {
      reply.retry_after_ms = std::strtoull(std::string(value).c_str(),
                                           nullptr, 10);
    }
  }
  return reply;
}

std::string make_spec(const Options& opt, const std::string& id,
                      const std::string& app, std::uint64_t seed,
                      std::size_t threads) {
  std::string spec;
  spec += "id=" + id + "\n";
  spec += "app=" + app + "\n";
  spec += "graph=" + opt.graph + "\n";
  spec += "nodes=" + std::to_string(opt.nodes) + "\n";
  spec += "seed=" + std::to_string(seed) + "\n";
  spec += "threads=" + std::to_string(threads) + "\n";
  if (opt.deadline_rounds > 0) {
    spec += "deadline_rounds=" + std::to_string(opt.deadline_rounds) + "\n";
  }
  if (opt.drop > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "drop=%.6f", opt.drop);
    spec += std::string(buf) + "\n";
  }
  return spec;
}

struct Tally {
  std::size_t ok = 0;
  std::size_t invalid = 0;
  std::size_t shed = 0;      // overload rejections observed (pre-retry)
  std::size_t retried = 0;   // submits re-sent after a shed
  std::size_t failed = 0;    // gave up: retries exhausted or hard error
  std::size_t reconnects = 0;  // connections re-established after a loss
};

/// (Re)connect, with bounded retries when --reconnect is on: a restarting
/// daemon needs a moment between SIGKILL and the fresh bind.
bool connect_with_retry(Client& client, const Options& opt,
                        std::string* error) {
  const std::size_t attempts = opt.reconnect ? opt.reconnect_attempts : 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    client.reset();
    if (client.connect(opt.host, opt.port, error)) return true;
    if (attempt + 1 < attempts) sleep_ms(opt.reconnect_delay_ms);
  }
  return false;
}

/// Submit one spec, retrying shed jobs with capped jittered backoff. The
/// jitter stream is the job index, so a burst of shed clients spreads out
/// deterministically instead of re-arriving in lockstep. With --reconnect
/// a transport failure (crash, restart, timeout) additionally reconnects
/// and re-submits: safe because the server dedupes on the spec's cache
/// key, so the retry can only yield the same bytes.
bool submit_with_retry(Client& client, const Options& opt,
                       const std::string& spec, std::uint64_t stream,
                       Reply* out, Tally* tally, std::string* error) {
  qcongest::serve::BackoffParams backoff;
  backoff.seed = opt.seed;
  std::size_t transport_failures = 0;
  for (std::uint32_t attempt = 0;;) {
    Frame frame;
    const bool exchanged = client.send_frame(FrameType::kSubmit, spec, error) &&
                           client.recv_frame(&frame, opt.timeout_ms, error);
    if (!exchanged) {
      if (!opt.reconnect) return false;
      if (++transport_failures > 10) {
        *error = "too many transport failures, last: " + *error;
        return false;
      }
      if (!connect_with_retry(client, opt, error)) return false;
      ++tally->reconnects;
      continue;  // idempotent resubmission of the same spec
    }
    if (frame.type == FrameType::kError) {
      *error = "server error: " + frame.payload;
      return false;
    }
    *out = parse_reply(frame.payload);
    if (out->status != "rejected" || out->reason != "overloaded") return true;
    ++tally->shed;
    if (attempt >= opt.max_retries) {
      *error = "retries exhausted (still overloaded)";
      return false;
    }
    std::uint64_t delay =
        qcongest::serve::backoff_delay_ms(backoff, stream, attempt);
    if (out->retry_after_ms > delay) delay = out->retry_after_ms;
    sleep_ms(delay);
    ++tally->retried;
    ++attempt;
  }
}

/// Persist an ok reply's report for byte-identity audits across runs.
void dump_reply(const Options& opt, const Reply& reply) {
  if (opt.dump_dir.empty() || reply.status != "ok" || reply.id.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(opt.dump_dir, ec);
  std::ofstream out(opt.dump_dir + "/" + reply.id + ".json",
                    std::ios::binary | std::ios::trunc);
  out << reply.body;
}

void count_reply(const Options& opt, const Reply& reply, Tally* tally) {
  if (reply.status == "ok") {
    ++tally->ok;
    dump_reply(opt, reply);
  } else if (reply.status == "invalid") {
    ++tally->invalid;
  } else {
    ++tally->failed;
  }
}

/// Byte-compare report bodies for the same (job, seed) at threads 1 vs 8.
bool run_determinism_check(const Options& opt, Tally* tally) {
  bool all_equal = true;
  for (std::size_t i = 0; i < opt.apps.size(); ++i) {
    const std::string& app = opt.apps[i];
    const std::uint64_t seed = opt.seed + i;
    std::string bodies[2];
    const std::size_t budgets[2] = {1, 8};
    for (int side = 0; side < 2; ++side) {
      // Fresh connection per probe: determinism must hold across
      // connections, not just within one.
      Client client;
      std::string error;
      if (!client.connect(opt.host, opt.port, &error)) {
        std::fprintf(stderr, "qload: determinism probe connect: %s\n",
                     error.c_str());
        return false;
      }
      const std::string id =
          "det-" + app + "-t" + std::to_string(budgets[side]);
      const std::string spec =
          make_spec(opt, id, app, seed, budgets[side]);
      Reply reply;
      if (!submit_with_retry(client, opt, spec, /*stream=*/1000 + i, &reply,
                             tally, &error)) {
        std::fprintf(stderr, "qload: determinism probe %s: %s\n", id.c_str(),
                     error.c_str());
        return false;
      }
      if (reply.status != "ok") {
        std::fprintf(stderr, "qload: determinism probe %s: status=%s %s\n",
                     id.c_str(), reply.status.c_str(), reply.reason.c_str());
        return false;
      }
      count_reply(opt, reply, tally);
      bodies[side] = reply.body;
    }
    if (bodies[0] != bodies[1]) {
      std::fprintf(stderr,
                   "qload: DETERMINISM VIOLATION: app=%s seed=%llu report "
                   "differs between threads=1 (%zu bytes) and threads=8 "
                   "(%zu bytes)\n",
                   app.c_str(), static_cast<unsigned long long>(seed),
                   bodies[0].size(), bodies[1].size());
      all_equal = false;
    } else {
      std::printf("qload: determinism ok: app=%s seed=%llu (%zu bytes)\n",
                  app.c_str(), static_cast<unsigned long long>(seed),
                  bodies[0].size());
    }
  }
  return all_equal;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host <addr>          server address (default 127.0.0.1)\n"
      "  --port <n>             server port (or --port-file)\n"
      "  --port-file <path>     read the port from this file\n"
      "  --jobs <n>             jobs to submit (default 8)\n"
      "  --apps <a,b,c>         app rotation (default bfs,leader,convergecast)\n"
      "  --graph <family>       topology family (default tree)\n"
      "  --nodes <n>            nodes per job (default 16)\n"
      "  --seed <n>             base seed; job j uses seed+j (default 1)\n"
      "  --threads <n>          engine threads per job (default 2)\n"
      "  --deadline <rounds>    per-job round deadline (default: server's)\n"
      "  --drop <p>             link drop probability (default 0)\n"
      "  --burst                fire all submits before reading replies\n"
      "  --expect-shed          fail unless overload shedding was observed\n"
      "  --check-determinism    byte-compare reports at threads 1 vs 8\n"
      "  --max-retries <n>      retries per shed job (default 8)\n"
      "  --timeout-ms <n>       per-reply timeout (default 60000)\n"
      "  --reconnect            survive lost connections: reconnect and\n"
      "                         re-submit unacknowledged specs (idempotent)\n"
      "  --dump-dir <path>      write each ok report to <path>/<id>.json\n"
      "  --shutdown             send a shutdown frame when done\n",
      argv0);
}

bool parse_u64_arg(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    if (comma > pos) out.push_back(text.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qload: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t value = 0;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      if (!parse_u64_arg(next(), &value) || value == 0 || value > 65535) {
        std::fprintf(stderr, "qload: bad --port\n");
        return 2;
      }
      opt.port = static_cast<std::uint16_t>(value);
    } else if (arg == "--port-file") {
      opt.port_file = next();
    } else if (arg == "--jobs") {
      if (!parse_u64_arg(next(), &value) || value == 0) {
        std::fprintf(stderr, "qload: bad --jobs\n");
        return 2;
      }
      opt.jobs = static_cast<std::size_t>(value);
    } else if (arg == "--apps") {
      opt.apps = split_csv(next());
      if (opt.apps.empty()) {
        std::fprintf(stderr, "qload: bad --apps\n");
        return 2;
      }
    } else if (arg == "--graph") {
      opt.graph = next();
    } else if (arg == "--nodes") {
      if (!parse_u64_arg(next(), &value) || value < 2) {
        std::fprintf(stderr, "qload: bad --nodes\n");
        return 2;
      }
      opt.nodes = static_cast<std::size_t>(value);
    } else if (arg == "--seed") {
      if (!parse_u64_arg(next(), &value)) {
        std::fprintf(stderr, "qload: bad --seed\n");
        return 2;
      }
      opt.seed = value;
    } else if (arg == "--threads") {
      if (!parse_u64_arg(next(), &value) || value == 0) {
        std::fprintf(stderr, "qload: bad --threads\n");
        return 2;
      }
      opt.threads = static_cast<std::size_t>(value);
    } else if (arg == "--deadline") {
      if (!parse_u64_arg(next(), &value)) {
        std::fprintf(stderr, "qload: bad --deadline\n");
        return 2;
      }
      opt.deadline_rounds = static_cast<std::size_t>(value);
    } else if (arg == "--drop") {
      opt.drop = std::strtod(next(), nullptr);
      if (opt.drop < 0.0 || opt.drop > 1.0) {
        std::fprintf(stderr, "qload: bad --drop\n");
        return 2;
      }
    } else if (arg == "--burst") {
      opt.burst = true;
    } else if (arg == "--expect-shed") {
      opt.expect_shed = true;
    } else if (arg == "--check-determinism") {
      opt.check_determinism = true;
    } else if (arg == "--max-retries") {
      if (!parse_u64_arg(next(), &value)) {
        std::fprintf(stderr, "qload: bad --max-retries\n");
        return 2;
      }
      opt.max_retries = static_cast<std::size_t>(value);
    } else if (arg == "--timeout-ms") {
      // Bound before the int cast: an hour is already absurd for a frame
      // round-trip, and anything past INT_MAX would wrap negative.
      if (!parse_u64_arg(next(), &value) || value == 0 || value > 3600000) {
        std::fprintf(stderr, "qload: bad --timeout-ms (want 1..3600000)\n");
        return 2;
      }
      opt.timeout_ms = static_cast<int>(value);
    } else if (arg == "--reconnect") {
      opt.reconnect = true;
    } else if (arg == "--dump-dir") {
      opt.dump_dir = next();
    } else if (arg == "--shutdown") {
      opt.shutdown_server = true;
    } else {
      std::fprintf(stderr, "qload: unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (!opt.port_file.empty()) {
    std::FILE* f = std::fopen(opt.port_file.c_str(), "r");
    unsigned port = 0;
    if (f == nullptr || std::fscanf(f, "%u", &port) != 1 || port == 0 ||
        port > 65535) {
      std::fprintf(stderr, "qload: cannot read a port from %s\n",
                   opt.port_file.c_str());
      if (f != nullptr) std::fclose(f);
      return 2;
    }
    std::fclose(f);
    opt.port = static_cast<std::uint16_t>(port);
  }
  if (opt.port == 0) {
    std::fprintf(stderr, "qload: --port or --port-file is required\n");
    return 2;
  }

  Tally tally;
  bool all_ok = true;
  std::string error;

  if (opt.burst) {
    // One connection, all submits in flight at once — the overload probe
    // (and, under --reconnect, the crash probe: a daemon SIGKILLed with
    // this burst in flight must answer every job after its restart).
    Client client;
    if (!connect_with_retry(client, opt, &error)) {
      std::fprintf(stderr, "qload: connect: %s\n", error.c_str());
      return 1;
    }
    // Every spec stays in this map until its reply is read; whatever
    // remains after the burst — shed, unacknowledged, or never sent — is
    // re-submitted in the second pass.
    std::map<std::string, std::string> outstanding;  // id -> spec
    bool severed = false;
    for (std::size_t j = 0; j < opt.jobs; ++j) {
      const std::string id = "burst-" + std::to_string(j);
      const std::string spec = make_spec(
          opt, id, opt.apps[j % opt.apps.size()], opt.seed + j, opt.threads);
      outstanding.emplace(id, spec);
      if (severed) continue;  // resubmitted below
      if (!client.send_frame(FrameType::kSubmit, spec, &error)) {
        if (!opt.reconnect) {
          std::fprintf(stderr, "qload: %s\n", error.c_str());
          return 1;
        }
        std::fprintf(stderr, "qload: burst send lost (%s), will resubmit\n",
                     error.c_str());
        severed = true;
      }
    }
    for (std::size_t j = 0; j < opt.jobs && !severed && !outstanding.empty();
         ++j) {
      Frame frame;
      if (!client.recv_frame(&frame, opt.timeout_ms, &error)) {
        if (!opt.reconnect) {
          std::fprintf(stderr, "qload: burst reply %zu/%zu: %s\n", j + 1,
                       opt.jobs, error.c_str());
          return 1;
        }
        std::fprintf(stderr,
                     "qload: burst reply %zu/%zu lost (%s), will resubmit "
                     "%zu outstanding\n",
                     j + 1, opt.jobs, error.c_str(), outstanding.size());
        severed = true;
        break;
      }
      Reply reply = parse_reply(frame.payload);
      if (reply.status == "rejected" && reply.reason == "overloaded") {
        ++tally.shed;
        continue;  // retried below, off the hot burst
      }
      count_reply(opt, reply, &tally);
      outstanding.erase(reply.id);
    }
    // Second pass: everything still outstanding is retried with backoff on
    // a fresh connection, and must now succeed. Idempotent by the server's
    // cache-key dedup: a job that actually completed before a crash (or
    // whose reply was lost on the wire) re-serves the same bytes.
    std::uint64_t stream = 0;
    for (const auto& [id, spec] : outstanding) {
      Client retry_client;
      if (!connect_with_retry(retry_client, opt, &error)) {
        std::fprintf(stderr, "qload: retry connect: %s\n", error.c_str());
        return 1;
      }
      qcongest::serve::BackoffParams backoff;
      backoff.seed = opt.seed;
      sleep_ms(qcongest::serve::backoff_delay_ms(backoff, stream, 0));
      ++tally.retried;
      Reply reply;
      if (!submit_with_retry(retry_client, opt, spec, stream, &reply, &tally,
                             &error)) {
        std::fprintf(stderr, "qload: retry %s: %s\n", id.c_str(),
                     error.c_str());
        ++tally.failed;
        all_ok = false;
        continue;
      }
      count_reply(opt, reply, &tally);
      ++stream;
    }
  } else {
    Client client;
    if (!connect_with_retry(client, opt, &error)) {
      std::fprintf(stderr, "qload: connect: %s\n", error.c_str());
      return 1;
    }
    for (std::size_t j = 0; j < opt.jobs; ++j) {
      const std::string id = "load-" + std::to_string(j);
      const std::string spec = make_spec(
          opt, id, opt.apps[j % opt.apps.size()], opt.seed + j, opt.threads);
      Reply reply;
      if (!submit_with_retry(client, opt, spec, j, &reply, &tally, &error)) {
        std::fprintf(stderr, "qload: job %s: %s\n", id.c_str(), error.c_str());
        ++tally.failed;
        all_ok = false;
        continue;
      }
      count_reply(opt, reply, &tally);
    }
  }

  if (opt.check_determinism) {
    if (!run_determinism_check(opt, &tally)) all_ok = false;
  }

  if (opt.expect_shed && tally.shed == 0) {
    std::fprintf(stderr,
                 "qload: expected overload shedding but every job was "
                 "admitted — raise --jobs or lower the server queue\n");
    all_ok = false;
  }
  if (tally.failed > 0) all_ok = false;

  if (opt.shutdown_server) {
    Client client;
    if (client.connect(opt.host, opt.port, &error)) {
      client.send_frame(FrameType::kShutdown, "", &error);
    }
  }

  std::printf(
      "qload: ok=%zu invalid=%zu shed=%zu retried=%zu failed=%zu "
      "reconnects=%zu -> %s\n",
      tally.ok, tally.invalid, tally.shed, tally.retried, tally.failed,
      tally.reconnects, all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
