// perf_gate — the CI perf-smoke comparator. Reads two BENCH_*.json files
// (the format bench/json_main.cpp emits: one object per benchmark run with
// "name", "real_time_ns", and the user counters) and fails when the current
// run regresses against the committed baseline:
//
//   * wall-clock: current real_time_ns > threshold × baseline (default
//     1.25, i.e. a >25% regression fails). Runs faster than --min-ns
//     (default 1e6 ns) in the baseline are skipped — sub-millisecond
//     timings are noise, not signal.
//   * deterministic counters (rounds, batches, measured, bound,
//     retransmissions): any drift at all fails. These are seeded round
//     counts, identical on every machine, so they catch algorithmic cost
//     regressions even when the runner is faster than the machine that
//     recorded the baseline (which makes the wall-clock gate lenient,
//     never spurious).
//
// With --report the two files are REPORT_*.json run reports instead
// (src/obs/run_report.hpp): schema-versioned documents whose determinism
// contract says equal seeded workloads serialize byte-identically. The gate
// then validates both documents as JSON (obs::json_valid) and requires them
// to be byte-identical — any drift in round series, phase spans, trace
// digests, or metrics is a behavioural change and fails, with the first
// differing line printed.
//
// Usage: perf_gate <baseline.json> <current.json>
//          [--threshold R] [--min-ns N] [--no-time] [--report]
//
// Exit 0 when every benchmark present in the baseline passes; 1 on any
// regression or missing benchmark; 2 on usage/parse errors.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace {

struct BenchRun {
  double real_time_ns = 0.0;
  std::map<std::string, double> counters;  // every other numeric field
};

/// Counters that are deterministic functions of the seed (round counts and
/// ledger totals), so any drift is a real behavioural change, not noise.
const char* kExactCounters[] = {"measured", "bound",   "ratio",
                                "rounds",   "batches", "retransmissions"};

bool exact_counter(const std::string& name) {
  for (const char* c : kExactCounters) {
    if (name == c) return true;
  }
  return false;
}

/// Parse the pretty-printed JSON json_main.cpp writes: one "key": value
/// field per line. A "name" field starts a new run; numeric fields attach
/// to the current run. This is not a general JSON parser on purpose — the
/// gate owns both ends of the format.
std::map<std::string, BenchRun> parse_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::map<std::string, BenchRun> runs;
  std::string current;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t key_open = line.find('"');
    if (key_open == std::string::npos) continue;
    std::size_t key_close = line.find('"', key_open + 1);
    if (key_close == std::string::npos) continue;
    std::string key = line.substr(key_open + 1, key_close - key_open - 1);
    std::size_t colon = line.find(':', key_close);
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    // Trim whitespace and the trailing comma of all-but-last fields.
    while (!value.empty() && (value.back() == ',' || value.back() == ' ' ||
                              value.back() == '\r')) {
      value.pop_back();
    }
    std::size_t first = value.find_first_not_of(' ');
    if (first == std::string::npos) continue;
    value = value.substr(first);
    if (key == "binary" || key == "benchmarks") continue;
    if (key == "name") {
      std::size_t open = value.find('"');
      std::size_t close = value.rfind('"');
      if (open == std::string::npos || close <= open) continue;
      current = value.substr(open + 1, close - open - 1);
      runs[current] = BenchRun{};
      continue;
    }
    if (current.empty()) continue;
    char* end = nullptr;
    double number = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) continue;  // not numeric
    if (key == "real_time_ns") {
      runs[current].real_time_ns = number;
    } else {
      runs[current].counters[key] = number;
    }
  }
  if (runs.empty()) throw std::runtime_error("no benchmark runs in " + path);
  return runs;
}

int usage() {
  std::cerr << "usage: perf_gate <baseline.json> <current.json>"
            << " [--threshold R] [--min-ns N] [--no-time] [--report]\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// --report mode: both documents must be valid JSON and byte-identical
/// (run reports contain only seed-deterministic fields, so equality is the
/// specified behaviour, not a flaky hope).
int compare_reports(const std::string& baseline_path, const std::string& current_path) {
  std::string baseline, current;
  try {
    baseline = read_file(baseline_path);
    current = read_file(current_path);
  } catch (const std::exception& e) {
    std::cerr << "perf_gate: " << e.what() << "\n";
    return 2;
  }
  std::string error;
  if (!qcongest::obs::json_valid(baseline, &error)) {
    std::cerr << "perf_gate: " << baseline_path << ": invalid JSON: " << error << "\n";
    return 2;
  }
  if (!qcongest::obs::json_valid(current, &error)) {
    std::cerr << "perf_gate: " << current_path << ": invalid JSON: " << error << "\n";
    return 2;
  }
  if (baseline == current) {
    std::cout << "perf_gate: reports are byte-identical (" << baseline.size()
              << " bytes)\n";
    return 0;
  }
  std::istringstream base_lines(baseline), cur_lines(current);
  std::string base_line, cur_line;
  std::size_t line_no = 0;
  while (true) {
    ++line_no;
    bool base_ok = static_cast<bool>(std::getline(base_lines, base_line));
    bool cur_ok = static_cast<bool>(std::getline(cur_lines, cur_line));
    if (!base_ok && !cur_ok) break;
    if (!base_ok || !cur_ok || base_line != cur_line) {
      std::cerr << "FAIL  reports differ at line " << line_no << ":\n"
                << "  baseline: " << (base_ok ? base_line : "<end of file>") << "\n"
                << "  current:  " << (cur_ok ? cur_line : "<end of file>") << "\n";
      break;
    }
  }
  std::cerr << "perf_gate: run report drifted from " << baseline_path << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold = 1.25;
  double min_ns = 1e6;
  bool check_time = true;
  bool report_mode = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--min-ns" && i + 1 < argc) {
      min_ns = std::strtod(argv[++i], nullptr);
    } else if (arg == "--no-time") {
      check_time = false;
    } else if (arg == "--report") {
      report_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return usage();
  if (report_mode) return compare_reports(positional[0], positional[1]);

  std::map<std::string, BenchRun> baseline, current;
  try {
    baseline = parse_bench_json(positional[0]);
    current = parse_bench_json(positional[1]);
  } catch (const std::exception& e) {
    std::cerr << "perf_gate: " << e.what() << "\n";
    return 2;
  }

  int failures = 0;
  auto fail = [&](const std::string& what) {
    std::cerr << "FAIL  " << what << "\n";
    ++failures;
  };

  for (const auto& [name, base] : baseline) {
    auto it = current.find(name);
    if (it == current.end()) {
      fail(name + ": present in baseline but missing from current run");
      continue;
    }
    const BenchRun& cur = it->second;

    if (check_time && base.real_time_ns >= min_ns) {
      double ratio = cur.real_time_ns / base.real_time_ns;
      std::ostringstream row;
      row.precision(3);
      row << name << ": real_time " << base.real_time_ns / 1e6 << "ms -> "
          << cur.real_time_ns / 1e6 << "ms (x" << ratio << ", limit x"
          << threshold << ")";
      if (ratio > threshold) {
        fail(row.str());
      } else {
        std::cout << "ok    " << row.str() << "\n";
      }
    }

    for (const auto& [counter, expected] : base.counters) {
      if (!exact_counter(counter)) continue;
      auto cit = cur.counters.find(counter);
      if (cit == cur.counters.end()) {
        fail(name + ": counter '" + counter + "' missing from current run");
        continue;
      }
      if (std::abs(cit->second - expected) > 1e-9 * std::max(1.0, std::abs(expected))) {
        std::ostringstream row;
        row.precision(12);
        row << name << ": deterministic counter '" << counter << "' drifted "
            << expected << " -> " << cit->second;
        fail(row.str());
      }
    }
  }

  if (failures > 0) {
    std::cerr << "perf_gate: " << failures << " regression(s) against "
              << positional[0] << "\n";
    return 1;
  }
  std::cout << "perf_gate: all " << baseline.size() << " benchmarks within limits\n";
  return 0;
}
