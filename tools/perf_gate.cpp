// perf_gate — the CI perf-smoke comparator. Reads two BENCH_*.json files
// (the format bench/json_main.cpp emits: one object per benchmark run with
// "name", "real_time_ns", and the user counters) and fails when the current
// run regresses against the committed baseline:
//
//   * wall-clock: current real_time_ns > threshold × baseline (default
//     1.25, i.e. a >25% regression fails). Runs faster than --min-ns
//     (default 1e6 ns) in the baseline are skipped — sub-millisecond
//     timings are noise, not signal.
//   * deterministic counters (rounds, batches, measured, bound,
//     retransmissions): any drift at all fails. These are seeded round
//     counts, identical on every machine, so they catch algorithmic cost
//     regressions even when the runner is faster than the machine that
//     recorded the baseline (which makes the wall-clock gate lenient,
//     never spurious).
//
// With --report the two files are REPORT_*.json run reports instead
// (src/obs/run_report.hpp): schema-versioned documents whose determinism
// contract says equal seeded workloads serialize byte-identically. The gate
// then validates both documents as JSON (obs::json_valid) and requires them
// to be byte-identical — any drift in round series, phase spans, trace
// digests, or metrics is a behavioural change and fails, with the first
// differing line printed.
//
// Either way the gate prints a per-benchmark before/after delta table
// (baseline ms, current ms, delta %, verdict) rather than bare pass/fail
// lines, so a CI log answers "what moved and by how much" directly.
// --markdown appends the same table as GitHub-flavored markdown (for the
// job summary); --history appends one line-JSON record of the deltas to a
// committed trajectory file (bench/baselines/PERF_HISTORY.jsonl), labelled
// via --label (the recording script passes the commit hash + date).
//
// Usage: perf_gate <baseline.json> <current.json>
//          [--threshold R] [--min-ns N] [--no-time] [--report]
//          [--markdown FILE] [--history FILE] [--label TEXT]
//
// Exit 0 when every benchmark present in the baseline passes; 1 on any
// regression or missing benchmark; 2 on usage/parse errors.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace {

struct BenchRun {
  double real_time_ns = 0.0;
  std::map<std::string, double> counters;  // every other numeric field
};

/// Counters that are deterministic functions of the seed (round counts and
/// ledger totals), so any drift is a real behavioural change, not noise.
const char* kExactCounters[] = {"measured", "bound",   "ratio",
                                "rounds",   "batches", "retransmissions"};

bool exact_counter(const std::string& name) {
  for (const char* c : kExactCounters) {
    if (name == c) return true;
  }
  return false;
}

/// Parse the pretty-printed JSON json_main.cpp writes: one "key": value
/// field per line. A "name" field starts a new run; numeric fields attach
/// to the current run. This is not a general JSON parser on purpose — the
/// gate owns both ends of the format.
std::map<std::string, BenchRun> parse_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::map<std::string, BenchRun> runs;
  std::string current;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t key_open = line.find('"');
    if (key_open == std::string::npos) continue;
    std::size_t key_close = line.find('"', key_open + 1);
    if (key_close == std::string::npos) continue;
    std::string key = line.substr(key_open + 1, key_close - key_open - 1);
    std::size_t colon = line.find(':', key_close);
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    // Trim whitespace and the trailing comma of all-but-last fields.
    while (!value.empty() && (value.back() == ',' || value.back() == ' ' ||
                              value.back() == '\r')) {
      value.pop_back();
    }
    std::size_t first = value.find_first_not_of(' ');
    if (first == std::string::npos) continue;
    value = value.substr(first);
    if (key == "binary" || key == "benchmarks") continue;
    if (key == "name") {
      std::size_t open = value.find('"');
      std::size_t close = value.rfind('"');
      if (open == std::string::npos || close <= open) continue;
      current = value.substr(open + 1, close - open - 1);
      runs[current] = BenchRun{};
      continue;
    }
    if (current.empty()) continue;
    char* end = nullptr;
    double number = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) continue;  // not numeric
    if (key == "real_time_ns") {
      runs[current].real_time_ns = number;
    } else {
      runs[current].counters[key] = number;
    }
  }
  if (runs.empty()) throw std::runtime_error("no benchmark runs in " + path);
  return runs;
}

int usage() {
  std::cerr << "usage: perf_gate <baseline.json> <current.json>"
            << " [--threshold R] [--min-ns N] [--no-time] [--report]\n"
            << "         [--markdown FILE] [--history FILE] [--label TEXT]\n";
  return 2;
}

/// One delta-table line: the before/after comparison of a single benchmark.
struct DeltaRow {
  std::string name;
  double base_ns = 0.0;
  double cur_ns = 0.0;
  bool timed = false;      // baseline met --min-ns and --no-time is off
  bool time_fail = false;  // timed and ratio exceeded the threshold
  bool missing = false;    // benchmark absent from the current run
  std::vector<std::string> drifted;  // exact-counter drift descriptions

  double ratio() const { return base_ns > 0.0 ? cur_ns / base_ns : 0.0; }
  bool failed() const { return missing || time_fail || !drifted.empty(); }
};

std::string format_ms(double ns) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(2);
  out << ns / 1e6 << "ms";
  return out.str();
}

std::string format_delta(const DeltaRow& row) {
  if (row.missing || row.base_ns <= 0.0) return "--";
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  double pct = (row.ratio() - 1.0) * 100.0;
  if (pct >= 0.0) out << "+";
  out << pct << "%";
  return out.str();
}

std::string verdict(const DeltaRow& row) {
  if (row.missing) return "MISSING";
  if (row.time_fail && !row.drifted.empty()) return "FAIL time+counters";
  if (row.time_fail) return "FAIL time";
  if (!row.drifted.empty()) return "FAIL counters";
  if (!row.timed) return "ok (untimed)";
  return "ok";
}

/// Plain-text delta table on stdout: one aligned row per baseline
/// benchmark, counter drift detail lines underneath their row.
void print_table(const std::vector<DeltaRow>& rows) {
  std::size_t name_w = std::string("benchmark").size();
  for (const DeltaRow& row : rows) name_w = std::max(name_w, row.name.size());
  std::cout << std::left << std::setw(static_cast<int>(name_w)) << "benchmark"
            << "  " << std::right << std::setw(12) << "baseline"
            << std::setw(12) << "current" << std::setw(9) << "delta"
            << "  verdict\n";
  for (const DeltaRow& row : rows) {
    std::cout << std::left << std::setw(static_cast<int>(name_w)) << row.name
              << "  " << std::right << std::setw(12) << format_ms(row.base_ns)
              << std::setw(12) << (row.missing ? "--" : format_ms(row.cur_ns))
              << std::setw(9) << format_delta(row) << "  " << verdict(row)
              << "\n";
    for (const std::string& drift : row.drifted) {
      std::cout << std::left << std::setw(static_cast<int>(name_w)) << ""
                << "  ! " << drift << "\n";
    }
  }
}

/// The same table as GitHub-flavored markdown, appended to `path` so CI can
/// accumulate tables from several gate invocations into one job summary.
void append_markdown(const std::string& path, const std::string& baseline_file,
                     const std::vector<DeltaRow>& rows) {
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("cannot append markdown to " + path);
  out << "\n#### perf trajectory: `" << baseline_file << "`\n\n"
      << "| benchmark | baseline | current | delta | verdict |\n"
      << "| --- | ---: | ---: | ---: | --- |\n";
  for (const DeltaRow& row : rows) {
    out << "| `" << row.name << "` | " << format_ms(row.base_ns) << " | "
        << (row.missing ? std::string("--") : format_ms(row.cur_ns)) << " | "
        << format_delta(row) << " | " << verdict(row);
    for (const std::string& drift : row.drifted) out << "<br>" << drift;
    out << " |\n";
  }
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

/// Extract the "label" value of one history record written by
/// append_history below (the gate owns both ends of the format). Empty
/// when the line carries no label field.
std::string history_label(const std::string& line) {
  const std::string marker = "\"label\": \"";
  std::size_t start = line.find(marker);
  if (start == std::string::npos) return "";
  start += marker.size();
  std::string label;
  for (std::size_t i = start; i < line.size(); ++i) {
    if (line[i] == '\\') {
      ++i;
      if (i < line.size()) label.push_back(line[i]);
      continue;
    }
    if (line[i] == '"') return label;
    label.push_back(line[i]);
  }
  return "";
}

/// One line-JSON trajectory record per gate invocation, merged into the
/// committed history file. Timings are per-run snapshots; the committed
/// sequence of records is the perf trajectory the run-reports job renders.
///
/// The merge keeps the file healthy instead of trusting it blindly:
/// malformed lines (a truncated append, a botched conflict resolution) are
/// dropped with a warning rather than aborting the gate, and any earlier
/// record with this label is replaced — re-running the gate on the same
/// commit updates its record instead of stuttering the trajectory.
void append_history(const std::string& path, const std::string& label,
                    const std::string& baseline_file,
                    const std::vector<DeltaRow>& rows) {
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string line;
    std::size_t line_number = 0;
    while (in && std::getline(in, line)) {
      ++line_number;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      if (!qcongest::obs::json_valid(line)) {
        std::cerr << "perf_gate: warning: " << path << ":" << line_number
                  << ": skipping malformed history line\n";
        continue;
      }
      if (!label.empty() && history_label(line) == label) continue;  // dedupe
      kept.push_back(line);
    }
  }

  std::ostringstream record;
  record << "{\"label\": \"" << json_escape(label) << "\", \"baseline\": \""
         << json_escape(baseline_file) << "\", \"runs\": [";
  bool first = true;
  record.setf(std::ios::fixed);
  record.precision(0);
  for (const DeltaRow& row : rows) {
    if (row.missing) continue;
    if (!first) record << ", ";
    first = false;
    std::ostringstream ratio;
    ratio.setf(std::ios::fixed);
    ratio.precision(4);
    ratio << row.ratio();
    record << "{\"name\": \"" << json_escape(row.name) << "\", \"baseline_ns\": "
           << row.base_ns << ", \"current_ns\": " << row.cur_ns
           << ", \"ratio\": " << ratio.str() << "}";
  }
  record << "]}";
  kept.push_back(record.str());

  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write history to " + path);
  for (const std::string& line : kept) out << line << "\n";
  out.flush();
  if (!out) throw std::runtime_error("short write to " + path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// --report mode: both documents must be valid JSON and byte-identical
/// (run reports contain only seed-deterministic fields, so equality is the
/// specified behaviour, not a flaky hope).
int compare_reports(const std::string& baseline_path, const std::string& current_path) {
  std::string baseline, current;
  try {
    baseline = read_file(baseline_path);
    current = read_file(current_path);
  } catch (const std::exception& e) {
    std::cerr << "perf_gate: " << e.what() << "\n";
    return 2;
  }
  std::string error;
  if (!qcongest::obs::json_valid(baseline, &error)) {
    std::cerr << "perf_gate: " << baseline_path << ": invalid JSON: " << error << "\n";
    return 2;
  }
  if (!qcongest::obs::json_valid(current, &error)) {
    std::cerr << "perf_gate: " << current_path << ": invalid JSON: " << error << "\n";
    return 2;
  }
  if (baseline == current) {
    std::cout << "perf_gate: reports are byte-identical (" << baseline.size()
              << " bytes)\n";
    return 0;
  }
  std::istringstream base_lines(baseline), cur_lines(current);
  std::string base_line, cur_line;
  std::size_t line_no = 0;
  while (true) {
    ++line_no;
    bool base_ok = static_cast<bool>(std::getline(base_lines, base_line));
    bool cur_ok = static_cast<bool>(std::getline(cur_lines, cur_line));
    if (!base_ok && !cur_ok) break;
    if (!base_ok || !cur_ok || base_line != cur_line) {
      std::cerr << "FAIL  reports differ at line " << line_no << ":\n"
                << "  baseline: " << (base_ok ? base_line : "<end of file>") << "\n"
                << "  current:  " << (cur_ok ? cur_line : "<end of file>") << "\n";
      break;
    }
  }
  std::cerr << "perf_gate: run report drifted from " << baseline_path << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold = 1.25;
  double min_ns = 1e6;
  bool check_time = true;
  bool report_mode = false;
  std::string markdown_path;
  std::string history_path;
  std::string label;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--min-ns" && i + 1 < argc) {
      min_ns = std::strtod(argv[++i], nullptr);
    } else if (arg == "--no-time") {
      check_time = false;
    } else if (arg == "--report") {
      report_mode = true;
    } else if (arg == "--markdown" && i + 1 < argc) {
      markdown_path = argv[++i];
    } else if (arg == "--history" && i + 1 < argc) {
      history_path = argv[++i];
    } else if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return usage();
  if (report_mode) return compare_reports(positional[0], positional[1]);

  std::map<std::string, BenchRun> baseline, current;
  try {
    baseline = parse_bench_json(positional[0]);
    current = parse_bench_json(positional[1]);
  } catch (const std::exception& e) {
    std::cerr << "perf_gate: " << e.what() << "\n";
    return 2;
  }

  std::vector<DeltaRow> rows;
  rows.reserve(baseline.size());
  for (const auto& [name, base] : baseline) {
    DeltaRow row;
    row.name = name;
    row.base_ns = base.real_time_ns;
    auto it = current.find(name);
    if (it == current.end()) {
      row.missing = true;
      rows.push_back(std::move(row));
      continue;
    }
    const BenchRun& cur = it->second;
    row.cur_ns = cur.real_time_ns;
    row.timed = check_time && base.real_time_ns >= min_ns;
    row.time_fail = row.timed && row.ratio() > threshold;

    for (const auto& [counter, expected] : base.counters) {
      if (!exact_counter(counter)) continue;
      auto cit = cur.counters.find(counter);
      std::ostringstream drift;
      drift.precision(12);
      if (cit == cur.counters.end()) {
        drift << "counter '" << counter << "' missing from current run";
      } else if (std::abs(cit->second - expected) >
                 1e-9 * std::max(1.0, std::abs(expected))) {
        drift << "counter '" << counter << "' drifted " << expected << " -> "
              << cit->second;
      } else {
        continue;
      }
      row.drifted.push_back(drift.str());
    }
    rows.push_back(std::move(row));
  }

  print_table(rows);
  try {
    if (!markdown_path.empty()) append_markdown(markdown_path, positional[0], rows);
    if (!history_path.empty()) append_history(history_path, label, positional[0], rows);
  } catch (const std::exception& e) {
    std::cerr << "perf_gate: " << e.what() << "\n";
    return 2;
  }

  int failures = 0;
  for (const DeltaRow& row : rows) {
    if (!row.failed()) continue;
    ++failures;
    std::cerr << "FAIL  " << row.name << ": " << verdict(row) << "\n";
    for (const std::string& drift : row.drifted) {
      std::cerr << "      " << drift << "\n";
    }
  }
  if (failures > 0) {
    std::cerr << "perf_gate: " << failures << " regression(s) against "
              << positional[0] << " (threshold x" << threshold << ")\n";
    return 1;
  }
  std::cout << "perf_gate: all " << baseline.size() << " benchmarks within limits\n";
  return 0;
}
