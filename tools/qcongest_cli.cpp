// qcongest_cli — run any of the paper's algorithms on a generated network
// from the command line, printing the answer and the measured round costs.
//
//   qcongest_cli <problem> [--graph FAMILY] [--nodes N] [--k K]
//                [--epsilon E] [--seed S] [--girth G] [--report PATH]
//
// problems:  diameter | radius | avgecc | girth | cycle | meeting | dj
//            | distinctness | exactcycle
// families:  path | cycle | grid | star | tree | random | petersen
//            | two-stars | cycle-trees | lollipop
//
// --report PATH writes a schema-versioned run report (src/obs): one section
// per printed cost line with the full RunResult counters, plus — for the
// problems that accept a NetOptions (diameter, radius, meeting, dj) — the
// per-round traffic series, phase spans, and a trace digest. The document
// is fully deterministic for a fixed seed (see DESIGN.md §10).
//
// Examples:
//   qcongest_cli diameter --graph two-stars --nodes 64
//   qcongest_cli meeting --graph path --nodes 9 --k 4096
//   qcongest_cli girth --graph cycle-trees --nodes 50 --girth 6
//   qcongest_cli dj --nodes 16 --k 64 --report dj_report.json

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/cycle_detection.hpp"
#include "src/apps/deutsch_jozsa.hpp"
#include "src/apps/eccentricity.hpp"
#include "src/apps/element_distinctness.hpp"
#include "src/apps/even_cycle.hpp"
#include "src/apps/girth.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/apps/twoparty.hpp"
#include "src/net/generators.hpp"
#include "src/net/trace.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/round_profiler.hpp"
#include "src/obs/run_report.hpp"

using namespace qcongest;

namespace {

struct Options {
  std::string problem;
  std::string graph = "random";
  std::size_t nodes = 32;
  std::size_t k = 256;
  std::size_t girth = 4;
  std::size_t bandwidth = 1;
  double epsilon = 1.0;
  std::uint64_t seed = 1;
  std::string report;  // when non-empty, write a run report here
};

void usage() {
  std::puts(
      "usage: qcongest_cli <problem> [--graph FAMILY] [--nodes N] [--k K]\n"
      "                    [--epsilon E] [--seed S] [--girth G] [--bandwidth B]\n"
      "                    [--report PATH]\n"
      "problems: diameter radius avgecc girth cycle meeting dj distinctness\n"
      "          exactcycle\n"
      "families: path cycle grid star tree random petersen two-stars\n"
      "          cycle-trees lollipop\n"
      "--report PATH: write a deterministic, schema-versioned JSON run report");
}

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.problem = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--graph") {
      opt.graph = value;
    } else if (flag == "--nodes") {
      opt.nodes = static_cast<std::size_t>(std::stoul(value));
    } else if (flag == "--k") {
      opt.k = static_cast<std::size_t>(std::stoul(value));
    } else if (flag == "--girth") {
      opt.girth = static_cast<std::size_t>(std::stoul(value));
    } else if (flag == "--epsilon") {
      opt.epsilon = std::stod(value);
    } else if (flag == "--seed") {
      opt.seed = std::stoull(value);
    } else if (flag == "--bandwidth") {
      opt.bandwidth = static_cast<std::size_t>(std::stoul(value));
    } else if (flag == "--report") {
      opt.report = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

net::Graph make_graph(const Options& opt, util::Rng& rng) {
  const std::size_t n = std::max<std::size_t>(opt.nodes, 2);
  if (opt.graph == "path") return net::path_graph(n);
  if (opt.graph == "cycle") return net::cycle_graph(std::max<std::size_t>(n, 3));
  if (opt.graph == "grid") return net::grid_graph(std::max<std::size_t>(n / 8, 2), 8);
  if (opt.graph == "star") return net::star_graph(n);
  if (opt.graph == "tree") return net::binary_tree(n);
  if (opt.graph == "petersen") return net::petersen_graph();
  if (opt.graph == "two-stars") return net::two_stars_graph(n / 2, n / 2, 2);
  if (opt.graph == "cycle-trees") {
    return net::cycle_with_trees(opt.girth, std::max(n, opt.girth), rng);
  }
  if (opt.graph == "lollipop") return net::lollipop_graph(n / 2, n / 2);
  if (opt.graph == "random") return net::random_connected_graph(n, n, rng);
  throw std::invalid_argument("unknown graph family: " + opt.graph);
}

/// Everything --report needs, accumulated while the problem runs: the taps
/// handed to apps that take a NetOptions, plus every printed cost line.
struct ReportState {
  bool enabled = false;
  net::Trace trace;
  obs::RoundProfiler profiler;
  std::vector<std::pair<std::string, net::RunResult>> costs;
};

int run_problem(const Options& opt, ReportState& rs) {
  util::Rng rng(opt.seed);
  net::Graph graph = make_graph(opt, rng);
  std::printf("graph: %s  n=%zu m=%zu D=%zu\n", opt.graph.c_str(), graph.num_nodes(),
              graph.num_edges(), graph.diameter());

  auto print_cost = [&rs](const char* label, const net::RunResult& cost) {
    std::printf("  %-22s %8zu rounds  %10zu messages  (%zu quantum words)\n", label,
                cost.rounds, cost.messages, cost.quantum_words);
    rs.costs.emplace_back(label, cost);
  };
  apps::NetOptions net_options;
  net_options.bandwidth = opt.bandwidth;
  net_options.seed = opt.seed;
  if (rs.enabled) {
    net_options.trace = &rs.trace;
    net_options.metrics = &rs.profiler;
  }

  if (opt.problem == "diameter" || opt.problem == "radius") {
    bool diameter = opt.problem == "diameter";
    auto quantum = diameter ? apps::diameter_quantum(graph, rng, net_options)
                            : apps::radius_quantum(graph, rng, net_options);
    auto classical = diameter ? apps::diameter_classical(graph, net_options)
                              : apps::radius_classical(graph, net_options);
    std::printf("%s: quantum=%zu classical=%zu truth=%zu\n", opt.problem.c_str(),
                quantum.value, classical.value,
                diameter ? graph.diameter() : graph.radius());
    print_cost("quantum (Lemma 21)", quantum.cost);
    print_cost("classical (APSP)", classical.cost);
    return 0;
  }
  if (opt.problem == "avgecc") {
    auto result = apps::average_eccentricity_quantum(graph, opt.epsilon, rng);
    auto classical = apps::average_eccentricity_classical(graph);
    std::printf("average eccentricity: estimate=%.4f truth=%.4f (eps=%.2f)\n",
                result.estimate, graph.average_eccentricity(), opt.epsilon);
    print_cost("quantum (Lemma 22)", result.cost);
    print_cost("classical (APSP)", classical.cost);
    return 0;
  }
  if (opt.problem == "girth") {
    auto quantum = apps::girth_quantum(graph, 0.5, rng);
    auto classical = apps::girth_classical(graph);
    auto show = [](const std::optional<std::size_t>& g) {
      return g ? static_cast<long long>(*g) : -1LL;
    };
    std::printf("girth: quantum=%lld classical=%lld truth=%lld\n", show(quantum.girth),
                show(classical.girth), show(graph.girth()));
    print_cost("quantum (Cor 26)", quantum.cost);
    std::printf("  %-22s %8zu rounds (charged clustering)\n", "",
                quantum.charged_rounds);
    print_cost("classical (all-BFS)", classical.cost);
    return 0;
  }
  if (opt.problem == "cycle") {
    auto result = apps::cycle_detection(graph, std::max<std::size_t>(opt.k, 3), rng);
    if (result.cycle_length) {
      std::printf("cycle of length <= %zu: found length %zu\n", opt.k,
                  *result.cycle_length);
    } else {
      std::printf("cycle of length <= %zu: none found\n", opt.k);
    }
    print_cost("quantum (Lemma 23)", result.cost);
    return 0;
  }
  if (opt.problem == "exactcycle") {
    auto result = apps::exact_cycle_detection(graph, std::min<std::size_t>(opt.k, 6),
                                              rng);
    std::printf("cycle of length exactly %zu: %s (%zu repetitions)\n",
                std::min<std::size_t>(opt.k, 6), result.found ? "found" : "not found",
                result.repetitions);
    print_cost("color coding", result.cost);
    return 0;
  }
  if (opt.problem == "meeting") {
    apps::Calendars calendars(graph.num_nodes(),
                              std::vector<query::Value>(opt.k, 0));
    for (auto& row : calendars) {
      for (auto& slot : row) slot = rng.bernoulli(0.3) ? 1 : 0;
    }
    auto reference = apps::meeting_scheduling_reference(calendars);
    auto quantum = apps::meeting_scheduling_quantum(graph, calendars, rng, net_options);
    auto classical = apps::meeting_scheduling_classical(graph, calendars, net_options);
    std::printf("meeting scheduling over k=%zu slots: best slot %zu with %lld "
                "available (truth: %lld)\n",
                opt.k, quantum.best_slot, static_cast<long long>(quantum.availability),
                static_cast<long long>(reference.availability));
    print_cost("quantum (Lemma 10)", quantum.cost);
    print_cost("classical (gather)", classical.cost);
    return 0;
  }
  if (opt.problem == "dj") {
    std::size_t k = opt.k % 2 == 0 ? opt.k : opt.k + 1;
    auto gadget = apps::deutsch_jozsa_gadget(k, std::max(graph.diameter(), std::size_t{1}),
                                             rng.bernoulli(0.5), rng);
    auto quantum = apps::deutsch_jozsa_quantum(gadget.graph, gadget.data, net_options);
    auto classical =
        apps::deutsch_jozsa_classical_exact(gadget.graph, gadget.data, net_options);
    std::printf("deutsch-jozsa (k=%zu, planted %s): quantum says %s\n", k,
                gadget.balanced ? "balanced" : "constant",
                quantum.verdict == query::DjVerdict::kBalanced ? "balanced"
                                                               : "constant");
    print_cost("quantum (Thm 17)", quantum.cost);
    print_cost("classical exact", classical.cost);
    return 0;
  }
  if (opt.problem == "distinctness") {
    std::vector<query::Value> values(graph.num_nodes());
    for (auto& v : values) {
      v = static_cast<query::Value>(rng.index(4 * graph.num_nodes()));
    }
    auto quantum = apps::element_distinctness_nodes_quantum(
        graph, values, static_cast<std::int64_t>(4 * graph.num_nodes()), rng);
    auto classical = apps::element_distinctness_nodes_classical(
        graph, values, static_cast<std::int64_t>(4 * graph.num_nodes()));
    if (classical.collision) {
      std::printf("duplicate: nodes %zu and %zu share value %lld (quantum %s)\n",
                  classical.collision->i, classical.collision->j,
                  static_cast<long long>(values[classical.collision->i]),
                  quantum.collision ? "agrees" : "missed it this run");
    } else {
      std::printf("all %zu node values distinct (quantum agrees: %s)\n",
                  graph.num_nodes(), quantum.collision ? "NO" : "yes");
    }
    print_cost("quantum (Cor 14)", quantum.cost);
    print_cost("classical (gather)", classical.cost);
    return 0;
  }
  std::fprintf(stderr, "unknown problem: %s\n", opt.problem.c_str());
  return 2;
}

int write_report(const Options& opt, const ReportState& rs) {
  obs::RunReport report("qcongest_cli");

  // Overview section: run parameters, the profiler's per-round series and
  // phase spans, the trace digest, and totals across every cost line.
  obs::RunReport::Section& overview = report.add_section(opt.problem);
  overview.set_label("problem", opt.problem);
  overview.set_label("graph", opt.graph);
  overview.set_label("nodes", std::to_string(opt.nodes));
  overview.set_label("k", std::to_string(opt.k));
  overview.set_label("bandwidth", std::to_string(opt.bandwidth));
  overview.set_label("seed", std::to_string(opt.seed));
  overview.set_outcome(true);
  overview.set_profile(rs.profiler);
  overview.set_trace(rs.trace);
  obs::MetricsRegistry metrics;
  metrics.count("cost_lines", rs.costs.size());
  for (const auto& [label, cost] : rs.costs) {
    metrics.count("total_rounds", cost.rounds);
    metrics.count("total_messages", cost.messages);
    metrics.count("total_quantum_words", cost.quantum_words);
  }
  overview.set_metrics(metrics);

  // One section per printed cost line, carrying the full RunResult.
  for (const auto& [label, cost] : rs.costs) {
    obs::RunReport::Section& section = report.add_section(opt.problem + "/" + label);
    section.set_label("variant", label);
    section.set_result(cost);
  }

  std::string error;
  if (!obs::json_valid(report.to_json(), &error)) {
    std::fprintf(stderr, "error: report self-validation failed: %s\n", error.c_str());
    return 1;
  }
  if (!report.write(opt.report, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("report: %s (%zu sections)\n", opt.report.c_str(),
              report.sections().size());
  return 0;
}

int run(const Options& opt) {
  ReportState rs;
  rs.enabled = !opt.report.empty();
  int code = run_problem(opt, rs);
  if (rs.enabled && code == 0) code = write_report(opt, rs);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
