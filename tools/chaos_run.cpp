// chaos_run — sweep deterministic fault rates over the application suite
// and report, per (app, fault level): success rate, median measured rounds,
// round overhead versus the clean run, and retransmissions per attempt.
//
//   chaos_run [--nodes N] [--trials T] [--graph FAMILY]
//             [--transport reliable|direct] [--seed S]
//             [--threads T] [--jobs J] [--deadline ROUNDS]
//             [--verify] [--audit-determinism] [--report PATH]
//             [--amnesia] [--recover]
//             [--cache] [--no-cache] [--cache-dir PATH]
//   chaos_run gc [--cache-dir PATH] [--max-bytes N]
//
// families: tree | path | cycle | grid | random | star | complete
// (the shared suite and topology factory live in src/apps/registry)
//
// The sweep is an experiment DAG (src/cache/dag): one node per (app, fault
// level), where every faulty level depends on its app's clean run (the
// overhead denominator), scheduled ready-first across --jobs workers.
// Results are sealed blobs in the content-addressed store (src/cache/store)
// keyed by everything that can change the bytes — app, topology spec, seed,
// trials, transport, fault level, deadline, and the code-version salt — so
// a second identical invocation is served entirely from cache, and any
// input change is a clean miss. --verify bypasses the cache (its shared
// conformance observer must see every run execute).
//
// Cache selection: --cache-dir PATH wins; otherwise QCONGEST_CACHE_DIR
// (strict-parsed — a malformed value disables caching with a warning);
// --cache falls back to ./.qcongest-cache when neither is set; --no-cache
// always wins. `chaos_run gc` evicts oldest-first down to --max-bytes
// (default 64 MiB) and sweeps tmp/ and corrupt entries.
//
// --deadline R (default off) attaches a recover::Watchdog with a hard
// round deadline to every run: a protocol still going after R physical
// rounds is killed with a structured LivelockError instead of burning the
// round budget. In the sweep the watchdog is per-trial (stack-local, so
// --jobs fan-out never shares observer state); in the recovery lane and
// report pass it rides the lane's existing watchdog.
//
// --threads T runs every engine in its deterministic sharded-parallel mode
// (Engine::set_threads); results are byte-identical to --threads 1. The
// determinism audit exploits this: with --threads > 1 it diffs a serial run
// against a sharded run instead of two serial runs, which is the strongest
// reproducibility check the tool offers. --jobs J fans ready sweep
// experiments across J DAG workers (ignored under --verify, whose shared
// conformance observer must see runs one at a time).
//
// Fault levels pair a word-drop probability with proportional corruption
// (rate/5) and duplication (rate/10) so a single knob exercises all three
// lotteries. With --transport direct the sweep shows how quickly the
// unprotected protocols fall over; with the default reliable transport it
// measures what the ack/retransmit layer pays to hide the same faults.
//
// --verify attaches the model-conformance verifier (src/check) to every
// engine of the sweep and fails the run if any CONGEST invariant broke.
//
// --report PATH additionally runs every app once clean and once at the 0.05
// fault level with the full observability stack attached (trace +
// RoundProfiler metrics tap) and writes one schema-versioned run-report
// JSON (src/obs) to PATH: per-app RunResult counters, per-round traffic
// series, phase spans, trace summaries, and a metrics snapshot. The report
// carries only seed-deterministic fields — it is byte-identical for any
// --threads value, which CI exploits by diffing the two.
//
// --amnesia replaces the sweep with the recovery lane: every app (plus the
// framework apps dj and meeting) runs over the reliable transport with one
// crash-with-amnesia window scheduled on a middle node, a liveness watchdog
// attached. With --recover the engine checkpoints node state and the wiped
// node rebuilds itself from its last checkpoint plus neighbor-assisted
// catch-up; the lane passes when every app still computes the right answer
// AND pays a visible recovery tax (RunResult::recovery_rounds > 0 — the
// counters are honest, so a free recovery would be a bug). Without
// --recover the wiped node can never rejoin; the lane passes when the
// watchdog converts the would-be livelock into a LivelockError naming the
// victim instead of silently burning the round budget. Combine with
// --report to capture the recovery sections (including the recovery-tax
// counters) in the run-report JSON.
//
// --audit-determinism replaces the sweep with the reproducibility gate:
// every app runs twice from the same seed and the two delivery traces are
// diffed byte-for-byte — any divergence (hash-order iteration, unseeded
// randomness, uninitialized reads) fails the audit.
//
// Examples:
//   chaos_run --nodes 15 --trials 9
//   chaos_run --graph grid --nodes 16 --transport direct
//   chaos_run --audit-determinism --graph random --nodes 12

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/net_options.hpp"
#include "src/apps/registry.hpp"
#include "src/cache/dag.hpp"
#include "src/cache/key.hpp"
#include "src/cache/store.hpp"
#include "src/check/verifier.hpp"
#include "src/net/fault.hpp"
#include "src/net/trace.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/round_profiler.hpp"
#include "src/obs/run_report.hpp"
#include "src/recover/watchdog.hpp"
#include "src/util/env.hpp"

using namespace qcongest;

namespace {

struct Options {
  std::size_t nodes = 15;
  std::size_t trials = 9;
  std::string graph = "tree";
  net::Transport transport = net::Transport::kReliable;
  std::uint64_t seed = 1;
  std::size_t threads = 1;  // engine shards per run (deterministic)
  std::size_t jobs = 1;     // concurrent sweep trials
  bool verify = false;
  bool audit_determinism = false;
  bool amnesia = false;  // run the crash-with-amnesia recovery lane
  bool recover = false;  // ...with checkpointing + neighbor-assisted catch-up
  std::string report;  // run-report output path ("" = no report)
  std::size_t deadline_rounds = 0;  // watchdog round deadline (0 = off)
  // Result-cache selection: 0 = auto (QCONGEST_CACHE_DIR decides), +1 =
  // --cache (fall back to ./.qcongest-cache), -1 = --no-cache.
  int cache_mode = 0;
  std::string cache_dir;  // --cache-dir override (implies on)
};

// Crash window of the --amnesia lane, in physical rounds: late enough that
// at least one committed virtual round of state is lost, early enough that
// every app's first engine run is still in flight when it opens.
constexpr std::size_t kCrashRound = 30;
constexpr std::size_t kRestartRound = 60;
// Watchdog stall bound: must comfortably exceed the crash window plus the
// reliable transport's retransmission backoff cap (ReliableParams::rto_cap).
constexpr std::size_t kLaneStallRounds = 512;
constexpr std::size_t kLaneCheckpointEvery = 3;  // virtual rounds per checkpoint

// The application suite and topology factory are shared with the qcongestd
// service (src/apps/registry); chaos_run keeps only its sweep/report logic.
using Outcome = apps::AppOutcome;
using AppEntry = apps::RegisteredApp;

net::Graph make_graph(const Options& opt) {
  try {
    return apps::make_registry_graph(opt.graph, opt.nodes, opt.seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--verify") {
      opt.verify = true;
      continue;
    }
    if (flag == "--audit-determinism") {
      opt.audit_determinism = true;
      continue;
    }
    if (flag == "--amnesia") {
      opt.amnesia = true;
      continue;
    }
    if (flag == "--recover") {
      opt.recover = true;
      continue;
    }
    if (flag == "--cache") {
      opt.cache_mode = 1;
      continue;
    }
    if (flag == "--no-cache") {
      opt.cache_mode = -1;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
      return false;
    }
    std::string value = argv[++i];
    if (flag == "--nodes") {
      opt.nodes = static_cast<std::size_t>(std::stoul(value));
    } else if (flag == "--trials") {
      opt.trials = static_cast<std::size_t>(std::stoul(value));
    } else if (flag == "--graph") {
      opt.graph = value;
    } else if (flag == "--seed") {
      opt.seed = std::stoull(value);
    } else if (flag == "--threads") {
      opt.threads = static_cast<std::size_t>(std::stoul(value));
      if (opt.threads == 0) opt.threads = 1;
    } else if (flag == "--jobs") {
      opt.jobs = static_cast<std::size_t>(std::stoul(value));
      if (opt.jobs == 0) opt.jobs = 1;
    } else if (flag == "--report") {
      opt.report = value;
    } else if (flag == "--cache-dir") {
      opt.cache_dir = value;
    } else if (flag == "--deadline") {
      opt.deadline_rounds = static_cast<std::size_t>(std::stoul(value));
    } else if (flag == "--transport") {
      if (value == "reliable") {
        opt.transport = net::Transport::kReliable;
      } else if (value == "direct") {
        opt.transport = net::Transport::kDirect;
      } else {
        std::fprintf(stderr, "unknown transport: %s\n", value.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return opt.trials > 0 && opt.nodes > 1;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Canonical byte transcript of one run: every delivery in order plus the
/// final cost counters. Two runs from the same seed must produce identical
/// transcripts or the simulation is not reproducible.
std::string transcript(const net::Trace& trace, const Outcome& out) {
  std::string s;
  s.reserve(trace.size() * 16 + 64);
  for (const net::TraceEvent& e : trace.events()) {
    s += std::to_string(e.round) + ' ' + std::to_string(e.from) + ' ' +
         std::to_string(e.to) + ' ' + std::to_string(e.tag) + ' ' +
         (e.quantum ? '1' : '0') + '\n';
  }
  s += "success=" + std::to_string(out.success ? 1 : 0);
  s += " rounds=" + std::to_string(out.cost.rounds);
  s += " messages=" + std::to_string(out.cost.messages);
  s += " dropped=" + std::to_string(out.cost.dropped_words);
  s += " corrupted=" + std::to_string(out.cost.corrupted_words);
  s += " duplicated=" + std::to_string(out.cost.duplicated_words);
  s += " retrans=" + std::to_string(out.cost.retransmissions);
  s += " recwords=" + std::to_string(out.cost.recovery_words);
  s += " recrounds=" + std::to_string(out.cost.recovery_rounds);
  s += '\n';
  return s;
}

/// First line on which two transcripts diverge (1-based), for the report.
std::size_t first_divergence(const std::string& a, const std::string& b) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i] != b[i]) return line;
    if (a[i] == '\n') ++line;
  }
  return line;
}

/// Determinism auditor: run each app twice from the same seed (clean and
/// under faults) and diff the delivery transcripts byte-for-byte.
int run_determinism_audit(const net::Graph& graph, const Options& opt,
                          const std::vector<AppEntry>& suite) {
  const std::vector<double> rates = {0.0, 0.05};
  std::printf(
      "# determinism audit: graph=%s nodes=%zu transport=%s seed=%llu threads=%zu\n",
      opt.graph.c_str(), graph.num_nodes(),
      opt.transport == net::Transport::kReliable ? "reliable" : "direct",
      static_cast<unsigned long long>(opt.seed), opt.threads);
  if (opt.threads > 1) {
    std::printf("# diffing serial (threads=1) against sharded (threads=%zu) runs\n",
                opt.threads);
  }
  std::printf("%-12s %6s %10s %s\n", "app", "drop", "deliveries", "verdict");
  int exit_code = 0;
  for (const AppEntry& app : suite) {
    for (double rate : rates) {
      std::string runs[2];
      std::size_t deliveries = 0;
      for (int repeat = 0; repeat < 2; ++repeat) {
        apps::NetOptions options;
        options.transport = opt.transport;
        options.seed = opt.seed;
        options.fault_plan.link.drop = rate;
        options.fault_plan.link.corrupt = rate / 5.0;
        options.fault_plan.link.duplicate = rate / 10.0;
        options.fault_plan.seed = opt.seed * 1000;
        // The second run uses the sharded engine; transcripts must still be
        // byte-identical to the serial first run.
        options.threads = repeat == 0 ? 1 : opt.threads;
        net::Trace trace;
        options.trace = &trace;
        Outcome out;
        try {
          out = app.run(graph, options);
        } catch (const std::exception& e) {
          out.success = false;
          out.cost = net::RunResult{};
          trace.record(net::TraceEvent{0, 0, 0, -1, false});  // poison marker
        }
        deliveries = trace.size();
        runs[repeat] = transcript(trace, out);
      }
      bool same = runs[0] == runs[1];
      if (same) {
        std::printf("%-12s %6.2f %10zu PASS\n", app.name, rate, deliveries);
      } else {
        std::printf("%-12s %6.2f %10zu FAIL (first divergence at line %zu)\n",
                    app.name, rate, deliveries, first_divergence(runs[0], runs[1]));
        exit_code = 1;
      }
    }
  }
  if (exit_code != 0) {
    std::fprintf(stderr,
                 "chaos_run: same-seed runs diverged — the simulation is not "
                 "deterministic\n");
  }
  return exit_code;
}

/// The deterministic fault schedule of the --amnesia lane: one
/// crash-with-amnesia window on a middle node. Applied to every engine run
/// an app performs, so multi-phase apps (election, tree build, pipeline)
/// lose and recover the victim's state once per phase that lives past the
/// crash round.
net::FaultPlan amnesia_plan(net::NodeId victim, std::uint64_t seed) {
  net::FaultPlan plan;
  plan.crashes.push_back(net::CrashEvent{victim, kCrashRound, kRestartRound});
  plan.crashes[0].amnesia = true;
  plan.seed = seed * 1000;
  return plan;
}

apps::NetOptions lane_options(const Options& opt, net::NodeId victim,
                              recover::Watchdog* watchdog) {
  apps::NetOptions options;
  // The lane is a reliable-transport story: under Transport::kDirect a crash
  // window just drops words on the floor and no protocol recovers them.
  options.transport = net::Transport::kReliable;
  options.threads = opt.threads;
  options.seed = opt.seed;
  options.fault_plan = amnesia_plan(victim, opt.seed);
  options.watchdog = watchdog;
  if (opt.recover) {
    options.recovery.enabled = true;
    options.recovery.checkpoint.every_rounds = kLaneCheckpointEvery;
  }
  return options;
}

/// The --amnesia lane. With --recover every app must survive the wipe with
/// the right answer and an honest, nonzero recovery tax; without it the
/// watchdog must diagnose the dead node instead of letting the run hang.
int run_recovery_lane(const net::Graph& graph, const Options& opt,
                      const std::vector<AppEntry>& suite) {
  const net::NodeId victim = graph.num_nodes() / 2;
  check::Verifier verifier;
  recover::Watchdog watchdog(recover::WatchdogConfig{
      /*stall_rounds=*/kLaneStallRounds,
      /*deadline_rounds=*/opt.deadline_rounds});
  std::printf(
      "# recovery lane: graph=%s nodes=%zu seed=%llu threads=%zu recover=%s\n",
      opt.graph.c_str(), graph.num_nodes(),
      static_cast<unsigned long long>(opt.seed), opt.threads,
      opt.recover ? "on" : "off");
  std::printf("# amnesia crash on node %zu, physical rounds [%zu, %zu), "
              "reliable transport\n",
              static_cast<std::size_t>(victim), kCrashRound, kRestartRound);
  if (opt.recover) {
    std::printf("%-12s %8s %8s %10s %9s %8s %s\n", "app", "success", "rounds",
                "rec_rounds", "rec_words", "tax", "verdict");
  } else {
    std::printf("%-12s %-7s %s\n", "app", "verdict", "diagnosis");
  }

  int exit_code = 0;
  for (const AppEntry& app : suite) {
    // Fault-free baseline: the denominator of the recovery-tax column and
    // the answer the recovered run must reproduce (via each app's own
    // ground-truth check).
    apps::NetOptions clean;
    clean.transport = net::Transport::kReliable;
    clean.threads = opt.threads;
    clean.seed = opt.seed;
    Outcome base = app.run(graph, clean);

    apps::NetOptions options = lane_options(opt, victim, &watchdog);
    if (opt.verify) options.observer = &verifier;

    if (opt.recover) {
      Outcome out;
      bool threw = false;
      try {
        out = app.run(graph, options);
      } catch (const std::exception&) {
        threw = true;
        if (opt.verify) verifier.abandon_run();
      }
      double tax = base.cost.rounds > 0
                       ? static_cast<double>(out.cost.rounds) /
                             static_cast<double>(base.cost.rounds)
                       : 0.0;
      // recovery_rounds == 0 would mean the wipe cost nothing — with these
      // counters' honesty pinned by tests, that can only be a lane bug.
      bool pass = !threw && out.success && out.cost.recovery_rounds > 0;
      std::printf("%-12s %8s %8zu %10zu %9zu %7.2fx %s\n", app.name,
                  out.success ? "yes" : "no", out.cost.rounds,
                  out.cost.recovery_rounds, out.cost.recovery_words, tax,
                  pass ? "PASS" : "FAIL");
      if (!pass) exit_code = 1;
    } else {
      bool diagnosed = false;
      std::string what = "no diagnosis: the run terminated on its own";
      try {
        (void)app.run(graph, options);
      } catch (const recover::LivelockError& e) {
        const std::vector<net::NodeId>& s = e.suspects();
        diagnosed = std::find(s.begin(), s.end(), victim) != s.end();
        what = e.what();
        if (opt.verify) verifier.abandon_run();
      } catch (const std::exception& e) {
        what = std::string("unexpected error: ") + e.what();
        if (opt.verify) verifier.abandon_run();
      }
      std::printf("%-12s %-7s %s\n", app.name, diagnosed ? "PASS" : "FAIL",
                  what.c_str());
      if (!diagnosed) exit_code = 1;
    }
  }
  if (opt.verify) {
    std::printf("%s\n", verifier.report().c_str());
    if (!verifier.ok()) exit_code = 1;
  }
  if (exit_code != 0) {
    std::fprintf(stderr, "chaos_run: recovery lane failed\n");
  }
  return exit_code;
}

/// Format a fault rate as a short fixed-point label ("0.05").
std::string rate_label(double rate) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", rate);
  return buf;
}

// --- Result cache ------------------------------------------------------------

/// Resolve the cache root from flags and environment. Empty = caching off.
std::string resolve_cache_dir(const Options& opt) {
  if (opt.cache_mode < 0) return "";
  if (!opt.cache_dir.empty()) return opt.cache_dir;
  std::string warning;
  std::string dir =
      util::env_cache_dir(std::getenv("QCONGEST_CACHE_DIR"), &warning);
  if (!warning.empty()) {
    std::fprintf(stderr, "chaos_run: QCONGEST_CACHE_DIR %s\n", warning.c_str());
  }
  if (dir.empty() && opt.cache_mode > 0) dir = ".qcongest-cache";
  return dir;
}

/// One sweep trial's sealed facts — everything the table and the exit-code
/// bar need, nothing else (so the blob is stable across presentation-only
/// changes to the tool).
struct TrialStat {
  bool success = false;
  std::size_t rounds = 0;
  std::size_t retransmissions = 0;
};

constexpr std::string_view kSweepBlobMagic = "chaos-sweep 1";

std::string encode_sweep_blob(const std::vector<TrialStat>& trials) {
  std::string blob(kSweepBlobMagic);
  blob += '\n';
  for (std::size_t i = 0; i < trials.size(); ++i) {
    blob += "trial " + std::to_string(i) +
            " success=" + std::to_string(trials[i].success ? 1 : 0) +
            " rounds=" + std::to_string(trials[i].rounds) +
            " retrans=" + std::to_string(trials[i].retransmissions) + '\n';
  }
  return blob;
}

bool decode_sweep_blob(const std::string& blob, std::vector<TrialStat>* out) {
  out->clear();
  std::size_t pos = 0;
  auto next_line = [&](std::string_view* line) {
    if (pos >= blob.size()) return false;
    std::size_t eol = blob.find('\n', pos);
    if (eol == std::string::npos) return false;  // blobs end in '\n'
    *line = std::string_view(blob).substr(pos, eol - pos);
    pos = eol + 1;
    return true;
  };
  std::string_view line;
  if (!next_line(&line) || line != kSweepBlobMagic) return false;
  while (next_line(&line)) {
    TrialStat stat;
    unsigned long long index = 0, success = 0, rounds = 0, retrans = 0;
    if (std::sscanf(std::string(line).c_str(),
                    "trial %llu success=%llu rounds=%llu retrans=%llu", &index,
                    &success, &rounds, &retrans) != 4 ||
        success > 1 || index != out->size()) {
      return false;
    }
    stat.success = success == 1;
    stat.rounds = static_cast<std::size_t>(rounds);
    stat.retransmissions = static_cast<std::size_t>(retrans);
    out->push_back(stat);
  }
  return true;
}

/// Content address of one (app, fault level) sweep experiment: every input
/// that can change the sealed blob, plus the code-version salt. --threads
/// and --jobs are deliberately absent — results are byte-identical across
/// both (the determinism contract), so varying them must still hit.
std::string sweep_cache_key(const Options& opt, const net::Graph& graph,
                            std::string_view app_name, double rate) {
  cache::KeyBuilder key;
  key.field("salt", cache::code_version_salt());
  key.field("producer", "chaos_run-sweep");
  key.field("blob_schema", std::uint64_t{1});
  key.field("app", app_name);
  key.field("graph", opt.graph);
  key.field("nodes", static_cast<std::uint64_t>(graph.num_nodes()));
  key.field("trials", static_cast<std::uint64_t>(opt.trials));
  key.field("seed", opt.seed);
  key.field("deadline_rounds", static_cast<std::uint64_t>(opt.deadline_rounds));
  key.field("transport",
            opt.transport == net::Transport::kReliable ? "reliable" : "direct");
  key.field("drop", rate);  // corrupt (rate/5) and duplicate (rate/10) derive
  return key.digest();
}

/// Execute one sweep experiment: opt.trials seeded trials, serial within
/// the node (the DAG scheduler provides the fan-out across experiments).
std::string run_sweep_experiment(const net::Graph& graph, const Options& opt,
                                 const AppEntry& app, double rate,
                                 check::Verifier* verifier) {
  std::vector<TrialStat> stats(opt.trials);
  for (std::size_t trial = 0; trial < opt.trials; ++trial) {
    apps::NetOptions options;
    options.transport = opt.transport;
    options.threads = opt.threads;
    options.fault_plan.link.drop = rate;
    options.fault_plan.link.corrupt = rate / 5.0;
    options.fault_plan.link.duplicate = rate / 10.0;
    options.seed = opt.seed + trial;
    options.fault_plan.seed = opt.seed * 1000 + trial;
    if (verifier != nullptr) options.observer = verifier;
    // --deadline: a per-trial, stack-local watchdog — concurrent experiments
    // (--jobs) must never share observer state. The LivelockError it throws
    // at the deadline is absorbed by the catch below as a failed trial.
    recover::WatchdogConfig deadline_config;
    deadline_config.deadline_rounds = opt.deadline_rounds;
    recover::Watchdog trial_watchdog(deadline_config);
    if (opt.deadline_rounds > 0) options.watchdog = &trial_watchdog;
    try {
      Outcome out = app.run(graph, options);
      stats[trial].success = out.success;
      stats[trial].rounds = out.cost.rounds;
      stats[trial].retransmissions = out.cost.retransmissions;
    } catch (const std::exception&) {
      stats[trial].success = false;  // a run that tripped an invariant
      if (verifier != nullptr) verifier->abandon_run();
    }
  }
  return encode_sweep_blob(stats);
}

/// `chaos_run gc`: evict the store down to --max-bytes, oldest first.
int run_gc(int argc, char** argv) {
  std::string dir;
  std::uint64_t max_bytes = 64ull << 20;  // 64 MiB default budget
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
      return 2;
    }
    std::string value = argv[++i];
    if (flag == "--cache-dir") {
      dir = value;
    } else if (flag == "--max-bytes") {
      char* end = nullptr;
      max_bytes = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "bad --max-bytes: %s\n", value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown gc flag: %s\n", flag.c_str());
      return 2;
    }
  }
  if (dir.empty()) {
    std::string warning;
    dir = util::env_cache_dir(std::getenv("QCONGEST_CACHE_DIR"), &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "chaos_run: QCONGEST_CACHE_DIR %s\n",
                   warning.c_str());
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr,
                 "chaos_run gc: no cache directory (--cache-dir or "
                 "QCONGEST_CACHE_DIR)\n");
    return 2;
  }
  cache::Store store(dir);
  const cache::Store::GcResult result = store.gc(max_bytes);
  std::printf(
      "# gc %s: scanned=%zu evicted=%zu corrupt_removed=%zu "
      "bytes=%llu -> %llu (budget %llu)\n",
      dir.c_str(), result.scanned, result.evicted, result.corrupt_removed,
      static_cast<unsigned long long>(result.bytes_before),
      static_cast<unsigned long long>(result.bytes_after),
      static_cast<unsigned long long>(max_bytes));
  return 0;
}

/// Content address of one report section: the section name already encodes
/// the app and fault level (or the amnesia lane), so the key adds the
/// topology spec, seed, transport, lane knobs, schema version, and salt.
std::string report_section_key(const Options& opt, const net::Graph& graph,
                               const std::string& section_name) {
  cache::KeyBuilder key;
  key.field("salt", cache::code_version_salt());
  key.field("producer", "chaos_run-report");
  key.field("schema", static_cast<std::uint64_t>(obs::kReportSchemaVersion));
  key.field("section", section_name);
  key.field("graph", opt.graph);
  key.field("nodes", static_cast<std::uint64_t>(graph.num_nodes()));
  key.field("seed", opt.seed);
  key.field("deadline_rounds", static_cast<std::uint64_t>(opt.deadline_rounds));
  key.field("transport",
            opt.transport == net::Transport::kReliable ? "reliable" : "direct");
  key.field("amnesia", opt.amnesia);
  key.field("recover", opt.recover);
  return key.digest();
}

/// The --report pass: one instrumented run per (app, fault level) with the
/// full observability stack attached, merged into a single schema-versioned
/// document. Everything recorded is seed-deterministic (no wall-clock, no
/// thread counts), so the file is byte-identical for any --threads value.
///
/// With a store, each section is read through the result cache: a hit
/// splices the sealed fragment back into the document (Section::render /
/// add_rendered_section keep the bytes identical to a fresh render); a miss
/// runs, renders, and seals. Cached and uncached invocations therefore
/// write byte-for-byte the same file.
int write_run_report(const net::Graph& graph, const Options& opt,
                     const std::vector<AppEntry>& suite, cache::Store* store) {
  obs::RunReport report("chaos_run");
  const std::vector<double> rates = {0.0, 0.05};

  // One instrumented run -> one report section. Everything recorded stays
  // seed-deterministic, so sections are byte-identical for any --threads.
  auto instrument = [&](const AppEntry& app, const std::string& section_name,
                        apps::NetOptions options,
                        const std::function<void(obs::RunReport::Section&)>& label) {
    std::string key;
    if (store != nullptr) {
      key = report_section_key(opt, graph, section_name);
      std::string fragment;
      if (store->get(key, &fragment)) {
        report.add_rendered_section(section_name, std::move(fragment));
        return;
      }
    }

    net::Trace trace;
    obs::RoundProfiler profiler;
    options.trace = &trace;
    options.metrics = &profiler;

    Outcome out;
    bool threw = false;
    try {
      out = app.run(graph, options);
    } catch (const std::exception&) {
      threw = true;
      out.success = false;
    }

    obs::MetricsRegistry metrics;
    metrics.count("runs", profiler.total_runs());
    metrics.count("messages", trace.size());
    if (out.success) metrics.count("successes");
    if (threw) metrics.count("aborted_runs");
    obs::Histogram& load =
        metrics.histogram("messages_per_round", {1, 2, 4, 8, 16, 32, 64, 128});
    for (std::size_t count : trace.per_round_counts()) {
      load.observe(static_cast<double>(count));
    }

    obs::RunReport::Section section(section_name);
    section.set_label("app", app.name);
    section.set_label("graph", opt.graph);
    section.set_label("nodes", std::to_string(graph.num_nodes()));
    section.set_label("seed", std::to_string(opt.seed));
    label(section);
    section.set_outcome(out.success);
    section.set_result(out.cost);
    section.set_profile(profiler);
    section.set_trace(trace);
    section.set_metrics(metrics);

    std::string fragment = section.render();
    if (store != nullptr) {
      std::string put_error;
      (void)store->put(key, fragment, &put_error);  // best effort
    }
    report.add_rendered_section(section_name, std::move(fragment));
  };

  const net::NodeId victim = graph.num_nodes() / 2;
  recover::Watchdog watchdog(recover::WatchdogConfig{
      /*stall_rounds=*/kLaneStallRounds,
      /*deadline_rounds=*/opt.deadline_rounds});
  for (const AppEntry& app : suite) {
    for (double rate : rates) {
      apps::NetOptions options;
      options.transport = opt.transport;
      options.threads = opt.threads;
      options.seed = opt.seed;
      options.fault_plan.link.drop = rate;
      options.fault_plan.link.corrupt = rate / 5.0;
      options.fault_plan.link.duplicate = rate / 10.0;
      options.fault_plan.seed = opt.seed * 1000;
      instrument(app, std::string(app.name) + "@drop=" + rate_label(rate),
                 options, [&](obs::RunReport::Section& section) {
                   section.set_label("drop", rate_label(rate));
                   section.set_label("transport",
                                     opt.transport == net::Transport::kReliable
                                         ? "reliable"
                                         : "direct");
                 });
    }
    if (opt.amnesia) {
      // The recovery lane's section: the amnesia crash schedule with (or
      // without) recovery, so the report carries the recovery-tax counters.
      apps::NetOptions options = lane_options(opt, victim, &watchdog);
      instrument(app, std::string(app.name) + "@amnesia",
                 options, [&](obs::RunReport::Section& section) {
                   section.set_label("crash_node",
                                     std::to_string(static_cast<std::size_t>(victim)));
                   section.set_label("crash_window",
                                     "[" + std::to_string(kCrashRound) + ", " +
                                         std::to_string(kRestartRound) + ")");
                   section.set_label("recover", opt.recover ? "on" : "off");
                   section.set_label("transport", "reliable");
                 });
    }
  }
  std::string json = report.to_json();
  std::string error;
  if (!obs::json_valid(json, &error)) {
    std::fprintf(stderr, "chaos_run: generated report is not valid JSON (%s)\n",
                 error.c_str());
    return 1;
  }
  if (!report.write(opt.report, &error)) {
    std::fprintf(stderr, "chaos_run: %s\n", error.c_str());
    return 1;
  }
  std::printf("# run report: %s (%zu sections)\n", opt.report.c_str(),
              report.sections().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "gc") == 0) return run_gc(argc, argv);

  Options opt;
  if (!parse(argc, argv, opt)) {
    std::puts(
        "usage: chaos_run [--nodes N] [--trials T] [--graph FAMILY]\n"
        "                 [--transport reliable|direct] [--seed S]\n"
        "                 [--threads T] [--jobs J] [--deadline ROUNDS]\n"
        "                 [--verify] [--audit-determinism] [--report PATH]\n"
        "                 [--amnesia] [--recover]\n"
        "                 [--cache] [--no-cache] [--cache-dir PATH]\n"
        "       chaos_run gc [--cache-dir PATH] [--max-bytes N]\n"
        "families: tree path cycle grid random star complete");
    return 2;
  }

  const net::Graph graph = make_graph(opt);
  // The sweep suite is the registry minus the framework apps dj and
  // meeting, which join only the recovery lane below (historic sweep set —
  // the sweep's fault levels were calibrated against these seven).
  std::vector<AppEntry> suite;
  for (const AppEntry& app : apps::app_registry()) {
    std::string_view name = app.name;
    if (name != "dj" && name != "meeting") suite.push_back(app);
  }

  // The result cache (src/cache): shared by the sweep DAG and the report
  // pass. The determinism audit never touches it — its whole point is to
  // re-execute.
  const std::string cache_dir = resolve_cache_dir(opt);
  std::unique_ptr<cache::Store> store;
  if (!cache_dir.empty()) store = std::make_unique<cache::Store>(cache_dir);

  if (opt.audit_determinism) return run_determinism_audit(graph, opt, suite);

  if (opt.amnesia) {
    // The recovery lane runs the full registry: dj and meeting are
    // multi-phase (election + tree build + pipelined aggregation), the
    // richest recovery surface the suite has. The lane itself always
    // executes (its verdicts are about live behaviour under a watchdog);
    // only the report sections read through the cache.
    const std::vector<AppEntry>& recovery_suite = apps::app_registry();
    int exit_code = run_recovery_lane(graph, opt, recovery_suite);
    if (!opt.report.empty()) {
      int report_code = write_run_report(graph, opt, recovery_suite, store.get());
      if (report_code != 0) exit_code = report_code;
    }
    return exit_code;
  }

  check::Verifier verifier;
  const std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.1};

  std::size_t jobs = opt.jobs;
  if (opt.verify && jobs > 1) {
    std::printf("# --verify shares one conformance observer; experiments run serially\n");
    jobs = 1;
  }
  // --verify must observe every run execute, so it bypasses the cache.
  cache::Store* sweep_store = opt.verify ? nullptr : store.get();

  std::printf("# graph=%s nodes=%zu trials=%zu transport=%s threads=%zu jobs=%zu\n",
              opt.graph.c_str(), graph.num_nodes(), opt.trials,
              opt.transport == net::Transport::kReliable ? "reliable" : "direct",
              opt.threads, jobs);
  if (store != nullptr) {
    std::printf("# cache: %s%s\n", cache_dir.c_str(),
                sweep_store == nullptr ? " (bypassed by --verify)" : "");
  }

  // The sweep as an experiment DAG: one node per (app, fault level); every
  // faulty level depends on its app's clean run, whose median rounds is the
  // overhead denominator. The runner schedules ready nodes across `jobs`
  // workers, serves hits from the store, and seals misses back in;
  // aggregation below consumes sealed blobs only, so the table is identical
  // whether a row was computed or replayed.
  std::vector<cache::Experiment> experiments;
  for (const AppEntry& app : suite) {
    const std::string clean_name =
        std::string(app.name) + "@drop=" + rate_label(rates[0]);
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
      const double rate = rates[ri];
      cache::Experiment experiment;
      experiment.name = std::string(app.name) + "@drop=" + rate_label(rate);
      if (ri > 0) experiment.deps.push_back(clean_name);
      if (sweep_store != nullptr) {
        experiment.key = sweep_cache_key(opt, graph, app.name, rate);
      }
      check::Verifier* observer = opt.verify ? &verifier : nullptr;
      experiment.produce = [&graph, &opt, &app, rate, observer]() {
        return run_sweep_experiment(graph, opt, app, rate, observer);
      };
      experiments.push_back(std::move(experiment));
    }
  }

  obs::MetricsRegistry cache_metrics;
  cache::DagRunner runner(sweep_store, &cache_metrics);
  const std::vector<cache::ExperimentResult> results =
      runner.run(experiments, jobs);

  std::printf("%-12s %6s %8s %6s %9s %11s %9s %13s\n", "app", "drop", "corrupt",
              "dup", "success", "med_rounds", "overhead", "retrans/run");

  int exit_code = 0;
  std::size_t result_index = 0;
  for (const AppEntry& app : suite) {
    double clean_rounds = 0.0;
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
      const double rate = rates[ri];
      const cache::ExperimentResult& result = results[result_index++];
      std::vector<TrialStat> stats;
      if (!result.ok) {
        std::fprintf(stderr, "chaos_run: experiment %s failed: %s\n",
                     result.name.c_str(), result.error.c_str());
        exit_code = 1;
      } else if (!decode_sweep_blob(result.blob, &stats)) {
        std::fprintf(stderr, "chaos_run: experiment %s: undecodable blob\n",
                     result.name.c_str());
        exit_code = 1;
        stats.clear();
      }

      std::size_t successes = 0;
      std::size_t retransmissions = 0;
      std::vector<double> rounds;
      for (const TrialStat& stat : stats) {
        retransmissions += stat.retransmissions;
        if (stat.success) {
          ++successes;
          rounds.push_back(static_cast<double>(stat.rounds));
        }
      }

      double med = median(rounds);
      if (ri == 0) clean_rounds = med;
      double overhead = clean_rounds > 0.0 && med > 0.0 ? med / clean_rounds : 0.0;
      double success_rate =
          static_cast<double>(successes) / static_cast<double>(opt.trials);
      std::printf("%-12s %6.2f %8.3f %6.3f %8.0f%% %11.0f %8.2fx %13.1f\n",
                  app.name, rate, rate / 5.0, rate / 10.0, 100.0 * success_rate,
                  med, overhead,
                  static_cast<double>(retransmissions) /
                      static_cast<double>(opt.trials));
      // The acceptance bar: with the reliable transport every app must keep
      // a success rate of at least 2/3 at every swept fault level.
      if (opt.transport == net::Transport::kReliable && 3 * successes < 2 * opt.trials) {
        exit_code = 1;
      }
    }
  }
  if (exit_code != 0) {
    std::fprintf(stderr, "chaos_run: some app fell below 2/3 success\n");
  }
  if (opt.verify) {
    std::printf("%s\n", verifier.report().c_str());
    if (!verifier.ok()) exit_code = 1;
  }
  if (!opt.report.empty()) {
    int report_code = write_run_report(graph, opt, suite, store.get());
    if (report_code != 0) exit_code = report_code;
  }
  if (store != nullptr) {
    // hit/miss/evict visibility rides the metrics pipeline (the DAG runner
    // counted dag.* into cache_metrics above); the store totals below also
    // cover the report pass, which shares the same Store.
    store->export_metrics(cache_metrics);
    const cache::Store::Stats totals = store->stats();
    std::printf("# cache: hits=%zu misses=%zu puts=%zu corrupt=%zu\n",
                totals.hits, totals.misses + totals.corrupt_misses, totals.puts,
                totals.corrupt_misses);
  }
  return exit_code;
}
