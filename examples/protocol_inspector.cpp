// Protocol inspector: attach a message trace to the engine and watch a
// Theorem 8 query batch flow through the network round by round — the
// pipelined index downcast, the aggregating convergecast, and the
// uncompute mirrors.
//
//   ./example_protocol_inspector

#include <cstdio>

#include "src/framework/distributed_oracle.hpp"
#include "src/net/bfs.hpp"
#include "src/net/generators.hpp"
#include "src/net/trace.hpp"

using namespace qcongest;

int main() {
  net::Graph graph = net::binary_tree(15);
  net::Engine engine(graph, 1, 1);
  net::Trace trace;
  engine.set_trace(&trace);

  auto election = net::elect_leader(engine);
  net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
  std::printf("topology: binary tree, n=%zu, leader=%zu, height=%zu\n",
              graph.num_nodes(), election.leader, tree.height);
  std::printf("\nleader election + BFS build: %zu messages\n", trace.size());

  // One Theorem 8 batch: 4 parallel queries over a 64-slot domain.
  framework::OracleConfig config;
  config.domain_size = 64;
  config.parallelism = 4;
  config.value_bits = 8;
  config.combine = [](std::int64_t a, std::int64_t b) { return a + b; };
  config.identity = 0;
  std::vector<std::vector<query::Value>> data(graph.num_nodes(),
                                              std::vector<query::Value>(64, 1));
  framework::DistributedOracle oracle(engine, tree, config, data);

  trace.clear();
  std::vector<std::size_t> batch{3, 17, 42, 63};
  auto values = oracle.query(batch);
  std::printf("\none charged batch (p=4, q=8 bits): %zu rounds, %zu messages\n",
              oracle.total_cost().rounds, trace.size());
  std::printf("values: %lld %lld %lld %lld (every node contributed 1)\n\n",
              static_cast<long long>(values[0]), static_cast<long long>(values[1]),
              static_cast<long long>(values[2]), static_cast<long long>(values[3]));

  std::printf("activity timeline (messages per round):\n%s\n",
              trace.render_timeline(48).c_str());

  auto busiest = trace.busiest_edges(3);
  std::printf("busiest directed edges:\n");
  for (const auto& [edge, count] : busiest) {
    std::printf("  %zu -> %zu : %zu words\n", edge.first, edge.second, count);
  }
  return 0;
}
