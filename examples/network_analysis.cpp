// Network self-analysis (Section 5 of the paper).
//
// The network measures its own shape — diameter, radius, average
// eccentricity, girth — using the quantum protocols of Lemmas 21, 22 and
// Corollary 26, comparing each against the exact classical computation.
//
//   ./example_network_analysis

#include <cstdio>

#include "src/apps/eccentricity.hpp"
#include "src/apps/girth.hpp"
#include "src/net/generators.hpp"

using namespace qcongest;
using namespace qcongest::apps;

namespace {

void analyze(const char* name, const net::Graph& graph, util::Rng& rng) {
  std::printf("--- %s: n=%zu m=%zu ---\n", name, graph.num_nodes(),
              graph.num_edges());

  auto diam_q = diameter_quantum(graph, rng);
  auto diam_c = diameter_classical(graph);
  std::printf("  diameter : truth=%zu quantum=%zu (%zu rounds) classical=%zu (%zu rounds)\n",
              graph.diameter(), diam_q.value, diam_q.cost.rounds, diam_c.value,
              diam_c.cost.rounds);

  auto rad_q = radius_quantum(graph, rng);
  std::printf("  radius   : truth=%zu quantum=%zu (%zu rounds)\n", graph.radius(),
              rad_q.value, rad_q.cost.rounds);

  auto avg = average_eccentricity_quantum(graph, /*epsilon=*/1.0, rng);
  std::printf("  avg ecc  : truth=%.3f estimate=%.3f (+-1.0, %zu rounds)\n",
              graph.average_eccentricity(), avg.estimate, avg.cost.rounds);

  auto g_q = girth_quantum(graph, /*mu=*/0.5, rng);
  auto g_c = girth_classical(graph);
  auto show = [](const std::optional<std::size_t>& g) {
    return g ? static_cast<long long>(*g) : -1LL;
  };
  std::printf("  girth    : truth=%lld quantum=%lld (%zu measured + %zu charged rounds)"
              " classical=%lld (%zu rounds)\n",
              show(graph.girth()), show(g_q.girth), g_q.cost.rounds, g_q.charged_rounds,
              show(g_c.girth), g_c.cost.rounds);
}

}  // namespace

int main() {
  util::Rng rng(3);

  analyze("Petersen graph", net::petersen_graph(), rng);
  analyze("8x8 grid", net::grid_graph(8, 8), rng);
  analyze("two data centers", net::two_stars_graph(24, 24, 2), rng);
  net::Graph ring_with_spurs = net::cycle_with_trees(6, 60, rng);
  analyze("ring with spurs", ring_with_spurs, rng);
  return 0;
}
