// The Section 6 toolkit: amplitude amplification, phase estimation, and
// amplitude estimation on distributed black-box subroutines that are NOT
// standard input oracles.
//
// Scenario: a distributed randomized search protocol succeeds with small
// probability p per run. Amplitude amplification boosts it quadratically
// faster than classical repetition; amplitude estimation measures p itself;
// phase estimation reads out an eigenphase of a distributed unitary.
//
//   ./example_amplitude_toolkit

#include <cmath>
#include <cstdio>

#include "src/framework/non_oracle.hpp"
#include "src/net/generators.hpp"
#include "src/net/pipeline.hpp"

using namespace qcongest;
using namespace qcongest::framework;

int main() {
  util::Rng rng(5);
  net::Graph graph = net::grid_graph(6, 6);
  net::Engine engine(graph, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  std::printf("network: 6x6 grid, D=%zu, BFS height=%zu\n\n", graph.diameter(),
              tree.height);

  // A 5-round distributed subroutine succeeding with probability 0.02.
  const double p = 0.02;
  const std::size_t subroutine_rounds = 5;
  DistributedSubroutine subroutine;
  subroutine.success_probability = p;
  subroutine.run = [&]() {
    std::vector<std::int64_t> payload(subroutine_rounds, 0);
    return net::pipelined_downcast(engine, tree, payload, true).cost;
  };

  // --- Amplitude amplification (Corollary 28) ------------------------------
  auto iterate = amplification_iterate(engine, tree, subroutine);
  std::printf("one amplification iterate (Lemma 27): %zu measured rounds "
              "(R + D structure)\n",
              iterate.rounds);

  auto amplified = amplitude_amplify(engine, tree, subroutine, /*delta=*/0.05, rng);
  double classical_repeats = std::log(0.05) / std::log(1.0 - p);
  std::printf("amplitude amplification to 95%%: success=%s, %zu measured rounds\n",
              amplified.success ? "yes" : "no", amplified.cost.rounds);
  std::printf("  classical repetition would need ~%.0f runs ~ %.0f rounds "
              "(quadratically worse in 1/p)\n\n",
              classical_repeats,
              classical_repeats * static_cast<double>(subroutine_rounds + tree.height));

  // --- Amplitude estimation (Corollary 30) ---------------------------------
  for (double eps : {0.02, 0.01, 0.005}) {
    auto estimate = amplitude_estimate(engine, tree, subroutine, /*p_max=*/0.1, eps,
                                       /*delta=*/0.1, rng);
    std::printf("amplitude estimation eps=%.3f: p_hat=%.4f (true %.3f), "
                "%zu measured rounds\n",
                eps, estimate.p_estimate, p, estimate.cost.rounds);
  }
  std::printf("\n");

  // --- Phase estimation (Lemma 29) ------------------------------------------
  const double theta = 0.8765;
  auto apply_u = [&]() {
    std::vector<std::int64_t> payload(2, 0);
    return net::pipelined_downcast(engine, tree, payload, true).cost;
  };
  for (double eps : {0.2, 0.05}) {
    auto estimate = phase_estimate(engine, tree, apply_u, theta, eps, 0.1, rng);
    std::printf("phase estimation eps=%.2f: theta_hat=%.4f (true %.4f), "
                "%zu measured rounds\n",
                eps, estimate.theta, theta, estimate.cost.rounds);
  }
  return 0;
}
