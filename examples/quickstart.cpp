// Quickstart: run a quantum query algorithm against a simulated Quantum
// CONGEST network.
//
// Builds a small network, gives every node a private bit-vector, and uses
// the paper's framework (Theorem 8) to run parallel Grover search (Lemma 2)
// for an index whose network-wide sum is non-zero — counting both the query
// batches and the real, measured CONGEST rounds.
//
//   ./example_quickstart

#include <cstdio>

#include "src/framework/distributed_oracle.hpp"
#include "src/net/bfs.hpp"
#include "src/net/generators.hpp"
#include "src/query/parallel_grover.hpp"

using namespace qcongest;

int main() {
  util::Rng rng(2026);

  // 1. A random connected network of 32 processors.
  net::Graph graph = net::random_connected_graph(32, 20, rng);
  net::Engine engine(graph, /*bandwidth_words=*/1, /*seed=*/1);
  std::printf("network: n=%zu m=%zu diameter=%zu\n", graph.num_nodes(),
              graph.num_edges(), graph.diameter());

  // 2. Classical CONGEST preliminaries: elect a leader, build its BFS tree.
  auto election = net::elect_leader(engine);
  net::BfsTree tree = net::build_bfs_tree(engine, election.leader);
  std::printf("leader: node %zu (%zu rounds); BFS tree height %zu (%zu rounds)\n",
              election.leader, election.cost.rounds, tree.height, tree.cost.rounds);

  // 3. Distributed data: node v holds x^{(v)} in {0,1}^k; exactly one index
  //    has a 1 somewhere in the network.
  const std::size_t k = 256;
  std::vector<std::vector<query::Value>> data(graph.num_nodes(),
                                              std::vector<query::Value>(k, 0));
  std::size_t secret_index = rng.index(k);
  data[rng.index(graph.num_nodes())][secret_index] = 1;

  // 4. The Theorem 8 oracle: each charged batch of p parallel queries is
  //    executed as real message traffic (index downcast, +-convergecast,
  //    uncompute) on the engine.
  framework::OracleConfig config;
  config.domain_size = k;
  config.parallelism = std::max<std::size_t>(1, tree.height);  // p = D
  config.value_bits = 6;
  config.combine = [](std::int64_t a, std::int64_t b) { return a + b; };
  config.identity = 0;
  framework::DistributedOracle oracle(engine, tree, config, data);

  // 5. Parallel Grover search (Lemma 2) over the network.
  auto found = query::grover_find_one(
      oracle, [](query::Value v) { return v != 0; }, rng);

  if (found) {
    std::printf("found marked index %zu (expected %zu)\n", *found, secret_index);
  } else {
    std::printf("no marked index found (probability <= 1/3 outcome)\n");
  }
  std::printf("query batches: %zu (p = %zu each)\n", oracle.ledger().batches,
              config.parallelism);
  std::printf("measured network cost: %zu rounds, %zu quantum words, %zu messages\n",
              oracle.total_cost().rounds, oracle.total_cost().quantum_words,
              oracle.total_cost().messages);
  std::printf("classical gather would need ~ D + k = %zu rounds\n",
              tree.height + k);
  return 0;
}
