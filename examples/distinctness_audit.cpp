// Distributed duplicate audit (Section 4.2 of the paper).
//
// Scenario 1 — distributed ledger audit: every node holds a k-slot vector
// of signed adjustments; the audit must find two ledger slots whose
// network-wide totals coincide (Lemma 12).
//
// Scenario 2 — identifier audit: every node holds one serial number; the
// network checks that no two nodes share one (Corollary 14).
//
//   ./example_distinctness_audit

#include <cstdio>

#include "src/apps/element_distinctness.hpp"
#include "src/apps/twoparty.hpp"
#include "src/net/generators.hpp"

using namespace qcongest;
using namespace qcongest::apps;

int main() {
  util::Rng rng(11);

  // --- Scenario 1: ledger audit -------------------------------------------
  const std::size_t n = 24, k = 1024;
  net::Graph network = net::random_connected_graph(n, 16, rng);
  std::vector<std::vector<query::Value>> ledger(n, std::vector<query::Value>(k, 0));
  // Slot totals are distinct by construction...
  for (std::size_t j = 0; j < k; ++j) {
    ledger[rng.index(n)][j] = static_cast<query::Value>(3 * j + 1);
  }
  // ...except two slots that end up with the same total.
  std::size_t dup_a = 17, dup_b = 911;
  ledger[rng.index(n)][dup_a] = 0;
  ledger[5][dup_a] = ledger[2][dup_b] + ledger[9][dup_b];  // equal totals
  for (std::size_t v = 0; v < n; ++v) {
    if (v != 5) ledger[v][dup_a] = 0;
  }

  std::int64_t value_range = static_cast<std::int64_t>(4 * k);
  // Boost the 2/3 success probability by repetition (the paper's standard
  // remark: the leader combines independent runs).
  auto quantum = element_distinctness_vector_quantum(network, ledger, value_range, rng);
  for (int attempt = 0; attempt < 2 && !quantum.collision; ++attempt) {
    auto retry = element_distinctness_vector_quantum(network, ledger, value_range, rng);
    retry.cost += quantum.cost;
    quantum = std::move(retry);
  }
  auto classical = element_distinctness_vector_classical(network, ledger, value_range);

  std::printf("--- ledger audit: n=%zu, k=%zu, D=%zu ---\n", n, k, network.diameter());
  if (classical.collision) {
    std::printf("  classical: slots %zu and %zu share total %lld (%zu rounds)\n",
                classical.collision->i, classical.collision->j,
                static_cast<long long>(classical.collision->value),
                classical.cost.rounds);
  }
  if (quantum.collision) {
    std::printf("  quantum  : slots %zu and %zu share total %lld (%zu rounds, %zu batches)\n",
                quantum.collision->i, quantum.collision->j,
                static_cast<long long>(quantum.collision->value), quantum.cost.rounds,
                quantum.batches);
  } else {
    std::printf("  quantum  : walk missed the collision this run (prob <= 1/3)\n");
  }

  // --- Scenario 2: serial-number audit ------------------------------------
  auto gadget = distinctness_nodes_gadget(20, /*intersect=*/true, rng);
  auto node_q = element_distinctness_nodes_quantum(gadget.graph, gadget.values,
                                                   gadget.value_range, rng);
  auto node_c = element_distinctness_nodes_classical(gadget.graph, gadget.values,
                                                     gadget.value_range);
  std::printf("--- serial-number audit: n=%zu (two-star gadget) ---\n",
              gadget.graph.num_nodes());
  if (node_c.collision) {
    std::printf("  classical: nodes %zu and %zu share serial %lld (%zu rounds)\n",
                node_c.collision->i, node_c.collision->j,
                static_cast<long long>(gadget.values[node_c.collision->i]),
                node_c.cost.rounds);
  }
  if (node_q.collision) {
    std::printf("  quantum  : nodes %zu and %zu share serial %lld (%zu rounds)\n",
                node_q.collision->i, node_q.collision->j,
                static_cast<long long>(gadget.values[node_q.collision->i]),
                node_q.cost.rounds);
  } else {
    std::printf("  quantum  : walk missed the duplicate this run (prob <= 1/3)\n");
  }

  std::printf("\nLemma 12: quantum O~(k^{2/3} D^{1/3} + D); classical Omega(k/log n).\n");
  return 0;
}
