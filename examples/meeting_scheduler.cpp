// Meeting scheduler (Section 4.1 of the paper).
//
// A committee of participants connected by a sparse network wants to pick
// the time slot where the most members are available. Runs the quantum
// protocol of Lemma 10 next to the classical streaming baseline and the
// ground truth, on both a realistic committee network and the two-party
// lower-bound gadget.
//
//   ./example_meeting_scheduler [slots]

#include <cstdio>
#include <cstdlib>

#include "src/apps/meeting_scheduling.hpp"
#include "src/apps/twoparty.hpp"
#include "src/net/generators.hpp"

using namespace qcongest;
using namespace qcongest::apps;

namespace {

void run_case(const char* name, const net::Graph& graph, const Calendars& calendars,
              util::Rng& rng) {
  auto reference = meeting_scheduling_reference(calendars);
  auto classical = meeting_scheduling_classical(graph, calendars);
  auto quantum = meeting_scheduling_quantum(graph, calendars, rng);

  std::printf("--- %s (n=%zu, k=%zu, D=%zu) ---\n", name, graph.num_nodes(),
              calendars[0].size(), graph.diameter());
  std::printf("  ground truth : slot %zu with %lld available\n", reference.best_slot,
              static_cast<long long>(reference.availability));
  std::printf("  classical    : slot %zu, %zu rounds (exact)\n", classical.best_slot,
              classical.cost.rounds);
  std::printf("  quantum      : slot %zu, %zu rounds, %zu batches%s\n",
              quantum.best_slot, quantum.cost.rounds, quantum.batches,
              quantum.availability == reference.availability ? ""
                                                             : "  [suboptimal run]");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t k = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2048;
  util::Rng rng(7);

  // A 40-member committee: sparse random network, busy random calendars.
  net::Graph committee = net::random_connected_graph(40, 30, rng);
  Calendars calendars(40, std::vector<query::Value>(k, 0));
  for (auto& row : calendars) {
    for (auto& slot : row) slot = rng.bernoulli(0.3) ? 1 : 0;
  }
  run_case("random committee", committee, calendars, rng);

  // The Lemma 11 reduction gadget: two busy members at distance D, everyone
  // in between free — the worst case for classical streaming.
  auto gadget = meeting_scheduling_gadget(k, 8, /*intersect=*/true, rng);
  run_case("two-party gadget", gadget.graph, gadget.calendars, rng);

  std::printf("\nLemma 10: quantum O~(sqrt(kD) + D); classical Theta(k + D).\n");
  std::printf("Re-run with a larger slot count to widen the gap, e.g. %s 16384\n",
              argv[0]);
  return 0;
}
