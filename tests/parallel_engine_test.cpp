// Deterministic parallel execution: the sharded round scheduler
// (Engine::set_threads) must be observationally identical to the serial
// engine — byte-identical delivery transcripts and equal RunResults for
// every thread count, on clean and faulty networks alike. This is the
// property the chaos_run --audit-determinism --threads mode checks
// end-to-end and the TSan CI lane checks for data races; here it is pinned
// as a unit test so a violation names the exact divergence.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/net/bfs.hpp"
#include "src/net/engine.hpp"
#include "src/net/fault.hpp"
#include "src/net/generators.hpp"
#include "src/net/pipeline.hpp"
#include "src/net/trace.hpp"
#include "src/util/thread_pool.hpp"

namespace qcongest {
namespace {

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossCalls) {
  util::ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  for (int repeat = 0; repeat < 20; ++repeat) {
    sum.store(0);
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u);
  }
}

TEST(ThreadPool, PropagatesSmallestIndexException) {
  util::ThreadPool pool(4);
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 7 || i == 50) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }
}

TEST(ThreadPool, SerialFallbackWithoutWorkers) {
  // threads <= 1 spawns nothing; parallel_for degrades to a plain loop on
  // the calling thread.
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// --- serial vs sharded parity ------------------------------------------------

struct WorkloadRun {
  std::string transcript;
  net::RunResult bfs_cost;
  net::RunResult down_cost;
};

std::string render(const net::Trace& trace) {
  std::string s;
  for (const net::TraceEvent& e : trace.events()) {
    s += std::to_string(e.round) + ' ' + std::to_string(e.from) + ' ' +
         std::to_string(e.to) + ' ' + std::to_string(e.tag) + ' ' +
         (e.quantum ? '1' : '0') + '\n';
  }
  return s;
}

/// BFS-tree construction followed by a pipelined downcast — flood plus
/// pipeline traffic, the two scheduling patterns with the most inter-node
/// ordering to get wrong.
WorkloadRun run_workload(const net::Graph& g, std::size_t threads,
                 const net::FaultPlan* plan) {
  net::Engine engine(g, /*bandwidth=*/1, /*seed=*/42);
  engine.set_threads(threads);
  if (plan != nullptr) engine.set_fault_plan(*plan);
  net::Trace trace;
  engine.set_trace(&trace);

  WorkloadRun out;
  try {
    net::BfsTree tree = net::build_bfs_tree(engine, 0);
    out.bfs_cost = tree.cost;
    std::vector<std::int64_t> payload(24);
    std::iota(payload.begin(), payload.end(), 1);
    auto down = net::pipelined_downcast(engine, tree, payload, /*quantum=*/false);
    out.down_cost = down.cost;
  } catch (const std::exception& e) {
    // Parity must hold on failing runs too: both engines must fail the
    // same way at the same point.
    out.transcript = std::string("exception: ") + e.what() + '\n';
  }
  out.transcript += render(trace);
  return out;
}

void expect_parity(const net::Graph& g, const net::FaultPlan* plan,
                   const std::string& label) {
  WorkloadRun serial = run_workload(g, 1, plan);
  for (std::size_t threads : {2u, 4u, 8u}) {
    WorkloadRun sharded = run_workload(g, threads, plan);
    EXPECT_EQ(serial.transcript, sharded.transcript)
        << label << ": transcript diverged at threads=" << threads;
    EXPECT_EQ(serial.bfs_cost, sharded.bfs_cost)
        << label << ": BFS RunResult diverged at threads=" << threads;
    EXPECT_EQ(serial.down_cost, sharded.down_cost)
        << label << ": downcast RunResult diverged at threads=" << threads;
  }
}

net::FaultPlan lossy_plan() {
  net::FaultPlan plan;
  plan.link.drop = 0.05;
  plan.link.corrupt = 0.01;
  plan.link.duplicate = 0.005;
  plan.seed = 2024;
  return plan;
}

TEST(ParallelEngine, CleanNetworkParity) {
  util::Rng rng(11);
  expect_parity(net::path_graph(17), nullptr, "path");
  expect_parity(net::binary_tree(31), nullptr, "tree");
  expect_parity(net::random_connected_graph(20, 14, rng), nullptr, "random");
}

TEST(ParallelEngine, FaultLotteryParity) {
  net::FaultPlan plan = lossy_plan();
  util::Rng rng(12);
  expect_parity(net::binary_tree(31), &plan, "lossy tree");
  expect_parity(net::random_connected_graph(20, 14, rng), &plan, "lossy random");
}

TEST(ParallelEngine, CrashWindowParity) {
  net::FaultPlan plan;
  plan.crashes.push_back({3, 2, 5});
  plan.crashes.push_back({7, 4, net::CrashEvent::kNeverRestarts});
  plan.seed = 99;
  util::Rng rng(13);
  expect_parity(net::random_connected_graph(16, 12, rng), &plan, "crashes");
}

TEST(ParallelEngine, SingleNodeAndThreadOversubscription) {
  // More threads than nodes: shards degenerate to one node each; a
  // single-node graph exercises the n == 1 serial short-circuit.
  expect_parity(net::path_graph(2), nullptr, "two nodes");
  expect_parity(net::path_graph(3), nullptr, "three nodes");
}

TEST(ParallelEngine, ReliableTransportStaysSerial) {
  // threads > 1 under the reliable transport is a documented no-op (the
  // ack/retransmit layer serializes on link state); the knob must be
  // accepted and the run must match the serial one exactly.
  net::Graph g = net::binary_tree(15);
  auto run_reliable = [&](std::size_t threads) {
    net::Engine engine(g, 1, 7);
    engine.set_transport(net::Transport::kReliable);
    engine.set_threads(threads);
    EXPECT_EQ(engine.threads(), threads);
    net::Trace trace;
    engine.set_trace(&trace);
    net::BfsTree tree = net::build_bfs_tree(engine, 0);
    return render(trace) + " rounds=" + std::to_string(tree.cost.rounds);
  };
  EXPECT_EQ(run_reliable(1), run_reliable(8));
}

TEST(ParallelEngine, RepeatedParallelRunsReplay) {
  // The sharded engine must also replay against itself: same seed, same
  // thread count, identical transcript (no dependence on scheduling).
  net::Graph g = net::binary_tree(31);
  net::FaultPlan plan = lossy_plan();
  WorkloadRun first = run_workload(g, 4, &plan);
  WorkloadRun second = run_workload(g, 4, &plan);
  EXPECT_EQ(first.transcript, second.transcript);
  EXPECT_EQ(first.bfs_cost, second.bfs_cost);
}

}  // namespace
}  // namespace qcongest
