// Regression tests for the benchmark-harness helpers: median_of (the
// even-trial-count midpoint fix), the strict QCONGEST_BENCH_THREADS parse,
// and the QCONGEST_BENCH_JSON_DIR normalization.

#include <gtest/gtest.h>

#include "bench/bench_util.hpp"
#include "src/util/env.hpp"

namespace qcongest {
namespace {

TEST(MedianOf, OddTrialCountsPickTheMiddle) {
  int call = 0;
  double values[] = {5.0, 1.0, 3.0};
  double result = bench::median_of(3, std::function<double()>([&] {
                                     return values[call++];
                                   }));
  EXPECT_DOUBLE_EQ(result, 3.0);
}

TEST(MedianOf, EvenTrialCountsAverageTheMiddlePair) {
  // Regression test: the old implementation returned the upper-middle
  // element for even trial counts, biasing every even-count median upward.
  int call = 0;
  double values[] = {4.0, 1.0, 3.0, 2.0};
  double result = bench::median_of(4, std::function<double()>([&] {
                                     return values[call++];
                                   }));
  EXPECT_DOUBLE_EQ(result, 2.5);
}

TEST(MedianOf, IndexedOverloadMatchesSerialOverload) {
  auto f = [](int t) { return static_cast<double>((t * 7 + 3) % 10); };
  for (int trials : {1, 2, 4, 5, 8}) {
    std::vector<double> values;
    for (int t = 0; t < trials; ++t) values.push_back(f(t));
    double expected = util::median(std::move(values));
    EXPECT_DOUBLE_EQ(bench::median_of(trials, std::function<double(int)>(f)),
                     expected)
        << "trials=" << trials;
  }
}

TEST(EnvThreadCount, AcceptsPositiveIntegers) {
  std::string warning;
  EXPECT_EQ(util::env_thread_count(nullptr, 1, &warning), 1u);
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(util::env_thread_count("8", 1, &warning), 8u);
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(util::env_thread_count("  16  ", 1, &warning), 16u);
  EXPECT_TRUE(warning.empty());
}

TEST(EnvThreadCount, RejectsGarbageWithWarning) {
  // Regression test: these all used to silently fall back to serial via
  // atoi-style parsing; now each produces an explicit warning.
  for (const char* bad : {"", "  ", "abc", "4x", "0", "-2", "2.5",
                          "999999999999999999999999"}) {
    std::string warning;
    EXPECT_EQ(util::env_thread_count(bad, 3, &warning), 3u) << "input: " << bad;
    EXPECT_FALSE(warning.empty()) << "input: " << bad;
  }
}

TEST(EnvDirectory, NormalizesTrailingSlashes) {
  // Regression test: "dir/" + "/" + file used to produce "dir//file".
  EXPECT_EQ(util::env_directory(nullptr), "");
  EXPECT_EQ(util::env_directory(""), "");
  EXPECT_EQ(util::env_directory("out"), "out");
  EXPECT_EQ(util::env_directory("out/"), "out");
  EXPECT_EQ(util::env_directory("out///"), "out");
  EXPECT_EQ(util::env_directory("/tmp/x/"), "/tmp/x");
  EXPECT_EQ(util::env_directory("/"), "/");  // root stays root
}

TEST(EnvCacheDir, UnsetIsOffWithoutWarning) {
  std::string warning = "sentinel";
  EXPECT_EQ(util::env_cache_dir(nullptr, &warning), "");
  EXPECT_TRUE(warning.empty());
}

TEST(EnvCacheDir, EmptyOrBlankWarnsAndDisables) {
  for (const char* bad : {"", "   ", "\t"}) {
    std::string warning;
    EXPECT_EQ(util::env_cache_dir(bad, &warning), "") << "input: '" << bad << "'";
    EXPECT_FALSE(warning.empty()) << "input: '" << bad << "'";
  }
}

TEST(EnvCacheDir, RejectsRelativeClimbs) {
  // A relative ".." component escapes the working tree silently; reject.
  for (const char* bad : {"..", "../cache", "a/../b", "cache/.."}) {
    std::string warning;
    EXPECT_EQ(util::env_cache_dir(bad, &warning), "") << "input: " << bad;
    EXPECT_FALSE(warning.empty()) << "input: " << bad;
  }
  // The check is per component, not substring: dotted names are fine, and
  // absolute paths may say whatever they like.
  std::string warning;
  EXPECT_EQ(util::env_cache_dir("..cache", &warning), "..cache");
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(util::env_cache_dir("a..b/c", &warning), "a..b/c");
  EXPECT_EQ(util::env_cache_dir("/x/../y", &warning), "/x/../y");
}

TEST(EnvCacheDir, NormalizesTrailingSlashes) {
  std::string warning;
  EXPECT_EQ(util::env_cache_dir("/tmp/cache/", &warning), "/tmp/cache");
  EXPECT_EQ(util::env_cache_dir("cache///", &warning), "cache");
  EXPECT_EQ(util::env_cache_dir("/", &warning), "/");  // root stays root
}

TEST(SessionReport, IsProcessWideAndStartsEmpty) {
  obs::RunReport& report = bench::session_report();
  EXPECT_EQ(&report, &bench::session_report());
  report.clear();
  EXPECT_TRUE(report.empty());
}

}  // namespace
}  // namespace qcongest
