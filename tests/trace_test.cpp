#include <gtest/gtest.h>

#include <algorithm>

#include "src/net/bfs.hpp"
#include "src/net/generators.hpp"
#include "src/net/pipeline.hpp"
#include "src/net/trace.hpp"

namespace qcongest::net {
namespace {

TEST(Trace, RecordsEveryDelivery) {
  Graph g = path_graph(5);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  BfsTree tree = build_bfs_tree(engine, 0);
  EXPECT_EQ(trace.size(), tree.cost.messages);
  // Rounds in the trace are consistent with the measured round count.
  for (const TraceEvent& e : trace.events()) {
    EXPECT_LT(e.round, tree.cost.rounds + 1);
    EXPECT_TRUE(g.has_edge(e.from, e.to));
  }
}

TEST(Trace, PerRoundCountsSumToTotal) {
  Graph g = star_graph(8);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  BfsTree tree = build_bfs_tree(engine, 0);
  auto down = pipelined_downcast(engine, tree, {1, 2, 3, 4}, true);
  std::size_t total = 0;
  for (std::size_t c : trace.per_round_counts()) total += c;
  EXPECT_EQ(total, trace.size());
  EXPECT_EQ(trace.size(), tree.cost.messages + down.cost.messages);
}

TEST(Trace, BusiestEdgesAndTags) {
  Graph g = path_graph(4);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  BfsTree tree = build_bfs_tree(engine, 0);
  trace.clear();
  (void)pipelined_downcast(engine, tree, {1, 2, 3, 4, 5}, false);
  auto busiest = trace.busiest_edges(2);
  ASSERT_EQ(busiest.size(), 2u);
  EXPECT_EQ(busiest[0].second, 5u);  // every tree edge carries 5 words
  auto tags = trace.per_tag_counts();
  EXPECT_EQ(tags.size(), 1u);  // only the downcast tag
  EXPECT_EQ(tags.begin()->second, 15u);  // 3 edges x 5 words
}

TEST(Trace, TimelineRenders) {
  Graph g = path_graph(3);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  (void)build_bfs_tree(engine, 0);
  std::string timeline = trace.render_timeline(20);
  EXPECT_NE(timeline.find("r0 |"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  // Detaching stops recording.
  engine.set_trace(nullptr);
  std::size_t before = trace.size();
  (void)build_bfs_tree(engine, 0);
  EXPECT_EQ(trace.size(), before);
}

TEST(Trace, EdgeTotalsFeedDotExport) {
  Graph g = path_graph(3);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  BfsTree tree = build_bfs_tree(engine, 0);
  (void)pipelined_downcast(engine, tree, {1, 2}, false);
  auto totals = trace.edge_totals();
  EXPECT_EQ(totals.size(), 2u);  // both path edges used
  std::string dot = g.to_dot(&totals);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1 [label="), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2 [label="), std::string::npos);
}

TEST(Trace, DotExportWithoutLabels) {
  Graph g = cycle_graph(4);
  std::string dot = g.to_dot();
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n3;"), std::string::npos);
  // Each undirected edge exactly once.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '-') / 2, 4);
}

TEST(Trace, EmptyTraceBehaves) {
  Trace trace;
  EXPECT_TRUE(trace.per_round_counts().empty());
  EXPECT_TRUE(trace.busiest_edges(3).empty());
  EXPECT_EQ(trace.render_timeline(), "");
}

TEST(Trace, BusiestEdgesBreaksTiesByEndpoints) {
  // Four directed edges, all with the same count: the result must come back
  // sorted by (from, to) ascending, independent of recording order.
  // Regression test — the old comparator only ordered by count, leaving tied
  // edges in whatever order the sort left them.
  Trace trace;
  for (auto [from, to] : {std::pair<NodeId, NodeId>{3, 1},
                          {0, 2},
                          {1, 0},
                          {0, 1}}) {
    trace.record({/*round=*/0, from, to, /*tag=*/7, /*quantum=*/false});
    trace.record({/*round=*/1, from, to, /*tag=*/7, /*quantum=*/false});
  }
  auto busiest = trace.busiest_edges(4);
  ASSERT_EQ(busiest.size(), 4u);
  std::vector<std::pair<NodeId, NodeId>> order;
  for (const auto& [edge, count] : busiest) {
    EXPECT_EQ(count, 2u);
    order.push_back(edge);
  }
  std::vector<std::pair<NodeId, NodeId>> expected = {{0, 1}, {0, 2}, {1, 0}, {3, 1}};
  EXPECT_EQ(order, expected);
  // A higher-count edge still sorts first regardless of endpoints.
  trace.record({/*round=*/2, 9, 9, /*tag=*/7, /*quantum=*/false});
  trace.record({/*round=*/2, 9, 9, /*tag=*/7, /*quantum=*/false});
  trace.record({/*round=*/3, 9, 9, /*tag=*/7, /*quantum=*/false});
  auto with_peak = trace.busiest_edges(1);
  ASSERT_EQ(with_peak.size(), 1u);
  EXPECT_EQ(with_peak[0].first, (std::pair<NodeId, NodeId>{9, 9}));
  EXPECT_EQ(with_peak[0].second, 3u);
}

TEST(Trace, TimelineHandlesSilentRounds) {
  // Events only in round 2: rounds 0 and 1 must still render, with empty
  // bars, and the round-2 bar is scaled to the peak.
  Trace trace;
  trace.record({/*round=*/2, 0, 1, /*tag=*/1, /*quantum=*/false});
  trace.record({/*round=*/2, 1, 2, /*tag=*/1, /*quantum=*/false});
  auto counts = trace.per_round_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 2u);
  std::string timeline = trace.render_timeline(10);
  EXPECT_NE(timeline.find("r0 | 0\n"), std::string::npos);
  EXPECT_NE(timeline.find("r1 | 0\n"), std::string::npos);
  EXPECT_NE(timeline.find("r2 |########## 2\n"), std::string::npos);
}

TEST(Trace, EdgeTotalsMergeBothDirections) {
  // Traffic in both directions over the same physical edge lands in one
  // undirected (min, max) bucket.
  Trace trace;
  trace.record({/*round=*/0, 0, 1, /*tag=*/1, /*quantum=*/false});
  trace.record({/*round=*/0, 1, 0, /*tag=*/1, /*quantum=*/false});
  trace.record({/*round=*/1, 1, 0, /*tag=*/1, /*quantum=*/false});
  trace.record({/*round=*/1, 2, 1, /*tag=*/1, /*quantum=*/false});
  auto totals = trace.edge_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ((totals.at({0, 1})), 3u);
  EXPECT_EQ((totals.at({1, 2})), 1u);
}

}  // namespace
}  // namespace qcongest::net
