#include <gtest/gtest.h>

#include <algorithm>

#include "src/net/bfs.hpp"
#include "src/net/generators.hpp"
#include "src/net/pipeline.hpp"
#include "src/net/trace.hpp"

namespace qcongest::net {
namespace {

TEST(Trace, RecordsEveryDelivery) {
  Graph g = path_graph(5);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  BfsTree tree = build_bfs_tree(engine, 0);
  EXPECT_EQ(trace.size(), tree.cost.messages);
  // Rounds in the trace are consistent with the measured round count.
  for (const TraceEvent& e : trace.events()) {
    EXPECT_LT(e.round, tree.cost.rounds + 1);
    EXPECT_TRUE(g.has_edge(e.from, e.to));
  }
}

TEST(Trace, PerRoundCountsSumToTotal) {
  Graph g = star_graph(8);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  BfsTree tree = build_bfs_tree(engine, 0);
  auto down = pipelined_downcast(engine, tree, {1, 2, 3, 4}, true);
  std::size_t total = 0;
  for (std::size_t c : trace.per_round_counts()) total += c;
  EXPECT_EQ(total, trace.size());
  EXPECT_EQ(trace.size(), tree.cost.messages + down.cost.messages);
}

TEST(Trace, BusiestEdgesAndTags) {
  Graph g = path_graph(4);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  BfsTree tree = build_bfs_tree(engine, 0);
  trace.clear();
  (void)pipelined_downcast(engine, tree, {1, 2, 3, 4, 5}, false);
  auto busiest = trace.busiest_edges(2);
  ASSERT_EQ(busiest.size(), 2u);
  EXPECT_EQ(busiest[0].second, 5u);  // every tree edge carries 5 words
  auto tags = trace.per_tag_counts();
  EXPECT_EQ(tags.size(), 1u);  // only the downcast tag
  EXPECT_EQ(tags.begin()->second, 15u);  // 3 edges x 5 words
}

TEST(Trace, TimelineRenders) {
  Graph g = path_graph(3);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  (void)build_bfs_tree(engine, 0);
  std::string timeline = trace.render_timeline(20);
  EXPECT_NE(timeline.find("r0 |"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  // Detaching stops recording.
  engine.set_trace(nullptr);
  std::size_t before = trace.size();
  (void)build_bfs_tree(engine, 0);
  EXPECT_EQ(trace.size(), before);
}

TEST(Trace, EdgeTotalsFeedDotExport) {
  Graph g = path_graph(3);
  Engine engine(g);
  Trace trace;
  engine.set_trace(&trace);
  BfsTree tree = build_bfs_tree(engine, 0);
  (void)pipelined_downcast(engine, tree, {1, 2}, false);
  auto totals = trace.edge_totals();
  EXPECT_EQ(totals.size(), 2u);  // both path edges used
  std::string dot = g.to_dot(&totals);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1 [label="), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2 [label="), std::string::npos);
}

TEST(Trace, DotExportWithoutLabels) {
  Graph g = cycle_graph(4);
  std::string dot = g.to_dot();
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n3;"), std::string::npos);
  // Each undirected edge exactly once.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '-') / 2, 4);
}

TEST(Trace, EmptyTraceBehaves) {
  Trace trace;
  EXPECT_TRUE(trace.per_round_counts().empty());
  EXPECT_TRUE(trace.busiest_edges(3).empty());
  EXPECT_EQ(trace.render_timeline(), "");
}

}  // namespace
}  // namespace qcongest::net
