#include <gtest/gtest.h>

#include <numeric>

#include "src/net/bfs.hpp"
#include "src/net/generators.hpp"
#include "src/net/multi_bfs.hpp"
#include "src/net/pipeline.hpp"

namespace qcongest::net {
namespace {

TEST(Downcast, EveryNodeReceivesPayloadInOrder) {
  Graph g = binary_tree(31);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);
  std::vector<std::int64_t> payload{5, -3, 99, 12345678901LL, 0};
  auto result = pipelined_downcast(engine, tree, payload, /*quantum=*/true);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.received[v], payload);
  }
  EXPECT_GT(result.cost.quantum_words, 0u);
  EXPECT_EQ(result.cost.classical_words, 0u);
}

TEST(Downcast, PipelinedRoundsAreHeightPlusLength) {
  // Lemma 7: D + q/log(n) rather than D * q/log(n).
  Graph g = path_graph(20);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);  // height 19
  std::vector<std::int64_t> payload(10);
  std::iota(payload.begin(), payload.end(), 0);
  auto result = pipelined_downcast(engine, tree, payload, true);
  EXPECT_EQ(result.cost.rounds, tree.height + payload.size() - 1);
}

TEST(Downcast, UnpipelinedIsHeightTimesLength) {
  Graph g = path_graph(12);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);  // height 11
  std::vector<std::int64_t> payload(6);
  auto pipelined = pipelined_downcast(engine, tree, payload, true);
  auto naive = unpipelined_downcast(engine, tree, payload, true);
  EXPECT_EQ(naive.cost.rounds, tree.height * payload.size());
  EXPECT_LT(pipelined.cost.rounds, naive.cost.rounds);
}

TEST(Downcast, SingleNodeIsFree) {
  Graph g(1);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);
  auto result = pipelined_downcast(engine, tree, {1, 2, 3}, false);
  EXPECT_EQ(result.cost.rounds, 0u);
  EXPECT_EQ(result.received[0], (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(Convergecast, SumsAcrossAllNodes) {
  util::Rng rng(41);
  Graph g = random_connected_graph(25, 15, rng);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 3);

  const std::size_t items = 4;
  std::vector<std::vector<std::int64_t>> values(g.num_nodes());
  std::vector<std::int64_t> expected(items, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::size_t i = 0; i < items; ++i) {
      std::int64_t x = static_cast<std::int64_t>(v * 10 + i);
      values[v].push_back(x);
      expected[i] += x;
    }
  }
  auto result = pipelined_convergecast(
      engine, tree, values, /*value_words=*/1,
      [](std::int64_t a, std::int64_t b) { return a + b; }, /*quantum=*/true);
  EXPECT_EQ(result.totals, expected);
}

TEST(Convergecast, MaxSemigroup) {
  Graph g = star_graph(10);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);
  std::vector<std::vector<std::int64_t>> values(10, std::vector<std::int64_t>{0});
  values[7][0] = 42;
  auto result = pipelined_convergecast(
      engine, tree, values, 1,
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); }, false);
  EXPECT_EQ(result.totals[0], 42);
}

TEST(Convergecast, RoundsScaleAsHeightPlusItems) {
  // Theorem 8's (D + p) ceil(q/log n) term: on a path (height D), p items of
  // one word each should take ~ D + p rounds, not D * p.
  Graph g = path_graph(16);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);  // height 15
  const std::size_t items = 8;
  std::vector<std::vector<std::int64_t>> values(16, std::vector<std::int64_t>(items, 1));
  auto result = pipelined_convergecast(
      engine, tree, values, 1,
      [](std::int64_t a, std::int64_t b) { return a + b; }, true);
  for (std::size_t i = 0; i < items; ++i) EXPECT_EQ(result.totals[i], 16);
  EXPECT_LE(result.cost.rounds, tree.height + items + 2);
  EXPECT_GE(result.cost.rounds, tree.height);
}

TEST(Convergecast, MultiWordValuesCostMore) {
  Graph g = path_graph(10);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);
  std::vector<std::vector<std::int64_t>> values(10, std::vector<std::int64_t>(4, 2));
  auto one_word = pipelined_convergecast(
      engine, tree, values, 1, [](std::int64_t a, std::int64_t b) { return a + b; },
      true);
  auto three_words = pipelined_convergecast(
      engine, tree, values, 3, [](std::int64_t a, std::int64_t b) { return a + b; },
      true);
  EXPECT_EQ(one_word.totals, three_words.totals);
  // Each hop of each item now takes 3 words; rounds roughly triple.
  EXPECT_GE(three_words.cost.rounds, 2 * one_word.cost.rounds);
  EXPECT_EQ(three_words.cost.quantum_words, 3 * one_word.cost.quantum_words);
}

TEST(Convergecast, InputValidation) {
  Graph g = path_graph(3);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);
  std::vector<std::vector<std::int64_t>> wrong_count(2, std::vector<std::int64_t>{1});
  auto op = [](std::int64_t a, std::int64_t b) { return a + b; };
  EXPECT_THROW(pipelined_convergecast(engine, tree, wrong_count, 1, op, false),
               std::invalid_argument);
  std::vector<std::vector<std::int64_t>> ragged{{1}, {1, 2}, {1}};
  EXPECT_THROW(pipelined_convergecast(engine, tree, ragged, 1, op, false),
               std::invalid_argument);
  std::vector<std::vector<std::int64_t>> ok(3, std::vector<std::int64_t>{1});
  EXPECT_THROW(pipelined_convergecast(engine, tree, ok, 0, op, false),
               std::invalid_argument);
}

TEST(MultiBfs, DistancesMatchGroundTruth) {
  util::Rng rng(42);
  Graph g = random_connected_graph(30, 25, rng);
  Engine engine(g);
  std::vector<NodeId> sources{0, 5, 12, 29};
  auto result = multi_source_bfs(engine, sources, g.num_nodes());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto truth = g.bfs_distances(sources[i]);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(result.dist[v][i], truth[v]) << "src " << sources[i] << " v " << v;
    }
  }
}

TEST(MultiBfs, DepthLimitTruncates) {
  Graph g = path_graph(10);
  Engine engine(g);
  auto result = multi_source_bfs(engine, {0}, 3);
  EXPECT_EQ(result.dist[3][0], 3u);
  EXPECT_EQ(result.dist[4][0], kUnreachable);
}

TEST(MultiBfs, RoundsScaleAsSourcesPlusDiameter) {
  // O(|S| + D), not |S| * D: on a cycle, 8 sources should finish well under
  // 8 * D rounds.
  Graph g = cycle_graph(40);
  Engine engine(g);
  std::vector<NodeId> sources{0, 5, 10, 15, 20, 25, 30, 35};
  auto result = multi_source_bfs(engine, sources, g.num_nodes());
  std::size_t d = g.diameter();
  EXPECT_LE(result.cost.rounds, 3 * (sources.size() + d));
  EXPECT_GE(result.cost.rounds, d);
}

TEST(MultiBfs, ParentsFormShortestPathForest) {
  util::Rng rng(43);
  Graph g = random_connected_graph(30, 20, rng);
  Engine engine(g);
  std::vector<NodeId> sources{2, 9, 21};
  auto result = multi_source_bfs(engine, sources, g.num_nodes());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == sources[i]) {
        EXPECT_EQ(result.parent[v][i], kUnreachable);
        continue;
      }
      NodeId p = result.parent[v][i];
      ASSERT_NE(p, kUnreachable);
      EXPECT_TRUE(g.has_edge(v, p));
      EXPECT_LT(result.dist[p][i], result.dist[v][i]);
    }
  }
}

TEST(MultiBfs, EccentricityEchoDeliversTruthToSources) {
  // Lemma 20 end to end: every queried source learns its exact
  // eccentricity, in O(|S| + D) rounds.
  util::Rng rng(44);
  for (auto make : {+[](util::Rng& r) { return random_connected_graph(40, 30, r); },
                    +[](util::Rng&) { return cycle_graph(24); },
                    +[](util::Rng&) { return two_stars_graph(10, 10, 3); }}) {
    Graph g = make(rng);
    Engine engine(g);
    std::vector<NodeId> sources{0, 5, g.num_nodes() - 1};
    auto result = multi_source_eccentricities(engine, sources, g.num_nodes());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(result.eccentricity[i], g.eccentricity(sources[i])) << sources[i];
    }
    EXPECT_LE(result.echo_cost.rounds,
              6 * (sources.size() + g.diameter()) + 24);
    EXPECT_LE(result.echo_cost.max_edge_words, 1u);
  }
}

TEST(MultiBfs, EccentricityEchoWithDepthLimitTruncates) {
  Graph g = path_graph(12);
  Engine engine(g);
  auto result = multi_source_eccentricities(engine, {0}, 4);
  EXPECT_EQ(result.eccentricity[0], 4u);  // max over reached nodes
}

TEST(MultiBfs, AllSourcesSingleNode) {
  Graph g(1);
  Engine engine(g);
  auto result = multi_source_bfs(engine, {0}, 5);
  EXPECT_EQ(result.dist[0][0], 0u);
  EXPECT_EQ(result.cost.rounds, 0u);
}

}  // namespace
}  // namespace qcongest::net
