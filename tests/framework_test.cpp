#include <gtest/gtest.h>

#include <cmath>

#include "src/framework/distributed_oracle.hpp"
#include "src/framework/distributed_state.hpp"
#include "src/framework/non_oracle.hpp"
#include "src/net/generators.hpp"
#include "src/query/parallel_grover.hpp"
#include "src/query/parallel_minfind.hpp"

namespace qcongest::framework {
namespace {

TEST(WordsForBits, RoundsUpToLogN) {
  // 64 nodes -> 6 bits per word (ceil_log2).
  EXPECT_EQ(words_for_bits(1, 64), 1u);
  EXPECT_EQ(words_for_bits(6, 64), 1u);
  EXPECT_EQ(words_for_bits(7, 64), 2u);
  EXPECT_EQ(words_for_bits(0, 64), 1u);
  EXPECT_EQ(words_for_bits(5, 2), 5u);
}

TEST(DistributedState, PipelinedCostIsDepthPlusWords) {
  net::Graph g = net::path_graph(30);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);  // height 29
  // q = 40 qubits, n = 30 -> ceil(40/5) = 8 words.
  auto cost = distribute_state(engine, tree, 40);
  EXPECT_EQ(cost.rounds, tree.height + 8 - 1);
  EXPECT_GT(cost.quantum_words, 0u);

  auto naive = distribute_state_unpipelined(engine, tree, 40);
  EXPECT_EQ(naive.rounds, tree.height * 8);
}

TEST(DistributedState, UndistributeComparableCost) {
  net::Graph g = net::path_graph(20);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  auto down = distribute_state(engine, tree, 30);
  auto up = undistribute_state(engine, tree, 30);
  // Mirror schedules: within a factor ~2 of each other.
  EXPECT_LE(up.rounds, 2 * down.rounds + 4);
  EXPECT_GE(up.rounds, down.rounds / 2);
}

OracleConfig sum_config(std::size_t k, std::size_t p, std::size_t value_bits = 20) {
  OracleConfig config;
  config.domain_size = k;
  config.parallelism = p;
  config.value_bits = value_bits;
  config.combine = [](std::int64_t a, std::int64_t b) { return a + b; };
  config.identity = 0;
  return config;
}

TEST(DistributedOracle, AggregatesSumsAcrossNodes) {
  util::Rng rng(61);
  net::Graph g = net::random_connected_graph(20, 10, rng);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 5);

  const std::size_t k = 16;
  std::vector<std::vector<query::Value>> data(20, std::vector<query::Value>(k, 0));
  std::vector<query::Value> expected(k, 0);
  for (std::size_t v = 0; v < 20; ++v) {
    for (std::size_t j = 0; j < k; ++j) {
      data[v][j] = static_cast<query::Value>((v * 7 + j * 3) % 11);
      expected[j] += data[v][j];
    }
  }
  DistributedOracle oracle(engine, tree, sum_config(k, 4), data);

  for (std::size_t j = 0; j < k; ++j) EXPECT_EQ(oracle.peek(j), expected[j]);

  std::vector<std::size_t> batch{0, 5, 10, 15};
  auto values = oracle.query(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) EXPECT_EQ(values[i], expected[batch[i]]);
  EXPECT_EQ(oracle.ledger().batches, 1u);
  EXPECT_GT(oracle.total_cost().rounds, 0u);
  EXPECT_GT(oracle.total_cost().quantum_words, 0u);
}

TEST(DistributedOracle, BatchCostMatchesTheorem8Shape) {
  // On a path (height D), one batch should cost
  // ~ 2 (D + p * w_idx) + 2 (D + p) * w_val rounds.
  net::Graph g = net::path_graph(32);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  const std::size_t k = 1024, p = 8;
  std::vector<std::vector<query::Value>> data(32, std::vector<query::Value>(k, 1));
  DistributedOracle oracle(engine, tree, sum_config(k, p, 10), data);

  oracle.charge_batch();
  std::size_t d = tree.height;
  std::size_t w_idx = words_for_bits(10, 32);  // log2(1024) = 10 bits
  std::size_t w_val = words_for_bits(10, 32);
  std::size_t predicted = 2 * (d + p * w_idx) + 2 * (d + p) * w_val;
  double ratio = static_cast<double>(oracle.total_cost().rounds) /
                 static_cast<double>(predicted);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(DistributedOracle, UncomputeAblationReducesCost) {
  net::Graph g = net::path_graph(16);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  std::vector<std::vector<query::Value>> data(16, std::vector<query::Value>(8, 1));

  OracleConfig with = sum_config(8, 4);
  DistributedOracle oracle_with(engine, tree, with, data);
  oracle_with.charge_batch();

  OracleConfig without = sum_config(8, 4);
  without.charge_uncompute = false;
  DistributedOracle oracle_without(engine, tree, without, data);
  oracle_without.charge_batch();

  EXPECT_LT(oracle_without.total_cost().rounds, oracle_with.total_cost().rounds);
}

TEST(DistributedOracle, OnTheFlyComputerInvokedAndCharged) {
  net::Graph g = net::path_graph(8);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);

  // Value j is held by node j only: x_j^{(v)} = (v == j) ? j * j : 0.
  int computer_calls = 0;
  DistributedOracle::BatchComputer computer =
      [&](std::span<const std::size_t> indices) {
        ++computer_calls;
        DistributedOracle::BatchValues out;
        out.per_node.assign(8, std::vector<query::Value>(indices.size(), 0));
        for (std::size_t slot = 0; slot < indices.size(); ++slot) {
          std::size_t j = indices[slot];
          out.per_node[j][slot] = static_cast<query::Value>(j * j);
        }
        out.cost.rounds = 5;  // pretend the subroutine took 5 rounds
        out.cost.completed = true;
        return out;
      };
  auto truth = [](std::size_t j) { return static_cast<query::Value>(j * j); };

  DistributedOracle oracle(engine, tree, sum_config(8, 2), computer, truth);
  std::vector<std::size_t> batch{3, 7};
  auto values = oracle.query(batch);
  EXPECT_EQ(values[0], 9);
  EXPECT_EQ(values[1], 49);
  EXPECT_EQ(computer_calls, 1);
  EXPECT_EQ(oracle.peek(5), 25);
  EXPECT_EQ(computer_calls, 1);  // peek never runs the network
}

TEST(DistributedOracle, WorksWithQueryAlgorithms) {
  // End-to-end: parallel Grover and minfind running against the network.
  util::Rng rng(62);
  net::Graph g = net::random_connected_graph(24, 12, rng);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);

  const std::size_t k = 64;
  std::vector<std::vector<query::Value>> data(24, std::vector<query::Value>(k, 0));
  data[13][37] = 1;  // node 13 holds the single marked slot 37

  int found_count = 0;
  for (int trial = 0; trial < 10; ++trial) {
    DistributedOracle oracle(engine, tree, sum_config(k, 6, 6), data);
    auto found = query::grover_find_one(
        oracle, [](query::Value v) { return v == 1; }, rng);
    if (found == 37u) ++found_count;
  }
  EXPECT_GE(found_count, 7);
}

TEST(DistributedOracle, ConfigValidation) {
  net::Graph g = net::path_graph(4);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  std::vector<std::vector<query::Value>> data(4, std::vector<query::Value>(4, 0));

  OracleConfig bad = sum_config(4, 2);
  bad.domain_size = 0;
  EXPECT_THROW(DistributedOracle(engine, tree, bad, data), std::invalid_argument);

  std::vector<std::vector<query::Value>> ragged(4, std::vector<query::Value>(3, 0));
  EXPECT_THROW(DistributedOracle(engine, tree, sum_config(4, 2), ragged),
               std::invalid_argument);

  std::vector<std::vector<query::Value>> wrong_nodes(3,
                                                     std::vector<query::Value>(4, 0));
  EXPECT_THROW(DistributedOracle(engine, tree, sum_config(4, 2), wrong_nodes),
               std::invalid_argument);
}

TEST(NonOracle, QpeDistributionPeaksAtTruth) {
  // phi exactly on the grid: outcome deterministic.
  EXPECT_NEAR(qpe_outcome_probability(16, 5.0 / 16.0, 5), 1.0, 1e-12);
  // Off grid: probabilities over all outcomes sum to 1.
  double total = 0.0;
  for (std::size_t y = 0; y < 16; ++y) total += qpe_outcome_probability(16, 0.3, y);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Mass concentrates within one grid cell of the truth.
  double near = qpe_outcome_probability(16, 0.3, 4) + qpe_outcome_probability(16, 0.3, 5);
  EXPECT_GT(near, 0.8);
}

DistributedSubroutine make_subroutine(net::Engine& engine, const net::BfsTree& tree,
                                      double p, std::size_t r_rounds) {
  DistributedSubroutine s;
  s.success_probability = p;
  s.run = [&engine, &tree, r_rounds]() {
    // Model an R-round protocol with R pipelined one-word broadcasts'
    // worth of traffic; measured cost ~ height + R.
    std::vector<std::int64_t> payload(r_rounds, 0);
    return net::pipelined_downcast(engine, tree, payload, true).cost;
  };
  return s;
}

TEST(NonOracle, AmplificationIterateCostIsRPlusD) {
  net::Graph g = net::path_graph(20);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  auto sub = make_subroutine(engine, tree, 0.1, 6);
  auto cost = amplification_iterate(engine, tree, sub);
  // 2 runs (~ D + R each) + zero reflection (~ 2 D): Theta(R + D).
  std::size_t d = tree.height;
  EXPECT_GE(cost.rounds, 2 * d);
  EXPECT_LE(cost.rounds, 6 * (d + 6) + 16);
}

TEST(NonOracle, AmplitudeAmplificationSucceeds) {
  util::Rng rng(63);
  net::Graph g = net::path_graph(10);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  auto sub = make_subroutine(engine, tree, 0.05, 3);
  int successes = 0;
  for (int t = 0; t < 20; ++t) {
    auto result = amplitude_amplify(engine, tree, sub, 0.05, rng);
    if (result.success) ++successes;
    EXPECT_GT(result.cost.rounds, 0u);
  }
  EXPECT_GE(successes, 18);
}

TEST(NonOracle, AmplifyZeroProbabilityNeverSucceeds) {
  util::Rng rng(64);
  net::Graph g = net::path_graph(5);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  auto sub = make_subroutine(engine, tree, 0.0, 2);
  EXPECT_FALSE(amplitude_amplify(engine, tree, sub, 0.1, rng).success);
}

TEST(NonOracle, PhaseEstimationAccuracy) {
  util::Rng rng(65);
  net::Graph g = net::path_graph(8);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  double true_theta = 1.234;
  auto apply_u = [&]() {
    return net::pipelined_downcast(engine, tree, {0}, true).cost;
  };
  int close = 0;
  for (int t = 0; t < 15; ++t) {
    auto result = phase_estimate(engine, tree, apply_u, true_theta, 0.2, 0.1, rng);
    double err = std::abs(result.theta - true_theta);
    err = std::min(err, 2.0 * M_PI - err);
    if (err <= 0.2) ++close;
  }
  EXPECT_GE(close, 12);
}

TEST(NonOracle, AmplitudeEstimationAccuracy) {
  util::Rng rng(66);
  net::Graph g = net::path_graph(6);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  auto sub = make_subroutine(engine, tree, 0.2, 2);
  int close = 0;
  for (int t = 0; t < 15; ++t) {
    auto result = amplitude_estimate(engine, tree, sub, 0.5, 0.1, 0.1, rng);
    if (std::abs(result.p_estimate - 0.2) <= 0.1) ++close;
  }
  EXPECT_GE(close, 12);
}

TEST(NonOracle, ParameterValidation) {
  util::Rng rng(67);
  net::Graph g = net::path_graph(4);
  net::Engine engine(g);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  auto sub = make_subroutine(engine, tree, 0.5, 1);
  EXPECT_THROW(amplitude_amplify(engine, tree, sub, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(amplitude_estimate(engine, tree, sub, 0.4, 0.1, 0.1, rng),
               std::invalid_argument);  // p > p_max
  auto apply_u = [&]() { return net::RunResult{}; };
  EXPECT_THROW(phase_estimate(engine, tree, apply_u, 1.0, 0.0, 0.1, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace qcongest::framework
