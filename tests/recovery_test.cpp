// Crash-with-amnesia recovery: checkpoint integrity and store semantics,
// the livelock watchdog's diagnoses, and the equivalence guarantees of the
// two recovery paths — the engine's bounded rollback under the direct
// transport and the reliable transport's neighbor-assisted replay.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/bfs.hpp"
#include "src/net/engine.hpp"
#include "src/net/fault.hpp"
#include "src/net/generators.hpp"
#include "src/recover/checkpoint.hpp"
#include "src/recover/watchdog.hpp"

namespace qcongest::recover {
namespace {

using net::CrashEvent;
using net::Engine;
using net::FaultPlan;
using net::Graph;
using net::Message;
using net::NodeId;
using net::NodeProgram;
using net::RunResult;
using net::Word;

// --- Snapshot / CheckpointStore / CheckpointPolicy ----------------------

Snapshot make_snapshot(std::vector<std::int64_t> words) {
  Snapshot snap;
  snap.version = 1;
  snap.round = 7;
  snap.words = std::move(words);
  snap.seal();
  return snap;
}

TEST(Snapshot, SealedSnapshotIsIntact) {
  Snapshot snap = make_snapshot({1, -2, 3});
  EXPECT_TRUE(snap.intact());
  Snapshot empty = make_snapshot({});
  EXPECT_TRUE(empty.intact());
}

TEST(Snapshot, DetectsWordCorruption) {
  Snapshot snap = make_snapshot({1, -2, 3});
  snap.words[1] ^= 1;
  EXPECT_FALSE(snap.intact());
}

TEST(Snapshot, DigestCoversRoundAndVersion) {
  Snapshot snap = make_snapshot({4, 5});
  snap.round = 8;
  EXPECT_FALSE(snap.intact());
  snap.round = 7;
  EXPECT_TRUE(snap.intact());
  snap.version = 2;
  EXPECT_FALSE(snap.intact());
}

TEST(CheckpointStore, PutSealsAndLatestReturnsIt) {
  CheckpointStore store;
  store.reset(3);
  EXPECT_EQ(store.latest(1), nullptr);
  EXPECT_EQ(store.stored(), 0u);

  Snapshot snap;
  snap.version = 1;
  snap.round = 4;
  snap.words = {10, 11};
  store.put(1, std::move(snap));
  ASSERT_NE(store.latest(1), nullptr);
  EXPECT_TRUE(store.latest(1)->intact());
  EXPECT_EQ(store.latest(1)->round, 4u);
  EXPECT_EQ(store.stored(), 1u);

  // A newer checkpoint replaces the old one.
  Snapshot newer;
  newer.version = 1;
  newer.round = 9;
  newer.words = {12};
  store.put(1, std::move(newer));
  EXPECT_EQ(store.latest(1)->round, 9u);
  EXPECT_EQ(store.stored(), 1u);

  store.reset(3);
  EXPECT_EQ(store.latest(1), nullptr);
}

TEST(CheckpointPolicy, DueSchedule) {
  CheckpointPolicy none;  // every_rounds = 0: phase-start only
  EXPECT_FALSE(none.periodic());
  EXPECT_FALSE(none.due(0));
  EXPECT_FALSE(none.due(5));

  CheckpointPolicy every3;
  every3.every_rounds = 3;
  EXPECT_TRUE(every3.periodic());
  EXPECT_FALSE(every3.due(0));  // the phase-start checkpoint covers round 0
  EXPECT_FALSE(every3.due(2));
  EXPECT_TRUE(every3.due(3));
  EXPECT_TRUE(every3.due(6));
  EXPECT_FALSE(every3.due(7));
}

// --- Watchdog unit tests (callbacks driven directly) --------------------

TEST(Watchdog, RetransmitStormNamesSuspects) {
  Graph g = net::path_graph(2);
  Engine engine(g);
  Watchdog dog;
  WatchdogConfig config;
  config.stall_rounds = 4;
  dog.set_config(config);
  dog.on_run_begin(engine);

  // Node 1 starts swallowing words at round 1 and never absolves itself.
  for (std::size_t r = 1; r < 5; ++r) {
    dog.on_send(r, 0, 1, Word{}, 1);
    dog.on_delivery(r, 0, 1, net::DeliveryFate::kDroppedCrashed, false, false);
    if (r < 4) EXPECT_NO_THROW(dog.on_round_end(r));
  }
  try {
    dog.on_round_end(5);  // suspect since round 1: 5 - 1 >= stall_rounds
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_EQ(e.kind(), LivelockError::Kind::kRetransmitStorm);
    EXPECT_EQ(e.round(), 5u);
    EXPECT_EQ(e.suspects(), (std::vector<NodeId>{1}));
    EXPECT_NE(std::string(e.what()).find("retransmit storm"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("suspected dead: 1"), std::string::npos);
  }
}

TEST(Watchdog, BystanderTrafficDoesNotMaskAStorm) {
  // The failure mode that breaks a run-wide no-delivery clock: distant live
  // nodes keep polling the dead node's neighbors and those polls deliver
  // fine forever. The per-suspect clock must fire regardless.
  Graph g = net::path_graph(3);
  Engine engine(g);
  Watchdog dog;
  WatchdogConfig config;
  config.stall_rounds = 4;
  dog.set_config(config);
  dog.on_run_begin(engine);
  for (std::size_t r = 1; r < 6; ++r) {
    dog.on_delivery(r, 0, 2, net::DeliveryFate::kDelivered, false, false);
    dog.on_delivery(r, 0, 1, net::DeliveryFate::kDroppedCrashed, false, false);
    if (r + 1 < 6) {
      EXPECT_NO_THROW(dog.on_round_end(r));
    }
  }
  try {
    dog.on_round_end(5);
    FAIL() << "expected LivelockError despite the live-live deliveries";
  } catch (const LivelockError& e) {
    EXPECT_EQ(e.kind(), LivelockError::Kind::kRetransmitStorm);
    EXPECT_EQ(e.suspects(), (std::vector<NodeId>{1}));
  }
}

TEST(Watchdog, QuiescentSpinWhenNothingIsSent) {
  Graph g = net::path_graph(2);
  Engine engine(g);
  Watchdog dog;
  WatchdogConfig config;
  config.stall_rounds = 3;
  dog.set_config(config);
  dog.on_run_begin(engine);
  dog.on_round_end(0);
  dog.on_round_end(1);
  try {
    dog.on_round_end(3);
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_EQ(e.kind(), LivelockError::Kind::kQuiescentSpin);
    EXPECT_TRUE(e.suspects().empty());
    EXPECT_NE(std::string(e.what()).find("no suspected-dead nodes"),
              std::string::npos);
  }
}

TEST(Watchdog, SuccessfulDeliveryAbsolvesASuspect) {
  // A restart heals the node: a delivered word removes it from the suspect
  // set, so a crash window shorter than stall_rounds never trips.
  Graph g = net::path_graph(2);
  Engine engine(g);
  Watchdog dog;
  WatchdogConfig config;
  config.stall_rounds = 3;
  dog.set_config(config);
  dog.on_run_begin(engine);
  for (std::size_t r = 0; r < 20; ++r) {
    if (r % 2 == 0) {
      dog.on_delivery(r, 0, 1, net::DeliveryFate::kDroppedCrashed, false, false);
    } else {
      dog.on_delivery(r, 0, 1, net::DeliveryFate::kDelivered, false, false);
    }
    EXPECT_NO_THROW(dog.on_round_end(r));
  }
}

TEST(Watchdog, DeadlineExceeded) {
  Graph g = net::path_graph(2);
  Engine engine(g);
  Watchdog dog;
  WatchdogConfig config;
  config.stall_rounds = 0;  // disabled: only the deadline can fire
  config.deadline_rounds = 5;
  dog.set_config(config);
  dog.on_run_begin(engine);
  for (std::size_t r = 0; r < 4; ++r) {
    dog.on_delivery(r, 0, 1, net::DeliveryFate::kDelivered, false, false);
    EXPECT_NO_THROW(dog.on_round_end(r));
  }
  EXPECT_THROW(dog.on_round_end(4), LivelockError);
}

TEST(Watchdog, ForwardsToDownstreamObserver) {
  class CountingObserver final : public net::EngineObserver {
   public:
    std::size_t rounds = 0;
    std::size_t deliveries = 0;
    void on_round_end(std::size_t) override { ++rounds; }
    void on_delivery(std::size_t, NodeId, NodeId, net::DeliveryFate, bool,
                     bool) override {
      ++deliveries;
    }
  };
  Graph g = net::path_graph(2);
  Engine engine(g);
  CountingObserver downstream;
  Watchdog dog;
  dog.set_downstream(&downstream);
  dog.on_run_begin(engine);
  dog.on_delivery(0, 0, 1, net::DeliveryFate::kDelivered, false, false);
  dog.on_round_end(0);
  EXPECT_EQ(downstream.rounds, 1u);
  EXPECT_EQ(downstream.deliveries, 1u);
}

// --- Direct-transport recovery: bounded rollback ------------------------

/// Every node floods a deterministic token to its neighbors for a fixed
/// number of rounds and accumulates everything it hears. The whole evolving
/// state is one word, so a checkpoint-every-round policy makes an amnesia
/// restart land exactly on the with-state restart trajectory.
class RingCounter final : public NodeProgram {
 public:
  explicit RingCounter(std::size_t rounds) : rounds_(rounds) {}

  std::int64_t sum() const { return sum_; }

  void on_round(net::Context& ctx, std::span<const Message> inbox) override {
    for (const Message& m : inbox) sum_ += m.word.a;
    if (ctx.round() < rounds_) {
      auto token = static_cast<std::int64_t>(ctx.id() * 100 + ctx.round());
      for (NodeId u : ctx.neighbors()) ctx.send(u, Word{1, token, 0, false});
    }
  }

  bool snapshot(std::vector<std::int64_t>& out) const override {
    out.push_back(sum_);
    return true;
  }

  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    if (version != 1 || words.size() != 1) return false;
    sum_ = words[0];
    return true;
  }

  std::uint32_t state_version() const override { return 1; }

 private:
  std::size_t rounds_;  // qlint-allow(unsnapshotted-state): factory-reconstructed config
  std::int64_t sum_ = 0;
};

struct RingRun {
  RunResult result;
  std::vector<std::int64_t> sums;
};

constexpr std::size_t kNodes = 5;
constexpr std::size_t kRounds = 12;

RingRun run_ring(const FaultPlan& plan, bool recovery_enabled) {
  Graph g = net::cycle_graph(kNodes);
  Engine engine(g, 1, 11);
  engine.set_fault_plan(plan);
  if (recovery_enabled) {
    RecoveryPolicy recovery;
    recovery.enabled = true;
    recovery.checkpoint.every_rounds = 1;
    engine.set_recovery(recovery);
    engine.set_program_factory(
        [](NodeId) { return std::make_unique<RingCounter>(kRounds); });
  }
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t v = 0; v < kNodes; ++v) {
    programs.push_back(std::make_unique<RingCounter>(kRounds));
  }
  RingRun run;
  run.result = engine.run(programs, 64);
  for (std::size_t v = 0; v < kNodes; ++v) {
    run.sums.push_back(static_cast<RingCounter&>(*programs[v]).sum());
  }
  return run;
}

TEST(RecoveryDirect, AmnesiaWithPerRoundCheckpointsMatchesWithStateRestart) {
  FaultPlan with_state;
  with_state.crashes.push_back(CrashEvent{2, 4, 7});
  FaultPlan amnesia = with_state;
  amnesia.crashes[0].amnesia = true;

  RingRun baseline = run_ring(with_state, /*recovery_enabled=*/false);
  RingRun recovered = run_ring(amnesia, /*recovery_enabled=*/true);

  ASSERT_TRUE(baseline.result.completed);
  ASSERT_TRUE(recovered.result.completed);
  // A node that crashed with its state intact and a node that lost its state
  // but restored the last per-round checkpoint resume identically.
  EXPECT_EQ(baseline.sums, recovered.sums);
  EXPECT_EQ(baseline.result.rounds, recovered.result.rounds);
  // The recovery tax is honest in both directions: zero when no recovery
  // machinery ran, nonzero when the amnesia restart used it.
  EXPECT_EQ(baseline.result.recovery_rounds, 0u);
  EXPECT_EQ(baseline.result.recovery_words, 0u);
  EXPECT_GE(recovered.result.recovery_rounds, 1u);
  // The direct-transport path restores from the local checkpoint store — no
  // state-transfer words cross any edge.
  EXPECT_EQ(recovered.result.recovery_words, 0u);
}

TEST(RecoveryDirect, AmnesiaWithoutRecoveryDegradesToCrashStop) {
  FaultPlan amnesia;
  amnesia.crashes.push_back(CrashEvent{2, 4, 7});
  amnesia.crashes[0].amnesia = true;
  FaultPlan stop;
  stop.crashes.push_back(CrashEvent{2, 4, CrashEvent::kNeverRestarts});

  RingRun wiped = run_ring(amnesia, /*recovery_enabled=*/false);
  RingRun stopped = run_ring(stop, /*recovery_enabled=*/false);

  // With no recovery path the restart is moot: the node stays silent and
  // deaf forever, exactly like a crash-stop at the same round.
  EXPECT_EQ(wiped.sums, stopped.sums);
  EXPECT_EQ(wiped.result, stopped.result);
  EXPECT_EQ(wiped.result.recovery_rounds, 0u);
  EXPECT_EQ(wiped.result.recovery_words, 0u);
  EXPECT_EQ(wiped.result.crashed_nodes, 1u);
}

// --- Reliable-transport recovery: neighbor-assisted replay --------------

TEST(RecoveryReliable, BfsTreeSurvivesAmnesiaWithNonzeroTax) {
  util::Rng topo(17);
  Graph g = net::random_connected_graph(10, 6, topo);

  auto build = [&](bool with_fault) {
    Engine engine(g, 1, 23);
    engine.set_transport(net::Transport::kReliable);
    if (with_fault) {
      FaultPlan plan;
      plan.crashes.push_back(CrashEvent{3, 10, 40});
      plan.crashes[0].amnesia = true;
      engine.set_fault_plan(plan);
      RecoveryPolicy recovery;
      recovery.enabled = true;
      recovery.checkpoint.every_rounds = 2;
      engine.set_recovery(recovery);
    }
    return net::build_bfs_tree(engine, 0);
  };

  net::BfsTree clean = build(false);
  net::BfsTree recovered = build(true);
  ASSERT_TRUE(clean.cost.completed);
  ASSERT_TRUE(recovered.cost.completed);
  // The reliable transport makes virtual rounds loss-free, and the amnesia
  // recovery replays the node back onto its pre-crash trajectory — the tree
  // must be exactly the fault-free one.
  EXPECT_EQ(clean.parent, recovered.parent);
  EXPECT_EQ(clean.depth, recovered.depth);
  EXPECT_EQ(clean.children, recovered.children);
  EXPECT_EQ(clean.cost.recovery_words, 0u);
  EXPECT_EQ(clean.cost.recovery_rounds, 0u);
  // The restart used the recovery machinery (the transfer word count can be
  // zero here when the crash lands exactly on a fresh checkpoint — the
  // ring test below forces a nonempty replay window).
  EXPECT_GT(recovered.cost.recovery_rounds, 0u);
}

constexpr std::size_t kReliableRounds = 20;

TEST(RecoveryReliable, NeighborAssistedReplayPaysANonzeroWordTax) {
  // Phase-start checkpoints only: an amnesia crash mid-run forces a replay
  // of every executed virtual round, which needs the neighbors' logged
  // sends — a guaranteed-nonempty state transfer.
  auto run = [&](bool with_fault) {
    Graph g = net::cycle_graph(kNodes);
    Engine engine(g, 1, 29);
    engine.set_transport(net::Transport::kReliable);
    if (with_fault) {
      FaultPlan plan;
      plan.crashes.push_back(CrashEvent{2, 30, 60});
      plan.crashes[0].amnesia = true;
      engine.set_fault_plan(plan);
      RecoveryPolicy recovery;
      recovery.enabled = true;  // at_phase_start only: full replay on wipe
      engine.set_recovery(recovery);
      engine.set_program_factory(
          [](NodeId) { return std::make_unique<RingCounter>(kReliableRounds); });
    }
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (std::size_t v = 0; v < kNodes; ++v) {
      programs.push_back(std::make_unique<RingCounter>(kReliableRounds));
    }
    RingRun out;
    out.result = engine.run(programs, kReliableRounds + 8);
    for (std::size_t v = 0; v < kNodes; ++v) {
      out.sums.push_back(static_cast<RingCounter&>(*programs[v]).sum());
    }
    return out;
  };

  RingRun clean = run(false);
  RingRun recovered = run(true);
  ASSERT_TRUE(clean.result.completed);
  ASSERT_TRUE(recovered.result.completed);
  // Replay re-derives the exact pre-crash trajectory: final states match the
  // fault-free run word for word.
  EXPECT_EQ(clean.sums, recovered.sums);
  EXPECT_EQ(clean.result.recovery_words, 0u);
  EXPECT_GT(recovered.result.recovery_rounds, 0u);
  EXPECT_GT(recovered.result.recovery_words, 0u);
}

}  // namespace
}  // namespace qcongest::recover
