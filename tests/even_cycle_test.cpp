#include <gtest/gtest.h>

#include "src/apps/even_cycle.hpp"
#include "src/net/generators.hpp"

namespace qcongest::apps {
namespace {

TEST(ExactCycle, DefaultRepetitionCounts) {
  // ceil(ln3 * L^L / (2L)) + 1.
  EXPECT_EQ(exact_cycle_default_repetitions(3), 6u);
  EXPECT_EQ(exact_cycle_default_repetitions(4), 37u);
  EXPECT_GT(exact_cycle_default_repetitions(6), 1000u);
}

TEST(ExactCycle, FindsSquaresInGrid) {
  util::Rng rng(1);
  net::Graph g = net::grid_graph(4, 4);  // many C4s
  int hits = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    auto result = exact_cycle_detection(g, 4, rng);
    if (result.found) ++hits;
    EXPECT_GT(result.cost.rounds, 0u);
  }
  EXPECT_GE(hits, 2 * trials / 3);
}

TEST(ExactCycle, FindsTrianglesInClique) {
  util::Rng rng(2);
  net::Graph g = net::complete_graph(6);
  int hits = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    if (exact_cycle_detection(g, 3, rng).found) ++hits;
  }
  EXPECT_GE(hits, 2 * trials / 3);
}

TEST(ExactCycle, NeverFalsePositive) {
  util::Rng rng(3);
  // Petersen has girth 5 and no C4; a tree has no cycle at all; C8 has no
  // C4 or C5. Use extra repetitions to stress the one-sidedness.
  struct Case {
    net::Graph graph;
    std::size_t length;
  };
  std::vector<Case> cases;
  cases.push_back({net::petersen_graph(), 4});
  cases.push_back({net::binary_tree(15), 4});
  cases.push_back({net::cycle_graph(8), 4});
  cases.push_back({net::cycle_graph(8), 5});
  for (auto& c : cases) {
    auto result = exact_cycle_detection(c.graph, c.length, rng, 60);
    EXPECT_FALSE(result.found);
  }
}

TEST(ExactCycle, FindsPentagonsInPetersen) {
  util::Rng rng(4);
  auto result = exact_cycle_detection(net::petersen_graph(), 5, rng);
  EXPECT_TRUE(result.found);  // 12 pentagons in 10 nodes: detection is easy
}

TEST(ExactCycle, DetectsExactLengthNotShorter) {
  // Lollipop has triangles (and larger clique cycles) but the path part has
  // no C6... the clique K5 contains C3, C4, C5 but no C6 (only 5 clique
  // nodes + trees can't close 6). Construct: triangle with long tail — only
  // cycle length is 3.
  util::Rng rng(5);
  net::Graph g = net::cycle_with_trees(3, 20, rng);
  EXPECT_FALSE(exact_cycle_detection(g, 4, rng, 60).found);
  EXPECT_FALSE(exact_cycle_detection(g, 5, rng, 400).found);
  int hits = 0;
  for (int t = 0; t < 6; ++t) {
    if (exact_cycle_detection(g, 3, rng).found) ++hits;
  }
  EXPECT_GE(hits, 4);
}

TEST(ExactCycle, ParameterValidation) {
  util::Rng rng(6);
  net::Graph g = net::cycle_graph(4);
  EXPECT_THROW(exact_cycle_detection(g, 2, rng), std::invalid_argument);
  EXPECT_THROW(exact_cycle_detection(g, 7, rng), std::invalid_argument);
}

TEST(ExactCycle, BandwidthInvariant) {
  util::Rng rng(7);
  auto result = exact_cycle_detection(net::grid_graph(3, 5), 4, rng);
  EXPECT_LE(result.cost.max_edge_words, 1u);
}

}  // namespace
}  // namespace qcongest::apps
