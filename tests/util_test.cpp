#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <set>

#include "src/util/combinatorics.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace qcongest::util {
namespace {

TEST(Rng, UniformIntRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntThrowsOnBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(2);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, ForkIndependence) {
  Rng parent(7);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  // Forked streams should differ from each other with overwhelming probability.
  int differ = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.uniform_int(0, 1 << 30) != child2.uniform_int(0, 1 << 30)) ++differ;
  }
  EXPECT_GT(differ, 32);
}

TEST(Rng, SampleWithoutReplacementIsValidSubset) {
  Rng rng(3);
  for (std::size_t n : {1u, 5u, 20u, 100u}) {
    for (std::size_t z = 0; z <= n; z += std::max<std::size_t>(1, n / 4)) {
      auto s = rng.sample_without_replacement(n, z);
      EXPECT_EQ(s.size(), z);
      std::set<std::size_t> unique(s.begin(), s.end());
      EXPECT_EQ(unique.size(), z);
      for (auto v : s) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleWithoutReplacementThrowsWhenTooLarge) {
  Rng rng(4);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementApproxUniform) {
  // Each element of [0, 10) should appear in a size-5 sample about half the time.
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    for (auto v : rng.sample_without_replacement(10, 5)) counts[v]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.5, 0.05);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(6);
  auto p = rng.permutation(50);
  std::set<std::size_t> unique(p.begin(), p.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ChoicePicksFromSpan) {
  Rng rng(8);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.choice(std::span<const int>(items)));
  }
  EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
  const std::vector<int> empty;
  EXPECT_THROW(rng.choice(std::span<const int>(empty)), std::invalid_argument);
}

TEST(Rng, GeometricAndExponentialBasics) {
  Rng rng(9);
  EXPECT_EQ(rng.geometric(1.0), 0u);
  EXPECT_THROW(rng.geometric(0.0), std::invalid_argument);
  double total = 0;
  for (int i = 0; i < 2000; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / 2000.0, 0.5, 0.08);  // mean 1/lambda
}

TEST(Combinatorics, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

TEST(Combinatorics, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Combinatorics, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(Combinatorics, BinomialExactSmall) {
  EXPECT_EQ(binomial_exact(5, 2), 10u);
  EXPECT_EQ(binomial_exact(10, 0), 1u);
  EXPECT_EQ(binomial_exact(10, 10), 1u);
  EXPECT_EQ(binomial_exact(10, 11), 0u);
  EXPECT_EQ(binomial_exact(52, 5), 2598960u);
}

TEST(Combinatorics, BinomialMatchesExact) {
  for (std::uint64_t n = 0; n <= 30; ++n) {
    for (std::uint64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(binomial(n, k), static_cast<double>(binomial_exact(n, k)),
                  1e-6 * binomial(n, k) + 1e-9);
    }
  }
}

TEST(Combinatorics, LogBinomialLarge) {
  // C(1e6, 2) = 1e6 * (1e6 - 1) / 2.
  double expected = std::log(1e6 * (1e6 - 1) / 2.0);
  EXPECT_NEAR(log_binomial(1000000, 2), expected, 1e-6);
}

TEST(Combinatorics, AllSubsetsCount) {
  auto subsets = all_subsets(6, 3);
  EXPECT_EQ(subsets.size(), binomial_exact(6, 3));
  std::set<std::vector<std::size_t>> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), subsets.size());
  for (const auto& s : subsets) {
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }
}

TEST(Combinatorics, AllSubsetsEdgeCases) {
  EXPECT_EQ(all_subsets(4, 0).size(), 1u);
  EXPECT_EQ(all_subsets(4, 4).size(), 1u);
  EXPECT_TRUE(all_subsets(3, 5).empty());
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
}

}  // namespace
}  // namespace qcongest::util
