#include <gtest/gtest.h>

#include "src/apps/deutsch_jozsa.hpp"
#include "src/apps/element_distinctness.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/apps/twoparty.hpp"
#include "src/net/generators.hpp"

namespace qcongest::apps {
namespace {

Calendars random_calendars(std::size_t n, std::size_t k, util::Rng& rng) {
  Calendars calendars(n, std::vector<query::Value>(k, 0));
  for (auto& row : calendars) {
    for (auto& bit : row) bit = rng.bernoulli(0.4) ? 1 : 0;
  }
  return calendars;
}

TEST(MeetingScheduling, ClassicalIsExact) {
  util::Rng rng(71);
  net::Graph g = net::random_connected_graph(15, 10, rng);
  Calendars calendars = random_calendars(15, 12, rng);
  auto reference = meeting_scheduling_reference(calendars);
  auto classical = meeting_scheduling_classical(g, calendars);
  EXPECT_EQ(classical.availability, reference.availability);
  EXPECT_GT(classical.cost.rounds, 0u);
  EXPECT_EQ(classical.cost.quantum_words, 0u);
}

TEST(MeetingScheduling, QuantumSucceedsWithPromisedProbability) {
  util::Rng rng(72);
  int successes = 0;
  const int trials = 20;
  net::Graph g = net::random_connected_graph(12, 8, rng);
  Calendars calendars = random_calendars(12, 40, rng);
  auto reference = meeting_scheduling_reference(calendars);
  for (int t = 0; t < trials; ++t) {
    auto result = meeting_scheduling_quantum(g, calendars, rng);
    if (result.availability == reference.availability) ++successes;
    EXPECT_GT(result.cost.quantum_words, 0u);
    EXPECT_GT(result.batches, 0u);
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(MeetingScheduling, QuantumBeatsClassicalOnLongPathManySlots) {
  // The Lemma 10 vs Lemma 11 separation: sqrt(k D) < k for k >> D. With all
  // implementation constants the crossover sits below k = 16384 at D = 8.
  util::Rng rng(73);
  std::size_t distance = 8, k = 16384;
  auto gadget = meeting_scheduling_gadget(k, distance, true, rng);
  auto classical = meeting_scheduling_classical(gadget.graph, gadget.calendars);
  auto quantum = meeting_scheduling_quantum(gadget.graph, gadget.calendars, rng);
  EXPECT_LT(quantum.cost.rounds, classical.cost.rounds);
}

TEST(MeetingScheduling, ScalingShapeMatchesTheory) {
  // Classical rounds grow linearly in k; quantum rounds sublinearly
  // (~ sqrt(k) log k). Compare growth factors over a 16x range of k.
  util::Rng rng(173);
  auto measure = [&](std::size_t k) {
    auto gadget = meeting_scheduling_gadget(k, 8, true, rng);
    auto classical = meeting_scheduling_classical(gadget.graph, gadget.calendars);
    double quantum = 0.0;
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
      quantum += static_cast<double>(
          meeting_scheduling_quantum(gadget.graph, gadget.calendars, rng).cost.rounds);
    }
    return std::pair{static_cast<double>(classical.cost.rounds), quantum / trials};
  };
  auto [c_small, q_small] = measure(1024);
  auto [c_big, q_big] = measure(16384);
  EXPECT_GT(c_big / c_small, 8.0);   // ~ 16x
  EXPECT_LT(q_big / q_small, 8.0);   // ~ sqrt(16) x polylog
}

TEST(MeetingScheduling, GadgetEncodesDisjointness) {
  util::Rng rng(74);
  auto yes = meeting_scheduling_gadget(32, 4, true, rng);
  EXPECT_EQ(meeting_scheduling_reference(yes.calendars).availability, 2);
  auto no = meeting_scheduling_gadget(32, 4, false, rng);
  EXPECT_LE(meeting_scheduling_reference(no.calendars).availability, 1);
}

TEST(MeetingScheduling, InputValidation) {
  util::Rng rng(75);
  net::Graph g = net::path_graph(3);
  EXPECT_THROW(meeting_scheduling_quantum(g, Calendars(2), rng), std::invalid_argument);
  Calendars bad(3, std::vector<query::Value>{0, 2});
  EXPECT_THROW(meeting_scheduling_quantum(g, bad, rng), std::invalid_argument);
  Calendars ragged{{0, 1}, {0}, {1, 1}};
  EXPECT_THROW(meeting_scheduling_classical(g, ragged), std::invalid_argument);
}

TEST(ElementDistinctnessApp, ClassicalIsExactOnGadget) {
  util::Rng rng(76);
  for (bool intersect : {false, true}) {
    auto gadget = distinctness_vector_gadget(24, 5, intersect, rng);
    auto result = element_distinctness_vector_classical(gadget.graph, gadget.data,
                                                        gadget.value_range);
    EXPECT_EQ(result.collision.has_value(), intersect);
  }
}

TEST(ElementDistinctnessApp, QuantumFindsPlantedCollision) {
  util::Rng rng(77);
  int successes = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    auto gadget = distinctness_vector_gadget(64, 4, true, rng);
    auto result = element_distinctness_vector_quantum(gadget.graph, gadget.data,
                                                      gadget.value_range, rng);
    if (result.collision) {
      // Verify the pair against the aggregated truth.
      query::Value vi = 0, vj = 0;
      for (const auto& row : gadget.data) {
        vi += row[result.collision->i];
        vj += row[result.collision->j];
      }
      EXPECT_EQ(vi, vj);
      ++successes;
    }
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(ElementDistinctnessApp, QuantumNeverInventsCollision) {
  util::Rng rng(78);
  auto gadget = distinctness_vector_gadget(32, 3, false, rng);
  for (int t = 0; t < 5; ++t) {
    auto result = element_distinctness_vector_quantum(gadget.graph, gadget.data,
                                                      gadget.value_range, rng);
    EXPECT_FALSE(result.collision.has_value());
  }
}

TEST(ElementDistinctnessApp, BetweenNodesVariant) {
  util::Rng rng(79);
  for (bool intersect : {false, true}) {
    auto gadget = distinctness_nodes_gadget(10, intersect, rng);
    auto classical = element_distinctness_nodes_classical(gadget.graph, gadget.values,
                                                          gadget.value_range);
    EXPECT_EQ(classical.collision.has_value(), intersect);
    if (intersect) {
      EXPECT_EQ(gadget.values[classical.collision->i],
                gadget.values[classical.collision->j]);
    }
  }
}

TEST(ElementDistinctnessApp, BetweenNodesQuantum) {
  util::Rng rng(80);
  int successes = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    auto gadget = distinctness_nodes_gadget(12, true, rng);
    auto result = element_distinctness_nodes_quantum(gadget.graph, gadget.values,
                                                     gadget.value_range, rng);
    if (result.collision &&
        gadget.values[result.collision->i] == gadget.values[result.collision->j]) {
      ++successes;
    }
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(DeutschJozsaApp, QuantumIsExactOnBothPromises) {
  util::Rng rng(81);
  for (bool balanced : {false, true}) {
    for (int t = 0; t < 5; ++t) {
      auto gadget = deutsch_jozsa_gadget(32, 6, balanced, rng);
      auto result = deutsch_jozsa_quantum(gadget.graph, gadget.data);
      EXPECT_EQ(result.verdict == query::DjVerdict::kBalanced, balanced);
      EXPECT_EQ(result.batches, 1u);
    }
  }
}

TEST(DeutschJozsaApp, ClassicalExactAlwaysCorrect) {
  util::Rng rng(82);
  for (bool balanced : {false, true}) {
    auto gadget = deutsch_jozsa_gadget(40, 4, balanced, rng);
    auto result = deutsch_jozsa_classical_exact(gadget.graph, gadget.data);
    EXPECT_EQ(result.verdict == query::DjVerdict::kBalanced, balanced);
  }
}

TEST(DeutschJozsaApp, QuantumExponentiallyCheaperThanExactClassical) {
  // Theorem 17 vs Theorem 18: O(D log k / log n) vs Omega(k / log n + D).
  util::Rng rng(83);
  auto gadget = deutsch_jozsa_gadget(512, 6, true, rng);
  auto quantum = deutsch_jozsa_quantum(gadget.graph, gadget.data);
  auto classical = deutsch_jozsa_classical_exact(gadget.graph, gadget.data);
  EXPECT_LT(4 * quantum.cost.rounds, classical.cost.rounds);
}

TEST(DeutschJozsaApp, SamplingBaselineIsFastButErrs) {
  util::Rng rng(84);
  auto gadget = deutsch_jozsa_gadget(256, 4, false, rng);
  auto sampling = deutsch_jozsa_classical_sampling(gadget.graph, gadget.data, 8, rng);
  // Constant inputs are always identified correctly.
  EXPECT_EQ(sampling.verdict, query::DjVerdict::kConstant);
  auto exact = deutsch_jozsa_classical_exact(gadget.graph, gadget.data);
  EXPECT_LT(sampling.cost.rounds, exact.cost.rounds);
}

TEST(TwoParty, DisjointnessInstances) {
  util::Rng rng(85);
  auto yes = random_disjointness(50, true, rng);
  bool found = false;
  for (std::size_t i = 0; i < 50; ++i) {
    if (yes.x[i] == 1 && yes.y[i] == 1) found = true;
  }
  EXPECT_TRUE(found);
  auto no = random_disjointness(50, false, rng);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_FALSE(no.x[i] == 1 && no.y[i] == 1);
}

}  // namespace
}  // namespace qcongest::apps
