#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/query/bbht.hpp"
#include "src/query/deutsch_jozsa.hpp"
#include "src/query/element_distinctness.hpp"
#include "src/query/mean_estimation.hpp"
#include "src/query/oracle.hpp"
#include "src/query/parallel_grover.hpp"
#include "src/util/combinatorics.hpp"
#include "src/query/parallel_minfind.hpp"

namespace qcongest::query {
namespace {

std::vector<Value> bitstring(std::size_t k, const std::set<std::size_t>& ones) {
  std::vector<Value> x(k, 0);
  for (auto i : ones) x.at(i) = 1;
  return x;
}

MarkPredicate is_one() {
  return [](Value v) { return v == 1; };
}

TEST(Bbht, FindsTheOnlyMarkedElement) {
  util::Rng rng(1);
  int successes = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    InMemoryOracle oracle(bitstring(256, {123}), 8);
    std::vector<std::size_t> marked{123};
    auto outcome = bbht_subset_search(oracle, marked, rng,
                                      bbht_default_cutoff(256, 8));
    if (outcome) {
      EXPECT_TRUE(std::find(outcome->subset.begin(), outcome->subset.end(), 123u) !=
                  outcome->subset.end());
      ++successes;
    }
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(Bbht, EmptyMarkedSetReturnsNulloptWithinCutoff) {
  util::Rng rng(2);
  InMemoryOracle oracle(bitstring(128, {}), 4);
  std::size_t cutoff = bbht_default_cutoff(128, 4);
  auto outcome = bbht_subset_search(oracle, {}, rng, cutoff);
  EXPECT_FALSE(outcome.has_value());
  EXPECT_LE(oracle.ledger().batches, cutoff);
}

TEST(Bbht, FullDomainBatchIsOneQuery) {
  util::Rng rng(3);
  InMemoryOracle oracle(bitstring(8, {5}), 8);
  std::vector<std::size_t> marked{5};
  auto outcome = bbht_subset_search(oracle, marked, rng, 10);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(oracle.ledger().batches, 1u);
  EXPECT_EQ(outcome->subset.size(), 8u);
}

TEST(GroverFindOne, SucceedsWithPromisedProbability) {
  util::Rng rng(4);
  int successes = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    InMemoryOracle oracle(bitstring(512, {7, 300}), 16);
    auto found = grover_find_one(oracle, is_one(), rng);
    if (found && (*found == 7 || *found == 300)) ++successes;
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(GroverFindOne, NoMarkedGivesNullopt) {
  util::Rng rng(5);
  InMemoryOracle oracle(bitstring(256, {}), 8);
  EXPECT_FALSE(grover_find_one(oracle, is_one(), rng).has_value());
}

TEST(GroverFindOne, BatchCountScalesWithSqrtKOverTp) {
  // With everything else fixed, quadrupling t should roughly halve the
  // number of batches; use medians over repetitions.
  util::Rng rng(6);
  auto median_batches = [&](std::size_t k, std::size_t t, std::size_t p) {
    std::vector<double> counts;
    for (int trial = 0; trial < 40; ++trial) {
      std::set<std::size_t> ones;
      while (ones.size() < t) ones.insert(rng.index(k));
      InMemoryOracle oracle(bitstring(k, ones), p);
      (void)grover_find_one(oracle, is_one(), rng);
      counts.push_back(static_cast<double>(oracle.ledger().batches));
    }
    std::sort(counts.begin(), counts.end());
    return counts[counts.size() / 2];
  };
  double few = median_batches(4096, 4, 4);
  double many = median_batches(4096, 64, 4);
  EXPECT_LT(many, few);  // more marked -> fewer batches
  double small_p = median_batches(4096, 4, 2);
  double large_p = median_batches(4096, 4, 32);
  EXPECT_LT(large_p, small_p);  // more parallelism -> fewer batches
}

TEST(GroverFindOneSplit, FindsMarkedElement) {
  util::Rng rng(31);
  int successes = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    InMemoryOracle oracle(bitstring(512, {77}), 8);
    auto found = grover_find_one_split(oracle, is_one(), rng);
    if (found == 77u) ++successes;
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(GroverFindOneSplit, NoMarkedGivesNullopt) {
  util::Rng rng(32);
  InMemoryOracle oracle(bitstring(256, {}), 8);
  EXPECT_FALSE(grover_find_one_split(oracle, is_one(), rng).has_value());
}

TEST(GroverFindOneSplit, BothVariantsScaleWithMarkedCount) {
  // Empirical ablation of Lemma 2's discussion: for find-ONE the split
  // approach races its blocks and the first lucky success terminates it, so
  // it tracks the subset search within a constant factor (the paper's
  // log(p) penalty applies to making *all* block runs succeed, as find-all
  // or deterministic-cutoff semantics require). Both must shrink with t.
  util::Rng rng(33);
  const std::size_t k = 8192, p = 8;
  auto median_of = [&](std::size_t t, auto&& algo) {
    std::vector<double> counts;
    for (int trial = 0; trial < 30; ++trial) {
      std::set<std::size_t> ones;
      while (ones.size() < t) ones.insert(rng.index(k));
      InMemoryOracle oracle(bitstring(k, ones), p);
      (void)algo(oracle);
      counts.push_back(static_cast<double>(oracle.ledger().batches));
    }
    std::sort(counts.begin(), counts.end());
    return counts[counts.size() / 2];
  };
  auto subset = [&](BatchOracle& o) { return grover_find_one(o, is_one(), rng); };
  auto split = [&](BatchOracle& o) { return grover_find_one_split(o, is_one(), rng); };
  double subset_1 = median_of(1, subset), subset_64 = median_of(64, subset);
  double split_1 = median_of(1, split), split_64 = median_of(64, split);
  EXPECT_LT(subset_64, subset_1);
  EXPECT_LT(split_64, split_1);
  // Within a constant factor of each other in the find-one race.
  EXPECT_LT(subset_1, 3.0 * split_1 + 8.0);
  EXPECT_LT(split_1, 3.0 * subset_1 + 8.0);
}

TEST(GroverFindAll, FindsEveryMarkedIndex) {
  util::Rng rng(7);
  int perfect = 0;
  const int trials = 40;
  std::set<std::size_t> ones{3, 99, 250, 511};
  for (int trial = 0; trial < trials; ++trial) {
    InMemoryOracle oracle(bitstring(512, ones), 16);
    auto found = grover_find_all(oracle, is_one(), rng);
    std::set<std::size_t> found_set(found.begin(), found.end());
    for (auto f : found_set) EXPECT_TRUE(ones.contains(f));
    if (found_set == ones) ++perfect;
  }
  EXPECT_GE(perfect, 2 * trials / 3);
}

TEST(GroverFindAll, EmptyInputGivesEmptyOutput) {
  util::Rng rng(8);
  InMemoryOracle oracle(bitstring(128, {}), 8);
  EXPECT_TRUE(grover_find_all(oracle, is_one(), rng).empty());
}

TEST(Minfind, FindsMinimumWithPromisedProbability) {
  util::Rng rng(9);
  int successes = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<Value> data(400);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<Value>(rng.index(10000)) + 5;
    }
    std::size_t min_at = rng.index(data.size());
    data[min_at] = 1;
    InMemoryOracle oracle(data, 10);
    if (minfind(oracle, rng) == min_at) ++successes;
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(Maxfind, FindsMaximum) {
  util::Rng rng(10);
  int successes = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<Value> data(300);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<Value>(rng.index(1000));
    }
    std::size_t max_at = rng.index(data.size());
    data[max_at] = 5000;
    InMemoryOracle oracle(data, 10);
    if (maxfind(oracle, rng) == max_at) ++successes;
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(Minfind, BatchBudgetRespected) {
  util::Rng rng(11);
  const std::size_t k = 1024, p = 16;
  std::vector<Value> data(k);
  for (std::size_t i = 0; i < k; ++i) data[i] = static_cast<Value>(i);
  InMemoryOracle oracle(data, p);
  (void)minfind(oracle, rng);
  // Budget in the implementation: 24 sqrt(k/p) + 24 plus the final BBHT's
  // bounded overshoot. Verify the ledger is in that ballpark.
  double bound = 26.0 * std::sqrt(static_cast<double>(k) / p) + 30.0;
  EXPECT_LE(static_cast<double>(oracle.ledger().batches), bound);
}

TEST(Minfind, DegenerateMinimumIsCheaper) {
  // Lemma 3, second part: an l-fold minimum reduces the batch count.
  util::Rng rng(12);
  auto mean_batches = [&](std::size_t l) {
    double total = 0;
    const int trials = 40;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<Value> data(2048, 100);
      for (std::size_t i = 0; i < l; ++i) data[i] = 1;
      // Shuffle so minima are in random positions.
      std::span<Value> view(data);
      rng.shuffle(view);
      InMemoryOracle oracle(data, 8);
      (void)minfind(oracle, rng);
      total += static_cast<double>(oracle.ledger().batches);
    }
    return total / trials;
  };
  EXPECT_LT(mean_batches(256), mean_batches(1));
}

TEST(ElementDistinctness, FindsCollisionWithPromisedProbability) {
  util::Rng rng(13);
  int successes = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t k = 512;
    std::vector<Value> data(k);
    for (std::size_t i = 0; i < k; ++i) data[i] = static_cast<Value>(i * 2 + 1);
    std::size_t a = rng.index(k), b = rng.index(k);
    while (b == a) b = rng.index(k);
    data[b] = data[a];
    InMemoryOracle oracle(data, 4);
    auto pair = element_distinctness(oracle, rng);
    if (pair) {
      EXPECT_EQ(oracle.peek(pair->i), oracle.peek(pair->j));
      EXPECT_LT(pair->i, pair->j);
      ++successes;
    }
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(ElementDistinctness, NoCollisionNeverReportsOne) {
  util::Rng rng(14);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Value> data(256);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<Value>(i);
    InMemoryOracle oracle(data, 4);
    EXPECT_FALSE(element_distinctness(oracle, rng).has_value());
  }
}

TEST(ElementDistinctness, LargePRegimeIsExact) {
  util::Rng rng(15);
  std::vector<Value> data{5, 9, 2, 9, 7, 1, 3, 4};
  InMemoryOracle oracle(data, 8);  // p == k: query everything in one batch
  auto pair = element_distinctness(oracle, rng);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->i, 1u);
  EXPECT_EQ(pair->j, 3u);
  EXPECT_EQ(pair->value, 9);
  EXPECT_EQ(oracle.ledger().batches, 1u);
}

TEST(ElementDistinctness, BatchCountFollowsSchedule) {
  util::Rng rng(16);
  const std::size_t k = 1000, p = 4;
  std::vector<Value> data(k);
  for (std::size_t i = 0; i < k; ++i) data[i] = static_cast<Value>(i);
  data[999] = data[0];
  InMemoryOracle oracle(data, p);
  (void)element_distinctness(oracle, rng);
  // The charged batches equal the deterministic schedule unless the setup
  // subset already contained the collision (then it is at most the setup).
  EXPECT_LE(oracle.ledger().batches, element_distinctness_schedule_batches(k, p));
}

TEST(ElementDistinctness, ScheduleScalesAsKOverPToTwoThirds) {
  double b1 = static_cast<double>(element_distinctness_schedule_batches(8000, 1));
  double b8 = static_cast<double>(element_distinctness_schedule_batches(64000, 8));
  // k/p identical -> schedule within a small factor of each other.
  EXPECT_NEAR(b8 / b1, 1.0, 0.5);
  double big = static_cast<double>(element_distinctness_schedule_batches(64000, 1));
  // (64000)^{2/3} / (8000)^{2/3} = 4.
  EXPECT_NEAR(big / b1, 4.0, 1.2);
}

TEST(ElementDistinctness, CollisionSubsetFractionExact) {
  util::Rng rng(41);
  // One pair among k = 6, z = 2: eps = z(z-1)/(k(k-1)) = 2/30.
  InMemoryOracle one_pair({1, 2, 3, 4, 5, 1}, 2);
  EXPECT_NEAR(collision_subset_fraction(one_pair, 2, rng), 2.0 / 30.0, 1e-9);

  // No duplicates: eps = 0.
  InMemoryOracle distinct({1, 2, 3, 4}, 2);
  EXPECT_DOUBLE_EQ(collision_subset_fraction(distinct, 2, rng), 0.0);

  // Verify against exhaustive counting for a mixed structure:
  // values {1,1,1,2,2,3,4} (k=7), z = 3.
  InMemoryOracle mixed({1, 1, 1, 2, 2, 3, 4}, 2);
  for (std::size_t z = 2; z <= 5; ++z) {
    std::size_t collision_subsets = 0, total = 0;
    for (const auto& subset : util::all_subsets(7, z)) {
      ++total;
      std::set<Value> seen;
      bool collides = false;
      for (auto idx : subset) {
        if (!seen.insert(mixed.peek(idx)).second) collides = true;
      }
      if (collides) ++collision_subsets;
    }
    double expected = static_cast<double>(collision_subsets) / total;
    EXPECT_NEAR(collision_subset_fraction(mixed, z, rng), expected, 1e-9) << z;
  }

  // All identical: every z >= 2 subset collides.
  InMemoryOracle all_same({7, 7, 7, 7}, 2);
  EXPECT_DOUBLE_EQ(collision_subset_fraction(all_same, 3, rng), 1.0);
}

TEST(DeutschJozsa, ExactVerdicts) {
  util::Rng rng(17);
  InMemoryOracle constant0(std::vector<Value>(64, 0), 1);
  EXPECT_EQ(deutsch_jozsa(constant0), DjVerdict::kConstant);
  EXPECT_EQ(constant0.ledger().batches, 1u);

  InMemoryOracle constant1(std::vector<Value>(64, 1), 1);
  EXPECT_EQ(deutsch_jozsa(constant1), DjVerdict::kConstant);

  std::vector<Value> balanced(64, 0);
  for (std::size_t i = 0; i < 32; ++i) balanced[i * 2] = 1;
  InMemoryOracle bal(balanced, 1);
  EXPECT_EQ(deutsch_jozsa(bal), DjVerdict::kBalanced);
}

TEST(DeutschJozsa, RejectsPromiseViolations) {
  InMemoryOracle bad_count(bitstring(8, {0}), 1);  // |x| = 1, not 0, 4, or 8
  EXPECT_THROW(deutsch_jozsa(bad_count), std::invalid_argument);

  InMemoryOracle odd(std::vector<Value>(7, 0), 1);
  EXPECT_THROW(deutsch_jozsa(odd), std::invalid_argument);

  InMemoryOracle non_bit(std::vector<Value>{0, 2}, 1);
  EXPECT_THROW(deutsch_jozsa(non_bit), std::invalid_argument);
}

TEST(MeanEstimation, EstimateWithinEpsilon) {
  util::Rng rng(18);
  std::vector<double> population;
  for (int i = 0; i < 1000; ++i) population.push_back(static_cast<double>(i % 50));
  PopulationSampleOracle oracle(population, 8);
  double epsilon = 0.5;
  int within = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    auto est = estimate_mean(oracle, epsilon, std::sqrt(oracle.true_variance()), rng);
    if (std::abs(est.value - oracle.true_mean()) <= epsilon) ++within;
  }
  EXPECT_GE(within, 2 * trials / 3);
}

TEST(MeanEstimation, BatchCountMatchesSchedule) {
  util::Rng rng(19);
  PopulationSampleOracle oracle({1.0, 2.0, 3.0, 4.0}, 4);
  double sigma = std::sqrt(oracle.true_variance());
  auto est = estimate_mean(oracle, 0.1, sigma, rng);
  EXPECT_EQ(est.batches, mean_estimation_schedule_batches(sigma, 0.1, 4));
  EXPECT_EQ(oracle.ledger().batches, est.batches);
}

TEST(MeanEstimation, ScheduleShrinksWithParallelismAndEpsilon) {
  auto b = [](double sigma, double eps, std::size_t p) {
    return mean_estimation_schedule_batches(sigma, eps, p);
  };
  EXPECT_LT(b(10.0, 0.1, 16), b(10.0, 0.1, 1));
  EXPECT_LT(b(10.0, 0.2, 1), b(10.0, 0.1, 1));
  EXPECT_EQ(b(0.1, 10.0, 1), 1u);  // trivially easy
  EXPECT_THROW(b(1.0, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace qcongest::query
