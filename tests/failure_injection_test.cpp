// Failure injection: misbehaving node programs must be caught loudly by the
// engine's invariant checks, never silently absorbed — the property that
// lets us trust every measured number.

#include <gtest/gtest.h>

#include <memory>

#include "src/net/bfs.hpp"
#include "src/net/engine.hpp"
#include "src/net/fault.hpp"
#include "src/net/generators.hpp"
#include "src/recover/checkpoint.hpp"
#include "src/recover/watchdog.hpp"

namespace qcongest::net {
namespace {

class Flooder final : public NodeProgram {
 public:
  explicit Flooder(std::size_t words_per_round) : words_(words_per_round) {}
  void on_round(Context& ctx, std::span<const Message>) override {
    if (ctx.round() > 2) return;
    for (NodeId u : ctx.neighbors()) {
      for (std::size_t w = 0; w < words_; ++w) ctx.send(u, Word{1, 0, 0, false});
    }
  }

 private:
  std::size_t words_;
};

TEST(FailureInjection, OverBudgetSenderIsRejected) {
  Graph g = cycle_graph(5);
  for (std::size_t bandwidth : {1u, 3u}) {
    Engine engine(g, bandwidth, 1);
    std::vector<std::unique_ptr<NodeProgram>> ok, bad;
    for (int i = 0; i < 5; ++i) {
      ok.push_back(std::make_unique<Flooder>(bandwidth));
      bad.push_back(std::make_unique<Flooder>(bandwidth + 1));
    }
    EXPECT_NO_THROW(engine.run(ok, 20));
    EXPECT_THROW(engine.run(bad, 20), std::runtime_error);
  }
}

class HaltsThenGetsMail final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Message>) override {
    if (ctx.id() == 1 && ctx.round() == 0) {
      ctx.halt();  // halts while node 0's message is already in flight
      return;
    }
    if (ctx.id() == 0 && ctx.round() == 0) ctx.send(1, Word{1, 0, 0, false});
  }
};

TEST(FailureInjection, MessageToHaltedNodeIsAnError) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 1);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<HaltsThenGetsMail>());
  programs.push_back(std::make_unique<HaltsThenGetsMail>());
  EXPECT_THROW(engine.run(programs, 10), std::logic_error);
}

class ImpersonatingSender final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Message>) override {
    if (ctx.id() == 0 && ctx.round() == 0) {
      stolen_ = &ctx;  // leak the context to another node's turn
    }
    if (ctx.id() == 1 && ctx.round() == 0 && stolen_ != nullptr) {
      // Sending through node 0's context from node 1's turn must be caught.
      EXPECT_THROW(stolen_->send(1, Word{}), std::logic_error);
    }
  }

 private:
  static Context* stolen_;
};
Context* ImpersonatingSender::stolen_ = nullptr;

TEST(FailureInjection, ContextCannotBeUsedOutOfTurn) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 1);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<ImpersonatingSender>());
  programs.push_back(std::make_unique<ImpersonatingSender>());
  engine.run(programs, 5);
}

TEST(FailureInjection, RoundLimitReportsIncomplete) {
  // An endless ping-pong must hit the round limit with completed = false
  // and rounds equal to the cap's last sending pass.
  class PingPong final : public NodeProgram {
   public:
    void on_round(Context& ctx, std::span<const Message> inbox) override {
      if (ctx.id() == 0 && ctx.round() == 0) {
        ctx.send(1, Word{1, 0, 0, false});
        return;
      }
      for (const Message& m : inbox) ctx.send(m.from, m.word);
    }
  };
  Graph g = path_graph(2);
  Engine engine(g, 1, 1);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<PingPong>());
  programs.push_back(std::make_unique<PingPong>());
  RunResult result = engine.run(programs, 25);
  EXPECT_FALSE(result.completed);
  EXPECT_GE(result.rounds, 25u);
}

TEST(FailureInjection, WrongProgramCountRejected) {
  Graph g = path_graph(3);
  Engine engine(g, 1, 1);
  std::vector<std::unique_ptr<NodeProgram>> two;
  two.push_back(std::make_unique<Flooder>(1));
  two.push_back(std::make_unique<Flooder>(1));
  EXPECT_THROW(engine.run(two, 10), std::invalid_argument);
}

TEST(FailureInjection, CutSpecValidation) {
  Graph g = path_graph(4);
  Engine engine(g, 1, 1);
  EXPECT_THROW(engine.track_cut(std::vector<bool>(3, false)), std::invalid_argument);
  EXPECT_NO_THROW(engine.track_cut(std::vector<bool>(4, false)));
  EXPECT_NO_THROW(engine.track_cut({}));
}

// --- The amnesia-crash matrix -------------------------------------------
//
// One protocol (flood-max leader election over the reliable transport), one
// crash schedule on node 3, four failure severities. The matrix pins down
// the semantics boundary: state survives -> full recovery for free; state
// lost but checkpointed -> full recovery at a measured tax; state lost and
// unrecoverable -> the node is dead and the watchdog says so.

struct MatrixRun {
  NodeId leader = 0;
  RunResult cost;
};

MatrixRun run_election(const FaultPlan& plan, bool recovery_enabled,
                       recover::Watchdog* watchdog) {
  util::Rng topo(41);
  Graph g = random_connected_graph(9, 5, topo);
  Engine engine(g, 1, 37);
  engine.set_transport(Transport::kReliable);
  engine.set_fault_plan(plan);
  if (recovery_enabled) {
    recover::RecoveryPolicy recovery;
    recovery.enabled = true;
    recovery.checkpoint.every_rounds = 3;
    engine.set_recovery(recovery);
  }
  if (watchdog != nullptr) engine.set_observer(watchdog);
  MatrixRun run;
  auto election = elect_leader(engine);
  run.leader = election.leader;
  run.cost = election.cost;
  return run;
}

FaultPlan amnesia_window_plan(std::size_t crash, std::size_t restart, bool amnesia) {
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{3, crash, restart});
  plan.crashes[0].amnesia = amnesia;
  return plan;
}

TEST(AmnesiaMatrix, RestartWithStateRecoversForFree) {
  MatrixRun run = run_election(amnesia_window_plan(12, 48, false), false, nullptr);
  EXPECT_TRUE(run.cost.completed);
  EXPECT_EQ(run.leader, 8u);
  EXPECT_EQ(run.cost.crashed_nodes, 1u);
  EXPECT_EQ(run.cost.recovery_words, 0u);
  EXPECT_EQ(run.cost.recovery_rounds, 0u);
}

TEST(AmnesiaMatrix, AmnesiaWithCheckpointsRecoversAtATax) {
  MatrixRun baseline = run_election(amnesia_window_plan(12, 48, false), false, nullptr);
  MatrixRun run = run_election(amnesia_window_plan(12, 48, true), true, nullptr);
  EXPECT_TRUE(run.cost.completed);
  // Identical final output as the with-state restart of the same schedule.
  EXPECT_EQ(run.leader, baseline.leader);
  EXPECT_EQ(run.cost.crashed_nodes, 1u);
  // The tax is honest: the amnesia run paid recovery rounds, the with-state
  // run did not (its counters are asserted zero above).
  EXPECT_GT(run.cost.recovery_rounds, 0u);
}

TEST(AmnesiaMatrix, AmnesiaWithoutRecoveryIsDiagnosedAsDead) {
  recover::Watchdog watchdog(recover::WatchdogConfig{/*stall_rounds=*/96,
                                                     /*deadline_rounds=*/0});
  try {
    run_election(amnesia_window_plan(12, 48, true), false, &watchdog);
    FAIL() << "expected LivelockError: the wiped node can never rejoin";
  } catch (const recover::LivelockError& e) {
    EXPECT_EQ(e.kind(), recover::LivelockError::Kind::kRetransmitStorm);
    EXPECT_EQ(e.suspects(), (std::vector<NodeId>{3}));
  }
}

TEST(AmnesiaMatrix, NeverRestartingCrashIsDiagnosedNotHung) {
  recover::Watchdog watchdog(recover::WatchdogConfig{/*stall_rounds=*/96,
                                                     /*deadline_rounds=*/0});
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{3, 12, CrashEvent::kNeverRestarts});
  try {
    run_election(plan, false, &watchdog);
    FAIL() << "expected LivelockError instead of burning the round budget";
  } catch (const recover::LivelockError& e) {
    EXPECT_EQ(e.kind(), recover::LivelockError::Kind::kRetransmitStorm);
    EXPECT_GE(e.round(), 96u);  // the stall clock ran after the last delivery
    EXPECT_EQ(e.suspects(), (std::vector<NodeId>{3}));
    EXPECT_NE(std::string(e.what()).find("suspected dead: 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace qcongest::net
