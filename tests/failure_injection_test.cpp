// Failure injection: misbehaving node programs must be caught loudly by the
// engine's invariant checks, never silently absorbed — the property that
// lets us trust every measured number.

#include <gtest/gtest.h>

#include <memory>

#include "src/net/bfs.hpp"
#include "src/net/engine.hpp"
#include "src/net/generators.hpp"

namespace qcongest::net {
namespace {

class Flooder final : public NodeProgram {
 public:
  explicit Flooder(std::size_t words_per_round) : words_(words_per_round) {}
  void on_round(Context& ctx, const std::vector<Message>&) override {
    if (ctx.round() > 2) return;
    for (NodeId u : ctx.neighbors()) {
      for (std::size_t w = 0; w < words_; ++w) ctx.send(u, Word{1, 0, 0, false});
    }
  }

 private:
  std::size_t words_;
};

TEST(FailureInjection, OverBudgetSenderIsRejected) {
  Graph g = cycle_graph(5);
  for (std::size_t bandwidth : {1u, 3u}) {
    Engine engine(g, bandwidth, 1);
    std::vector<std::unique_ptr<NodeProgram>> ok, bad;
    for (int i = 0; i < 5; ++i) {
      ok.push_back(std::make_unique<Flooder>(bandwidth));
      bad.push_back(std::make_unique<Flooder>(bandwidth + 1));
    }
    EXPECT_NO_THROW(engine.run(ok, 20));
    EXPECT_THROW(engine.run(bad, 20), std::runtime_error);
  }
}

class HaltsThenGetsMail final : public NodeProgram {
 public:
  void on_round(Context& ctx, const std::vector<Message>&) override {
    if (ctx.id() == 1 && ctx.round() == 0) {
      ctx.halt();  // halts while node 0's message is already in flight
      return;
    }
    if (ctx.id() == 0 && ctx.round() == 0) ctx.send(1, Word{1, 0, 0, false});
  }
};

TEST(FailureInjection, MessageToHaltedNodeIsAnError) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 1);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<HaltsThenGetsMail>());
  programs.push_back(std::make_unique<HaltsThenGetsMail>());
  EXPECT_THROW(engine.run(programs, 10), std::logic_error);
}

class ImpersonatingSender final : public NodeProgram {
 public:
  void on_round(Context& ctx, const std::vector<Message>&) override {
    if (ctx.id() == 0 && ctx.round() == 0) {
      stolen_ = &ctx;  // leak the context to another node's turn
    }
    if (ctx.id() == 1 && ctx.round() == 0 && stolen_ != nullptr) {
      // Sending through node 0's context from node 1's turn must be caught.
      EXPECT_THROW(stolen_->send(1, Word{}), std::logic_error);
    }
  }

 private:
  static Context* stolen_;
};
Context* ImpersonatingSender::stolen_ = nullptr;

TEST(FailureInjection, ContextCannotBeUsedOutOfTurn) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 1);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<ImpersonatingSender>());
  programs.push_back(std::make_unique<ImpersonatingSender>());
  engine.run(programs, 5);
}

TEST(FailureInjection, RoundLimitReportsIncomplete) {
  // An endless ping-pong must hit the round limit with completed = false
  // and rounds equal to the cap's last sending pass.
  class PingPong final : public NodeProgram {
   public:
    void on_round(Context& ctx, const std::vector<Message>& inbox) override {
      if (ctx.id() == 0 && ctx.round() == 0) {
        ctx.send(1, Word{1, 0, 0, false});
        return;
      }
      for (const Message& m : inbox) ctx.send(m.from, m.word);
    }
  };
  Graph g = path_graph(2);
  Engine engine(g, 1, 1);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<PingPong>());
  programs.push_back(std::make_unique<PingPong>());
  RunResult result = engine.run(programs, 25);
  EXPECT_FALSE(result.completed);
  EXPECT_GE(result.rounds, 25u);
}

TEST(FailureInjection, WrongProgramCountRejected) {
  Graph g = path_graph(3);
  Engine engine(g, 1, 1);
  std::vector<std::unique_ptr<NodeProgram>> two;
  two.push_back(std::make_unique<Flooder>(1));
  two.push_back(std::make_unique<Flooder>(1));
  EXPECT_THROW(engine.run(two, 10), std::invalid_argument);
}

TEST(FailureInjection, CutSpecValidation) {
  Graph g = path_graph(4);
  Engine engine(g, 1, 1);
  EXPECT_THROW(engine.track_cut(std::vector<bool>(3, false)), std::invalid_argument);
  EXPECT_NO_THROW(engine.track_cut(std::vector<bool>(4, false)));
  EXPECT_NO_THROW(engine.track_cut({}));
}

}  // namespace
}  // namespace qcongest::net
