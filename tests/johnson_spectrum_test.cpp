// Numeric validation of Lemma 5's spectral ingredients: the Johnson graph
// J(k, z) has spectral gap delta = Omega(1/z) (the [BH12] fact the proof
// uses), and the p-th power walk has gap >= 1 - (1 - delta)^p >= p delta / 2
// for p < 1/delta. We build the normalized adjacency operator explicitly
// for small (k, z) and extract the second eigenvalue by power iteration
// with deflation.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/util/combinatorics.hpp"
#include "src/util/rng.hpp"

namespace qcongest {
namespace {

/// Normalized adjacency (random-walk) matrix of J(k, z) applied to a
/// vector: neighbors differ by one swap; degree z (k - z).
class JohnsonWalk {
 public:
  JohnsonWalk(std::size_t k, std::size_t z)
      : k_(k), z_(z), subsets_(util::all_subsets(k, z)) {
    // Index subsets for O(1) lookup.
    for (std::size_t i = 0; i < subsets_.size(); ++i) {
      index_[key(subsets_[i])] = i;
    }
  }

  std::size_t size() const { return subsets_.size(); }

  std::vector<double> step(const std::vector<double>& x) const {
    std::vector<double> y(x.size(), 0.0);
    double degree = static_cast<double>(z_ * (k_ - z_));
    for (std::size_t i = 0; i < subsets_.size(); ++i) {
      const auto& s = subsets_[i];
      std::vector<bool> in(k_, false);
      for (auto e : s) in[e] = true;
      for (std::size_t out_pos = 0; out_pos < z_; ++out_pos) {
        for (std::size_t add = 0; add < k_; ++add) {
          if (in[add]) continue;
          auto t = s;
          t[out_pos] = add;
          std::sort(t.begin(), t.end());
          y[index_.at(key(t))] += x[i] / degree;
        }
      }
    }
    return y;
  }

 private:
  static std::uint64_t key(const std::vector<std::size_t>& s) {
    std::uint64_t k = 0;
    for (auto e : s) k |= std::uint64_t{1} << e;
    return k;
  }

  std::size_t k_, z_;
  std::vector<std::vector<std::size_t>> subsets_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

/// Second-largest eigenvalue via power iteration orthogonal to the
/// uniform (top) eigenvector.
double second_eigenvalue(const JohnsonWalk& walk, util::Rng& rng) {
  std::size_t n = walk.size();
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  auto deflate = [&](std::vector<double>& v) {
    double mean = 0.0;
    for (double e : v) mean += e;
    mean /= static_cast<double>(n);
    for (double& e : v) e -= mean;
  };
  auto normalize = [&](std::vector<double>& v) {
    double norm = 0.0;
    for (double e : v) norm += e * e;
    norm = std::sqrt(norm);
    for (double& e : v) e /= norm;
    return norm;
  };
  deflate(x);
  normalize(x);
  double eigenvalue = 0.0;
  for (int it = 0; it < 400; ++it) {
    auto y = walk.step(x);
    deflate(y);
    eigenvalue = normalize(y);
    x = std::move(y);
  }
  return eigenvalue;
}

class JohnsonSpectrum
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(JohnsonSpectrum, GapIsOmegaOneOverZ) {
  auto [k, z] = GetParam();
  util::Rng rng(k * 10 + z);
  JohnsonWalk walk(k, z);
  double lambda2 = second_eigenvalue(walk, rng);
  double delta = 1.0 - lambda2;
  // Exact second eigenvalue of J(k, z): lambda2 = 1 - k / (z (k - z)),
  // hence delta = k / (z (k - z)) >= 1/z.
  double exact = static_cast<double>(k) /
                 (static_cast<double>(z) * static_cast<double>(k - z));
  EXPECT_NEAR(delta, exact, 1e-6) << "k=" << k << " z=" << z;
  EXPECT_GE(delta + 1e-9, 1.0 / static_cast<double>(z));
}

INSTANTIATE_TEST_SUITE_P(Sweep, JohnsonSpectrum,
                         ::testing::Values(std::tuple{6u, 2u}, std::tuple{6u, 3u},
                                           std::tuple{8u, 3u}, std::tuple{8u, 4u},
                                           std::tuple{10u, 4u}, std::tuple{12u, 3u}));

TEST(JohnsonSpectrum, PowerWalkGapGrowsLinearlyInP) {
  // 1 - (1 - delta)^p >= p delta / 2 for p <= 1/delta: the rebalancing step
  // of Lemma 5 (p classical steps folded into one quantum step).
  for (double delta : {0.05, 0.2, 0.5}) {
    for (std::size_t p = 1; p <= static_cast<std::size_t>(1.0 / delta); ++p) {
      double power_gap = 1.0 - std::pow(1.0 - delta, static_cast<double>(p));
      EXPECT_GE(power_gap, static_cast<double>(p) * delta / 2.0);
      EXPECT_LE(power_gap, static_cast<double>(p) * delta + 1e-12);
    }
  }
}

}  // namespace
}  // namespace qcongest
