#include <gtest/gtest.h>

#include <cmath>

#include "src/quantum/circuit.hpp"
#include "src/quantum/gates.hpp"
#include "src/quantum/oracle.hpp"
#include "src/quantum/qft.hpp"
#include "src/quantum/qudit.hpp"
#include "src/quantum/statevector.hpp"

namespace qcongest::quantum {
namespace {

constexpr double kTol = 1e-10;

TEST(Gates, AllNamedGatesAreUnitary) {
  using namespace gates;
  for (const Gate1& g : {identity(), hadamard(), pauli_x(), pauli_y(), pauli_z(), s(),
                         s_dagger(), t(), t_dagger(), rx(0.3), ry(1.1), rz(-2.0),
                         phase(0.7)}) {
    EXPECT_TRUE(is_unitary(g));
  }
}

TEST(Gates, HadamardSelfInverse) {
  Statevector sv(1);
  sv.h(0);
  sv.h(0);
  EXPECT_NEAR(sv.probability(0), 1.0, kTol);
}

TEST(Statevector, InitialState) {
  Statevector sv(3);
  EXPECT_EQ(sv.dimension(), 8u);
  EXPECT_NEAR(sv.probability(0), 1.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(Statevector, BasisConstructor) {
  Statevector sv(3, 5);
  EXPECT_NEAR(sv.probability(5), 1.0, kTol);
  EXPECT_THROW(Statevector(2, 4), std::invalid_argument);
}

TEST(Statevector, RejectsBadQubitCounts) {
  EXPECT_THROW(Statevector(0), std::invalid_argument);
  EXPECT_THROW(Statevector(Statevector::kMaxQubits + 1), std::invalid_argument);
}

TEST(Statevector, HadamardCreatesUniform) {
  Statevector sv(4);
  sv.h_all();
  for (BasisState b = 0; b < 16; ++b) EXPECT_NEAR(sv.probability(b), 1.0 / 16, kTol);
}

TEST(Statevector, CnotEntangles) {
  Statevector sv(2);
  sv.h(0);
  sv.cnot(0, 1);
  EXPECT_NEAR(sv.probability(0b00), 0.5, kTol);
  EXPECT_NEAR(sv.probability(0b11), 0.5, kTol);
  EXPECT_NEAR(sv.probability(0b01), 0.0, kTol);
  EXPECT_NEAR(sv.probability(0b10), 0.0, kTol);
}

TEST(Statevector, ToffoliTruthTable) {
  for (BasisState in = 0; in < 8; ++in) {
    Statevector sv(3, in);
    sv.ccx(0, 1, 2);
    BasisState expected = in;
    if ((in & 0b11) == 0b11) expected ^= 0b100;
    EXPECT_NEAR(sv.probability(expected), 1.0, kTol) << "input " << in;
  }
}

TEST(Statevector, SwapQubits) {
  Statevector sv(2, 0b01);
  sv.swap_qubits(0, 1);
  EXPECT_NEAR(sv.probability(0b10), 1.0, kTol);
}

TEST(Statevector, MeasureQubitCollapses) {
  util::Rng rng(11);
  Statevector sv(2);
  sv.h(0);
  sv.cnot(0, 1);
  bool outcome = sv.measure_qubit(0, rng);
  // After measuring one half of a Bell pair, the other half matches.
  EXPECT_NEAR(sv.probability_of_one(1), outcome ? 1.0 : 0.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(Statevector, MeasureAllStatistics) {
  util::Rng rng(12);
  int ones = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Statevector sv(1);
    sv.h(0);
    ones += static_cast<int>(sv.measure_all(rng));
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.05);
}

TEST(Statevector, MarginalDistribution) {
  Statevector sv(3);
  sv.h(1);
  auto dist = sv.marginal(1, 1);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist[0], 0.5, kTol);
  EXPECT_NEAR(dist[1], 0.5, kTol);
}

TEST(Statevector, InnerProductAndFidelity) {
  Statevector a(2), b(2);
  a.h(0);
  EXPECT_NEAR(a.fidelity(b), 0.5, kTol);
  EXPECT_NEAR(a.fidelity(a), 1.0, kTol);
}

TEST(Statevector, PermutationRejectsNonBijection) {
  Statevector sv(2);
  sv.h_all();
  EXPECT_THROW(sv.apply_permutation([](BasisState) { return BasisState{0}; }),
               std::invalid_argument);
}

TEST(Circuit, InverseUndoesCircuit) {
  Circuit c(3);
  c.h(0).cnot(0, 1).rz(2, 0.7).ccx(0, 1, 2).ry(1, 1.3).cphase(2, 0, 0.9);
  Statevector sv = c.simulate();
  c.inverse().apply_to(sv);
  EXPECT_NEAR(sv.probability(0), 1.0, kTol);
}

TEST(Circuit, AppendComposes) {
  Circuit a(1), b(1);
  a.h(0);
  b.h(0);
  a.append(b);
  Statevector sv = a.simulate();
  EXPECT_NEAR(sv.probability(0), 1.0, kTol);
}

TEST(Circuit, RejectsOutOfRangeQubits) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), std::invalid_argument);
  EXPECT_THROW(c.cnot(0, 2), std::invalid_argument);
  EXPECT_THROW(c.cnot(1, 1), std::invalid_argument);
}

TEST(Oracle, BitOracleMarksCorrectIndex) {
  // 2-qubit index register, 1 answer qubit. f(i) = (i == 2).
  Statevector sv(3);
  sv.h(0);
  sv.h(1);
  apply_bit_oracle(sv, 0, 2, 2, [](std::uint64_t i) { return i == 2; });
  // Only the branch |i=2>|1> should have the answer bit set.
  EXPECT_NEAR(sv.probability(0b110), 0.25, kTol);
  EXPECT_NEAR(sv.probability(0b010), 0.0, kTol);
  EXPECT_NEAR(sv.probability(0b000), 0.25, kTol);
}

TEST(Oracle, PhaseOracleFlipsSign) {
  Statevector sv(2);
  sv.h(0);
  sv.h(1);
  apply_phase_oracle(sv, 0, 2, [](std::uint64_t i) { return i == 3; });
  EXPECT_NEAR(sv.amplitude(3).real(), -0.5, kTol);
  EXPECT_NEAR(sv.amplitude(0).real(), 0.5, kTol);
}

TEST(Oracle, ValueOracleXorsValue) {
  // index: qubits [0,2), value: qubits [2,4). x_i = i + 1 mod 4.
  Statevector sv(4, 0b0001);  // |i=1>|y=0>
  apply_value_oracle(sv, 0, 2, 2, 2,
                     [](std::uint64_t i) { return (i + 1) % 4; });
  EXPECT_NEAR(sv.probability(0b1001), 1.0, kTol);  // y = 2
  // Applying twice uncomputes.
  apply_value_oracle(sv, 0, 2, 2, 2,
                     [](std::uint64_t i) { return (i + 1) % 4; });
  EXPECT_NEAR(sv.probability(0b0001), 1.0, kTol);
}

TEST(Qft, TransformsBasisStateToFourierState) {
  const unsigned w = 3;
  const std::uint64_t N = 1 << w;
  for (std::uint64_t j : {std::uint64_t{0}, std::uint64_t{3}, std::uint64_t{7}}) {
    Statevector sv(w, j);
    qft_circuit(w, 0, w).apply_to(sv);
    for (std::uint64_t k = 0; k < N; ++k) {
      Amplitude expected =
          std::polar(1.0 / std::sqrt(static_cast<double>(N)),
                     2.0 * M_PI * static_cast<double>(j * k) / static_cast<double>(N));
      EXPECT_NEAR(std::abs(sv.amplitude(k) - expected), 0.0, 1e-9)
          << "j=" << j << " k=" << k;
    }
  }
}

TEST(Qft, InverseRoundTrip) {
  Circuit c(4);
  c.h(0).cnot(0, 2).ry(3, 0.4);
  Statevector sv = c.simulate();
  Statevector original = sv;
  qft_circuit(4, 0, 4).apply_to(sv);
  inverse_qft_circuit(4, 0, 4).apply_to(sv);
  EXPECT_NEAR(sv.fidelity(original), 1.0, 1e-9);
}

TEST(Qudit, UniformStateProperties) {
  auto s = QuditState::uniform(10);
  EXPECT_NEAR(s.norm(), 1.0, kTol);
  EXPECT_NEAR(std::abs(s.overlap_with_uniform()), 1.0, kTol);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(s.probability(i), 0.1, kTol);
}

TEST(Qudit, PhaseOracleAndReflectionImplementGroverStep) {
  // One Grover iteration on k = 4 with a single marked element finds it
  // with certainty.
  auto s = QuditState::uniform(4);
  s.apply_phase_oracle([](std::size_t i) { return i == 2; });
  s.reflect_about_uniform();
  EXPECT_NEAR(s.probability(2), 1.0, kTol);
}

TEST(Qudit, DeutschJozsaOverlap) {
  // Balanced input: overlap with uniform is 0; constant input: 1.
  auto balanced = QuditState::uniform(8);
  balanced.apply_phase_oracle([](std::size_t i) { return i < 4; });
  EXPECT_NEAR(std::abs(balanced.overlap_with_uniform()), 0.0, kTol);

  auto constant = QuditState::uniform(8);
  constant.apply_phase_oracle([](std::size_t) { return true; });
  EXPECT_NEAR(std::abs(constant.overlap_with_uniform()), 1.0, kTol);
}

TEST(Qudit, SampleMatchesDistribution) {
  util::Rng rng(13);
  auto s = QuditState::uniform(4);
  s.apply_phase_oracle([](std::size_t i) { return i == 1; });
  s.reflect_about_uniform();
  int hits = 0;
  for (int t = 0; t < 500; ++t) {
    if (s.sample(rng) == 1) ++hits;
  }
  EXPECT_EQ(hits, 500);  // amplified to certainty for k = 4, t = 1
}

}  // namespace
}  // namespace qcongest::quantum
