// The reliable link transport: exactly-once in-order delivery over lossy
// links, unmodified protocol correctness (leader election / BFS) on faulty
// networks, deterministic replay including retransmission counts, and the
// invariance of inner-protocol outputs across fault rates.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/eccentricity.hpp"
#include "src/net/bfs.hpp"
#include "src/net/engine.hpp"
#include "src/net/fault.hpp"
#include "src/net/generators.hpp"

namespace qcongest::net {
namespace {

/// Node 0 streams `count` consecutive integers to node 1 (one per round);
/// node 1 records the exact arrival sequence.
class Streamer final : public NodeProgram {
 public:
  explicit Streamer(std::size_t count) : count_(count) {}
  std::vector<std::int64_t> received;

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      if (m.word.tag == 7) received.push_back(m.word.a);
    }
    if (ctx.id() == 0) {
      if (ctx.round() < count_) {
        ctx.send(1, Word{7, static_cast<std::int64_t>(ctx.round()), 0, false});
      } else {
        ctx.halt();
      }
    } else if (received.size() == count_) {
      ctx.halt();
    }
  }

 private:
  std::size_t count_;
};

std::vector<std::unique_ptr<NodeProgram>> make_streamers(std::size_t n,
                                                         std::size_t count) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t i = 0; i < n; ++i) {
    programs.push_back(std::make_unique<Streamer>(count));
  }
  return programs;
}

std::vector<std::int64_t> iota_vector(std::size_t count) {
  std::vector<std::int64_t> expected(count);
  for (std::size_t i = 0; i < count; ++i) expected[i] = static_cast<std::int64_t>(i);
  return expected;
}

FaultPlan lossy_plan(double drop, double corrupt, double duplicate,
                     std::uint64_t seed = 0xFA0175) {
  FaultPlan plan;
  plan.link = FaultRates{drop, corrupt, duplicate};
  plan.seed = seed;
  return plan;
}

TEST(ReliableTransport, PerfectNetworkDeliversExactlyOnceInOrder) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 5);
  engine.set_transport(Transport::kReliable);
  auto programs = make_streamers(2, 30);
  RunResult result = engine.run(programs, 60);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(static_cast<Streamer&>(*programs[1]).received, iota_vector(30));
  EXPECT_EQ(result.retransmissions, 0u);
}

TEST(ReliableTransport, ExactlyOnceInOrderUnderHeavyLoss) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 5);
  engine.set_fault_plan(lossy_plan(0.2, 0.05, 0.1));
  engine.set_transport(Transport::kReliable);
  auto programs = make_streamers(2, 50);
  RunResult result = engine.run(programs, 100);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(static_cast<Streamer&>(*programs[1]).received, iota_vector(50));
  EXPECT_GT(result.dropped_words, 0u);
  EXPECT_GT(result.retransmissions, 0u);
}

TEST(ReliableTransport, SurvivesEveryFaultKindAtOnceOnAWiderGraph) {
  util::Rng topo(5);
  Graph g = random_connected_graph(12, 10, topo);
  Engine engine(g, 2, 5);
  engine.set_fault_plan(lossy_plan(0.15, 0.05, 0.05));
  engine.set_transport(Transport::kReliable);
  auto election = elect_leader(engine);
  EXPECT_TRUE(election.cost.completed);
  EXPECT_EQ(election.leader, g.num_nodes() - 1);  // flood-max picks max id
}

TEST(ReliableTransport, BfsTreeCorrectUnderLoss) {
  util::Rng topo(11);
  Graph g = random_connected_graph(16, 12, topo);
  Engine engine(g, 1, 7);
  engine.set_fault_plan(lossy_plan(0.1, 0.02, 0.05));
  engine.set_transport(Transport::kReliable);
  BfsTree tree = build_bfs_tree(engine, 0);
  EXPECT_TRUE(tree.cost.completed);
  std::vector<std::size_t> truth = g.bfs_distances(0);
  ASSERT_EQ(tree.depth.size(), truth.size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(tree.depth[v], truth[v]) << "node " << v;
    if (v != 0) {
      EXPECT_EQ(tree.depth[tree.parent[v]] + 1, tree.depth[v]);
    }
  }
}

TEST(ReliableTransport, ReplaysDeterministically) {
  util::Rng topo(13);
  Graph g = random_connected_graph(10, 8, topo);
  auto run = [&] {
    Engine engine(g, 1, 3);
    engine.set_fault_plan(lossy_plan(0.15, 0.03, 0.05));
    engine.set_transport(Transport::kReliable);
    return elect_leader(engine).cost;
  };
  RunResult first = run();
  RunResult second = run();
  EXPECT_EQ(first, second);  // every counter, retransmissions included
  EXPECT_GT(first.retransmissions, 0u);
}

// The synchronizer presents identical virtual rounds whatever the loss
// rate: the *protocol-level* outcome (here, the elected leader and the BFS
// depths) must be invariant across fault plans; only cost counters move.
TEST(ReliableTransport, InnerExecutionInvariantAcrossFaultRates) {
  util::Rng topo(17);
  Graph g = random_connected_graph(14, 10, topo);
  auto depths = [&](double drop) {
    Engine engine(g, 1, 19);
    if (drop > 0) engine.set_fault_plan(lossy_plan(drop, drop / 5, drop / 10));
    engine.set_transport(Transport::kReliable);
    return build_bfs_tree(engine, 3).depth;
  };
  auto clean = depths(0.0);
  auto lossy = depths(0.2);
  EXPECT_EQ(clean, lossy);
}

TEST(ReliableTransport, StretchedBudgetStillBoundsDivergentRuns) {
  // A crash-stop partner never acks: the sender must retransmit with
  // backoff until the stretched round budget expires, then report failure.
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 0, CrashEvent::kNeverRestarts});
  engine.set_fault_plan(plan);
  ReliableParams params;
  params.round_stretch = 4;
  params.round_slack = 16;
  engine.set_transport(Transport::kReliable, params);
  auto programs = make_streamers(2, 3);
  RunResult result = engine.run(programs, 10);
  EXPECT_FALSE(result.completed);
  EXPECT_GT(result.retransmissions, 0u);
  EXPECT_TRUE(static_cast<Streamer&>(*programs[1]).received.empty());
}

TEST(ReliableTransport, CrashRestartOutageIsBridged) {
  // Node 1 is dark for physical rounds [2, 40); the link layer keeps
  // retransmitting through the outage and completes the stream after the
  // restart — crash-restart looks like a long burst of loss.
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 2, 40});
  engine.set_fault_plan(plan);
  engine.set_transport(Transport::kReliable);
  auto programs = make_streamers(2, 10);
  RunResult result = engine.run(programs, 40);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(static_cast<Streamer&>(*programs[1]).received, iota_vector(10));
  EXPECT_GT(result.retransmissions, 0u);
}

TEST(ReliableTransport, RespectsPhysicalBandwidth) {
  Graph g = path_graph(2);
  Engine engine(g, 3, 5);
  engine.set_fault_plan(lossy_plan(0.1, 0.0, 0.0));
  engine.set_transport(Transport::kReliable);
  auto programs = make_streamers(2, 20);
  RunResult result = engine.run(programs, 80);
  EXPECT_TRUE(result.completed);
  // Acks + chunks + retransmissions all share the B-word edge budget.
  EXPECT_LE(result.max_edge_words, 3u);
}

TEST(ReliableTransport, InnerCongestionViolationStillThrows) {
  class DoubleSend final : public NodeProgram {
    void on_round(Context& ctx, std::span<const Message>) override {
      if (ctx.round() == 0 && ctx.id() == 0) {
        ctx.send(1, Word{});
        ctx.send(1, Word{});  // over the virtual per-round edge budget
      }
    }
  };
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  engine.set_transport(Transport::kReliable);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<DoubleSend>());
  programs.push_back(std::make_unique<DoubleSend>());
  EXPECT_THROW(engine.run(programs, 10), std::runtime_error);
}

// A full application — leader election, BFS-tree construction, n-source
// BFS, and a pipelined max-convergecast — run end-to-end over the reliable
// transport on a lossy network, and still producing the exact diameter and
// radius.
TEST(ReliableTransport, EccentricityAppExactUnderLoss) {
  Graph g = binary_tree(15);
  apps::NetOptions options;
  options.seed = 11;
  options.fault_plan.link.drop = 0.05;
  options.fault_plan.link.corrupt = 0.01;
  options.fault_plan.seed = 77;
  options.transport = Transport::kReliable;
  auto diameter = apps::diameter_classical(g, options);
  EXPECT_EQ(diameter.value, g.diameter());
  EXPECT_GT(diameter.cost.retransmissions, 0u);
  auto radius = apps::radius_classical(g, options);
  EXPECT_EQ(radius.value, g.radius());
}

}  // namespace
}  // namespace qcongest::net
