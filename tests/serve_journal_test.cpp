// The durability layer's contract, attacked from below: the record codec
// and the torn-tail/corruption-tolerant recovery scan are fuzzed byte by
// byte (every truncation point, every bit-flipped byte of a middle
// record), and the two replay invariants are pinned directly —
//   1. recovery never re-runs a job any surviving record proves terminal;
//   2. recovery never drops a job whose accepted record survives.
// On top sit the writer (rotation, compaction, degrade-on-EIO) and the
// Service integration: replay on construction, accepted-before-reply
// ordering, in-flight coalescing, and serving through a dead journal.

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/cache/key.hpp"
#include "src/cache/store.hpp"
#include "src/serve/job.hpp"
#include "src/serve/journal.hpp"
#include "src/serve/service.hpp"

namespace {

namespace fs = std::filesystem;
using namespace qcongest;
using namespace qcongest::serve;

std::string unique_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

JournalRecord accepted_record(const std::string& key, const std::string& id,
                              const std::string& spec) {
  JournalRecord record;
  record.type = JournalRecordType::kAccepted;
  record.key = key;
  record.id = id;
  record.spec = spec;
  return record;
}

JournalRecord lifecycle(JournalRecordType type, const std::string& key,
                        const std::string& id) {
  JournalRecord record;
  record.type = type;
  record.key = key;
  record.id = id;
  return record;
}

void write_segment(const std::string& dir, const std::string& name,
                   const std::string& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir + "/" + name, std::ios::binary | std::ios::trunc);
  out << bytes;
}

const std::string kKeyA(32, 'a');
const std::string kKeyB(32, 'b');
const std::string kKeyC(32, 'c');

// --- Record codec ------------------------------------------------------------

TEST(JournalRecord, EncodeDecodeRoundTripAllTypes) {
  std::vector<JournalRecord> originals;
  originals.push_back(
      accepted_record(kKeyA, "job-1", "id=job-1\napp=bfs\nnodes=8\nseed=3\n"));
  originals.push_back(lifecycle(JournalRecordType::kStarted, kKeyA, "job-1"));
  originals.push_back(lifecycle(JournalRecordType::kCompleted, kKeyA, "job-1"));
  JournalRecord aborted = lifecycle(JournalRecordType::kAborted, kKeyB, "job-2");
  aborted.reason = "spec rejected: too many nodes";
  originals.push_back(aborted);

  std::string bytes;
  for (const JournalRecord& record : originals) {
    bytes += encode_journal_record(record);
  }
  std::vector<JournalRecord> decoded;
  JournalScanStats stats;
  scan_journal_segment(bytes, &decoded, &stats);

  ASSERT_EQ(decoded.size(), originals.size());
  EXPECT_EQ(stats.records, originals.size());
  EXPECT_EQ(stats.corrupt_records, 0u);
  EXPECT_FALSE(stats.torn_tail);
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(decoded[i].type, originals[i].type);
    EXPECT_EQ(decoded[i].key, originals[i].key);
    EXPECT_EQ(decoded[i].id, originals[i].id);
    EXPECT_EQ(decoded[i].spec, originals[i].spec);
    EXPECT_EQ(decoded[i].reason, originals[i].reason);
  }
}

TEST(JournalRecord, SpecBytesSurviveVerbatim) {
  // The spec is the replay input; any mangling would change the rerun.
  // Give it everything the codec could trip on: blank lines, '=' signs,
  // even a line that looks like a record header.
  const std::string spec =
      "id=tricky\napp=bfs\n\nqwal1 accepted 3 0123456789abcdef\nx=y=z\n";
  const std::string bytes =
      encode_journal_record(accepted_record(kKeyA, "tricky", spec));
  std::vector<JournalRecord> decoded;
  JournalScanStats stats;
  scan_journal_segment(bytes, &decoded, &stats);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].spec, spec);
  EXPECT_EQ(stats.corrupt_records, 0u);
}

// --- Torn tails, every cut point ---------------------------------------------

TEST(JournalScan, TornTailAtEveryTruncationPoint) {
  const std::string r1 = encode_journal_record(
      accepted_record(kKeyA, "j1", "id=j1\napp=bfs\nnodes=8\n"));
  const std::string r2 =
      encode_journal_record(lifecycle(JournalRecordType::kStarted, kKeyA, "j1"));
  const std::string r3 = encode_journal_record(
      lifecycle(JournalRecordType::kCompleted, kKeyA, "j1"));
  const std::string full = r1 + r2 + r3;
  const std::size_t boundary = r1.size() + r2.size();

  for (std::size_t cut = boundary; cut < full.size(); ++cut) {
    std::vector<JournalRecord> decoded;
    JournalScanStats stats;
    scan_journal_segment(std::string_view(full).substr(0, cut), &decoded,
                         &stats);
    ASSERT_EQ(decoded.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(stats.corrupt_records, 0u) << "cut at " << cut;
    EXPECT_EQ(stats.torn_tail, cut > boundary) << "cut at " << cut;
  }
}

// --- Bit flips, every byte of a middle record --------------------------------

TEST(JournalScan, BitFlippedMiddleRecordNeverTakesDownItsNeighbors) {
  const std::string r1 = encode_journal_record(
      accepted_record(kKeyA, "j1", "id=j1\napp=bfs\nnodes=8\n"));
  const std::string r2 = encode_journal_record(
      accepted_record(kKeyB, "j2", "id=j2\napp=leader\nnodes=9\n"));
  const std::string r3 = encode_journal_record(
      lifecycle(JournalRecordType::kCompleted, kKeyC, "j3"));
  const std::string full = r1 + r2 + r3;

  for (std::size_t i = r1.size(); i < r1.size() + r2.size(); ++i) {
    std::string mutated = full;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    std::vector<JournalRecord> decoded;
    JournalScanStats stats;
    scan_journal_segment(mutated, &decoded, &stats);
    // The flipped record dies (checksum or framing), its neighbors do not.
    ASSERT_EQ(decoded.size(), 2u) << "flip at " << i;
    EXPECT_EQ(decoded[0].key, kKeyA) << "flip at " << i;
    EXPECT_EQ(decoded[1].key, kKeyC) << "flip at " << i;
    EXPECT_GE(stats.corrupt_records, 1u) << "flip at " << i;
    EXPECT_FALSE(stats.torn_tail) << "flip at " << i;
  }
}

// --- Corrupted length prefixes -----------------------------------------------

TEST(JournalScan, OversizedLengthPrefixMidFileResyncsToNextRecord) {
  // A header whose length claims far past the actual payload must not
  // swallow the valid record behind it.
  const std::string bogus =
      "qwal1 accepted 999999 0123456789abcdef\nshort payload\n";
  const std::string good = encode_journal_record(
      accepted_record(kKeyB, "ok", "id=ok\napp=bfs\nnodes=8\n"));
  std::vector<JournalRecord> decoded;
  JournalScanStats stats;
  scan_journal_segment(bogus + good, &decoded, &stats);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].key, kKeyB);
  EXPECT_GE(stats.corrupt_records, 1u);
}

TEST(JournalScan, OversizedLengthPrefixAtEofIsATornTail) {
  const std::string good = encode_journal_record(
      accepted_record(kKeyA, "ok", "id=ok\napp=bfs\nnodes=8\n"));
  const std::string bogus = "qwal1 accepted 999999 0123456789abcdef\nshort\n";
  std::vector<JournalRecord> decoded;
  JournalScanStats stats;
  scan_journal_segment(good + bogus, &decoded, &stats);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].key, kKeyA);
  EXPECT_TRUE(stats.torn_tail);
}

TEST(JournalScan, AbsurdLengthPrefixIsRejectedOutright) {
  // Over the hard payload cap: rejected at the header, not trusted enough
  // to even look for the payload.
  const std::string bogus =
      "qwal1 accepted 99999999 0123456789abcdef\n" + std::string(64, 'x');
  const std::string good = encode_journal_record(
      accepted_record(kKeyB, "ok", "id=ok\napp=bfs\nnodes=8\n"));
  std::vector<JournalRecord> decoded;
  JournalScanStats stats;
  scan_journal_segment(bogus + "\n" + good, &decoded, &stats);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].key, kKeyB);
  EXPECT_GE(stats.corrupt_records, 1u);
}

// --- Recovery semantics ------------------------------------------------------

TEST(JournalRecoveryScan, DuplicateCompletedRecordsStayTerminal) {
  const std::string dir = unique_dir("journal_dup_completed");
  std::string bytes;
  bytes += encode_journal_record(
      accepted_record(kKeyA, "a", "id=a\napp=bfs\nnodes=8\n"));
  bytes += encode_journal_record(
      accepted_record(kKeyB, "b", "id=b\napp=bfs\nnodes=9\n"));
  bytes += encode_journal_record(
      lifecycle(JournalRecordType::kCompleted, kKeyA, "a"));
  bytes += encode_journal_record(
      lifecycle(JournalRecordType::kCompleted, kKeyA, "a"));  // duplicate
  write_segment(dir, "wal-00000001.log", bytes);

  JournalRecovery recovery = recover_journal(dir);
  EXPECT_EQ(recovery.completed_jobs, 1u);  // absorbed once, not twice
  ASSERT_EQ(recovery.incomplete.size(), 1u);
  EXPECT_EQ(recovery.incomplete[0].key, kKeyB);  // never dropped
  EXPECT_TRUE(recovery.is_terminal(kKeyA));      // never re-run
}

TEST(JournalRecoveryScan, TerminalRecordsAbsorbRegardlessOfOrder) {
  // Compaction can legitimately place an accepted record in a
  // higher-numbered segment than its completed record; replay must not
  // resurrect the job.
  const std::string dir = unique_dir("journal_order_insensitive");
  write_segment(dir, "wal-00000001.log",
                encode_journal_record(
                    lifecycle(JournalRecordType::kCompleted, kKeyA, "a")));
  write_segment(dir, "wal-00000002.log",
                encode_journal_record(accepted_record(
                    kKeyA, "a", "id=a\napp=bfs\nnodes=8\n")));
  JournalRecovery recovery = recover_journal(dir);
  EXPECT_TRUE(recovery.incomplete.empty());
  EXPECT_TRUE(recovery.is_terminal(kKeyA));
}

TEST(JournalRecoveryScan, OrphanRecordsEmitStructuredDiagnostics) {
  const std::string dir = unique_dir("journal_orphans");
  std::string bytes;
  bytes += encode_journal_record(
      lifecycle(JournalRecordType::kStarted, kKeyA, "ghost"));
  bytes += encode_journal_record(
      lifecycle(JournalRecordType::kCompleted, kKeyB, "phantom"));
  write_segment(dir, "wal-00000001.log", bytes);

  JournalRecovery recovery = recover_journal(dir);
  EXPECT_TRUE(recovery.incomplete.empty());
  ASSERT_EQ(recovery.diagnostics.size(), 2u);
  for (const auto& diag : recovery.diagnostics) {
    EXPECT_EQ(diag.subsystem, "journal");
    EXPECT_EQ(diag.kind, "orphan_record");
    EXPECT_FALSE(diag.to_string().empty());
  }
}

TEST(JournalRecoveryScan, CorruptionNeverDropsAnAcceptedJobOrRerunsACompletedOne) {
  // Corrupt the completed record for A: its accepted record survives, so A
  // is re-run (conservative, byte-identical by determinism) — but never
  // dropped. Then corrupt the accepted record for B while its completed
  // record survives: B must stay terminal, never re-run.
  const std::string a1 = encode_journal_record(
      accepted_record(kKeyA, "a", "id=a\napp=bfs\nnodes=8\n"));
  const std::string a2 = encode_journal_record(
      lifecycle(JournalRecordType::kCompleted, kKeyA, "a"));
  const std::string b1 = encode_journal_record(
      accepted_record(kKeyB, "b", "id=b\napp=bfs\nnodes=9\n"));
  const std::string b2 = encode_journal_record(
      lifecycle(JournalRecordType::kCompleted, kKeyB, "b"));

  {
    const std::string dir = unique_dir("journal_corrupt_completed");
    std::string bytes = a1 + a2 + b1 + b2;
    bytes[a1.size() + a2.size() / 2] ^= 0x40;  // hit A's completed record
    write_segment(dir, "wal-00000001.log", bytes);
    JournalRecovery recovery = recover_journal(dir);
    ASSERT_EQ(recovery.incomplete.size(), 1u);
    EXPECT_EQ(recovery.incomplete[0].key, kKeyA);  // re-run, not dropped
    EXPECT_TRUE(recovery.is_terminal(kKeyB));
  }
  {
    const std::string dir = unique_dir("journal_corrupt_accepted");
    std::string bytes = a1 + a2 + b1 + b2;
    bytes[a1.size() + a2.size() + b1.size() / 2] ^= 0x40;  // hit B's accepted
    write_segment(dir, "wal-00000001.log", bytes);
    JournalRecovery recovery = recover_journal(dir);
    EXPECT_TRUE(recovery.incomplete.empty());
    EXPECT_TRUE(recovery.is_terminal(kKeyB));  // completed survived: no re-run
  }
}

TEST(JournalRecoveryScan, IncompleteJobsComeBackInJournalOrder) {
  const std::string dir = unique_dir("journal_replay_order");
  std::string bytes;
  // Interleave acceptances with a completion to prove order is by first
  // acceptance, not key sort (kKeyC > kKeyB > kKeyA lexicographically).
  bytes += encode_journal_record(
      accepted_record(kKeyC, "c", "id=c\napp=bfs\nnodes=8\n"));
  bytes += encode_journal_record(
      accepted_record(kKeyA, "a", "id=a\napp=bfs\nnodes=9\n"));
  bytes += encode_journal_record(
      accepted_record(kKeyB, "b", "id=b\napp=bfs\nnodes=10\n"));
  bytes += encode_journal_record(
      lifecycle(JournalRecordType::kCompleted, kKeyA, "a"));
  write_segment(dir, "wal-00000001.log", bytes);

  JournalRecovery recovery = recover_journal(dir);
  ASSERT_EQ(recovery.incomplete.size(), 2u);
  EXPECT_EQ(recovery.incomplete[0].key, kKeyC);
  EXPECT_EQ(recovery.incomplete[1].key, kKeyB);
}

// --- Startup compaction ------------------------------------------------------

TEST(JournalCompaction, SqueezesTerminalHistoryKeepsIncomplete) {
  const std::string dir = unique_dir("journal_compact");
  write_segment(dir, "wal-00000001.log",
                encode_journal_record(accepted_record(
                    kKeyA, "a", "id=a\napp=bfs\nnodes=8\n")) +
                    encode_journal_record(accepted_record(
                        kKeyB, "b", "id=b\napp=bfs\nnodes=9\n")));
  write_segment(dir, "wal-00000002.log",
                encode_journal_record(
                    lifecycle(JournalRecordType::kCompleted, kKeyA, "a")));

  JournalRecovery before = recover_journal(dir);
  ASSERT_EQ(before.incomplete.size(), 1u);
  EXPECT_EQ(compact_journal(dir, before), 2u);

  std::size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++segments;
  }
  EXPECT_EQ(segments, 1u);

  JournalRecovery after = recover_journal(dir);
  ASSERT_EQ(after.incomplete.size(), 1u);
  EXPECT_EQ(after.incomplete[0].key, kKeyB);
  EXPECT_EQ(after.incomplete[0].spec, "id=b\napp=bfs\nnodes=9\n");
}

// --- Writer: rotation, runtime compaction, degrade ---------------------------

TEST(JournalWriter, RotatesAndCompactsUnderLoad) {
  const std::string dir = unique_dir("journal_writer");
  JournalConfig config;
  config.dir = dir;
  config.rotate_bytes = 256;  // tiny: force constant rotation
  config.max_segments = 2;
  Journal journal(config);

  for (int i = 0; i < 40; ++i) {
    const std::string key = std::string(30, 'e') + (i < 10 ? "0" : "") +
                            std::to_string(i);
    journal.append(accepted_record(key, "job", "id=job\napp=bfs\nnodes=8\n"));
    journal.append(lifecycle(JournalRecordType::kCompleted, key, "job"));
  }
  const Journal::Stats stats = journal.stats();
  EXPECT_TRUE(journal.durable());
  EXPECT_EQ(stats.appends, 80u);
  EXPECT_GT(stats.rotations, 0u);
  EXPECT_GT(stats.compactions, 0u);

  // Compaction kept the directory bounded...
  std::size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++segments;
  }
  EXPECT_LE(segments, config.max_segments + 2);
  // ...and every job completed, so recovery finds nothing to replay.
  JournalRecovery recovery = recover_journal(dir);
  EXPECT_TRUE(recovery.incomplete.empty());
}

TEST(JournalWriter, RuntimeCompactionPreservesLiveJobs) {
  const std::string dir = unique_dir("journal_writer_live");
  JournalConfig config;
  config.dir = dir;
  config.rotate_bytes = 128;
  config.max_segments = 1;
  Journal journal(config);

  // One job stays open across many rotations and compactions.
  journal.append(accepted_record(kKeyA, "live", "id=live\napp=bfs\nnodes=8\n"));
  for (int i = 0; i < 20; ++i) {
    const std::string key = std::string(30, 'f') + (i < 10 ? "0" : "") +
                            std::to_string(i);
    journal.append(accepted_record(key, "job", "id=job\napp=bfs\nnodes=8\n"));
    journal.append(lifecycle(JournalRecordType::kCompleted, key, "job"));
  }
  EXPECT_GT(journal.stats().compactions, 0u);

  JournalRecovery recovery = recover_journal(dir);
  ASSERT_EQ(recovery.incomplete.size(), 1u);
  EXPECT_EQ(recovery.incomplete[0].key, kKeyA);
  EXPECT_EQ(recovery.incomplete[0].spec, "id=live\napp=bfs\nnodes=8\n");
}

TEST(JournalWriter, IoFailureDegradesToNonDurableNeverThrows) {
  // Point the journal *through* a regular file: create_directories fails.
  const std::string blocker = unique_dir("journal_blocker");
  {
    fs::create_directories(fs::path(blocker).parent_path());
    std::ofstream out(blocker, std::ios::binary);
    out << "not a directory";
  }
  JournalConfig config;
  config.dir = blocker + "/journal";
  Journal journal(config);

  EXPECT_FALSE(journal.durable());
  journal.append(accepted_record(kKeyA, "a", "id=a\napp=bfs\nnodes=8\n"));
  journal.append(lifecycle(JournalRecordType::kCompleted, kKeyA, "a"));
  const Journal::Stats stats = journal.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.appends, 0u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_GE(stats.io_errors, 1u);
}

// --- Service integration -----------------------------------------------------

std::string probe_spec(const std::string& id, std::size_t nodes,
                       std::uint64_t seed) {
  return "id=" + id + "\napp=bfs\nnodes=" + std::to_string(nodes) +
         "\nseed=" + std::to_string(seed) + "\n";
}

std::string key_for(const std::string& spec_text, std::size_t deadline) {
  JobSpec spec;
  std::string error;
  EXPECT_TRUE(parse_job_spec(spec_text, &spec, &error)) << error;
  return job_cache_key(spec, deadline, cache::code_version_salt());
}

JobReply wait_submit(Service& service, const std::string& spec) {
  JobReply captured;
  std::atomic<int> replies{0};
  service.submit(spec, [&](const JobReply& reply) {
    captured = reply;
    replies.fetch_add(1);
  });
  while (replies.load() == 0) {
  }
  EXPECT_EQ(replies.load(), 1);
  return captured;
}

TEST(JournalService, JournalsTheFullLifecycleBeforeAndAroundTheReply) {
  const std::string journal_dir = unique_dir("journal_service_lifecycle");
  ServiceConfig config;
  config.workers = 2;
  config.journal_dir = journal_dir;

  const std::string spec = probe_spec("life-1", 8, 3);
  const std::string key = key_for(spec, config.default_deadline_rounds);
  {
    Service service(config);
    JobReply reply = wait_submit(service, spec);
    EXPECT_EQ(reply.status, JobReply::Status::kOk);
  }
  // After a clean drain the journal proves accepted -> started -> completed
  // for exactly this key.
  JournalRecovery recovery = recover_journal(journal_dir);
  EXPECT_TRUE(recovery.incomplete.empty());
  EXPECT_EQ(recovery.completed_jobs, 1u);
  EXPECT_TRUE(recovery.is_terminal(key));
  EXPECT_EQ(recovery.corrupt_records, 0u);
  EXPECT_EQ(recovery.torn_tails, 0u);

  std::vector<JournalRecord> records;
  for (const auto& entry : fs::directory_iterator(journal_dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    JournalScanStats stats;
    scan_journal_segment(bytes, &records, &stats);
  }
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, JournalRecordType::kAccepted);
  EXPECT_EQ(records[0].spec, spec);
  EXPECT_EQ(records[1].type, JournalRecordType::kStarted);
  EXPECT_EQ(records[2].type, JournalRecordType::kCompleted);
  for (const JournalRecord& record : records) EXPECT_EQ(record.key, key);
}

TEST(JournalService, ReplaysIncompleteJobsOnConstruction) {
  const std::string journal_dir = unique_dir("journal_service_replay");
  const std::string cache_dir = unique_dir("journal_service_replay_cache");
  ServiceConfig config;
  config.workers = 2;
  config.journal_dir = journal_dir;
  config.cache_dir = cache_dir;

  // A previous daemon accepted this job and crashed before finishing it.
  const std::string spec = probe_spec("rep-1", 9, 5);
  const std::string key = key_for(spec, config.default_deadline_rounds);
  write_segment(journal_dir, "wal-00000001.log",
                encode_journal_record(accepted_record(key, "rep-1", spec)));

  {
    Service service(config);
    while (service.stats().pending != 0) {
    }
    const Service::Stats stats = service.stats();
    EXPECT_EQ(stats.recovered, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.recovery_aborted, 0u);
    ASSERT_EQ(service.recovery().incomplete.size(), 1u);
    EXPECT_EQ(service.recovery().incomplete[0].key, key);
  }

  // The replayed run sealed its report in the cache under the same key a
  // client resubmission would compute — that is the byte-identity bridge.
  cache::Store store(cache_dir);
  std::string body;
  EXPECT_TRUE(store.get(key, &body));
  EXPECT_FALSE(body.empty());

  // And the journal now proves completion: a second restart replays nothing.
  JournalRecovery recovery = recover_journal(journal_dir);
  EXPECT_TRUE(recovery.incomplete.empty());
  EXPECT_TRUE(recovery.is_terminal(key));
}

TEST(JournalService, CompletedJobsAreNotReRunOnRestart) {
  const std::string journal_dir = unique_dir("journal_service_norerun");
  ServiceConfig config;
  config.workers = 2;
  config.journal_dir = journal_dir;

  const std::string spec = probe_spec("done-1", 8, 7);
  const std::string key = key_for(spec, config.default_deadline_rounds);
  write_segment(journal_dir, "wal-00000001.log",
                encode_journal_record(accepted_record(key, "done-1", spec)) +
                    encode_journal_record(lifecycle(
                        JournalRecordType::kCompleted, key, "done-1")));

  Service service(config);
  const Service::Stats stats = service.stats();
  EXPECT_EQ(stats.recovered, 0u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(service.recovery().completed_jobs, 1u);
}

TEST(JournalService, InvalidRecoveredSpecIsAbortedWithDiagnostics) {
  const std::string journal_dir = unique_dir("journal_service_abort");
  ServiceConfig config;
  config.workers = 2;
  config.journal_dir = journal_dir;
  // A spec valid for the daemon that journaled it, invalid under this
  // (smaller) node cap: replay must abort it durably, not crash or loop.
  config.limits.max_nodes = 8;
  const std::string spec = probe_spec("big-1", 64, 2);
  const std::string key = key_for(spec, config.default_deadline_rounds);
  write_segment(journal_dir, "wal-00000001.log",
                encode_journal_record(accepted_record(key, "big-1", spec)));

  {
    Service service(config);
    const Service::Stats stats = service.stats();
    EXPECT_EQ(stats.recovery_aborted, 1u);
    EXPECT_EQ(stats.recovered, 0u);
    EXPECT_EQ(stats.pending, 0u);
  }
  // The abort is terminal: the next restart replays nothing.
  JournalRecovery recovery = recover_journal(journal_dir);
  EXPECT_TRUE(recovery.incomplete.empty());
  EXPECT_EQ(recovery.aborted_jobs, 1u);
  EXPECT_TRUE(recovery.is_terminal(key));
}

TEST(JournalService, IdenticalInflightSubmissionsCoalesce) {
  ServiceConfig config;
  config.workers = 1;  // single worker: the blocker serializes the queue
  Service service(config);

  // Occupy the only worker, then race two identical probes into the queue:
  // the second must attach to the first, not run (or queue) again.
  std::atomic<int> replies{0};
  std::string bodies[3];
  auto reply_into = [&](int slot) {
    return [&, slot](const JobReply& reply) {
      bodies[slot] = reply.body;
      replies.fetch_add(1);
    };
  };
  service.submit(probe_spec("blocker", 12, 1), reply_into(0));
  const std::string probe = probe_spec("probe-a", 8, 2);
  const std::string probe_same_key =
      probe_spec("probe-b", 8, 2);  // different id, same semantics
  service.submit(probe, reply_into(1));
  service.submit(probe_same_key, reply_into(2));
  while (replies.load() < 3) {
  }

  const Service::Stats stats = service.stats();
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.admitted, 2u);   // blocker + one probe
  EXPECT_EQ(stats.completed, 2u);  // the coalesced copy never ran
  EXPECT_EQ(bodies[1], bodies[2]);
  EXPECT_FALSE(bodies[1].empty());
}

TEST(JournalService, DegradedJournalStillServesJobs) {
  const std::string blocker = unique_dir("journal_service_degraded");
  {
    std::ofstream out(blocker, std::ios::binary);
    out << "not a directory";
  }
  ServiceConfig config;
  config.workers = 2;
  config.journal_dir = blocker + "/journal";
  Service service(config);

  ASSERT_NE(service.journal(), nullptr);
  EXPECT_FALSE(service.journal()->durable());
  JobReply reply = wait_submit(service, probe_spec("deg-1", 8, 3));
  EXPECT_EQ(reply.status, JobReply::Status::kOk);
  EXPECT_FALSE(reply.body.empty());
}

}  // namespace
