#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/check/quantum_checks.hpp"
#include "src/check/verifier.hpp"
#include "src/net/engine.hpp"
#include "src/net/generators.hpp"
#include "src/net/violation.hpp"
#include "src/quantum/circuit.hpp"
#include "src/quantum/sparse_statevector.hpp"
#include "src/quantum/statevector.hpp"

namespace qcongest::check {
namespace {

using net::Context;
using net::Engine;
using net::Graph;
using net::Message;
using net::NodeId;
using net::NodeProgram;
using net::Word;

/// Floods a token from node 0; a well-behaved protocol for clean-run tests.
class Flood final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Message> inbox) override {
    if (ctx.round() == 0 && ctx.id() == 0 && !seen_) {
      seen_ = true;
      for (NodeId u : ctx.neighbors()) ctx.send(u, Word{1, 7, 0, false});
      return;
    }
    for (const Message& m : inbox) {
      if (m.word.tag == 1 && !seen_) {
        seen_ = true;
        for (NodeId u : ctx.neighbors()) {
          if (u != m.from) ctx.send(u, Word{1, m.word.a, 0, false});
        }
      }
    }
  }

 private:
  bool seen_ = false;
};

/// Sends two words down the same unit-bandwidth edge in round 0.
class OverBudget final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Message>) override {
    if (ctx.round() == 0 && ctx.id() == 0) {
      ctx.send(1, Word{});
      ctx.send(1, Word{});
    }
  }
};

std::vector<std::unique_ptr<NodeProgram>> make_programs(std::size_t n, auto factory) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t i = 0; i < n; ++i) programs.push_back(factory());
  return programs;
}

bool has_kind(const Verifier& v, InvariantKind kind) {
  for (const Violation& violation : v.violations()) {
    if (violation.kind == kind) return true;
  }
  return false;
}

TEST(Verifier, CleanRunHasNoViolations) {
  Graph g = net::path_graph(5);
  VerifiedEngine verified(g, /*bandwidth_words=*/1, /*seed=*/3);
  auto programs = make_programs(5, [] { return std::make_unique<Flood>(); });
  auto result = verified.run(programs, 20);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(verified.verifier().ok()) << verified.verifier().report();
  EXPECT_EQ(verified.verifier().runs_verified(), 1u);
  EXPECT_NE(verified.verifier().report().find("all invariants held"),
            std::string::npos);
}

TEST(Verifier, CleanRunUnderFaultsConserved) {
  // Fault-counter conservation: with an aggressive drop/corrupt/duplicate
  // lottery, sent must still equal delivered + dropped and every RunResult
  // counter must match the observer's independent tally.
  Graph g = net::path_graph(4);
  VerifiedEngine verified(g, 1, /*seed=*/11);
  net::FaultPlan plan;
  plan.link = net::FaultRates{0.3, 0.2, 0.2};
  verified.engine().set_fault_plan(plan);
  auto programs = make_programs(4, [] { return std::make_unique<Flood>(); });
  (void)verified.run(programs, 20);
  EXPECT_TRUE(verified.verifier().ok()) << verified.verifier().report();
}

TEST(Verifier, ReliableTransportRetransmissionsAccounted) {
  Graph g = net::path_graph(3);
  VerifiedEngine verified(g, 1, /*seed=*/5);
  net::FaultPlan plan;
  plan.link = net::FaultRates{0.3, 0.0, 0.0};
  verified.engine().set_fault_plan(plan);
  verified.engine().set_transport(net::Transport::kReliable);
  auto programs = make_programs(3, [] { return std::make_unique<Flood>(); });
  auto result = verified.run(programs, 10);
  EXPECT_TRUE(verified.verifier().ok()) << verified.verifier().report();
  EXPECT_GT(result.retransmissions + result.dropped_words, 0u);
}

TEST(Verifier, CatchesOverBudgetSend) {
  Graph g = net::path_graph(2);
  VerifiedEngine verified(g, /*bandwidth_words=*/1);
  auto programs = make_programs(2, [] { return std::make_unique<OverBudget>(); });
  auto result = verified.run(programs, 10);  // must not throw
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(verified.verifier().ok());
  ASSERT_TRUE(has_kind(verified.verifier(), InvariantKind::kBandwidthPerRound));
  const Violation& v = verified.verifier().violations().front();
  EXPECT_TRUE(v.has_round);
  EXPECT_EQ(v.round, 0u);
  EXPECT_TRUE(v.has_edge);
  EXPECT_EQ(v.from, 0u);
  EXPECT_EQ(v.to, 1u);
  EXPECT_NE(verified.verifier().report().find("bandwidth"), std::string::npos);
}

TEST(Verifier, CatchesConservationBreak) {
  // Drive the observer hooks directly with a stream where one admitted word
  // has no recorded fate — a lying engine that loses a word silently.
  Graph g = net::path_graph(2);
  Engine engine(g, 1);
  Verifier verifier;
  verifier.attach(engine);
  verifier.on_run_begin(engine);
  verifier.on_send(0, 0, 1, Word{}, 1);
  // No on_delivery for the word above.
  verifier.on_round_end(0);
  net::RunResult stats;
  stats.rounds = 1;
  stats.messages = 1;
  stats.max_edge_words = 1;
  verifier.on_run_end(stats);
  EXPECT_FALSE(verifier.ok());
  EXPECT_TRUE(has_kind(verifier, InvariantKind::kConservation));
}

TEST(Verifier, CatchesCounterMismatch) {
  // Consistent send/delivery stream, but the engine's RunResult claims a
  // different message count than what actually crossed the wire.
  Graph g = net::path_graph(2);
  Engine engine(g, 1);
  Verifier verifier;
  verifier.attach(engine);
  verifier.on_run_begin(engine);
  verifier.on_send(0, 0, 1, Word{}, 1);
  verifier.on_delivery(0, 0, 1, net::DeliveryFate::kDelivered, false, false);
  verifier.on_round_end(0);
  verifier.on_round_end(1);
  net::RunResult stats;
  stats.rounds = 1;
  stats.messages = 2;  // lie: only one word was admitted
  stats.max_edge_words = 1;
  verifier.on_run_end(stats);
  EXPECT_FALSE(verifier.ok());
  EXPECT_TRUE(has_kind(verifier, InvariantKind::kCounterMismatch));
}

TEST(Verifier, CatchesQuiescenceInconsistency) {
  // The reported round count must be last_send_round + 1; claiming more
  // means the run kept counting after going quiet.
  Graph g = net::path_graph(2);
  Engine engine(g, 1);
  Verifier verifier;
  verifier.attach(engine);
  verifier.on_run_begin(engine);
  verifier.on_send(0, 0, 1, Word{}, 1);
  verifier.on_delivery(0, 0, 1, net::DeliveryFate::kDelivered, false, false);
  verifier.on_round_end(0);
  verifier.on_round_end(1);
  net::RunResult stats;
  stats.rounds = 5;  // lie: the last send was in round 0
  stats.messages = 1;
  stats.max_edge_words = 1;
  verifier.on_run_end(stats);
  EXPECT_FALSE(verifier.ok());
  EXPECT_TRUE(has_kind(verifier, InvariantKind::kQuiescence));
}

TEST(Verifier, ResetForgetsEverything) {
  Graph g = net::path_graph(2);
  VerifiedEngine verified(g, 1);
  auto programs = make_programs(2, [] { return std::make_unique<OverBudget>(); });
  (void)verified.run(programs, 10);
  ASSERT_FALSE(verified.verifier().ok());
  verified.verifier().reset();
  EXPECT_TRUE(verified.verifier().ok());
  EXPECT_EQ(verified.verifier().runs_verified(), 0u);
}

// --- Quantum invariants -----------------------------------------------------

quantum::Gate1 shrink_gate() {
  // Diagonal contraction diag(0.5, 0.5): manifestly not unitary.
  return quantum::Gate1{{quantum::Amplitude{0.5, 0}, {0, 0}, {0, 0}, {0.5, 0}}};
}

TEST(QuantumChecks, NormalizedStatePasses) {
  quantum::Statevector state(3);
  state.h(0);
  state.cnot(0, 1);
  EXPECT_FALSE(check_state_norm(state, "bell").has_value());
  quantum::SparseStatevector sparse(8, 5);
  sparse.h(2);
  EXPECT_FALSE(check_state_norm(sparse, "sparse").has_value());
}

TEST(QuantumChecks, NormBreakingGateCaught) {
  quantum::Statevector state(1);
  state.apply(shrink_gate(), 0);  // norm is now 0.5
  auto violation = check_state_norm(state, "after shrink");
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->kind, InvariantKind::kStateNorm);
  EXPECT_NE(violation->detail.find("after shrink"), std::string::npos);

  quantum::SparseStatevector sparse(4);
  sparse.apply(shrink_gate(), 0);
  EXPECT_TRUE(check_state_norm(sparse, "sparse shrink").has_value());
}

TEST(QuantumChecks, UnitaryCircuitPasses) {
  quantum::Circuit circuit(3);
  circuit.h(0).cnot(0, 1).ccx(0, 1, 2).rz(2, 0.7).swap(0, 2);
  EXPECT_FALSE(check_circuit_unitary(circuit, "ghz-ish").has_value());
}

TEST(QuantumChecks, NonUnitaryCircuitCaught) {
  quantum::Circuit circuit(2);
  circuit.h(0).gate(shrink_gate(), 1, "shrink");
  auto violation = check_circuit_unitary(circuit, "lossy");
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->kind, InvariantKind::kCircuitUnitarity);
}

TEST(QuantumChecks, UnitarityCheckRefusesLargeCircuits) {
  quantum::Circuit circuit(kMaxUnitarityQubits + 1);
  EXPECT_THROW((void)check_circuit_unitary(circuit, "too big"), std::invalid_argument);
}

TEST(Verifier, QuantumChecksLandInViolationList) {
  Verifier verifier;
  quantum::Statevector state(1);
  state.apply(shrink_gate(), 0);
  verifier.check_state(state, "seeded norm break");
  quantum::Circuit circuit(1);
  circuit.gate(shrink_gate(), 0, "shrink");
  verifier.check_circuit(circuit, "seeded non-unitary");
  EXPECT_FALSE(verifier.ok());
  EXPECT_TRUE(has_kind(verifier, InvariantKind::kStateNorm));
  EXPECT_TRUE(has_kind(verifier, InvariantKind::kCircuitUnitarity));
}

}  // namespace
}  // namespace qcongest::check
