// The deterministic fault-injection layer: plan validation, the zero-rate
// byte-identity guarantee, seeded replay of fault lotteries, counter
// semantics, crash-stop / crash-restart scheduling, and the RunResult
// monoid identity the phase accumulators rely on.

#include <gtest/gtest.h>

#include <memory>

#include "src/net/bfs.hpp"
#include "src/net/engine.hpp"
#include "src/net/fault.hpp"
#include "src/net/generators.hpp"

namespace qcongest::net {
namespace {

/// Sends `count` consecutive integers from node 0 to node 1, one per round;
/// node 1 records what it sees.
class Streamer final : public NodeProgram {
 public:
  explicit Streamer(std::size_t count) : count_(count) {}
  std::vector<std::int64_t> received;

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      if (m.word.tag == 7) received.push_back(m.word.a);
    }
    if (ctx.id() == 0) {
      if (ctx.round() < count_) {
        ctx.send(1, Word{7, static_cast<std::int64_t>(ctx.round()), 0, false});
      } else {
        ctx.halt();
      }
    }
  }

 private:
  std::size_t count_;
};

std::vector<std::unique_ptr<NodeProgram>> make_streamers(std::size_t n,
                                                         std::size_t count) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t i = 0; i < n; ++i) {
    programs.push_back(std::make_unique<Streamer>(count));
  }
  return programs;
}

TEST(FaultPlan, RejectsBadProbabilities) {
  Graph g = path_graph(2);
  Engine engine(g);
  FaultPlan plan;
  plan.link.drop = 1.5;
  EXPECT_THROW(engine.set_fault_plan(plan), std::invalid_argument);
  plan.link.drop = -0.1;
  EXPECT_THROW(engine.set_fault_plan(plan), std::invalid_argument);
}

TEST(FaultPlan, RejectsBadCrashWindows) {
  Graph g = path_graph(3);
  Engine engine(g);
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{5, 0, 10});  // node out of range
  EXPECT_THROW(engine.set_fault_plan(plan), std::invalid_argument);
  plan.crashes = {CrashEvent{1, 10, 10}};  // empty window
  EXPECT_THROW(engine.set_fault_plan(plan), std::invalid_argument);
  plan.crashes = {CrashEvent{1, 0, 10}, CrashEvent{1, 5, 20}};  // overlap
  EXPECT_THROW(engine.set_fault_plan(plan), std::invalid_argument);
  plan.crashes = {CrashEvent{1, 0, 10}, CrashEvent{1, 10, 20}};  // touching: ok
  EXPECT_NO_THROW(engine.set_fault_plan(plan));
}

// The rejection messages must name the offending node and rounds — a
// hand-written 40-event chaos schedule is undebuggable from a bare
// "invalid plan".
TEST(FaultPlan, ValidationMessagesNameNodeAndRounds) {
  Graph g = path_graph(3);
  Engine engine(g);
  FaultPlan plan;
  plan.crashes = {CrashEvent{1, 7, 7}};  // restart_round == crash_round
  try {
    engine.set_fault_plan(plan);
    FAIL() << "expected invalid_argument for the empty window";
  } catch (const std::invalid_argument& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("node 1"), std::string::npos) << what;
    EXPECT_NE(what.find("[7, 7)"), std::string::npos) << what;
  }

  plan.crashes = {CrashEvent{2, 3, 9},
                  CrashEvent{2, 5, CrashEvent::kNeverRestarts}};
  try {
    engine.set_fault_plan(plan);
    FAIL() << "expected invalid_argument for the overlap";
  } catch (const std::invalid_argument& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("node 2"), std::string::npos) << what;
    EXPECT_NE(what.find("[3, 9)"), std::string::npos) << what;
    EXPECT_NE(what.find("[5, never)"), std::string::npos) << what;
  }
}

TEST(FaultPlan, RejectsOverrideOnNonEdge) {
  Graph g = path_graph(3);  // edges 0-1, 1-2
  Engine engine(g);
  FaultPlan plan;
  plan.edge_overrides.push_back({{0, 2}, FaultRates{0.5, 0.0, 0.0}});
  EXPECT_THROW(engine.set_fault_plan(plan), std::invalid_argument);
}

TEST(FaultPlan, RejectsDuplicateEdgeOverride) {
  FaultPlan plan;
  plan.edge_overrides.push_back({{0, 1}, FaultRates{0.5, 0.0, 0.0}});
  plan.edge_overrides.push_back({{1, 0}, FaultRates{0.2, 0.0, 0.0}});  // ok: other direction
  plan.edge_overrides.push_back({{0, 1}, FaultRates{0.1, 0.0, 0.0}});  // duplicate key
  try {
    plan.validate(3);
    FAIL() << "duplicate directed-edge override must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
    EXPECT_NE(what.find("0->1"), std::string::npos) << what;
  }
}

TEST(FaultPlan, AcceptsBothDirectionsOfAnEdge) {
  // The two directions of a link are distinct channels with independently
  // overridable rates; only an exact (u, v) repeat is a duplicate.
  FaultPlan plan;
  plan.edge_overrides.push_back({{0, 1}, FaultRates{0.5, 0.0, 0.0}});
  plan.edge_overrides.push_back({{1, 0}, FaultRates{0.2, 0.0, 0.0}});
  EXPECT_NO_THROW(plan.validate(2));
}

TEST(FaultPlan, RejectsSelfLoopOverride) {
  FaultPlan plan;
  plan.edge_overrides.push_back({{2, 2}, FaultRates{0.5, 0.0, 0.0}});
  try {
    plan.validate(4);
    FAIL() << "self-loop override must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("self-loop"), std::string::npos) << what;
    EXPECT_NE(what.find("2->2"), std::string::npos) << what;
  }
}

TEST(FaultPlan, OutOfRangeOverrideNamesTheEdge) {
  FaultPlan plan;
  plan.edge_overrides.push_back({{0, 7}, FaultRates{0.5, 0.0, 0.0}});
  try {
    plan.validate(3);
    FAIL() << "out-of-range endpoint must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0->7"), std::string::npos) << what;
  }
}

TEST(FaultPlan, InactivePlanIsInactive) {
  Graph g = path_graph(2);
  Engine engine(g);
  engine.set_fault_plan(FaultPlan{});
  EXPECT_FALSE(engine.fault_plan_active());
}

// An *active* plan whose rates are all zero (a crash scheduled far past the
// end of the run) must leave every legacy counter identical to a fault-free
// engine: the lottery path runs but Rng::bernoulli(0) draws nothing.
TEST(FaultPlan, ZeroRatesAreByteIdentical) {
  util::Rng topo(21);
  Graph g = random_connected_graph(24, 20, topo);
  auto run = [&](bool with_plan) {
    Engine engine(g, 1, 42);
    if (with_plan) {
      FaultPlan plan;
      plan.crashes.push_back(CrashEvent{0, 1000000, CrashEvent::kNeverRestarts});
      engine.set_fault_plan(plan);
      EXPECT_TRUE(engine.fault_plan_active());
    }
    RunResult total;
    auto election = elect_leader(engine);
    total += election.cost;
    total += build_bfs_tree(engine, election.leader).cost;
    return total;
  };
  RunResult clean = run(false);
  RunResult faulty_path = run(true);
  EXPECT_EQ(clean, faulty_path);
}

TEST(FaultPlan, SeededLotteryReplays) {
  util::Rng topo(31);
  Graph g = random_connected_graph(20, 16, topo);
  FaultPlan plan;
  plan.link = FaultRates{0.1, 0.05, 0.05};
  // Flood-max leader election is not fault-tolerant, so the seed is picked
  // such that the lottery never drops a word the election cannot survive
  // (under the engine's per-directed-edge fault streams).
  plan.seed = 778;
  auto run = [&] {
    Engine engine(g, 1, 9);
    engine.set_fault_plan(plan);
    auto programs = make_streamers(g.num_nodes(), 0);
    // Flood-max leader election exercises every edge repeatedly.
    return elect_leader(engine).cost;
  };
  RunResult first = run();
  RunResult second = run();
  EXPECT_EQ(first, second);  // includes the fault counters
  EXPECT_GT(first.dropped_words, 0u);

  plan.seed = 779;
  RunResult reseeded = [&] {
    Engine engine(g, 1, 9);
    engine.set_fault_plan(plan);
    return elect_leader(engine).cost;
  }();
  // A different fault seed draws a different lottery (overwhelmingly).
  EXPECT_NE(first.dropped_words + first.corrupted_words,
            reseeded.dropped_words + reseeded.corrupted_words);
}

TEST(FaultPlan, DropLotteryDropsWords) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  FaultPlan plan;
  plan.link.drop = 1.0;
  engine.set_fault_plan(plan);
  auto programs = make_streamers(2, 10);
  RunResult result = engine.run(programs, 50);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.dropped_words, 10u);
  EXPECT_TRUE(static_cast<Streamer&>(*programs[1]).received.empty());
  EXPECT_EQ(result.messages, 10u);  // sends are counted before the lottery
}

TEST(FaultPlan, CorruptionFlipsExactlyOnePayloadBit) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  FaultPlan plan;
  plan.link.corrupt = 1.0;
  engine.set_fault_plan(plan);
  auto programs = make_streamers(2, 8);
  RunResult result = engine.run(programs, 50);
  EXPECT_EQ(result.corrupted_words, 8u);
  const auto& received = static_cast<Streamer&>(*programs[1]).received;
  ASSERT_EQ(received.size(), 8u);
  for (std::size_t i = 0; i < received.size(); ++i) {
    // Tag survives (words still routed); payload differs from the original
    // in exactly one bit position of (a, b) — and b was sent as 0.
    std::uint64_t delta = static_cast<std::uint64_t>(received[i]) ^ i;
    // Either a changed by one bit (b untouched) or a is intact (b changed).
    EXPECT_TRUE(delta == 0 || (delta & (delta - 1)) == 0);
  }
}

TEST(FaultPlan, DuplicationDeliversTwice) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  FaultPlan plan;
  plan.link.duplicate = 1.0;
  engine.set_fault_plan(plan);
  auto programs = make_streamers(2, 5);
  RunResult result = engine.run(programs, 50);
  EXPECT_EQ(result.duplicated_words, 5u);
  const auto& received = static_cast<Streamer&>(*programs[1]).received;
  ASSERT_EQ(received.size(), 10u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(received[2 * i], static_cast<std::int64_t>(i));
    EXPECT_EQ(received[2 * i + 1], static_cast<std::int64_t>(i));
  }
  // Duplicates are injected by the network: bandwidth accounting unchanged.
  EXPECT_EQ(result.max_edge_words, 1u);
}

TEST(FaultPlan, EdgeOverrideBeatsLinkRates) {
  Graph g = path_graph(3);  // 0-1-2
  Engine engine(g, 1, 3);
  FaultPlan plan;
  plan.link.drop = 1.0;
  plan.edge_overrides.push_back({{0, 1}, FaultRates{}});  // 0->1 is perfect
  engine.set_fault_plan(plan);
  auto programs = make_streamers(3, 4);
  engine.run(programs, 50);
  EXPECT_EQ(static_cast<Streamer&>(*programs[1]).received.size(), 4u);
}

TEST(FaultPlan, CrashStopSilencesNode) {
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 0, CrashEvent::kNeverRestarts});
  engine.set_fault_plan(plan);
  auto programs = make_streamers(2, 6);
  RunResult result = engine.run(programs, 50);
  EXPECT_EQ(result.crashed_nodes, 1u);
  EXPECT_EQ(result.dropped_words, 6u);  // everything addressed to 1 is lost
  EXPECT_TRUE(static_cast<Streamer&>(*programs[1]).received.empty());
}

TEST(FaultPlan, CrashRestartResumesScheduling) {
  /// Node 1 is down for arrival rounds [1, 4): words sent in rounds 0..2
  /// are lost, words sent in rounds 3..5 arrive in rounds 4..6.
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 1, 4});
  engine.set_fault_plan(plan);
  auto programs = make_streamers(2, 6);
  RunResult result = engine.run(programs, 50);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.crashed_nodes, 1u);
  EXPECT_EQ(result.dropped_words, 3u);
  const auto& received = static_cast<Streamer&>(*programs[1]).received;
  EXPECT_EQ(received, (std::vector<std::int64_t>{3, 4, 5}));
}

// A restart scheduled beyond the natural quiescence point must still
// happen: the run idles through the outage instead of terminating.
TEST(FaultPlan, RestartOutlivesQuiescence) {
  class LateEcho final : public NodeProgram {
   public:
    bool woke = false;
    void on_round(Context& ctx, std::span<const Message>) override {
      // Node 1 acts only when it is scheduled at round >= 8 (after its
      // outage); everyone else is silent from the start.
      if (ctx.id() == 1 && ctx.round() >= 8 && !woke) {
        woke = true;
        ctx.send(0, Word{9, 1, 0, false});
        ctx.halt();
      }
    }
  };
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 1, 8});
  engine.set_fault_plan(plan);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<LateEcho>());
  programs.push_back(std::make_unique<LateEcho>());
  RunResult result = engine.run(programs, 50);
  EXPECT_TRUE(static_cast<LateEcho&>(*programs[1]).woke);
  EXPECT_EQ(result.rounds, 9u);  // the post-restart send is the last send
}

// --- RunResult monoid identity (regression: default completed poisoned
// sums before phase accumulators ran anything) ---------------------------

TEST(RunResult, DefaultIsIdentityOfAccumulation) {
  RunResult sum;  // fresh accumulator: must be the identity
  EXPECT_TRUE(sum.completed);

  RunResult phase;
  phase.rounds = 5;
  phase.messages = 7;
  phase.completed = true;
  sum += phase;
  EXPECT_TRUE(sum.completed);
  EXPECT_EQ(sum.rounds, 5u);
  EXPECT_EQ(sum.messages, 7u);

  RunResult failed;
  failed.completed = false;
  sum += failed;
  EXPECT_FALSE(sum.completed);  // one incomplete phase poisons the total

  RunResult identity;
  RunResult copy = phase;
  copy += identity;
  EXPECT_EQ(copy, phase);  // right identity, all counters included
}

// --- Context::keep_alive: idle-then-act programs survive quiescence -----

TEST(Engine, KeepAliveDefersQuiescence) {
  class Sleeper final : public NodeProgram {
   public:
    bool delivered = false;
    void on_round(Context& ctx, std::span<const Message> inbox) override {
      if (!inbox.empty()) delivered = true;
      if (ctx.id() != 0) return;
      if (ctx.round() < 5) {
        ctx.keep_alive();  // idle on purpose: waiting on a timer
      } else if (ctx.round() == 5) {
        ctx.send(1, Word{3, 1, 0, false});
        ctx.halt();
      }
    }
  };
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<Sleeper>());
  programs.push_back(std::make_unique<Sleeper>());
  RunResult result = engine.run(programs, 50);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(static_cast<Sleeper&>(*programs[1]).delivered);
  EXPECT_EQ(result.rounds, 6u);
}

TEST(Engine, WithoutKeepAliveQuiescenceWins) {
  class SilentSleeper final : public NodeProgram {
   public:
    bool delivered = false;
    void on_round(Context& ctx, std::span<const Message> inbox) override {
      if (!inbox.empty()) delivered = true;
      if (ctx.id() == 0 && ctx.round() == 5) ctx.send(1, Word{3, 1, 0, false});
    }
  };
  Graph g = path_graph(2);
  Engine engine(g, 1, 3);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<SilentSleeper>());
  programs.push_back(std::make_unique<SilentSleeper>());
  RunResult result = engine.run(programs, 50);
  // The engine quiesces after the first silent pass — the round-5 send
  // never happens. keep_alive exists precisely to opt out of this.
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_FALSE(static_cast<SilentSleeper&>(*programs[1]).delivered);
}

}  // namespace
}  // namespace qcongest::net
