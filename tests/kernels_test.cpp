// Scalar-vs-SIMD statevector kernel equivalence.
//
// The scalar backend is the oracle (the historical Statevector::apply
// loops, bit-for-bit). Every other backend the build carries and the CPU
// supports is swept against it over qubit counts 1-12, every gate shape
// (generic, diagonal, antidiagonal, rotation), every target position
// (which exercises the unaligned stride-1 lane path and every strided
// width), and control sets above, below, and straddling the target.
//
// Vector backends mirror the oracle's per-operation rounding (multiply
// then add/sub, never FMA), so agreement is expected at machine precision;
// the tolerance below only allows for association differences in the
// structural fast paths (multiplying by an exact zero versus skipping it).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "src/quantum/gates.hpp"
#include "src/quantum/kernels.hpp"
#include "src/quantum/statevector.hpp"
#include "src/util/rng.hpp"

namespace qcongest::quantum {
namespace {

constexpr double kTol = 1e-13;

std::vector<Amplitude> random_state(unsigned qubits, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Amplitude> amps(std::size_t{1} << qubits);
  double norm2 = 0.0;
  for (auto& a : amps) {
    a = Amplitude{rng.uniform() - 0.5, rng.uniform() - 0.5};
    norm2 += std::norm(a);
  }
  const double scale = 1.0 / std::sqrt(norm2);
  for (auto& a : amps) a *= scale;
  return amps;
}

kernels::Gate1Coeffs coeffs(const Gate1& g) {
  return {g(0, 0), g(0, 1), g(1, 0), g(1, 1)};
}

std::vector<std::pair<const char*, Gate1>> gate_zoo() {
  return {
      {"identity", gates::identity()},
      {"hadamard", gates::hadamard()},
      {"pauli_x", gates::pauli_x()},   // antidiagonal, real
      {"pauli_y", gates::pauli_y()},   // antidiagonal, imaginary
      {"pauli_z", gates::pauli_z()},   // diagonal, real
      {"s", gates::s()},               // diagonal, imaginary
      {"t", gates::t()},               // diagonal, complex
      {"rx", gates::rx(0.37)},         // generic complex
      {"ry", gates::ry(1.11)},         // generic real
      {"rz", gates::rz(2.5)},          // diagonal complex
      {"phase", gates::phase(0.73)},
  };
}

/// Non-scalar backends available in this build on this CPU.
std::vector<std::pair<const char*, const kernels::KernelOps*>> vector_backends() {
  std::vector<std::pair<const char*, const kernels::KernelOps*>> out;
  if (const auto* ops = kernels::avx2_ops_or_null()) out.push_back({"avx2", ops});
  if (const auto* ops = kernels::neon_ops_or_null()) out.push_back({"neon", ops});
  return out;
}

void expect_close(const std::vector<Amplitude>& got,
                  const std::vector<Amplitude>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i].real(), want[i].real(), kTol)
        << label << " amplitude " << i;
    ASSERT_NEAR(got[i].imag(), want[i].imag(), kTol)
        << label << " amplitude " << i;
  }
}

TEST(KernelEquivalence, EveryGateEveryTargetQubits1To12) {
  const auto backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend on this machine";
  for (unsigned qubits = 1; qubits <= 12; ++qubits) {
    const auto base = random_state(qubits, 1000 + qubits);
    for (const auto& [gname, gate] : gate_zoo()) {
      const auto g = coeffs(gate);
      for (unsigned target = 0; target < qubits; ++target) {
        auto oracle = base;
        kernels::scalar_ops().apply_pairs(oracle.data(), oracle.size(),
                                          std::size_t{1} << target, g);
        for (const auto& [bname, ops] : backends) {
          auto vec = base;
          ops->apply_pairs(vec.data(), vec.size(), std::size_t{1} << target, g);
          SCOPED_TRACE(std::string(bname) + " " + gname + " q" +
                       std::to_string(qubits) + " t" + std::to_string(target));
          expect_close(vec, oracle, bname);
        }
      }
    }
  }
}

TEST(KernelEquivalence, ControlledEveryMaskShape) {
  const auto backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend on this machine";
  for (unsigned qubits = 2; qubits <= 12; ++qubits) {
    const auto base = random_state(qubits, 2000 + qubits);
    for (const auto& [gname, gate] : gate_zoo()) {
      const auto g = coeffs(gate);
      for (unsigned target = 0; target < qubits; ++target) {
        // Control sets: single above, single below, straddling pair, and
        // the densest legal mask (every other qubit) — covers the
        // vectorized whole-run path, the in-run scalar path, and both.
        std::vector<std::vector<unsigned>> control_sets;
        if (target + 1 < qubits) control_sets.push_back({target + 1});
        if (target >= 1) control_sets.push_back({target - 1});
        if (target >= 1 && target + 1 < qubits) {
          control_sets.push_back({target - 1, target + 1});
        }
        std::vector<unsigned> all;
        for (unsigned q = 0; q < qubits; ++q) {
          if (q != target) all.push_back(q);
        }
        control_sets.push_back(all);
        for (const auto& controls : control_sets) {
          BasisState mask = 0;
          for (unsigned c : controls) mask |= BasisState{1} << c;
          auto oracle = base;
          kernels::scalar_ops().apply_pairs_controlled(
              oracle.data(), oracle.size(), std::size_t{1} << target, g, mask);
          for (const auto& [bname, ops] : backends) {
            auto vec = base;
            ops->apply_pairs_controlled(vec.data(), vec.size(),
                                        std::size_t{1} << target, g, mask);
            SCOPED_TRACE(std::string(bname) + " c" + gname + " q" +
                         std::to_string(qubits) + " t" +
                         std::to_string(target) + " mask" +
                         std::to_string(mask));
            expect_close(vec, oracle, bname);
          }
        }
      }
    }
  }
}

TEST(KernelEquivalence, StatevectorLevelCircuitMatchesScalarKernels) {
  // A full circuit through the public Statevector API (whatever backend is
  // active) against the same circuit replayed through the scalar oracle.
  const unsigned qubits = 9;
  Statevector sv(qubits);
  auto mirror = random_state(qubits, 0);  // overwritten below
  {
    // |0...0> start for the mirror too.
    std::fill(mirror.begin(), mirror.end(), Amplitude{0, 0});
    mirror[0] = Amplitude{1, 0};
  }
  auto scalar_apply = [&](const Gate1& gate, unsigned target) {
    kernels::scalar_ops().apply_pairs(mirror.data(), mirror.size(),
                                      std::size_t{1} << target, coeffs(gate));
  };
  auto scalar_ctrl = [&](const Gate1& gate, std::vector<unsigned> cs,
                         unsigned target) {
    BasisState mask = 0;
    for (unsigned c : cs) mask |= BasisState{1} << c;
    kernels::scalar_ops().apply_pairs_controlled(mirror.data(), mirror.size(),
                                                 std::size_t{1} << target,
                                                 coeffs(gate), mask);
  };
  for (unsigned q = 0; q < qubits; ++q) {
    sv.h(q);
    scalar_apply(gates::hadamard(), q);
  }
  for (unsigned q = 0; q + 1 < qubits; ++q) {
    sv.cnot(q, q + 1);
    scalar_ctrl(gates::pauli_x(), {q}, q + 1);
    sv.apply(gates::t(), q);
    scalar_apply(gates::t(), q);
  }
  sv.ccx(0, 4, 8);
  scalar_ctrl(gates::pauli_x(), {0, 4}, 8);
  sv.cz(8, 1);
  scalar_ctrl(gates::pauli_z(), {8}, 1);
  sv.apply(gates::ry(0.9), 3);
  scalar_apply(gates::ry(0.9), 3);

  const auto amps = sv.amplitudes();
  for (std::size_t i = 0; i < mirror.size(); ++i) {
    ASSERT_NEAR(amps[i].real(), mirror[i].real(), kTol) << "amplitude " << i;
    ASSERT_NEAR(amps[i].imag(), mirror[i].imag(), kTol) << "amplitude " << i;
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(KernelDispatch, ActiveBackendIsCoherent) {
  const auto backend = kernels::active_backend();
  // The active ops table must be the one the named backend provides.
  switch (backend) {
    case kernels::Backend::kScalar:
      EXPECT_EQ(&kernels::active_ops(), &kernels::scalar_ops());
      break;
    case kernels::Backend::kAvx2:
      EXPECT_EQ(&kernels::active_ops(), kernels::avx2_ops_or_null());
      break;
    case kernels::Backend::kNeon:
      EXPECT_EQ(&kernels::active_ops(), kernels::neon_ops_or_null());
      break;
  }
  EXPECT_STRNE(kernels::backend_name(backend), "unknown");
}

TEST(KernelDispatch, NormPreservedOnLargeStateThroughActiveBackend) {
  Statevector sv(12);
  util::Rng rng(7);
  sv.h_all();
  for (int i = 0; i < 50; ++i) {
    const unsigned t = static_cast<unsigned>(rng.index(12));
    unsigned c = static_cast<unsigned>(rng.index(12));
    if (c == t) c = (c + 1) % 12;
    sv.apply(gates::rx(0.1 * static_cast<double>(i)), t);
    sv.cnot(c, t);
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

}  // namespace
}  // namespace qcongest::quantum
