// Parameterized sweeps over the applications: correctness, one-sidedness,
// and the CONGEST bandwidth invariant across graph families and sizes.

#include <gtest/gtest.h>

#include <tuple>

#include "src/apps/cycle_detection.hpp"
#include "src/apps/deutsch_jozsa.hpp"
#include "src/apps/eccentricity.hpp"
#include "src/apps/girth.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/apps/twoparty.hpp"
#include "src/net/generators.hpp"

namespace qcongest::apps {
namespace {

net::Graph family_graph(int family, std::size_t n, util::Rng& rng) {
  switch (family) {
    case 0:
      return net::path_graph(n);
    case 1:
      return net::cycle_graph(std::max<std::size_t>(n, 3));
    case 2:
      return net::grid_graph(std::max<std::size_t>(n / 5, 2), 5);
    case 3:
      return net::two_stars_graph(n / 2, n / 2, 2);
    default:
      return net::random_connected_graph(n, n, rng);
  }
}

class EccentricityFamilies
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(EccentricityFamilies, DiameterAndRadiusSucceedAndRespectBandwidth) {
  auto [family, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(family) * 37 + n);
  net::Graph g = family_graph(family, n, rng);

  int diameter_hits = 0, radius_hits = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    auto diam = diameter_quantum(g, rng);
    if (diam.value == g.diameter()) ++diameter_hits;
    // The engine throws on violations; additionally assert the recorded
    // peak utilization never exceeded the advertised bandwidth of 1.
    EXPECT_LE(diam.cost.max_edge_words, 1u);
    auto rad = radius_quantum(g, rng);
    if (rad.value == g.radius()) ++radius_hits;
  }
  EXPECT_GE(diameter_hits, 2 * trials / 3);
  EXPECT_GE(radius_hits, 2 * trials / 3);

  EXPECT_EQ(diameter_classical(g).value, g.diameter());
  EXPECT_EQ(radius_classical(g).value, g.radius());
}

INSTANTIATE_TEST_SUITE_P(Sweep, EccentricityFamilies,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(16u, 36u)));

class DeutschJozsaSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, bool>> {};

TEST_P(DeutschJozsaSweep, AllThreeProtocolsBehaveAsPromised) {
  auto [k, distance, balanced] = GetParam();
  util::Rng rng(k * 7 + distance + (balanced ? 1 : 0));
  auto gadget = deutsch_jozsa_gadget(k, distance, balanced, rng);
  auto expected = balanced ? query::DjVerdict::kBalanced : query::DjVerdict::kConstant;

  auto quantum = deutsch_jozsa_quantum(gadget.graph, gadget.data);
  EXPECT_EQ(quantum.verdict, expected);  // probability-1 algorithm
  EXPECT_LE(quantum.cost.max_edge_words, 1u);

  auto classical = deutsch_jozsa_classical_exact(gadget.graph, gadget.data);
  EXPECT_EQ(classical.verdict, expected);

  auto sampling = deutsch_jozsa_classical_sampling(gadget.graph, gadget.data, 10, rng);
  if (!balanced) {
    // Constant inputs can never be misread by the sampler.
    EXPECT_EQ(sampling.verdict, query::DjVerdict::kConstant);
  }
  // The quantum protocol's cost is independent of k up to word width.
  EXPECT_LE(quantum.cost.rounds, 10 * distance + 40);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeutschJozsaSweep,
                         ::testing::Combine(::testing::Values(16u, 256u, 2048u),
                                            ::testing::Values(3u, 9u),
                                            ::testing::Bool()));

class MeetingSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MeetingSweep, QuantumMatchesReferenceWithPromisedProbability) {
  auto [n, k] = GetParam();
  util::Rng rng(n * 13 + k);
  net::Graph g = net::random_connected_graph(n, n / 2, rng);
  Calendars calendars(n, std::vector<query::Value>(k, 0));
  for (auto& row : calendars) {
    for (auto& slot : row) slot = rng.bernoulli(0.25) ? 1 : 0;
  }
  auto reference = meeting_scheduling_reference(calendars);
  EXPECT_EQ(meeting_scheduling_classical(g, calendars).availability,
            reference.availability);
  int hits = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    auto result = meeting_scheduling_quantum(g, calendars, rng);
    if (result.availability == reference.availability) ++hits;
    EXPECT_LE(result.cost.max_edge_words, 1u);
  }
  EXPECT_GE(hits, 2 * trials / 3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MeetingSweep,
                         ::testing::Combine(::testing::Values(8u, 24u),
                                            ::testing::Values(32u, 256u)));

class GirthFamilies
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(GirthFamilies, GirthIsNeverUnderestimatedAndUsuallyExact) {
  auto [girth, n] = GetParam();
  util::Rng rng(girth * 101 + n);
  net::Graph g = net::cycle_with_trees(girth, n, rng);
  int exact = 0;
  const int trials = 4;
  for (int t = 0; t < trials; ++t) {
    auto result = girth_quantum(g, 0.5, rng);
    ASSERT_TRUE(result.girth.has_value());
    EXPECT_GE(*result.girth, girth);  // one-sided error
    if (*result.girth == girth) ++exact;
  }
  EXPECT_GE(exact, 2 * trials / 3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GirthFamilies,
                         ::testing::Combine(::testing::Values(3u, 4u, 6u, 9u),
                                            ::testing::Values(24u, 48u)));

class CycleDetectionNoFalsePositives : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CycleDetectionNoFalsePositives, ForestsAlwaysComeUpEmpty) {
  std::size_t n = GetParam();
  util::Rng rng(n);
  net::Graph g = net::binary_tree(n);
  for (std::size_t k : {4u, 8u}) {
    auto result = cycle_detection(g, k, rng);
    EXPECT_FALSE(result.cycle_length.has_value());
    auto clustered = cycle_detection_clustered(g, k, rng);
    EXPECT_FALSE(clustered.cycle_length.has_value());
  }
  EXPECT_FALSE(girth_quantum(g, 0.5, rng).girth.has_value());
  EXPECT_FALSE(girth_classical(g).girth.has_value());
}

INSTANTIATE_TEST_SUITE_P(Sweep, CycleDetectionNoFalsePositives,
                         ::testing::Values(7u, 20u, 45u));

}  // namespace
}  // namespace qcongest::apps
