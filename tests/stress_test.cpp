// Scale smoke tests: the simulator's formulas keep holding well past the
// sizes the unit tests use, and runtimes stay sane.

#include <gtest/gtest.h>

#include "src/apps/deutsch_jozsa.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/apps/twoparty.hpp"
#include "src/framework/distributed_state.hpp"
#include "src/net/generators.hpp"
#include "src/net/multi_bfs.hpp"

namespace qcongest {
namespace {

TEST(Stress, StateDistributionOnThousandNodePath) {
  net::Graph g = net::path_graph(1000);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  ASSERT_EQ(tree.height, 999u);
  auto cost = framework::distribute_state(engine, tree, 2000);
  std::size_t words = framework::words_for_bits(2000, 1000);
  EXPECT_EQ(cost.rounds, 999 + words - 1);
  EXPECT_EQ(cost.max_edge_words, 1u);
}

TEST(Stress, MultiBfsOnLargeRandomGraph) {
  util::Rng rng(1);
  net::Graph g = net::random_connected_graph(300, 400, rng);
  net::Engine engine(g, 1, 1);
  std::vector<net::NodeId> sources;
  for (std::size_t i = 0; i < 30; ++i) sources.push_back(i * 10);
  auto result = net::multi_source_bfs(engine, sources, g.num_nodes());
  // Spot-check a handful of sources against ground truth.
  for (std::size_t i : {0u, 14u, 29u}) {
    auto truth = g.bfs_distances(sources[i]);
    for (net::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(result.dist[v][i], truth[v]);
    }
  }
  EXPECT_LE(result.cost.rounds, 4 * (sources.size() + g.diameter()) + 16);
}

TEST(Stress, ClassicalMeetingSchedulingAtHundredThousandSlots) {
  util::Rng rng(2);
  const std::size_t k = 100000;
  net::Graph g = net::path_graph(5);
  apps::Calendars calendars(5, std::vector<query::Value>(k, 0));
  calendars[2][77777] = 1;
  calendars[4][77777] = 1;
  auto result = apps::meeting_scheduling_classical(g, calendars);
  EXPECT_EQ(result.best_slot, 77777u);
  EXPECT_EQ(result.availability, 2);
  // Theta(D + k) rounds.
  EXPECT_GE(result.cost.rounds, k);
  EXPECT_LE(result.cost.rounds, k + 64);
}

TEST(Stress, QuantumDeutschJozsaAtMillionSlots) {
  // The qudit register lives in C^k — a million amplitudes is trivial —
  // and the network cost stays O(D log k / log n).
  util::Rng rng(3);
  const std::size_t k = 1 << 20;
  net::Graph g = net::path_graph(6);
  std::vector<std::vector<query::Value>> data(6, std::vector<query::Value>(k, 0));
  // Balanced input planted in node 3.
  for (std::size_t i = 0; i < k / 2; ++i) data[3][2 * i] = 1;
  auto result = apps::deutsch_jozsa_quantum(g, data);
  EXPECT_EQ(result.verdict, query::DjVerdict::kBalanced);
  EXPECT_LE(result.cost.rounds, 200u);  // flat in k
}

TEST(Stress, QuantumMeetingSchedulingMidScale) {
  util::Rng rng(4);
  const std::size_t k = 32768;
  auto gadget = apps::meeting_scheduling_gadget(k, 6, true, rng);
  auto result = apps::meeting_scheduling_quantum(gadget.graph, gadget.calendars, rng);
  EXPECT_LT(result.cost.rounds, k);  // far below the classical Theta(k)
  EXPECT_GT(result.batches, 0u);
}

}  // namespace
}  // namespace qcongest
