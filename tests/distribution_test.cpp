// Statistical cross-validation between independent implementations: the
// gate-level simulators on one side, the analytic distributions the scaled
// layer samples from on the other. Agreement here is what justifies using
// the analytic forms at sizes the statevector cannot reach.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/framework/non_oracle.hpp"
#include "src/query/gate_level.hpp"
#include "src/query/grover_math.hpp"
#include "src/query/mean_estimation.hpp"
#include "src/quantum/statevector.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest {
namespace {

TEST(Distribution, GateLevelQpeMatchesAnalyticFormula) {
  // Histogram gate-level QPE outcomes for an off-grid phase and compare to
  // framework::qpe_outcome_probability (used by the scaled phase
  // estimation). 4 precision bits -> 16 outcomes.
  util::Rng rng(1);
  const double phi = 0.23;
  quantum::Circuit u(1);
  u.phase(0, 2.0 * M_PI * phi);
  quantum::Circuit prep(1);
  prep.x(0);

  const int trials = 4000;
  std::map<int, int> histogram;
  for (int t = 0; t < trials; ++t) {
    double est = query::gate_level_phase_estimation(u, prep, 4, rng);
    histogram[static_cast<int>(std::lround(est * 16.0)) % 16]++;
  }
  for (int y = 0; y < 16; ++y) {
    double expected =
        framework::qpe_outcome_probability(16, phi, static_cast<std::size_t>(y));
    double observed = static_cast<double>(histogram[y]) / trials;
    // Tolerance ~ 4 standard errors for the largest bins.
    EXPECT_NEAR(observed, expected, 0.035) << "y=" << y;
  }
}

TEST(Distribution, GateLevelGroverOutcomesMatchRotationLaw) {
  // Measure after j iterations at gate level; empirical marked-probability
  // must track sin^2((2j+1) theta).
  util::Rng rng(2);
  const unsigned width = 4;
  const std::vector<quantum::BasisState> marked{2, 7, 11};
  double theta = query::grover_angle(3.0 / 16.0);
  for (std::uint64_t j : {std::uint64_t{1}, std::uint64_t{2}}) {
    int hits = 0;
    const int trials = 2500;
    quantum::Statevector reference(width);
    reference.h_all();
    quantum::Circuit q = query::grover_iterate_circuit(width, marked);
    for (std::uint64_t it = 0; it < j; ++it) q.apply_to(reference);
    for (int t = 0; t < trials; ++t) {
      quantum::Statevector state = reference;
      auto outcome = state.measure_all(rng);
      if (std::find(marked.begin(), marked.end(), outcome) != marked.end()) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials,
                query::grover_success_probability(j, theta), 0.04)
        << "j=" << j;
  }
}

TEST(Distribution, MarkedSubsetFractionMatchesEmpiricalSampling) {
  // The closed-form marked_subset_fraction must agree with brute-force
  // sampling of random subsets.
  util::Rng rng(3);
  const std::size_t k = 60, t = 7, p = 5;
  std::vector<bool> is_marked(k, false);
  for (std::size_t i = 0; i < t; ++i) is_marked[i * 8] = true;
  int hits = 0;
  const int trials = 20000;
  for (int trial = 0; trial < trials; ++trial) {
    auto subset = rng.sample_without_replacement(k, p);
    for (auto idx : subset) {
      if (is_marked[idx]) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, query::marked_subset_fraction(k, t, p),
              0.012);
}

TEST(Distribution, SampleOracleIsUnbiased) {
  util::Rng rng(4);
  std::vector<double> population;
  for (int i = 0; i < 500; ++i) population.push_back(static_cast<double>(i % 10));
  query::PopulationSampleOracle oracle(population, 10);
  double sum = 0.0;
  int count = 0;
  for (int batch = 0; batch < 600; ++batch) {
    for (double x : oracle.sample_batch(rng)) {
      sum += x;
      ++count;
    }
  }
  EXPECT_NEAR(sum / count, oracle.true_mean(), 0.1);
}

TEST(Distribution, QpeProbabilitiesFormDistributionForManyPhases) {
  for (double phi : {0.0, 0.1, 0.37, 0.5, 0.93}) {
    for (std::size_t big_k : {4u, 16u, 64u}) {
      double total = 0.0;
      std::size_t best = 0;
      for (std::size_t y = 0; y < big_k; ++y) {
        double p = framework::qpe_outcome_probability(big_k, phi, y);
        EXPECT_GE(p, -1e-12);
        total += p;
        if (p > framework::qpe_outcome_probability(big_k, phi, best)) best = y;
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
      // The mode is within one grid cell of the true phase.
      double mode_phase = static_cast<double>(best) / static_cast<double>(big_k);
      double err = std::abs(mode_phase - phi);
      err = std::min(err, 1.0 - err);
      EXPECT_LE(err, 1.0 / static_cast<double>(big_k) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace qcongest
