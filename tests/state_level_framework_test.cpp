// State-level validation of Theorem 8: the distributed query protocol,
// simulated as an actual quantum state on the sparse simulator, acts on the
// leader's registers exactly like one standard oracle query
// |j>|y> -> |j>|y + oplus_v x_j^{(v)}>. The engine tests validate the
// *schedule*; this file validates the *state transformation*.

#include <gtest/gtest.h>

#include <cmath>

#include "src/net/bfs.hpp"
#include "src/net/generators.hpp"
#include "src/quantum/sparse_statevector.hpp"

namespace qcongest::quantum {
namespace {

constexpr double kTol = 1e-10;

/// Simulates the Theorem 8 data flow on a real quantum state:
///  1. the leader's index register (q_idx qubits) is fanned out along the
///     BFS tree (Lemma 7),
///  2. every node coherently adds its local value x_j^{(v)} into the shared
///     answer register, conditioned on its copy of the index,
///  3. the copies are uncomputed (the reverse fan-out).
/// Layout: node v owns qubits [v * q_idx, (v+1) * q_idx); the answer
/// register sits at the top.
class StateLevelFramework {
 public:
  StateLevelFramework(const net::Graph& graph, const net::BfsTree& tree,
                      unsigned q_idx, unsigned q_ans)
      : graph_(&graph),
        tree_(&tree),
        q_idx_(q_idx),
        q_ans_(q_ans),
        state_(static_cast<unsigned>(graph.num_nodes()) * q_idx + q_ans) {}

  SparseStatevector& state() { return state_; }
  unsigned answer_offset() const {
    return static_cast<unsigned>(graph_->num_nodes()) * q_idx_;
  }
  unsigned leader_offset() const { return static_cast<unsigned>(tree_->root) * q_idx_; }

  /// One full distributed query against data[v][j].
  void query(const std::vector<std::vector<std::int64_t>>& data) {
    auto order = depth_order();
    for (net::NodeId v : order) {
      if (v == tree_->root) continue;
      fan_out_register(state_, static_cast<unsigned>(tree_->parent[v]) * q_idx_,
                       static_cast<unsigned>(v) * q_idx_, q_idx_);
    }
    // Each node's local oracle: |j>_v |y> -> |j>_v |y + x_j^{(v)}>.
    const std::uint64_t ans_mod = std::uint64_t{1} << q_ans_;
    for (net::NodeId v = 0; v < graph_->num_nodes(); ++v) {
      unsigned off = static_cast<unsigned>(v) * q_idx_;
      unsigned ans = answer_offset();
      const auto& row = data[v];
      state_.apply_permutation([&](BasisState b) {
        std::uint64_t j = (b >> off) & ((std::uint64_t{1} << q_idx_) - 1);
        std::uint64_t y = (b >> ans) & (ans_mod - 1);
        std::uint64_t x = j < row.size() ? static_cast<std::uint64_t>(row[j]) : 0;
        std::uint64_t y2 = (y + x) % ans_mod;
        return (b & ~(((ans_mod - 1)) << ans)) | (y2 << ans);
      });
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (*it == tree_->root) continue;
      fan_out_register(state_, static_cast<unsigned>(tree_->parent[*it]) * q_idx_,
                       static_cast<unsigned>(*it) * q_idx_, q_idx_);
    }
  }

 private:
  std::vector<net::NodeId> depth_order() const {
    std::vector<net::NodeId> order(graph_->num_nodes());
    for (net::NodeId v = 0; v < graph_->num_nodes(); ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&](net::NodeId a, net::NodeId b) {
      return tree_->depth[a] < tree_->depth[b];
    });
    return order;
  }

  const net::Graph* graph_;
  const net::BfsTree* tree_;
  unsigned q_idx_;
  unsigned q_ans_;
  SparseStatevector state_;
};

TEST(StateLevelFramework, DistributedQueryEqualsStandardOracle) {
  util::Rng rng(11);
  net::Graph g = net::random_connected_graph(8, 5, rng);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 2);

  const unsigned q_idx = 3, q_ans = 4;  // k = 8 indices, answers mod 16
  const std::size_t k = 8;
  std::vector<std::vector<std::int64_t>> data(8, std::vector<std::int64_t>(k));
  std::vector<std::uint64_t> totals(k, 0);
  for (std::size_t v = 0; v < 8; ++v) {
    for (std::size_t j = 0; j < k; ++j) {
      data[v][j] = static_cast<std::int64_t>(rng.index(3));
      totals[j] = (totals[j] + static_cast<std::uint64_t>(data[v][j])) % 16;
    }
  }

  StateLevelFramework framework(g, tree, q_idx, q_ans);
  // Leader register in a full superposition with non-trivial phases.
  for (unsigned b = 0; b < q_idx; ++b) {
    framework.state().h(framework.leader_offset() + b);
  }
  framework.state().apply_diagonal([&](BasisState basis) {
    std::uint64_t j = (basis >> framework.leader_offset()) & 0b111;
    return std::polar(1.0, 0.37 * static_cast<double>(j));
  });

  framework.query(data);

  // Expected state: sum_j alpha_j |j>_leader |totals[j]>_answer, all other
  // node registers back to |0>.
  EXPECT_EQ(framework.state().support_size(), k);
  double amp_sq_total = 0.0;
  for (std::uint64_t j = 0; j < k; ++j) {
    BasisState expected_basis =
        (j << framework.leader_offset()) |
        (static_cast<BasisState>(totals[j]) << framework.answer_offset());
    double a = std::abs(framework.state().amplitude(expected_basis));
    EXPECT_NEAR(a, 1.0 / std::sqrt(8.0), kTol) << "j=" << j;
    amp_sq_total += a * a;
  }
  EXPECT_NEAR(amp_sq_total, 1.0, kTol);
}

TEST(StateLevelFramework, TwoQueriesCompose) {
  // Query twice with negated data: the answer register returns to |0>,
  // confirming the oracle acts unitarily (uncompute works through the
  // whole pipeline).
  util::Rng rng(12);
  net::Graph g = net::path_graph(5);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);

  const unsigned q_idx = 2, q_ans = 3;
  std::vector<std::vector<std::int64_t>> data(5, {1, 2, 3, 0});
  std::vector<std::vector<std::int64_t>> negated(5, {7, 6, 5, 0});  // mod 8 inverse
  // 5 nodes x (1,2,3,0): totals (5, 10, 15, 0) mod 8 = (5, 2, 7, 0); the
  // negated data adds (35, 30, 25, 0) mod 8 = (3, 6, 1, 0): sums to 0 mod 8.

  StateLevelFramework framework(g, tree, q_idx, q_ans);
  for (unsigned b = 0; b < q_idx; ++b) {
    framework.state().h(framework.leader_offset() + b);
  }
  SparseStatevector before = framework.state();
  framework.query(data);
  framework.query(negated);
  EXPECT_NEAR(framework.state().fidelity(before), 1.0, kTol);
}

}  // namespace
}  // namespace qcongest::quantum
