#include <gtest/gtest.h>

#include "src/apps/cycle_detection.hpp"
#include "src/apps/eccentricity.hpp"
#include "src/apps/girth.hpp"
#include "src/net/generators.hpp"

namespace qcongest::apps {
namespace {

TEST(Eccentricity, ClassicalDiameterAndRadiusExact) {
  util::Rng rng(91);
  for (auto make : {+[] { return net::path_graph(14); },
                    +[] { return net::cycle_graph(11); },
                    +[] { return net::grid_graph(4, 5); }}) {
    net::Graph g = make();
    auto diam = diameter_classical(g);
    EXPECT_EQ(diam.value, g.diameter());
    auto rad = radius_classical(g);
    EXPECT_EQ(rad.value, g.radius());
  }
}

TEST(Eccentricity, QuantumDiameterSucceeds) {
  util::Rng rng(92);
  net::Graph g = net::random_connected_graph(24, 14, rng);
  int successes = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    auto result = diameter_quantum(g, rng);
    if (result.value == g.diameter()) ++successes;
    EXPECT_GT(result.cost.rounds, 0u);
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(Eccentricity, QuantumRadiusSucceeds) {
  util::Rng rng(93);
  net::Graph g = net::random_connected_graph(20, 12, rng);
  int successes = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    auto result = radius_quantum(g, rng);
    if (result.value == g.radius()) ++successes;
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(Eccentricity, EchoVariantAgreesWithConvergecastVariant) {
  // The paper's literal "each queried node computes its eccentricity"
  // strategy (Lemma 20 echo) and the framework-assembled strategy must
  // both return the diameter, at comparable cost.
  util::Rng rng(193);
  net::Graph g = net::random_connected_graph(22, 14, rng);
  int hits = 0;
  const int trials = 8;
  std::size_t echo_rounds = 0, conv_rounds = 0;
  for (int t = 0; t < trials; ++t) {
    auto echo = diameter_quantum_echo(g, rng);
    auto conv = diameter_quantum(g, rng);
    if (echo.value == g.diameter()) ++hits;
    echo_rounds += echo.cost.rounds;
    conv_rounds += conv.cost.rounds;
  }
  EXPECT_GE(hits, 2 * trials / 3);
  // Same asymptotics: within a small constant factor of each other.
  EXPECT_LT(echo_rounds, 4 * conv_rounds);
  EXPECT_LT(conv_rounds, 4 * echo_rounds);
}

TEST(Eccentricity, QuantumCheaperThanClassicalOnLowDiameter) {
  // Lemma 21: sqrt(n D) << n when D << n. A two-star graph has D = 3.
  util::Rng rng(94);
  net::Graph g = net::two_stars_graph(30, 30, 1);
  auto classical = diameter_classical(g);
  auto quantum = diameter_quantum(g, rng);
  EXPECT_EQ(classical.value, g.diameter());
  EXPECT_LT(quantum.cost.rounds, classical.cost.rounds);
}

TEST(Eccentricity, DisconnectedRejected) {
  util::Rng rng(95);
  net::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(diameter_quantum(g, rng), std::invalid_argument);
  EXPECT_THROW(diameter_classical(g), std::invalid_argument);
}

TEST(AverageEccentricity, EstimateWithinEpsilon) {
  util::Rng rng(96);
  net::Graph g = net::cycle_graph(20);  // all eccentricities equal 10
  auto result = average_eccentricity_quantum(g, 0.5, rng);
  EXPECT_NEAR(result.estimate, 10.0, 0.5);
  EXPECT_GT(result.cost.rounds, 0u);

  net::Graph p = net::path_graph(15);
  int within = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    auto r = average_eccentricity_quantum(p, 1.0, rng);
    if (std::abs(r.estimate - p.average_eccentricity()) <= 1.0) ++within;
  }
  EXPECT_GE(within, 2 * trials / 3);
}

TEST(AverageEccentricity, ClassicalBaselineExact) {
  for (auto make : {+[] { return net::path_graph(12); },
                    +[] { return net::grid_graph(4, 4); },
                    +[] { return net::cycle_graph(9); }}) {
    net::Graph g = make();
    auto result = average_eccentricity_classical(g);
    EXPECT_NEAR(result.estimate, g.average_eccentricity(), 1e-12);
    EXPECT_GE(result.cost.rounds, g.num_nodes() / 2);
  }
}

TEST(AverageEccentricity, SmallerEpsilonCostsMore) {
  util::Rng rng(97);
  net::Graph g = net::path_graph(20);
  auto coarse = average_eccentricity_quantum(g, 4.0, rng);
  auto fine = average_eccentricity_quantum(g, 0.5, rng);
  EXPECT_GT(fine.cost.rounds, coarse.cost.rounds);
  EXPECT_THROW(average_eccentricity_quantum(g, 0.0, rng), std::invalid_argument);
}

TEST(CycleBfs, CandidatesRecoverGirth) {
  util::Rng rng(98);
  for (auto make : {+[] { return net::cycle_graph(9); },
                    +[] { return net::petersen_graph(); },
                    +[] { return net::grid_graph(4, 4); }}) {
    net::Graph g = make();
    net::Engine engine(g, 1, 5);
    std::vector<bool> active(g.num_nodes(), true);
    std::vector<net::NodeId> sources(g.num_nodes());
    for (net::NodeId v = 0; v < g.num_nodes(); ++v) sources[v] = v;
    auto result = cycle_bfs(engine, sources, active, g.num_nodes());
    std::int64_t best = kNoCycle;
    for (auto c : result.candidate) best = std::min(best, c);
    EXPECT_EQ(static_cast<std::size_t>(best), *g.girth());
  }
}

TEST(CycleBfs, ForestHasNoCandidates) {
  net::Graph g = net::binary_tree(15);
  net::Engine engine(g, 1, 6);
  std::vector<bool> active(15, true);
  std::vector<net::NodeId> sources(15);
  for (net::NodeId v = 0; v < 15; ++v) sources[v] = v;
  auto result = cycle_bfs(engine, sources, active, 15);
  for (auto c : result.candidate) EXPECT_EQ(c, kNoCycle);
}

TEST(PerSourceCandidates, Stage1RecoversGirthOnCycleGraphs) {
  // On a cycle every vertex lies on the unique shortest cycle: BFS from any
  // vertex meets itself at exactly the cycle length.
  for (std::size_t n : {5u, 8u, 11u}) {
    net::Graph g = net::cycle_graph(n);
    net::Engine engine(g, 1, 3);
    std::vector<net::NodeId> queries{0, n / 2};
    auto result = per_source_cycle_candidates(engine, queries, n, false);
    for (std::size_t slot = 0; slot < queries.size(); ++slot) {
      std::int64_t best = kNoCycle;
      for (net::NodeId v = 0; v < g.num_nodes(); ++v) {
        best = std::min(best, result.candidate[v][slot]);
      }
      EXPECT_EQ(best, static_cast<std::int64_t>(n)) << "n=" << n;
    }
  }
}

TEST(PerSourceCandidates, CandidatesNeverBelowGirth) {
  util::Rng rng(104);
  net::Graph g = net::random_connected_graph(40, 40, rng);
  auto girth = g.girth();
  ASSERT_TRUE(girth.has_value());
  net::Engine engine(g, 1, 4);
  std::vector<net::NodeId> queries{1, 7, 20, 33};
  for (bool stage2 : {false, true}) {
    auto result = per_source_cycle_candidates(engine, queries, 12, stage2);
    for (net::NodeId v = 0; v < g.num_nodes(); ++v) {
      for (std::size_t slot = 0; slot < queries.size(); ++slot) {
        std::int64_t c = result.candidate[v][slot];
        if (c < kNoCycle) {
          EXPECT_GE(c, static_cast<std::int64_t>(*girth));
        }
      }
    }
  }
}

TEST(PerSourceCandidates, Stage2CrossBranchWitnessesCyclesThroughS) {
  // Two triangles sharing vertex 0: on G \ {0} no cycle survives, but the
  // cross-branch meetings between 0's neighbor-BFSs still witness the
  // triangles *through* 0 (length d + d' + 2) — exactly length 3 here.
  net::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  net::Engine engine(g, 1, 5);
  std::vector<net::NodeId> queries{0};
  auto stage2 = per_source_cycle_candidates(engine, queries, 6, true);
  std::int64_t best2 = kNoCycle;
  for (net::NodeId v = 0; v < 5; ++v) best2 = std::min(best2, stage2.candidate[v][0]);
  EXPECT_EQ(best2, 3);
  // Stage 1 from s = 0 sees the triangles too.
  auto stage1 = per_source_cycle_candidates(engine, queries, 6, false);
  std::int64_t best1 = kNoCycle;
  for (net::NodeId v = 0; v < 5; ++v) best1 = std::min(best1, stage1.candidate[v][0]);
  EXPECT_EQ(best1, 3);
}

TEST(PerSourceCandidates, ForestsProduceNoCandidates) {
  net::Graph g = net::star_graph(8);
  net::Engine engine(g, 1, 8);
  std::vector<net::NodeId> queries{0, 3};
  for (bool stage2 : {false, true}) {
    auto result = per_source_cycle_candidates(engine, queries, 8, stage2);
    for (net::NodeId v = 0; v < g.num_nodes(); ++v) {
      for (std::size_t slot = 0; slot < queries.size(); ++slot) {
        EXPECT_EQ(result.candidate[v][slot], kNoCycle);
      }
    }
  }
}

TEST(PerSourceCandidates, Stage2SeesCyclesThroughNeighbors) {
  // Triangle 1-2-3 with s = 0 attached to 1: stage 2 for s = 0 BFSes from
  // node 1 on G \ {0} and finds the triangle.
  net::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  net::Engine engine(g, 1, 6);
  std::vector<net::NodeId> queries{0};
  auto stage2 = per_source_cycle_candidates(engine, queries, 6, true);
  std::int64_t best = kNoCycle;
  for (net::NodeId v = 0; v < 4; ++v) best = std::min(best, stage2.candidate[v][0]);
  EXPECT_EQ(best, 3);
}

TEST(PerSourceCandidates, AggregatedMinMatchesCentralizedReplica) {
  // min(stage1, stage2) aggregated over all nodes must coincide with the
  // centralized two-stage value on vertex-transitive-ish fixtures.
  net::Graph g = net::petersen_graph();
  net::Engine engine(g, 1, 7);
  std::vector<net::NodeId> queries{0, 3, 7};
  auto s1 = per_source_cycle_candidates(engine, queries, 6, false);
  auto s2 = per_source_cycle_candidates(engine, queries, 6, true);
  for (std::size_t slot = 0; slot < queries.size(); ++slot) {
    std::int64_t best = kNoCycle;
    for (net::NodeId v = 0; v < g.num_nodes(); ++v) {
      best = std::min({best, s1.candidate[v][slot], s2.candidate[v][slot]});
    }
    EXPECT_EQ(best, 5);  // every vertex of Petersen is on a 5-cycle
  }
}

TEST(LightCycles, RespectsDegreeThreshold) {
  // Lollipop: the only cycles pass through high-degree clique nodes, so a
  // low threshold sees nothing while a high threshold finds the triangle.
  net::Graph g = net::lollipop_graph(6, 8);
  auto low = light_cycle_detection(g, 5, 2);
  EXPECT_FALSE(low.cycle_length.has_value());
  auto high = light_cycle_detection(g, 5, 10);
  ASSERT_TRUE(high.cycle_length.has_value());
  EXPECT_EQ(*high.cycle_length, 3u);
}

TEST(CycleDetection, FindsShortCyclesExactly) {
  util::Rng rng(99);
  struct Case {
    net::Graph graph;
    std::size_t k;
    std::optional<std::size_t> expected;
  };
  std::vector<Case> cases;
  cases.push_back({net::cycle_with_trees(4, 30, rng), 6, 4});
  cases.push_back({net::petersen_graph(), 5, 5});
  cases.push_back({net::grid_graph(4, 5), 4, 4});
  cases.push_back({net::binary_tree(20), 6, std::nullopt});
  cases.push_back({net::cycle_graph(12), 5, std::nullopt});  // girth 12 > 5

  for (auto& c : cases) {
    int agree = 0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
      auto result = cycle_detection(c.graph, c.k, rng);
      if (result.cycle_length == c.expected) ++agree;
      // One-sided: a reported cycle is never shorter than the girth.
      if (result.cycle_length) {
        EXPECT_GE(*result.cycle_length, *c.graph.girth());
      }
    }
    EXPECT_GE(agree, 2 * trials / 3);
  }
}

TEST(CycleDetection, ClusteredVariantAgrees) {
  util::Rng rng(100);
  net::Graph g = net::cycle_with_trees(4, 40, rng);
  int agree = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    auto result = cycle_detection_clustered(g, 6, rng);
    if (result.cycle_length == std::optional<std::size_t>(4)) ++agree;
    EXPECT_GT(result.charged_rounds, 0u);
  }
  EXPECT_GE(agree, 2 * trials / 3);
}

TEST(CycleDetection, BetaFormulaInRange) {
  double beta = cycle_beta(1000, 10, 6);
  EXPECT_GT(beta, 0.0);
  EXPECT_LT(beta, 1.0);
  // Larger k -> smaller beta (light stage must stay cheap).
  EXPECT_LT(cycle_beta(1000, 10, 12), cycle_beta(1000, 10, 4));
}

TEST(Girth, QuantumComputesGirthOnKnownGraphs) {
  util::Rng rng(101);
  struct Case {
    net::Graph graph;
    std::optional<std::size_t> expected;
  };
  std::vector<Case> cases;
  cases.push_back({net::petersen_graph(), 5});
  cases.push_back({net::cycle_with_trees(7, 30, rng), 7});
  cases.push_back({net::complete_graph(8), 3});
  cases.push_back({net::binary_tree(12), std::nullopt});

  for (auto& c : cases) {
    int agree = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      auto result = girth_quantum(c.graph, 0.5, rng);
      if (result.girth == c.expected) ++agree;
    }
    EXPECT_GE(agree, 2 * trials / 3) << "girth case";
  }
}

TEST(BoostedApps, DiameterAndRadiusNearCertain) {
  util::Rng rng(111);
  net::Graph g = net::random_connected_graph(22, 12, rng);
  int trials = 10, diam_hits = 0, rad_hits = 0;
  for (int t = 0; t < trials; ++t) {
    if (diameter_quantum_boosted(g, 0.01, rng).value == g.diameter()) ++diam_hits;
    if (radius_quantum_boosted(g, 0.01, rng).value == g.radius()) ++rad_hits;
  }
  EXPECT_GE(diam_hits, trials - 1);
  EXPECT_GE(rad_hits, trials - 1);
  EXPECT_THROW(diameter_quantum_boosted(g, 0.0, rng), std::invalid_argument);
}

TEST(BoostedApps, GirthNearCertainAndOneSided) {
  util::Rng rng(112);
  net::Graph g = net::cycle_with_trees(5, 30, rng);
  int trials = 8, hits = 0;
  for (int t = 0; t < trials; ++t) {
    auto result = girth_quantum_boosted(g, 0.5, 0.02, rng);
    ASSERT_TRUE(result.girth.has_value());
    EXPECT_GE(*result.girth, 5u);
    if (*result.girth == 5u) ++hits;
  }
  EXPECT_GE(hits, trials - 1);
  // Forests still come up empty under boosting.
  EXPECT_FALSE(
      girth_quantum_boosted(net::binary_tree(10), 0.5, 0.1, rng).girth.has_value());
}

TEST(Girth, ClassicalBaselineExact) {
  util::Rng rng(102);
  for (auto make : {+[] { return net::petersen_graph(); },
                    +[] { return net::grid_graph(3, 4); },
                    +[] { return net::cycle_graph(9); }}) {
    net::Graph g = make();
    auto result = girth_classical(g);
    EXPECT_EQ(result.girth, g.girth());
  }
  EXPECT_FALSE(girth_classical(net::path_graph(10)).girth.has_value());
}

TEST(Girth, HeavyCycleGraphs) {
  // Graphs whose short cycles pass through high-degree vertices exercise
  // the heavy stage: the clique of a lollipop and the caveman communities.
  util::Rng rng(104);
  net::Graph lollipop = net::lollipop_graph(7, 6);
  int hits = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    auto result = girth_quantum(lollipop, 0.5, rng);
    if (result.girth == std::optional<std::size_t>(3)) ++hits;
  }
  EXPECT_GE(hits, 2 * trials / 3);

  net::Graph caveman = net::caveman_graph(3, 5);
  auto result = girth_quantum_boosted(caveman, 0.5, 0.05, rng);
  EXPECT_EQ(result.girth, std::optional<std::size_t>(3));
}

TEST(Girth, ParameterValidation) {
  util::Rng rng(103);
  net::Graph g = net::cycle_graph(5);
  EXPECT_THROW(girth_quantum(g, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(girth_quantum(g, 1.5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace qcongest::apps
