// Property-based sweeps over the CONGEST layer: protocol invariants that
// must hold on every topology, seed, and payload shape.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "src/net/bfs.hpp"
#include "src/net/clustering.hpp"
#include "src/net/generators.hpp"
#include "src/net/multi_bfs.hpp"
#include "src/net/pipeline.hpp"

namespace qcongest::net {
namespace {

/// Topology family index -> generated graph.
Graph make_graph(int family, std::size_t n, util::Rng& rng) {
  switch (family) {
    case 0:
      return path_graph(n);
    case 1:
      return cycle_graph(std::max<std::size_t>(n, 3));
    case 2:
      return star_graph(std::max<std::size_t>(n, 2));
    case 3:
      return binary_tree(n);
    case 4:
      return grid_graph(std::max<std::size_t>(n / 6, 2), 6);
    default:
      return random_connected_graph(n, n / 2 + 1, rng);
  }
}

class TopologySweep : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {
 protected:
  Graph graph() {
    auto [family, n] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(family) * 1000 + n);
    return make_graph(family, n, rng);
  }
};

TEST_P(TopologySweep, LeaderElectionAgreesAndIsFast) {
  Graph g = graph();
  Engine engine(g);
  auto result = elect_leader(engine);
  EXPECT_EQ(result.leader, g.num_nodes() - 1);
  EXPECT_TRUE(result.cost.completed);
  EXPECT_LE(result.cost.rounds, 2 * g.diameter() + 2);
}

TEST_P(TopologySweep, BfsTreeMatchesGroundTruthEverywhere) {
  Graph g = graph();
  Engine engine(g);
  for (NodeId root : {NodeId{0}, g.num_nodes() / 2, g.num_nodes() - 1}) {
    BfsTree tree = build_bfs_tree(engine, root);
    auto truth = g.bfs_distances(root);
    std::size_t total_children = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(tree.depth[v], truth[v]);
      total_children += tree.children[v].size();
    }
    // The children lists form a spanning tree: n - 1 edges.
    EXPECT_EQ(total_children, g.num_nodes() - 1);
    EXPECT_LE(tree.cost.rounds, g.diameter() + 2);
  }
}

TEST_P(TopologySweep, DowncastDeliversToEveryNodeWithinBound) {
  Graph g = graph();
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);
  std::vector<std::int64_t> payload{1, -2, 3, -4, 5, -6, 7};
  auto result = pipelined_downcast(engine, tree, payload, true);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(result.received[v], payload);
  if (g.num_nodes() > 1) {
    EXPECT_EQ(result.cost.rounds, tree.height + payload.size() - 1);
  }
}

TEST_P(TopologySweep, ConvergecastComputesSemigroupAggregates) {
  Graph g = graph();
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, g.num_nodes() - 1);
  const std::size_t items = 5;
  util::Rng rng(99);

  struct Semigroup {
    CombineOp op;
    std::int64_t identity;
  };
  std::vector<Semigroup> semigroups{
      {[](std::int64_t a, std::int64_t b) { return a + b; }, 0},
      {[](std::int64_t a, std::int64_t b) { return std::max(a, b); },
       std::numeric_limits<std::int64_t>::min()},
      {[](std::int64_t a, std::int64_t b) { return std::min(a, b); },
       std::numeric_limits<std::int64_t>::max()},
      {[](std::int64_t a, std::int64_t b) { return a ^ b; }, 0},
  };

  std::vector<std::vector<std::int64_t>> values(g.num_nodes(),
                                                std::vector<std::int64_t>(items));
  for (auto& row : values) {
    for (auto& v : row) v = rng.uniform_int(-1000, 1000);
  }
  for (const auto& sg : semigroups) {
    auto result = pipelined_convergecast(engine, tree, values, 1, sg.op, false);
    for (std::size_t i = 0; i < items; ++i) {
      std::int64_t expected = sg.identity;
      for (NodeId v = 0; v < g.num_nodes(); ++v) expected = sg.op(expected, values[v][i]);
      EXPECT_EQ(result.totals[i], expected);
    }
  }
}

TEST_P(TopologySweep, MultiBfsMatchesGroundTruthForRandomSources) {
  Graph g = graph();
  Engine engine(g);
  util::Rng rng(g.num_nodes());
  auto source_picks = rng.sample_without_replacement(
      g.num_nodes(), std::min<std::size_t>(g.num_nodes(), 5));
  std::vector<NodeId> sources(source_picks.begin(), source_picks.end());
  auto result = multi_source_bfs(engine, sources, g.num_nodes());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto truth = g.bfs_distances(sources[i]);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(result.dist[v][i], truth[v]);
    }
  }
  EXPECT_LE(result.cost.rounds, 4 * (sources.size() + g.diameter()) + 8);
}

TEST_P(TopologySweep, ClusteringPropertiesHold) {
  Graph g = graph();
  util::Rng rng(g.num_nodes() + 7);
  for (std::size_t d : {2u, 5u}) {
    Clustering clustering = cluster_graph(g, d, rng);
    EXPECT_NO_THROW(validate_clustering(g, clustering, d));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopologySweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                                            ::testing::Values(8u, 30u, 61u)));

class BandwidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BandwidthSweep, CongestBReducesPipelineRoundsProportionally) {
  std::size_t bandwidth = GetParam();
  Graph g = path_graph(12);
  Engine narrow(g, 1, 1);
  Engine wide(g, bandwidth, 1);
  BfsTree tree_narrow = build_bfs_tree(narrow, 0);
  BfsTree tree_wide = build_bfs_tree(wide, 0);
  std::vector<std::int64_t> payload(32, 1);
  auto r_narrow = pipelined_downcast(narrow, tree_narrow, payload, true);
  auto r_wide = pipelined_downcast(wide, tree_wide, payload, true);
  EXPECT_LE(r_wide.cost.rounds, r_narrow.cost.rounds);
  // height + ceil(L / B) - 1 in CONGEST(B).
  EXPECT_EQ(r_wide.cost.rounds,
            tree_wide.height + (payload.size() + bandwidth - 1) / bandwidth - 1);
  EXPECT_LE(r_wide.cost.max_edge_words, bandwidth);
  // Same content delivered either way.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(r_wide.received[v], payload);
  }
}

TEST_P(BandwidthSweep, ConvergecastBenefitsFromBandwidth) {
  std::size_t bandwidth = GetParam();
  Graph g = path_graph(10);
  Engine narrow(g, 1, 1);
  Engine wide(g, bandwidth, 1);
  BfsTree tn = build_bfs_tree(narrow, 0);
  BfsTree tw = build_bfs_tree(wide, 0);
  std::vector<std::vector<std::int64_t>> values(10, std::vector<std::int64_t>(16, 1));
  auto op = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto rn = pipelined_convergecast(narrow, tn, values, 1, op, true);
  auto rw = pipelined_convergecast(wide, tw, values, 1, op, true);
  EXPECT_EQ(rn.totals, rw.totals);
  EXPECT_LE(rw.cost.rounds, rn.cost.rounds);
  if (bandwidth >= 4) {
    EXPECT_LT(2 * rw.cost.rounds, 3 * rn.cost.rounds);
  }
}

TEST_P(BandwidthSweep, MultiBfsStillCorrectUnderCongestB) {
  std::size_t bandwidth = GetParam();
  util::Rng rng(bandwidth);
  Graph g = random_connected_graph(25, 20, rng);
  Engine engine(g, bandwidth, 1);
  std::vector<NodeId> sources{0, 7, 13, 24};
  auto result = multi_source_bfs(engine, sources, g.num_nodes());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto truth = g.bfs_distances(sources[i]);
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(result.dist[v][i], truth[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BandwidthSweep, ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace qcongest::net
