#include <gtest/gtest.h>

#include <cmath>

#include "src/net/bfs.hpp"
#include "src/net/generators.hpp"
#include "src/quantum/sparse_statevector.hpp"
#include "src/quantum/statevector.hpp"

namespace qcongest::quantum {
namespace {

constexpr double kTol = 1e-10;

TEST(SparseStatevector, MatchesDenseOnRandomGateSequences) {
  util::Rng rng(1);
  const unsigned width = 6;
  for (int trial = 0; trial < 10; ++trial) {
    Statevector dense(width);
    SparseStatevector sparse(width);
    for (int op = 0; op < 40; ++op) {
      unsigned q = static_cast<unsigned>(rng.index(width));
      switch (rng.index(4)) {
        case 0:
          dense.h(q);
          sparse.h(q);
          break;
        case 1: {
          Gate1 g = gates::rz(rng.uniform(-2.0, 2.0));
          dense.apply(g, q);
          sparse.apply(g, q);
          break;
        }
        case 2: {
          unsigned c = static_cast<unsigned>(rng.index(width));
          if (c != q) {
            dense.cnot(c, q);
            sparse.cnot(c, q);
          }
          break;
        }
        default:
          dense.x(q);
          sparse.x(q);
          break;
      }
    }
    for (BasisState b = 0; b < dense.dimension(); ++b) {
      EXPECT_NEAR(std::abs(dense.amplitude(b) - sparse.amplitude(b)), 0.0, 1e-8);
    }
  }
}

TEST(SparseStatevector, SupportStaysSmallForBasisCircuits) {
  // 50 qubits, CNOT/X circuits: support stays 1.
  SparseStatevector state(50, 1);
  for (unsigned q = 0; q + 1 < 50; ++q) state.cnot(q, q + 1);
  EXPECT_EQ(state.support_size(), 1u);
  EXPECT_NEAR(state.norm(), 1.0, kTol);
  // All qubits flipped on by the CNOT chain.
  BasisState all_ones = (BasisState{1} << 50) - 1;
  EXPECT_NEAR(std::abs(state.amplitude(all_ones)), 1.0, kTol);
}

TEST(SparseStatevector, Lemma7FanOutAcrossBfsTree) {
  // State-level validation of Lemma 7: a 3-qubit leader register in
  // superposition over 8 values, fanned out along a BFS tree of 12 nodes
  // (36 qubits total) yields sum_i alpha_i |i>^{otimes 12} with support 8,
  // and the reverse circuit returns the state to the leader exactly.
  util::Rng rng(2);
  net::Graph g = net::random_connected_graph(12, 8, rng);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);

  const unsigned q = 3;
  const unsigned n = 12;
  SparseStatevector state(q * n);
  // Leader register (node 0's qubits [0, q)): arbitrary superposition via
  // H and phase gates.
  for (unsigned b = 0; b < q; ++b) state.h(b);
  state.apply_diagonal([](BasisState basis) {
    return std::polar(1.0, 0.21 * static_cast<double>(basis & 0b111));
  });
  SparseStatevector leader_only = state;

  // Fan out parent -> child along tree edges in depth order (the schedule
  // Lemma 7 pipelines; here we validate the state, not the rounds).
  std::vector<net::NodeId> order(n);
  for (net::NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](net::NodeId a, net::NodeId b) {
    return tree.depth[a] < tree.depth[b];
  });
  for (net::NodeId v : order) {
    if (v == tree.root) continue;
    fan_out_register(state, static_cast<unsigned>(tree.parent[v]) * q,
                     static_cast<unsigned>(v) * q, q);
  }

  // Support is still 2^q = 8 and every branch is a perfect n-fold copy.
  EXPECT_EQ(state.support_size(), 8u);
  for (BasisState i = 0; i < 8; ++i) {
    BasisState replicated = 0;
    for (unsigned v = 0; v < n; ++v) replicated |= i << (v * q);
    EXPECT_NEAR(std::abs(state.amplitude(replicated) - leader_only.amplitude(i)),
                0.0, kTol)
        << i;
  }
  EXPECT_NEAR(state.norm(), 1.0, kTol);

  // Reverse (undistribute): children uncomputed in reverse order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (*it == tree.root) continue;
    fan_out_register(state, static_cast<unsigned>(tree.parent[*it]) * q,
                     static_cast<unsigned>(*it) * q, q);
  }
  EXPECT_NEAR(state.fidelity(leader_only), 1.0, kTol);
}

TEST(SparseStatevector, DiagonalAndPermutationPreserveSupport) {
  SparseStatevector state(40);
  state.h(0);
  state.h(1);
  EXPECT_EQ(state.support_size(), 4u);
  state.apply_diagonal([](BasisState b) { return b % 2 ? Amplitude{-1, 0} : Amplitude{1, 0}; });
  EXPECT_EQ(state.support_size(), 4u);
  state.apply_permutation([](BasisState b) { return b ^ 0b100; });
  EXPECT_EQ(state.support_size(), 4u);
  EXPECT_NEAR(state.norm(), 1.0, kTol);
  EXPECT_THROW(state.apply_permutation([](BasisState) { return BasisState{7}; }),
               std::invalid_argument);
}

TEST(SparseStatevector, MeasurementStatistics) {
  util::Rng rng(3);
  int ones = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    SparseStatevector state(30);
    state.h(29);
    ones += static_cast<int>((state.measure_all(rng) >> 29) & 1);
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.05);
}

TEST(SparseStatevector, Validation) {
  EXPECT_THROW(SparseStatevector(0), std::invalid_argument);
  EXPECT_THROW(SparseStatevector(63), std::invalid_argument);
  EXPECT_THROW(SparseStatevector(2, 4), std::invalid_argument);
  SparseStatevector state(2);
  EXPECT_THROW(state.h(2), std::invalid_argument);
  EXPECT_THROW(fan_out_register(state, 0, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace qcongest::quantum
