#include <gtest/gtest.h>

#include <cmath>

#include "src/quantum/szegedy.hpp"
#include "src/util/combinatorics.hpp"
#include "src/util/rng.hpp"

namespace qcongest::quantum {
namespace {

double norm_of(const std::vector<Amplitude>& state) {
  double total = 0.0;
  for (const Amplitude& a : state) total += std::norm(a);
  return std::sqrt(total);
}

TEST(Szegedy, JohnsonTransitionMatrixIsDoublyStochastic) {
  for (auto [k, z] : {std::pair{5u, 2u}, {6u, 3u}, {7u, 2u}}) {
    auto p = johnson_transition_matrix(k, z);
    EXPECT_EQ(p.size(), util::binomial_exact(k, z));
    for (std::size_t x = 0; x < p.size(); ++x) {
      double row = 0.0;
      for (std::size_t y = 0; y < p.size(); ++y) {
        row += p[x][y];
        EXPECT_DOUBLE_EQ(p[x][y], p[y][x]);
      }
      EXPECT_NEAR(row, 1.0, 1e-12);
    }
  }
}

TEST(Szegedy, WalkOperatorIsUnitary) {
  util::Rng rng(1);
  SzegedyWalk walk(johnson_transition_matrix(6, 2));
  std::vector<Amplitude> state(walk.dimension());
  for (auto& a : state) a = Amplitude{rng.normal(), rng.normal()};
  double scale = 1.0 / norm_of(state);
  for (auto& a : state) a *= scale;
  for (int t = 0; t < 20; ++t) walk.apply(state);
  EXPECT_NEAR(norm_of(state), 1.0, 1e-9);
}

TEST(Szegedy, StationaryStateIsFixed) {
  SzegedyWalk walk(johnson_transition_matrix(6, 3));
  auto pi = walk.stationary_state();
  EXPECT_NEAR(norm_of(pi), 1.0, 1e-12);
  auto evolved = pi;
  walk.apply(evolved);
  double fidelity = 0.0;
  Amplitude overlap{0, 0};
  for (std::size_t i = 0; i < pi.size(); ++i) {
    overlap += std::conj(pi[i]) * evolved[i];
  }
  fidelity = std::norm(overlap);
  EXPECT_NEAR(fidelity, 1.0, 1e-12);
}

TEST(Szegedy, SearchAmplifiesMarkedSubsets) {
  // Lemma 5's schedule at gate level: one colliding pair among k = 8 values,
  // walk on J(8, 4). eps ~ (z/k)^2 ~ 0.21, delta ~ 1/z: a handful of outer
  // steps with ~sqrt(z) walk applications must lift the marked probability
  // from eps to a constant.
  const std::size_t k = 8, z = 4;
  std::vector<int> values{0, 1, 2, 3, 4, 5, 6, 0};  // one collision: {0, 7}
  double initial = johnson_walk_search_probability(k, z, values, 0, 0);
  // Stationary mass on marked vertices = exact marked fraction.
  double eps = static_cast<double>(z) * (z - 1) /
               (static_cast<double>(k) * (k - 1));
  EXPECT_NEAR(initial, eps, 1e-9);

  const std::size_t inner = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(z))));
  double best = 0.0;
  const auto outer_budget = static_cast<std::size_t>(
      std::ceil(2.0 / std::sqrt(eps)));
  for (std::size_t outer = 1; outer <= outer_budget; ++outer) {
    best = std::max(best,
                    johnson_walk_search_probability(k, z, values, outer, inner));
  }
  EXPECT_GE(best, 0.3);  // constant success within the charged schedule
}

TEST(Szegedy, NoCollisionNothingAmplifies) {
  const std::size_t k = 6, z = 3;
  std::vector<int> values{0, 1, 2, 3, 4, 5};
  for (std::size_t outer : {1u, 3u, 6u}) {
    EXPECT_DOUBLE_EQ(johnson_walk_search_probability(k, z, values, outer, 2), 0.0);
  }
}

TEST(Szegedy, DenserCollisionsAmplifyFaster) {
  const std::size_t k = 8, z = 4;
  std::vector<int> one_pair{0, 1, 2, 3, 4, 5, 6, 0};
  std::vector<int> many{0, 0, 1, 1, 2, 2, 3, 3};
  double p_one = johnson_walk_search_probability(k, z, one_pair, 1, 2);
  double p_many = johnson_walk_search_probability(k, z, many, 1, 2);
  EXPECT_GT(p_many, p_one);
}

TEST(Szegedy, EndToEndElementDistinctness) {
  util::Rng rng(7);
  std::vector<int> values{0, 1, 2, 3, 4, 5, 6, 0};  // collision {0, 7}
  int successes = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    auto pair = johnson_walk_element_distinctness(8, 4, values, 8, rng);
    if (pair) {
      EXPECT_EQ(values[pair->first], values[pair->second]);
      ++successes;
    }
  }
  EXPECT_GE(successes, 2 * trials / 3);
  // One-sided: distinct inputs never produce a pair.
  std::vector<int> distinct{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_FALSE(johnson_walk_element_distinctness(8, 4, distinct, 8, rng).has_value());
}

TEST(Szegedy, InputValidation) {
  EXPECT_THROW(SzegedyWalk({{0.5, 0.5}, {0.9, 0.1}}), std::invalid_argument);
  EXPECT_THROW(SzegedyWalk({{1.5, -0.5}, {-0.5, 1.5}}), std::invalid_argument);
  std::vector<int> wrong_size{1, 2};
  EXPECT_THROW(johnson_walk_search_probability(6, 2, wrong_size, 1, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace qcongest::quantum
