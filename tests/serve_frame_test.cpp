// Frame-level fuzzing of the qcongestd wire protocol: round-trips, split
// delivery, and the hardening contract — truncated, oversized, and
// bit-flipped frames must poison the parse with a structured error, never
// desynchronize, never leak state across reader instances (= connections).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/serve/frame.hpp"
#include "src/util/rng.hpp"

namespace qcongest::serve {
namespace {

Frame expect_frame(FrameReader& reader) {
  Frame frame;
  EXPECT_EQ(reader.next(&frame), FrameReader::Result::kFrame);
  return frame;
}

TEST(ServeFrame, RoundTripsPayloads) {
  FrameReader reader;
  const std::string payloads[] = {"", "x", std::string(1000, 'q'),
                                  std::string("\x00\xff\n binary \x07", 14)};
  for (const std::string& payload : payloads) {
    reader.feed(encode_frame(FrameType::kSubmit, payload));
  }
  for (const std::string& payload : payloads) {
    Frame frame = expect_frame(reader);
    EXPECT_EQ(frame.type, FrameType::kSubmit);
    EXPECT_EQ(frame.payload, payload);
  }
  Frame frame;
  EXPECT_EQ(reader.next(&frame), FrameReader::Result::kNeedMore);
  EXPECT_FALSE(reader.poisoned());
  EXPECT_EQ(reader.frames_parsed(), 4u);
}

TEST(ServeFrame, ParsesByteAtATime) {
  // TCP is a byte stream: frames must reassemble from any fragmentation.
  const std::string wire = encode_frame(FrameType::kPing, "liveness probe") +
                           encode_frame(FrameType::kShutdown, "");
  FrameReader reader;
  std::vector<Frame> frames;
  for (char byte : wire) {
    reader.feed(std::string_view(&byte, 1));
    Frame frame;
    while (reader.next(&frame) == FrameReader::Result::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kPing);
  EXPECT_EQ(frames[0].payload, "liveness probe");
  EXPECT_EQ(frames[1].type, FrameType::kShutdown);
  EXPECT_TRUE(frames[1].payload.empty());
}

TEST(ServeFrame, RejectsBadMagic) {
  std::string wire = encode_frame(FrameType::kSubmit, "id=j\napp=bfs\n");
  wire[0] ^= 0x40;
  FrameReader reader;
  reader.feed(wire);
  Frame frame;
  EXPECT_EQ(reader.next(&frame), FrameReader::Result::kError);
  EXPECT_TRUE(reader.poisoned());
  EXPECT_NE(reader.error().find("magic"), std::string::npos) << reader.error();
}

TEST(ServeFrame, RejectsBadVersion) {
  std::string wire = encode_frame(FrameType::kSubmit, "x");
  wire[2] = 99;
  FrameReader reader;
  reader.feed(wire);
  Frame frame;
  EXPECT_EQ(reader.next(&frame), FrameReader::Result::kError);
  EXPECT_NE(reader.error().find("version"), std::string::npos) << reader.error();
}

TEST(ServeFrame, RejectsUnknownType) {
  std::string wire = encode_frame(FrameType::kSubmit, "x");
  wire[3] = 0;  // below every known type
  FrameReader reader;
  reader.feed(wire);
  Frame frame;
  EXPECT_EQ(reader.next(&frame), FrameReader::Result::kError);
  EXPECT_NE(reader.error().find("type"), std::string::npos) << reader.error();

  std::string wire2 = encode_frame(FrameType::kSubmit, "x");
  wire2[3] = static_cast<char>(200);
  FrameReader reader2;
  reader2.feed(wire2);
  EXPECT_EQ(reader2.next(&frame), FrameReader::Result::kError);
}

TEST(ServeFrame, RejectsOversizedLengthFromHeaderAlone) {
  // An oversized length must be rejected from the 8 header bytes, before
  // any payload is buffered — the peer cannot make the server allocate.
  FrameReader reader(/*max_payload=*/1024);
  std::string header = encode_frame(FrameType::kSubmit, "");
  header[4] = '\xff';  // length = huge (little-endian u32)
  header[5] = '\xff';
  header[6] = '\xff';
  header[7] = '\x0f';
  reader.feed(header);
  Frame frame;
  EXPECT_EQ(reader.next(&frame), FrameReader::Result::kError);
  EXPECT_NE(reader.error().find("oversized"), std::string::npos)
      << reader.error();
}

TEST(ServeFrame, PayloadAtTheCapIsAccepted) {
  FrameReader reader(/*max_payload=*/64);
  reader.feed(encode_frame(FrameType::kSubmit, std::string(64, 'a')));
  Frame frame = expect_frame(reader);
  EXPECT_EQ(frame.payload.size(), 64u);

  FrameReader reader2(/*max_payload=*/64);
  reader2.feed(encode_frame(FrameType::kSubmit, std::string(65, 'a')));
  EXPECT_EQ(reader2.next(&frame), FrameReader::Result::kError);
}

TEST(ServeFrame, TruncationIsAnErrorOnlyAtEndOfStream) {
  const std::string wire = encode_frame(FrameType::kSubmit, "0123456789");
  // Cut everywhere: mid-header and mid-payload. While the stream is open a
  // partial frame is just kNeedMore; once it ends, it is a truncation error
  // — but a cut on a clean frame boundary is a clean close.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameReader reader;
    reader.feed(std::string_view(wire).substr(0, cut));
    Frame frame;
    EXPECT_EQ(reader.next(&frame), FrameReader::Result::kNeedMore)
        << "cut=" << cut;
    reader.finish();
    if (cut == 0) {
      EXPECT_EQ(reader.next(&frame), FrameReader::Result::kNeedMore);
      EXPECT_FALSE(reader.poisoned());
    } else {
      EXPECT_EQ(reader.next(&frame), FrameReader::Result::kError)
          << "cut=" << cut;
      EXPECT_NE(reader.error().find("truncated"), std::string::npos)
          << reader.error();
    }
  }
}

TEST(ServeFrame, PoisonIsPermanent) {
  FrameReader reader;
  std::string bad = encode_frame(FrameType::kPing, "x");
  bad[0] = 0;
  reader.feed(bad);
  Frame frame;
  EXPECT_EQ(reader.next(&frame), FrameReader::Result::kError);
  // Even a pristine frame afterwards must not resurrect the stream: there
  // is no trustworthy resynchronization point after a framing error.
  reader.feed(encode_frame(FrameType::kPing, "clean"));
  EXPECT_EQ(reader.next(&frame), FrameReader::Result::kError);
  EXPECT_EQ(reader.frames_parsed(), 0u);
}

TEST(ServeFrame, BitFlipFuzz) {
  // Flip every bit of the header and a sample of payload bits, one at a
  // time. The reader must always terminate with either a clean parse or a
  // structured error — never crash, hang, or mis-frame the *second* frame
  // when the flip lands in the first frame's payload bytes.
  const std::string first = encode_frame(FrameType::kSubmit, "id=a\napp=bfs\n");
  const std::string second = encode_frame(FrameType::kPing, "tail");
  const std::string wire = first + second;
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::string fuzzed = wire;
    fuzzed[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    FrameReader reader;
    reader.feed(fuzzed);
    reader.finish();
    Frame frame;
    std::size_t parsed = 0;
    FrameReader::Result result;
    while ((result = reader.next(&frame)) == FrameReader::Result::kFrame) {
      ++parsed;
      ASSERT_LE(parsed, 2u) << "reader invented frames at bit " << bit;
    }
    if (result == FrameReader::Result::kError) {
      EXPECT_FALSE(reader.error().empty()) << "bit " << bit;
    } else {
      // A flip confined to payload bytes parses fine — both frames intact.
      EXPECT_EQ(parsed, 2u) << "bit " << bit;
    }
  }
}

TEST(ServeFrame, RandomGarbageNeverParsesQuietly) {
  // Seeded garbage streams: the reader must reject (or keep waiting on) all
  // of them without ever producing a frame with the valid magic absent.
  util::Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const std::size_t len = 1 + rng.index(64);
    garbage.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.index(256)));
    }
    FrameReader reader;
    reader.feed(garbage);
    reader.finish();
    Frame frame;
    std::size_t parsed = 0;
    while (reader.next(&frame) == FrameReader::Result::kFrame) {
      ++parsed;
      // Parsing garbage as a frame is only legitimate if the garbage
      // really was a well-formed frame; spot-check the invariants.
      EXPECT_TRUE(frame_type_known(static_cast<std::uint8_t>(frame.type)));
      ASSERT_LE(parsed, 8u);
    }
  }
}

TEST(ServeFrame, OneByteFeedsMatchBulkFeedsOnFuzzedStreams) {
  // The reactor reads whatever the kernel hands it — one byte, a half
  // header, three frames at once. The incremental parser must be a pure
  // function of the byte stream: seeded random frame sequences (sometimes
  // with a corrupted byte) parsed byte-at-a-time must agree exactly with
  // the same stream parsed in one bulk feed — same frames, same payloads,
  // same error, same counters.
  util::Rng rng(20260808);
  const FrameType types[] = {FrameType::kSubmit, FrameType::kPing,
                             FrameType::kShutdown};
  for (int trial = 0; trial < 100; ++trial) {
    std::string wire;
    const std::size_t frames = 1 + rng.index(4);
    for (std::size_t f = 0; f < frames; ++f) {
      std::string payload;
      const std::size_t len = rng.index(96);
      for (std::size_t i = 0; i < len; ++i) {
        payload.push_back(static_cast<char>(rng.index(256)));
      }
      wire += encode_frame(types[rng.index(3)], payload);
    }
    if (trial % 3 == 0) {
      wire[rng.index(wire.size())] ^= static_cast<char>(1 + rng.index(255));
    }

    FrameReader bulk;
    bulk.feed(wire);
    std::vector<Frame> bulk_frames;
    Frame frame;
    FrameReader::Result bulk_end;
    while ((bulk_end = bulk.next(&frame)) == FrameReader::Result::kFrame) {
      bulk_frames.push_back(frame);
    }

    FrameReader dribble;
    std::vector<Frame> dribble_frames;
    FrameReader::Result dribble_end = FrameReader::Result::kNeedMore;
    for (char byte : wire) {
      dribble.feed(std::string_view(&byte, 1));
      while ((dribble_end = dribble.next(&frame)) ==
             FrameReader::Result::kFrame) {
        dribble_frames.push_back(frame);
      }
    }

    ASSERT_EQ(dribble_frames.size(), bulk_frames.size()) << "trial " << trial;
    for (std::size_t i = 0; i < bulk_frames.size(); ++i) {
      EXPECT_EQ(dribble_frames[i].type, bulk_frames[i].type);
      EXPECT_EQ(dribble_frames[i].payload, bulk_frames[i].payload);
    }
    EXPECT_EQ(dribble_end, bulk_end) << "trial " << trial;
    EXPECT_EQ(dribble.poisoned(), bulk.poisoned()) << "trial " << trial;
    EXPECT_EQ(dribble.error(), bulk.error()) << "trial " << trial;
    EXPECT_EQ(dribble.frames_parsed(), bulk.frames_parsed());
  }
}

TEST(ServeFrame, NoStateLeaksAcrossReaders) {
  // One reader poisoned mid-frame must not affect a sibling (each
  // connection owns its own reader — this pins the "no cross-tenant
  // leakage" half of the contract at the unit level).
  FrameReader poisoned;
  std::string bad = encode_frame(FrameType::kSubmit, "secret-tenant-a");
  bad[1] ^= 0x7f;
  poisoned.feed(bad);
  Frame frame;
  EXPECT_EQ(poisoned.next(&frame), FrameReader::Result::kError);

  FrameReader clean;
  clean.feed(encode_frame(FrameType::kSubmit, "tenant-b"));
  frame = expect_frame(clean);
  EXPECT_EQ(frame.payload, "tenant-b");
  EXPECT_FALSE(clean.poisoned());
  EXPECT_TRUE(clean.error().empty());
}

}  // namespace
}  // namespace qcongest::serve
