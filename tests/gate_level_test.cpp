#include <gtest/gtest.h>

#include <cmath>

#include "src/query/deutsch_jozsa.hpp"
#include "src/query/gate_level.hpp"
#include "src/query/oracle.hpp"
#include "src/query/parallel_minfind.hpp"
#include "src/query/grover_math.hpp"
#include "src/quantum/statevector.hpp"

namespace qcongest::query {
namespace {

using quantum::BasisState;
using quantum::Circuit;

TEST(PhaseFlip, FlipsExactlyMarkedStates) {
  quantum::Statevector sv(3);
  sv.h_all();
  phase_flip_circuit(3, {2, 5}).apply_to(sv);
  for (BasisState b = 0; b < 8; ++b) {
    double expected = (b == 2 || b == 5) ? -1.0 : 1.0;
    EXPECT_NEAR(sv.amplitude(b).real(), expected / std::sqrt(8.0), 1e-10) << b;
  }
}

TEST(GateLevelGrover, FindsMarkedState) {
  util::Rng rng(21);
  int hits = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    BasisState found = gate_level_grover_search(5, {19}, rng);
    if (found == 19) ++hits;
  }
  // 5 qubits, 1 marked: optimal iterations give success ~ 0.999.
  EXPECT_GE(hits, 22);
}

TEST(GateLevelGrover, MatchesAnalytic2DModel) {
  // Amplitude of the marked subspace after j iterations must equal
  // sin((2j+1) theta) from grover_math — cross-validation of the scaled
  // simulation against the gate-level truth.
  const unsigned width = 4;
  const std::vector<BasisState> marked{3, 9, 12};
  const double dim = 16.0;
  double theta = grover_angle(static_cast<double>(marked.size()) / dim);

  quantum::Statevector sv(width);
  sv.h_all();
  Circuit q = grover_iterate_circuit(width, marked);
  for (std::uint64_t j = 0; j <= 3; ++j) {
    double p_marked = 0.0;
    for (BasisState m : marked) p_marked += sv.probability(m);
    EXPECT_NEAR(p_marked, grover_success_probability(j, theta), 1e-9) << "j=" << j;
    q.apply_to(sv);
  }
}

TEST(AmplificationIterate, GeneralPrepFollowsRotationLaw) {
  // Lemma 27's iterate with a *biased* preparation A (not H^{otimes n}):
  // the marked amplitude must still rotate by exactly 2 theta per iterate,
  // theta = asin(sqrt(<marked|A|0>^2)).
  const unsigned width = 3;
  Circuit prep(width);
  prep.ry(0, 0.9).ry(1, 2.1).ry(2, 0.4).cnot(0, 1);
  const std::vector<BasisState> marked{1, 6};

  quantum::Statevector state = prep.simulate();
  double a0 = 0.0;
  for (BasisState m : marked) a0 += state.probability(m);
  double theta = grover_angle(a0);

  Circuit iterate = amplification_iterate_circuit(prep, marked);
  for (std::uint64_t j = 1; j <= 4; ++j) {
    iterate.apply_to(state);
    double p = 0.0;
    for (BasisState m : marked) p += state.probability(m);
    EXPECT_NEAR(p, grover_success_probability(j, theta), 1e-9) << "j=" << j;
  }
}

TEST(GateLevelPhaseEstimation, RecoversExactPhase) {
  util::Rng rng(22);
  // U = phase(2 pi * 5/16) on one qubit, eigenstate |1>.
  Circuit u(1);
  u.phase(0, 2.0 * M_PI * 5.0 / 16.0);
  Circuit prep(1);
  prep.x(0);
  // 4 precision bits represent 5/16 exactly -> deterministic outcome.
  for (int t = 0; t < 5; ++t) {
    EXPECT_NEAR(gate_level_phase_estimation(u, prep, 4, rng), 5.0 / 16.0, 1e-12);
  }
}

TEST(GateLevelPhaseEstimation, ApproximatesInexactPhase) {
  util::Rng rng(23);
  double phi = 0.2137;
  Circuit u(1);
  u.phase(0, 2.0 * M_PI * phi);
  Circuit prep(1);
  prep.x(0);
  int close = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    double est = gate_level_phase_estimation(u, prep, 6, rng);
    double err = std::min(std::abs(est - phi), 1.0 - std::abs(est - phi));
    if (err <= 1.0 / 64.0) ++close;
  }
  // QPE lands within one grid cell with probability >= 8/pi^2 ~ 0.81.
  EXPECT_GE(close, 2 * trials / 3);
}

TEST(GateLevelAmplitudeEstimation, EstimatesMarkedFraction) {
  util::Rng rng(24);
  // 4 qubits, 4 marked of 16: a = 0.25, theta = pi/6. With 5 precision
  // bits the estimate concentrates near 0.25.
  int close = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    double a = gate_level_amplitude_estimation(4, {1, 6, 11, 14}, 5, rng);
    if (std::abs(a - 0.25) < 0.08) ++close;
  }
  EXPECT_GE(close, 2 * trials / 3);
}

TEST(GateLevelDeutschJozsa, ExactOnAllSmallPromiseInputs) {
  // Exhaustively test every balanced and constant f on 3 qubits (k = 8).
  const unsigned width = 3;
  const std::uint64_t k = 8;
  // Constant inputs.
  EXPECT_TRUE(gate_level_deutsch_jozsa_is_constant(width,
                                                   [](std::uint64_t) { return false; }));
  EXPECT_TRUE(gate_level_deutsch_jozsa_is_constant(width,
                                                   [](std::uint64_t) { return true; }));
  // Every balanced input: subsets of size 4 out of 8.
  for (std::uint64_t mask = 0; mask < (1u << k); ++mask) {
    if (__builtin_popcountll(mask) != 4) continue;
    auto f = [mask](std::uint64_t i) { return ((mask >> i) & 1) != 0; };
    EXPECT_FALSE(gate_level_deutsch_jozsa_is_constant(width, f)) << mask;
  }
}

TEST(GateLevelDeutschJozsa, AgreesWithQuditImplementation) {
  // The scaled C^k implementation and the gate-level qubit implementation
  // must produce identical verdicts.
  util::Rng rng(26);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t k = 16;
    std::vector<Value> x(k, 0);
    bool balanced = trial % 2 == 0;
    if (balanced) {
      auto ones = rng.sample_without_replacement(k, k / 2);
      for (auto i : ones) x[i] = 1;
    } else if (rng.bernoulli(0.5)) {
      x.assign(k, 1);
    }
    InMemoryOracle oracle(x, 1);
    auto qudit_verdict = deutsch_jozsa(oracle);
    bool gate_constant = gate_level_deutsch_jozsa_is_constant(
        4, [&](std::uint64_t i) { return x[i] != 0; });
    EXPECT_EQ(qudit_verdict == DjVerdict::kConstant, gate_constant);
  }
}

TEST(GateLevelCounting, CountsMarkedItemsExactly) {
  util::Rng rng(30);
  // 4 qubits, 7 precision bits: the estimate resolves single items.
  for (std::size_t t : {0u, 1u, 4u, 8u, 16u}) {
    std::vector<BasisState> marked;
    for (BasisState b = 0; b < t; ++b) marked.push_back(b);
    int exact = 0;
    const int trials = 10;
    for (int trial = 0; trial < trials; ++trial) {
      if (gate_level_count_marked(4, marked, 7, rng) == t) ++exact;
    }
    EXPECT_GE(exact, 8) << "t=" << t;
  }
}

TEST(GateLevelMinfind, FindsMinimumWithPromisedProbability) {
  util::Rng rng(27);
  int successes = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint64_t> data(16);
    for (auto& v : data) v = 2 + rng.index(13);
    std::size_t min_at = rng.index(16);
    data[min_at] = 1;
    if (gate_level_minfind(data, 4, rng) == min_at) ++successes;
  }
  EXPECT_GE(successes, 2 * trials / 3);
}

TEST(GateLevelMinfind, AgreesWithScaledMinfindInDistribution) {
  // Success rates of the gate-level and the distribution-exact minfind
  // should be comparable on the same instances.
  util::Rng rng(28);
  int gate_hits = 0, scaled_hits = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint64_t> data(16);
    for (auto& v : data) v = 3 + rng.index(10);
    std::size_t min_at = rng.index(16);
    data[min_at] = 0;
    if (gate_level_minfind(data, 4, rng) == min_at) ++gate_hits;
    std::vector<Value> as_values(data.begin(), data.end());
    InMemoryOracle oracle(as_values, 1);
    if (minfind(oracle, rng) == min_at) ++scaled_hits;
  }
  EXPECT_GE(gate_hits, 2 * trials / 3);
  EXPECT_GE(scaled_hits, 2 * trials / 3);
}

TEST(GateLevelMinfind, Validation) {
  util::Rng rng(29);
  EXPECT_THROW(gate_level_minfind({1, 2, 3}, 2, rng), std::invalid_argument);
  EXPECT_THROW(gate_level_minfind({1, 5}, 2, rng), std::invalid_argument);  // 5 >= 4
  std::vector<std::uint64_t> single{3};
  EXPECT_EQ(gate_level_minfind(single, 2, rng), 0u);
}

TEST(Lemma7FanOut, CnotCopyDuplicatesBasisStatesCoherently) {
  // Lemma 7's local step: CNOT fan-out copies a *basis-state register*
  // (not an arbitrary state — no cloning) so each tree child receives
  // |i>. Verify on a superposition: sum_i a_i |i> -> sum_i a_i |i>|i>.
  quantum::Statevector state(4);
  state.h(0);
  state.apply(quantum::gates::rz(0.7), 0);
  state.h(1);
  // Fan out qubits {0,1} onto {2,3}.
  state.cnot(0, 2);
  state.cnot(1, 3);
  for (quantum::BasisState b = 0; b < 16; ++b) {
    quantum::BasisState low = b & 0b11, high = (b >> 2) & 0b11;
    if (low != high) {
      EXPECT_NEAR(state.probability(b), 0.0, 1e-12) << b;
    }
  }
  // Undoing the fan-out restores the original product state.
  state.cnot(1, 3);
  state.cnot(0, 2);
  quantum::Statevector expected(4);
  expected.h(0);
  expected.apply(quantum::gates::rz(0.7), 0);
  expected.h(1);
  EXPECT_NEAR(state.fidelity(expected), 1.0, 1e-12);
}

TEST(GateLevelAmplitudeEstimation, ZeroAndFullAmplitude) {
  util::Rng rng(25);
  EXPECT_NEAR(gate_level_amplitude_estimation(3, {}, 4, rng), 0.0, 1e-9);
  std::vector<BasisState> all;
  for (BasisState b = 0; b < 8; ++b) all.push_back(b);
  EXPECT_NEAR(gate_level_amplitude_estimation(3, all, 4, rng), 1.0, 1e-9);
}

}  // namespace
}  // namespace qcongest::query
