#include <gtest/gtest.h>

#include <memory>

#include "src/net/bfs.hpp"
#include "src/net/engine.hpp"
#include "src/net/generators.hpp"
#include "src/net/violation.hpp"

namespace qcongest::net {
namespace {

/// Floods a single token from node 0; used to test delivery and round
/// accounting.
class FloodOnce final : public NodeProgram {
 public:
  bool reached = false;
  std::size_t reached_round = 0;

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    if (ctx.round() == 0 && ctx.id() == 0 && !reached) {
      reached = true;
      for (NodeId u : ctx.neighbors()) ctx.send(u, Word{1, 42, 0, false});
      return;
    }
    for (const Message& m : inbox) {
      if (m.word.tag == 1 && !reached) {
        reached = true;
        reached_round = ctx.round();
        for (NodeId u : ctx.neighbors()) {
          if (u != m.from) ctx.send(u, Word{1, m.word.a, 0, false});
        }
      }
    }
  }
};

std::vector<std::unique_ptr<NodeProgram>> make_flood(std::size_t n) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (std::size_t i = 0; i < n; ++i) programs.push_back(std::make_unique<FloodOnce>());
  return programs;
}

TEST(Engine, FloodReachesAllAndRoundsEqualEccentricity) {
  Graph g = path_graph(6);
  Engine engine(g);
  auto programs = make_flood(6);
  RunResult result = engine.run(programs, 100);
  EXPECT_TRUE(result.completed);
  // Node 0's eccentricity is 5: the last send happens in pass 5.
  EXPECT_EQ(result.rounds, 5u);
  for (std::size_t v = 0; v < 6; ++v) {
    EXPECT_TRUE(static_cast<FloodOnce&>(*programs[v]).reached);
  }
  EXPECT_EQ(result.quantum_words, 0u);
  EXPECT_GT(result.classical_words, 0u);
}

TEST(Engine, QuiescenceOnSilentPrograms) {
  class Silent final : public NodeProgram {
    void on_round(Context&, std::span<const Message>) override {}
  };
  Graph g = path_graph(3);
  Engine engine(g);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int i = 0; i < 3; ++i) programs.push_back(std::make_unique<Silent>());
  RunResult result = engine.run(programs, 50);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Engine, BandwidthEnforced) {
  class DoubleSend final : public NodeProgram {
    void on_round(Context& ctx, std::span<const Message>) override {
      if (ctx.round() == 0 && ctx.id() == 0) {
        ctx.send(1, Word{});
        ctx.send(1, Word{});  // second word on the same edge: over budget
      }
    }
  };
  Graph g = path_graph(2);
  Engine engine(g, /*bandwidth_words=*/1);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<DoubleSend>());
  programs.push_back(std::make_unique<DoubleSend>());
  try {
    engine.run(programs, 10);
    FAIL() << "over-budget send must throw CongestViolation";
  } catch (const CongestViolation& v) {
    EXPECT_EQ(v.kind(), CongestViolation::Kind::kBandwidthExceeded);
    EXPECT_EQ(v.round(), 0u);
    EXPECT_EQ(v.from(), 0u);
    EXPECT_EQ(v.to(), 1u);
    EXPECT_EQ(v.words_attempted(), 2u);
    EXPECT_EQ(v.budget(), 1u);
  }

  Engine wide(g, /*bandwidth_words=*/2);
  std::vector<std::unique_ptr<NodeProgram>> programs2;
  programs2.push_back(std::make_unique<DoubleSend>());
  programs2.push_back(std::make_unique<DoubleSend>());
  EXPECT_NO_THROW(wide.run(programs2, 10));
}

TEST(Engine, SendToNonNeighborRejected) {
  class BadSend final : public NodeProgram {
    void on_round(Context& ctx, std::span<const Message>) override {
      if (ctx.round() == 0 && ctx.id() == 0) ctx.send(2, Word{});
    }
  };
  Graph g = path_graph(3);  // 0 and 2 are not adjacent
  Engine engine(g);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int i = 0; i < 3; ++i) programs.push_back(std::make_unique<BadSend>());
  try {
    engine.run(programs, 10);
    FAIL() << "non-neighbor send must throw CongestViolation";
  } catch (const CongestViolation& v) {
    EXPECT_EQ(v.kind(), CongestViolation::Kind::kNonNeighborSend);
    EXPECT_EQ(v.from(), 0u);
    EXPECT_EQ(v.to(), 2u);
  }
}

TEST(Engine, QuantumWordsCounted) {
  class QuantumSend final : public NodeProgram {
    void on_round(Context& ctx, std::span<const Message>) override {
      if (ctx.round() == 0 && ctx.id() == 0) {
        ctx.send(1, Word{1, 0, 0, /*quantum=*/true});
      }
    }
  };
  Graph g = path_graph(2);
  Engine engine(g);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<QuantumSend>());
  programs.push_back(std::make_unique<QuantumSend>());
  RunResult result = engine.run(programs, 10);
  EXPECT_EQ(result.quantum_words, 1u);
  EXPECT_EQ(result.classical_words, 0u);
}

TEST(LeaderElection, PicksMaxIdOnVariousTopologies) {
  for (auto make : {+[] { return path_graph(9); }, +[] { return cycle_graph(8); },
                    +[] { return star_graph(6); }, +[] { return grid_graph(3, 3); }}) {
    Graph g = make();
    Engine engine(g);
    auto result = elect_leader(engine);
    EXPECT_EQ(result.leader, g.num_nodes() - 1);
    EXPECT_TRUE(result.cost.completed);
    // Flood-max stabilizes within about 2 diameters.
    EXPECT_LE(result.cost.rounds, 2 * g.diameter() + 2);
  }
}

TEST(BfsTree, StructureMatchesGroundTruth) {
  util::Rng rng(33);
  Graph g = random_connected_graph(40, 30, rng);
  Engine engine(g);
  NodeId root = 7;
  BfsTree tree = build_bfs_tree(engine, root);
  auto truth = g.bfs_distances(root);

  EXPECT_EQ(tree.root, root);
  EXPECT_EQ(tree.parent[root], root);
  std::size_t max_depth = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(tree.depth[v], truth[v]) << "node " << v;
    max_depth = std::max(max_depth, tree.depth[v]);
    if (v != root) {
      EXPECT_TRUE(g.has_edge(v, tree.parent[v]));
      EXPECT_EQ(tree.depth[v], tree.depth[tree.parent[v]] + 1);
      // v must be registered as its parent's child.
      const auto& siblings = tree.children[tree.parent[v]];
      EXPECT_TRUE(std::find(siblings.begin(), siblings.end(), v) != siblings.end());
    }
  }
  EXPECT_EQ(tree.height, max_depth);
  EXPECT_LE(tree.cost.rounds, g.diameter() + 2);
}

TEST(BfsTree, SingleNodeGraph) {
  Graph g(1);
  Engine engine(g);
  BfsTree tree = build_bfs_tree(engine, 0);
  EXPECT_EQ(tree.height, 0u);
  EXPECT_TRUE(tree.children[0].empty());
}

TEST(BfsTree, DisconnectedThrows) {
  Graph g(3);
  g.add_edge(0, 1);
  Engine engine(g);
  EXPECT_THROW(build_bfs_tree(engine, 0), std::logic_error);
}

}  // namespace
}  // namespace qcongest::net
