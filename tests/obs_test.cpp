// Unit tests for the observability layer (src/obs): the JSON writer and
// validator, the deterministic metrics registry, the round profiler, and
// the run-report round trip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/net/bfs.hpp"
#include "src/net/generators.hpp"
#include "src/net/pipeline.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/round_profiler.hpp"
#include "src/obs/run_report.hpp"

namespace qcongest::obs {
namespace {

// --- JSON ------------------------------------------------------------------

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, EscapesEveryControlCharacter) {
  // Regression test: \b and \f get their RFC 8259 short forms, everything
  // else below 0x20 a \u00XX escape — including U+0000, which must never
  // truncate the output.
  EXPECT_EQ(json_escape(std::string_view("\b\f", 2)), "\\b\\f");
  EXPECT_EQ(json_escape(std::string_view("\0", 1)), "\\u0000");
  for (int c = 0; c < 0x20; ++c) {
    const char byte = static_cast<char>(c);
    const std::string escaped = json_escape(std::string_view(&byte, 1));
    EXPECT_GE(escaped.size(), 2u) << "control char " << c << " passed raw";
    EXPECT_EQ(escaped[0], '\\') << "control char " << c;
    const std::string doc = "{\"k\": \"" + escaped + "\"}";
    EXPECT_TRUE(json_valid(doc)) << "control char " << c;
  }
}

TEST(Json, PassesWellFormedUtf8Through) {
  // é (2 bytes), ∑ (3 bytes), 𝄞 (4 bytes) survive byte-for-byte.
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
  EXPECT_EQ(json_escape("\xe2\x88\x91"), "\xe2\x88\x91");
  EXPECT_EQ(json_escape("\xf0\x9d\x84\x9e"), "\xf0\x9d\x84\x9e");
  EXPECT_TRUE(json_valid("\"caf\xc3\xa9\""));
}

TEST(Json, ReplacesMalformedUtf8) {
  // Each malformed byte becomes an escaped U+FFFD — never raw passthrough
  // (which used to emit invalid-UTF-8 documents strict parsers reject).
  EXPECT_EQ(json_escape("\x80"), "\\ufffd");           // stray continuation
  EXPECT_EQ(json_escape("\xff"), "\\ufffd");           // invalid lead
  EXPECT_EQ(json_escape("\xc3"), "\\ufffd");           // truncated sequence
  EXPECT_EQ(json_escape("\xc0\xaf"), "\\ufffd\\ufffd");  // overlong '/'
  EXPECT_EQ(json_escape("\xed\xa0\x80"), "\\ufffd\\ufffd\\ufffd");  // surrogate
  // Resynchronizes: valid text on both sides of the bad byte survives.
  EXPECT_EQ(json_escape("a\x80z"), "a\\ufffdz");
  const std::string doc = "{\"k\": \"" + json_escape("\xfe\xc3(") + "\"}";
  EXPECT_TRUE(json_valid(doc));
}

TEST(Json, ValidatorRejectsMalformedUtf8Strings) {
  EXPECT_TRUE(json_valid("\"caf\xc3\xa9\""));
  std::string error;
  EXPECT_FALSE(json_valid("\"\x80\"", &error));
  EXPECT_NE(error.find("UTF-8"), std::string::npos);
  EXPECT_FALSE(json_valid("\"\xc0\xaf\""));        // overlong
  EXPECT_FALSE(json_valid("\"\xed\xa0\x80\""));    // surrogate
  EXPECT_FALSE(json_valid("\"\xf4\x90\x80\x80\""));  // above U+10FFFF
  EXPECT_FALSE(json_valid("\"\xc3\""));            // truncated at close quote
}

TEST(Json, RawSplicesVerbatimFragments) {
  // Build the same array once with values, once by splicing pre-rendered
  // fragments; the two documents must be byte-identical.
  JsonWriter direct;
  direct.begin_object();
  direct.key("xs").begin_array();
  direct.begin_object().key("a").value(1).end_object();
  direct.begin_object().key("b").value(2).end_object();
  direct.end_array();
  direct.end_object();

  JsonWriter spliced;
  spliced.begin_object();
  spliced.key("xs").begin_array();
  spliced.raw("{\n      \"a\": 1\n    }");
  spliced.raw("{\n      \"b\": 2\n    }");
  spliced.end_array();
  spliced.end_object();

  EXPECT_EQ(direct.str(), spliced.str());
  EXPECT_TRUE(json_valid(spliced.str()));
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  // Regression test: NaN / ±Inf used to be printed raw into BENCH_*.json,
  // producing documents no JSON parser would accept.
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  // A document embedding the rendered token must stay valid JSON.
  std::string doc = "{\"x\": " + json_number(std::nan("")) + "}";
  EXPECT_TRUE(json_valid(doc));
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[1, 2.5, -3e4, \"s\", true, false, null]"));
  EXPECT_TRUE(json_valid("{\"a\": {\"b\": [{}]}}"));
  std::string error;
  EXPECT_FALSE(json_valid("", &error));
  EXPECT_FALSE(json_valid("{\"a\": }", &error));
  EXPECT_FALSE(json_valid("[1, 2,]", &error));
  EXPECT_FALSE(json_valid("{\"a\": 1} trailing", &error));
  EXPECT_FALSE(json_valid("{\"a\": NaN}", &error));
  EXPECT_FALSE(json_valid("\"unterminated", &error));
  EXPECT_FALSE(error.empty());
}

TEST(Json, WriterProducesValidDocuments) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("text").value("with \"quotes\"");
  writer.key("flag").value(true);
  writer.key("int").value(std::int64_t{-7});
  writer.key("big").value(std::uint64_t{18446744073709551615ull});
  writer.key("ratio").value(0.25);
  writer.key("none").null();
  writer.key("list").begin_array().value(1).value(2).end_array();
  writer.key("nested").begin_object().end_object();
  writer.end_object();
  std::string error;
  EXPECT_TRUE(json_valid(writer.str(), &error)) << error;
  EXPECT_NE(writer.str().find("\"big\": 18446744073709551615"), std::string::npos);
  EXPECT_NE(writer.str().find("\"none\": null"), std::string::npos);
}

TEST(Json, WriterRoundTripsThroughValidator) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("series").begin_array();
  for (int i = 0; i < 4; ++i) writer.value(i);
  writer.end_array();
  writer.key("nan").value(std::nan(""));
  writer.key("label").value("ok");
  writer.end_object();
  EXPECT_EQ(writer.non_finite_values(), 1u);
  std::string error;
  EXPECT_TRUE(json_valid(writer.str(), &error)) << error;
  EXPECT_NE(writer.str().find("\"nan\": null"), std::string::npos);
}

// --- Metrics ---------------------------------------------------------------

TEST(Metrics, HistogramBucketsIncludingOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0}) h.observe(v);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);  // 0.5, 1.0  (<= 1)
  EXPECT_EQ(h.bucket_counts()[1], 2u);  // 1.5, 2.0  (<= 2)
  EXPECT_EQ(h.bucket_counts()[2], 2u);  // 3.0, 4.0  (<= 4)
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // 100.0     (overflow)
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 112.0);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, RegistryCountersAndGauges) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.counter("missing"), 0u);
  registry.count("runs");
  registry.count("runs", 4);
  registry.set_gauge("ratio", 0.5);
  registry.set_gauge("ratio", 0.75);  // last write wins
  EXPECT_EQ(registry.counter("runs"), 5u);
  EXPECT_DOUBLE_EQ(registry.gauges().at("ratio"), 0.75);
  EXPECT_FALSE(registry.empty());
  registry.clear();
  EXPECT_TRUE(registry.empty());
}

TEST(Metrics, RegistryHistogramBoundsArePinned) {
  MetricsRegistry registry;
  registry.histogram("lat", {1.0, 2.0}).observe(1.5);
  registry.histogram("lat", {1.0, 2.0}).observe(3.0);  // same bounds: fine
  EXPECT_THROW(registry.histogram("lat", {1.0, 3.0}), std::invalid_argument);
  ASSERT_NE(registry.find_histogram("lat"), nullptr);
  EXPECT_EQ(registry.find_histogram("lat")->count(), 2u);
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
}

TEST(Metrics, SnapshotOrderIsInsertionIndependent) {
  // The determinism contract: two registries fed the same facts in
  // different orders serialize byte-identically (std::map, name order).
  MetricsRegistry a;
  a.count("zeta", 3);
  a.count("alpha", 1);
  a.set_gauge("mid", 2.0);
  MetricsRegistry b;
  b.set_gauge("mid", 2.0);
  b.count("alpha", 1);
  b.count("zeta", 3);
  JsonWriter wa, wb;
  a.write_json(wa);
  b.write_json(wb);
  EXPECT_EQ(wa.str(), wb.str());
  EXPECT_TRUE(json_valid(wa.str()));
}

// --- RoundProfiler ---------------------------------------------------------

TEST(RoundProfiler, SeriesMatchesEngineAccounting) {
  net::Graph g = net::path_graph(6);
  net::Engine engine(g);
  RoundProfiler profiler;
  engine.set_observer(&profiler);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);

  std::size_t sent = 0, delivered = 0;
  for (const RoundProfiler::RoundSample& s : profiler.rounds()) {
    sent += s.sent;
    delivered += s.delivered;
  }
  EXPECT_EQ(sent, tree.cost.messages);
  EXPECT_EQ(delivered, tree.cost.messages);  // perfect network: no drops
  EXPECT_EQ(profiler.total_runs(), 1u);
  // The auto span covers the whole run.
  ASSERT_EQ(profiler.phases().size(), 1u);
  EXPECT_EQ(profiler.phases()[0].name, "run#0");
  EXPECT_EQ(profiler.phases()[0].sent, tree.cost.messages);
}

TEST(RoundProfiler, ExplicitPhasesSliceTheTimeline) {
  net::Graph g = net::path_graph(4);
  net::Engine engine(g);
  RoundProfiler profiler;
  engine.set_observer(&profiler);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  profiler.reset();

  profiler.begin_phase("down");
  (void)net::pipelined_downcast(engine, tree, {1, 2, 3}, false);
  profiler.begin_phase("down-again");  // implicitly closes "down"
  (void)net::pipelined_downcast(engine, tree, {4}, false);
  profiler.end_phase();

  ASSERT_EQ(profiler.phases().size(), 2u);
  EXPECT_EQ(profiler.phases()[0].name, "down");
  EXPECT_EQ(profiler.phases()[1].name, "down-again");
  EXPECT_EQ(profiler.phases()[0].sent, 9u);  // 3 tree edges x 3 words
  EXPECT_EQ(profiler.phases()[1].sent, 3u);
  // Spans tile the global round axis.
  EXPECT_EQ(profiler.phases()[0].first_round, 0u);
  EXPECT_EQ(profiler.phases()[1].first_round, profiler.phases()[0].rounds);
  EXPECT_EQ(profiler.total_rounds(),
            profiler.phases()[0].rounds + profiler.phases()[1].rounds);
}

TEST(RoundProfiler, SeriesAreThreadCountInvariant) {
  net::Graph g = net::grid_graph(4, 4);
  auto run = [&](std::size_t threads) {
    net::Engine engine(g);
    engine.set_threads(threads);
    RoundProfiler profiler;
    engine.set_observer(&profiler);
    (void)net::build_bfs_tree(engine, 0);
    return profiler.rounds();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(RoundProfiler, ForwardsToDownstreamObserver) {
  class Counter final : public net::EngineObserver {
   public:
    std::size_t sends = 0, runs = 0;
    void on_send(std::size_t, net::NodeId, net::NodeId, const net::Word&,
                 std::size_t) override {
      ++sends;
    }
    void on_run_end(const net::RunResult&) override { ++runs; }
  };
  net::Graph g = net::path_graph(3);
  net::Engine engine(g);
  RoundProfiler profiler;
  Counter downstream;
  profiler.set_downstream(&downstream);
  engine.set_observer(&profiler);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  EXPECT_EQ(downstream.sends, tree.cost.messages);
  EXPECT_EQ(downstream.runs, 1u);
}

// --- RunReport -------------------------------------------------------------

RunReport make_report() {
  net::Graph g = net::path_graph(5);
  net::Engine engine(g);
  net::Trace trace;
  RoundProfiler profiler;
  engine.set_trace(&trace);
  engine.set_observer(&profiler);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);

  RunReport report("obs_test");
  RunReport::Section& section = report.add_section("bfs");
  section.set_label("graph", "path");
  section.set_label("nodes", "5");
  section.set_outcome(true);
  section.set_result(tree.cost);
  section.set_trace(trace, 4);
  section.set_profile(profiler);
  MetricsRegistry metrics;
  metrics.count("runs");
  metrics.set_gauge("height", static_cast<double>(tree.height));
  metrics.histogram("msgs", {1.0, 4.0, 16.0}).observe(3.0);
  section.set_metrics(metrics);
  return report;
}

TEST(RunReport, RoundTripsThroughJsonParser) {
  RunReport report = make_report();
  std::string doc = report.to_json();
  std::string error;
  EXPECT_TRUE(json_valid(doc, &error)) << error;
  EXPECT_NE(doc.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"producer\": \"obs_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"deterministic\": true"), std::string::npos);
  EXPECT_NE(doc.find("\"round_series\""), std::string::npos);
  EXPECT_NE(doc.find("\"phases\""), std::string::npos);
  EXPECT_NE(doc.find("\"busiest_edges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
}

TEST(RunReport, SerializationIsDeterministic) {
  EXPECT_EQ(make_report().to_json(), make_report().to_json());
}

TEST(RunReport, WritesToDiskWithoutThrowing) {
  RunReport report = make_report();
  std::string path = testing::TempDir() + "obs_test_report.json";
  std::string error;
  ASSERT_TRUE(report.write(path, &error)) << error;
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.to_json());
  EXPECT_TRUE(json_valid(buffer.str()));
  std::remove(path.c_str());
  // Unwritable path: reports failure through the out-param, never throws.
  EXPECT_FALSE(report.write("/nonexistent-dir/x/y.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(RunReport, RenderedSectionsSpliceByteIdentically) {
  // The result cache's contract: rendering each section standalone and
  // splicing the fragments back produces the same bytes as a fresh
  // to_json(), so a cache-hit report is indistinguishable from a computed
  // one. Exercised with a rich section (labels, result, trace, profile,
  // metrics) plus a second minimal one (mixed fresh/cached order).
  RunReport fresh = make_report();
  fresh.add_section("second").set_label("k", "v");

  RunReport spliced("obs_test");
  for (const RunReport::Section& section : fresh.sections()) {
    spliced.add_rendered_section(section.name(), section.render());
  }
  EXPECT_EQ(spliced.to_json(), fresh.to_json());

  // Mixed: first section cached, second fresh.
  RunReport mixed("obs_test");
  mixed.add_rendered_section(fresh.sections()[0].name(),
                             fresh.sections()[0].render());
  mixed.add_section("second").set_label("k", "v");
  EXPECT_EQ(mixed.to_json(), fresh.to_json());
}

TEST(RunReport, EmptySectionsStillValid) {
  RunReport report("empty");
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(json_valid(report.to_json()));
  report.add_section("bare");
  EXPECT_FALSE(report.empty());
  EXPECT_TRUE(json_valid(report.to_json()));
  report.clear();
  EXPECT_TRUE(report.empty());
}

}  // namespace
}  // namespace qcongest::obs
