#include <gtest/gtest.h>

#include <set>

#include "src/query/boosted.hpp"

namespace qcongest::query {
namespace {

TEST(Boosting, RepetitionCounts) {
  EXPECT_EQ(boost_repetitions(0.3), 3u);  // ceil(log3(1/0.3)) + 1
  EXPECT_GE(boost_repetitions(0.01), 5u);
  EXPECT_GT(boost_repetitions(1e-9), boost_repetitions(1e-3));
  EXPECT_THROW(boost_repetitions(0.0), std::invalid_argument);
  EXPECT_THROW(boost_repetitions(1.0), std::invalid_argument);
}

TEST(Boosting, FindOneRarelyFails) {
  util::Rng rng(1);
  int successes = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    std::vector<Value> data(512, 0);
    data[rng.index(512)] = 1;
    InMemoryOracle oracle(data, 8);
    auto found = grover_find_one_boosted(
        oracle, [](Value v) { return v == 1; }, 0.01, rng);
    if (found && oracle.peek(*found) == 1) ++successes;
  }
  // delta = 0.01: essentially never fails over 60 trials.
  EXPECT_GE(successes, 59);
}

TEST(Boosting, FindOneStillNulloptOnEmpty) {
  util::Rng rng(2);
  InMemoryOracle oracle(std::vector<Value>(128, 0), 8);
  EXPECT_FALSE(grover_find_one_boosted(oracle, [](Value v) { return v == 1; }, 0.05,
                                       rng)
                   .has_value());
}

TEST(Boosting, MinfindRarelyFails) {
  util::Rng rng(3);
  int successes = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    std::vector<Value> data(400);
    for (auto& v : data) v = static_cast<Value>(rng.index(100000)) + 10;
    std::size_t min_at = rng.index(400);
    data[min_at] = 1;
    InMemoryOracle oracle(data, 8);
    if (minfind_boosted(oracle, 0.02, rng) == min_at) ++successes;
  }
  EXPECT_GE(successes, 39);
}

TEST(Boosting, MaxfindVariant) {
  util::Rng rng(4);
  std::vector<Value> data(300, 5);
  data[123] = 99;
  InMemoryOracle oracle(data, 8);
  EXPECT_EQ(minfind_boosted(oracle, 0.02, rng, /*maximum=*/true), 123u);
}

TEST(Boosting, ElementDistinctnessRarelyFails) {
  util::Rng rng(5);
  int successes = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    std::vector<Value> data(400);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<Value>(i);
    data[rng.index(200)] = data[200 + rng.index(200)];
    InMemoryOracle oracle(data, 4);
    auto pair = element_distinctness_boosted(oracle, 0.02, rng);
    if (pair && oracle.peek(pair->i) == oracle.peek(pair->j)) ++successes;
  }
  EXPECT_GE(successes, 24);
}

TEST(Boosting, ElementDistinctnessOneSided) {
  util::Rng rng(6);
  std::vector<Value> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<Value>(i);
  InMemoryOracle oracle(data, 4);
  EXPECT_FALSE(element_distinctness_boosted(oracle, 0.1, rng).has_value());
}

TEST(Boosting, CostGrowsLogarithmically) {
  // Halving delta repeatedly adds only ~constant batches per halving.
  util::Rng rng(7);
  std::vector<Value> data(1024, 0);
  data[77] = 1;
  auto batches_at = [&](double delta) {
    double total = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      InMemoryOracle oracle(data, 8);
      (void)grover_find_one_boosted(oracle, [](Value v) { return v == 1; }, delta,
                                    rng);
      total += static_cast<double>(oracle.ledger().batches);
    }
    return total / trials;
  };
  double coarse = batches_at(0.3);
  double fine = batches_at(0.3 * 1e-4);
  // 4 orders of magnitude of delta: at most ~9x the cost (log factor).
  EXPECT_LT(fine, 10.0 * coarse + 20.0);
}

}  // namespace
}  // namespace qcongest::query
