// Framework graceful degradation on an unreliable *direct* transport:
// checksummed downcast with verification votes, run-twice-compare
// convergecast, bounded retry budgets, and honest cost accounting of
// failed attempts (PhaseAborted still carries what was spent).

#include <gtest/gtest.h>

#include "src/framework/resilient.hpp"
#include "src/net/bfs.hpp"
#include "src/net/fault.hpp"
#include "src/net/generators.hpp"

namespace qcongest::framework {
namespace {

struct Fixture {
  net::Graph graph;
  net::Engine engine;
  net::BfsTree tree;

  explicit Fixture(std::uint64_t seed = 3)
      : graph(net::binary_tree(15)), engine(graph, 1, seed) {
    tree = net::build_bfs_tree(engine, 0);
  }
};

std::vector<std::int64_t> sample_payload() { return {11, 22, 33, 44, 55, 66}; }

TEST(Resilient, ChecksumSeparatesSingleBitFlips) {
  std::vector<std::int64_t> payload = sample_payload();
  std::int64_t base = payload_checksum(payload);
  for (std::size_t w = 0; w < payload.size(); ++w) {
    for (unsigned bit = 0; bit < 64; bit += 7) {
      auto flipped = payload;
      flipped[w] ^= std::int64_t{1} << bit;
      EXPECT_NE(payload_checksum(flipped), base) << "word " << w << " bit " << bit;
    }
  }
}

TEST(Resilient, DowncastPerfectNetworkSingleAttempt) {
  Fixture f;
  auto result = resilient_downcast(f.engine, f.tree, sample_payload(), false);
  EXPECT_EQ(result.attempts, 1u);
  for (const auto& row : result.received) EXPECT_EQ(row, sample_payload());
  EXPECT_GT(result.cost.rounds, 0u);  // downcast + verification vote
}

TEST(Resilient, DowncastDetectsCorruptionAndRecovers) {
  Fixture f;
  net::FaultPlan plan;
  plan.link.corrupt = 0.02;
  plan.seed = 97;
  f.engine.set_fault_plan(plan);
  RetryPolicy policy;
  policy.max_attempts = 10;
  auto result = resilient_downcast(f.engine, f.tree, sample_payload(), false, policy);
  for (const auto& row : result.received) EXPECT_EQ(row, sample_payload());
  EXPECT_LE(result.attempts, policy.max_attempts);
}

TEST(Resilient, DowncastAbortsWhenLinksAreDead) {
  Fixture f;
  net::FaultPlan plan;
  plan.link.drop = 1.0;
  f.engine.set_fault_plan(plan);
  RetryPolicy policy;
  policy.max_attempts = 3;
  try {
    resilient_downcast(f.engine, f.tree, sample_payload(), false, policy);
    FAIL() << "expected PhaseAborted";
  } catch (const PhaseAborted& aborted) {
    EXPECT_EQ(aborted.attempts(), 3u);
    // The failed attempts are still charged: words were sent and lost.
    EXPECT_GT(aborted.cost().messages, 0u);
    EXPECT_GT(aborted.cost().dropped_words, 0u);
  }
}

TEST(Resilient, ConvergecastPerfectNetworkTwoRuns) {
  Fixture f;
  const std::size_t n = f.graph.num_nodes();
  std::vector<std::vector<std::int64_t>> values(n, {1, 2});
  auto result = resilient_convergecast(
      f.engine, f.tree, values, 1, [](std::int64_t a, std::int64_t b) { return a + b; },
      false);
  EXPECT_EQ(result.attempts, 2u);  // temporal redundancy needs agreement
  EXPECT_EQ(result.totals,
            (std::vector<std::int64_t>{static_cast<std::int64_t>(n),
                                       static_cast<std::int64_t>(2 * n)}));
}

TEST(Resilient, ConvergecastSurvivesCorruption) {
  Fixture f;
  net::FaultPlan plan;
  plan.link.corrupt = 0.02;
  plan.seed = 51;
  f.engine.set_fault_plan(plan);
  const std::size_t n = f.graph.num_nodes();
  std::vector<std::vector<std::int64_t>> values(n, {5});
  RetryPolicy policy;
  policy.max_attempts = 12;
  auto result = resilient_convergecast(
      f.engine, f.tree, values, 1, [](std::int64_t a, std::int64_t b) { return a + b; },
      false, policy);
  EXPECT_EQ(result.totals, (std::vector<std::int64_t>{static_cast<std::int64_t>(5 * n)}));
  EXPECT_GE(result.attempts, 2u);
}

TEST(Resilient, StateDistributionRetriesOnLoss) {
  Fixture f;
  net::FaultPlan plan;
  plan.link.drop = 0.02;
  plan.seed = 23;
  f.engine.set_fault_plan(plan);
  RetryPolicy policy;
  policy.max_attempts = 20;
  auto result = distribute_state_resilient(f.engine, f.tree, 32, policy);
  EXPECT_GE(result.attempts, 1u);
  EXPECT_TRUE(result.cost.completed || result.attempts > 1);
  EXPECT_GT(result.cost.quantum_words, 0u);
}

TEST(Resilient, AbortedPhaseCostIncludesEveryAttempt) {
  Fixture f;
  net::FaultPlan plan;
  plan.link.drop = 1.0;
  f.engine.set_fault_plan(plan);
  RetryPolicy one;
  one.max_attempts = 1;
  RetryPolicy three;
  three.max_attempts = 3;
  auto spent = [&](const RetryPolicy& policy) {
    try {
      resilient_downcast(f.engine, f.tree, sample_payload(), false, policy);
    } catch (const PhaseAborted& aborted) {
      return aborted.cost().messages;
    }
    return std::size_t{0};
  };
  std::size_t once = spent(one);
  std::size_t thrice = spent(three);
  EXPECT_GT(once, 0u);
  EXPECT_GT(thrice, once);
}

}  // namespace
}  // namespace qcongest::framework
