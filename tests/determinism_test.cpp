// Replay determinism: identical seeds must reproduce identical results and
// identical measured costs — the property that makes every number in
// EXPERIMENTS.md reproducible bit-for-bit.

#include <gtest/gtest.h>

#include "src/apps/eccentricity.hpp"
#include "src/apps/girth.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/net/generators.hpp"
#include "src/query/parallel_grover.hpp"

namespace qcongest {
namespace {

TEST(Determinism, GraphGenerationReplays) {
  util::Rng a(99), b(99);
  net::Graph ga = net::random_connected_graph(40, 30, a);
  net::Graph gb = net::random_connected_graph(40, 30, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (net::NodeId v = 0; v < 40; ++v) {
    EXPECT_EQ(ga.neighbors(v), gb.neighbors(v));
  }
}

TEST(Determinism, QueryAlgorithmsReplay) {
  auto run = [] {
    util::Rng rng(7);
    std::vector<query::Value> data(512, 0);
    data[123] = 1;
    query::InMemoryOracle oracle(data, 8);
    auto found = query::grover_find_one(
        oracle, [](query::Value v) { return v == 1; }, rng);
    return std::pair{found, oracle.ledger().batches};
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(Determinism, MeetingSchedulingReplays) {
  auto run = [] {
    util::Rng rng(13);
    net::Graph g = net::random_connected_graph(16, 10, rng);
    apps::Calendars calendars(16, std::vector<query::Value>(64, 0));
    for (auto& row : calendars) {
      for (auto& slot : row) slot = rng.bernoulli(0.3) ? 1 : 0;
    }
    auto result = apps::meeting_scheduling_quantum(g, calendars, rng);
    return std::tuple{result.best_slot, result.cost.rounds, result.cost.messages,
                      result.batches};
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, GraphAppsReplay) {
  auto run_diameter = [] {
    util::Rng rng(17);
    net::Graph g = net::random_connected_graph(20, 14, rng);
    auto result = apps::diameter_quantum(g, rng);
    return std::pair{result.value, result.cost.rounds};
  };
  EXPECT_EQ(run_diameter(), run_diameter());

  auto run_girth = [] {
    util::Rng rng(19);
    net::Graph g = net::cycle_with_trees(5, 25, rng);
    auto result = apps::girth_quantum(g, 0.5, rng);
    return std::pair{result.girth, result.cost.rounds};
  };
  EXPECT_EQ(run_girth(), run_girth());
}

TEST(Determinism, DifferentSeedsDiffer) {
  // Sanity: the randomness is real — different seeds explore different
  // schedules (message counts almost surely differ for minfind).
  util::Rng rng1(1), rng2(2);
  net::Graph g = net::path_graph(10);
  apps::Calendars calendars(10, std::vector<query::Value>(256, 0));
  util::Rng fill(3);
  for (auto& row : calendars) {
    for (auto& slot : row) slot = fill.bernoulli(0.5) ? 1 : 0;
  }
  auto a = apps::meeting_scheduling_quantum(g, calendars, rng1);
  auto b = apps::meeting_scheduling_quantum(g, calendars, rng2);
  EXPECT_NE(a.cost.messages, b.cost.messages);
}

}  // namespace
}  // namespace qcongest
