// Tests of the two-party-cut accounting: a CONGEST protocol on a gadget
// graph induces a two-party protocol whose communication is the words
// crossing the Alice/Bob cut. The reductions (Lemmas 11/13, Theorem 18)
// prove Omega(k) classical lower bounds for that quantity; here we verify
// the measured cut traffic of our protocols behaves accordingly.

#include <gtest/gtest.h>

#include "src/apps/deutsch_jozsa.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/apps/twoparty.hpp"
#include "src/net/generators.hpp"

namespace qcongest::apps {
namespace {

TEST(CutCommunication, PathGadgetCutConstruction) {
  auto side = path_gadget_cut(6, 2);
  EXPECT_EQ(side, (std::vector<bool>{false, false, false, true, true, true}));
  EXPECT_THROW(path_gadget_cut(4, 3), std::invalid_argument);
}

TEST(CutCommunication, UntrackedRunsReportZero) {
  util::Rng rng(1);
  auto gadget = meeting_scheduling_gadget(64, 4, true, rng);
  auto result = meeting_scheduling_classical(gadget.graph, gadget.calendars);
  EXPECT_EQ(result.cost.cut_words, 0u);
}

TEST(CutCommunication, ClassicalMeetingSchedulingMovesOmegaKAcrossCut) {
  util::Rng rng(2);
  const std::size_t k = 512, distance = 6;
  auto gadget = meeting_scheduling_gadget(k, distance, true, rng);
  NetOptions options;
  options.tracked_cut = path_gadget_cut(gadget.graph.num_nodes(), distance / 2);
  auto result = meeting_scheduling_classical(gadget.graph, gadget.calendars, options);
  // The whole aggregated calendar crosses the cut: >= k words.
  EXPECT_GE(result.cost.cut_words, k);
}

TEST(CutCommunication, QuantumMeetingSchedulingMovesFarLessForLargeK) {
  util::Rng rng(3);
  const std::size_t k = 4096, distance = 6;
  auto gadget = meeting_scheduling_gadget(k, distance, true, rng);
  NetOptions options;
  options.tracked_cut = path_gadget_cut(gadget.graph.num_nodes(), distance / 2);
  auto classical =
      meeting_scheduling_classical(gadget.graph, gadget.calendars, options);
  auto quantum =
      meeting_scheduling_quantum(gadget.graph, gadget.calendars, rng, options);
  EXPECT_GE(classical.cost.cut_words, k);
  EXPECT_LT(quantum.cost.cut_words, classical.cost.cut_words);
}

TEST(CutCommunication, DeutschJozsaSeparationAtTheCut) {
  // Theorem 17/18 at the cut: the exact classical protocol must move
  // Omega(k) words across; the quantum one a constant number of qubit-words
  // times D-independent factors.
  util::Rng rng(4);
  const std::size_t k = 1024, distance = 6;
  auto gadget = deutsch_jozsa_gadget(k, distance, true, rng);
  NetOptions options;
  options.tracked_cut = path_gadget_cut(gadget.graph.num_nodes(), distance / 2);

  auto classical = deutsch_jozsa_classical_exact(gadget.graph, gadget.data, options);
  auto quantum = deutsch_jozsa_quantum(gadget.graph, gadget.data, options);
  EXPECT_EQ(classical.verdict, query::DjVerdict::kBalanced);
  EXPECT_EQ(quantum.verdict, query::DjVerdict::kBalanced);
  EXPECT_GE(classical.cost.cut_words, k / 2);
  // Quantum: one superposed query, a handful of words per phase.
  EXPECT_LT(quantum.cost.cut_words * 10, classical.cost.cut_words);
}

TEST(CutCommunication, CongestBSpeedsUpAppsEndToEnd) {
  // CONGEST(B) through the whole app stack: wider bandwidth reduces the
  // measured rounds of both protocols without changing answers.
  util::Rng rng(6);
  auto gadget = meeting_scheduling_gadget(1024, 6, true, rng);
  NetOptions narrow;
  NetOptions wide;
  wide.bandwidth = 4;
  auto reference = meeting_scheduling_reference(gadget.calendars);
  auto c_narrow = meeting_scheduling_classical(gadget.graph, gadget.calendars, narrow);
  auto c_wide = meeting_scheduling_classical(gadget.graph, gadget.calendars, wide);
  EXPECT_EQ(c_narrow.availability, reference.availability);
  EXPECT_EQ(c_wide.availability, reference.availability);
  EXPECT_LT(2 * c_wide.cost.rounds, c_narrow.cost.rounds);
  EXPECT_LE(c_wide.cost.max_edge_words, 4u);

  // Same algorithm randomness for both bandwidths: identical batch
  // schedules, so the comparison isolates the bandwidth effect.
  util::Rng rng_narrow(99), rng_wide(99);
  auto q_narrow =
      meeting_scheduling_quantum(gadget.graph, gadget.calendars, rng_narrow, narrow);
  auto q_wide =
      meeting_scheduling_quantum(gadget.graph, gadget.calendars, rng_wide, wide);
  EXPECT_LT(q_wide.cost.rounds, q_narrow.cost.rounds);
}

TEST(CutCommunication, CutWordsGrowLinearlyInKClassically) {
  util::Rng rng(5);
  auto measure = [&](std::size_t k) {
    auto gadget = meeting_scheduling_gadget(k, 4, true, rng);
    NetOptions options;
    options.tracked_cut = path_gadget_cut(gadget.graph.num_nodes(), 1);
    return meeting_scheduling_classical(gadget.graph, gadget.calendars, options)
        .cost.cut_words;
  };
  double small = static_cast<double>(measure(256));
  double large = static_cast<double>(measure(2048));
  EXPECT_NEAR(large / small, 8.0, 1.5);
}

}  // namespace
}  // namespace qcongest::apps
