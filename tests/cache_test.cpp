// Unit tests for the content-addressed result cache (src/cache): the
// SHA-256 digest, the canonical key builder (option-order independence,
// bit-exact floats, duplicate rejection), the on-disk store's durability
// contract (atomic publish, corrupt/truncated entries degrade to misses,
// oldest-first gc), the experiment DAG validator (named cycles) and
// runner (cache hits skip produce, failed deps poison dependents), and
// the qcongestd job-key derivation (threads/id excluded, seed/salt in).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cache/dag.hpp"
#include "src/cache/key.hpp"
#include "src/cache/sha256.hpp"
#include "src/cache/store.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/job.hpp"

namespace qcongest::cache {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------ sha256

TEST(Sha256, MatchesKnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // 56 bytes: forces the length field into a second padding block.
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(sha256_hex(std::string(1000000, 'a')),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, Fnv1a64MatchesReferenceValues) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

// -------------------------------------------------------------- KeyBuilder

TEST(KeyBuilder, FieldOrderNeverChangesTheKey) {
  KeyBuilder forward;
  forward.field("app", "bfs").field("nodes", std::uint64_t{15}).field("drop", 0.05);
  KeyBuilder backward;
  backward.field("drop", 0.05).field("nodes", std::uint64_t{15}).field("app", "bfs");
  EXPECT_EQ(forward.digest(), backward.digest());
  EXPECT_EQ(forward.canonical(), backward.canonical());
}

TEST(KeyBuilder, DigestIsSha256OfCanonical) {
  KeyBuilder key;
  key.field("x", std::uint64_t{1});
  EXPECT_EQ(key.digest(), sha256_hex(key.canonical()));
  EXPECT_EQ(key.digest().size(), 64u);
}

TEST(KeyBuilder, DoublesHashBitExactly) {
  // Decimal formatting would collapse distinct doubles; the bit-pattern
  // encoding must not.
  EXPECT_NE(canonical_double(0.0), canonical_double(-0.0));
  EXPECT_NE(canonical_double(0.1), canonical_double(0.1 + 1e-17));
  EXPECT_EQ(canonical_double(0.05), canonical_double(0.05));
  EXPECT_EQ(canonical_double(0.0), "f64:0000000000000000");

  KeyBuilder a, b;
  a.field("rate", 0.0);
  b.field("rate", -0.0);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KeyBuilder, DuplicateFieldThrows) {
  KeyBuilder key;
  key.field("app", "bfs");
  EXPECT_THROW(key.field("app", "leader"), std::logic_error);
}

TEST(KeyBuilder, StringValuesCannotForgeFieldBoundaries) {
  // A value containing "\nother=1" must not produce the same canonical
  // bytes as genuinely setting field "other".
  KeyBuilder smuggled;
  smuggled.field("app", "bfs\nother=1");
  KeyBuilder honest;
  honest.field("app", "bfs").field("other", std::uint64_t{1});
  EXPECT_NE(smuggled.digest(), honest.digest());
}

TEST(KeyBuilder, FaultPlanIsOrderCanonical) {
  net::FaultPlan forward;
  forward.seed = 9;
  forward.link.drop = 0.05;
  forward.crashes.push_back(net::CrashEvent{2, 30, 60});
  forward.crashes.push_back(net::CrashEvent{1, 10, 20});
  net::FaultPlan backward = forward;
  std::swap(backward.crashes[0], backward.crashes[1]);

  KeyBuilder a, b;
  a.fault_plan("fault", forward);
  b.fault_plan("fault", backward);
  EXPECT_EQ(a.digest(), b.digest());

  net::FaultPlan different = forward;
  different.crashes[0].crash_round = 31;
  KeyBuilder c;
  c.fault_plan("fault", different);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(CodeVersionSalt, EnvironmentOverrides) {
  // Not parallel-safe with other env tests, but gtest runs serially.
  unsetenv("QCONGEST_CACHE_SALT");
  EXPECT_EQ(code_version_salt(), std::string(kCodeVersionSalt));
  setenv("QCONGEST_CACHE_SALT", "flip", 1);
  EXPECT_EQ(code_version_salt(), "flip");
  unsetenv("QCONGEST_CACHE_SALT");
}

// ------------------------------------------------------------------- store

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("cache_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// The single on-disk entry file for `key`.
  fs::path entry_path(const std::string& key) const {
    return root_ / "objects" / key.substr(0, 2) / key.substr(2);
  }

  fs::path root_;
};

TEST_F(StoreTest, RoundTripsBlobs) {
  Store store(root_.string());
  const std::string key = sha256_hex("job-1");
  std::string blob;
  EXPECT_FALSE(store.get(key, &blob));  // cold

  std::string error;
  ASSERT_TRUE(store.put(key, "payload bytes\nwith\nnewlines", &error)) << error;
  ASSERT_TRUE(store.get(key, &blob));
  EXPECT_EQ(blob, "payload bytes\nwith\nnewlines");

  const Store::Stats stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.corrupt_misses, 0u);
}

TEST_F(StoreTest, EmptyBlobRoundTrips) {
  Store store(root_.string());
  const std::string key = sha256_hex("empty");
  ASSERT_TRUE(store.put(key, ""));
  std::string blob = "sentinel";
  ASSERT_TRUE(store.get(key, &blob));
  EXPECT_EQ(blob, "");
}

TEST_F(StoreTest, RejectsHostileKeys) {
  Store store(root_.string());
  std::string blob;
  for (const char* bad : {"", "short", "../../../../etc/passwd",
                          "ABCDEF0123456789ABCDEF0123456789",
                          "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz"}) {
    EXPECT_THROW(store.get(bad, &blob), std::invalid_argument) << bad;
    EXPECT_THROW(store.put(bad, "x"), std::invalid_argument) << bad;
  }
}

TEST_F(StoreTest, CorruptEntryDegradesToMissAndIsDropped) {
  Store store(root_.string());
  const std::string key = sha256_hex("corrupt-me");
  ASSERT_TRUE(store.put(key, "precious result"));

  // Flip one payload byte behind the store's back.
  {
    std::fstream f(entry_path(key), std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(-1, std::ios::end);
    f.put('X');
  }

  std::string blob = "sentinel";
  EXPECT_FALSE(store.get(key, &blob));  // miss, not a crash, not bad bytes
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
  EXPECT_FALSE(fs::exists(entry_path(key)));  // bad entry dropped

  // The recompute-and-reseal path works after the drop.
  ASSERT_TRUE(store.put(key, "precious result"));
  ASSERT_TRUE(store.get(key, &blob));
  EXPECT_EQ(blob, "precious result");
}

TEST_F(StoreTest, TruncatedEntryDegradesToMiss) {
  Store store(root_.string());
  const std::string key = sha256_hex("truncate-me");
  ASSERT_TRUE(store.put(key, "0123456789"));
  fs::resize_file(entry_path(key), fs::file_size(entry_path(key)) - 3);

  std::string blob;
  EXPECT_FALSE(store.get(key, &blob));
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
}

TEST_F(StoreTest, GarbageHeaderDegradesToMiss) {
  Store store(root_.string());
  const std::string key = sha256_hex("garbage");
  fs::create_directories(entry_path(key).parent_path());
  std::ofstream(entry_path(key), std::ios::binary) << "not a qcache entry";

  std::string blob;
  EXPECT_FALSE(store.get(key, &blob));
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
}

TEST_F(StoreTest, GcEvictsOldestFirstAndSweepsDebris) {
  Store store(root_.string());
  const std::string old_key = sha256_hex("old");
  const std::string new_key = sha256_hex("new");
  ASSERT_TRUE(store.put(old_key, std::string(100, 'o')));
  ASSERT_TRUE(store.put(new_key, std::string(100, 'n')));
  // Pin distinct mtimes so the eviction order is not a timing accident.
  const auto now = fs::last_write_time(entry_path(new_key));
  fs::last_write_time(entry_path(old_key), now - std::chrono::hours(1));

  // Crash debris in tmp/ must be swept regardless of budget.
  std::ofstream(root_ / "tmp" / "stale.0", std::ios::binary) << "debris";

  // Budget fits one entry (~130 bytes with header): the old one goes.
  const Store::GcResult result = store.gc(200);
  EXPECT_EQ(result.scanned, 2u);
  EXPECT_EQ(result.evicted, 1u);
  EXPECT_FALSE(fs::exists(entry_path(old_key)));
  EXPECT_TRUE(fs::exists(entry_path(new_key)));
  EXPECT_FALSE(fs::exists(root_ / "tmp" / "stale.0"));
  EXPECT_LE(result.bytes_after, 200u);
  EXPECT_GT(result.bytes_before, result.bytes_after);

  // max_bytes == 0 empties the store.
  const Store::GcResult wipe = store.gc(0);
  EXPECT_EQ(wipe.evicted, 1u);
  EXPECT_EQ(wipe.bytes_after, 0u);
}

TEST_F(StoreTest, GcBreaksEqualMtimeTiesByPathLexicographically) {
  // Coarse filesystem timestamps routinely give a burst of puts identical
  // mtimes; without a secondary key, which entries survive a tight budget
  // would depend on directory iteration order. The contract: among equal
  // mtimes, lexicographically smaller entry paths are evicted first.
  Store store(root_.string());
  const std::vector<std::string> keys = {
      sha256_hex("tie-a"), sha256_hex("tie-b"), sha256_hex("tie-c"),
      sha256_hex("tie-d")};
  for (const std::string& key : keys) {
    ASSERT_TRUE(store.put(key, std::string(100, 'x')));
  }
  const auto stamp = fs::last_write_time(entry_path(keys[0]));
  for (const std::string& key : keys) {
    fs::last_write_time(entry_path(key), stamp);
  }

  std::vector<std::string> paths;
  for (const std::string& key : keys) {
    paths.push_back(entry_path(key).generic_string());
  }
  std::sort(paths.begin(), paths.end());
  const std::uintmax_t entry_bytes = fs::file_size(entry_path(keys[0]));

  // Budget fits exactly two entries: the two lexicographically smallest
  // paths must be the ones evicted, every time.
  const Store::GcResult result = store.gc(2 * entry_bytes);
  EXPECT_EQ(result.evicted, 2u);
  EXPECT_FALSE(fs::exists(paths[0]));
  EXPECT_FALSE(fs::exists(paths[1]));
  EXPECT_TRUE(fs::exists(paths[2]));
  EXPECT_TRUE(fs::exists(paths[3]));
}

TEST_F(StoreTest, GcRemovesCorruptEntries) {
  Store store(root_.string());
  const std::string key = sha256_hex("rot");
  ASSERT_TRUE(store.put(key, "fine"));
  {
    std::fstream f(entry_path(key), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('?');
  }
  const Store::GcResult result = store.gc(1u << 20);
  EXPECT_EQ(result.corrupt_removed, 1u);
  EXPECT_FALSE(fs::exists(entry_path(key)));
}

TEST_F(StoreTest, ExportsMetrics) {
  Store store(root_.string());
  const std::string key = sha256_hex("metrics");
  std::string blob;
  (void)store.get(key, &blob);
  ASSERT_TRUE(store.put(key, "x"));
  (void)store.get(key, &blob);

  obs::MetricsRegistry registry;
  store.export_metrics(registry);
  const std::string json = [&] {
    obs::JsonWriter writer;
    registry.write_json(writer);
    return writer.str();
  }();
  EXPECT_NE(json.find("cache.hits"), std::string::npos);
  EXPECT_NE(json.find("cache.misses"), std::string::npos);
}

// --------------------------------------------------------------------- DAG

Experiment make_experiment(std::string name, std::vector<std::string> deps) {
  Experiment e;
  e.name = std::move(name);
  e.deps = std::move(deps);
  e.produce = [n = e.name]() { return "blob:" + n; };
  return e;
}

TEST(ExperimentDag, AcceptsAForest) {
  std::vector<Experiment> experiments;
  experiments.push_back(make_experiment("a", {}));
  experiments.push_back(make_experiment("b", {"a"}));
  experiments.push_back(make_experiment("c", {"a", "b"}));
  std::string error;
  EXPECT_TRUE(validate_experiment_dag(experiments, &error)) << error;
}

TEST(ExperimentDag, NamesTheCycle) {
  std::vector<Experiment> experiments;
  experiments.push_back(make_experiment("a", {"c"}));
  experiments.push_back(make_experiment("b", {"a"}));
  experiments.push_back(make_experiment("c", {"b"}));
  std::string error;
  EXPECT_FALSE(validate_experiment_dag(experiments, &error));
  // The full walk, not just "cycle detected": a -> c -> b -> a (rotations
  // are fine, but every participant must be named).
  EXPECT_NE(error.find("cycle"), std::string::npos);
  EXPECT_NE(error.find("a"), std::string::npos);
  EXPECT_NE(error.find("b"), std::string::npos);
  EXPECT_NE(error.find("c"), std::string::npos);
  EXPECT_NE(error.find("->"), std::string::npos);

  DagRunner runner(nullptr, nullptr);
  EXPECT_THROW(runner.run(experiments, 2), std::invalid_argument);
}

TEST(ExperimentDag, RejectsSelfLoopDuplicateAndUnknown) {
  std::string error;
  std::vector<Experiment> self = {make_experiment("a", {"a"})};
  EXPECT_FALSE(validate_experiment_dag(self, &error));
  EXPECT_NE(error.find("a -> a"), std::string::npos);

  std::vector<Experiment> dup = {make_experiment("a", {}),
                                 make_experiment("a", {})};
  EXPECT_FALSE(validate_experiment_dag(dup, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);

  std::vector<Experiment> unknown = {make_experiment("a", {"ghost"})};
  EXPECT_FALSE(validate_experiment_dag(unknown, &error));
  EXPECT_NE(error.find("ghost"), std::string::npos);
}

TEST(ExperimentDag, RunsDependenciesBeforeDependents) {
  // b and c depend on a; d on both. Order within a wave is unspecified,
  // but every dep must have completed before its dependent starts.
  std::atomic<int> stamp{0};
  std::vector<int> done(4, -1);
  std::vector<Experiment> experiments;
  auto node = [&](std::string name, std::vector<std::string> deps,
                  std::size_t slot) {
    Experiment e;
    e.name = std::move(name);
    e.deps = std::move(deps);
    e.produce = [&done, &stamp, slot]() {
      done[slot] = stamp.fetch_add(1);
      return std::string("ok");
    };
    return e;
  };
  experiments.push_back(node("a", {}, 0));
  experiments.push_back(node("b", {"a"}, 1));
  experiments.push_back(node("c", {"a"}, 2));
  experiments.push_back(node("d", {"b", "c"}, 3));

  DagRunner runner(nullptr, nullptr);
  const std::vector<ExperimentResult> results = runner.run(experiments, 4);
  ASSERT_EQ(results.size(), 4u);
  for (const ExperimentResult& result : results) {
    EXPECT_TRUE(result.ok) << result.name << ": " << result.error;
  }
  EXPECT_LT(done[0], done[1]);
  EXPECT_LT(done[0], done[2]);
  EXPECT_LT(done[1], done[3]);
  EXPECT_LT(done[2], done[3]);
}

TEST(ExperimentDag, CacheHitSkipsProduceAndCountsMetrics) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "cache_test_dag_store";
  fs::remove_all(root);
  Store store(root.string());

  std::atomic<int> produced{0};
  auto experiment = [&] {
    Experiment e;
    e.name = "cached";
    e.key = sha256_hex("dag-cached-node");
    e.produce = [&produced]() {
      produced.fetch_add(1);
      return std::string("expensive result");
    };
    return e;
  };

  obs::MetricsRegistry cold_metrics;
  DagRunner cold(&store, &cold_metrics);
  std::vector<ExperimentResult> first = cold.run({experiment()}, 1);
  ASSERT_TRUE(first[0].ok);
  EXPECT_FALSE(first[0].from_cache);
  EXPECT_EQ(produced.load(), 1);

  obs::MetricsRegistry warm_metrics;
  DagRunner warm(&store, &warm_metrics);
  std::vector<ExperimentResult> second = warm.run({experiment()}, 1);
  ASSERT_TRUE(second[0].ok);
  EXPECT_TRUE(second[0].from_cache);
  EXPECT_EQ(second[0].blob, "expensive result");
  EXPECT_EQ(produced.load(), 1);  // produce never re-ran

  const std::string json = [&] {
    obs::JsonWriter writer;
    warm_metrics.write_json(writer);
    return writer.str();
  }();
  EXPECT_NE(json.find("dag.cache_hits"), std::string::npos);
  fs::remove_all(root);
}

TEST(ExperimentDag, FailedDependencyPoisonsDependents) {
  std::vector<Experiment> experiments;
  Experiment boom;
  boom.name = "boom";
  boom.produce = []() -> std::string {
    throw std::runtime_error("exploded on purpose");
  };
  experiments.push_back(std::move(boom));
  experiments.push_back(make_experiment("downstream", {"boom"}));
  experiments.push_back(make_experiment("unrelated", {}));

  DagRunner runner(nullptr, nullptr);
  const std::vector<ExperimentResult> results = runner.run(experiments, 2);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("exploded"), std::string::npos);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("boom"), std::string::npos);
  EXPECT_TRUE(results[2].ok);  // failure never leaks across the DAG
}

}  // namespace
}  // namespace qcongest::cache

// ------------------------------------------------------- qcongestd job key

namespace qcongest::serve {
namespace {

JobSpec basic_spec() {
  JobSpec spec;
  spec.id = "job-1";
  spec.app = "bfs";
  spec.graph = "tree";
  spec.nodes = 12;
  spec.seed = 7;
  spec.threads = 1;
  return spec;
}

TEST(JobCacheKey, IdAndThreadsNeverAffectTheKey) {
  // The reply body is a pure function of the semantic spec; the client's
  // reply token and the engine thread budget must share one entry.
  JobSpec a = basic_spec();
  JobSpec b = basic_spec();
  b.id = "completely-different";
  b.threads = 8;
  EXPECT_EQ(job_cache_key(a, 1000, "salt"), job_cache_key(b, 1000, "salt"));
}

TEST(JobCacheKey, SemanticFieldsAllChangeTheKey) {
  const JobSpec base = basic_spec();
  const std::string key = job_cache_key(base, 1000, "salt");

  JobSpec seed = base;
  seed.seed = 8;
  EXPECT_NE(job_cache_key(seed, 1000, "salt"), key);

  JobSpec app = base;
  app.app = "leader";
  EXPECT_NE(job_cache_key(app, 1000, "salt"), key);

  JobSpec drop = base;
  drop.drop = 0.05;
  EXPECT_NE(job_cache_key(drop, 1000, "salt"), key);

  JobSpec crash = base;
  crash.crashes.push_back(JobSpec::Crash{3, 30, 60, false});
  EXPECT_NE(job_cache_key(crash, 1000, "salt"), key);

  EXPECT_NE(job_cache_key(base, 1000, "other-salt"), key);
  EXPECT_NE(job_cache_key(base, 2000, "salt"), key);  // effective deadline
}

TEST(JobCacheKey, EffectiveValuesCollapseEquivalentSpecs) {
  // An explicit deadline equal to the server default, and an explicit
  // fault_seed equal to the seed*1000 convention, are the same job.
  JobSpec defaulted = basic_spec();
  JobSpec explicit_spec = basic_spec();
  explicit_spec.deadline_rounds = 1000;
  explicit_spec.fault_seed = 7000;
  explicit_spec.fault_seed_set = true;
  EXPECT_EQ(job_cache_key(defaulted, 1000, "salt"),
            job_cache_key(explicit_spec, 1000, "salt"));

  // ...but a genuinely different fault lottery is a different job.
  JobSpec other_lottery = basic_spec();
  other_lottery.fault_seed = 1234;
  other_lottery.fault_seed_set = true;
  EXPECT_NE(job_cache_key(other_lottery, 1000, "salt"),
            job_cache_key(defaulted, 1000, "salt"));
}

}  // namespace
}  // namespace qcongest::serve
