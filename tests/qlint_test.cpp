#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/check/lint.hpp"

namespace qcongest::check {
namespace {

std::vector<std::string> rules_of(const std::vector<LintDiagnostic>& diagnostics) {
  std::vector<std::string> rules;
  for (const auto& d : diagnostics) rules.push_back(d.rule);
  return rules;
}

bool flags(const std::vector<LintDiagnostic>& diagnostics, const std::string& rule) {
  auto rules = rules_of(diagnostics);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// --- banned-random -----------------------------------------------------------

TEST(Qlint, FlagsRandOutsideUtil) {
  auto d = lint_source("src/query/foo.cpp", "int x = rand() % 6;\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "banned-random");
  EXPECT_EQ(d[0].line, 1u);
}

TEST(Qlint, FlagsRandomDeviceAndSrand) {
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", "std::random_device rd;\n"),
                    "banned-random"));
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", "srand(42);\n"), "banned-random"));
}

TEST(Qlint, AllowsRandInsideUtil) {
  EXPECT_TRUE(lint_source("src/util/rng.cpp", "std::random_device rd;\n").empty());
}

TEST(Qlint, IgnoresRandInCommentsAndStrings) {
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "// rand() would be bad here\n").empty());
  EXPECT_TRUE(lint_source("src/net/foo.cpp",
                          "const char* s = \"rand() is banned\";\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/net/foo.cpp",
                          "/* std::random_device is\n   banned */ int x;\n")
                  .empty());
}

TEST(Qlint, WholeWordMatchOnly) {
  // `operand()` and `my_rand()` must not be mistaken for rand().
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "auto v = operand();\n").empty());
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "auto v = my_rand();\n").empty());
}

// --- raw-thread --------------------------------------------------------------

TEST(Qlint, FlagsRawThreadOutsidePool) {
  auto d = lint_source("src/net/engine.cpp", "std::thread worker(loop);\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "raw-thread");
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", "auto f = std::async(job);\n"),
                    "raw-thread"));
  EXPECT_TRUE(flags(lint_source("tools/foo.cpp", "std::jthread t(loop);\n"),
                    "raw-thread"));
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", "worker.detach();\n"),
                    "raw-thread"));
}

TEST(Qlint, AllowsThreadsInsideThreadPool) {
  EXPECT_TRUE(
      lint_source("src/util/thread_pool.cpp", "std::thread worker(loop);\n").empty());
}

TEST(Qlint, ThreadMentionsThatSpawnNothingClean) {
  // Nested-name uses and comments read thread identity; they start nothing.
  EXPECT_TRUE(
      lint_source("src/net/foo.cpp", "std::thread::id tid = owner_;\n").empty());
  EXPECT_TRUE(
      lint_source("src/net/foo.cpp", "// std::thread is banned here\n").empty());
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "my_threads.at(0);\n").empty());
}

TEST(Qlint, RawThreadInlineSuppression) {
  EXPECT_TRUE(lint_source("src/net/foo.cpp",
                          "std::thread t(f);  // qlint-allow(raw-thread): fixture\n")
                  .empty());
}

// --- unordered-iter ----------------------------------------------------------

TEST(Qlint, FlagsRangeForOverUnorderedMap) {
  std::string source =
      "std::unordered_map<int, int> counts;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : counts) {}\n"
      "}\n";
  auto d = lint_source("src/net/foo.cpp", source);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "unordered-iter");
  EXPECT_EQ(d[0].line, 3u);
}

TEST(Qlint, FlagsBeginOnUnorderedSet) {
  std::string source =
      "std::unordered_set<int> seen;\n"
      "auto it = seen.begin();\n";
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", source), "unordered-iter"));
}

TEST(Qlint, OrderedMapIterationClean) {
  std::string source =
      "std::map<int, int> counts;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : counts) {}\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, MembershipOnlyUseOfUnorderedClean) {
  std::string source =
      "std::unordered_set<int> seen;\n"
      "bool f(int x) { return seen.count(x) > 0; }\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, HeaderMemberNamesCarryIntoImplementation) {
  // The member is declared in the header; the iteration lives in the .cpp.
  auto names = collect_unordered_names("std::unordered_map<K, V> amplitudes_;\n");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "amplitudes_");
  std::string impl = "for (const auto& [b, a] : amplitudes_) {}\n";
  EXPECT_TRUE(lint_source("src/quantum/foo.cpp", impl).empty());
  EXPECT_TRUE(flags(lint_source("src/quantum/foo.cpp", impl, {}, names),
                    "unordered-iter"));
}

// --- float-equal -------------------------------------------------------------

TEST(Qlint, FlagsFloatEqualityInQuantumCode) {
  auto d = lint_source("src/quantum/foo.cpp", "if (norm == 1.0) {}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "float-equal");
}

TEST(Qlint, FlagsFloatInequalityInQueryCode) {
  EXPECT_TRUE(flags(lint_source("src/query/foo.cpp", "if (eps != 0.5) {}\n"),
                    "float-equal"));
}

TEST(Qlint, FloatComparisonOutsideQuantumScopeClean) {
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "if (rate == 0.0) {}\n").empty());
}

TEST(Qlint, FloatToleranceComparisonClean) {
  EXPECT_TRUE(
      lint_source("src/quantum/foo.cpp", "if (std::abs(norm - 1.0) <= 1e-9) {}\n")
          .empty());
  EXPECT_TRUE(lint_source("src/quantum/foo.cpp", "if (count == 10) {}\n").empty());
}

// --- runresult-discard -------------------------------------------------------

TEST(Qlint, FlagsDiscardedPhaseCall) {
  auto d = lint_source("src/framework/foo.cpp",
                       "void f(net::Engine& e) {\n"
                       "  distribute_state(e, state);\n"
                       "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "runresult-discard");
  EXPECT_EQ(d[0].line, 2u);
}

TEST(Qlint, AccumulatedPhaseCallClean) {
  EXPECT_TRUE(lint_source("src/framework/foo.cpp",
                          "void f(net::Engine& e) {\n"
                          "  auto cost = distribute_state(e, state);\n"
                          "  total += zero_reflection(e, state);\n"
                          "}\n")
                  .empty());
}

TEST(Qlint, ContinuationLineOfAssignmentClean) {
  // The call starts a line but not a statement: it is the RHS of an
  // assignment broken across lines.
  EXPECT_TRUE(lint_source("src/framework/foo.cpp",
                          "void f(net::Engine& e) {\n"
                          "  net::RunResult cost =\n"
                          "      net::pipelined_convergecast(e, depth);\n"
                          "}\n")
                  .empty());
}

TEST(Qlint, PhaseCallOutsideFrameworkClean) {
  EXPECT_TRUE(
      lint_source("src/apps/foo.cpp", "  distribute_state(e, state);\n").empty());
}

// --- unsnapshotted-state -----------------------------------------------------

TEST(Qlint, FlagsUncoveredMemberOfRecoverableProgram) {
  std::string source =
      "class Counter final : public NodeProgram {\n"
      " public:\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    words = {sum_};\n"
      "    return true;\n"
      "  }\n"
      "  bool restore(std::uint32_t v, std::span<const std::int64_t> words) override {\n"
      "    sum_ = words[0];\n"
      "    return true;\n"
      "  }\n"
      " private:\n"
      "  std::int64_t sum_ = 0;\n"
      "  std::size_t forgotten_ = 0;\n"
      "};\n";
  auto d = lint_source("src/net/foo.cpp", source);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "unsnapshotted-state");
  EXPECT_EQ(d[0].line, 13u);
  EXPECT_NE(d[0].message.find("forgotten_"), std::string::npos);
}

TEST(Qlint, CoveredMembersOfRecoverableProgramClean) {
  std::string source =
      "class Counter final : public net::NodeProgram {\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    words = {sum_, static_cast<std::int64_t>(steps_)};\n"
      "    return true;\n"
      "  }\n"
      "  std::int64_t sum_ = 0;\n"
      "  std::size_t steps_ = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, NonRecoverableProgramIsExemptFromSnapshotCoverage) {
  // Not overriding snapshot() means crash-stop semantics: nothing to cover.
  std::string source =
      "class Flooder final : public NodeProgram {\n"
      "  void on_round(Context& ctx, const std::vector<Message>& inbox) override;\n"
      "  std::size_t words_ = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, PointerConstAndStaticMembersAreExempt) {
  // Pointers are rewired and const members rebuilt by the program factory;
  // neither is node state a checkpoint could (or should) carry.
  std::string source =
      "class P final : public NodeProgram {\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    words = {sum_};\n"
      "    return true;\n"
      "  }\n"
      "  std::int64_t sum_ = 0;\n"
      "  const Graph* graph_ = nullptr;\n"
      "  const std::size_t limit_ = 8;\n"
      "  static std::size_t instances_;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, ForwardingAdapterIsExemptFromSnapshotCoverage) {
  // A transport adapter delegates snapshot() to the wrapped program; its
  // own members are link state that deliberately survives an amnesia wipe.
  std::string source =
      "class Adapter final : public NodeProgram {\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    return inner_->snapshot(words);\n"
      "  }\n"
      "  std::size_t next_round_ = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, UnsnapshottedStateInlineSuppression) {
  std::string source =
      "class C final : public NodeProgram {\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    words = {sum_};\n"
      "    return true;\n"
      "  }\n"
      "  std::int64_t sum_ = 0;\n"
      "  std::size_t rounds_ = 0;  // qlint-allow(unsnapshotted-state): config\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, PlainNodeProgramUsesAreNotABaseClause) {
  // Mentioning the type is not deriving from it: factories, containers, and
  // the base class definition itself must stay exempt.
  std::string source =
      "class NodeProgram {\n"
      "  virtual bool snapshot(std::vector<std::int64_t>& words) const {\n"
      "    return false;\n"
      "  }\n"
      "};\n"
      "std::vector<std::unique_ptr<NodeProgram>> programs_;\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

// --- suppression -------------------------------------------------------------

TEST(Qlint, InlineSuppressionSilencesRule) {
  EXPECT_TRUE(lint_source("src/net/foo.cpp",
                          "srand(42);  // qlint-allow(banned-random): fixture\n")
                  .empty());
  // Suppressing a different rule does not help.
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp",
                                "srand(42);  // qlint-allow(float-equal): wrong\n"),
                    "banned-random"));
}

TEST(Qlint, AllowlistByRuleAndPath) {
  LintConfig config;
  config.allow.push_back("banned-random:src/net/legacy");
  EXPECT_TRUE(lint_source("src/net/legacy_seed.cpp", "srand(42);\n", config).empty());
  EXPECT_TRUE(
      flags(lint_source("src/net/other.cpp", "srand(42);\n", config), "banned-random"));
}

TEST(Qlint, AllowlistWildcardAndLineNeedle) {
  LintConfig wildcard;
  wildcard.allow.push_back("*:src/net/foo.cpp");
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "srand(42);\n", wildcard).empty());

  LintConfig needle;
  needle.allow.push_back("banned-random:src/net:srand(42)");
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "srand(42);\n", needle).empty());
  EXPECT_TRUE(
      flags(lint_source("src/net/foo.cpp", "srand(7);\n", needle), "banned-random"));
}

TEST(Qlint, LoadAllowlistParsesEntriesAndComments) {
  std::string path = testing::TempDir() + "qlint_allow_test.txt";
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "\n";
    out << "banned-random:src/net/legacy\n";
    out << "  unordered-iter:src/query  # trailing comment\n";
  }
  LintConfig config = load_allowlist(path);
  ASSERT_EQ(config.allow.size(), 2u);
  EXPECT_EQ(config.allow[0], "banned-random:src/net/legacy");
  EXPECT_EQ(config.allow[1], "unordered-iter:src/query");
  std::remove(path.c_str());
}

// --- repo gate ---------------------------------------------------------------

TEST(Qlint, RepoSourceTreeIsClean) {
  // The same gate CI runs: the shipped tree must lint clean with the shipped
  // allowlist.
  std::string root = std::string(QCONGEST_SOURCE_DIR) + "/src";
  std::ifstream probe(root + "/check/lint.hpp");
  if (!probe.good()) GTEST_SKIP() << "source tree not present at " << root;
  LintResult result = lint_tree(root);
  std::string all;
  for (const auto& d : result.diagnostics) all += d.to_string() + "\n";
  EXPECT_TRUE(result.diagnostics.empty()) << all;
  EXPECT_GT(result.files_scanned, 50u);
}

}  // namespace
}  // namespace qcongest::check
