#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/check/lint.hpp"
#include "src/check/sarif.hpp"
#include "src/obs/json.hpp"

namespace qcongest::check {
namespace {

std::vector<std::string> rules_of(const std::vector<LintDiagnostic>& diagnostics) {
  std::vector<std::string> rules;
  for (const auto& d : diagnostics) rules.push_back(d.rule);
  return rules;
}

bool flags(const std::vector<LintDiagnostic>& diagnostics, const std::string& rule) {
  auto rules = rules_of(diagnostics);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// --- banned-random -----------------------------------------------------------

TEST(Qlint, FlagsRandOutsideUtil) {
  auto d = lint_source("src/query/foo.cpp", "int x = rand() % 6;\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "banned-random");
  EXPECT_EQ(d[0].line, 1u);
}

TEST(Qlint, FlagsRandomDeviceAndSrand) {
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", "std::random_device rd;\n"),
                    "banned-random"));
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", "srand(42);\n"), "banned-random"));
}

TEST(Qlint, AllowsRandInsideUtil) {
  EXPECT_TRUE(lint_source("src/util/rng.cpp", "std::random_device rd;\n").empty());
}

TEST(Qlint, IgnoresRandInCommentsAndStrings) {
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "// rand() would be bad here\n").empty());
  EXPECT_TRUE(lint_source("src/net/foo.cpp",
                          "const char* s = \"rand() is banned\";\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/net/foo.cpp",
                          "/* std::random_device is\n   banned */ int x;\n")
                  .empty());
}

TEST(Qlint, WholeWordMatchOnly) {
  // `operand()` and `my_rand()` must not be mistaken for rand().
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "auto v = operand();\n").empty());
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "auto v = my_rand();\n").empty());
}

// --- raw-thread --------------------------------------------------------------

TEST(Qlint, FlagsRawThreadOutsidePool) {
  auto d = lint_source("src/net/engine.cpp", "std::thread worker(loop);\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "raw-thread");
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", "auto f = std::async(job);\n"),
                    "raw-thread"));
  EXPECT_TRUE(flags(lint_source("tools/foo.cpp", "std::jthread t(loop);\n"),
                    "raw-thread"));
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", "worker.detach();\n"),
                    "raw-thread"));
}

TEST(Qlint, AllowsThreadsInsideThreadPool) {
  EXPECT_TRUE(
      lint_source("src/util/thread_pool.cpp", "std::thread worker(loop);\n").empty());
}

TEST(Qlint, ThreadMentionsThatSpawnNothingClean) {
  // Nested-name uses and comments read thread identity; they start nothing.
  EXPECT_TRUE(
      lint_source("src/net/foo.cpp", "std::thread::id tid = owner_;\n").empty());
  EXPECT_TRUE(
      lint_source("src/net/foo.cpp", "// std::thread is banned here\n").empty());
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "my_threads.at(0);\n").empty());
}

TEST(Qlint, RawThreadInlineSuppression) {
  EXPECT_TRUE(lint_source("src/net/foo.cpp",
                          "std::thread t(f);  // qlint-allow(raw-thread): fixture\n")
                  .empty());
}

// --- unordered-iter ----------------------------------------------------------

TEST(Qlint, FlagsRangeForOverUnorderedMap) {
  std::string source =
      "std::unordered_map<int, int> counts;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : counts) {}\n"
      "}\n";
  auto d = lint_source("src/net/foo.cpp", source);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "unordered-iter");
  EXPECT_EQ(d[0].line, 3u);
}

TEST(Qlint, FlagsBeginOnUnorderedSet) {
  std::string source =
      "std::unordered_set<int> seen;\n"
      "auto it = seen.begin();\n";
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", source), "unordered-iter"));
}

TEST(Qlint, OrderedMapIterationClean) {
  std::string source =
      "std::map<int, int> counts;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : counts) {}\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, MembershipOnlyUseOfUnorderedClean) {
  std::string source =
      "std::unordered_set<int> seen;\n"
      "bool f(int x) { return seen.count(x) > 0; }\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, HeaderMemberNamesCarryIntoImplementation) {
  // The member is declared in the header; the iteration lives in the .cpp.
  auto names = collect_unordered_names("std::unordered_map<K, V> amplitudes_;\n");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "amplitudes_");
  std::string impl = "for (const auto& [b, a] : amplitudes_) {}\n";
  EXPECT_TRUE(lint_source("src/quantum/foo.cpp", impl).empty());
  EXPECT_TRUE(flags(lint_source("src/quantum/foo.cpp", impl, {}, names),
                    "unordered-iter"));
}

// --- float-equal -------------------------------------------------------------

TEST(Qlint, FlagsFloatEqualityInQuantumCode) {
  auto d = lint_source("src/quantum/foo.cpp", "if (norm == 1.0) {}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "float-equal");
}

TEST(Qlint, FlagsFloatInequalityInQueryCode) {
  EXPECT_TRUE(flags(lint_source("src/query/foo.cpp", "if (eps != 0.5) {}\n"),
                    "float-equal"));
}

TEST(Qlint, FloatComparisonOutsideQuantumScopeClean) {
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "if (rate == 0.0) {}\n").empty());
}

TEST(Qlint, FloatToleranceComparisonClean) {
  EXPECT_TRUE(
      lint_source("src/quantum/foo.cpp", "if (std::abs(norm - 1.0) <= 1e-9) {}\n")
          .empty());
  EXPECT_TRUE(lint_source("src/quantum/foo.cpp", "if (count == 10) {}\n").empty());
}

// --- runresult-discard -------------------------------------------------------

TEST(Qlint, FlagsDiscardedPhaseCall) {
  auto d = lint_source("src/framework/foo.cpp",
                       "void f(net::Engine& e) {\n"
                       "  distribute_state(e, state);\n"
                       "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "runresult-discard");
  EXPECT_EQ(d[0].line, 2u);
}

TEST(Qlint, AccumulatedPhaseCallClean) {
  EXPECT_TRUE(lint_source("src/framework/foo.cpp",
                          "void f(net::Engine& e) {\n"
                          "  auto cost = distribute_state(e, state);\n"
                          "  total += zero_reflection(e, state);\n"
                          "}\n")
                  .empty());
}

TEST(Qlint, ContinuationLineOfAssignmentClean) {
  // The call starts a line but not a statement: it is the RHS of an
  // assignment broken across lines.
  EXPECT_TRUE(lint_source("src/framework/foo.cpp",
                          "void f(net::Engine& e) {\n"
                          "  net::RunResult cost =\n"
                          "      net::pipelined_convergecast(e, depth);\n"
                          "}\n")
                  .empty());
}

TEST(Qlint, PhaseCallOutsideFrameworkClean) {
  EXPECT_TRUE(
      lint_source("src/apps/foo.cpp", "  distribute_state(e, state);\n").empty());
}

// --- unsnapshotted-state -----------------------------------------------------

TEST(Qlint, FlagsUncoveredMemberOfRecoverableProgram) {
  std::string source =
      "class Counter final : public NodeProgram {\n"
      " public:\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    words = {sum_};\n"
      "    return true;\n"
      "  }\n"
      "  bool restore(std::uint32_t v, std::span<const std::int64_t> words) override {\n"
      "    sum_ = words[0];\n"
      "    return true;\n"
      "  }\n"
      " private:\n"
      "  std::int64_t sum_ = 0;\n"
      "  std::size_t forgotten_ = 0;\n"
      "};\n";
  auto d = lint_source("src/net/foo.cpp", source);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "unsnapshotted-state");
  EXPECT_EQ(d[0].line, 13u);
  EXPECT_NE(d[0].message.find("forgotten_"), std::string::npos);
}

TEST(Qlint, CoveredMembersOfRecoverableProgramClean) {
  std::string source =
      "class Counter final : public net::NodeProgram {\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    words = {sum_, static_cast<std::int64_t>(steps_)};\n"
      "    return true;\n"
      "  }\n"
      "  std::int64_t sum_ = 0;\n"
      "  std::size_t steps_ = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, NonRecoverableProgramIsExemptFromSnapshotCoverage) {
  // Not overriding snapshot() means crash-stop semantics: nothing to cover.
  std::string source =
      "class Flooder final : public NodeProgram {\n"
      "  void on_round(Context& ctx, const std::vector<Message>& inbox) override;\n"
      "  std::size_t words_ = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, PointerConstAndStaticMembersAreExempt) {
  // Pointers are rewired and const members rebuilt by the program factory;
  // neither is node state a checkpoint could (or should) carry.
  std::string source =
      "class P final : public NodeProgram {\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    words = {sum_};\n"
      "    return true;\n"
      "  }\n"
      "  std::int64_t sum_ = 0;\n"
      "  const Graph* graph_ = nullptr;\n"
      "  const std::size_t limit_ = 8;\n"
      "  static std::size_t instances_;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, ForwardingAdapterIsExemptFromSnapshotCoverage) {
  // A transport adapter delegates snapshot() to the wrapped program; its
  // own members are link state that deliberately survives an amnesia wipe.
  std::string source =
      "class Adapter final : public NodeProgram {\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    return inner_->snapshot(words);\n"
      "  }\n"
      "  std::size_t next_round_ = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, UnsnapshottedStateInlineSuppression) {
  std::string source =
      "class C final : public NodeProgram {\n"
      "  bool snapshot(std::vector<std::int64_t>& words) const override {\n"
      "    words = {sum_};\n"
      "    return true;\n"
      "  }\n"
      "  std::int64_t sum_ = 0;\n"
      "  std::size_t rounds_ = 0;  // qlint-allow(unsnapshotted-state): config\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(Qlint, PlainNodeProgramUsesAreNotABaseClause) {
  // Mentioning the type is not deriving from it: factories, containers, and
  // the base class definition itself must stay exempt.
  std::string source =
      "class NodeProgram {\n"
      "  virtual bool snapshot(std::vector<std::int64_t>& words) const {\n"
      "    return false;\n"
      "  }\n"
      "};\n"
      "std::vector<std::unique_ptr<NodeProgram>> programs_;\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

// --- suppression -------------------------------------------------------------

TEST(Qlint, InlineSuppressionSilencesRule) {
  EXPECT_TRUE(lint_source("src/net/foo.cpp",
                          "srand(42);  // qlint-allow(banned-random): fixture\n")
                  .empty());
  // Suppressing a different rule does not help.
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp",
                                "srand(42);  // qlint-allow(float-equal): wrong\n"),
                    "banned-random"));
}

TEST(Qlint, AllowlistByRuleAndPath) {
  LintConfig config;
  config.allow.push_back("banned-random:src/net/legacy");
  EXPECT_TRUE(lint_source("src/net/legacy_seed.cpp", "srand(42);\n", config).empty());
  EXPECT_TRUE(
      flags(lint_source("src/net/other.cpp", "srand(42);\n", config), "banned-random"));
}

TEST(Qlint, AllowlistWildcardAndLineNeedle) {
  LintConfig wildcard;
  wildcard.allow.push_back("*:src/net/foo.cpp");
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "srand(42);\n", wildcard).empty());

  LintConfig needle;
  needle.allow.push_back("banned-random:src/net:srand(42)");
  EXPECT_TRUE(lint_source("src/net/foo.cpp", "srand(42);\n", needle).empty());
  EXPECT_TRUE(
      flags(lint_source("src/net/foo.cpp", "srand(7);\n", needle), "banned-random"));
}

TEST(Qlint, LoadAllowlistParsesEntriesAndComments) {
  std::string path = testing::TempDir() + "qlint_allow_test.txt";
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "\n";
    out << "banned-random:src/net/legacy  # seed corpus predates util::Rng\n";
    out << "  unordered-iter:src/query  # sorted before use\n";
  }
  LintConfig config = load_allowlist(path);
  ASSERT_EQ(config.allow.size(), 2u);
  EXPECT_EQ(config.allow[0], "banned-random:src/net/legacy");
  EXPECT_EQ(config.allow[1], "unordered-iter:src/query");
  std::remove(path.c_str());
}

TEST(Qlint, LoadAllowlistRejectsEntryWithoutReason) {
  // Every suppression is a debt note: an entry with no trailing `# reason`
  // is a configuration error, not a silent wildcard.
  std::string path = testing::TempDir() + "qlint_allow_noreason.txt";
  {
    std::ofstream out(path);
    out << "banned-random:src/net/legacy\n";
  }
  EXPECT_THROW(load_allowlist(path), std::invalid_argument);
  {
    std::ofstream out(path);
    out << "banned-random:src/net/legacy  #\n";  // empty reason is no reason
  }
  EXPECT_THROW(load_allowlist(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Qlint, InlineSuppressionWithoutReasonDoesNotSuppress) {
  auto d = lint_source("src/net/foo.cpp", "srand(42);  // qlint-allow(banned-random)\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "banned-random");
  EXPECT_NE(d[0].message.find("without ': reason'"), std::string::npos);
}

// --- tokenizer regressions ---------------------------------------------------
// Each of these reproduces a misfire of the old line-regex engine; the token
// stream must get them right.

TEST(QlintRegression, RawStringContentsCannotTriggerRules) {
  // Old engine: strip_noise did not understand raw-string delimiters, so the
  // inner quote "closed" the string and exposed rand() — a false positive.
  std::string source =
      "const char* kDoc = R\"doc(the \" quote exposes rand() here)doc\";\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(QlintRegression, StringSplicedAcrossLinesCannotTriggerRules) {
  // Old engine: in_string state was per-line, so the continuation line of a
  // backslash-newline string was scanned as code and std::thread flagged —
  // a false positive.
  std::string source =
      "const char* kMsg = \"never use \\\nstd::thread in this repo\";\n";
  EXPECT_TRUE(lint_source("src/net/foo.cpp", source).empty());
}

TEST(QlintRegression, MultiLineUnorderedDeclarationIsCollected) {
  // Old engine: collect_unordered_names only matched single-line
  // declarations, so a wrapped declaration escaped the iteration check —
  // a false negative.
  std::string source =
      "std::unordered_map<std::string,\n"
      "                   std::vector<int>> table_;\n"
      "void f() {\n"
      "  for (const auto& e : table_) {}\n"
      "}\n";
  auto names = collect_unordered_names(source);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "table_");
  EXPECT_TRUE(flags(lint_source("src/net/foo.cpp", source), "unordered-iter"));
}

TEST(QlintRegression, LeadingDotFloatLiteralIsCaught) {
  // Old engine: the float-literal regex required a leading digit, so
  // `x == .5` slipped through — a false negative.
  EXPECT_TRUE(flags(lint_source("src/quantum/foo.cpp", "if (x == .5) {}\n"),
                    "float-equal"));
}

// --- cross-TU symbol index ---------------------------------------------------

TEST(QlintSymbolIndex, NamesFlowAlongIncludeEdgesTransitively) {
  SymbolIndex index;
  index.add_file("src/net/graph.hpp", "std::unordered_map<int, int> adj_;\n");
  index.add_file("src/net/engine.hpp", "#include \"src/net/graph.hpp\"\n");
  index.add_file("src/net/engine.cpp", "#include \"src/net/engine.hpp\"\n");
  auto names = index.unordered_names_for("src/net/engine.cpp");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "adj_");
  // No include edge, no visibility: the old heuristic leaked every sibling
  // header's members into unrelated files; the index does not.
  EXPECT_TRUE(index.unordered_names_for("src/net/unrelated.cpp").empty());
}

TEST(QlintSymbolIndex, ResolvesIncludeBySuffixUnderAbsoluteRoots) {
  SymbolIndex index;
  index.add_file("/abs/checkout/src/net/graph.hpp",
                 "std::unordered_set<int> seen_;\n");
  index.add_file("/abs/checkout/src/net/engine.cpp",
                 "#include \"src/net/graph.hpp\"\n");
  auto names = index.unordered_names_for("/abs/checkout/src/net/engine.cpp");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "seen_");
}

TEST(QlintSymbolIndex, CollectIncludesSkipsAngleBrackets) {
  auto includes = collect_includes(
      "#include <vector>\n"
      "#include \"src/net/graph.hpp\"\n"
      "#include \"src/util/rng.hpp\"  // comment\n");
  ASSERT_EQ(includes.size(), 2u);
  EXPECT_EQ(includes[0], "src/net/graph.hpp");
  EXPECT_EQ(includes[1], "src/util/rng.hpp");
}

// --- reactor-blocking-call ---------------------------------------------------

TEST(QlintReactor, FlagsSleepInReactorTranslationUnit) {
  auto d = lint_source(
      "src/serve/server.cpp",
      "void Server::poll_once() {\n"
      "  std::this_thread::sleep_for(std::chrono::milliseconds(10));\n"
      "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "reactor-blocking-call");
  EXPECT_EQ(d[0].line, 2u);
}

TEST(QlintReactor, FlagsJoinAndWaitInReactor) {
  EXPECT_TRUE(flags(lint_source("src/serve/server.cpp", "worker.join();\n"),
                    "reactor-blocking-call"));
  EXPECT_TRUE(flags(lint_source("tools/qcongestd.cpp", "future.wait();\n"),
                    "reactor-blocking-call"));
  EXPECT_TRUE(flags(lint_source("src/serve/server.cpp", "pool->parallel_for(n, f);\n"),
                    "reactor-blocking-call"));
}

TEST(QlintReactor, SleepOutsideReactorScopeClean) {
  // qload is a client: it may sleep between retries. Only the reactor
  // translation units are gated.
  EXPECT_TRUE(lint_source("tools/qload.cpp",
                          "std::this_thread::sleep_for(delay);\n")
                  .empty());
  EXPECT_TRUE(
      lint_source("src/serve/service.cpp", "worker.join();\n").empty());
}

// --- lock-across-submit ------------------------------------------------------

TEST(QlintLock, FlagsSubmitUnderLockGuard) {
  auto d = lint_source(
      "src/serve/service.cpp",
      "void f() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  pool_->submit(task);\n"
      "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "lock-across-submit");
  EXPECT_EQ(d[0].line, 3u);
}

TEST(QlintLock, SubmitAfterGuardScopeClosesClean) {
  EXPECT_TRUE(lint_source("src/serve/service.cpp",
                          "void f() {\n"
                          "  {\n"
                          "    std::lock_guard<std::mutex> lock(mutex_);\n"
                          "    ++depth_;\n"
                          "  }\n"
                          "  pool_->submit(task);\n"
                          "}\n")
                  .empty());
}

TEST(QlintLock, SubmitAfterExplicitUnlockClean) {
  EXPECT_TRUE(lint_source("src/serve/service.cpp",
                          "void f() {\n"
                          "  std::unique_lock<std::mutex> lock(mutex_);\n"
                          "  ++depth_;\n"
                          "  lock.unlock();\n"
                          "  pool_->submit(task);\n"
                          "}\n")
                  .empty());
}

TEST(QlintLock, FlagsWaitOnForeignLockWhileSecondGuardHeld) {
  auto d = lint_source(
      "src/util/foo.cpp",
      "void f() {\n"
      "  std::unique_lock<std::mutex> a(m1_);\n"
      "  std::lock_guard<std::mutex> b(m2_);\n"
      "  cv_.wait(a, [&] { return ready_; });\n"
      "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "lock-across-submit");
  EXPECT_EQ(d[0].line, 4u);
}

TEST(QlintLock, WaitOnItsOwnLockClean) {
  // The canonical worker-loop shape: the wait releases exactly the lock it
  // is handed, and no other guard is held.
  EXPECT_TRUE(lint_source("src/util/foo.cpp",
                          "void f() {\n"
                          "  std::unique_lock<std::mutex> lock(mutex_);\n"
                          "  cv_.wait(lock, [&] { return !tasks_.empty(); });\n"
                          "}\n")
                  .empty());
}

// --- untrusted-narrowing -----------------------------------------------------

TEST(QlintNarrowing, FlagsUncheckedNarrowingCastOfWireValue) {
  auto d = lint_source("src/serve/foo.cpp",
                       "void f(const std::uint8_t* p) {\n"
                       "  std::uint64_t v = get_u32(p);\n"
                       "  int t = static_cast<int>(v);\n"
                       "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "untrusted-narrowing");
  EXPECT_EQ(d[0].line, 3u);
}

TEST(QlintNarrowing, BoundCheckBeforeCastClean) {
  EXPECT_TRUE(lint_source("src/serve/foo.cpp",
                          "void f(const std::uint8_t* p) {\n"
                          "  std::uint64_t v = get_u32(p);\n"
                          "  if (v > kMaxTimeout) return;\n"
                          "  int t = static_cast<int>(v);\n"
                          "}\n")
                  .empty());
}

TEST(QlintNarrowing, FlagsUncheckedArithmeticOnWireLength) {
  auto d = lint_source("src/serve/foo.cpp",
                       "void f(const std::uint8_t* h) {\n"
                       "  std::size_t length = get_u32(h + 4);\n"
                       "  need_ = kHeaderBytes + length;\n"
                       "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "untrusted-narrowing");
  EXPECT_EQ(d[0].line, 3u);
}

TEST(QlintNarrowing, BoundCheckedLengthArithmeticClean) {
  // The FrameReader shape: reject oversized lengths first, then size things.
  EXPECT_TRUE(lint_source("src/serve/foo.cpp",
                          "void f(const std::uint8_t* h) {\n"
                          "  std::size_t length = get_u32(h + 4);\n"
                          "  if (length > max_payload_) return;\n"
                          "  need_ = kHeaderBytes + length;\n"
                          "}\n")
                  .empty());
}

TEST(QlintNarrowing, ReparsingRetaintsACheckedVariable) {
  // The qload regression: `value` was bound-checked for --port, then reused
  // for --timeout-ms with only a zero check — the old check must not carry
  // over to the re-parsed value.
  auto d = lint_source("tools/qload.cpp",
                       "int f(const std::string& a, const std::string& b) {\n"
                       "  std::uint64_t value = 0;\n"
                       "  if (!parse_u64_arg(a, &value) || value > 65535) return 2;\n"
                       "  int port = static_cast<int>(value);\n"
                       "  if (!parse_u64_arg(b, &value) || value == 0) return 2;\n"
                       "  int timeout = static_cast<int>(value);\n"
                       "  return port + timeout;\n"
                       "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "untrusted-narrowing");
  EXPECT_EQ(d[0].line, 6u);
}

TEST(QlintNarrowing, MinClampCountsAsBound) {
  EXPECT_TRUE(lint_source("src/serve/foo.cpp",
                          "void f(const std::uint8_t* p) {\n"
                          "  std::uint64_t v = get_u16(p);\n"
                          "  int t = static_cast<int>(std::min(v, kCap));\n"
                          "}\n")
                  .empty());
}

TEST(QlintNarrowing, TrustedPathsAreOutOfScope) {
  // Only the wire/service layer and its CLIs parse untrusted input.
  EXPECT_TRUE(lint_source("src/net/engine.cpp",
                          "std::uint64_t v = get_u32(p);\n"
                          "int t = static_cast<int>(v);\n")
                  .empty());
}

// --- catch-all-swallow -------------------------------------------------------

TEST(QlintCatch, FlagsSilentCatchAll) {
  auto d = lint_source("src/serve/foo.cpp",
                       "void f() {\n"
                       "  try {\n"
                       "    g();\n"
                       "  } catch (...) {\n"
                       "  }\n"
                       "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "catch-all-swallow");
  EXPECT_EQ(d[0].line, 4u);
}

TEST(QlintCatch, RethrowAndCaptureAndReportAreClean) {
  EXPECT_TRUE(lint_source("src/serve/foo.cpp",
                          "void f() {\n"
                          "  try { g(); } catch (...) { throw; }\n"
                          "}\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/net/foo.cpp",
                          "void f() {\n"
                          "  try { g(); } catch (...) { err_ = std::current_exception(); }\n"
                          "}\n")
                  .empty());
  // The job-runner boundary: converting to a structured outcome counts.
  EXPECT_TRUE(lint_source("src/serve/job.cpp",
                          "void f(obs::RunReport& report) {\n"
                          "  try { g(); } catch (...) {\n"
                          "    report.set_outcome(false);\n"
                          "    report.set_label(\"exception\");\n"
                          "  }\n"
                          "}\n")
                  .empty());
}

TEST(QlintCatch, ReasonedAllowSuppressesDesignedBoundary) {
  EXPECT_TRUE(
      lint_source("src/util/foo.cpp",
                  "void f() {\n"
                  "  try { g(); } catch (...) {  // qlint-allow(catch-all-swallow): tallied by caller\n"
                  "    threw = true;\n"
                  "  }\n"
                  "}\n")
          .empty());
}

// --- hot-path-alloc ----------------------------------------------------------

TEST(QlintHotPath, FlagsUnreservedPushBackInDeliver) {
  auto d = lint_source("src/net/engine.cpp",
                       "void Engine::deliver(NodeId from, NodeId to, Word w) {\n"
                       "  extra_.push_back(w);\n"
                       "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].rule, "hot-path-alloc");
  EXPECT_EQ(d[0].line, 2u);
}

TEST(QlintHotPath, ReservedReceiverIsClean) {
  // A reserve anywhere in the TU marks the vector capacity-managed: its
  // steady-state push_back is a bump, which is the sanctioned pattern.
  EXPECT_TRUE(lint_source("src/net/engine.cpp",
                          "void Engine::prepare(std::size_t n) {\n"
                          "  extra_.reserve(n);\n"
                          "}\n"
                          "void Engine::deliver(NodeId from, NodeId to, Word w) {\n"
                          "  extra_.push_back(w);\n"
                          "}\n")
                  .empty());
}

TEST(QlintHotPath, FlagsNewAndStdFunctionInKernels) {
  EXPECT_TRUE(flags(lint_source("src/quantum/kernels_avx2.cpp",
                                "void f() { auto* p = new double[8]; }\n"),
                    "hot-path-alloc"));
  EXPECT_TRUE(flags(lint_source("src/quantum/kernels.cpp",
                                "void g() { std::function<void()> cb = h; }\n"),
                    "hot-path-alloc"));
}

TEST(QlintHotPath, ColdEngineSetupAllocatesFreely) {
  // set_fault_plan is per-run setup, not the round loop: unreserved growth
  // there is outside the rule's hot-function list.
  EXPECT_TRUE(lint_source("src/net/engine.cpp",
                          "void Engine::set_fault_plan(FaultPlan plan) {\n"
                          "  schedules_.push_back(plan);\n"
                          "}\n")
                  .empty());
}

TEST(QlintHotPath, OtherTranslationUnitsAreOutOfScope) {
  EXPECT_TRUE(lint_source("src/framework/oracle.cpp",
                          "void f() { values_.push_back(1); }\n")
                  .empty());
}

TEST(QlintHotPath, ReasonedAllowSuppressesColdBranch) {
  EXPECT_TRUE(
      lint_source("src/net/engine.cpp",
                  "void Engine::commit(NodeId f, NodeId t, const Word& w) {\n"
                  "  log_.push_back(w);  // qlint-allow(hot-path-alloc): observer-only branch, off in benchmarks\n"
                  "}\n")
          .empty());
}

// --- unchecked-io-result -----------------------------------------------------

TEST(QlintIoResult, FlagsBareWriteAndFsyncInPersistencePaths) {
  auto d = lint_source("src/serve/journal.cpp",
                       "void f(int fd, const char* p, size_t n) {\n"
                       "  write(fd, p, n);\n"
                       "  ::fsync(fd);\n"
                       "}\n");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].rule, "unchecked-io-result");
  EXPECT_EQ(d[0].line, 2u);
  EXPECT_EQ(d[1].line, 3u);
  EXPECT_TRUE(flags(lint_source("src/cache/store.cpp",
                                "void g() { rename(\"a.tmp\", \"a\"); }\n"),
                    "unchecked-io-result"));
  EXPECT_TRUE(flags(lint_source("src/serve/journal.cpp",
                                "void h(int fd) { ::ftruncate(fd, 0); }\n"),
                    "unchecked-io-result"));
}

TEST(QlintIoResult, VoidCastIsStillADiscard) {
  EXPECT_TRUE(flags(lint_source("src/serve/journal.cpp",
                                "void f(int fd) { (void)::fsync(fd); }\n"),
                    "unchecked-io-result"));
}

TEST(QlintIoResult, CheckedResultsAreClean) {
  EXPECT_TRUE(lint_source("src/serve/journal.cpp",
                          "bool f(int fd, const char* p, size_t n) {\n"
                          "  ssize_t w = ::write(fd, p, n);\n"
                          "  if (::fsync(fd) != 0) return false;\n"
                          "  while (::fdatasync(fd) != 0) {}\n"
                          "  return w >= 0 && rename(\"a\", \"b\") == 0;\n"
                          "}\n")
                  .empty());
}

TEST(QlintIoResult, MemberAndNamespacedCallsAreOutOfScope) {
  // fs::rename reports through an error_code (or throws); stream .write
  // carries its state in the stream. Neither is a POSIX result carrier.
  EXPECT_TRUE(lint_source("src/cache/store.cpp",
                          "void f(std::ofstream& out, const std::string& b) {\n"
                          "  out.write(b.data(), 1);\n"
                          "  fs::rename(\"a.tmp\", \"a\", ec);\n"
                          "}\n")
                  .empty());
}

TEST(QlintIoResult, OtherTreesAndReasonedAllowsAreClean) {
  EXPECT_TRUE(lint_source("src/net/transport.cpp",
                          "void f(int fd) { ::fsync(fd); }\n")
                  .empty());
  EXPECT_TRUE(
      lint_source("src/serve/journal.cpp",
                  "void f(int fd) {\n"
                  "  ::fsync(fd);  // qlint-allow(unchecked-io-result): best-effort flush before abort\n"
                  "}\n")
          .empty());
}

// --- rule metadata & SARIF ---------------------------------------------------

TEST(QlintMeta, RuleInfosCoverTwelveRulesWithUniqueIds) {
  const auto& rules = rule_infos();
  ASSERT_EQ(rules.size(), 12u);
  std::vector<std::string> ids;
  for (const auto& rule : rules) {
    ids.push_back(rule.id);
    EXPECT_NE(rule.summary[0], '\0');
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), "reactor-blocking-call"));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), "lock-across-submit"));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), "untrusted-narrowing"));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), "catch-all-swallow"));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), "hot-path-alloc"));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), "unchecked-io-result"));
}

TEST(QlintMeta, SarifOutputIsValidJsonWithRuleMetadata) {
  LintDiagnostic diag;
  diag.file = "src/serve/server.cpp";
  diag.line = 42;
  diag.rule = "reactor-blocking-call";
  diag.message = "a \"quoted\" message\nwith a newline";
  std::string sarif = render_sarif({diag});
  std::string error;
  EXPECT_TRUE(obs::json_valid(sarif, &error)) << error;
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"qlint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"reactor-blocking-call\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 42"), std::string::npos);
  // Every rule is listed in the driver metadata even when only one fires.
  EXPECT_NE(sarif.find("\"untrusted-narrowing\""), std::string::npos);
}

TEST(QlintMeta, SarifWithNoDiagnosticsIsValid) {
  std::string sarif = render_sarif({});
  std::string error;
  EXPECT_TRUE(obs::json_valid(sarif, &error)) << error;
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

// --- repo gate ---------------------------------------------------------------

TEST(Qlint, RepoSourceTreeIsClean) {
  // The same gate CI runs: every tree qlint covers must lint clean — the
  // negative case for every rule is the shipped code itself.
  std::string base = QCONGEST_SOURCE_DIR;
  std::ifstream probe(base + "/src/check/lint.hpp");
  if (!probe.good()) GTEST_SKIP() << "source tree not present at " << base;
  LintResult result =
      lint_trees({base + "/src", base + "/tools", base + "/bench", base + "/tests"});
  std::string all;
  for (const auto& d : result.diagnostics) all += d.to_string() + "\n";
  EXPECT_TRUE(result.diagnostics.empty()) << all;
  EXPECT_GT(result.files_scanned, 150u);
}

}  // namespace
}  // namespace qcongest::check
