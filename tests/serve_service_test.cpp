// The socket-free heart of qcongestd: job-spec parsing and validation,
// admission control with structured load shedding, deadline enforcement,
// per-job exception isolation, exactly-once replies, report byte-identity
// across thread budgets, and the deterministic retry backoff.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/obs/run_report.hpp"
#include "src/serve/backoff.hpp"
#include "src/serve/job.hpp"
#include "src/serve/service.hpp"

namespace qcongest::serve {
namespace {

// ---------------------------------------------------------------- job spec

TEST(ServeJob, ParsesAFullSpec) {
  JobSpec spec;
  std::string error;
  ASSERT_TRUE(parse_job_spec("# a comment\n"
                             "id=job-1\n"
                             "app=bfs\n"
                             "graph=grid\n"
                             "nodes=25\n"
                             "seed=7\n"
                             "fault_seed=99\n"
                             "threads=8\n"
                             "deadline_rounds=5000\n"
                             "transport=direct\n"
                             "drop=0.05\n"
                             "corrupt=0.01\n"
                             "duplicate=0.005\n"
                             "crash=3:30:60\n"
                             "crash=3:90:120:amnesia\n"
                             "recover=1\n",
                             &spec, &error))
      << error;
  EXPECT_EQ(spec.id, "job-1");
  EXPECT_EQ(spec.app, "bfs");
  EXPECT_EQ(spec.graph, "grid");
  EXPECT_EQ(spec.nodes, 25u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_TRUE(spec.fault_seed_set);
  EXPECT_EQ(spec.fault_seed, 99u);
  EXPECT_EQ(spec.threads, 8u);
  EXPECT_EQ(spec.deadline_rounds, 5000u);
  EXPECT_EQ(spec.transport, net::Transport::kDirect);
  EXPECT_DOUBLE_EQ(spec.drop, 0.05);
  ASSERT_EQ(spec.crashes.size(), 2u);
  EXPECT_EQ(spec.crashes[0].node, 3u);
  EXPECT_FALSE(spec.crashes[0].amnesia);
  EXPECT_TRUE(spec.crashes[1].amnesia);
  EXPECT_TRUE(spec.recover);
}

TEST(ServeJob, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                                  // no id/app at all
      "app=bfs\n",                         // missing id
      "id=a\n",                            // missing app
      "id=a\napp=bfs\nnodes=abc\n",        // malformed number
      "id=a\napp=bfs\nnodes=12\nnodes=9\n",  // duplicate key
      "id=a\napp=bfs\nwhat=ever\n",        // unknown key
      "id=a\napp=bfs\ndrop=1e-3\n",        // exponent notation refused
      "id=a\napp=bfs\ndrop=-0.1\n",        // sign refused
      "id=a\napp=bfs\ncrash=1:2\n",        // short crash tuple
      "id=bad id!\napp=bfs\n",             // id charset
      "id=a\napp=bfs\nnodes\n",            // no '='
  };
  for (const char* text : bad) {
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(parse_job_spec(text, &spec, &error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ServeJob, ValidateEnforcesLimitsAndExistence) {
  JobLimits limits;
  limits.max_nodes = 32;
  limits.max_threads = 4;
  limits.max_deadline_rounds = 1000;

  auto check = [&](const std::string& text, bool want_ok,
                   const std::string& want_in_error) {
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(parse_job_spec(text, &spec, &error)) << error;
    bool ok = validate_job_spec(spec, limits, &error);
    EXPECT_EQ(ok, want_ok) << text << ": " << error;
    if (!want_ok) {
      EXPECT_NE(error.find(want_in_error), std::string::npos)
          << text << " -> " << error;
    }
  };
  check("id=a\napp=bfs\nnodes=16\n", true, "");
  check("id=a\napp=nope\n", false, "unknown app");
  check("id=a\napp=bfs\ngraph=moebius\n", false, "graph");
  check("id=a\napp=bfs\nnodes=33\n", false, "nodes");
  check("id=a\napp=bfs\nthreads=5\n", false, "threads");
  check("id=a\napp=bfs\ndeadline_rounds=1001\n", false, "deadline");
  // Fault-plan semantics delegate to net::FaultPlan::validate: a crash on a
  // node the topology does not have must be caught at admission.
  check("id=a\napp=bfs\nnodes=8\ncrash=7:10:20\n", true, "");
  check("id=a\napp=bfs\nnodes=8\ncrash=8:10:20\n", false, "out of range");
  check("id=a\napp=bfs\nnodes=8\ncrash=2:10:10\n", false, "crash");
}

// ------------------------------------------------------- report generation

TEST(ServeJob, ReportIsByteIdenticalAcrossThreadBudgets) {
  // The acceptance gate of the whole service: threads is execution advice,
  // never semantics. Also pins that `id` stays out of the document.
  const char* base =
      "app=convergecast\ngraph=tree\nnodes=21\nseed=11\ndrop=0.05\n";
  std::string reports[3];
  const char* variants[3] = {"id=a\nthreads=1\n", "id=b\nthreads=4\n",
                             "id=c\nthreads=8\n"};
  for (int i = 0; i < 3; ++i) {
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(parse_job_spec(std::string(base) + variants[i], &spec, &error))
        << error;
    reports[i] = run_job_report(spec, /*default_deadline_rounds=*/200000);
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
  std::string error;
  EXPECT_TRUE(obs::json_valid(reports[0], &error)) << error;
}

TEST(ServeJob, DeadlineBecomesAStructuredErrorReport) {
  // A deadline far below what the app needs: the watchdog kills the run and
  // the report carries the diagnosis instead of the worker hanging.
  JobSpec spec;
  std::string error;
  ASSERT_TRUE(parse_job_spec("id=d\napp=diameter\nnodes=24\ndeadline_rounds=3\n",
                             &spec, &error))
      << error;
  std::string report = run_job_report(spec, 200000);
  EXPECT_NE(report.find("error_kind"), std::string::npos) << report;
  EXPECT_NE(report.find("deadline_exceeded"), std::string::npos) << report;
  EXPECT_TRUE(obs::json_valid(report, &error)) << error;
}

TEST(ServeJob, ServerDefaultDeadlineAppliesWhenSpecHasNone) {
  JobSpec spec;
  std::string error;
  ASSERT_TRUE(parse_job_spec("id=d\napp=diameter\nnodes=24\n", &spec, &error));
  // Same starvation deadline, but supplied by the service configuration.
  std::string report = run_job_report(spec, /*default_deadline_rounds=*/3);
  EXPECT_NE(report.find("deadline_exceeded"), std::string::npos) << report;
}

TEST(ServeJob, ReportsNeverThrow) {
  // A spec that passes parsing but describes an unrealizable run must still
  // come back as a structured document (exception isolation).
  JobSpec spec;
  std::string error;
  ASSERT_TRUE(parse_job_spec("id=x\napp=bfs\ngraph=moebius\n", &spec, &error));
  std::string report;
  EXPECT_NO_THROW(report = run_job_report(spec, 1000));
  EXPECT_NE(report.find("error"), std::string::npos) << report;
  EXPECT_TRUE(obs::json_valid(report, &error)) << error;
}

// ------------------------------------------------------------- the service

JobReply wait_submit(Service& service, const std::string& spec) {
  JobReply captured;
  std::atomic<int> replies{0};
  service.submit(spec, [&](const JobReply& reply) {
    captured = reply;
    replies.fetch_add(1);
  });
  while (replies.load() == 0) {
  }
  EXPECT_EQ(replies.load(), 1);  // exactly once
  return captured;
}

TEST(ServeService, RunsAJobEndToEnd) {
  ServiceConfig config;
  config.workers = 2;
  Service service(config);
  JobReply reply =
      wait_submit(service, "id=ok-1\napp=leader\nnodes=9\nseed=3\n");
  EXPECT_EQ(reply.status, JobReply::Status::kOk);
  EXPECT_EQ(reply.id, "ok-1");
  std::string error;
  EXPECT_TRUE(obs::json_valid(reply.body, &error)) << error;
  Service::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.pending, 0u);
}

TEST(ServeService, InvalidSpecsReplySynchronouslyAndNeverRun) {
  Service service(ServiceConfig{});
  bool replied = false;
  service.submit("id=bad\napp=nope\n", [&](const JobReply& reply) {
    replied = true;
    EXPECT_EQ(reply.status, JobReply::Status::kInvalid);
    EXPECT_NE(reply.error.find("unknown app"), std::string::npos)
        << reply.error;
  });
  EXPECT_TRUE(replied);  // synchronous: no worker involved
  service.submit("not a spec at all", [&](const JobReply& reply) {
    EXPECT_EQ(reply.status, JobReply::Status::kInvalid);
  });
  Service::Stats stats = service.stats();
  EXPECT_EQ(stats.invalid_specs, 2u);
  EXPECT_EQ(stats.admitted, 0u);
}

TEST(ServeService, ZeroCapacityShedsEveryJobWithRetryHint) {
  // max_pending = 0 is the degenerate admission bound: every valid job is
  // shed, deterministically — the pure load-shedding path, no timing.
  ServiceConfig config;
  config.max_pending = 0;
  config.retry_after_base_ms = 40;
  Service service(config);
  for (int i = 0; i < 3; ++i) {
    JobReply reply = wait_submit(service, "id=s\napp=bfs\nnodes=8\n");
    EXPECT_EQ(reply.status, JobReply::Status::kRejected);
    EXPECT_EQ(reply.error, "overloaded");
    EXPECT_GE(reply.retry_after_ms, 40u);
  }
  Service::Stats stats = service.stats();
  EXPECT_EQ(stats.rejected_overload, 3u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.pending, 0u);
}

TEST(ServeService, OverloadShedsBeyondTheBoundThenRecovers) {
  // One worker, a queue bound of 1, and a burst: the burst must produce at
  // least one structured rejection (the bound is real) and at least one
  // admission (the bound is not a wall), every submit must get exactly one
  // reply, and after the storm the service must accept work again.
  ServiceConfig config;
  config.workers = 1;
  config.max_pending = 1;
  Service service(config);

  constexpr int kBurst = 12;
  std::mutex replies_mutex;
  std::vector<JobReply> replies;
  std::atomic<int> done{0};
  for (int i = 0; i < kBurst; ++i) {
    // A moderately expensive job so the worker cannot outrun the burst.
    service.submit(
        "id=burst-" + std::to_string(i) +
            "\napp=diameter\ngraph=complete\nnodes=24\ndrop=0.1\nseed=" +
            std::to_string(i + 1) + "\n",
        [&](const JobReply& reply) {
          {
            std::lock_guard<std::mutex> lock(replies_mutex);
            replies.push_back(reply);
          }
          done.fetch_add(1);
        });
  }
  while (done.load() < kBurst) {
  }
  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kBurst));
  std::size_t ok = 0, rejected = 0;
  std::set<std::string> seen_ids;
  for (const JobReply& reply : replies) {
    seen_ids.insert(reply.id);
    if (reply.status == JobReply::Status::kOk) ++ok;
    if (reply.status == JobReply::Status::kRejected) {
      ++rejected;
      EXPECT_EQ(reply.error, "overloaded");
      EXPECT_GT(reply.retry_after_ms, 0u);
    }
  }
  EXPECT_EQ(seen_ids.size(), static_cast<std::size_t>(kBurst));  // 1:1 replies
  EXPECT_GE(ok, 1u);
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(ok + rejected, static_cast<std::size_t>(kBurst));

  // After the burst drains the service is healthy again.
  JobReply after = wait_submit(service, "id=after\napp=bfs\nnodes=8\n");
  EXPECT_EQ(after.status, JobReply::Status::kOk);
}

TEST(ServeService, ThrowingJobsAreIsolated) {
  // graph=moebius parses but cannot be built; the job must come back as an
  // ok-status reply whose report documents the error — and the worker must
  // survive to run the next job.
  ServiceConfig config;
  config.workers = 1;
  Service service(config);
  JobReply broken = wait_submit(service, "id=b\napp=bfs\ngraph=moebius\n");
  EXPECT_EQ(broken.status, JobReply::Status::kInvalid);  // caught at validate

  // Deadline starvation *is* admissible — it throws mid-run, inside the
  // worker, and must still produce a structured report.
  JobReply starved = wait_submit(
      service, "id=s\napp=diameter\nnodes=24\ndeadline_rounds=3\n");
  EXPECT_EQ(starved.status, JobReply::Status::kOk);
  EXPECT_NE(starved.body.find("deadline_exceeded"), std::string::npos);

  JobReply healthy = wait_submit(service, "id=h\napp=bfs\nnodes=8\n");
  EXPECT_EQ(healthy.status, JobReply::Status::kOk);
}

TEST(ServeService, IdenticalJobsYieldIdenticalBodiesUnderLoad) {
  // The full-service determinism statement: the same (job, seed) submitted
  // twice amid unrelated load, at different thread budgets, produces
  // byte-identical report bodies.
  ServiceConfig config;
  config.workers = 4;
  Service service(config);
  std::string bodies[2];
  for (int side = 0; side < 2; ++side) {
    // Unrelated load alongside the probe.
    for (int i = 0; i < 4; ++i) {
      service.submit("id=noise\napp=leader\nnodes=12\nseed=" +
                         std::to_string(100 + side * 10 + i) + "\n",
                     [](const JobReply&) {});
    }
    JobReply probe = wait_submit(
        service, std::string("id=p\napp=multibfs\nnodes=18\nseed=5\ndrop=0.02\n") +
                     (side == 0 ? "threads=1\n" : "threads=8\n"));
    ASSERT_EQ(probe.status, JobReply::Status::kOk);
    bodies[side] = probe.body;
  }
  EXPECT_EQ(bodies[0], bodies[1]);
}

TEST(ServeService, ReadThroughCacheServesIdenticalJobsByteIdentically) {
  // The read-through contract: with a cache_dir configured, the second
  // submission of the same (job, seed) — even under a different client id
  // and thread budget — is served from the store, byte-identical, and the
  // hit/miss counters say which path ran.
  namespace fs = std::filesystem;
  const fs::path cache_dir =
      fs::path(::testing::TempDir()) / "serve_read_through_cache";
  fs::remove_all(cache_dir);

  ServiceConfig config;
  config.workers = 2;
  config.cache_dir = cache_dir.string();
  Service service(config);

  JobReply cold = wait_submit(
      service, "id=c1\napp=bfs\nnodes=14\nseed=9\ndrop=0.03\nthreads=1\n");
  ASSERT_EQ(cold.status, JobReply::Status::kOk);
  JobReply warm = wait_submit(
      service, "id=c2\napp=bfs\nnodes=14\nseed=9\ndrop=0.03\nthreads=8\n");
  ASSERT_EQ(warm.status, JobReply::Status::kOk);
  EXPECT_EQ(cold.body, warm.body);

  Service::Stats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);

  // A semantically different job must not be served from the same entry.
  JobReply other = wait_submit(
      service, "id=c3\napp=bfs\nnodes=14\nseed=10\ndrop=0.03\n");
  ASSERT_EQ(other.status, JobReply::Status::kOk);
  EXPECT_NE(other.body, cold.body);
  EXPECT_EQ(service.stats().cache_misses, 2u);
  fs::remove_all(cache_dir);
}

TEST(ServeService, CorruptCacheEntryIsRecomputedNotServed) {
  namespace fs = std::filesystem;
  const fs::path cache_dir =
      fs::path(::testing::TempDir()) / "serve_corrupt_cache";
  fs::remove_all(cache_dir);

  ServiceConfig config;
  config.workers = 1;
  config.cache_dir = cache_dir.string();
  Service service(config);

  const std::string spec = "id=k1\napp=leader\nnodes=10\nseed=4\n";
  JobReply first = wait_submit(service, spec);
  ASSERT_EQ(first.status, JobReply::Status::kOk);

  // Flip a byte in the single sealed entry behind the service's back.
  fs::path entry;
  for (const fs::directory_entry& item :
       fs::recursive_directory_iterator(cache_dir / "objects")) {
    if (item.is_regular_file()) entry = item.path();
  }
  ASSERT_FALSE(entry.empty());
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>('~'));
  }

  JobReply second = wait_submit(service, spec);
  ASSERT_EQ(second.status, JobReply::Status::kOk);
  EXPECT_EQ(second.body, first.body);  // recomputed, not parroted corruption
  EXPECT_EQ(service.stats().cache_hits, 0u);
  fs::remove_all(cache_dir);
}

// -------------------------------------------------------------- the backoff

TEST(ServeBackoff, DeterministicCappedAndJittered) {
  BackoffParams params;  // base 10ms, cap 640ms
  // Pure function: same (seed, stream, attempt) -> same delay.
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    EXPECT_EQ(backoff_delay_ms(params, 3, attempt),
              backoff_delay_ms(params, 3, attempt));
  }
  // Never exceeds the cap, even deep into the attempt series (shift
  // saturation, mirroring ReliableParams::rto_cap's discipline).
  for (std::uint32_t attempt = 0; attempt < 80; ++attempt) {
    EXPECT_LE(backoff_delay_ms(params, 1, attempt), params.cap_ms);
    EXPECT_GE(backoff_delay_ms(params, 1, attempt), 1u);
  }
  // Grows (modulo jitter) before the cap: attempt 6 must beat attempt 0's
  // worst case.
  EXPECT_GT(backoff_delay_ms(params, 2, 6), params.base_ms);
}

TEST(ServeBackoff, StreamsDesynchronize) {
  // Different streams (clients) see different jitter at the same attempt —
  // the anti-thundering-herd property. With 32 streams at attempt 4, at
  // least two distinct delays must appear (all-equal would mean the jitter
  // is dead).
  BackoffParams params;
  params.seed = 7;
  std::set<std::uint64_t> distinct;
  for (std::uint64_t stream = 0; stream < 32; ++stream) {
    distinct.insert(backoff_delay_ms(params, stream, 4));
  }
  EXPECT_GT(distinct.size(), 4u);
}

}  // namespace
}  // namespace qcongest::serve
