// Shutdown semantics of util::ThreadPool's submit queue: destruction is a
// drain barrier (every submitted task runs, none dropped, no deadlock),
// throwing tasks are swallowed and tallied, and the FIFO/degraded-inline
// contracts hold. The TSan CI lane reruns this suite (its name matches the
// lane's 'ThreadPool' filter) to pin the absence of shutdown races.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "src/util/thread_pool.hpp"

namespace qcongest::util {
namespace {

TEST(ThreadPoolShutdown, DestructorDrainsPendingTasks) {
  // Many more tasks than workers, so a healthy backlog is still queued when
  // the destructor runs. Every single one must execute.
  constexpr std::size_t kTasks = 500;
  std::atomic<std::size_t> ran{0};
  {
    ThreadPool pool(4);
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool: drain barrier
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolShutdown, DrainsWithThrowingTasksPending) {
  // A queue full of throwing tasks must neither kill the process nor wedge
  // the drain: the pool swallows and counts, and the non-throwing tasks
  // interleaved behind them still run.
  constexpr std::size_t kTasks = 200;
  std::atomic<std::size_t> ran{0};
  std::size_t errors = 0;
  {
    ThreadPool pool(3);
    for (std::size_t i = 0; i < kTasks; ++i) {
      if (i % 2 == 0) {
        pool.submit([] { throw std::runtime_error("job failed"); });
      } else {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    // task_errors is monotone but only final once the queue is empty; wait
    // for the drain through the public API before sampling.
    while (pool.tasks_pending() > 0) {
    }
    errors = pool.task_errors();
  }
  EXPECT_EQ(ran.load(), kTasks / 2);
  EXPECT_EQ(errors, kTasks / 2);
}

TEST(ThreadPoolShutdown, TaskErrorCountIsExactAfterDrain) {
  auto pool = std::make_unique<ThreadPool>(4);
  for (int i = 0; i < 64; ++i) {
    pool->submit([] { throw 42; });  // non-std::exception throws count too
  }
  while (pool->tasks_pending() > 0) {
  }
  EXPECT_EQ(pool->task_errors(), 64u);
  pool.reset();  // drain of an already-empty queue must not hang either
}

TEST(ThreadPoolShutdown, InlineExecutionWithoutWorkers) {
  // threads <= 1 spawns no workers; submit degrades to a synchronous call
  // so nothing can be pending and shutdown trivially cannot deadlock.
  ThreadPool pool(1);
  std::size_t ran = 0;
  pool.submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(pool.tasks_pending(), 0u);
  pool.submit([] { throw std::runtime_error("inline failure"); });
  EXPECT_EQ(pool.task_errors(), 1u);
}

TEST(ThreadPoolShutdown, SubmitFromTasksDuringDrain) {
  // Tasks submitted *by running tasks* while the queue is still live must
  // also run (the service never does this, but the drain barrier is easier
  // to trust if enqueue-from-task is not a special case).
  std::atomic<std::size_t> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&pool, &ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      });
    }
    while (pool.tasks_pending() > 0) {
    }
  }
  EXPECT_EQ(ran.load(), 32u);
}

TEST(ThreadPoolShutdown, ParallelForAndSubmitCoexist) {
  // The engine's parallel_for and the service's submit queue share workers;
  // neither may starve the other or trip the other's completion tracking.
  ThreadPool pool(4);
  std::atomic<std::size_t> submitted_ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit(
        [&submitted_ran] { submitted_ran.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::size_t> hits(1000, 0);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1u) << "index " << i;
  }
  while (pool.tasks_pending() > 0) {
  }
  EXPECT_EQ(submitted_ran.load(), 50u);
}

TEST(ThreadPoolShutdown, ManyPoolsConstructDestructQuickly) {
  // Rapid construct/submit/destruct cycles: the shutdown handshake must not
  // depend on timing (a lost notify here is exactly the bug TSan+stress
  // would catch as a hang).
  for (int cycle = 0; cycle < 100; ++cycle) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(2);
      for (int i = 0; i < 8; ++i) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    ASSERT_EQ(ran.load(), 8);
  }
}

TEST(ThreadPoolShutdown, TasksRunInFifoOrderPerQueue) {
  // With a single worker the FIFO promise is observable directly.
  ThreadPool pool(2);  // one spawned worker + the (idle) caller
  std::mutex order_mutex;
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    pool.submit([i, &order_mutex, &order] {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(i);
    });
  }
  while (pool.tasks_pending() > 0) {
  }
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace qcongest::util
