#include <gtest/gtest.h>

#include "src/net/generators.hpp"
#include "src/net/graph.hpp"

namespace qcongest::net {
namespace {

TEST(Graph, AddEdgeValidation) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_THROW(Graph(0), std::invalid_argument);
}

TEST(Graph, BfsDistancesOnPath) {
  Graph g = path_graph(5);
  auto dist = g.bfs_distances(0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(Graph, DisconnectedDetected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  EXPECT_EQ(g.bfs_distances(0)[2], kUnreachable);
  EXPECT_THROW(g.eccentricity(0), std::invalid_argument);
}

TEST(Graph, DiameterRadiusOnKnownGraphs) {
  EXPECT_EQ(path_graph(10).diameter(), 9u);
  EXPECT_EQ(path_graph(10).radius(), 5u);  // ceil(9/2)
  EXPECT_EQ(cycle_graph(8).diameter(), 4u);
  EXPECT_EQ(cycle_graph(8).radius(), 4u);
  EXPECT_EQ(complete_graph(6).diameter(), 1u);
  EXPECT_EQ(star_graph(7).diameter(), 2u);
  EXPECT_EQ(star_graph(7).radius(), 1u);
  EXPECT_EQ(grid_graph(3, 4).diameter(), 5u);
  EXPECT_EQ(hypercube(4).diameter(), 4u);
}

TEST(Graph, AverageEccentricity) {
  // Path of 3: eccentricities are 2, 1, 2.
  EXPECT_NEAR(path_graph(3).average_eccentricity(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(complete_graph(4).average_eccentricity(), 1.0, 1e-12);
}

TEST(Graph, GirthOnKnownGraphs) {
  EXPECT_EQ(cycle_graph(7).girth(), 7u);
  EXPECT_EQ(complete_graph(5).girth(), 3u);
  EXPECT_EQ(grid_graph(3, 3).girth(), 4u);
  EXPECT_EQ(petersen_graph().girth(), 5u);
  EXPECT_EQ(hypercube(3).girth(), 4u);
  EXPECT_FALSE(path_graph(6).girth().has_value());
  EXPECT_FALSE(binary_tree(15).girth().has_value());
}

TEST(Graph, GirthOnCycleWithTrees) {
  util::Rng rng(31);
  for (std::size_t girth : {3u, 5u, 9u}) {
    Graph g = cycle_with_trees(girth, 40, rng);
    ASSERT_TRUE(g.girth().has_value());
    EXPECT_EQ(*g.girth(), girth);
    EXPECT_TRUE(g.connected());
  }
}

TEST(Graph, ShortestCycleThroughBasics) {
  Graph g = petersen_graph();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto c = g.shortest_cycle_through(v, 10);
    ASSERT_TRUE(c.has_value());
    EXPECT_GE(*c, 5u);  // never below the girth
  }
  // Cap excludes long cycles.
  EXPECT_FALSE(cycle_graph(9).shortest_cycle_through(0, 5).has_value());
  EXPECT_EQ(cycle_graph(9).shortest_cycle_through(0, 9), 9u);
}

TEST(Graph, ShortestCycleThroughWithExclusion) {
  // Two triangles sharing vertex 0: 0-1-2 and 0-3-4.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  EXPECT_EQ(g.shortest_cycle_through(1, 10), 3u);
  // Excluding 0 destroys every cycle through 1.
  EXPECT_FALSE(g.shortest_cycle_through(1, 10, NodeId{0}).has_value());
  // Excluding 2 leaves the other triangle via 0.
  EXPECT_FALSE(g.shortest_cycle_through(1, 10, NodeId{2}).has_value());
  EXPECT_EQ(g.shortest_cycle_through(3, 10, NodeId{2}), 3u);
  EXPECT_THROW(g.shortest_cycle_through(1, 10, NodeId{1}), std::invalid_argument);
}

TEST(Generators, PetersenStructure) {
  Graph g = petersen_graph();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_EQ(g.diameter(), 2u);
}

TEST(Generators, RandomConnectedGraphIsConnected) {
  util::Rng rng(32);
  for (std::size_t n : {2u, 10u, 100u}) {
    Graph g = random_connected_graph(n, n / 2, rng);
    EXPECT_TRUE(g.connected());
    EXPECT_GE(g.num_edges(), n - 1);
  }
}

TEST(Generators, TwoStarsStructure) {
  Graph g = two_stars_graph(5, 7, 4);
  EXPECT_EQ(g.num_nodes(), 5u + 7u + 5u);
  EXPECT_TRUE(g.connected());
  // Leaf-to-leaf across: 1 + 4 + 1 = 6 = diameter.
  EXPECT_EQ(g.diameter(), 6u);
  EXPECT_EQ(g.degree(5), 6u);   // left center: 5 leaves + path
  EXPECT_EQ(g.degree(9), 8u);   // right center: 7 leaves + path
}

TEST(Generators, LollipopStructure) {
  Graph g = lollipop_graph(5, 4);
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.girth(), 3u);
  EXPECT_EQ(g.degree(0), 5u);  // in-clique degree 4 + path
}

TEST(Generators, BinaryTreeDepth) {
  Graph g = binary_tree(15);
  auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[14], 3u);
  EXPECT_EQ(g.num_edges(), 14u);
}

TEST(Generators, InvalidArguments) {
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
  EXPECT_THROW(star_graph(1), std::invalid_argument);
  EXPECT_THROW(hypercube(0), std::invalid_argument);
  EXPECT_THROW(two_stars_graph(2, 2, 0), std::invalid_argument);
  util::Rng rng(1);
  EXPECT_THROW(cycle_with_trees(2, 10, rng), std::invalid_argument);
  EXPECT_THROW(lollipop_graph(1, 3), std::invalid_argument);
}

}  // namespace
}  // namespace qcongest::net
