#include <gtest/gtest.h>

#include "src/quantum/arithmetic.hpp"
#include "src/quantum/oracle.hpp"
#include "src/quantum/statevector.hpp"
#include "src/query/grover_math.hpp"

namespace qcongest::quantum {
namespace {

constexpr double kTol = 1e-10;

TEST(Adder, ExhaustiveTruthTable) {
  // width-3 adder: 2 * 3 + 1 = 7 qubits; check all 64 (a, b) pairs.
  const unsigned w = 3;
  Circuit add = adder_circuit(7, 0, w, 2 * w, w);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      Statevector state(7, a | (b << w));
      add.apply_to(state);
      BasisState expected = a | (((a + b) % 8) << w);
      EXPECT_NEAR(state.probability(expected), 1.0, kTol)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Adder, WorksOnSuperpositions) {
  // a in uniform superposition, b = 3: the adder must act linearly.
  const unsigned w = 2;
  Statevector state(5, 3u << w);  // b = 3
  state.h(0);
  state.h(1);
  adder_circuit(5, 0, w, 2 * w, w).apply_to(state);
  for (std::uint64_t a = 0; a < 4; ++a) {
    BasisState expected = a | (((a + 3) % 4) << w);
    EXPECT_NEAR(state.probability(expected), 0.25, kTol) << a;
  }
}

TEST(Adder, InverseSubtracts) {
  const unsigned w = 3;
  Circuit add = adder_circuit(7, 0, w, 2 * w, w);
  Statevector state(7, 5u | (6u << w));
  add.apply_to(state);
  add.inverse().apply_to(state);
  EXPECT_NEAR(state.probability(5u | (6u << w)), 1.0, kTol);
}

TEST(Carry, DetectsOverflowExactly) {
  const unsigned w = 3;
  // Layout: a [0,3), b [3,6), ancilla 6, flag 7.
  Circuit carry = carry_circuit(8, 0, w, 6, 7, w);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      Statevector state(8, a | (b << w));
      carry.apply_to(state);
      BasisState expected = a | (b << w) | (a + b >= 8 ? (1ull << 7) : 0);
      EXPECT_NEAR(state.probability(expected), 1.0, kTol)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(LessThanConstant, ExhaustiveAgainstClassicalComparison) {
  const unsigned w = 3;
  // Layout: x [0,3), work [3,6), ancilla 6, flag 7.
  for (std::uint64_t threshold = 0; threshold <= 8; ++threshold) {
    Circuit cmp = less_than_constant_circuit(8, 0, w, 6, 7, w, threshold);
    for (std::uint64_t x = 0; x < 8; ++x) {
      Statevector state(8, x);
      cmp.apply_to(state);
      BasisState expected = x | (x < threshold ? (1ull << 7) : 0);
      EXPECT_NEAR(state.probability(expected), 1.0, kTol)
          << "x=" << x << " T=" << threshold;
    }
  }
}

TEST(LessThanConstant, IsSelfInverseOnTheFlag) {
  const unsigned w = 2;
  Circuit cmp = less_than_constant_circuit(6, 0, w, 4, 5, w, 2);
  Statevector state(6, 1);  // x = 1 < 2
  cmp.apply_to(state);
  cmp.apply_to(state);
  EXPECT_NEAR(state.probability(1), 1.0, kTol);
}

TEST(Arithmetic, RegisterValidation) {
  EXPECT_THROW(adder_circuit(4, 0, 2, 3, 2), std::invalid_argument);  // overlap-ish OOB
  EXPECT_THROW(adder_circuit(7, 0, 3, 7, 3), std::invalid_argument);  // ancilla OOB
  EXPECT_THROW(less_than_constant_circuit(8, 0, 3, 6, 7, 3, 9), std::invalid_argument);
  EXPECT_THROW(adder_circuit(7, 0, 3, 6, 0), std::invalid_argument);  // zero width
}

TEST(GateLevelThresholdOracle, GroverMarksValuesBelowThreshold) {
  // Full gate-level "find an index with x_i < T" — the inner oracle of
  // Durr-Hoyer, built from a value oracle plus the comparator circuit, and
  // cross-checked against the analytic 2-D Grover model used at scale.
  //
  // Layout: index [0,3), value [3,6), work [6,9), ancilla 9, flag 10.
  const unsigned idx_w = 3, val_w = 3;
  const unsigned total = 11;
  std::vector<std::uint64_t> data{5, 2, 7, 1, 6, 3, 4, 0};
  const std::uint64_t threshold = 3;  // marked: x_i in {2, 1, 0} -> 3 indices

  auto value_oracle = [&](Statevector& state) {
    apply_value_oracle(state, 0, idx_w, idx_w, val_w,
                       [&](std::uint64_t i) { return data[i]; });
  };
  Circuit comparator =
      less_than_constant_circuit(total, idx_w, 2 * idx_w, 9, 10, val_w, threshold);

  Statevector state(total);
  for (unsigned q = 0; q < idx_w; ++q) state.h(q);

  // Phase oracle: value oracle, compare into flag, Z on flag, uncompute.
  auto apply_phase_oracle_via_arithmetic = [&](Statevector& s) {
    value_oracle(s);
    comparator.apply_to(s);
    s.z(10);
    comparator.inverse().apply_to(s);
    value_oracle(s);
  };

  // One Grover iteration: marked fraction 3/8.
  apply_phase_oracle_via_arithmetic(state);
  // Diffusion on the index register.
  for (unsigned q = 0; q < idx_w; ++q) state.h(q);
  apply_phase_oracle(state, 0, idx_w, [](std::uint64_t i) { return i == 0; });
  for (unsigned q = 0; q < idx_w; ++q) state.h(q);

  double p_marked = 0.0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    if (data[i] < threshold) {
      // Probability of measuring index i with all ancillas clean.
      p_marked += state.probability(i);
    }
  }
  double theta = query::grover_angle(3.0 / 8.0);
  EXPECT_NEAR(p_marked, query::grover_success_probability(1, theta), 1e-9);
}

}  // namespace
}  // namespace qcongest::quantum
