// util::Arena coverage: alignment guarantees, reset/reuse recycling,
// growth across blocks, and the out-of-arena (oversized-request) fallback.
// The arena backs the engine's per-pass message delivery, so these are the
// invariants the hot path silently leans on.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/util/arena.hpp"

namespace qcongest::util {
namespace {

TEST(Arena, AllocationsAreAlignedToTheRequestedType) {
  Arena arena(256);
  // Interleave types with different alignment so the bump cursor lands on
  // odd offsets between requests.
  for (int i = 0; i < 16; ++i) {
    auto* c = arena.allocate<char>(1);
    ASSERT_NE(c, nullptr);
    auto* d = arena.allocate<double>(1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
    auto* l = arena.allocate<long double>(1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(l) % alignof(long double), 0u);
  }
}

TEST(Arena, ExplicitAlignmentIsHonoredForRawBytes) {
  Arena arena(512);
  (void)arena.allocate_bytes(3, 1);  // misalign the cursor
  for (std::size_t align : {2u, 8u, 16u, 64u, 128u}) {
    void* p = arena.allocate_bytes(align, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Arena, AllocationsDoNotOverlap) {
  Arena arena(64);  // small so the test also crosses block boundaries
  std::vector<std::uint32_t*> slots;
  for (std::uint32_t i = 0; i < 200; ++i) {
    auto* p = arena.allocate<std::uint32_t>(1);
    *p = i;
    slots.push_back(p);
  }
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(*slots[i], i) << "slot " << i << " was clobbered";
  }
}

TEST(Arena, ResetReusesCapacityWithoutGrowth) {
  Arena arena(1 << 10);
  (void)arena.allocate<double>(64);  // 512 bytes, fits the first block
  const std::size_t cap = arena.capacity();
  for (int cycle = 0; cycle < 100; ++cycle) {
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    (void)arena.allocate<double>(64);
    EXPECT_EQ(arena.bytes_used(), 64 * sizeof(double));
  }
  EXPECT_EQ(arena.capacity(), cap) << "steady-state cycles must not grow";
}

TEST(Arena, GrowthTracksHighWaterAndCoalescesOnReset) {
  Arena arena(64);
  // Overflow well past the initial block.
  for (int i = 0; i < 32; ++i) (void)arena.allocate<double>(8);
  const std::size_t used = arena.bytes_used();
  EXPECT_EQ(used, 32 * 8 * sizeof(double));
  arena.reset();
  // high_water is sampled at end of cycle (reset), per its contract.
  EXPECT_GE(arena.high_water(), used);
  // After the coalescing reset the same workload must fit one block: no
  // further capacity change on any later cycle.
  const std::size_t cap = arena.capacity();
  EXPECT_GE(cap, used);
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 32; ++i) (void)arena.allocate<double>(8);
    arena.reset();
  }
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(Arena, OversizedRequestFallsBackToASpillBlock) {
  Arena arena(64);
  // Far larger than any block the arena currently owns.
  auto* big = arena.allocate<std::uint8_t>(1 << 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 1 << 16);  // must be fully writable
  // Later small allocations still work.
  auto* small = arena.allocate<std::uint64_t>(4);
  ASSERT_NE(small, nullptr);
  small[0] = 1;
  EXPECT_EQ(big[0], 0xAB);
  EXPECT_EQ(big[(1 << 16) - 1], 0xAB);
}

TEST(Arena, ZeroCountAllocationIsNonNull) {
  Arena arena;
  EXPECT_NE(arena.allocate<double>(0), nullptr);
}

TEST(Arena, HighWaterPersistsAcrossResets) {
  Arena arena(128);
  (void)arena.allocate<std::uint8_t>(4000);
  arena.reset();  // high_water is sampled here, at end of cycle
  const std::size_t hw = arena.high_water();
  EXPECT_GE(hw, 4000u);
  (void)arena.allocate<std::uint8_t>(10);
  arena.reset();
  EXPECT_GE(arena.high_water(), hw) << "a small cycle must not shrink it";
}

}  // namespace
}  // namespace qcongest::util
