// Property-based sweeps over the quantum simulator: invariants that must
// hold for every gate, circuit, width, and seed.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/quantum/circuit.hpp"
#include "src/quantum/oracle.hpp"
#include "src/quantum/qft.hpp"
#include "src/quantum/qudit.hpp"
#include "src/quantum/statevector.hpp"
#include "src/util/rng.hpp"

namespace qcongest::quantum {
namespace {

constexpr double kTol = 1e-9;

/// Random circuit of `depth` operations over `width` qubits.
Circuit random_circuit(unsigned width, unsigned depth, util::Rng& rng) {
  Circuit c(width);
  for (unsigned i = 0; i < depth; ++i) {
    switch (rng.index(7)) {
      case 0:
        c.h(static_cast<unsigned>(rng.index(width)));
        break;
      case 1:
        c.x(static_cast<unsigned>(rng.index(width)));
        break;
      case 2:
        c.rz(static_cast<unsigned>(rng.index(width)), rng.uniform(-3.0, 3.0));
        break;
      case 3:
        c.ry(static_cast<unsigned>(rng.index(width)), rng.uniform(-3.0, 3.0));
        break;
      case 4:
        c.phase(static_cast<unsigned>(rng.index(width)), rng.uniform(0.0, 6.28));
        break;
      case 5: {
        if (width < 2) break;
        unsigned a = static_cast<unsigned>(rng.index(width));
        unsigned b = static_cast<unsigned>(rng.index(width));
        if (a != b) c.cnot(a, b);
        break;
      }
      default: {
        if (width < 3) break;
        unsigned a = static_cast<unsigned>(rng.index(width));
        unsigned b = static_cast<unsigned>(rng.index(width));
        unsigned t = static_cast<unsigned>(rng.index(width));
        if (a != b && b != t && a != t) c.ccx(a, b, t);
        break;
      }
    }
  }
  return c;
}

class RandomCircuitProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, int>> {};

TEST_P(RandomCircuitProperty, PreservesNorm) {
  auto [width, depth, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  Statevector state = random_circuit(width, depth, rng).simulate();
  EXPECT_NEAR(state.norm(), 1.0, kTol);
}

TEST_P(RandomCircuitProperty, InverseIsExact) {
  auto [width, depth, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) + 1000);
  Circuit c = random_circuit(width, depth, rng);
  Statevector state = c.simulate();
  c.inverse().apply_to(state);
  EXPECT_NEAR(state.probability(0), 1.0, kTol);
}

TEST_P(RandomCircuitProperty, ControlledVersionFixesZeroControl) {
  auto [width, depth, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) + 2000);
  Circuit c = random_circuit(width, depth, rng);
  // Embed with one extra (control) qubit left in |0>: the controlled
  // circuit must act as the identity.
  Circuit controlled = c.embedded(width + 1, 0).controlled_on(width);
  Statevector state(width + 1);
  controlled.apply_to(state);
  EXPECT_NEAR(state.probability(0), 1.0, kTol);

  // With the control in |1>, it must act exactly as the original.
  Statevector on(width + 1, BasisState{1} << width);
  controlled.apply_to(on);
  Statevector expected = c.simulate();
  for (BasisState b = 0; b < expected.dimension(); ++b) {
    EXPECT_NEAR(std::abs(on.amplitude(b | (BasisState{1} << width)) -
                         expected.amplitude(b)),
                0.0, kTol);
  }
}

TEST_P(RandomCircuitProperty, MarginalsAreDistributions) {
  auto [width, depth, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) + 3000);
  Statevector state = random_circuit(width, depth, rng).simulate();
  for (unsigned first = 0; first < width; ++first) {
    auto dist = state.marginal(first, 1);
    EXPECT_NEAR(dist[0] + dist[1], 1.0, kTol);
    EXPECT_GE(dist[0], -kTol);
    EXPECT_GE(dist[1], -kTol);
  }
}

TEST_P(RandomCircuitProperty, MeasurementCollapsesConsistently) {
  auto [width, depth, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) + 4000);
  Statevector state = random_circuit(width, depth, rng).simulate();
  unsigned q = static_cast<unsigned>(rng.index(width));
  bool outcome = state.measure_qubit(q, rng);
  EXPECT_NEAR(state.norm(), 1.0, kTol);
  EXPECT_NEAR(state.probability_of_one(q), outcome ? 1.0 : 0.0, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomCircuitProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 6u),
                       ::testing::Values(5u, 25u, 80u), ::testing::Values(1, 2, 3)));

class OracleRoundTrip : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(OracleRoundTrip, BitOracleIsSelfInverse) {
  auto [index_width, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  unsigned width = index_width + 1;
  Statevector state = random_circuit(width, 30, rng).simulate();
  Statevector original = state;
  auto f = [seed](std::uint64_t i) {
    return ((i * 2654435761u) >> 3) % 3 == static_cast<std::uint64_t>(seed % 3);
  };
  apply_bit_oracle(state, 0, index_width, index_width, f);
  apply_bit_oracle(state, 0, index_width, index_width, f);
  EXPECT_NEAR(state.fidelity(original), 1.0, kTol);
}

TEST_P(OracleRoundTrip, PhaseOracleSquaresToIdentity) {
  auto [index_width, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) + 50);
  Statevector state = random_circuit(index_width, 30, rng).simulate();
  Statevector original = state;
  auto f = [](std::uint64_t i) { return (i % 5) == 2; };
  apply_phase_oracle(state, 0, index_width, f);
  apply_phase_oracle(state, 0, index_width, f);
  EXPECT_NEAR(state.fidelity(original), 1.0, kTol);
}

TEST_P(OracleRoundTrip, ValueOracleUncomputes) {
  auto [index_width, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) + 100);
  unsigned value_width = 2;
  unsigned width = index_width + value_width;
  Statevector state = random_circuit(width, 30, rng).simulate();
  Statevector original = state;
  auto x = [](std::uint64_t i) { return (i * 7 + 3) % 4; };
  apply_value_oracle(state, 0, index_width, index_width, value_width, x);
  apply_value_oracle(state, 0, index_width, index_width, value_width, x);
  EXPECT_NEAR(state.fidelity(original), 1.0, kTol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleRoundTrip,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u),
                                            ::testing::Values(1, 2, 3, 4)));

class QftProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(QftProperty, ParsevalAndRoundTrip) {
  unsigned width = GetParam();
  util::Rng rng(width);
  Statevector state = random_circuit(width, 40, rng).simulate();
  Statevector original = state;
  qft_circuit(width, 0, width).apply_to(state);
  EXPECT_NEAR(state.norm(), 1.0, kTol);  // Parseval
  inverse_qft_circuit(width, 0, width).apply_to(state);
  EXPECT_NEAR(state.fidelity(original), 1.0, kTol);
}

TEST_P(QftProperty, MapsShiftToPhase) {
  // QFT |j+1 mod N> = phase-shifted QFT |j>: check via amplitudes.
  unsigned width = GetParam();
  const std::uint64_t N = std::uint64_t{1} << width;
  Statevector a(width, 1);
  qft_circuit(width, 0, width).apply_to(a);
  Statevector b(width, 2 % N);
  qft_circuit(width, 0, width).apply_to(b);
  for (std::uint64_t m = 0; m < N; ++m) {
    Amplitude rotated =
        a.amplitude(m) * std::polar(1.0, 2.0 * M_PI * static_cast<double>(m) /
                                             static_cast<double>(N));
    EXPECT_NEAR(std::abs(rotated - b.amplitude(m)), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QftProperty, ::testing::Values(1u, 2u, 3u, 5u, 7u));

class QuditProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuditProperty, ReflectionIsInvolutionAndNormPreserving) {
  std::size_t dim = GetParam();
  util::Rng rng(dim);
  auto s = QuditState::uniform(dim);
  s.apply_phase_oracle([&](std::size_t i) { return i % 3 == 1; });
  auto before = s;
  s.reflect_about_uniform();
  EXPECT_NEAR(s.norm(), 1.0, kTol);
  s.reflect_about_uniform();
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(std::abs(s.amplitude(i) - before.amplitude(i)), 0.0, kTol);
  }
}

TEST_P(QuditProperty, GroverIterationMatchesAnalyticAngle) {
  // One qudit Grover iteration on t marked of dim: marked probability must
  // equal sin^2(3 theta).
  std::size_t dim = GetParam();
  std::size_t t = std::max<std::size_t>(1, dim / 7);
  auto s = QuditState::uniform(dim);
  auto marked = [t](std::size_t i) { return i < t; };
  s.apply_phase_oracle(marked);
  s.reflect_about_uniform();
  double p_marked = 0.0;
  for (std::size_t i = 0; i < t; ++i) p_marked += s.probability(i);
  double theta = std::asin(std::sqrt(static_cast<double>(t) / static_cast<double>(dim)));
  EXPECT_NEAR(p_marked, std::pow(std::sin(3 * theta), 2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuditProperty,
                         ::testing::Values(2u, 7u, 16u, 100u, 1024u, 65536u));

}  // namespace
}  // namespace qcongest::quantum
