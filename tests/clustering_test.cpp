#include <gtest/gtest.h>

#include "src/net/clustering.hpp"
#include "src/net/generators.hpp"

namespace qcongest::net {
namespace {

TEST(Clustering, PropertiesHoldOnVariousGraphs) {
  util::Rng rng(51);
  struct Case {
    Graph graph;
    std::size_t d;
  };
  std::vector<Case> cases;
  cases.push_back({path_graph(60), 4});
  cases.push_back({cycle_graph(50), 3});
  cases.push_back({grid_graph(8, 8), 5});
  cases.push_back({random_connected_graph(80, 60, rng), 4});
  cases.push_back({star_graph(30), 2});

  for (auto& c : cases) {
    Clustering clustering = cluster_graph(c.graph, c.d, rng);
    EXPECT_NO_THROW(validate_clustering(c.graph, clustering, c.d));
    EXPECT_GT(clustering.charged_rounds, 0u);
    EXPECT_GE(clustering.num_colors, 1u);
  }
}

TEST(Clustering, SmallDiameterGraphIsOneCluster) {
  util::Rng rng(52);
  Graph g = complete_graph(12);
  Clustering clustering = cluster_graph(g, 2, rng);
  // The first cluster's ball of radius d*log(n) covers the whole clique.
  EXPECT_EQ(clustering.num_colors, 1u);
  EXPECT_EQ(clustering.clusters.size(), 1u);
  EXPECT_EQ(clustering.clusters[0].members.size(), 12u);
}

TEST(Clustering, EveryNodeCovered) {
  util::Rng rng(53);
  Graph g = path_graph(200);
  Clustering clustering = cluster_graph(g, 6, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FALSE(clustering.clusters_of_node[v].empty());
  }
}

TEST(Clustering, RejectsZeroD) {
  util::Rng rng(54);
  Graph g = path_graph(5);
  EXPECT_THROW(cluster_graph(g, 0, rng), std::invalid_argument);
}

TEST(Clustering, ValidatorCatchesBrokenCover) {
  util::Rng rng(55);
  Graph g = path_graph(30);
  Clustering clustering = cluster_graph(g, 3, rng);
  // Sabotage: claim two same-color clusters that are adjacent.
  Clustering broken = clustering;
  broken.clusters.clear();
  broken.clusters.push_back({0, 0, {0, 1, 2}});
  broken.clusters.push_back({3, 0, {3, 4}});
  EXPECT_THROW(validate_clustering(g, broken, 3), std::logic_error);
}

}  // namespace
}  // namespace qcongest::net
