// Parameterized sweeps over the Theorem 8 framework: correctness of the
// aggregation for every semigroup, cost monotonicity, and consistency
// between peek and charged queries.

#include <gtest/gtest.h>

#include <tuple>

#include "src/framework/distributed_oracle.hpp"
#include "src/framework/distributed_state.hpp"
#include "src/net/generators.hpp"

namespace qcongest::framework {
namespace {

struct Semigroup {
  const char* name;
  net::CombineOp op;
  std::int64_t identity;
};

std::vector<Semigroup> semigroups() {
  return {
      {"sum", [](std::int64_t a, std::int64_t b) { return a + b; }, 0},
      {"max", [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
       std::numeric_limits<std::int64_t>::min()},
      {"min", [](std::int64_t a, std::int64_t b) { return std::min(a, b); },
       std::numeric_limits<std::int64_t>::max()},
      {"xor", [](std::int64_t a, std::int64_t b) { return a ^ b; }, 0},
      {"or", [](std::int64_t a, std::int64_t b) { return a | b; }, 0},
  };
}

class OracleSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(OracleSweep, PeekAgreesWithChargedQueriesForEverySemigroup) {
  auto [n, k, p] = GetParam();
  util::Rng rng(n * 31 + k + p);
  net::Graph g = net::random_connected_graph(n, n / 2, rng);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);

  std::vector<std::vector<query::Value>> data(n, std::vector<query::Value>(k));
  for (auto& row : data) {
    for (auto& v : row) v = rng.uniform_int(-50, 50);
  }

  for (const auto& sg : semigroups()) {
    OracleConfig config;
    config.domain_size = k;
    config.parallelism = p;
    config.value_bits = 12;
    config.combine = sg.op;
    config.identity = sg.identity;
    DistributedOracle oracle(engine, tree, config, data);

    auto batch_picks = rng.sample_without_replacement(k, std::min(p, k));
    auto values = oracle.query(batch_picks);
    for (std::size_t i = 0; i < batch_picks.size(); ++i) {
      EXPECT_EQ(values[i], oracle.peek(batch_picks[i])) << sg.name;
      std::int64_t expected = sg.identity;
      for (std::size_t v = 0; v < n; ++v) {
        expected = sg.op(expected, data[v][batch_picks[i]]);
      }
      EXPECT_EQ(values[i], expected) << sg.name;
    }
    EXPECT_LE(oracle.total_cost().max_edge_words, 1u);
  }
}

TEST_P(OracleSweep, CostIsDeterministicPerBatch) {
  auto [n, k, p] = GetParam();
  util::Rng rng(n + k + p);
  net::Graph g = net::path_graph(n);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  std::vector<std::vector<query::Value>> data(n, std::vector<query::Value>(k, 1));

  OracleConfig config;
  config.domain_size = k;
  config.parallelism = p;
  config.value_bits = 8;
  config.combine = [](std::int64_t a, std::int64_t b) { return a + b; };
  config.identity = 0;
  DistributedOracle oracle(engine, tree, config, data);

  oracle.charge_batch();
  std::size_t first = oracle.total_cost().rounds;
  oracle.charge_batch();
  std::size_t second = oracle.total_cost().rounds - first;
  // The schedule depends only on (tree, p, widths): batches cost the same.
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleSweep,
                         ::testing::Combine(::testing::Values(4u, 12u, 24u),
                                            ::testing::Values(8u, 64u),
                                            ::testing::Values(1u, 4u, 16u)));

class StateDistributionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(StateDistributionSweep, PipelinedBeatsNaiveAndMatchesFormula) {
  auto [n, q] = GetParam();
  net::Graph g = net::path_graph(n);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);

  auto pipelined = distribute_state(engine, tree, q);
  auto naive = distribute_state_unpipelined(engine, tree, q);
  std::size_t words = words_for_bits(q, n);
  if (n > 1) {
    EXPECT_EQ(pipelined.rounds, tree.height + words - 1);
    EXPECT_EQ(naive.rounds, tree.height * words);
    EXPECT_LE(pipelined.rounds, naive.rounds);
  }
  // Both directions carry the same number of qubit-words.
  auto reverse = undistribute_state(engine, tree, q);
  EXPECT_EQ(reverse.quantum_words, pipelined.quantum_words);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StateDistributionSweep,
                         ::testing::Combine(::testing::Values(2u, 9u, 33u),
                                            ::testing::Values(1u, 16u, 100u)));

TEST(OracleCostShape, CongestBReducesBatchRounds) {
  // The whole Theorem 8 pipeline honors CONGEST(B): quadrupling the per-
  // edge budget cuts a batch's measured rounds substantially and never
  // changes the aggregates.
  net::Graph g = net::path_graph(20);
  std::vector<std::vector<query::Value>> data(20, std::vector<query::Value>(32, 2));
  auto run_with = [&](std::size_t bandwidth) {
    net::Engine engine(g, bandwidth, 1);
    net::BfsTree tree = net::build_bfs_tree(engine, 0);
    OracleConfig config;
    config.domain_size = 32;
    config.parallelism = 8;
    config.value_bits = 16;
    config.combine = [](std::int64_t a, std::int64_t b) { return a + b; };
    config.identity = 0;
    DistributedOracle oracle(engine, tree, config, data);
    std::vector<std::size_t> batch{0, 5, 31};
    auto values = oracle.query(batch);
    return std::pair{values, oracle.total_cost().rounds};
  };
  auto [v1, r1] = run_with(1);
  auto [v4, r4] = run_with(4);
  EXPECT_EQ(v1, v4);
  EXPECT_EQ(v1[0], 40);  // 20 nodes x 2
  EXPECT_LT(2 * r4, r1 + 8);
}

TEST(OracleCostShape, RoundsGrowLinearlyInValueWords) {
  // Theorem 8: the (D + p) ceil(q / log n) term.
  net::Graph g = net::path_graph(16);
  net::Engine engine(g, 1, 1);
  net::BfsTree tree = net::build_bfs_tree(engine, 0);
  std::vector<std::vector<query::Value>> data(16, std::vector<query::Value>(8, 1));

  auto cost_at = [&](std::size_t value_bits) {
    OracleConfig config;
    config.domain_size = 8;
    config.parallelism = 4;
    config.value_bits = value_bits;
    config.combine = [](std::int64_t a, std::int64_t b) { return a + b; };
    config.identity = 0;
    DistributedOracle oracle(engine, tree, config, data);
    oracle.charge_batch();
    return oracle.total_cost().rounds;
  };
  double one_word = static_cast<double>(cost_at(4));     // 1 word at n = 16
  double four_words = static_cast<double>(cost_at(16));  // 4 words
  // The value-carrying phases scale ~4x; the index phases are unchanged, so
  // the total lands between those extremes.
  EXPECT_GT(four_words, 1.6 * one_word);
  EXPECT_LT(four_words, 4.5 * one_word);
}

}  // namespace
}  // namespace qcongest::framework
