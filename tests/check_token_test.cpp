#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/check/token.hpp"

namespace qcongest::check {
namespace {

std::vector<std::string> texts(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const auto& t : tokens) out.push_back(t.text);
  return out;
}

std::vector<Token> of_kind(const std::vector<Token>& tokens, TokenKind kind) {
  std::vector<Token> out;
  for (const auto& t : tokens) {
    if (t.kind == kind) out.push_back(t);
  }
  return out;
}

// --- basics ------------------------------------------------------------------

TEST(Token, IdentifiersNumbersAndPositions) {
  auto tokens = tokenize("int x = 42;\nauto y = x;\n");
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[3].text, "42");
  EXPECT_EQ(tokens[5].text, "auto");
  EXPECT_EQ(tokens[5].line, 2u);
  EXPECT_EQ(tokens[5].column, 1u);
}

TEST(Token, MultiCharPunctuatorsStayWhole) {
  auto tokens = tokenize("a->b::c >>= d <=> e ... f ->* g;");
  auto t = texts(tokens);
  EXPECT_NE(std::find(t.begin(), t.end(), "->"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "::"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), ">>="), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "<=>"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "..."), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "->*"), t.end());
}

// --- comments ----------------------------------------------------------------

TEST(Token, CommentsProduceNoTokens) {
  EXPECT_TRUE(tokenize("// std::thread rand() srand(7)\n").empty());
  EXPECT_TRUE(tokenize("/* rand() */").empty());
}

TEST(Token, BlockCommentSpansLinesAndPositionsRecover) {
  auto tokens = tokenize("a /* line one\n   line two\n   line three */ b\n");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 3u);
}

TEST(Token, UnterminatedBlockCommentConsumesToEnd) {
  EXPECT_TRUE(tokenize("/* never closed\nrand();\n").empty());
}

// --- string and char literals ------------------------------------------------

TEST(Token, StringLiteralIsOneTokenIncludingTriggers) {
  auto tokens = tokenize("const char* s = \"std::thread and rand()\";\n");
  auto strings = of_kind(tokens, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "\"std::thread and rand()\"");
  // Nothing inside the literal leaked out as identifiers.
  for (const auto& t : of_kind(tokens, TokenKind::kIdentifier)) {
    EXPECT_NE(t.text, "thread");
    EXPECT_NE(t.text, "rand");
  }
}

TEST(Token, EscapedQuotesStayInsideTheLiteral) {
  auto tokens = tokenize(R"(x = "a \" b"; y;)");
  auto strings = of_kind(tokens, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "\"a \\\" b\"");
}

TEST(Token, EncodingPrefixesAttachToTheLiteral) {
  auto tokens = tokenize("auto a = u8\"x\"; auto b = L\"y\"; auto c = u'z';\n");
  auto strings = of_kind(tokens, TokenKind::kString);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0].text, "u8\"x\"");
  EXPECT_EQ(strings[1].text, "L\"y\"");
  auto chars = of_kind(tokens, TokenKind::kChar);
  ASSERT_EQ(chars.size(), 1u);
  EXPECT_EQ(chars[0].text, "u'z'");
}

TEST(Token, RawStringWithDelimiterIsOneToken) {
  // The inner `"` and `)` must not end the literal; only )doc" does.
  std::string source = "auto s = R\"doc(quote \" close ) rand() std::thread)doc\";\n";
  auto tokens = tokenize(source);
  auto strings = of_kind(tokens, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text,
            "R\"doc(quote \" close ) rand() std::thread)doc\"");
  for (const auto& t : of_kind(tokens, TokenKind::kIdentifier)) {
    EXPECT_NE(t.text, "rand");
  }
}

TEST(Token, RawStringSpansLines) {
  auto tokens = tokenize("auto s = R\"(line one\nline two)\"; next;\n");
  auto strings = of_kind(tokens, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  // The token after the literal lands on the second line.
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[tokens.size() - 2].text, "next");
  EXPECT_EQ(tokens[tokens.size() - 2].line, 2u);
}

// --- line splices ------------------------------------------------------------

TEST(Token, BackslashNewlineSplicesAnIdentifier) {
  auto tokens = tokenize("long_na\\\nme = 1;\n");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "long_name");
}

TEST(Token, BackslashNewlineInsideStringStaysOneLiteral) {
  // The old line-based linter scanned the continuation line as code.
  auto tokens = tokenize("auto s = \"no \\\nstd::thread here\";\n");
  auto strings = of_kind(tokens, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  for (const auto& t : of_kind(tokens, TokenKind::kIdentifier)) {
    EXPECT_NE(t.text, "thread");
  }
}

// --- preprocessor directives -------------------------------------------------

TEST(Token, DirectiveIsOneTokenAndNotCode) {
  auto tokens = tokenize("#include \"src/net/graph.hpp\"\nint x;\n");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kDirective);
  EXPECT_EQ(tokens[0].text, "#include \"src/net/graph.hpp\"");
  EXPECT_EQ(tokens[1].text, "int");
}

TEST(Token, ContinuedDefineIsOneDirective) {
  auto tokens = tokenize("#define CHECK(x) \\\n  do { rand(); } while (0)\nint y;\n");
  auto directives = of_kind(tokens, TokenKind::kDirective);
  ASSERT_EQ(directives.size(), 1u);
  // The macro body rides inside the directive token, not the code stream.
  for (const auto& t : of_kind(tokens, TokenKind::kIdentifier)) {
    EXPECT_NE(t.text, "rand");
  }
}

TEST(Token, HashMidLineIsNotADirective) {
  auto tokens = tokenize("int a = b # c;\n");  // not valid C++, but not a directive
  EXPECT_TRUE(of_kind(tokens, TokenKind::kDirective).empty());
}

// --- numbers -----------------------------------------------------------------

TEST(Token, DigitSeparatorsStayInOneNumber) {
  auto tokens = tokenize("auto n = 1'000'000;\n");
  auto numbers = of_kind(tokens, TokenKind::kNumber);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0].text, "1'000'000");
  EXPECT_FALSE(is_float_literal(numbers[0]));
}

TEST(Token, FloatLiteralClassification) {
  auto num = [](const std::string& text) {
    auto tokens = tokenize("x = " + text + ";");
    auto numbers = of_kind(tokens, TokenKind::kNumber);
    EXPECT_EQ(numbers.size(), 1u) << text;
    return numbers.empty() ? Token{} : numbers[0];
  };
  EXPECT_TRUE(is_float_literal(num("1.0")));
  EXPECT_TRUE(is_float_literal(num(".5")));
  EXPECT_TRUE(is_float_literal(num("1e-9")));
  EXPECT_TRUE(is_float_literal(num("0x1fp3")));
  EXPECT_FALSE(is_float_literal(num("42")));
  EXPECT_FALSE(is_float_literal(num("0x1f")));
  EXPECT_FALSE(is_float_literal(num("1'000")));
}

TEST(Token, NegativeExponentStaysInOneNumber) {
  auto tokens = tokenize("if (x == 1.5e-9) {}");
  auto numbers = of_kind(tokens, TokenKind::kNumber);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0].text, "1.5e-9");
}

}  // namespace
}  // namespace qcongest::check
