// Edge-case and robustness sweeps: tiny networks, degenerate inputs, and
// the new generator families.

#include <gtest/gtest.h>

#include "src/apps/deutsch_jozsa.hpp"
#include "src/apps/eccentricity.hpp"
#include "src/apps/element_distinctness.hpp"
#include "src/apps/meeting_scheduling.hpp"
#include "src/net/generators.hpp"

namespace qcongest::apps {
namespace {

TEST(Generators2, RandomRegularDegreesAndConnectivity) {
  util::Rng rng(1);
  for (auto [n, d] : {std::pair{8u, 3u}, {20u, 4u}, {30u, 3u}}) {
    net::Graph g = net::random_regular_graph(n, d, rng);
    EXPECT_TRUE(g.connected());
    std::size_t full_degree = 0;
    for (net::NodeId v = 0; v < n; ++v) {
      EXPECT_LE(g.degree(v), d);
      EXPECT_GE(g.degree(v) + 2, d);  // the pairing model may skip pairs
      if (g.degree(v) == d) ++full_degree;
    }
    EXPECT_GE(full_degree, 3 * n / 4);  // near-regular
  }
  EXPECT_THROW(net::random_regular_graph(5, 3, rng), std::invalid_argument);  // odd
  EXPECT_THROW(net::random_regular_graph(4, 1, rng), std::invalid_argument);
}

TEST(Generators2, CavemanStructure) {
  net::Graph g = net::caveman_graph(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.girth(), 3u);
  // 4 cliques of C(5,2) edges plus 4 bridges.
  EXPECT_EQ(g.num_edges(), 4 * 10 + 4);
  EXPECT_THROW(net::caveman_graph(1, 5), std::invalid_argument);
}

TEST(Generators2, BalancedTreeShape) {
  net::Graph g = net::balanced_tree(3, 2);  // 1 + 3 + 9
  EXPECT_EQ(g.num_nodes(), 13u);
  EXPECT_FALSE(g.girth().has_value());
  EXPECT_EQ(g.bfs_distances(0)[12], 2u);
  net::Graph line = net::balanced_tree(1, 5);
  EXPECT_EQ(line.num_nodes(), 6u);
  EXPECT_EQ(line.diameter(), 5u);
}

TEST(EdgeCases, SingleNodeNetworkApps) {
  util::Rng rng(2);
  net::Graph g(1);
  // Meeting scheduling with one participant.
  Calendars calendars{{1, 0, 1, 1}};
  auto classical = meeting_scheduling_classical(g, calendars);
  EXPECT_EQ(classical.availability, 1);
  auto quantum = meeting_scheduling_quantum(g, calendars, rng);
  EXPECT_EQ(quantum.availability, 1);
  // Eccentricity on a single node: diameter 0.
  EXPECT_EQ(diameter_classical(g).value, 0u);
  EXPECT_EQ(diameter_quantum(g, rng).value, 0u);
}

TEST(EdgeCases, TwoNodeNetwork) {
  util::Rng rng(3);
  net::Graph g = net::path_graph(2);
  EXPECT_EQ(diameter_quantum(g, rng).value, 1u);
  EXPECT_EQ(radius_quantum(g, rng).value, 1u);

  std::vector<query::Value> same{7, 7};
  auto result = element_distinctness_nodes_classical(g, same, 10);
  ASSERT_TRUE(result.collision.has_value());
  EXPECT_EQ(result.collision->i, 0u);
  EXPECT_EQ(result.collision->j, 1u);
}

TEST(EdgeCases, SingleSlotMeeting) {
  util::Rng rng(4);
  net::Graph g = net::path_graph(4);
  Calendars calendars(4, std::vector<query::Value>{1});
  auto quantum = meeting_scheduling_quantum(g, calendars, rng);
  EXPECT_EQ(quantum.best_slot, 0u);
  EXPECT_EQ(quantum.availability, 4);
}

TEST(EdgeCases, MinimalDeutschJozsa) {
  // k = 2: constant or |x| = 1 balanced.
  net::Graph g = net::path_graph(3);
  std::vector<std::vector<query::Value>> constant(3, std::vector<query::Value>{1, 1});
  // XOR over three ones per slot = 1,1 -> constant one.
  EXPECT_EQ(deutsch_jozsa_quantum(g, constant).verdict, query::DjVerdict::kConstant);
  std::vector<std::vector<query::Value>> balanced(3, std::vector<query::Value>{0, 0});
  balanced[1] = {1, 0};  // x = (1, 0): balanced
  EXPECT_EQ(deutsch_jozsa_quantum(g, balanced).verdict, query::DjVerdict::kBalanced);
}

TEST(EdgeCases, DistinctnessWithAllEqualValues) {
  util::Rng rng(5);
  net::Graph g = net::star_graph(6);
  std::vector<query::Value> values(6, 42);
  auto quantum = element_distinctness_nodes_quantum(g, values, 100, rng);
  // Dense collisions: the walk should essentially always find one.
  ASSERT_TRUE(quantum.collision.has_value());
  EXPECT_EQ(quantum.collision->value, 42);
}

TEST(EdgeCases, AppsOnCavemanAndRegularGraphs) {
  util::Rng rng(6);
  net::Graph caveman = net::caveman_graph(3, 4);
  EXPECT_EQ(diameter_quantum(caveman, rng).value, caveman.diameter());
  net::Graph regular = net::random_regular_graph(16, 4, rng);
  EXPECT_EQ(diameter_classical(regular).value, regular.diameter());
}

}  // namespace
}  // namespace qcongest::apps
