#include <gtest/gtest.h>

#include "src/query/grover_math.hpp"
#include "src/query/oracle.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest::query {
namespace {

TEST(InMemoryOracle, BasicQueryAndLedger) {
  InMemoryOracle oracle({10, 20, 30, 40}, 2);
  EXPECT_EQ(oracle.domain_size(), 4u);
  EXPECT_EQ(oracle.parallelism(), 2u);

  std::vector<std::size_t> batch{1, 3};
  auto values = oracle.query(batch);
  EXPECT_EQ(values, (std::vector<Value>{20, 40}));
  EXPECT_EQ(oracle.ledger().batches, 1u);
  EXPECT_EQ(oracle.ledger().total_queries, 2u);
  EXPECT_EQ(oracle.ledger().max_batch, 2u);

  oracle.charge_batch();
  EXPECT_EQ(oracle.ledger().batches, 2u);

  oracle.reset_ledger();
  EXPECT_EQ(oracle.ledger().batches, 0u);
}

TEST(InMemoryOracle, PeekIsUncharged) {
  InMemoryOracle oracle({1, 2, 3}, 1);
  EXPECT_EQ(oracle.peek(2), 3);
  EXPECT_EQ(oracle.ledger().batches, 0u);
}

TEST(InMemoryOracle, RejectsBadBatches) {
  InMemoryOracle oracle({1, 2, 3}, 2);
  std::vector<std::size_t> too_big{0, 1, 2};
  EXPECT_THROW(oracle.query(too_big), std::invalid_argument);
  std::vector<std::size_t> out_of_range{5};
  EXPECT_THROW(oracle.query(out_of_range), std::out_of_range);
  std::vector<std::size_t> empty;
  EXPECT_THROW(oracle.query(empty), std::invalid_argument);
}

TEST(InMemoryOracle, RejectsBadConstruction) {
  EXPECT_THROW(InMemoryOracle({}, 1), std::invalid_argument);
  EXPECT_THROW(InMemoryOracle({1}, 0), std::invalid_argument);
}

TEST(GroverMath, AngleAndSuccessProbability) {
  EXPECT_DOUBLE_EQ(grover_angle(0.0), 0.0);
  EXPECT_NEAR(grover_angle(1.0), M_PI / 2.0, 1e-12);
  EXPECT_NEAR(grover_angle(0.25), M_PI / 6.0, 1e-12);
  // One iteration on fraction 1/4: sin^2(3 * pi/6) = 1.
  EXPECT_NEAR(grover_success_probability(1, grover_angle(0.25)), 1.0, 1e-12);
  // Zero iterations: just the initial fraction.
  EXPECT_NEAR(grover_success_probability(0, grover_angle(0.1)), 0.1, 1e-12);
  EXPECT_THROW(grover_angle(1.5), std::invalid_argument);
}

TEST(GroverMath, MarkedSubsetFractionMatchesExactCounting) {
  // Compare against exact counting for small (k, t, p).
  for (std::size_t k : {6u, 10u}) {
    for (std::size_t t = 0; t <= k; ++t) {
      for (std::size_t p = 1; p <= k; ++p) {
        double expected =
            1.0 - util::binomial(k - t, p) / util::binomial(k, p);
        EXPECT_NEAR(marked_subset_fraction(k, t, p), expected, 1e-9)
            << "k=" << k << " t=" << t << " p=" << p;
      }
    }
  }
}

TEST(GroverMath, MarkedSubsetFractionTinyValuesStable) {
  // k = 1e6, t = 1, p = 10: fraction ~ p/k = 1e-5; log-space math must not
  // lose it to cancellation.
  double f = marked_subset_fraction(1000000, 1, 10);
  EXPECT_NEAR(f, 1e-5, 1e-7);
}

TEST(GroverMath, SampleSubsetWithMarkedAlwaysContainsMarked) {
  util::Rng rng(17);
  std::vector<std::size_t> marked{3, 77, 500};
  for (int trial = 0; trial < 200; ++trial) {
    auto subset = sample_subset_with_marked(1000, marked, 10, rng);
    EXPECT_EQ(subset.size(), 10u);
    std::set<std::size_t> s(subset.begin(), subset.end());
    EXPECT_EQ(s.size(), 10u);  // distinct
    bool hit = s.contains(3) || s.contains(77) || s.contains(500);
    EXPECT_TRUE(hit);
    for (auto v : subset) EXPECT_LT(v, 1000u);
  }
}

TEST(GroverMath, SampleSubsetWithoutMarkedAvoidsMarked) {
  util::Rng rng(18);
  std::vector<std::size_t> marked{0, 1, 2};
  for (int trial = 0; trial < 100; ++trial) {
    auto subset = sample_subset_without_marked(50, marked, 5, rng);
    EXPECT_EQ(subset.size(), 5u);
    for (auto v : subset) {
      EXPECT_GT(v, 2u);
      EXPECT_LT(v, 50u);
    }
  }
}

TEST(GroverMath, SampleSubsetWithMarkedMatchesHypergeometric) {
  // With k=20, t=10, p=2, P(2 marked | >=1 marked) = C(10,2)/(C(20,2)-C(10,2))
  // = 45/145.
  util::Rng rng(19);
  std::vector<std::size_t> marked;
  for (std::size_t i = 0; i < 10; ++i) marked.push_back(i);
  int both = 0;
  const int trials = 6000;
  for (int trial = 0; trial < trials; ++trial) {
    auto subset = sample_subset_with_marked(20, marked, 2, rng);
    int hits = 0;
    for (auto v : subset) {
      if (v < 10) ++hits;
    }
    EXPECT_GE(hits, 1);
    if (hits == 2) ++both;
  }
  EXPECT_NEAR(static_cast<double>(both) / trials, 45.0 / 145.0, 0.03);
}

TEST(GroverMath, DenseMarkedRegimeWorks) {
  util::Rng rng(20);
  // Most of the domain marked: exercises the dense sampling path.
  std::vector<std::size_t> marked;
  for (std::size_t i = 0; i < 90; ++i) marked.push_back(i);
  auto subset = sample_subset_with_marked(100, marked, 20, rng);
  EXPECT_EQ(subset.size(), 20u);
  auto unmarked_subset = sample_subset_without_marked(100, marked, 10, rng);
  for (auto v : unmarked_subset) EXPECT_GE(v, 90u);
}

}  // namespace
}  // namespace qcongest::query
