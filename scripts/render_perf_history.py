#!/usr/bin/env python3
"""Render the committed perf trajectory as a markdown delta table.

Reads bench/baselines/PERF_HISTORY.jsonl (one line-JSON record per
perf_gate --history invocation, appended by scripts/perf_smoke.sh when
baselines are re-recorded) and prints one GitHub-flavored markdown table
per baseline file: each row is one recorded run of one benchmark, newest
last, so the table reads as the benchmark's wall-clock history across
commits. CI appends the output to the run-reports job summary.
"""
import collections
import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "bench/baselines/PERF_HISTORY.jsonl"
    records = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                # A truncated append or botched merge must not take down the
                # whole trajectory render; skip the bad line, keep the rest.
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as error:
                    print(
                        f"warning: {path}:{number}: skipping malformed "
                        f"history line ({error})",
                        file=sys.stderr,
                    )
    except FileNotFoundError:
        print(f"(no perf history at {path} yet)")
        return 0
    if not records:
        print(f"(perf history at {path} is empty)")
        return 0

    by_baseline = collections.OrderedDict()
    for record in records:
        by_baseline.setdefault(record["baseline"], []).append(record)

    print("## Perf trajectory (committed history)")
    for baseline, recs in by_baseline.items():
        print(f"\n### `{baseline}`\n")
        print("| label | benchmark | before | after | delta |")
        print("| --- | --- | ---: | ---: | ---: |")
        for record in recs:
            for run in record["runs"]:
                before = run["baseline_ns"] / 1e6
                after = run["current_ns"] / 1e6
                delta = (run["ratio"] - 1.0) * 100.0
                print(
                    f"| {record['label']} | `{run['name']}` "
                    f"| {before:.2f}ms | {after:.2f}ms | {delta:+.1f}% |"
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
