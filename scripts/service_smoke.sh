#!/usr/bin/env bash
# Service-smoke gate: boot qcongestd, drive it with qload, and hold the two
# product guarantees the daemon exists for:
#
#   1. graceful overload shedding — a submit burst far past the admission
#      bound produces structured rejections with retry hints, every shed
#      job succeeds on jittered retry, and the server never crashes, hangs,
#      or drops a reply on the floor;
#   2. byte-identical reports — the same (job, seed) replayed at engine
#      thread budgets 1 and 8, while the rest of the run keeps the server
#      busy, returns byte-equal report documents (qload --check-determinism
#      compares them).
#
# Along the way the run mixes clean jobs, fault-heavy jobs, crash-schedule
# jobs, malformed specs, and raw protocol garbage, so the exception- and
# connection-isolation stories are exercised too, then asks the daemon to
# shut down cleanly and checks it obliged.
#
# Usage: scripts/service_smoke.sh [build_dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
QCONGESTD="${BUILD_DIR}/tools/qcongestd"
QLOAD="${BUILD_DIR}/tools/qload"

WORK_DIR=$(mktemp -d)
PORT_FILE="${WORK_DIR}/port"
SERVER_LOG="${WORK_DIR}/qcongestd.log"

SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill "${SERVER_PID}" 2>/dev/null || true
    wait "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

# A small queue and few workers on purpose: the overload burst below must
# actually hit the admission bound on any machine.
"${QCONGESTD}" --port 0 --workers 2 --max-pending 4 --max-nodes 64 \
  --port-file "${PORT_FILE}" > "${SERVER_LOG}" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 50); do
  [[ -s "${PORT_FILE}" ]] && break
  kill -0 "${SERVER_PID}" 2>/dev/null || {
    echo "service-smoke: server died during startup"; cat "${SERVER_LOG}"; exit 1; }
  sleep 0.1
done
[[ -s "${PORT_FILE}" ]] || { echo "service-smoke: server never bound a port"; exit 1; }
PORT=$(cat "${PORT_FILE}")
echo "service-smoke: qcongestd up on port ${PORT} (pid ${SERVER_PID})"

fail=0

echo "== lane 1: mixed clean + faulty jobs, moderate load =="
"${QLOAD}" --port "${PORT}" --jobs 9 --apps bfs,leader,convergecast,diameter \
  --nodes 20 --drop 0.05 --seed 41 || fail=1

echo "== lane 2: malformed specs and protocol garbage are survivable =="
# A spec over the server's --max-nodes limit must come back status=invalid
# (a structured reply qload tallies, not a failure or a hang), and raw
# garbage bytes must only cost the connection that sent them.
lane2_out=$("${QLOAD}" --port "${PORT}" --jobs 2 --apps bfs --nodes 999 --seed 1) \
  || { echo "service-smoke: qload choked on invalid-spec replies"; fail=1; }
echo "   ${lane2_out}"
grep -q "invalid=2" <<< "${lane2_out}" \
  || { echo "service-smoke: expected 2 structured invalid replies"; fail=1; }
head -c 256 /dev/urandom | timeout 5 bash -c "cat > /dev/tcp/127.0.0.1/${PORT}" || true
kill -0 "${SERVER_PID}" 2>/dev/null || {
  echo "service-smoke: server died on garbage input"; cat "${SERVER_LOG}"; exit 1; }

echo "== lane 3: overload burst sheds gracefully and retries drain =="
"${QLOAD}" --port "${PORT}" --jobs 24 --burst --expect-shed \
  --apps diameter,multibfs --graph complete --nodes 24 --drop 0.1 \
  --seed 7 --max-retries 12 || fail=1

echo "== lane 4: byte-identical reports at threads 1 vs 8 under load =="
"${QLOAD}" --port "${PORT}" --jobs 6 --apps bfs,leader \
  --nodes 24 --drop 0.05 --seed 91 \
  --check-determinism --shutdown || fail=1

# The daemon was asked to shut down; it must exit cleanly on its own.
for _ in $(seq 1 100); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${SERVER_PID}" 2>/dev/null; then
  echo "service-smoke: server ignored shutdown"
  fail=1
else
  wait "${SERVER_PID}" || { echo "service-smoke: server exited nonzero"; fail=1; }
  SERVER_PID=""
fi

echo "== server log =="
cat "${SERVER_LOG}"
grep -q "shut down cleanly" "${SERVER_LOG}" || {
  echo "service-smoke: no clean-shutdown line in the log"; fail=1; }

if [[ "${fail}" -ne 0 ]]; then
  echo "service-smoke: FAIL"
  exit 1
fi
echo "service-smoke: PASS"
