#!/usr/bin/env bash
# Perf-smoke gate: run a small pinned benchmark subset, dump BENCH_*.json
# (bench/json_main.cpp), and compare against the committed baselines in
# bench/baselines/ with tools/perf_gate. The gate fails on a >25% wall-clock
# regression or on ANY drift in a deterministic counter (round counts,
# ledger totals) — the latter is machine-independent, so the job stays
# meaningful even when the CI runner is faster than the machine that
# recorded the baselines.
#
# Benchmarks that deposit run-report sections additionally emit
# REPORT_*.json (fully deterministic, no timings). Those are gated with
# perf_gate --report: byte-identity against the committed baseline, on any
# machine.
#
# Usage:
#   scripts/perf_smoke.sh [build_dir]             # gate against baselines
#   scripts/perf_smoke.sh [build_dir] --record    # re-record the baselines
#
# Environment knobs (all optional):
#   QCONGEST_SMOKE_OUT    keep BENCH_*.json in this directory instead of a
#                         throwaway mktemp dir (CI uploads them as artifacts)
#   PERF_GATE_MARKDOWN    append the per-benchmark delta tables as markdown
#                         to this file (CI points it at $GITHUB_STEP_SUMMARY)
#
# --record additionally appends one delta record per baseline file to the
# committed perf trajectory (bench/baselines/PERF_HISTORY.jsonl), labelled
# with the current commit, before overwriting the baselines.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
MODE=${2:-check}
BASELINE_DIR=bench/baselines
HISTORY_FILE=${BASELINE_DIR}/PERF_HISTORY.jsonl

# The pinned subset: one framework batch-cost point, the two interesting
# parallelism-sweep points (p=1 serial-engine hot path, p=32 ~ diameter),
# the clean + faulty BFS rows of the reliable-transport overhead bench,
# and two recovery-tax rows (full replay vs dense checkpoints) whose
# recovery_rounds/recovery_words counters pin the E-recover accounting.
FRAMEWORK_FILTER='BM_BatchCost/n:64/k:1024/p:8/q:10|BM_ParallelismSweep/p:(1|32)/'
FAULT_FILTER='BM_FaultOverheadBfs/drop_permille:(0|50)/n:31'
RECOVER_FILTER='BM_RecoveryTaxBfs/ckpt_every:(0|2)/n:31'

if [ -n "${QCONGEST_SMOKE_OUT:-}" ]; then
  OUT_DIR=${QCONGEST_SMOKE_OUT}
  mkdir -p "${OUT_DIR}"
else
  OUT_DIR=$(mktemp -d)
  trap 'rm -rf "${OUT_DIR}"' EXIT
fi
export QCONGEST_BENCH_JSON_DIR="${OUT_DIR}"

"${BUILD_DIR}/bench/bench_framework" --benchmark_filter="${FRAMEWORK_FILTER}"
"${BUILD_DIR}/bench/bench_fault_overhead" --benchmark_filter="${FAULT_FILTER}"
"${BUILD_DIR}/bench/bench_recovery" --benchmark_filter="${RECOVER_FILTER}"

# The perf-trajectory label: which commit this run is being compared (or
# re-recorded) against, readable without checking out the repo.
LABEL=$(git log -1 --format='%h %cs' 2>/dev/null || echo "uncommitted")

if [ "${MODE}" = "--record" ]; then
  mkdir -p "${BASELINE_DIR}"
  # Append old-baseline -> new-run deltas to the committed trajectory before
  # overwriting. Drifted counters and regressions are sanctioned here (that
  # is what re-recording means), so the gate's exit code is ignored.
  for baseline in "${BASELINE_DIR}"/BENCH_*.json; do
    [ -e "${baseline}" ] || continue
    name=$(basename "${baseline}")
    [ -e "${OUT_DIR}/${name}" ] || continue
    "${BUILD_DIR}/tools/perf_gate" "${baseline}" "${OUT_DIR}/${name}" \
        --history "${HISTORY_FILE}" --label "${LABEL} (re-record)" || true
  done
  cp "${OUT_DIR}"/BENCH_*.json "${BASELINE_DIR}/"
  if compgen -G "${OUT_DIR}/REPORT_*.json" > /dev/null; then
    cp "${OUT_DIR}"/REPORT_*.json "${BASELINE_DIR}/"
  fi
  echo "perf_smoke: baselines re-recorded into ${BASELINE_DIR}/"
  exit 0
fi

status=0
GATE_EXTRA=()
if [ -n "${PERF_GATE_MARKDOWN:-}" ]; then
  GATE_EXTRA+=(--markdown "${PERF_GATE_MARKDOWN}")
fi
for baseline in "${BASELINE_DIR}"/BENCH_*.json; do
  name=$(basename "${baseline}")
  if ! "${BUILD_DIR}/tools/perf_gate" "${baseline}" "${OUT_DIR}/${name}" \
      --label "${LABEL}" "${GATE_EXTRA[@]}"; then
    status=1
  fi
done
for baseline in "${BASELINE_DIR}"/REPORT_*.json; do
  [ -e "${baseline}" ] || continue
  name=$(basename "${baseline}")
  if ! "${BUILD_DIR}/tools/perf_gate" --report "${baseline}" "${OUT_DIR}/${name}"; then
    status=1
  fi
done
exit "${status}"
