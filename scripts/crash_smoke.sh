#!/usr/bin/env bash
# Crash-smoke gate: the durability contract of --journal-dir, held under a
# real SIGKILL. Three phases:
#
#   REF    an uninterrupted daemon runs a fixed burst of jobs and dumps
#          every report body — the byte-identity reference.
#   CHAOS  a fresh daemon (1 worker, journal + cache on) takes the same
#          burst from qload --reconnect, is SIGKILLed mid-flight, and is
#          restarted on the same port with 6 workers. qload must reconnect,
#          resubmit, and finish with every job ok — and every report must
#          be byte-identical to the reference. Replayed jobs, cache
#          re-serves, and fresh runs are all indistinguishable on the wire;
#          that is the whole point.
#   TAIL   garbage is appended to the newest journal segment (a torn /
#          corrupt tail, as a crash mid-append would leave). The restart
#          must boot with zero lost accepted jobs and zero double-runs:
#          every resubmitted job re-serves from the cache (cache_misses=0)
#          and matches the reference bytes.
#
# Usage: scripts/crash_smoke.sh [build_dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
QCONGESTD="${BUILD_DIR}/tools/qcongestd"
QLOAD="${BUILD_DIR}/tools/qload"

WORK_DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -9 "${SERVER_PID}" 2>/dev/null || true
    wait "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

JOBS=24
LOAD_ARGS=(--jobs "${JOBS}" --burst --apps diameter,multibfs,bfs
           --graph complete --nodes 24 --drop 0.1 --seed 7)

start_daemon() {  # start_daemon <log> <workers> <extra-args...>
  local log=$1 workers=$2
  shift 2
  "${QCONGESTD}" --workers "${workers}" --max-nodes 64 "$@" \
    > "${log}" 2>&1 &
  SERVER_PID=$!
}

wait_port() {  # wait_port <port_file> <log>
  local port_file=$1 log=$2
  for _ in $(seq 1 100); do
    [[ -s "${port_file}" ]] && return 0
    kill -0 "${SERVER_PID}" 2>/dev/null || {
      echo "crash-smoke: daemon died during startup"; cat "${log}"; exit 1; }
    sleep 0.1
  done
  echo "crash-smoke: daemon never bound a port"; cat "${log}"; exit 1
}

fail=0

echo "== phase 1: reference run (no crash) =="
start_daemon "${WORK_DIR}/ref.log" 2 --port 0 --port-file "${WORK_DIR}/ref.port"
wait_port "${WORK_DIR}/ref.port" "${WORK_DIR}/ref.log"
REF_PORT=$(cat "${WORK_DIR}/ref.port")
"${QLOAD}" --port "${REF_PORT}" "${LOAD_ARGS[@]}" \
  --dump-dir "${WORK_DIR}/ref" --shutdown || fail=1
wait "${SERVER_PID}" || { echo "crash-smoke: reference daemon exited nonzero"; fail=1; }
SERVER_PID=""
ref_count=$(ls "${WORK_DIR}/ref" | wc -l)
[[ "${ref_count}" -eq "${JOBS}" ]] || {
  echo "crash-smoke: reference run dumped ${ref_count}/${JOBS} reports"; fail=1; }

echo "== phase 2: SIGKILL mid-burst, restart, every byte identical =="
JOURNAL="${WORK_DIR}/journal"
CACHE="${WORK_DIR}/cache"
start_daemon "${WORK_DIR}/chaos1.log" 1 --port 0 \
  --port-file "${WORK_DIR}/chaos.port" \
  --journal-dir "${JOURNAL}" --cache-dir "${CACHE}"
wait_port "${WORK_DIR}/chaos.port" "${WORK_DIR}/chaos1.log"
PORT=$(cat "${WORK_DIR}/chaos.port")

"${QLOAD}" --port "${PORT}" "${LOAD_ARGS[@]}" --reconnect \
  --dump-dir "${WORK_DIR}/out" > "${WORK_DIR}/qload.log" 2>&1 &
QLOAD_PID=$!

# Let the burst land and a few jobs finish, then kill without mercy: some
# jobs are completed (journal proves it), some accepted-but-unfinished
# (journal replays them), maybe one is mid-append (torn tail).
sleep 0.4
kill -9 "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""
echo "   killed worker-1 daemon mid-burst"

# Restart on the same port, same journal and cache, more workers: the
# byte-identity contract must hold across a different execution schedule.
start_daemon "${WORK_DIR}/chaos2.log" 6 --port "${PORT}" \
  --journal-dir "${JOURNAL}" --cache-dir "${CACHE}" \
  --stats-json "${WORK_DIR}/chaos2-stats.json"
for _ in $(seq 1 100); do
  grep -q "listening on" "${WORK_DIR}/chaos2.log" 2>/dev/null && break
  kill -0 "${SERVER_PID}" 2>/dev/null || {
    echo "crash-smoke: restarted daemon died"; cat "${WORK_DIR}/chaos2.log"; exit 1; }
  sleep 0.1
done
grep -q "journal recovered" "${WORK_DIR}/chaos2.log" || {
  echo "crash-smoke: restart log has no recovery line"; fail=1; }

if wait "${QLOAD_PID}"; then
  echo "   qload survived the crash: $(tail -n 1 "${WORK_DIR}/qload.log")"
else
  echo "crash-smoke: qload failed across the restart"
  cat "${WORK_DIR}/qload.log"
  fail=1
fi

for ref in "${WORK_DIR}/ref/"*.json; do
  name=$(basename "${ref}")
  if ! cmp -s "${ref}" "${WORK_DIR}/out/${name}"; then
    echo "crash-smoke: report ${name} differs from the uninterrupted run"
    fail=1
  fi
done
echo "   ${ref_count} reports byte-checked against the reference"

echo "== phase 3: corrupt journal tail, zero lost jobs, zero double-runs =="
"${QLOAD}" --port "${PORT}" --jobs 1 --apps bfs --nodes 8 --seed 999 \
  --shutdown >/dev/null 2>&1 || true
for _ in $(seq 1 100); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.1
done
kill -0 "${SERVER_PID}" 2>/dev/null && {
  echo "crash-smoke: daemon ignored shutdown"; exit 1; }
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

newest_wal=$(ls "${JOURNAL}"/wal-*.log | sort | tail -n 1)
printf 'qwal1 accepted 999999 0123456789abcdef\ntorn mid-append' >> "${newest_wal}"
echo "   appended garbage tail to $(basename "${newest_wal}")"

start_daemon "${WORK_DIR}/chaos3.log" 4 --port "${PORT}" \
  --journal-dir "${JOURNAL}" --cache-dir "${CACHE}" \
  --stats-json "${WORK_DIR}/chaos3-stats.json"
for _ in $(seq 1 100); do
  grep -q "listening on" "${WORK_DIR}/chaos3.log" 2>/dev/null && break
  kill -0 "${SERVER_PID}" 2>/dev/null || {
    echo "crash-smoke: daemon died on a corrupt journal"; cat "${WORK_DIR}/chaos3.log"; exit 1; }
  sleep 0.1
done
# Zero lost accepted jobs: everything finished before the clean shutdown,
# so the corrupted tail must not resurrect (or lose) anything.
grep -q "journal recovered incomplete=0" "${WORK_DIR}/chaos3.log" || {
  echo "crash-smoke: corrupt tail changed the recovered set"
  cat "${WORK_DIR}/chaos3.log"; fail=1; }

"${QLOAD}" --port "${PORT}" "${LOAD_ARGS[@]}" \
  --dump-dir "${WORK_DIR}/out3" --shutdown || fail=1
for _ in $(seq 1 100); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.1
done
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

for ref in "${WORK_DIR}/ref/"*.json; do
  name=$(basename "${ref}")
  if ! cmp -s "${ref}" "${WORK_DIR}/out3/${name}"; then
    echo "crash-smoke: post-corruption report ${name} differs"
    fail=1
  fi
done
# Zero double-runs: every resubmission re-served from the sealed cache.
grep -q '"service.cache_misses": 0' "${WORK_DIR}/chaos3-stats.json" || {
  echo "crash-smoke: resubmission after restart re-ran a completed job:"
  cat "${WORK_DIR}/chaos3-stats.json"; fail=1; }
hits=$(grep -o '"service.cache_hits": [0-9]*' "${WORK_DIR}/chaos3-stats.json" \
  | grep -o '[0-9]*$' || echo 0)
[[ "${hits}" -ge "${JOBS}" ]] || {
  echo "crash-smoke: expected >= ${JOBS} cache hits, saw ${hits}"; fail=1; }
echo "   all ${JOBS} resubmissions served from cache (${hits} hits, 0 misses)"

echo "== daemon logs =="
tail -n 4 "${WORK_DIR}/chaos1.log" || true
tail -n 6 "${WORK_DIR}/chaos2.log" || true
tail -n 6 "${WORK_DIR}/chaos3.log" || true

if [[ "${fail}" -ne 0 ]]; then
  echo "crash-smoke: FAIL"
  exit 1
fi
echo "crash-smoke: PASS"
