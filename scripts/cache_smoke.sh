#!/usr/bin/env bash
# Cache-smoke gate: run the chaos_run sweep + report matrix twice against a
# fresh content-addressed store and hold the result-cache guarantees:
#
#   1. read-through correctness — the second identical invocation is served
#      (almost) entirely from the store: >= 90% cache hits, zero misses,
#      and a byte-identical run-report document;
#   2. thread-count independence — a third pass at a different --threads
#      still hits (thread budget is excluded from the cache key by the
#      determinism contract) and writes the same report bytes;
#   3. corruption degrades, never propagates — a bit-flipped entry is
#      detected by the integrity check, recomputed as a miss, resealed,
#      and the report bytes do not change;
#   4. invalidation by code version — flipping QCONGEST_CACHE_SALT misses
#      on every single entry (a full re-run), because the salt is baked
#      into every key;
#   5. gc — eviction respects the byte budget and reports what it did.
#
# Usage: scripts/cache_smoke.sh [build_dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
CHAOS_RUN="${BUILD_DIR}/tools/chaos_run"

WORK_DIR=$(mktemp -d)
CACHE_DIR="${WORK_DIR}/cache"
cleanup() { rm -rf "${WORK_DIR}"; }
trap cleanup EXIT

SWEEP_ARGS=(--nodes 10 --trials 3 --graph tree --seed 7 --jobs 4)

run_pass() {
  local out=$1 report=$2
  shift 2
  "${CHAOS_RUN}" "${SWEEP_ARGS[@]}" --cache-dir "${CACHE_DIR}" \
    --report "${report}" "$@" > "${out}"
}

# Parse "# cache: hits=H misses=M puts=P corrupt=C" from a pass's stdout.
# (No `| head` here: under pipefail an early pipe close turns into exit 141.)
cache_stat() {
  local file=$1 stat=$2
  sed -n "s/^# cache: .*${stat}=\([0-9]*\).*/\1/p" "${file}"
}

echo "== pass 1: cold store =="
run_pass "${WORK_DIR}/pass1.txt" "${WORK_DIR}/report1.json"
MISSES1=$(cache_stat "${WORK_DIR}/pass1.txt" misses)
[ "${MISSES1}" -gt 0 ] || { echo "FAIL: cold pass recorded no misses"; exit 1; }

echo "== pass 2: warm store must serve >= 90% from cache =="
run_pass "${WORK_DIR}/pass2.txt" "${WORK_DIR}/report2.json"
HITS=$(cache_stat "${WORK_DIR}/pass2.txt" hits)
MISSES=$(cache_stat "${WORK_DIR}/pass2.txt" misses)
TOTAL=$((HITS + MISSES))
[ "${TOTAL}" -gt 0 ] || { echo "FAIL: warm pass issued no cache lookups"; exit 1; }
if [ $((HITS * 10)) -lt $((TOTAL * 9)) ]; then
  echo "FAIL: warm pass hit rate ${HITS}/${TOTAL} below 90%"
  exit 1
fi
cmp "${WORK_DIR}/report1.json" "${WORK_DIR}/report2.json" \
  || { echo "FAIL: warm-pass report differs from cold-pass report"; exit 1; }
echo "ok: ${HITS}/${TOTAL} hits, report byte-identical"

echo "== pass 3: different --threads must still hit =="
run_pass "${WORK_DIR}/pass3.txt" "${WORK_DIR}/report3.json" --threads 4
MISSES3=$(cache_stat "${WORK_DIR}/pass3.txt" misses)
[ "${MISSES3}" -eq 0 ] || { echo "FAIL: --threads 4 missed ${MISSES3} entries"; exit 1; }
cmp "${WORK_DIR}/report1.json" "${WORK_DIR}/report3.json" \
  || { echo "FAIL: --threads 4 report differs"; exit 1; }
echo "ok: thread budget excluded from keys"

echo "== pass 4: corrupt one entry, expect recomputed miss =="
VICTIM=$(find "${CACHE_DIR}/objects" -type f | sort | awk 'NR == 1')
python3 - "${VICTIM}" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[-1] ^= 0xFF
open(path, "wb").write(data)
EOF
run_pass "${WORK_DIR}/pass4.txt" "${WORK_DIR}/report4.json"
CORRUPT=$(cache_stat "${WORK_DIR}/pass4.txt" corrupt)
[ "${CORRUPT}" -eq 1 ] || { echo "FAIL: expected 1 corrupt miss, saw ${CORRUPT}"; exit 1; }
cmp "${WORK_DIR}/report1.json" "${WORK_DIR}/report4.json" \
  || { echo "FAIL: report changed after corrupt-entry recompute"; exit 1; }
echo "ok: corruption degraded to a recomputed miss"

echo "== pass 5: salt flip must invalidate everything =="
QCONGEST_CACHE_SALT=cache-smoke-other-version \
  run_pass "${WORK_DIR}/pass5.txt" "${WORK_DIR}/report5.json"
HITS5=$(cache_stat "${WORK_DIR}/pass5.txt" hits)
[ "${HITS5}" -eq 0 ] || { echo "FAIL: salt flip still hit ${HITS5} entries"; exit 1; }
cmp "${WORK_DIR}/report1.json" "${WORK_DIR}/report5.json" \
  || { echo "FAIL: salt flip changed the report bytes"; exit 1; }
echo "ok: full invalidation on code-version salt change"

echo "== gc: evict down to a small budget =="
"${CHAOS_RUN}" gc --cache-dir "${CACHE_DIR}" --max-bytes 4096 | tee "${WORK_DIR}/gc.txt"
grep -q "evicted=" "${WORK_DIR}/gc.txt" || { echo "FAIL: gc printed no result"; exit 1; }
# Entry bytes only (directory inodes don't count against the budget).
AFTER=$(find "${CACHE_DIR}/objects" -type f -printf '%s\n' | awk '{s+=$1} END {print s+0}')
[ "${AFTER}" -le 4096 ] || { echo "FAIL: gc left ${AFTER} bytes over budget"; exit 1; }

echo
echo "cache_smoke: all checks passed"
