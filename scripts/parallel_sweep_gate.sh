#!/usr/bin/env bash
# Parallelism sweep gate: run BM_ParallelismSweep at engine thread budgets
# {1, 8, 32} and fail if the scaling cliff ever comes back.
#
# The cliff this guards: before the arena delivery overhaul, the p=32 row
# (n=33 double-star, ~diameter-many batches) took 1.66x the SERIAL p=1 row
# (209ms vs 126ms) — sharding made the simulation slower than not sharding.
# p=32 cannot beat a same-machine p=1 outright: it delivers ~8x the words
# (minfind traffic grows as sqrt(k*p)), so its floor is message volume, not
# pass overhead. The enforceable form of "p:32 wall-clock <= p:1" is
# therefore pinned to the serial cliff reference below: the p=1 wall-clock
# committed with the pre-overhaul baseline. p=32 finishing under the OLD
# p=1 on every thread budget means the overhaul's win is intact; drifting
# back over it is the regression this gate exists to catch.
#
# Usage: scripts/parallel_sweep_gate.sh [build_dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}

# Serial p=1 wall-clock of the pre-overhaul committed baseline. The gate
# allows the same 25% wall-clock headroom as perf_gate (runner speed and
# load vary); post-overhaul p=32 sits near 0.8x the reference, while the
# pre-overhaul cliff was 1.66x — the two regimes stay separated even
# through the headroom.
CLIFF_REFERENCE_NS=126356237
LIMIT_NS=$(awk -v n="${CLIFF_REFERENCE_NS}" 'BEGIN { printf "%d", n * 1.25 }')

FILTER='BM_ParallelismSweep/p:(1|32)/'

extract_ns() {
  # real_time_ns of one named run from the line-oriented BENCH json.
  awk -v bench="$2" '
    /"name"/ { cur = $0; sub(/.*: *"/, "", cur); sub(/".*/, "", cur) }
    /"real_time_ns"/ && cur == bench {
      v = $0; sub(/.*: */, "", v); sub(/,.*/, "", v); printf "%d\n", v; exit
    }
  ' "$1"
}

status=0
printf '%-8s %12s %12s %8s  %s\n' "threads" "p:1" "p:32" "p32/p1" "gate (p:32 vs cliff limit ${LIMIT_NS}ns)"
for threads in 1 8 32; do
  out_dir=$(mktemp -d)
  QCONGEST_BENCH_JSON_DIR="${out_dir}" QCONGEST_BENCH_THREADS="${threads}" \
      "${BUILD_DIR}/bench/bench_framework" --benchmark_filter="${FILTER}" \
      > /dev/null
  json="${out_dir}/BENCH_bench_framework.json"
  p1=$(extract_ns "${json}" "BM_ParallelismSweep/p:1/iterations:1")
  p32=$(extract_ns "${json}" "BM_ParallelismSweep/p:32/iterations:1")
  rm -rf "${out_dir}"
  if [ -z "${p1}" ] || [ -z "${p32}" ]; then
    echo "parallel_sweep_gate: sweep rows missing from ${json}" >&2
    exit 2
  fi
  ratio=$(awk -v a="${p32}" -v b="${p1}" 'BEGIN { printf "%.2f", a / b }')
  if [ "${p32}" -le "${LIMIT_NS}" ]; then
    verdict="ok"
  else
    verdict="FAIL (cliff is back)"
    status=1
  fi
  printf '%-8s %10.2fms %10.2fms %8s  %s\n' "${threads}" \
      "$(awk -v n="${p1}" 'BEGIN { print n / 1e6 }')" \
      "$(awk -v n="${p32}" 'BEGIN { print n / 1e6 }')" \
      "${ratio}" "${verdict}"
done
exit "${status}"
