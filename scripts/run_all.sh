#!/usr/bin/env bash
# Build everything, run the full test suite, the repo linter, the
# determinism audit, every benchmark, every example, and the CLI smoke
# commands — the one-command reproduction driver.
#
# Every step runs even if an earlier one failed; the script exits non-zero
# if ANY step failed, naming the failures at the end. Steps go through
# run(), which captures the real per-stage exit code — anything outside a
# run() guard (cd, the final summary) is under set -e and aborts hard.
set -euo pipefail
cd "$(dirname "$0")/.."

failures=()

# run <name> <cmd...>: run a step, record its exit code, keep going. The
# `|| rc=$?` capture keeps errexit from killing the script and records the
# step's actual status (a bare $? after `if ! cmd` is the negation's — 0).
run() {
  local name=$1
  shift
  echo "===== ${name} ====="
  local rc=0
  "$@" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "FAILED: ${name} (exit ${rc})" >&2
    failures+=("${name}")
  fi
}

# A fresh checkout configures with Ninja; an existing build dir keeps
# whatever generator it was created with (cmake rejects a switch).
if [ -f build/CMakeCache.txt ]; then
  run "configure" cmake -B build
else
  run "configure" cmake -B build -G Ninja
fi
run "build" cmake --build build

run_tests() { ctest --test-dir build 2>&1 | tee test_output.txt; }
run "tests" run_tests

run "qlint" ./build/tools/qlint --root src --root tools --root bench \
  --root tests --allow tools/qlint_allow.txt

run "determinism-audit" ./build/tools/chaos_run --audit-determinism \
  --graph tree --nodes 15

run_benchmarks() {
  (for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "===== $(basename "$b") ====="
    "$b" || return 1
  done) 2>&1 | tee bench_output.txt
}
run "benchmarks" run_benchmarks

run_examples() {
  local e
  for e in build/examples/example_*; do
    echo "===== $(basename "$e") ====="
    "$e" || return 1
  done
}
run "examples" run_examples

run "cache-smoke" scripts/cache_smoke.sh

run "cli-diameter" build/tools/qcongest_cli diameter --graph two-stars --nodes 64
run "cli-meeting" build/tools/qcongest_cli meeting --graph path --nodes 9 --k 16384
run "cli-girth" build/tools/qcongest_cli girth --graph cycle-trees --nodes 50 --girth 6

if [ "${#failures[@]}" -gt 0 ]; then
  echo
  echo "run_all: ${#failures[@]} step(s) failed: ${failures[*]}" >&2
  exit 1
fi
echo
echo "run_all: all steps passed"
