#!/usr/bin/env bash
# Build everything, run the full test suite, every benchmark, every example,
# and the CLI smoke commands — the one-command reproduction driver.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

(for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $(basename "$b") ====="
  "$b"
done) 2>&1 | tee bench_output.txt

for e in build/examples/example_*; do
  echo "===== $(basename "$e") ====="
  "$e"
done

build/tools/qcongest_cli diameter --graph two-stars --nodes 64
build/tools/qcongest_cli meeting --graph path --nodes 9 --k 16384
build/tools/qcongest_cli girth --graph cycle-trees --nodes 50 --girth 6
