#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/net/engine.hpp"
#include "src/net/trace.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/round_profiler.hpp"

namespace qcongest::obs {

/// Version stamped into every report as "schema_version". Bump whenever a
/// field is renamed, removed, or changes meaning — additions are fine.
inline constexpr std::int64_t kReportSchemaVersion = 1;

/// Digest of a Trace embedded in a report section: totals, the per-round
/// counts, the busiest directed edges (stable order — count desc, then
/// (from, to)), and the per-tag counts.
struct TraceSummary {
  std::size_t total = 0;
  std::vector<std::size_t> per_round;
  std::vector<std::pair<std::pair<net::NodeId, net::NodeId>, std::size_t>> busiest;
  std::map<std::int32_t, std::size_t> per_tag;
};

/// One structured, diffable JSON document describing a run (or a family of
/// runs): RunResult counters, Trace summaries, the RoundProfiler's
/// per-round series and phase spans, and a MetricsRegistry snapshot, all
/// merged under a schema version.
///
/// Determinism contract (DESIGN.md §10): a report contains only
/// seed-deterministic quantities — no wall-clock time, no host names, no
/// thread counts — and every collection serializes in a content-derived
/// order. Two runs of the same seeded workload therefore produce
/// byte-identical documents, for any Engine::set_threads value; CI diffs
/// them directly.
class RunReport {
 public:
  class Section {
   public:
    explicit Section(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    /// Attach a string label (labels serialize sorted by key).
    void set_label(const std::string& key, const std::string& value);
    /// Did the workload succeed (self-check against ground truth)?
    void set_outcome(bool success);
    /// The run's final counters.
    void set_result(const net::RunResult& result);
    /// Summarize `trace` (top `top_edges` busiest edges).
    void set_trace(const net::Trace& trace, std::size_t top_edges = 8);
    /// Copy the profiler's per-round series and phase spans.
    void set_profile(const RoundProfiler& profiler);
    /// Snapshot `registry` (copied; empty registries serialize as absent).
    void set_metrics(const MetricsRegistry& registry);

    void write_json(JsonWriter& writer) const;

    /// Render this section standalone, byte-identical to how it would
    /// appear inside to_json()'s "sections" array (same 4-space interior
    /// depth, no leading indentation or trailing newline). The fragment can
    /// be sealed in the result cache and later spliced back with
    /// add_rendered_section — the document bytes cannot tell the difference.
    std::string render() const;

    /// True when this section is a pre-rendered fragment (see
    /// RunReport::add_rendered_section); write_json must not be called on
    /// it — to_json splices the fragment verbatim instead.
    bool is_rendered() const { return !rendered_.empty(); }
    const std::string& rendered() const { return rendered_; }

   private:
    friend class RunReport;

    std::string name_;
    std::map<std::string, std::string> labels_;
    std::optional<bool> success_;
    std::optional<net::RunResult> result_;
    std::optional<TraceSummary> trace_;
    std::vector<RoundProfiler::RoundSample> rounds_;
    std::vector<RoundProfiler::PhaseSpan> phases_;
    bool has_profile_ = false;
    MetricsRegistry metrics_;
    std::string rendered_;  // non-empty: splice verbatim, ignore the rest
  };

  explicit RunReport(std::string producer) : producer_(std::move(producer)) {}

  void set_producer(const std::string& producer) { producer_ = producer; }
  const std::string& producer() const { return producer_; }

  Section& add_section(std::string name);
  /// Append a section sealed earlier by Section::render (e.g. served from
  /// the result cache). `name` is bookkeeping only — the fragment already
  /// embeds its own "name" field — so mixed fresh/cached reports stay
  /// byte-identical to an all-fresh render.
  void add_rendered_section(std::string name, std::string fragment);
  const std::vector<Section>& sections() const { return sections_; }
  bool empty() const { return sections_.empty(); }
  void clear() { sections_.clear(); }

  /// The full schema-versioned document. Always valid JSON (the writer
  /// maps non-finite numbers to null); asserted by json_valid in tests.
  std::string to_json() const;

  /// Write to_json() to `path`. Returns false (and sets *error) on I/O
  /// failure instead of throwing — report emission must never take down a
  /// finished run.
  bool write(const std::string& path, std::string* error = nullptr) const;

 private:
  std::string producer_;
  std::vector<Section> sections_;
};

/// Serialize a RunResult as a JSON object (shared by report sections and
/// the tools that embed bare results).
void write_run_result_json(JsonWriter& writer, const net::RunResult& result);

/// Build a TraceSummary from a live trace.
TraceSummary summarize_trace(const net::Trace& trace, std::size_t top_edges = 8);

}  // namespace qcongest::obs
