#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace qcongest::obs {

/// Fixed-bucket histogram. `upper_bounds` (strictly increasing) are fixed
/// at creation: bucket i counts observations <= upper_bounds[i], and one
/// trailing bucket counts the overflow. Fixing the layout up front keeps
/// snapshots from different runs field-for-field comparable — there is no
/// dynamic rebucketing to make two equal runs serialize differently.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// bucket_counts().size() == upper_bounds().size() + 1; the last entry is
  /// the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Deterministic metrics registry: named counters (monotonic integers),
/// gauges (last-write doubles), and fixed-bucket histograms.
///
/// Determinism contract (DESIGN.md §10): metrics live in std::map keyed by
/// name, so iteration, snapshot and JSON order depend only on the names —
/// never on insertion order, hashing, or the standard library. Two
/// registries fed the same operations serialize byte-identically.
class MetricsRegistry {
 public:
  /// Add `delta` to counter `name` (created at zero on first touch).
  void count(const std::string& name, std::uint64_t delta = 1);
  /// Current value of counter `name` (0 when never touched).
  std::uint64_t counter(const std::string& name) const;

  void set_gauge(const std::string& name, double value);

  /// The histogram `name`, created with `upper_bounds` on first call.
  /// Later calls must pass the same bounds (or none) — a mismatch throws,
  /// because silently rebucketing would break snapshot comparability.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);
  const Histogram* find_histogram(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Serialize as one JSON object ({"counters": ..., "gauges": ...,
  /// "histograms": ...}), names sorted.
  void write_json(JsonWriter& writer) const;

  /// The write_json document as a standalone string — the one-call form
  /// for consumers that dump a whole registry (qcongestd --stats-json).
  std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace qcongest::obs
