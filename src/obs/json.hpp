#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qcongest::obs {

/// Escape `text` for inclusion inside a JSON string literal (the
/// surrounding quotes are the caller's). Every control character
/// U+0000..U+001F is escaped — \b \f \n \r \t by their short forms, the
/// rest as \u00XX — and the bytes are validated as UTF-8: well-formed
/// multi-byte sequences pass through unchanged, while each byte of a
/// malformed sequence (bad lead or continuation byte, truncated sequence,
/// overlong encoding, surrogate code point, > U+10FFFF) is replaced by an
/// escaped U+FFFD replacement character. No input can produce invalid
/// JSON, and escaping is deterministic byte-for-byte.
std::string json_escape(std::string_view text);

/// Render a double as a JSON token with `precision` significant digits.
/// JSON has no representation for NaN or the infinities (RFC 8259 §6);
/// non-finite values render as `null` so the document always parses —
/// callers that care can warn via JsonWriter::non_finite_values().
std::string json_number(double value, int precision = 12);

/// Validate that `text` is one complete JSON value (RFC 8259 grammar,
/// depth-limited). On failure returns false and, when `error` is non-null,
/// stores the byte offset and reason. This is the report writers' own
/// round-trip check; CI additionally validates with python3 -m json.tool.
bool json_valid(std::string_view text, std::string* error = nullptr);

/// Small deterministic JSON builder: explicit begin/end for containers,
/// two-space indentation, keys emitted in caller order. Everything the
/// report layer serializes is visited in sorted (std::map / explicit)
/// order, so two writers fed the same data produce byte-identical
/// documents on every platform — the determinism contract of DESIGN.md §10.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key of the next value; only valid directly inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool flag);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  // size_t is uint64_t on every platform we build for; int goes through the
  // int32_t overload so integer literals never fall into value(double).
  JsonWriter& value(std::int32_t number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& null();

  /// Splice a pre-rendered JSON value verbatim as the next value: the
  /// leading comma and indentation are emitted exactly as for any other
  /// value, then `fragment` is appended untouched. The fragment must be a
  /// complete JSON value whose internal indentation already matches the
  /// splice depth — which is how the result cache re-emits sealed report
  /// sections byte-identically to a fresh render (Section::render).
  JsonWriter& raw(std::string_view fragment);

  /// How many non-finite doubles were serialized as null so far.
  std::size_t non_finite_values() const { return non_finite_; }

  /// The document built so far (call after the outermost end_*).
  const std::string& str() const { return out_; }

 private:
  void begin_value();

  std::string out_;
  std::vector<char> stack_;  // '{' or '[' per open container
  std::vector<bool> first_;  // no comma needed yet in this container
  bool after_key_ = false;
  std::size_t non_finite_ = 0;
};

}  // namespace qcongest::obs
