#include "src/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace qcongest::obs {

namespace {

/// Decode the UTF-8 sequence starting at text[i]. Returns its length in
/// bytes (1..4) and stores the code point, or returns 0 when the sequence
/// is malformed: invalid lead byte, bad or missing continuation byte,
/// overlong encoding, surrogate code point, or above U+10FFFF.
std::size_t decode_utf8(std::string_view text, std::size_t i,
                        std::uint32_t* code_point) {
  const unsigned char lead = static_cast<unsigned char>(text[i]);
  if (lead < 0x80) {
    *code_point = lead;
    return 1;
  }
  std::size_t len = 0;
  std::uint32_t cp = 0;
  std::uint32_t min = 0;
  if ((lead & 0xE0) == 0xC0) {
    len = 2; cp = lead & 0x1Fu; min = 0x80;
  } else if ((lead & 0xF0) == 0xE0) {
    len = 3; cp = lead & 0x0Fu; min = 0x800;
  } else if ((lead & 0xF8) == 0xF0) {
    len = 4; cp = lead & 0x07u; min = 0x10000;
  } else {
    return 0;  // continuation byte or 0xF8..0xFF lead
  }
  if (i + len > text.size()) return 0;  // truncated at end of input
  for (std::size_t k = 1; k < len; ++k) {
    const unsigned char cont = static_cast<unsigned char>(text[i + k]);
    if ((cont & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (cont & 0x3Fu);
  }
  if (cp < min) return 0;                      // overlong encoding
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;  // UTF-16 surrogate
  if (cp > 0x10FFFF) return 0;
  *code_point = cp;
  return len;
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    const unsigned char byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(byte));
      out += buf;
      ++i;
      continue;
    }
    if (byte < 0x80) {
      out += c;
      ++i;
      continue;
    }
    std::uint32_t cp = 0;
    const std::size_t len = decode_utf8(text, i, &cp);
    if (len == 0) {
      // One escaped replacement character per malformed byte, so the
      // output stays pure ASCII and resynchronizes at the next valid lead.
      out += "\\ufffd";
      ++i;
    } else {
      out.append(text.substr(i, len));
      i += len;
    }
  }
  return out;
}

std::string json_number(double value, int precision) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

// --- JsonWriter -------------------------------------------------------------

void JsonWriter::begin_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;  // the root value
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  stack_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != '{') {
    throw std::logic_error("JsonWriter: end_object outside an object");
  }
  bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  stack_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != '[') {
    throw std::logic_error("JsonWriter: end_array outside an array");
  }
  bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != '{' || after_key_) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  begin_value();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  begin_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  begin_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  begin_value();
  if (!std::isfinite(number)) ++non_finite_;
  out_ += json_number(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  begin_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  begin_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::null() {
  begin_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  begin_value();
  out_ += fragment;
  return *this;
}

// --- Validator --------------------------------------------------------------

namespace {

/// Recursive-descent RFC 8259 checker over a string_view. Tracks position
/// for error reporting; depth-limited so adversarial nesting cannot blow
/// the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(std::string* error) {
    bool ok = value(0) && (skip_ws(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = reason_.empty() ? "trailing characters" : reason_;
      *error += " at byte " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* why) {
    if (reason_.empty()) reason_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c >= 0x80) {
        std::uint32_t cp = 0;
        const std::size_t len = decode_utf8(text_, pos_, &cp);
        if (len == 0) return fail("invalid UTF-8 in string");
        pos_ += len;
        continue;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("truncated escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(
                                            text_[pos_]))) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool digits() {
    std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start || fail("expected digits");
  }

  bool number() {
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;  // leading zero may not be followed by more digits
    } else if (!digits()) {
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return number();
    return fail("unexpected character");
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string reason_;
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace qcongest::obs
