#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/engine.hpp"

namespace qcongest::obs {

/// Per-round traffic profile and phase spans, recorded passively through
/// the EngineObserver hooks. The round axis is *cumulative across runs*:
/// protocols compose phases as separate Engine::run calls, and the
/// profiler concatenates them into one global round series so a whole
/// protocol reads as a single timeline.
///
/// Phase spans attribute stretches of that timeline to named protocol
/// phases (the framework's query/combine/uncompute phases, an app's
/// bfs/downcast steps). Between begin_phase / end_phase every run and
/// round is charged to the open span; runs outside any explicit phase get
/// an automatic span named "run#<k>" so the timeline is always fully
/// covered.
///
/// Determinism: observer callbacks fire on the engine thread in canonical
/// delivery order for any Engine::set_threads value (see engine.hpp), so
/// the recorded series — and any report built from them — are
/// byte-identical between serial and sharded execution. The profiler
/// records no wall-clock time for the same reason.
class RoundProfiler final : public net::EngineObserver {
 public:
  /// Message traffic of one (global) round.
  struct RoundSample {
    std::size_t sent = 0;        // words past bandwidth admission
    std::size_t delivered = 0;   // landed in a next-round inbox
    std::size_t dropped = 0;     // lottery drops + crashed receivers
    std::size_t corrupted = 0;
    std::size_t duplicated = 0;
    std::size_t retransmissions = 0;  // reliable-transport re-sends
    std::size_t quantum_words = 0;

    friend bool operator==(const RoundSample&, const RoundSample&) = default;
  };

  /// One named stretch of the global round timeline.
  struct PhaseSpan {
    std::string name;
    std::size_t first_round = 0;  // global round index of the span start
    std::size_t rounds = 0;       // rounds elapsed while the span was open
    std::size_t runs = 0;         // Engine::run calls charged to the span
    std::size_t sent = 0;
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    std::size_t retransmissions = 0;
  };

  /// Forward every callback to `downstream` after recording (nullptr
  /// stops). Lets the profiler stack with another observer — e.g. the
  /// model-conformance verifier — on the engine's single observer slot.
  void set_downstream(net::EngineObserver* downstream) { downstream_ = downstream; }

  /// Open a named phase span (closing any span still open). Subsequent
  /// runs/rounds accumulate into it until end_phase.
  void begin_phase(const std::string& name);
  /// Close the open span (no-op when none is open).
  void end_phase();

  const std::vector<RoundSample>& rounds() const { return rounds_; }
  const std::vector<PhaseSpan>& phases() const { return phases_; }
  std::size_t total_runs() const { return runs_; }
  std::size_t total_rounds() const { return rounds_.size(); }

  /// Forget everything (series, spans, run count); downstream is kept.
  void reset();

  // --- EngineObserver -------------------------------------------------------
  void on_run_begin(const net::Engine& engine) override;
  void on_send(std::size_t round, net::NodeId from, net::NodeId to,
               const net::Word& word, std::size_t edge_words) override;
  void on_delivery(std::size_t round, net::NodeId from, net::NodeId to,
                   net::DeliveryFate fate, bool corrupted, bool duplicated) override;
  void on_retransmission(std::size_t round) override;
  void on_round_end(std::size_t round) override;
  void on_run_end(const net::RunResult& stats) override;

 private:
  RoundSample& sample(std::size_t run_round);
  PhaseSpan* open_span();
  void close_span();

  std::vector<RoundSample> rounds_;
  std::vector<PhaseSpan> phases_;
  std::size_t run_base_ = 0;   // global index of the current run's round 0
  std::size_t runs_ = 0;
  bool span_open_ = false;
  bool span_auto_ = false;     // the open span is an automatic per-run span
  net::EngineObserver* downstream_ = nullptr;
};

}  // namespace qcongest::obs
