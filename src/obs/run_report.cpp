#include "src/obs/run_report.hpp"

#include <fstream>

namespace qcongest::obs {

TraceSummary summarize_trace(const net::Trace& trace, std::size_t top_edges) {
  TraceSummary summary;
  summary.total = trace.size();
  summary.per_round = trace.per_round_counts();
  summary.busiest = trace.busiest_edges(top_edges);
  summary.per_tag = trace.per_tag_counts();
  return summary;
}

void write_run_result_json(JsonWriter& writer, const net::RunResult& result) {
  writer.begin_object();
  writer.key("rounds").value(result.rounds);
  writer.key("completed").value(result.completed);
  writer.key("messages").value(result.messages);
  writer.key("classical_words").value(result.classical_words);
  writer.key("quantum_words").value(result.quantum_words);
  writer.key("max_edge_words").value(result.max_edge_words);
  writer.key("cut_words").value(result.cut_words);
  writer.key("dropped_words").value(result.dropped_words);
  writer.key("corrupted_words").value(result.corrupted_words);
  writer.key("duplicated_words").value(result.duplicated_words);
  writer.key("retransmissions").value(result.retransmissions);
  writer.key("crashed_nodes").value(result.crashed_nodes);
  writer.key("recovery_words").value(result.recovery_words);
  writer.key("recovery_rounds").value(result.recovery_rounds);
  writer.end_object();
}

void RunReport::Section::set_label(const std::string& key, const std::string& value) {
  labels_[key] = value;
}

void RunReport::Section::set_outcome(bool success) { success_ = success; }

void RunReport::Section::set_result(const net::RunResult& result) {
  result_ = result;
}

void RunReport::Section::set_trace(const net::Trace& trace, std::size_t top_edges) {
  trace_ = summarize_trace(trace, top_edges);
}

void RunReport::Section::set_profile(const RoundProfiler& profiler) {
  rounds_ = profiler.rounds();
  phases_ = profiler.phases();
  has_profile_ = true;
}

void RunReport::Section::set_metrics(const MetricsRegistry& registry) {
  metrics_ = registry;
}

namespace {

/// Emit one per-round series as "name": [v0, v1, ...].
template <typename Member>
void write_series(JsonWriter& writer, const char* name,
                  const std::vector<RoundProfiler::RoundSample>& rounds,
                  Member member) {
  writer.key(name).begin_array();
  for (const RoundProfiler::RoundSample& s : rounds) writer.value(s.*member);
  writer.end_array();
}

}  // namespace

void RunReport::Section::write_json(JsonWriter& writer) const {
  writer.begin_object();
  writer.key("name").value(name_);
  if (!labels_.empty()) {
    writer.key("labels").begin_object();
    for (const auto& [key, value] : labels_) writer.key(key).value(value);
    writer.end_object();
  }
  if (success_.has_value()) writer.key("success").value(*success_);
  if (result_.has_value()) {
    writer.key("result");
    write_run_result_json(writer, *result_);
  }
  if (has_profile_) {
    writer.key("round_series").begin_object();
    using Sample = RoundProfiler::RoundSample;
    write_series(writer, "sent", rounds_, &Sample::sent);
    write_series(writer, "delivered", rounds_, &Sample::delivered);
    write_series(writer, "dropped", rounds_, &Sample::dropped);
    write_series(writer, "corrupted", rounds_, &Sample::corrupted);
    write_series(writer, "duplicated", rounds_, &Sample::duplicated);
    write_series(writer, "retransmissions", rounds_, &Sample::retransmissions);
    write_series(writer, "quantum_words", rounds_, &Sample::quantum_words);
    writer.end_object();
    writer.key("phases").begin_array();
    for (const RoundProfiler::PhaseSpan& span : phases_) {
      writer.begin_object();
      writer.key("name").value(span.name);
      writer.key("first_round").value(span.first_round);
      writer.key("rounds").value(span.rounds);
      writer.key("runs").value(span.runs);
      writer.key("sent").value(span.sent);
      writer.key("delivered").value(span.delivered);
      writer.key("dropped").value(span.dropped);
      writer.key("retransmissions").value(span.retransmissions);
      writer.end_object();
    }
    writer.end_array();
  }
  if (trace_.has_value()) {
    writer.key("trace").begin_object();
    writer.key("total").value(trace_->total);
    writer.key("per_round").begin_array();
    for (std::size_t c : trace_->per_round) writer.value(c);
    writer.end_array();
    writer.key("busiest_edges").begin_array();
    for (const auto& [edge, count] : trace_->busiest) {
      writer.begin_object();
      writer.key("from").value(edge.first);
      writer.key("to").value(edge.second);
      writer.key("count").value(count);
      writer.end_object();
    }
    writer.end_array();
    writer.key("per_tag").begin_array();
    for (const auto& [tag, count] : trace_->per_tag) {
      writer.begin_object();
      writer.key("tag").value(tag);
      writer.key("count").value(count);
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }
  if (!metrics_.empty()) {
    writer.key("metrics");
    metrics_.write_json(writer);
  }
  writer.end_object();
}

std::string RunReport::Section::render() const {
  // Rebuild the exact writer context a section sees inside to_json(): the
  // root object with the "sections" array open. The scaffold prefix plus
  // the "\n    " begin_value emits before this section's '{' is stripped,
  // leaving a fragment whose interior indentation already matches the
  // splice depth of JsonWriter::raw.
  JsonWriter writer;
  writer.begin_object();
  writer.key("sections");
  writer.begin_array();
  const std::size_t prefix = writer.str().size() + 5;  // +5: "\n    "
  write_json(writer);
  return writer.str().substr(prefix);
}

RunReport::Section& RunReport::add_section(std::string name) {
  sections_.emplace_back(std::move(name));
  return sections_.back();
}

void RunReport::add_rendered_section(std::string name, std::string fragment) {
  Section section(std::move(name));
  section.rendered_ = std::move(fragment);
  sections_.push_back(std::move(section));
}

std::string RunReport::to_json() const {
  JsonWriter writer;
  writer.begin_object();
  writer.key("schema_version").value(kReportSchemaVersion);
  writer.key("producer").value(producer_);
  writer.key("deterministic").value(true);
  writer.key("sections").begin_array();
  for (const Section& section : sections_) {
    if (section.is_rendered()) {
      writer.raw(section.rendered());
    } else {
      section.write_json(writer);
    }
  }
  writer.end_array();
  writer.end_object();
  return writer.str() + "\n";
}

bool RunReport::write(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << to_json();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace qcongest::obs
