#include "src/obs/metrics.hpp"

#include <stdexcept>

namespace qcongest::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: at least one bucket bound required");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double value) {
  std::size_t bucket = bounds_.size();  // overflow unless a bound admits it
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

void MetricsRegistry::count(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(upper_bounds))).first;
    return it->second;
  }
  if (!upper_bounds.empty() && upper_bounds != it->second.upper_bounds()) {
    throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                "' re-created with different bounds");
  }
  return it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::write_json(JsonWriter& writer) const {
  writer.begin_object();
  writer.key("counters").begin_object();
  for (const auto& [name, value] : counters_) writer.key(name).value(value);
  writer.end_object();
  writer.key("gauges").begin_object();
  for (const auto& [name, value] : gauges_) writer.key(name).value(value);
  writer.end_object();
  writer.key("histograms").begin_object();
  for (const auto& [name, histogram] : histograms_) {
    writer.key(name).begin_object();
    writer.key("upper_bounds").begin_array();
    for (double bound : histogram.upper_bounds()) writer.value(bound);
    writer.end_array();
    writer.key("bucket_counts").begin_array();
    for (std::uint64_t c : histogram.bucket_counts()) writer.value(c);
    writer.end_array();
    writer.key("count").value(histogram.count());
    writer.key("sum").value(histogram.sum());
    writer.end_object();
  }
  writer.end_object();
  writer.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter writer;
  write_json(writer);
  return writer.str();
}

}  // namespace qcongest::obs
