#include "src/obs/round_profiler.hpp"

namespace qcongest::obs {

RoundProfiler::RoundSample& RoundProfiler::sample(std::size_t run_round) {
  std::size_t global = run_base_ + run_round;
  if (global >= rounds_.size()) rounds_.resize(global + 1);
  return rounds_[global];
}

RoundProfiler::PhaseSpan* RoundProfiler::open_span() {
  return span_open_ ? &phases_.back() : nullptr;
}

void RoundProfiler::close_span() {
  if (!span_open_) return;
  phases_.back().rounds = rounds_.size() - phases_.back().first_round;
  span_open_ = false;
  span_auto_ = false;
}

void RoundProfiler::begin_phase(const std::string& name) {
  close_span();
  PhaseSpan span;
  span.name = name;
  span.first_round = rounds_.size();
  phases_.push_back(std::move(span));
  span_open_ = true;
  span_auto_ = false;
}

void RoundProfiler::end_phase() {
  if (span_open_ && !span_auto_) close_span();
}

void RoundProfiler::reset() {
  rounds_.clear();
  phases_.clear();
  run_base_ = 0;
  runs_ = 0;
  span_open_ = false;
  span_auto_ = false;
}

void RoundProfiler::on_run_begin(const net::Engine& engine) {
  run_base_ = rounds_.size();
  if (!span_open_) {
    begin_phase("run#" + std::to_string(runs_));
    span_auto_ = true;
  }
  ++runs_;
  ++phases_.back().runs;
  if (downstream_ != nullptr) downstream_->on_run_begin(engine);
}

void RoundProfiler::on_send(std::size_t round, net::NodeId from, net::NodeId to,
                            const net::Word& word, std::size_t edge_words) {
  RoundSample& s = sample(round);
  ++s.sent;
  if (word.quantum) ++s.quantum_words;
  if (PhaseSpan* span = open_span()) ++span->sent;
  if (downstream_ != nullptr) downstream_->on_send(round, from, to, word, edge_words);
}

void RoundProfiler::on_delivery(std::size_t round, net::NodeId from, net::NodeId to,
                                net::DeliveryFate fate, bool corrupted,
                                bool duplicated) {
  RoundSample& s = sample(round);
  if (fate == net::DeliveryFate::kDelivered) {
    ++s.delivered;
    if (corrupted) ++s.corrupted;
    if (duplicated) ++s.duplicated;
    if (PhaseSpan* span = open_span()) ++span->delivered;
  } else {
    ++s.dropped;
    if (PhaseSpan* span = open_span()) ++span->dropped;
  }
  if (downstream_ != nullptr) {
    downstream_->on_delivery(round, from, to, fate, corrupted, duplicated);
  }
}

void RoundProfiler::on_retransmission(std::size_t round) {
  ++sample(round).retransmissions;
  if (PhaseSpan* span = open_span()) ++span->retransmissions;
  if (downstream_ != nullptr) downstream_->on_retransmission(round);
}

void RoundProfiler::on_round_end(std::size_t round) {
  sample(round);  // materialize silent rounds so series length == rounds run
  if (PhaseSpan* span = open_span()) {
    span->rounds = rounds_.size() - span->first_round;
  }
  if (downstream_ != nullptr) downstream_->on_round_end(round);
}

void RoundProfiler::on_run_end(const net::RunResult& stats) {
  if (span_open_ && span_auto_) close_span();
  if (downstream_ != nullptr) downstream_->on_run_end(stats);
}

}  // namespace qcongest::obs
