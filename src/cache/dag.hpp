#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/cache/store.hpp"
#include "src/obs/metrics.hpp"

namespace qcongest::cache {

/// One node of an experiment DAG: a named unit of work that produces a
/// sealed result blob, optionally content-addressed by `key`.
struct Experiment {
  /// Unique name; cycle and dependency errors are reported in these.
  std::string name;
  /// Names of experiments that must complete before this one starts.
  /// Dependencies order execution only — results flow through the caller's
  /// own state (or the store), keeping produce() a pure closure.
  std::vector<std::string> deps;
  /// Cache key (a KeyBuilder digest). Empty = never cached: the experiment
  /// executes on every run.
  std::string key;
  /// Compute the blob. Runs on a pool worker; must be self-contained and
  /// thread-safe against sibling experiments. May throw — the error is
  /// captured per-node, never propagated across the DAG.
  std::function<std::string()> produce;
};

struct ExperimentResult {
  std::string name;
  std::string blob;
  bool from_cache = false;
  bool ok = false;
  std::string error;  // why ok is false: produce() threw or a dep failed
};

/// Validate `experiments` as a DAG: unique names, known dependencies, no
/// cycles. A cycle is rejected with the full walk in the error ("a -> b ->
/// a"), because "there is a cycle somewhere" is not an actionable message.
/// True when the graph is runnable.
bool validate_experiment_dag(const std::vector<Experiment>& experiments,
                             std::string* error);

/// Schedules a validated experiment DAG: ready nodes (all deps done) fan
/// out across a util::ThreadPool of `jobs` workers, cache hits are served
/// from the store without executing, and misses execute then seal their
/// blob back. Results come back in input order regardless of scheduling.
///
/// Counter contract: when `metrics` is non-null the runner counts
/// dag.nodes / dag.cache_hits / dag.executed / dag.failed / dag.skipped
/// into it (and the store's own cache.* counters cover hit/miss/corrupt
/// detail) — the one metrics pipeline, not printf.
class DagRunner {
 public:
  /// Both taps optional: store == nullptr disables caching entirely,
  /// metrics == nullptr disables counting.
  DagRunner(Store* store, obs::MetricsRegistry* metrics)
      : store_(store), metrics_(metrics) {}

  /// Run the whole DAG. Throws std::invalid_argument with the validation
  /// error (including the named cycle) when `experiments` is not a DAG.
  /// A node whose produce() throws fails alone (ok=false, error=what);
  /// its transitive dependents are skipped with an error naming the failed
  /// dependency.
  std::vector<ExperimentResult> run(const std::vector<Experiment>& experiments,
                                    std::size_t jobs);

 private:
  Store* store_;
  obs::MetricsRegistry* metrics_;
};

}  // namespace qcongest::cache
