#include "src/cache/key.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "src/cache/sha256.hpp"

namespace qcongest::cache {

std::string code_version_salt() {
  const char* env = std::getenv("QCONGEST_CACHE_SALT");
  if (env != nullptr && *env != '\0') return env;
  return std::string(kCodeVersionSalt);
}

std::string canonical_double(double value) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  static const char* hex = "0123456789abcdef";
  std::string out = "f64:";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(hex[(bits >> shift) & 0xF]);
  }
  return out;
}

KeyBuilder& KeyBuilder::set(std::string_view name, std::string encoded) {
  auto [it, inserted] = fields_.emplace(std::string(name), std::move(encoded));
  if (!inserted) {
    throw std::logic_error("KeyBuilder: duplicate field '" + it->first + "'");
  }
  return *this;
}

KeyBuilder& KeyBuilder::field(std::string_view name, std::string_view value) {
  std::string encoded;
  encoded.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '\n') encoded.push_back('\\');
    encoded.push_back(c == '\n' ? 'n' : c);
  }
  return set(name, std::move(encoded));
}

KeyBuilder& KeyBuilder::field(std::string_view name, std::uint64_t value) {
  return set(name, std::to_string(value));
}

KeyBuilder& KeyBuilder::field(std::string_view name, bool value) {
  return set(name, value ? "1" : "0");
}

KeyBuilder& KeyBuilder::field(std::string_view name, double value) {
  return set(name, canonical_double(value));
}

KeyBuilder& KeyBuilder::fault_plan(std::string_view prefix,
                                   const net::FaultPlan& plan) {
  const std::string p(prefix);
  field(p + ".drop", plan.link.drop);
  field(p + ".corrupt", plan.link.corrupt);
  field(p + ".duplicate", plan.link.duplicate);
  field(p + ".seed", plan.seed);

  // Crash events are a set (validate() requires disjoint windows), so the
  // vector order a caller happened to build must not reach the key.
  std::vector<net::CrashEvent> crashes = plan.crashes;
  std::sort(crashes.begin(), crashes.end(),
            [](const net::CrashEvent& a, const net::CrashEvent& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.crash_round != b.crash_round) {
                return a.crash_round < b.crash_round;
              }
              if (a.restart_round != b.restart_round) {
                return a.restart_round < b.restart_round;
              }
              return static_cast<int>(a.amnesia) < static_cast<int>(b.amnesia);
            });
  std::string crash_text;
  for (const net::CrashEvent& c : crashes) {
    crash_text += std::to_string(static_cast<std::size_t>(c.node)) + ":" +
                  std::to_string(c.crash_round) + ":" +
                  std::to_string(c.restart_round) + ":" +
                  (c.amnesia ? "1" : "0") + ";";
  }
  field(p + ".crashes", crash_text);

  auto overrides = plan.edge_overrides;
  std::sort(overrides.begin(), overrides.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string edge_text;
  for (const auto& [edge, rates] : overrides) {
    edge_text += std::to_string(static_cast<std::size_t>(edge.first)) + ":" +
                 std::to_string(static_cast<std::size_t>(edge.second)) + ":" +
                 canonical_double(rates.drop) + ":" +
                 canonical_double(rates.corrupt) + ":" +
                 canonical_double(rates.duplicate) + ";";
  }
  field(p + ".edge_overrides", edge_text);
  return *this;
}

std::string KeyBuilder::canonical() const {
  // The schema tag versions the encoding itself, separately from the
  // code-version salt the caller adds as a field.
  std::string out = "qcongest-job-key-v1\n";
  for (const auto& [name, value] : fields_) {
    out += name;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

std::string KeyBuilder::digest() const { return sha256_hex(canonical()); }

}  // namespace qcongest::cache
