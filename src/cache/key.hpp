#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/net/fault.hpp"

namespace qcongest::cache {

/// The code-version salt baked into every cache key. Bump whenever a change
/// anywhere in the engine, apps, transport, recovery, or report layers can
/// alter the bytes a run produces — the key derivation has no way to see
/// such changes, so the salt is the invalidation lever ("invalidation by
/// code version", DESIGN.md §14). The suffix tracks the PR that last
/// changed run-visible behaviour.
inline constexpr std::string_view kCodeVersionSalt = "qcongest-pr9";

/// The effective salt: QCONGEST_CACHE_SALT when set and non-empty
/// (CI's invalidation smoke flips it to prove a full miss), else
/// kCodeVersionSalt.
std::string code_version_salt();

/// Render a double as a byte-stable canonical token: "f64:" followed by the
/// 16-hex-digit IEEE-754 bit pattern. Decimal formatting ("%g" and friends)
/// is locale- and libc-shaped; the bit pattern is exact on every platform,
/// which is what makes float-valued options (fault probabilities) safe to
/// hash. -0.0 and 0.0, or two doubles that merely print alike, get distinct
/// encodings — equal keys mean bit-equal inputs, never "close enough".
std::string canonical_double(double value);

/// Accumulates named fields of a job description and derives the cache key.
///
/// Canonicalization contract:
///  * fields serialize sorted by name — the call order at the use site can
///    never leak into the key (option-order independence);
///  * a field name may be set only once (a duplicate throws
///    std::logic_error: two writers disagreeing about a field is a bug at
///    the call site, not something to resolve silently);
///  * values are byte-stable encodings: integers in decimal, bools as 0/1,
///    doubles via canonical_double, strings verbatim with '\n' and '\\'
///    escaped so a value can never forge a field boundary.
class KeyBuilder {
 public:
  KeyBuilder& field(std::string_view name, std::string_view value);
  KeyBuilder& field(std::string_view name, const char* value) {
    return field(name, std::string_view(value));
  }
  KeyBuilder& field(std::string_view name, std::uint64_t value);
  KeyBuilder& field(std::string_view name, bool value);
  KeyBuilder& field(std::string_view name, double value);

  /// Add the fault plan under `prefix`: link rates, sorted per-edge
  /// overrides, sorted crash schedule, lottery seed. Two plans that differ
  /// only in container order of semantically unordered lists (crashes,
  /// edge overrides) produce identical fields.
  KeyBuilder& fault_plan(std::string_view prefix, const net::FaultPlan& plan);

  /// The canonical encoding: "name=value\n" lines sorted by name, prefixed
  /// with the builder schema tag. This is what gets hashed; exposed so
  /// tests can pin byte stability directly.
  std::string canonical() const;

  /// SHA-256 hex digest of canonical() — the content address.
  std::string digest() const;

 private:
  KeyBuilder& set(std::string_view name, std::string encoded);

  std::map<std::string, std::string> fields_;
};

}  // namespace qcongest::cache
