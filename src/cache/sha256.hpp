#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qcongest::cache {

/// SHA-256 (FIPS 180-4) over an in-memory buffer, returned as 64 lowercase
/// hex characters. This is the content-addressing hash of the result cache:
/// the store names every object by the digest of its canonical job
/// description, so the implementation must be byte-exact and
/// platform-independent — no library dependency, no endianness surprises.
std::string sha256_hex(std::string_view data);

/// FNV-1a 64-bit over `data`. Cheaper companion hash used for store-entry
/// integrity checksums (detecting torn or bit-rotted payloads on read, not
/// resisting collisions — the SHA-256 key already owns identity).
std::uint64_t fnv1a64(std::string_view data);

/// fnv1a64 rendered as 16 lowercase hex characters — the canonical
/// checksum field of both the store's entry header and the journal's
/// record header, so the two persistence formats stay comparable on disk.
std::string fnv1a64_hex(std::string_view data);

}  // namespace qcongest::cache
