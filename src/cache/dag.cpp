#include "src/cache/dag.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "src/util/thread_pool.hpp"

namespace qcongest::cache {

namespace {

/// Name -> index map; false on duplicates.
bool index_by_name(const std::vector<Experiment>& experiments,
                   std::map<std::string, std::size_t>* index,
                   std::string* error) {
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    if (experiments[i].name.empty()) {
      if (error != nullptr) {
        *error = "experiment #" + std::to_string(i) + " has an empty name";
      }
      return false;
    }
    if (!index->emplace(experiments[i].name, i).second) {
      if (error != nullptr) {
        *error = "duplicate experiment name '" + experiments[i].name + "'";
      }
      return false;
    }
  }
  return true;
}

/// DFS colors (monotone's cycle_detector.hh / gnTundra's
/// DetectCyclicDependencies: a gray node reached again closes a cycle).
enum class Mark : unsigned char { kWhite, kGray, kBlack };

/// Walk dependencies depth-first from `node`; on a back edge, name the
/// cycle by unwinding the explicit stack. Returns true when a cycle was
/// found (and *error carries "a -> b -> ... -> a").
bool find_cycle(std::size_t node, const std::vector<Experiment>& experiments,
                const std::map<std::string, std::size_t>& index,
                std::vector<Mark>& marks, std::string* error) {
  struct Frame {
    std::size_t node;
    std::size_t next_dep = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({node});
  marks[node] = Mark::kGray;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const std::vector<std::string>& deps = experiments[frame.node].deps;
    if (frame.next_dep == deps.size()) {
      marks[frame.node] = Mark::kBlack;
      stack.pop_back();
      continue;
    }
    const std::size_t dep = index.at(deps[frame.next_dep++]);
    if (marks[dep] == Mark::kBlack) continue;
    if (marks[dep] == Mark::kGray) {
      if (error != nullptr) {
        // The cycle is the stack suffix starting at `dep`, plus the back
        // edge closing it.
        std::string walk;
        bool in_cycle = false;
        for (const Frame& f : stack) {
          if (f.node == dep) in_cycle = true;
          if (!in_cycle) continue;
          walk += experiments[f.node].name + " -> ";
        }
        walk += experiments[dep].name;
        *error = "dependency cycle: " + walk;
      }
      return true;
    }
    marks[dep] = Mark::kGray;
    stack.push_back({dep});
  }
  return false;
}

}  // namespace

bool validate_experiment_dag(const std::vector<Experiment>& experiments,
                             std::string* error) {
  std::map<std::string, std::size_t> index;
  if (!index_by_name(experiments, &index, error)) return false;
  for (const Experiment& experiment : experiments) {
    for (const std::string& dep : experiment.deps) {
      if (index.find(dep) == index.end()) {
        if (error != nullptr) {
          *error = "experiment '" + experiment.name +
                   "' depends on unknown experiment '" + dep + "'";
        }
        return false;
      }
    }
  }
  std::vector<Mark> marks(experiments.size(), Mark::kWhite);
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    if (marks[i] == Mark::kWhite &&
        find_cycle(i, experiments, index, marks, error)) {
      return false;
    }
  }
  return true;
}

std::vector<ExperimentResult> DagRunner::run(
    const std::vector<Experiment>& experiments, std::size_t jobs) {
  std::string error;
  if (!validate_experiment_dag(experiments, &error)) {
    throw std::invalid_argument("experiment DAG: " + error);
  }

  std::map<std::string, std::size_t> index;
  index_by_name(experiments, &index, nullptr);

  // Longest-path depth per node; nodes of equal depth have no edges between
  // them, so each depth level is a safe parallel wave of ready nodes.
  std::vector<std::size_t> depth(experiments.size(), 0);
  std::function<std::size_t(std::size_t)> depth_of = [&](std::size_t i) {
    if (depth[i] != 0) return depth[i];
    std::size_t best = 0;
    for (const std::string& dep : experiments[i].deps) {
      best = std::max(best, depth_of(index.at(dep)));
    }
    depth[i] = best + 1;
    return depth[i];
  };
  std::size_t levels = 0;
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    levels = std::max(levels, depth_of(i));
  }
  std::vector<std::vector<std::size_t>> waves(levels);
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    waves[depth[i] - 1].push_back(i);
  }

  std::vector<ExperimentResult> results(experiments.size());
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    results[i].name = experiments[i].name;
  }

  util::ThreadPool pool(std::max<std::size_t>(jobs, 1));
  for (const std::vector<std::size_t>& wave : waves) {
    pool.parallel_for(wave.size(), [&](std::size_t w) {
      const std::size_t node = wave[w];
      const Experiment& experiment = experiments[node];
      ExperimentResult& result = results[node];

      // A failed or skipped dependency poisons the node: running an
      // experiment whose declared prerequisite never happened would report
      // results under false pretenses.
      for (const std::string& dep : experiment.deps) {
        const ExperimentResult& upstream = results[index.at(dep)];
        if (!upstream.ok) {
          result.ok = false;
          result.error = "skipped: dependency '" + dep + "' failed";
          return;
        }
      }

      if (store_ != nullptr && !experiment.key.empty() &&
          store_->get(experiment.key, &result.blob)) {
        result.from_cache = true;
        result.ok = true;
        return;
      }
      try {
        result.blob = experiment.produce();
        result.ok = true;
      } catch (const std::exception& e) {
        result.ok = false;
        result.error = e.what();
        return;
      }
      if (store_ != nullptr && !experiment.key.empty()) {
        // A failed put degrades to "not cached", never to a failed run.
        std::string put_error;
        (void)store_->put(experiment.key, result.blob, &put_error);
      }
    });
  }

  if (metrics_ != nullptr) {
    std::uint64_t hits = 0, executed = 0, failed = 0, skipped = 0;
    for (const ExperimentResult& result : results) {
      if (result.from_cache) {
        ++hits;
      } else if (result.ok) {
        ++executed;
      } else if (result.error.rfind("skipped:", 0) == 0) {
        ++skipped;
      } else {
        ++failed;
      }
    }
    metrics_->count("dag.nodes", results.size());
    metrics_->count("dag.cache_hits", hits);
    metrics_->count("dag.executed", executed);
    metrics_->count("dag.failed", failed);
    metrics_->count("dag.skipped", skipped);
  }
  return results;
}

}  // namespace qcongest::cache
