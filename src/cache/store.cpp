#include "src/cache/store.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/cache/sha256.hpp"

namespace qcongest::cache {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kMagic = "qcache 1 ";

bool hex_key(const std::string& key) {
  if (key.size() < 16 || key.size() > 64) return false;
  for (char c : key) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parse and verify one raw entry; true iff it carries a sound payload.
bool decode_entry(const std::string& raw, std::string* payload) {
  if (raw.size() < kMagic.size() ||
      std::string_view(raw).substr(0, kMagic.size()) != kMagic) {
    return false;
  }
  std::size_t eol = raw.find('\n', kMagic.size());
  if (eol == std::string::npos) return false;
  std::string_view header(raw.data() + kMagic.size(), eol - kMagic.size());
  std::size_t space = header.find(' ');
  if (space == std::string_view::npos) return false;
  std::uint64_t size = 0;
  for (char c : header.substr(0, space)) {
    if (c < '0' || c > '9') return false;
    if (size > (UINT64_MAX - 9) / 10) return false;
    size = size * 10 + static_cast<std::uint64_t>(c - '0');
  }
  std::string_view checksum = header.substr(space + 1);
  std::string_view body(raw.data() + eol + 1, raw.size() - eol - 1);
  if (body.size() != size) return false;  // truncated or padded
  if (checksum != fnv1a64_hex(body)) return false;  // bit rot
  if (payload != nullptr) payload->assign(body);
  return true;
}

}  // namespace

Store::Store(std::string root) : root_(std::move(root)) {
  if (root_.empty()) throw std::invalid_argument("Store: empty root");
  while (root_.size() > 1 && root_.back() == '/') root_.pop_back();
}

std::string Store::object_path(const std::string& key) const {
  if (!hex_key(key)) {
    throw std::invalid_argument("Store: key is not lowercase hex: '" + key + "'");
  }
  return root_ + "/objects/" + key.substr(0, 2) + "/" + key.substr(2);
}

bool Store::get(const std::string& key, std::string* blob) {
  const fs::path path = object_path(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return false;
  }
  std::string raw = read_file(path);
  if (!decode_entry(raw, blob)) {
    // Corrupt or truncated: degrade to a recomputed miss and drop the bad
    // entry so the follow-up put starts clean.
    fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt_misses;
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.hits;
  return true;
}

bool Store::put(const std::string& key, std::string_view blob,
                std::string* error) {
  const fs::path path = object_path(key);
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.put_errors;
    return false;
  };

  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) return fail("cannot create " + path.parent_path().string());
  fs::create_directories(fs::path(root_) / "tmp", ec);
  if (ec) return fail("cannot create " + root_ + "/tmp");

  // Unique tmp name per in-flight write: two workers putting the same key
  // concurrently each rename their own complete file (last one wins, both
  // are byte-identical when the key derivation is sound).
  static std::atomic<std::uint64_t> counter{0};
  const fs::path tmp = fs::path(root_) / "tmp" /
                       (key + "." + std::to_string(counter.fetch_add(1)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail("cannot open " + tmp.string());
    out << kMagic << blob.size() << ' ' << fnv1a64_hex(blob) << '\n';
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      std::error_code cleanup;
      fs::remove(tmp, cleanup);
      return fail("short write to " + tmp.string());
    }
  }
  fs::rename(tmp, path, ec);  // atomic publish
  if (ec) {
    std::error_code cleanup;
    fs::remove(tmp, cleanup);
    return fail("cannot rename " + tmp.string() + " -> " + path.string());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.puts;
  return true;
}

Store::Stats Store::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Store::export_metrics(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.count("cache.hits", s.hits);
  registry.count("cache.misses", s.misses);
  registry.count("cache.corrupt_misses", s.corrupt_misses);
  registry.count("cache.puts", s.puts);
  registry.count("cache.put_errors", s.put_errors);
}

Store::GcResult Store::gc(std::uint64_t max_bytes) {
  GcResult result;
  std::error_code ec;

  // Stale tmp/ files are crash debris; sweep unconditionally.
  const fs::path tmp_dir = fs::path(root_) / "tmp";
  if (fs::exists(tmp_dir, ec) && !ec) {
    for (const fs::directory_entry& entry : fs::directory_iterator(tmp_dir, ec)) {
      std::error_code rm;
      fs::remove(entry.path(), rm);
    }
  }

  struct Entry {
    fs::path path;
    std::uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  const fs::path objects = fs::path(root_) / "objects";
  if (fs::exists(objects, ec) && !ec) {
    for (const fs::directory_entry& item :
         fs::recursive_directory_iterator(objects, ec)) {
      if (!item.is_regular_file(ec) || ec) continue;
      ++result.scanned;
      if (!decode_entry(read_file(item.path()), nullptr)) {
        std::error_code rm;
        fs::remove(item.path(), rm);
        ++result.corrupt_removed;
        continue;
      }
      Entry entry;
      entry.path = item.path();
      entry.size = static_cast<std::uint64_t>(fs::file_size(item.path(), ec));
      entry.mtime = fs::last_write_time(item.path(), ec);
      entries.push_back(std::move(entry));
      result.bytes_before += entries.back().size;
    }
  }

  // Oldest first; equal mtimes (coarse filesystem timestamps make them
  // common in tests and bulk imports) fall back to lexicographic order of
  // the generic path string, so the eviction order is a pure function of
  // the on-disk state — reproducible across runs and platforms.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.generic_string() < b.path.generic_string();
  });
  result.bytes_after = result.bytes_before;
  for (const Entry& entry : entries) {
    if (result.bytes_after <= max_bytes) break;
    std::error_code rm;
    fs::remove(entry.path, rm);
    if (!rm) {
      ++result.evicted;
      result.bytes_after -= entry.size;
    }
  }
  return result;
}

}  // namespace qcongest::cache
