#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "src/obs/metrics.hpp"

namespace qcongest::cache {

/// Content-addressed on-disk store for sealed result blobs (monotone's
/// storage model: objects named by the hash of what produced them, fanned
/// out under two-character prefix directories).
///
/// Layout under `root`:
///   objects/<key[0:2]>/<key[2:]>   one entry per key
///   tmp/<key>.<pid>                in-flight writes (never readable)
///
/// Durability contract:
///  * put() writes the full entry to tmp/ and renames it into place —
///    readers see either the complete entry or nothing, never a torn write;
///    a crash mid-put leaves only tmp/ garbage for gc to sweep.
///  * get() verifies the entry header (magic, payload size) and an FNV-1a
///    payload checksum; a corrupt or truncated entry is unlinked and
///    reported as a miss — the caller recomputes, it never crashes and
///    never consumes bad bytes.
///  * all methods are thread-safe (the service's pool workers share one
///    Store); distinct keys never contend beyond the stats mutex.
///
/// Keys must be lowercase-hex strings (the KeyBuilder digest); anything
/// else throws std::invalid_argument before touching the filesystem, so a
/// hostile key cannot escape the store root.
class Store {
 public:
  explicit Store(std::string root);

  const std::string& root() const { return root_; }

  /// Fetch the blob for `key` into *blob. False on miss — absent, corrupt,
  /// or truncated (the latter two also unlink the bad entry).
  bool get(const std::string& key, std::string* blob);

  /// Atomically persist `blob` under `key`. False + *error on I/O failure;
  /// overwriting an existing entry is allowed (last writer wins — both
  /// wrote the same bytes if the key derivation is sound).
  bool put(const std::string& key, std::string_view blob,
           std::string* error = nullptr);

  /// Running tallies since construction (thread-safe snapshot).
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;          // absent entries
    std::size_t corrupt_misses = 0;  // failed verification, treated as miss
    std::size_t puts = 0;
    std::size_t put_errors = 0;
  };
  Stats stats() const;

  /// Export the stats as "cache.*" counters (hit/miss visibility in run
  /// tooling goes through the one metrics pipeline, DESIGN.md §10).
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Evict entries, oldest modification time first (ties broken by path so
  /// two gc runs over the same tree delete the same files), until the
  /// store holds at most `max_bytes` of entries. max_bytes == 0
  /// empties the store. Unreadable or corrupt entries and stale tmp/ files
  /// are always removed. Returns what happened.
  struct GcResult {
    std::size_t scanned = 0;
    std::size_t evicted = 0;
    std::size_t corrupt_removed = 0;
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_after = 0;
  };
  GcResult gc(std::uint64_t max_bytes);

 private:
  std::string object_path(const std::string& key) const;

  std::string root_;
  mutable std::mutex mutex_;  // guards stats_ only; file ops are lock-free
  Stats stats_;
};

}  // namespace qcongest::cache
