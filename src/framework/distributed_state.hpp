#pragma once

#include "src/net/bfs.hpp"
#include "src/net/pipeline.hpp"

namespace qcongest::framework {

/// Number of CONGEST words needed for `bits` (qu)bits in an n-node network:
/// ceil(bits / log2(n)), at least 1. One word is Theta(log n) (qu)bits.
std::size_t words_for_bits(std::size_t bits, std::size_t num_nodes);

/// Lemma 7, forward direction: the leader shares a q-qubit register with
/// every node (CNOT fan-out plus pipelined qubit streaming down the BFS
/// tree). The returned cost is *measured* from the message schedule:
/// height + ceil(q / log n) - 1 rounds.
net::RunResult distribute_state(net::Engine& engine, const net::BfsTree& tree,
                                std::size_t q_qubits);

/// Lemma 7, reverse direction: the shared state is collected back into the
/// leader's register (the same schedule, run towards the root).
net::RunResult undistribute_state(net::Engine& engine, const net::BfsTree& tree,
                                  std::size_t q_qubits);

/// Pooled variant for hot loops (one call per charged oracle batch): the
/// per-node programs and the zero-filled value matrix are recycled from `ws`.
net::RunResult undistribute_state(net::Engine& engine, const net::BfsTree& tree,
                                  std::size_t q_qubits, net::PipelineWorkspace& ws);

/// Ablation: the naive unpipelined distribution, height * ceil(q / log n)
/// rounds (the paper's "naively this would result in ..." remark).
net::RunResult distribute_state_unpipelined(net::Engine& engine,
                                            const net::BfsTree& tree,
                                            std::size_t q_qubits);

}  // namespace qcongest::framework
