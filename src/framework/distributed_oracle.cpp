#include "src/framework/distributed_oracle.hpp"

#include <stdexcept>

#include "src/framework/distributed_state.hpp"
#include "src/obs/round_profiler.hpp"
#include "src/util/combinatorics.hpp"

namespace qcongest::framework {

namespace {

void check_config(const OracleConfig& config, std::size_t num_nodes) {
  if (config.domain_size == 0) throw std::invalid_argument("oracle: domain_size 0");
  if (config.parallelism == 0) throw std::invalid_argument("oracle: parallelism 0");
  if (config.value_bits == 0) throw std::invalid_argument("oracle: value_bits 0");
  if (!config.combine) throw std::invalid_argument("oracle: no combine op");
  if (num_nodes == 0) throw std::invalid_argument("oracle: empty network");
}

}  // namespace

DistributedOracle::DistributedOracle(net::Engine& engine, const net::BfsTree& tree,
                                     OracleConfig config,
                                     std::vector<std::vector<query::Value>> data)
    : engine_(&engine), tree_(&tree), config_(std::move(config)), data_(std::move(data)) {
  check_config(config_, engine.graph().num_nodes());
  if (data_.size() != engine.graph().num_nodes()) {
    throw std::invalid_argument("oracle: one data vector per node required");
  }
  for (const auto& row : data_) {
    if (row.size() != config_.domain_size) {
      throw std::invalid_argument("oracle: data row size != domain_size");
    }
  }
}

DistributedOracle::DistributedOracle(net::Engine& engine, const net::BfsTree& tree,
                                     OracleConfig config, BatchComputer computer,
                                     std::function<query::Value(std::size_t)> truth)
    : engine_(&engine),
      tree_(&tree),
      config_(std::move(config)),
      computer_(std::move(computer)),
      truth_(std::move(truth)) {
  check_config(config_, engine.graph().num_nodes());
  if (!computer_ || !truth_) {
    throw std::invalid_argument("oracle: on-the-fly mode needs computer and truth");
  }
}

query::Value DistributedOracle::peek(std::size_t index) const {
  if (index >= config_.domain_size) throw std::out_of_range("oracle: peek out of range");
  if (truth_) return truth_(index);
  if (peek_cached_.empty()) {
    peek_cached_.assign(config_.domain_size, 0);
    peek_cache_.assign(config_.domain_size, 0);
  }
  if (peek_cached_[index]) return peek_cache_[index];
  query::Value acc = config_.identity;
  for (const auto& row : data_) acc = config_.combine(acc, row[index]);
  peek_cache_[index] = acc;
  peek_cached_[index] = 1;
  return acc;
}

std::vector<query::Value> DistributedOracle::fetch(
    std::span<const std::size_t> indices) {
  const std::size_t n = engine_->graph().num_nodes();
  const std::size_t idx_words =
      words_for_bits(util::ceil_log2(config_.domain_size), n);
  const std::size_t val_words = words_for_bits(config_.value_bits, n);
  // Phase spans for the run report (no-ops without a profiler). The names
  // are part of the report schema — see DESIGN.md §10.
  auto mark = [this](const char* phase) {
    if (config_.profiler != nullptr) config_.profiler->begin_phase(phase);
  };

  // Phase 1: downcast the p index registers (quantum words, pipelined).
  // Recycled scratch + the pooled pipeline workspace keep the steady-state
  // batch free of heap traffic (the sweep benchmarks run hundreds of
  // batches per trial).
  mark("query-broadcast");
  payload_scratch_.clear();
  payload_scratch_.reserve(indices.size() * idx_words);
  for (std::size_t idx : indices) {
    payload_scratch_.push_back(static_cast<std::int64_t>(idx));
    for (std::size_t w = 1; w < idx_words; ++w) payload_scratch_.push_back(0);
  }
  total_cost_ += net::pipelined_downcast(*engine_, *tree_, payload_scratch_,
                                         /*quantum=*/true, pipeline_ws_)
                     .cost;

  // Phase 2 (Corollary 9): on-the-fly value computation, alpha(p) rounds.
  std::vector<std::vector<query::Value>> computed_values;
  if (computer_) {
    mark("batch-compute");
    BatchValues computed = computer_(indices);
    if (computed.per_node.size() != n) {
      throw std::logic_error("oracle: batch computer returned wrong node count");
    }
    total_cost_ += computed.cost;
    computed_values = std::move(computed.per_node);
  } else {
    batch_scratch_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      batch_scratch_[v].clear();
      batch_scratch_[v].reserve(indices.size());
      for (std::size_t idx : indices) batch_scratch_[v].push_back(data_[v][idx]);
    }
  }
  const std::vector<std::vector<query::Value>>& batch_values =
      computer_ ? computed_values : batch_scratch_;

  // Phase 3: aggregating convergecast of the p values.
  mark("combine");
  auto conv = net::pipelined_convergecast(*engine_, *tree_, batch_values, val_words,
                                          config_.combine, /*quantum=*/true,
                                          pipeline_ws_);
  total_cost_ += conv.cost;

  // Phase 4: uncompute — results echoed back down so the nodes can erase
  // their partial sums, and the index registers collected back at the
  // leader. Mirror schedules of phases 3 and 1 (see DESIGN.md).
  if (config_.charge_uncompute) {
    mark("uncompute");
    payload_scratch_.clear();
    payload_scratch_.reserve(indices.size() * val_words);
    for (std::int64_t total : conv.totals) {
      payload_scratch_.push_back(total);
      for (std::size_t w = 1; w < val_words; ++w) payload_scratch_.push_back(0);
    }
    total_cost_ += net::pipelined_downcast(*engine_, *tree_, payload_scratch_,
                                           /*quantum=*/true, pipeline_ws_)
                       .cost;
    total_cost_ += undistribute_state(
        *engine_, *tree_,
        indices.size() * util::ceil_log2(config_.domain_size), pipeline_ws_);
  }
  if (config_.profiler != nullptr) config_.profiler->end_phase();

  return conv.totals;
}

}  // namespace qcongest::framework
