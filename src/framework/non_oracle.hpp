#pragma once

#include <functional>

#include "src/net/bfs.hpp"
#include "src/util/rng.hpp"

namespace qcongest::framework {

/// A black-box distributed quantum subroutine (Section 6): an R-round
/// Quantum CONGEST protocol preparing a state
/// |psi> = sqrt(1-p)|phi_0>|0> + sqrt(p)|phi_1>|1> shared by the nodes.
///
/// `run` executes the protocol's communication schedule on the engine (used
/// for U and U^dagger alike) and returns its measured cost;
/// `success_probability` is p — simulator knowledge used to sample outcomes,
/// exactly like BatchOracle::peek.
struct DistributedSubroutine {
  std::function<net::RunResult()> run;
  double success_probability = 0.0;
};

/// Lemma 27: one amplitude-amplification iterate: U^dagger, a distributed
/// reflection through |0...0> (each node ANDs "my registers are zero" up the
/// tree, the leader applies Z, the computation is undone), then U, plus the
/// free Z on the good flag. Measured cost O(R + D).
net::RunResult amplification_iterate(net::Engine& engine, const net::BfsTree& tree,
                                     const DistributedSubroutine& subroutine);

struct AmplifyResult {
  bool success = false;
  net::RunResult cost;
};

/// Corollary 28: amplitude amplification boosting the subroutine's success
/// probability to >= 1 - delta in O((R + D) log(1/delta) / sqrt(p)) measured
/// rounds. Each attempt runs ~ pi/(4 asin(sqrt(p))) iterates and one O(D)
/// distributed verification; outcomes follow the exact sin^2((2m+1) theta)
/// law.
AmplifyResult amplitude_amplify(net::Engine& engine, const net::BfsTree& tree,
                                const DistributedSubroutine& subroutine, double delta,
                                util::Rng& rng);

struct PhaseEstimateResult {
  double theta = 0.0;  // estimate of the eigenphase, in [0, 2 pi)
  net::RunResult cost;
};

/// Lemma 29: distributed phase estimation of a shared-state eigenphase
/// U|psi> = e^{i theta}|psi>. Per repetition the leader shares a
/// superposition over k = 1..K (K = ceil(2 pi / epsilon)) via Lemma 7, the
/// network applies U k times conditioned (K * R measured rounds), and the
/// leader applies a local inverse QFT. O(log(1/delta)) repetitions, median
/// outcome. Outcomes are sampled from the exact QPE distribution around
/// `true_theta` (simulator knowledge).
PhaseEstimateResult phase_estimate(net::Engine& engine, const net::BfsTree& tree,
                                   const std::function<net::RunResult()>& apply_u,
                                   double true_theta, double epsilon, double delta,
                                   util::Rng& rng);

struct AmplitudeEstimateResult {
  double p_estimate = 0.0;
  net::RunResult cost;
};

/// Corollary 30: amplitude estimation — phase estimation applied to the
/// amplification iterate; estimates p <= p_max to additive error epsilon
/// with probability >= 1 - delta in
/// O((R + D) sqrt(p_max) / epsilon * log(1/delta)) measured rounds.
AmplitudeEstimateResult amplitude_estimate(net::Engine& engine, const net::BfsTree& tree,
                                           const DistributedSubroutine& subroutine,
                                           double p_max, double epsilon, double delta,
                                           util::Rng& rng);

/// Exact QPE outcome distribution: probability that a K-point phase
/// estimation of eigenphase phi (in [0, 1)) measures y. Exposed for tests.
double qpe_outcome_probability(std::size_t big_k, double phi, std::size_t y);

}  // namespace qcongest::framework
