#include "src/framework/distributed_state.hpp"

#include "src/util/combinatorics.hpp"

namespace qcongest::framework {

std::size_t words_for_bits(std::size_t bits, std::size_t num_nodes) {
  std::size_t bits_per_word = std::max<std::size_t>(1, util::ceil_log2(num_nodes));
  return std::max<std::size_t>(1, util::ceil_div(bits, bits_per_word));
}

net::RunResult distribute_state(net::Engine& engine, const net::BfsTree& tree,
                                std::size_t q_qubits) {
  // The amplitudes live in the central simulator; the network moves the
  // register as ceil(q / log n) opaque qubit-words (see DESIGN.md).
  std::vector<std::int64_t> payload(words_for_bits(q_qubits, engine.graph().num_nodes()),
                                    0);
  return net::pipelined_downcast(engine, tree, payload, /*quantum=*/true).cost;
}

net::RunResult undistribute_state(net::Engine& engine, const net::BfsTree& tree,
                                  std::size_t q_qubits) {
  // The reverse circuit streams the same words towards the root; schedule-
  // wise this is a convergecast of the register's words with a trivial
  // combine (each node's copy is uncomputed against its children's).
  std::size_t words = words_for_bits(q_qubits, engine.graph().num_nodes());
  std::vector<std::vector<std::int64_t>> values(
      engine.graph().num_nodes(), std::vector<std::int64_t>(words, 0));
  auto result = net::pipelined_convergecast(
      engine, tree, values, /*value_words=*/1,
      [](std::int64_t a, std::int64_t) { return a; }, /*quantum=*/true);
  return result.cost;
}

net::RunResult undistribute_state(net::Engine& engine, const net::BfsTree& tree,
                                  std::size_t q_qubits, net::PipelineWorkspace& ws) {
  const std::size_t n = engine.graph().num_nodes();
  std::size_t words = words_for_bits(q_qubits, n);
  ws.value_scratch.resize(n);
  for (auto& row : ws.value_scratch) row.assign(words, 0);
  auto result = net::pipelined_convergecast(
      engine, tree, ws.value_scratch, /*value_words=*/1,
      [](std::int64_t a, std::int64_t) { return a; }, /*quantum=*/true, ws);
  return result.cost;
}

net::RunResult distribute_state_unpipelined(net::Engine& engine,
                                            const net::BfsTree& tree,
                                            std::size_t q_qubits) {
  std::vector<std::int64_t> payload(words_for_bits(q_qubits, engine.graph().num_nodes()),
                                    0);
  return net::unpipelined_downcast(engine, tree, payload, /*quantum=*/true).cost;
}

}  // namespace qcongest::framework
