#include "src/framework/resilient.hpp"

#include <optional>

namespace qcongest::framework {

namespace {

/// OK-vote sentinel for the verification convergecast. Its bit pattern is
/// at Hamming distance >= 2 from 0 and from any single-bit corruption of
/// itself, so a one-bit flip in transit can never *forge* an OK verdict —
/// corruption can only cause a spurious retry, never a false pass.
constexpr std::int64_t kOkVote = 0x2B;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A transient, fault-induced phase failure: lost or reordered words break
/// the phase's schedule invariants, which surface as logic/runtime errors.
/// Configuration errors (std::invalid_argument) fail identically on every
/// attempt and end in PhaseAborted, which is the honest outcome anyway.
template <typename Fn>
bool attempt(net::Engine& engine, net::RunResult& cost, const Fn& fn) {
  try {
    fn();
    return true;
  } catch (const std::logic_error&) {
    cost += engine.last_stats();
    return false;
  } catch (const std::runtime_error&) {
    cost += engine.last_stats();
    return false;
  }
}

}  // namespace

std::int64_t payload_checksum(const std::vector<std::int64_t>& payload) {
  std::uint64_t h = 0x0fa17c8ecc5a17ULL;
  for (std::int64_t w : payload) h = mix64(h ^ static_cast<std::uint64_t>(w));
  return static_cast<std::int64_t>(h);
}

ResilientDowncastResult resilient_downcast(net::Engine& engine,
                                           const net::BfsTree& tree,
                                           const std::vector<std::int64_t>& payload,
                                           bool quantum, const RetryPolicy& policy) {
  std::vector<std::int64_t> framed = payload;
  framed.push_back(payload_checksum(payload));

  ResilientDowncastResult result;
  for (result.attempts = 1; result.attempts <= policy.max_attempts;
       ++result.attempts) {
    // Phase: the checksummed downcast itself.
    std::optional<net::DowncastResult> down;
    bool delivered = attempt(engine, result.cost, [&] {
      down = net::pipelined_downcast(engine, tree, framed, quantum);
    });
    if (!delivered) continue;
    result.cost += down->cost;

    // Local verification at every node, then a sentinel-vote convergecast
    // of the verdicts to the root.
    const std::size_t n = engine.graph().num_nodes();
    std::vector<std::vector<std::int64_t>> votes(n);
    for (std::size_t v = 0; v < n; ++v) {
      const auto& got = down->received[v];
      bool ok = got.size() == framed.size() &&
                payload_checksum({got.begin(), got.end() - 1}) == got.back();
      votes[v] = {ok ? kOkVote : 0};
    }
    std::optional<net::ConvergecastResult> verdict;
    bool voted = attempt(engine, result.cost, [&] {
      verdict = net::pipelined_convergecast(
          engine, tree, votes, /*value_words=*/1,
          [](std::int64_t a, std::int64_t b) {
            return a == kOkVote && b == kOkVote ? kOkVote : std::int64_t{0};
          },
          /*quantum=*/false);
    });
    if (!voted) continue;
    result.cost += verdict->cost;
    if (verdict->totals[0] != kOkVote) continue;  // some node saw corruption

    result.received.assign(n, {});
    for (std::size_t v = 0; v < n; ++v) {
      auto& row = down->received[v];
      row.pop_back();  // strip the checksum word
      result.received[v] = std::move(row);
    }
    return result;
  }
  throw PhaseAborted("downcast", policy.max_attempts, result.cost);
}

ResilientConvergecastResult resilient_convergecast(
    net::Engine& engine, const net::BfsTree& tree,
    const std::vector<std::vector<std::int64_t>>& values, std::size_t value_words,
    const net::CombineOp& op, bool quantum, const RetryPolicy& policy) {
  ResilientConvergecastResult result;
  std::optional<std::vector<std::int64_t>> previous;
  for (result.attempts = 1; result.attempts <= policy.max_attempts;
       ++result.attempts) {
    std::optional<net::ConvergecastResult> conv;
    bool done = attempt(engine, result.cost, [&] {
      conv = net::pipelined_convergecast(engine, tree, values, value_words, op, quantum);
    });
    if (!done) continue;
    result.cost += conv->cost;
    if (previous.has_value() && *previous == conv->totals) {
      result.totals = std::move(conv->totals);
      return result;
    }
    previous = std::move(conv->totals);
  }
  throw PhaseAborted("convergecast", policy.max_attempts, result.cost);
}

ResilientPhaseResult distribute_state_resilient(net::Engine& engine,
                                                const net::BfsTree& tree,
                                                std::size_t q_qubits,
                                                const RetryPolicy& policy) {
  ResilientPhaseResult result;
  for (result.attempts = 1; result.attempts <= policy.max_attempts;
       ++result.attempts) {
    bool done = attempt(engine, result.cost, [&] {
      result.cost += distribute_state(engine, tree, q_qubits);
    });
    if (done) return result;
  }
  throw PhaseAborted("state distribution", policy.max_attempts, result.cost);
}

}  // namespace qcongest::framework
