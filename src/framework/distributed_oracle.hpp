#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "src/net/bfs.hpp"
#include "src/net/pipeline.hpp"
#include "src/query/oracle.hpp"

namespace qcongest::obs {
class RoundProfiler;
}  // namespace qcongest::obs

namespace qcongest::framework {

/// Configuration of a Theorem 8 distributed oracle for
/// f(x) = F(oplus_v x^{(v)}).
struct OracleConfig {
  std::size_t domain_size = 0;   // k — indices the query algorithm may ask
  std::size_t parallelism = 0;   // p — queries per batch (O^{\otimes p})
  std::size_t value_bits = 1;    // q = ceil(log |A|), width of one value
  net::CombineOp combine;        // the commutative-semigroup oplus
  std::int64_t identity = 0;     // oplus identity (value of "no data")
  /// Charge the uncompute phases (results sent back down, indices
  /// re-collected). Theorem 8 includes them; turning them off is an
  /// ablation knob.
  bool charge_uncompute = true;
  /// When non-null, every charged batch marks its phases — query-broadcast,
  /// batch-compute (Corollary 9 only), combine, uncompute — as spans on
  /// this profiler, which must also be the engine's observer (see
  /// apps::NetOptions::metrics) and must outlive the oracle.
  obs::RoundProfiler* profiler = nullptr;
};

/// The paper's core construction (Theorem 8 + Corollary 9): a
/// query::BatchOracle whose every charged batch is executed as real message
/// traffic on a CONGEST engine:
///
///   1. the leader downcasts the p query indices (p * ceil(log k / log n)
///      qubit-words, pipelined — Lemma 7),
///   2. [Corollary 9 only] the network computes the batch's values with a
///      classical CONGEST subroutine (alpha(p) rounds),
///   3. an aggregating convergecast combines oplus_v x_j^{(v)} for each of
///      the p indices ((height + p) * ceil(q / log n) rounds, values not
///      intra-streamable),
///   4. the results are uncomputed down and the indices collected back
///      (mirror schedules of 3 and 1).
///
/// The accumulated, *measured* round count is available via total_cost().
class DistributedOracle final : public query::BatchOracle {
 public:
  /// Per-batch on-the-fly computer (Corollary 9): given the batch indices,
  /// run a CONGEST subroutine, return values[node][index-in-batch] and the
  /// subroutine's measured cost.
  struct BatchValues {
    std::vector<std::vector<query::Value>> per_node;  // [node][batch slot]
    net::RunResult cost;
  };
  using BatchComputer = std::function<BatchValues(std::span<const std::size_t>)>;

  /// Theorem 8 variant: data held in memory, data[v][j] = x_j^{(v)}.
  DistributedOracle(net::Engine& engine, const net::BfsTree& tree, OracleConfig config,
                    std::vector<std::vector<query::Value>> data);

  /// Corollary 9 variant: values computed per batch; `truth` provides
  /// uncharged simulator access for peek() (must equal the aggregated
  /// value the network would compute).
  DistributedOracle(net::Engine& engine, const net::BfsTree& tree, OracleConfig config,
                    BatchComputer computer,
                    std::function<query::Value(std::size_t)> truth);

  std::size_t domain_size() const override { return config_.domain_size; }
  std::size_t parallelism() const override { return config_.parallelism; }
  query::Value peek(std::size_t index) const override;

  /// Total measured network cost of every charged batch so far.
  const net::RunResult& total_cost() const { return total_cost_; }
  void reset_cost() { total_cost_ = net::RunResult{}; }

 protected:
  std::vector<query::Value> fetch(std::span<const std::size_t> indices) override;

 private:
  net::Engine* engine_;
  const net::BfsTree* tree_;
  OracleConfig config_;
  std::vector<std::vector<query::Value>> data_;  // empty in on-the-fly mode
  BatchComputer computer_;
  std::function<query::Value(std::size_t)> truth_;
  net::RunResult total_cost_;
  // peek() memo for the in-memory mode: data_ is immutable after
  // construction, so the aggregated value per index is computed once.
  // Search-style callers (minfind's marked-set scan) peek the full domain
  // every descent step; without the memo the combine std::function dominates
  // the framework benchmarks.
  mutable std::vector<query::Value> peek_cache_;
  mutable std::vector<std::uint8_t> peek_cached_;
  // Per-batch scratch, recycled so steady-state batches allocate nothing:
  // the pipeline program pool plus the payload/value buffers fetch() fills.
  net::PipelineWorkspace pipeline_ws_;
  std::vector<std::int64_t> payload_scratch_;
  std::vector<std::vector<query::Value>> batch_scratch_;
};

}  // namespace qcongest::framework
