#include "src/framework/non_oracle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/framework/distributed_state.hpp"
#include "src/net/pipeline.hpp"
#include "src/query/grover_math.hpp"
#include "src/util/combinatorics.hpp"
#include "src/util/stats.hpp"

namespace qcongest::framework {

namespace {

/// The distributed all-zero check of Lemma 27: every node reports whether
/// its local registers are zero, ANDs flow to the leader (quantum words: the
/// check is coherent), the leader applies Z; the computation is then undone
/// (mirror downcast).
net::RunResult zero_reflection(net::Engine& engine, const net::BfsTree& tree) {
  std::vector<std::vector<std::int64_t>> flags(engine.graph().num_nodes(),
                                               std::vector<std::int64_t>{1});
  net::RunResult cost =
      net::pipelined_convergecast(
          engine, tree, flags, /*value_words=*/1,
          [](std::int64_t a, std::int64_t b) { return a & b; }, /*quantum=*/true)
          .cost;
  cost += net::pipelined_downcast(engine, tree, {1}, /*quantum=*/true).cost;
  return cost;
}

std::size_t repetitions_for(double delta) {
  if (delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("non_oracle: delta must be in (0, 1)");
  }
  return static_cast<std::size_t>(std::ceil(std::log2(1.0 / delta))) + 1;
}

}  // namespace

double qpe_outcome_probability(std::size_t big_k, double phi, std::size_t y) {
  // |(1/K) sum_k e^{2 pi i k (phi - y/K)}|^2.
  double d = phi - static_cast<double>(y) / static_cast<double>(big_k);
  double kd = static_cast<double>(big_k);
  double denom = std::sin(M_PI * d);
  if (std::abs(denom) < 1e-15) return 1.0;
  double num = std::sin(M_PI * kd * d);
  return (num * num) / (kd * kd * denom * denom);
}

net::RunResult amplification_iterate(net::Engine& engine, const net::BfsTree& tree,
                                     const DistributedSubroutine& subroutine) {
  net::RunResult cost;
  cost.completed = true;
  // Good-part reflection: a single local Z, zero rounds.
  cost += subroutine.run();                 // U^dagger
  cost += zero_reflection(engine, tree);    // reflect through |0...0>
  cost += subroutine.run();                 // U
  return cost;
}

AmplifyResult amplitude_amplify(net::Engine& engine, const net::BfsTree& tree,
                                const DistributedSubroutine& subroutine, double delta,
                                util::Rng& rng) {
  double p = subroutine.success_probability;
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("amplify: bad probability");
  AmplifyResult result;
  result.cost.completed = true;
  if (p == 0.0) return result;  // nothing to amplify; never succeeds

  double theta = query::grover_angle(p);
  auto iterations = static_cast<std::size_t>(std::floor(M_PI / (4.0 * theta)));

  std::size_t attempts = repetitions_for(delta);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    result.cost += subroutine.run();  // prepare |psi>
    for (std::size_t it = 0; it < iterations; ++it) {
      result.cost += amplification_iterate(engine, tree, subroutine);
    }
    // Distributed verification that we obtained |phi_1> (O(D) rounds).
    result.cost += zero_reflection(engine, tree);
    if (rng.bernoulli(query::grover_success_probability(iterations, theta))) {
      result.success = true;
      return result;
    }
  }
  return result;
}

PhaseEstimateResult phase_estimate(net::Engine& engine, const net::BfsTree& tree,
                                   const std::function<net::RunResult()>& apply_u,
                                   double true_theta, double epsilon, double delta,
                                   util::Rng& rng) {
  if (epsilon <= 0.0) throw std::invalid_argument("phase_estimate: epsilon <= 0");
  const double phi = true_theta / (2.0 * M_PI);  // eigenphase as a fraction
  const auto big_k = static_cast<std::size_t>(std::ceil(2.0 * M_PI / epsilon)) + 1;
  const std::size_t reps = repetitions_for(delta);

  PhaseEstimateResult result;
  result.cost.completed = true;
  std::vector<double> estimates;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // Share the control superposition over k = 0..K-1 (Lemma 7); the k
    // registers of all repetitions could be streamed together, we charge
    // them per repetition (a constant-factor simplification).
    std::size_t q = std::max<std::size_t>(1, util::ceil_log2(big_k));
    result.cost += distribute_state(engine, tree, q);
    // Conditioned U^k: U applied K times in sequence, each conditioned on
    // the shared control (no extra diameter term — phase kickback).
    for (std::size_t k = 0; k < big_k; ++k) result.cost += apply_u();
    result.cost += undistribute_state(engine, tree, q);
    // Leader-local inverse QFT + measurement: sample the exact QPE law.
    double r = rng.uniform();
    double cumulative = 0.0;
    std::size_t outcome = big_k - 1;
    for (std::size_t y = 0; y < big_k; ++y) {
      cumulative += qpe_outcome_probability(big_k, phi, y);
      if (r < cumulative) {
        outcome = y;
        break;
      }
    }
    estimates.push_back(2.0 * M_PI * static_cast<double>(outcome) /
                        static_cast<double>(big_k));
  }
  result.theta = util::median(std::move(estimates));
  return result;
}

AmplitudeEstimateResult amplitude_estimate(net::Engine& engine, const net::BfsTree& tree,
                                           const DistributedSubroutine& subroutine,
                                           double p_max, double epsilon, double delta,
                                           util::Rng& rng) {
  double p = subroutine.success_probability;
  if (p < 0.0 || p > 1.0 || p > p_max + 1e-12) {
    throw std::invalid_argument("amplitude_estimate: bad probabilities");
  }
  if (epsilon <= 0.0) throw std::invalid_argument("amplitude_estimate: epsilon <= 0");

  // Phase estimation of the amplification iterate, whose eigenphase is
  // 2 theta_p with sin^2(theta_p) = p. Estimating theta to additive error
  // ~ epsilon / sqrt(p_max) suffices for |p_est - p| <= epsilon (BHMT).
  const double theta_p = query::grover_angle(p);
  const double theta_accuracy =
      epsilon / std::max(2.0 * std::sqrt(p_max), 1e-9);

  auto apply_iterate = [&]() { return amplification_iterate(engine, tree, subroutine); };
  PhaseEstimateResult pe = phase_estimate(engine, tree, apply_iterate, 2.0 * theta_p,
                                          2.0 * theta_accuracy, delta, rng);

  AmplitudeEstimateResult result;
  result.cost = pe.cost;
  // Eigenphases come in a +-2 theta pair; fold into [0, pi].
  double folded = pe.theta <= M_PI ? pe.theta : 2.0 * M_PI - pe.theta;
  double s = std::sin(folded / 2.0);
  result.p_estimate = s * s;
  return result;
}

}  // namespace qcongest::framework
