#pragma once

#include <stdexcept>
#include <string>

#include "src/framework/distributed_state.hpp"
#include "src/net/pipeline.hpp"

namespace qcongest::framework {

/// Graceful degradation for the framework's tree phases on a *direct*
/// (unreliable) transport: each phase is made end-to-end verifiable and is
/// retried on detected failure, up to a bounded budget. This is the
/// application-level alternative to Engine's reliable link transport — it
/// costs extra rounds only when something actually went wrong, but can
/// only detect corruption, not prevent it, and aborts when the budget is
/// exhausted.
///
/// Failure detection per phase:
///  - downcast: a checksum word is appended to the payload; every node
///    verifies locally and the verdicts are combined by a sentinel-vote
///    convergecast (a single bit flip can never forge the OK sentinel).
///  - convergecast: temporal redundancy — the phase is re-run until two
///    runs agree on every total (corruption is drawn independently per
///    run, so a repeated identical corruption is overwhelmingly unlikely).
///  - quantum state distribution: qubit payloads cannot be checksummed
///    (no-cloning), so only *detected* failures (lost words breaking the
///    schedule) are retried; qubit corruption maps to state infidelity,
///    which the framework's query algorithms already absorb in their
///    success probability.
///
/// Transient failures surface from the phases as logic/runtime errors
/// (missed words, out-of-order words, incomplete schedules); those are
/// caught and charged to the accumulated cost via Engine::last_stats, so
/// aborted attempts are paid for honestly.
struct RetryPolicy {
  /// Total attempts (initial + retries) before giving up. The resilient
  /// convergecast needs at least 2 (two runs must agree).
  std::size_t max_attempts = 3;
};

/// Thrown when a phase stays broken after RetryPolicy::max_attempts
/// attempts. Carries everything spent so callers can still charge the
/// failed phase to their cost accounting.
class PhaseAborted : public std::runtime_error {
 public:
  PhaseAborted(const std::string& phase, std::size_t attempts, net::RunResult cost)
      : std::runtime_error("resilient " + phase + " aborted after " +
                           std::to_string(attempts) + " attempts"),
        attempts_(attempts),
        cost_(cost) {}

  std::size_t attempts() const { return attempts_; }
  const net::RunResult& cost() const { return cost_; }

 private:
  std::size_t attempts_;
  net::RunResult cost_;
};

struct ResilientDowncastResult {
  /// The verified payload at every node (the checksum word is stripped).
  std::vector<std::vector<std::int64_t>> received;
  std::size_t attempts = 1;
  /// Total measured cost: failed attempts, successful attempt, and the
  /// verification convergecast of every attempt.
  net::RunResult cost;
};

/// Checksummed, verified, retried pipelined_downcast (Lemma 7's pattern).
ResilientDowncastResult resilient_downcast(net::Engine& engine,
                                           const net::BfsTree& tree,
                                           const std::vector<std::int64_t>& payload,
                                           bool quantum,
                                           const RetryPolicy& policy = {});

struct ResilientConvergecastResult {
  std::vector<std::int64_t> totals;
  std::size_t attempts = 2;  // temporal redundancy: at least two runs
  net::RunResult cost;
};

/// Run-twice-compare pipelined_convergecast (Theorem 8's aggregation).
ResilientConvergecastResult resilient_convergecast(
    net::Engine& engine, const net::BfsTree& tree,
    const std::vector<std::vector<std::int64_t>>& values, std::size_t value_words,
    const net::CombineOp& op, bool quantum, const RetryPolicy& policy = {});

struct ResilientPhaseResult {
  std::size_t attempts = 1;
  net::RunResult cost;
};

/// distribute_state (Lemma 7) retried on detected loss.
ResilientPhaseResult distribute_state_resilient(net::Engine& engine,
                                                const net::BfsTree& tree,
                                                std::size_t q_qubits,
                                                const RetryPolicy& policy = {});

/// The checksum the resilient downcast appends and each node re-derives.
/// Exposed for tests.
std::int64_t payload_checksum(const std::vector<std::int64_t>& payload);

}  // namespace qcongest::framework
