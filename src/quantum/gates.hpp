#pragma once

#include <array>

#include "src/quantum/types.hpp"

namespace qcongest::quantum {

/// A single-qubit gate as a row-major 2x2 unitary.
struct Gate1 {
  std::array<Amplitude, 4> m;  // [ m00 m01 ; m10 m11 ]

  Amplitude operator()(unsigned row, unsigned col) const { return m[row * 2 + col]; }
};

namespace gates {

Gate1 identity();
Gate1 hadamard();
Gate1 pauli_x();
Gate1 pauli_y();
Gate1 pauli_z();
Gate1 s();        // phase gate diag(1, i)
Gate1 s_dagger();
Gate1 t();        // diag(1, e^{i pi/4})
Gate1 t_dagger();
Gate1 rx(double theta);
Gate1 ry(double theta);
Gate1 rz(double theta);
Gate1 phase(double phi);  // diag(1, e^{i phi})

/// Adjoint (conjugate transpose) of a single-qubit gate.
Gate1 dagger(const Gate1& g);

/// True when g is unitary up to tolerance.
bool is_unitary(const Gate1& g, double tol = 1e-9);

}  // namespace gates

}  // namespace qcongest::quantum
