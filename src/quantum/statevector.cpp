#include "src/quantum/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/quantum/kernels.hpp"

namespace qcongest::quantum {

Statevector::Statevector(unsigned num_qubits) : Statevector(num_qubits, 0) {}

Statevector::Statevector(unsigned num_qubits, BasisState basis)
    : num_qubits_(num_qubits) {
  if (num_qubits == 0 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("Statevector: qubit count out of range");
  }
  std::size_t dim = std::size_t{1} << num_qubits;
  if (basis >= dim) throw std::invalid_argument("Statevector: basis out of range");
  amplitudes_.assign(dim, Amplitude{0, 0});
  amplitudes_[basis] = Amplitude{1, 0};
}

double Statevector::probability(BasisState basis) const {
  return std::norm(amplitudes_.at(basis));
}

double Statevector::probability_of_one(unsigned qubit) const {
  check_qubit(qubit);
  BasisState mask = BasisState{1} << qubit;
  double p = 0.0;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    if (b & mask) p += std::norm(amplitudes_[b]);
  }
  return p;
}

double Statevector::norm() const {
  double total = 0.0;
  for (const Amplitude& a : amplitudes_) total += std::norm(a);
  return std::sqrt(total);
}

Amplitude Statevector::inner_product(const Statevector& other) const {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("inner_product: qubit count mismatch");
  }
  Amplitude sum{0, 0};
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    sum += std::conj(other.amplitudes_[b]) * amplitudes_[b];
  }
  return sum;
}

double Statevector::fidelity(const Statevector& other) const {
  return std::norm(inner_product(other));
}

void Statevector::apply(const Gate1& gate, unsigned target) {
  check_qubit(target);
  // The strided pair walk lives in the kernel layer (runtime-dispatched
  // AVX2 / NEON / scalar); the scalar backend is the historical loop and
  // the oracle the vector backends are tested against.
  const kernels::Gate1Coeffs g{gate(0, 0), gate(0, 1), gate(1, 0), gate(1, 1)};
  kernels::active_ops().apply_pairs(amplitudes_.data(), amplitudes_.size(),
                                    std::size_t{1} << target, g);
}

void Statevector::apply_controlled(const Gate1& gate,
                                   std::span<const unsigned> controls,
                                   unsigned target) {
  check_qubit(target);
  BasisState control_mask = 0;
  for (unsigned c : controls) {
    check_qubit(c);
    if (c == target) throw std::invalid_argument("control equals target");
    control_mask |= BasisState{1} << c;
  }
  const kernels::Gate1Coeffs g{gate(0, 0), gate(0, 1), gate(1, 0), gate(1, 1)};
  kernels::active_ops().apply_pairs_controlled(amplitudes_.data(),
                                               amplitudes_.size(),
                                               std::size_t{1} << target, g,
                                               control_mask);
}

void Statevector::cnot(unsigned control, unsigned target) {
  const unsigned controls[] = {control};
  apply_controlled(gates::pauli_x(), controls, target);
}

void Statevector::cz(unsigned control, unsigned target) {
  const unsigned controls[] = {control};
  apply_controlled(gates::pauli_z(), controls, target);
}

void Statevector::ccx(unsigned c1, unsigned c2, unsigned target) {
  const unsigned controls[] = {c1, c2};
  apply_controlled(gates::pauli_x(), controls, target);
}

void Statevector::swap_qubits(unsigned a, unsigned b) {
  if (a == b) return;
  cnot(a, b);
  cnot(b, a);
  cnot(a, b);
}

void Statevector::h_all() {
  for (unsigned q = 0; q < num_qubits_; ++q) h(q);
}

void Statevector::apply_diagonal(const std::function<Amplitude(BasisState)>& phase) {
  diagonal_impl(phase);
}

void Statevector::apply_permutation(const std::function<BasisState(BasisState)>& pi) {
  permutation_impl(pi);
}

BasisState Statevector::measure_all(util::Rng& rng) {
  BasisState outcome = sample(rng);
  amplitudes_.assign(amplitudes_.size(), Amplitude{0, 0});
  amplitudes_[outcome] = Amplitude{1, 0};
  return outcome;
}

bool Statevector::measure_qubit(unsigned qubit, util::Rng& rng) {
  double p1 = probability_of_one(qubit);
  bool outcome = rng.bernoulli(p1);
  BasisState mask = BasisState{1} << qubit;
  double keep_prob = outcome ? p1 : 1.0 - p1;
  double scale = keep_prob > 0 ? 1.0 / std::sqrt(keep_prob) : 0.0;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    bool bit = (b & mask) != 0;
    amplitudes_[b] = (bit == outcome) ? amplitudes_[b] * scale : Amplitude{0, 0};
  }
  return outcome;
}

BasisState Statevector::sample(util::Rng& rng) const {
  double r = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    cumulative += std::norm(amplitudes_[b]);
    if (r < cumulative) return b;
  }
  return amplitudes_.size() - 1;  // guard against rounding at the tail
}

std::vector<double> Statevector::marginal(unsigned first, unsigned count) const {
  if (first + count > num_qubits_) {
    throw std::invalid_argument("marginal: register out of range");
  }
  std::vector<double> dist(std::size_t{1} << count, 0.0);
  BasisState reg_mask = ((BasisState{1} << count) - 1) << first;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    dist[(b & reg_mask) >> first] += std::norm(amplitudes_[b]);
  }
  return dist;
}

void Statevector::check_qubit(unsigned q) const {
  if (q >= num_qubits_) throw std::invalid_argument("qubit index out of range");
}

CumulativeSampler::CumulativeSampler(const Statevector& state) {
  cumulative_.reserve(state.dimension());
  double running = 0.0;
  for (const Amplitude& a : state.amplitudes()) {
    running += std::norm(a);
    cumulative_.push_back(running);
  }
}

CumulativeSampler::CumulativeSampler(std::span<const double> probabilities) {
  if (probabilities.empty()) {
    throw std::invalid_argument("CumulativeSampler: empty distribution");
  }
  cumulative_.reserve(probabilities.size());
  double running = 0.0;
  for (double p : probabilities) {
    if (p < 0.0) throw std::invalid_argument("CumulativeSampler: negative weight");
    running += p;
    cumulative_.push_back(running);
  }
}

BasisState CumulativeSampler::sample(util::Rng& rng) const {
  double r = rng.uniform();
  // First index with cumulative > r — the binary-search twin of the linear
  // scan in Statevector::sample, including its tail guard, so both return
  // identical draws for the same rng stream.
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), r);
  if (it == cumulative_.end()) return cumulative_.size() - 1;
  return static_cast<BasisState>(it - cumulative_.begin());
}

}  // namespace qcongest::quantum
