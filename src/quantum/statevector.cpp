#include "src/quantum/statevector.hpp"

#include <cmath>
#include <stdexcept>

namespace qcongest::quantum {

Statevector::Statevector(unsigned num_qubits) : Statevector(num_qubits, 0) {}

Statevector::Statevector(unsigned num_qubits, BasisState basis)
    : num_qubits_(num_qubits) {
  if (num_qubits == 0 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("Statevector: qubit count out of range");
  }
  std::size_t dim = std::size_t{1} << num_qubits;
  if (basis >= dim) throw std::invalid_argument("Statevector: basis out of range");
  amplitudes_.assign(dim, Amplitude{0, 0});
  amplitudes_[basis] = Amplitude{1, 0};
}

double Statevector::probability(BasisState basis) const {
  return std::norm(amplitudes_.at(basis));
}

double Statevector::probability_of_one(unsigned qubit) const {
  check_qubit(qubit);
  BasisState mask = BasisState{1} << qubit;
  double p = 0.0;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    if (b & mask) p += std::norm(amplitudes_[b]);
  }
  return p;
}

double Statevector::norm() const {
  double total = 0.0;
  for (const Amplitude& a : amplitudes_) total += std::norm(a);
  return std::sqrt(total);
}

Amplitude Statevector::inner_product(const Statevector& other) const {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("inner_product: qubit count mismatch");
  }
  Amplitude sum{0, 0};
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    sum += std::conj(other.amplitudes_[b]) * amplitudes_[b];
  }
  return sum;
}

double Statevector::fidelity(const Statevector& other) const {
  return std::norm(inner_product(other));
}

void Statevector::apply(const Gate1& gate, unsigned target) {
  check_qubit(target);
  BasisState mask = BasisState{1} << target;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    if (b & mask) continue;  // visit each (b, b|mask) pair once, from the 0 side
    Amplitude a0 = amplitudes_[b];
    Amplitude a1 = amplitudes_[b | mask];
    amplitudes_[b] = gate(0, 0) * a0 + gate(0, 1) * a1;
    amplitudes_[b | mask] = gate(1, 0) * a0 + gate(1, 1) * a1;
  }
}

void Statevector::apply_controlled(const Gate1& gate,
                                   std::span<const unsigned> controls,
                                   unsigned target) {
  check_qubit(target);
  BasisState control_mask = 0;
  for (unsigned c : controls) {
    check_qubit(c);
    if (c == target) throw std::invalid_argument("control equals target");
    control_mask |= BasisState{1} << c;
  }
  BasisState tmask = BasisState{1} << target;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    if (b & tmask) continue;
    if ((b & control_mask) != control_mask) continue;
    Amplitude a0 = amplitudes_[b];
    Amplitude a1 = amplitudes_[b | tmask];
    amplitudes_[b] = gate(0, 0) * a0 + gate(0, 1) * a1;
    amplitudes_[b | tmask] = gate(1, 0) * a0 + gate(1, 1) * a1;
  }
}

void Statevector::cnot(unsigned control, unsigned target) {
  const unsigned controls[] = {control};
  apply_controlled(gates::pauli_x(), controls, target);
}

void Statevector::cz(unsigned control, unsigned target) {
  const unsigned controls[] = {control};
  apply_controlled(gates::pauli_z(), controls, target);
}

void Statevector::ccx(unsigned c1, unsigned c2, unsigned target) {
  const unsigned controls[] = {c1, c2};
  apply_controlled(gates::pauli_x(), controls, target);
}

void Statevector::swap_qubits(unsigned a, unsigned b) {
  if (a == b) return;
  cnot(a, b);
  cnot(b, a);
  cnot(a, b);
}

void Statevector::h_all() {
  for (unsigned q = 0; q < num_qubits_; ++q) h(q);
}

void Statevector::apply_diagonal(const std::function<Amplitude(BasisState)>& phase) {
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    amplitudes_[b] *= phase(b);
  }
}

void Statevector::apply_permutation(const std::function<BasisState(BasisState)>& pi) {
  std::vector<Amplitude> next(amplitudes_.size(), Amplitude{0, 0});
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    BasisState target = pi(b);
    if (target >= amplitudes_.size()) {
      throw std::invalid_argument("apply_permutation: image out of range");
    }
    next[target] += amplitudes_[b];
  }
  // A genuine permutation preserves the norm; verify to catch non-bijections.
  double total = 0.0;
  for (const Amplitude& a : next) total += std::norm(a);
  if (std::abs(total - 1.0) > 1e-6) {
    throw std::invalid_argument("apply_permutation: map is not a bijection");
  }
  amplitudes_ = std::move(next);
}

BasisState Statevector::measure_all(util::Rng& rng) {
  BasisState outcome = sample(rng);
  amplitudes_.assign(amplitudes_.size(), Amplitude{0, 0});
  amplitudes_[outcome] = Amplitude{1, 0};
  return outcome;
}

bool Statevector::measure_qubit(unsigned qubit, util::Rng& rng) {
  double p1 = probability_of_one(qubit);
  bool outcome = rng.bernoulli(p1);
  BasisState mask = BasisState{1} << qubit;
  double keep_prob = outcome ? p1 : 1.0 - p1;
  double scale = keep_prob > 0 ? 1.0 / std::sqrt(keep_prob) : 0.0;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    bool bit = (b & mask) != 0;
    amplitudes_[b] = (bit == outcome) ? amplitudes_[b] * scale : Amplitude{0, 0};
  }
  return outcome;
}

BasisState Statevector::sample(util::Rng& rng) const {
  double r = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    cumulative += std::norm(amplitudes_[b]);
    if (r < cumulative) return b;
  }
  return amplitudes_.size() - 1;  // guard against rounding at the tail
}

std::vector<double> Statevector::marginal(unsigned first, unsigned count) const {
  if (first + count > num_qubits_) {
    throw std::invalid_argument("marginal: register out of range");
  }
  std::vector<double> dist(std::size_t{1} << count, 0.0);
  BasisState reg_mask = ((BasisState{1} << count) - 1) << first;
  for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
    dist[(b & reg_mask) >> first] += std::norm(amplitudes_[b]);
  }
  return dist;
}

void Statevector::check_qubit(unsigned q) const {
  if (q >= num_qubits_) throw std::invalid_argument("qubit index out of range");
}

}  // namespace qcongest::quantum
