#include "src/quantum/szegedy.hpp"

#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>

#include "src/util/combinatorics.hpp"

namespace qcongest::quantum {

SzegedyWalk::SzegedyWalk(std::vector<std::vector<double>> transition)
    : p_(std::move(transition)) {
  const std::size_t n = p_.size();
  if (n == 0 || n > 128) throw std::invalid_argument("SzegedyWalk: bad vertex count");
  sqrt_p_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t x = 0; x < n; ++x) {
    if (p_[x].size() != n) throw std::invalid_argument("SzegedyWalk: ragged matrix");
    double row = 0.0;
    for (std::size_t y = 0; y < n; ++y) {
      if (p_[x][y] < 0.0) throw std::invalid_argument("SzegedyWalk: negative entry");
      if (std::abs(p_[x][y] - p_[y][x]) > 1e-12) {
        throw std::invalid_argument("SzegedyWalk: matrix not symmetric");
      }
      row += p_[x][y];
      sqrt_p_[x][y] = std::sqrt(p_[x][y]);
    }
    if (std::abs(row - 1.0) > 1e-9) {
      throw std::invalid_argument("SzegedyWalk: row not stochastic");
    }
  }
}

std::vector<Amplitude> SzegedyWalk::stationary_state() const {
  const std::size_t n = num_vertices();
  std::vector<Amplitude> state(dimension(), Amplitude{0, 0});
  double norm = 1.0 / std::sqrt(static_cast<double>(n));
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      state[x * n + y] = Amplitude{norm * sqrt_p_[x][y], 0};
    }
  }
  return state;
}

void SzegedyWalk::reflect_a(std::vector<Amplitude>& state) const {
  const std::size_t n = num_vertices();
  for (std::size_t x = 0; x < n; ++x) {
    Amplitude overlap{0, 0};
    for (std::size_t y = 0; y < n; ++y) overlap += sqrt_p_[x][y] * state[x * n + y];
    for (std::size_t y = 0; y < n; ++y) {
      state[x * n + y] = 2.0 * overlap * sqrt_p_[x][y] - state[x * n + y];
    }
  }
}

void SzegedyWalk::reflect_b(std::vector<Amplitude>& state) const {
  const std::size_t n = num_vertices();
  for (std::size_t y = 0; y < n; ++y) {
    Amplitude overlap{0, 0};
    for (std::size_t x = 0; x < n; ++x) overlap += sqrt_p_[y][x] * state[x * n + y];
    for (std::size_t x = 0; x < n; ++x) {
      state[x * n + y] = 2.0 * overlap * sqrt_p_[y][x] - state[x * n + y];
    }
  }
}

void SzegedyWalk::apply(std::vector<Amplitude>& state) const {
  if (state.size() != dimension()) throw std::invalid_argument("SzegedyWalk: size");
  reflect_a(state);
  reflect_b(state);
}

void SzegedyWalk::flip_marked(std::vector<Amplitude>& state,
                              const std::vector<bool>& marked) const {
  const std::size_t n = num_vertices();
  if (marked.size() != n) throw std::invalid_argument("SzegedyWalk: marked size");
  for (std::size_t x = 0; x < n; ++x) {
    if (!marked[x]) continue;
    for (std::size_t y = 0; y < n; ++y) state[x * n + y] = -state[x * n + y];
  }
}

double SzegedyWalk::marked_probability(const std::vector<Amplitude>& state,
                                       const std::vector<bool>& marked) const {
  const std::size_t n = num_vertices();
  double total = 0.0;
  for (std::size_t x = 0; x < n; ++x) {
    if (!marked[x]) continue;
    for (std::size_t y = 0; y < n; ++y) total += std::norm(state[x * n + y]);
  }
  return total;
}

std::vector<std::vector<double>> johnson_transition_matrix(std::size_t k,
                                                           std::size_t z) {
  auto subsets = util::all_subsets(k, z);
  const std::size_t n = subsets.size();
  if (n == 0) throw std::invalid_argument("johnson_transition_matrix: empty graph");
  double degree = static_cast<double>(z * (k - z));
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  for (std::size_t a = 0; a < n; ++a) {
    std::set<std::size_t> sa(subsets[a].begin(), subsets[a].end());
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      std::size_t shared = 0;
      for (auto e : subsets[b]) {
        if (sa.contains(e)) ++shared;
      }
      if (shared == z - 1) p[a][b] = 1.0 / degree;  // differ by one swap
    }
  }
  return p;
}

double johnson_walk_search_probability(std::size_t k, std::size_t z,
                                       const std::vector<int>& values,
                                       std::size_t outer, std::size_t inner) {
  if (values.size() != k) throw std::invalid_argument("walk search: values size");
  auto subsets = util::all_subsets(k, z);
  std::vector<bool> marked(subsets.size(), false);
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    std::set<int> seen;
    for (auto idx : subsets[i]) {
      if (!seen.insert(values[idx]).second) {
        marked[i] = true;
        break;
      }
    }
  }
  SzegedyWalk walk(johnson_transition_matrix(k, z));
  auto state = walk.stationary_state();
  for (std::size_t r = 0; r < outer; ++r) {
    walk.flip_marked(state, marked);
    for (std::size_t t = 0; t < inner; ++t) walk.apply(state);
  }
  return walk.marked_probability(state, marked);
}

std::optional<std::pair<std::size_t, std::size_t>> johnson_walk_element_distinctness(
    std::size_t k, std::size_t z, const std::vector<int>& values,
    std::size_t attempts, util::Rng& rng) {
  if (values.size() != k) throw std::invalid_argument("walk ed: values size");
  auto subsets = util::all_subsets(k, z);
  std::vector<bool> marked(subsets.size(), false);
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    std::set<int> seen;
    for (auto idx : subsets[i]) {
      if (!seen.insert(values[idx]).second) {
        marked[i] = true;
        break;
      }
    }
  }
  SzegedyWalk walk(johnson_transition_matrix(k, z));
  double eps_lb = static_cast<double>(z) * (static_cast<double>(z) - 1.0) /
                  (static_cast<double>(k) * (static_cast<double>(k) - 1.0));
  auto outer_max = static_cast<std::size_t>(std::ceil(2.0 / std::sqrt(eps_lb)));
  auto inner = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(z))));

  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    auto state = walk.stationary_state();
    std::size_t outer = rng.index(outer_max) + 1;
    for (std::size_t r = 0; r < outer; ++r) {
      walk.flip_marked(state, marked);
      for (std::size_t t = 0; t < inner; ++t) walk.apply(state);
    }
    // Measure the first (subset) register.
    const std::size_t n = walk.num_vertices();
    double r = rng.uniform();
    double cumulative = 0.0;
    std::size_t measured = n - 1;
    for (std::size_t x = 0; x < n; ++x) {
      double mass = 0.0;
      for (std::size_t y = 0; y < n; ++y) mass += std::norm(state[x * n + y]);
      cumulative += mass;
      if (r < cumulative) {
        measured = x;
        break;
      }
    }
    // Classical check of the measured subset (C = 0 in the schedule).
    std::map<int, std::size_t> seen;
    for (auto idx : subsets[measured]) {
      auto [it, inserted] = seen.try_emplace(values[idx], idx);
      if (!inserted) {
        std::size_t a = it->second, b = idx;
        if (a > b) std::swap(a, b);
        return std::pair{a, b};
      }
    }
  }
  return std::nullopt;
}

}  // namespace qcongest::quantum
