#include "src/quantum/arithmetic.hpp"

#include <stdexcept>

namespace qcongest::quantum {

namespace {

struct Range {
  unsigned offset;
  unsigned width;
};

void check_registers(unsigned num_qubits, std::initializer_list<Range> ranges) {
  for (const Range& r : ranges) {
    if (r.width == 0) throw std::invalid_argument("arithmetic: zero-width register");
    if (r.offset + r.width > num_qubits) {
      throw std::invalid_argument("arithmetic: register out of range");
    }
  }
  // Pairwise disjointness.
  for (auto a = ranges.begin(); a != ranges.end(); ++a) {
    for (auto b = std::next(a); b != ranges.end(); ++b) {
      if (a->offset < b->offset + b->width && b->offset < a->offset + a->width) {
        throw std::invalid_argument("arithmetic: overlapping registers");
      }
    }
  }
}

/// MAJ(c, b, a): computes the carry majority in place (CDKM building block).
void maj(Circuit& circuit, unsigned c, unsigned b, unsigned a) {
  circuit.cnot(a, b);
  circuit.cnot(a, c);
  circuit.ccx(c, b, a);
}

/// UMA(c, b, a): undoes MAJ while writing the sum bit into b.
void uma(Circuit& circuit, unsigned c, unsigned b, unsigned a) {
  circuit.ccx(c, b, a);
  circuit.cnot(a, c);
  circuit.cnot(c, b);
}

/// The MAJ cascade of the CDKM adder; after it, a[width-1] holds the
/// carry-out of a + b.
Circuit maj_chain(unsigned num_qubits, unsigned a_offset, unsigned b_offset,
                  unsigned ancilla, unsigned width) {
  Circuit circuit(num_qubits);
  maj(circuit, ancilla, b_offset, a_offset);
  for (unsigned i = 1; i < width; ++i) {
    maj(circuit, a_offset + i - 1, b_offset + i, a_offset + i);
  }
  return circuit;
}

}  // namespace

Circuit adder_circuit(unsigned num_qubits, unsigned a_offset, unsigned b_offset,
                      unsigned ancilla, unsigned width) {
  check_registers(num_qubits, {{a_offset, width}, {b_offset, width}, {ancilla, 1}});

  Circuit circuit = maj_chain(num_qubits, a_offset, b_offset, ancilla, width);
  for (unsigned i = width; i-- > 1;) {
    uma(circuit, a_offset + i - 1, b_offset + i, a_offset + i);
  }
  uma(circuit, ancilla, b_offset, a_offset);
  return circuit;
}

Circuit carry_circuit(unsigned num_qubits, unsigned a_offset, unsigned b_offset,
                      unsigned ancilla, unsigned flag, unsigned width) {
  check_registers(num_qubits,
                  {{a_offset, width}, {b_offset, width}, {ancilla, 1}, {flag, 1}});

  Circuit chain = maj_chain(num_qubits, a_offset, b_offset, ancilla, width);
  Circuit circuit(num_qubits);
  circuit.append(chain);
  circuit.cnot(a_offset + width - 1, flag);  // the carry-out lives here
  circuit.append(chain.inverse());
  return circuit;
}

Circuit less_than_constant_circuit(unsigned num_qubits, unsigned x_offset,
                                   unsigned work_offset, unsigned ancilla,
                                   unsigned flag, unsigned width,
                                   std::uint64_t threshold) {
  check_registers(num_qubits,
                  {{x_offset, width}, {work_offset, width}, {ancilla, 1}, {flag, 1}});
  std::uint64_t modulus = std::uint64_t{1} << width;
  if (threshold > modulus) {
    throw std::invalid_argument("less_than_constant: threshold > 2^width");
  }

  Circuit circuit(num_qubits);
  if (threshold == 0) return circuit;  // x < 0 never holds
  if (threshold == modulus) {          // x < 2^width always holds
    circuit.x(flag);
    return circuit;
  }
  // x >= T  <=>  x + (2^width - T) carries out; flag ^= carry, then invert.
  std::uint64_t complement = modulus - threshold;
  for (unsigned b = 0; b < width; ++b) {
    if ((complement >> b) & 1) circuit.x(work_offset + b);
  }
  circuit.append(
      carry_circuit(num_qubits, x_offset, work_offset, ancilla, flag, width));
  for (unsigned b = 0; b < width; ++b) {
    if ((complement >> b) & 1) circuit.x(work_offset + b);
  }
  circuit.x(flag);
  return circuit;
}

}  // namespace qcongest::quantum
