#include "src/quantum/gates.hpp"

#include <cmath>

namespace qcongest::quantum::gates {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
}

Gate1 identity() { return {{Amplitude{1, 0}, {0, 0}, {0, 0}, {1, 0}}}; }

Gate1 hadamard() {
  return {{Amplitude{kInvSqrt2, 0}, {kInvSqrt2, 0}, {kInvSqrt2, 0}, {-kInvSqrt2, 0}}};
}

Gate1 pauli_x() { return {{Amplitude{0, 0}, {1, 0}, {1, 0}, {0, 0}}}; }

Gate1 pauli_y() { return {{Amplitude{0, 0}, {0, -1}, {0, 1}, {0, 0}}}; }

Gate1 pauli_z() { return {{Amplitude{1, 0}, {0, 0}, {0, 0}, {-1, 0}}}; }

Gate1 s() { return {{Amplitude{1, 0}, {0, 0}, {0, 0}, {0, 1}}}; }

Gate1 s_dagger() { return {{Amplitude{1, 0}, {0, 0}, {0, 0}, {0, -1}}}; }

Gate1 t() { return phase(M_PI / 4.0); }

Gate1 t_dagger() { return phase(-M_PI / 4.0); }

Gate1 rx(double theta) {
  double c = std::cos(theta / 2), sn = std::sin(theta / 2);
  return {{Amplitude{c, 0}, {0, -sn}, {0, -sn}, {c, 0}}};
}

Gate1 ry(double theta) {
  double c = std::cos(theta / 2), sn = std::sin(theta / 2);
  return {{Amplitude{c, 0}, {-sn, 0}, {sn, 0}, {c, 0}}};
}

Gate1 rz(double theta) {
  return {{std::polar(1.0, -theta / 2), {0, 0}, {0, 0}, std::polar(1.0, theta / 2)}};
}

Gate1 phase(double phi) {
  return {{Amplitude{1, 0}, {0, 0}, {0, 0}, std::polar(1.0, phi)}};
}

Gate1 dagger(const Gate1& g) {
  return {{std::conj(g(0, 0)), std::conj(g(1, 0)), std::conj(g(0, 1)), std::conj(g(1, 1))}};
}

bool is_unitary(const Gate1& g, double tol) {
  // Check G^dagger G == I entrywise.
  Gate1 d = dagger(g);
  for (unsigned r = 0; r < 2; ++r) {
    for (unsigned c = 0; c < 2; ++c) {
      Amplitude sum{0, 0};
      for (unsigned k = 0; k < 2; ++k) sum += d(r, k) * g(k, c);
      Amplitude expected = (r == c) ? Amplitude{1, 0} : Amplitude{0, 0};
      if (std::abs(sum - expected) > tol) return false;
    }
  }
  return true;
}

}  // namespace qcongest::quantum::gates
