#pragma once

#include <functional>
#include <map>
#include <vector>

#include "src/quantum/gates.hpp"
#include "src/quantum/types.hpp"
#include "src/util/rng.hpp"

namespace qcongest::quantum {

/// Sparse statevector over up to 62 qubits, storing only non-zero
/// amplitudes. Efficient whenever the support stays small — which is
/// exactly the regime of Lemma 7's distributed states: a q-qubit register
/// in superposition over at most 2^q values, fanned out to n nodes, lives
/// in an (n * q)-qubit space with support still <= 2^q. This class lets the
/// tests validate the framework's *state-level* behaviour (leader register
/// -> sum_i alpha_i |i>^{otimes n} -> back), complementing the engine's
/// schedule-level accounting.
class SparseStatevector {
 public:
  static constexpr unsigned kMaxQubits = 62;

  explicit SparseStatevector(unsigned num_qubits, BasisState basis = 0);

  unsigned num_qubits() const { return num_qubits_; }
  std::size_t support_size() const { return amplitudes_.size(); }

  Amplitude amplitude(BasisState basis) const;
  double norm() const;

  /// <other|this>.
  Amplitude inner_product(const SparseStatevector& other) const;
  double fidelity(const SparseStatevector& other) const;

  // --- Gates (support may at most double per 1-qubit gate) ----------------

  void apply(const Gate1& gate, unsigned target);
  void apply_controlled(const Gate1& gate, std::span<const unsigned> controls,
                        unsigned target);
  void h(unsigned q) { apply(gates::hadamard(), q); }
  void x(unsigned q) { apply(gates::pauli_x(), q); }
  void z(unsigned q) { apply(gates::pauli_z(), q); }
  void cnot(unsigned control, unsigned target);

  /// |b> -> phase(b)|b> (support unchanged).
  void apply_diagonal(const std::function<Amplitude(BasisState)>& phase);

  /// Basis-state bijection |b> -> |pi(b)> (support unchanged).
  void apply_permutation(const std::function<BasisState(BasisState)>& pi);

  // --- Measurement ----------------------------------------------------------

  BasisState sample(util::Rng& rng) const;
  BasisState measure_all(util::Rng& rng);

  /// Removes amplitudes below kAmplitudeEpsilon (gates do this implicitly).
  void prune();

 private:
  void check_qubit(unsigned q) const;

  unsigned num_qubits_;
  // Ordered on purpose: iteration feeds measurement sampling and norm sums,
  // so a hash-ordered container would make outcomes (and float rounding)
  // depend on the standard library's hash — caught by qlint unordered-iter.
  std::map<BasisState, Amplitude> amplitudes_;
};

/// Lemma 7's fan-out as an explicit circuit on the sparse simulator: copies
/// the `q`-qubit register at offset `src` onto the register at offset `dst`
/// with transversal CNOTs (valid for basis-superposition registers; this is
/// not cloning).
void fan_out_register(SparseStatevector& state, unsigned src, unsigned dst,
                      unsigned width);

}  // namespace qcongest::quantum
