#pragma once

#include "src/quantum/circuit.hpp"

namespace qcongest::quantum {

/// Quantum Fourier transform on the qubit range [first, first + width),
/// mapping |j> -> (1/sqrt(2^w)) sum_k e^{2 pi i jk / 2^w} |k>, with qubit
/// `first` the least significant bit of j.
Circuit qft_circuit(unsigned num_qubits, unsigned first, unsigned width);

/// Inverse QFT on the same register.
Circuit inverse_qft_circuit(unsigned num_qubits, unsigned first, unsigned width);

}  // namespace qcongest::quantum
