#pragma once

#include <string>
#include <vector>

#include "src/quantum/gates.hpp"
#include "src/quantum/statevector.hpp"

namespace qcongest::quantum {

/// A straight-line quantum circuit: an ordered list of (possibly controlled)
/// single-qubit gates. Supports composition and inversion, which is what the
/// framework's "uncompute" steps need.
class Circuit {
 public:
  explicit Circuit(unsigned num_qubits) : num_qubits_(num_qubits) {}

  unsigned num_qubits() const { return num_qubits_; }
  std::size_t size() const { return ops_.size(); }

  Circuit& gate(const Gate1& g, unsigned target, std::string name = "u");
  Circuit& controlled(const Gate1& g, std::vector<unsigned> controls, unsigned target,
                      std::string name = "cu");

  Circuit& h(unsigned q) { return gate(gates::hadamard(), q, "h"); }
  Circuit& x(unsigned q) { return gate(gates::pauli_x(), q, "x"); }
  Circuit& y(unsigned q) { return gate(gates::pauli_y(), q, "y"); }
  Circuit& z(unsigned q) { return gate(gates::pauli_z(), q, "z"); }
  Circuit& rz(unsigned q, double theta) { return gate(gates::rz(theta), q, "rz"); }
  Circuit& ry(unsigned q, double theta) { return gate(gates::ry(theta), q, "ry"); }
  Circuit& phase(unsigned q, double phi) { return gate(gates::phase(phi), q, "p"); }
  Circuit& cnot(unsigned c, unsigned t) {
    return controlled(gates::pauli_x(), {c}, t, "cx");
  }
  Circuit& cz(unsigned c, unsigned t) { return controlled(gates::pauli_z(), {c}, t, "cz"); }
  Circuit& cphase(unsigned c, unsigned t, double phi) {
    return controlled(gates::phase(phi), {c}, t, "cp");
  }
  Circuit& ccx(unsigned c1, unsigned c2, unsigned t) {
    return controlled(gates::pauli_x(), {c1, c2}, t, "ccx");
  }
  Circuit& swap(unsigned a, unsigned b) {
    cnot(a, b);
    cnot(b, a);
    return cnot(a, b);
  }

  /// Append all operations of `other` (must act on the same qubit count).
  Circuit& append(const Circuit& other);

  /// The adjoint circuit: gates reversed and conjugate-transposed.
  Circuit inverse() const;

  /// The circuit with `control` added as an extra control to every
  /// operation (controlled-(AB) = controlled-A controlled-B). `control`
  /// must not appear in any existing operation.
  Circuit controlled_on(unsigned control) const;

  /// The same circuit re-indexed into a wider register: qubit q becomes
  /// qubit q + offset of a `new_width`-qubit circuit.
  Circuit embedded(unsigned new_width, unsigned offset) const;

  void apply_to(Statevector& state) const;

  /// Run on |0...0> and return the resulting state.
  Statevector simulate() const;

 private:
  struct Op {
    Gate1 g;
    std::vector<unsigned> controls;
    unsigned target;
    std::string name;
  };

  unsigned num_qubits_;
  std::vector<Op> ops_;
};

}  // namespace qcongest::quantum
