#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "src/quantum/types.hpp"
#include "src/util/rng.hpp"

namespace qcongest::quantum {

/// Szegedy quantization of a symmetric random walk: the unitary
/// W = R_B R_A on C^{V x V}, where R_A reflects around the span of
/// |phi_x> = |x> sum_y sqrt(P(x,y)) |y> and R_B is its mirror image.
///
/// This is the operator underneath Lemma 5's quantum walk. It is only
/// tractable as explicit linear algebra for toy vertex counts, which is
/// exactly its role here: validating that the walk *schedule* charged by
/// query::element_distinctness (sqrt(1/eps) outer steps of sqrt(1/delta)
/// walk applications) really drives the marked amplitude to a constant —
/// the substitution documented in DESIGN.md, pinned at gate level.
class SzegedyWalk {
 public:
  /// P must be row-stochastic and symmetric (doubly stochastic); |V| <= 128
  /// keeps the V^2 state tractable.
  explicit SzegedyWalk(std::vector<std::vector<double>> transition);

  std::size_t num_vertices() const { return p_.size(); }
  std::size_t dimension() const { return p_.size() * p_.size(); }

  /// The stationary superposition (1/sqrt|V|) sum_x |phi_x>.
  std::vector<Amplitude> stationary_state() const;

  /// One application of W = R_B R_A, in place.
  void apply(std::vector<Amplitude>& state) const;

  /// Phase flip of every |x>|y> with marked[x] (the first register).
  void flip_marked(std::vector<Amplitude>& state,
                   const std::vector<bool>& marked) const;

  /// Probability mass currently on marked first-register vertices.
  double marked_probability(const std::vector<Amplitude>& state,
                            const std::vector<bool>& marked) const;

 private:
  void reflect_a(std::vector<Amplitude>& state) const;
  void reflect_b(std::vector<Amplitude>& state) const;

  std::vector<std::vector<double>> p_;        // transition probabilities
  std::vector<std::vector<double>> sqrt_p_;   // precomputed sqrt(P(x,y))
};

/// The normalized Johnson-graph J(k, z) transition matrix (the walk of
/// Lemma 5), as a dense matrix over the C(k, z) subsets in lexicographic
/// order (see util::all_subsets).
std::vector<std::vector<double>> johnson_transition_matrix(std::size_t k,
                                                           std::size_t z);

/// End-to-end toy validation of the Lemma 5 schedule: run `outer` steps of
/// [flip marked, W^inner] from the stationary state (Ambainis's search
/// iteration) and return the final marked probability. `marked[x]` flags
/// the z-subsets containing a collision of `values`.
double johnson_walk_search_probability(std::size_t k, std::size_t z,
                                       const std::vector<int>& values,
                                       std::size_t outer, std::size_t inner);

/// Toy gate-level element distinctness: run the walk search with a
/// BBHT-randomized outer count, measure the subset register, and return a
/// collision pair from the measured subset (one-sided: nullopt on a miss,
/// never a false pair). Repeats up to `attempts` times.
std::optional<std::pair<std::size_t, std::size_t>> johnson_walk_element_distinctness(
    std::size_t k, std::size_t z, const std::vector<int>& values,
    std::size_t attempts, util::Rng& rng);

}  // namespace qcongest::quantum
