#pragma once

#include <functional>

#include "src/quantum/statevector.hpp"

namespace qcongest::quantum {

/// Standard quantum oracles acting on a statevector. The index register is
/// the qubit range [index_first, index_first + index_width); inputs i with
/// f undefined (i >= domain size) are treated as f(i) = 0.

/// Bit oracle O_f : |i>|b> -> |i>|b xor f(i)>, with the answer bit at
/// qubit `target`.
void apply_bit_oracle(Statevector& state, unsigned index_first, unsigned index_width,
                      unsigned target, const std::function<bool(std::uint64_t)>& f);

/// Phase oracle O_f : |i> -> (-1)^{f(i)} |i>.
void apply_phase_oracle(Statevector& state, unsigned index_first, unsigned index_width,
                        const std::function<bool(std::uint64_t)>& f);

/// XOR-value oracle O_x : |i>|y> -> |i>|y xor x_i> for a value register of
/// `value_width` qubits starting at `value_first`.
void apply_value_oracle(Statevector& state, unsigned index_first, unsigned index_width,
                        unsigned value_first, unsigned value_width,
                        const std::function<std::uint64_t(std::uint64_t)>& x);

}  // namespace qcongest::quantum
