#pragma once

#include <cstdint>

#include "src/quantum/circuit.hpp"

namespace qcongest::quantum {

/// Reversible arithmetic circuits (Cuccaro–Draper–Kutin–Moulton ripple-carry
/// construction). These make the library's oracles fully gate-level where
/// the algorithms need *computed* predicates — e.g. the threshold
/// comparisons of Dürr–Høyer minimum finding (Lemma 3), validated at toy
/// scale against the distribution-exact implementation used by the
/// framework.

/// In-place ripple-carry adder: |a>|b>|0_anc> -> |a>|a + b mod 2^width>|0>.
/// Registers: a at [a_offset, a_offset + width), b likewise; `ancilla` is a
/// single scratch qubit (returned to |0>). All indices must be disjoint.
Circuit adder_circuit(unsigned num_qubits, unsigned a_offset, unsigned b_offset,
                      unsigned ancilla, unsigned width);

/// Carry extractor: flips `flag` iff a + b >= 2^width (the carry-out),
/// leaving a, b, and the ancilla unchanged (MAJ chain, CNOT, inverse chain).
Circuit carry_circuit(unsigned num_qubits, unsigned a_offset, unsigned b_offset,
                      unsigned ancilla, unsigned flag, unsigned width);

/// Comparator against a classical constant: flips `flag` iff the value in
/// register x is strictly less than `threshold` (0 <= threshold <= 2^width).
/// `work` is a width-qubit scratch register (returned to |0>); `ancilla` a
/// single scratch qubit.
Circuit less_than_constant_circuit(unsigned num_qubits, unsigned x_offset,
                                   unsigned work_offset, unsigned ancilla,
                                   unsigned flag, unsigned width,
                                   std::uint64_t threshold);

}  // namespace qcongest::quantum
