#include "src/quantum/circuit.hpp"

#include <algorithm>
#include <stdexcept>

namespace qcongest::quantum {

Circuit& Circuit::gate(const Gate1& g, unsigned target, std::string name) {
  if (target >= num_qubits_) throw std::invalid_argument("Circuit: target out of range");
  ops_.push_back(Op{g, {}, target, std::move(name)});
  return *this;
}

Circuit& Circuit::controlled(const Gate1& g, std::vector<unsigned> controls,
                             unsigned target, std::string name) {
  if (target >= num_qubits_) throw std::invalid_argument("Circuit: target out of range");
  for (unsigned c : controls) {
    if (c >= num_qubits_) throw std::invalid_argument("Circuit: control out of range");
    if (c == target) throw std::invalid_argument("Circuit: control equals target");
  }
  ops_.push_back(Op{g, std::move(controls), target, std::move(name)});
  return *this;
}

Circuit& Circuit::append(const Circuit& other) {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("Circuit::append: qubit count mismatch");
  }
  ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
  return *this;
}

Circuit Circuit::inverse() const {
  Circuit inv(num_qubits_);
  inv.ops_.reserve(ops_.size());
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    inv.ops_.push_back(Op{gates::dagger(it->g), it->controls, it->target,
                          it->name + "+"});
  }
  return inv;
}

Circuit Circuit::controlled_on(unsigned control) const {
  if (control >= num_qubits_) {
    throw std::invalid_argument("controlled_on: control out of range");
  }
  Circuit out(num_qubits_);
  out.ops_.reserve(ops_.size());
  for (const Op& op : ops_) {
    if (op.target == control ||
        std::find(op.controls.begin(), op.controls.end(), control) !=
            op.controls.end()) {
      throw std::invalid_argument("controlled_on: control overlaps circuit qubits");
    }
    Op c = op;
    c.controls.push_back(control);
    c.name = "c-" + c.name;
    out.ops_.push_back(std::move(c));
  }
  return out;
}

Circuit Circuit::embedded(unsigned new_width, unsigned offset) const {
  if (offset + num_qubits_ > new_width) {
    throw std::invalid_argument("embedded: circuit does not fit");
  }
  Circuit out(new_width);
  out.ops_.reserve(ops_.size());
  for (const Op& op : ops_) {
    Op shifted = op;
    shifted.target += offset;
    for (unsigned& c : shifted.controls) c += offset;
    out.ops_.push_back(std::move(shifted));
  }
  return out;
}

void Circuit::apply_to(Statevector& state) const {
  if (state.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Circuit::apply_to: qubit count mismatch");
  }
  for (const Op& op : ops_) {
    if (op.controls.empty()) {
      state.apply(op.g, op.target);
    } else {
      state.apply_controlled(op.g, op.controls, op.target);
    }
  }
}

Statevector Circuit::simulate() const {
  Statevector state(num_qubits_);
  apply_to(state);
  return state;
}

}  // namespace qcongest::quantum
