#include "src/quantum/kernels.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace qcongest::quantum::kernels {
namespace {

#define QC_AVX2 __attribute__((target("avx2")))

// A __m256d holds two interleaved complex doubles [re0 im0 re1 im1].
//
// cmul multiplies both by one complex scalar g, given as the pre-broadcast
// vectors gr = [g.re]*4 and gi = [g.im]*4:
//   t1     = (re*gr, im*gr)
//   t2     = (im*gi, re*gi)        (operand with re/im swapped per lane)
//   addsub = (re*gr - im*gi, im*gr + re*gi)
// Each product is rounded once and combined with one add/sub — the same
// per-operation rounding as std::complex operator* in the scalar oracle,
// so no fused-multiply-add sneaks in a different result.
QC_AVX2 inline __m256d cmul(__m256d v, __m256d gr, __m256d gi) {
  const __m256d t1 = _mm256_mul_pd(v, gr);
  const __m256d swapped = _mm256_permute_pd(v, 0b0101);
  const __m256d t2 = _mm256_mul_pd(swapped, gi);
  return _mm256_addsub_pd(t1, t2);
}

QC_AVX2 inline __m256d bre(const Amplitude& g) {
  return _mm256_set1_pd(g.real());
}
QC_AVX2 inline __m256d bim(const Amplitude& g) {
  return _mm256_set1_pd(g.imag());
}

inline bool is_zero(const Amplitude& a) {
  // Structural-zero detection for the diagonal/antidiagonal fast paths:
  // only coefficients that are exactly zero may skip their products, so a
  // tolerance here would be a correctness bug, not a robustness feature.
  return a.real() == 0.0 && a.imag() == 0.0;  // qlint-allow(float-equal): structural zero selects an algebraic identity
}

// Target qubit 0: the pair is two adjacent complexes, one __m256d. Broadcast
// each amplitude across both 128-bit lanes and pack the gate column-wise —
// lane 0 computes the new lo, lane 1 the new hi.
QC_AVX2 void pairs_stride1(Amplitude* amps, std::size_t dim,
                           const Gate1Coeffs& g) {
  const __m256d c0r = _mm256_setr_pd(g.g00.real(), g.g00.real(),
                                     g.g10.real(), g.g10.real());
  const __m256d c0i = _mm256_setr_pd(g.g00.imag(), g.g00.imag(),
                                     g.g10.imag(), g.g10.imag());
  const __m256d c1r = _mm256_setr_pd(g.g01.real(), g.g01.real(),
                                     g.g11.real(), g.g11.real());
  const __m256d c1i = _mm256_setr_pd(g.g01.imag(), g.g01.imag(),
                                     g.g11.imag(), g.g11.imag());
  double* d = reinterpret_cast<double*>(amps);
  for (std::size_t base = 0; base < dim; base += 2, d += 4) {
    const __m256d v = _mm256_loadu_pd(d);
    const __m256d a0 = _mm256_permute2f128_pd(v, v, 0x00);
    const __m256d a1 = _mm256_permute2f128_pd(v, v, 0x11);
    _mm256_storeu_pd(d, _mm256_add_pd(cmul(a0, c0r, c0i), cmul(a1, c1r, c1i)));
  }
}

// stride >= 2 (always even): lo/hi runs are contiguous, two complexes per
// vector, no tail. The diagonal / antidiagonal shapes skip the half of the
// arithmetic that multiplies by a structural zero.
QC_AVX2 void pairs_strided(Amplitude* amps, std::size_t dim, std::size_t stride,
                           const Gate1Coeffs& g) {
  const bool diagonal = is_zero(g.g01) && is_zero(g.g10);
  const bool antidiagonal = is_zero(g.g00) && is_zero(g.g11);
  const __m256d g00r = bre(g.g00), g00i = bim(g.g00);
  const __m256d g01r = bre(g.g01), g01i = bim(g.g01);
  const __m256d g10r = bre(g.g10), g10i = bim(g.g10);
  const __m256d g11r = bre(g.g11), g11i = bim(g.g11);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    double* lo = reinterpret_cast<double*>(amps + base);
    double* hi = reinterpret_cast<double*>(amps + base + stride);
    if (diagonal) {
      for (std::size_t off = 0; off < 2 * stride; off += 4) {
        _mm256_storeu_pd(lo + off, cmul(_mm256_loadu_pd(lo + off), g00r, g00i));
        _mm256_storeu_pd(hi + off, cmul(_mm256_loadu_pd(hi + off), g11r, g11i));
      }
    } else if (antidiagonal) {
      for (std::size_t off = 0; off < 2 * stride; off += 4) {
        const __m256d vlo = _mm256_loadu_pd(lo + off);
        const __m256d vhi = _mm256_loadu_pd(hi + off);
        _mm256_storeu_pd(lo + off, cmul(vhi, g01r, g01i));
        _mm256_storeu_pd(hi + off, cmul(vlo, g10r, g10i));
      }
    } else {
      for (std::size_t off = 0; off < 2 * stride; off += 4) {
        const __m256d vlo = _mm256_loadu_pd(lo + off);
        const __m256d vhi = _mm256_loadu_pd(hi + off);
        _mm256_storeu_pd(
            lo + off,
            _mm256_add_pd(cmul(vlo, g00r, g00i), cmul(vhi, g01r, g01i)));
        _mm256_storeu_pd(
            hi + off,
            _mm256_add_pd(cmul(vlo, g10r, g10i), cmul(vhi, g11r, g11i)));
      }
    }
  }
}

QC_AVX2 void avx2_pairs(Amplitude* amps, std::size_t dim, std::size_t stride,
                        const Gate1Coeffs& g) {
  if (stride == 1) {
    pairs_stride1(amps, dim, g);
  } else {
    pairs_strided(amps, dim, stride, g);
  }
}

QC_AVX2 void avx2_pairs_controlled(Amplitude* amps, std::size_t dim,
                                   std::size_t stride, const Gate1Coeffs& g,
                                   BasisState control_mask) {
  // Split the mask around the target bit: bits above the run (constant
  // across [base, base + stride)) gate whole runs; bits below vary with
  // `off` and force the scalar formula inside the run. Controls above the
  // target — cnot/ccx in ascending circuits, the common case — therefore
  // vectorize fully.
  const BasisState mask_lo = control_mask & (stride - 1);
  const BasisState mask_hi = control_mask & ~(2 * stride - 1);
  const __m256d g00r = bre(g.g00), g00i = bim(g.g00);
  const __m256d g01r = bre(g.g01), g01i = bim(g.g01);
  const __m256d g10r = bre(g.g10), g10i = bim(g.g10);
  const __m256d g11r = bre(g.g11), g11i = bim(g.g11);
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    if ((base & mask_hi) != mask_hi) continue;
    Amplitude* lo = amps + base;
    Amplitude* hi = lo + stride;
    if (mask_lo != 0) {
      for (std::size_t off = 0; off < stride; ++off) {
        if ((off & mask_lo) != mask_lo) continue;
        const Amplitude a0 = lo[off];
        const Amplitude a1 = hi[off];
        lo[off] = g.g00 * a0 + g.g01 * a1;
        hi[off] = g.g10 * a0 + g.g11 * a1;
      }
      continue;
    }
    if (stride == 1) {
      // One pair, adjacent: the stride-1 lane trick on a single vector.
      const __m256d c0r = _mm256_setr_pd(g.g00.real(), g.g00.real(),
                                         g.g10.real(), g.g10.real());
      const __m256d c0i = _mm256_setr_pd(g.g00.imag(), g.g00.imag(),
                                         g.g10.imag(), g.g10.imag());
      const __m256d c1r = _mm256_setr_pd(g.g01.real(), g.g01.real(),
                                         g.g11.real(), g.g11.real());
      const __m256d c1i = _mm256_setr_pd(g.g01.imag(), g.g01.imag(),
                                         g.g11.imag(), g.g11.imag());
      double* d = reinterpret_cast<double*>(lo);
      const __m256d v = _mm256_loadu_pd(d);
      const __m256d a0 = _mm256_permute2f128_pd(v, v, 0x00);
      const __m256d a1 = _mm256_permute2f128_pd(v, v, 0x11);
      _mm256_storeu_pd(d,
                       _mm256_add_pd(cmul(a0, c0r, c0i), cmul(a1, c1r, c1i)));
      continue;
    }
    double* dlo = reinterpret_cast<double*>(lo);
    double* dhi = reinterpret_cast<double*>(hi);
    for (std::size_t off = 0; off < 2 * stride; off += 4) {
      const __m256d vlo = _mm256_loadu_pd(dlo + off);
      const __m256d vhi = _mm256_loadu_pd(dhi + off);
      _mm256_storeu_pd(
          dlo + off,
          _mm256_add_pd(cmul(vlo, g00r, g00i), cmul(vhi, g01r, g01i)));
      _mm256_storeu_pd(
          dhi + off,
          _mm256_add_pd(cmul(vlo, g10r, g10i), cmul(vhi, g11r, g11i)));
    }
  }
}

#undef QC_AVX2

constexpr KernelOps kAvx2Ops{avx2_pairs, avx2_pairs_controlled};

}  // namespace

const KernelOps* avx2_ops_or_null() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Ops : nullptr;
}

}  // namespace qcongest::quantum::kernels

#else  // not x86-64

namespace qcongest::quantum::kernels {
const KernelOps* avx2_ops_or_null() { return nullptr; }
}  // namespace qcongest::quantum::kernels

#endif
