#include "src/quantum/qft.hpp"

#include <cmath>
#include <stdexcept>

namespace qcongest::quantum {

Circuit qft_circuit(unsigned num_qubits, unsigned first, unsigned width) {
  if (first + width > num_qubits) throw std::invalid_argument("qft: register range");
  Circuit c(num_qubits);
  // Standard textbook QFT, most significant qubit (first + width - 1) first.
  for (unsigned i = width; i-- > 0;) {
    unsigned q = first + i;
    c.h(q);
    for (unsigned j = i; j-- > 0;) {
      double angle = M_PI / static_cast<double>(std::uint64_t{1} << (i - j));
      c.cphase(first + j, q, angle);
    }
  }
  // Reverse qubit order to get the conventional output ordering.
  for (unsigned i = 0; i < width / 2; ++i) {
    c.swap(first + i, first + width - 1 - i);
  }
  return c;
}

Circuit inverse_qft_circuit(unsigned num_qubits, unsigned first, unsigned width) {
  return qft_circuit(num_qubits, first, width).inverse();
}

}  // namespace qcongest::quantum
