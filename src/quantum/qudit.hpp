#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/quantum/types.hpp"
#include "src/util/rng.hpp"

namespace qcongest::quantum {

/// A single register of dimension k (not necessarily a power of two).
///
/// Several of the paper's query algorithms live naturally in C^k — the span
/// of the index states |1>, ..., |k> — rather than in a qubit tensor space.
/// Simulating directly in C^k is exact and scales to k in the millions,
/// which the dense qubit simulator cannot. Deutsch-Jozsa (Theorem 17) and
/// the analytic Grover checks use this class.
class QuditState {
 public:
  explicit QuditState(std::size_t dimension);

  /// Uniform superposition over [0, k).
  static QuditState uniform(std::size_t dimension);

  std::size_t dimension() const { return amps_.size(); }
  Amplitude amplitude(std::size_t i) const { return amps_.at(i); }

  double norm() const;

  /// Phase oracle |i> -> (-1)^{f(i)} |i>.
  void apply_phase_oracle(const std::function<bool(std::size_t)>& f);

  /// Arbitrary diagonal unitary |i> -> phase(i)|i>.
  void apply_diagonal(const std::function<Amplitude(std::size_t)>& phase);

  /// Reflection through the uniform superposition: 2|u><u| - I.
  void reflect_about_uniform();

  /// Overlap <u|psi> with the uniform state (used by the Deutsch-Jozsa
  /// measurement: the probability of the all-zero outcome is |<u|psi>|^2).
  Amplitude overlap_with_uniform() const;

  /// Sample a basis index from the current distribution (non-collapsing).
  std::size_t sample(util::Rng& rng) const;

  /// Probability of measuring index i.
  double probability(std::size_t i) const;

 private:
  std::vector<Amplitude> amps_;
};

}  // namespace qcongest::quantum
