#pragma once

#include <functional>
#include <span>
#include <vector>

#include "src/quantum/gates.hpp"
#include "src/quantum/types.hpp"
#include "src/util/rng.hpp"

namespace qcongest::quantum {

/// Dense statevector simulator over up to kMaxQubits qubits.
///
/// Qubit 0 is the least significant bit of the basis-state index. The class
/// maintains the invariant that the state is normalized (up to floating
/// point error) after every public mutating operation.
class Statevector {
 public:
  static constexpr unsigned kMaxQubits = 26;

  /// |0...0> on `num_qubits` qubits.
  explicit Statevector(unsigned num_qubits);

  /// A specific basis state on `num_qubits` qubits.
  Statevector(unsigned num_qubits, BasisState basis);

  unsigned num_qubits() const { return num_qubits_; }
  std::size_t dimension() const { return amplitudes_.size(); }

  Amplitude amplitude(BasisState basis) const { return amplitudes_.at(basis); }
  std::span<const Amplitude> amplitudes() const { return amplitudes_; }

  /// Probability of measuring exactly `basis` on all qubits.
  double probability(BasisState basis) const;

  /// Probability that measuring `qubit` yields 1.
  double probability_of_one(unsigned qubit) const;

  double norm() const;

  /// <other|this>.
  Amplitude inner_product(const Statevector& other) const;

  /// Fidelity |<other|this>|^2.
  double fidelity(const Statevector& other) const;

  // --- Gates ---------------------------------------------------------------

  void apply(const Gate1& gate, unsigned target);

  /// Gate applied to `target`, controlled on every qubit in `controls` being 1.
  void apply_controlled(const Gate1& gate, std::span<const unsigned> controls,
                        unsigned target);

  void h(unsigned q) { apply(gates::hadamard(), q); }
  void x(unsigned q) { apply(gates::pauli_x(), q); }
  void y(unsigned q) { apply(gates::pauli_y(), q); }
  void z(unsigned q) { apply(gates::pauli_z(), q); }
  void cnot(unsigned control, unsigned target);
  void cz(unsigned control, unsigned target);
  void ccx(unsigned c1, unsigned c2, unsigned target);
  void swap_qubits(unsigned a, unsigned b);

  /// Hadamard on every qubit.
  void h_all();

  // --- Oracles / bulk operations -------------------------------------------

  /// |b> -> phase(b) * |b> for every basis state. `phase` must return a
  /// unit-modulus complex number for the result to stay normalized.
  void apply_diagonal(const std::function<Amplitude(BasisState)>& phase);

  /// Permutation on basis states: |b> -> |pi(b)>. `pi` must be a bijection
  /// on [0, 2^n).
  void apply_permutation(const std::function<BasisState(BasisState)>& pi);

  // --- Measurement ----------------------------------------------------------

  /// Measure all qubits; collapses to the sampled basis state.
  BasisState measure_all(util::Rng& rng);

  /// Measure a single qubit; collapses (and renormalizes) the state.
  bool measure_qubit(unsigned qubit, util::Rng& rng);

  /// Sample a basis state without collapsing.
  BasisState sample(util::Rng& rng) const;

  /// Marginal distribution over the qubits [first, first + count).
  std::vector<double> marginal(unsigned first, unsigned count) const;

 private:
  void check_qubit(unsigned q) const;

  unsigned num_qubits_;
  std::vector<Amplitude> amplitudes_;
};

}  // namespace qcongest::quantum
