#pragma once

#include <cmath>
#include <functional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/quantum/gates.hpp"
#include "src/quantum/types.hpp"
#include "src/util/rng.hpp"

namespace qcongest::quantum {

/// Dense statevector simulator over up to kMaxQubits qubits.
///
/// Qubit 0 is the least significant bit of the basis-state index. The class
/// maintains the invariant that the state is normalized (up to floating
/// point error) after every public mutating operation.
class Statevector {
 public:
  static constexpr unsigned kMaxQubits = 26;

  /// |0...0> on `num_qubits` qubits.
  explicit Statevector(unsigned num_qubits);

  /// A specific basis state on `num_qubits` qubits.
  Statevector(unsigned num_qubits, BasisState basis);

  unsigned num_qubits() const { return num_qubits_; }
  std::size_t dimension() const { return amplitudes_.size(); }

  Amplitude amplitude(BasisState basis) const { return amplitudes_.at(basis); }
  std::span<const Amplitude> amplitudes() const { return amplitudes_; }

  /// Probability of measuring exactly `basis` on all qubits.
  double probability(BasisState basis) const;

  /// Probability that measuring `qubit` yields 1.
  double probability_of_one(unsigned qubit) const;

  double norm() const;

  /// <other|this>.
  Amplitude inner_product(const Statevector& other) const;

  /// Fidelity |<other|this>|^2.
  double fidelity(const Statevector& other) const;

  // --- Gates ---------------------------------------------------------------

  void apply(const Gate1& gate, unsigned target);

  /// Gate applied to `target`, controlled on every qubit in `controls` being 1.
  void apply_controlled(const Gate1& gate, std::span<const unsigned> controls,
                        unsigned target);

  void h(unsigned q) { apply(gates::hadamard(), q); }
  void x(unsigned q) { apply(gates::pauli_x(), q); }
  void y(unsigned q) { apply(gates::pauli_y(), q); }
  void z(unsigned q) { apply(gates::pauli_z(), q); }
  void cnot(unsigned control, unsigned target);
  void cz(unsigned control, unsigned target);
  void ccx(unsigned c1, unsigned c2, unsigned target);
  void swap_qubits(unsigned a, unsigned b);

  /// Hadamard on every qubit.
  void h_all();

  // --- Oracles / bulk operations -------------------------------------------

  /// |b> -> phase(b) * |b> for every basis state. `phase` must return a
  /// unit-modulus complex number for the result to stay normalized.
  ///
  /// The template overload binds lambdas and function objects directly, so
  /// the per-amplitude call inlines instead of going through a type-erased
  /// std::function dispatch; the std::function overload remains for callers
  /// that already hold one.
  void apply_diagonal(const std::function<Amplitude(BasisState)>& phase);
  template <typename PhaseFn>
  void apply_diagonal(PhaseFn&& phase) {
    diagonal_impl(std::forward<PhaseFn>(phase));
  }

  /// Permutation on basis states: |b> -> |pi(b)>. `pi` must be a bijection
  /// on [0, 2^n). Same overload pair as apply_diagonal: the template
  /// overload avoids per-amplitude std::function dispatch.
  void apply_permutation(const std::function<BasisState(BasisState)>& pi);
  template <typename PiFn>
  void apply_permutation(PiFn&& pi) {
    permutation_impl(std::forward<PiFn>(pi));
  }

  // --- Measurement ----------------------------------------------------------

  /// Measure all qubits; collapses to the sampled basis state.
  BasisState measure_all(util::Rng& rng);

  /// Measure a single qubit; collapses (and renormalizes) the state.
  bool measure_qubit(unsigned qubit, util::Rng& rng);

  /// Sample a basis state without collapsing.
  BasisState sample(util::Rng& rng) const;

  /// Marginal distribution over the qubits [first, first + count).
  std::vector<double> marginal(unsigned first, unsigned count) const;

 private:
  void check_qubit(unsigned q) const;

  template <typename PhaseFn>
  void diagonal_impl(PhaseFn&& phase) {
    for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
      amplitudes_[b] *= phase(static_cast<BasisState>(b));
    }
  }

  template <typename PiFn>
  void permutation_impl(PiFn&& pi) {
    // scratch_ is reused across calls (boosting loops permute repeatedly),
    // so the steady state allocates nothing.
    scratch_.assign(amplitudes_.size(), Amplitude{0, 0});
    for (std::size_t b = 0; b < amplitudes_.size(); ++b) {
      BasisState target = pi(static_cast<BasisState>(b));
      if (target >= amplitudes_.size()) {
        throw std::invalid_argument("apply_permutation: image out of range");
      }
      scratch_[target] += amplitudes_[b];
    }
    // A genuine permutation preserves the norm; verify to catch non-bijections.
    double total = 0.0;
    for (const Amplitude& a : scratch_) total += std::norm(a);
    if (std::abs(total - 1.0) > 1e-6) {
      throw std::invalid_argument("apply_permutation: map is not a bijection");
    }
    amplitudes_.swap(scratch_);
  }

  unsigned num_qubits_;
  std::vector<Amplitude> amplitudes_;
  std::vector<Amplitude> scratch_;  // apply_permutation workspace
};

/// Precomputed cumulative-probability table for repeated sampling of one
/// fixed distribution — the boosting-loop companion of Statevector::sample.
///
/// Statevector::sample is a full O(2^n) scan per draw; snapshotting the
/// cumulative probabilities once turns every further draw into an O(n)
/// binary search, and the draws are byte-identical to what the scan would
/// have returned for the same RNG stream (first index whose cumulative
/// probability exceeds the uniform draw, tail-guarded against rounding).
///
/// The table is a snapshot: mutating the state afterwards does not
/// invalidate the sampler, it just keeps sampling the old distribution.
class CumulativeSampler {
 public:
  explicit CumulativeSampler(const Statevector& state);
  /// From an explicit distribution (e.g. Statevector::marginal); weights
  /// must be non-negative and sum to ~1.
  explicit CumulativeSampler(std::span<const double> probabilities);

  std::size_t size() const { return cumulative_.size(); }

  /// One draw; O(log size). Identical to the linear scan in
  /// Statevector::sample for the same rng stream.
  BasisState sample(util::Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace qcongest::quantum
