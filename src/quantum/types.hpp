#pragma once

#include <complex>
#include <cstdint>

namespace qcongest::quantum {

using Amplitude = std::complex<double>;

/// Basis states are indexed by unsigned 64-bit integers; qubit 0 is the
/// least significant bit.
using BasisState = std::uint64_t;

inline constexpr double kAmplitudeEpsilon = 1e-12;

}  // namespace qcongest::quantum
