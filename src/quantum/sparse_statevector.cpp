#include "src/quantum/sparse_statevector.hpp"

#include <cmath>
#include <stdexcept>

namespace qcongest::quantum {

SparseStatevector::SparseStatevector(unsigned num_qubits, BasisState basis)
    : num_qubits_(num_qubits) {
  if (num_qubits == 0 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("SparseStatevector: qubit count out of range");
  }
  if (num_qubits < 64 && basis >= (BasisState{1} << num_qubits)) {
    throw std::invalid_argument("SparseStatevector: basis out of range");
  }
  amplitudes_[basis] = Amplitude{1, 0};
}

Amplitude SparseStatevector::amplitude(BasisState basis) const {
  auto it = amplitudes_.find(basis);
  return it == amplitudes_.end() ? Amplitude{0, 0} : it->second;
}

double SparseStatevector::norm() const {
  double total = 0.0;
  for (const auto& [basis, amp] : amplitudes_) total += std::norm(amp);
  return std::sqrt(total);
}

Amplitude SparseStatevector::inner_product(const SparseStatevector& other) const {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("inner_product: qubit count mismatch");
  }
  // Iterate over the smaller support.
  const auto& small = amplitudes_.size() <= other.amplitudes_.size()
                          ? amplitudes_
                          : other.amplitudes_;
  Amplitude sum{0, 0};
  for (const auto& [basis, amp] : small) {
    sum += std::conj(other.amplitude(basis)) * this->amplitude(basis);
  }
  return sum;
}

double SparseStatevector::fidelity(const SparseStatevector& other) const {
  return std::norm(inner_product(other));
}

void SparseStatevector::apply(const Gate1& gate, unsigned target) {
  check_qubit(target);
  BasisState mask = BasisState{1} << target;
  std::map<BasisState, Amplitude> next;
  for (const auto& [basis, amp] : amplitudes_) {
    unsigned bit = (basis & mask) ? 1 : 0;
    Amplitude to_zero = gate(0, bit) * amp;
    Amplitude to_one = gate(1, bit) * amp;
    if (std::abs(to_zero) > kAmplitudeEpsilon) next[basis & ~mask] += to_zero;
    if (std::abs(to_one) > kAmplitudeEpsilon) next[basis | mask] += to_one;
  }
  amplitudes_ = std::move(next);
  prune();
}

void SparseStatevector::apply_controlled(const Gate1& gate,
                                         std::span<const unsigned> controls,
                                         unsigned target) {
  check_qubit(target);
  BasisState control_mask = 0;
  for (unsigned c : controls) {
    check_qubit(c);
    if (c == target) throw std::invalid_argument("control equals target");
    control_mask |= BasisState{1} << c;
  }
  BasisState tmask = BasisState{1} << target;
  std::map<BasisState, Amplitude> next;
  for (const auto& [basis, amp] : amplitudes_) {
    if ((basis & control_mask) != control_mask) {
      next[basis] += amp;
      continue;
    }
    unsigned bit = (basis & tmask) ? 1 : 0;
    Amplitude to_zero = gate(0, bit) * amp;
    Amplitude to_one = gate(1, bit) * amp;
    if (std::abs(to_zero) > kAmplitudeEpsilon) next[basis & ~tmask] += to_zero;
    if (std::abs(to_one) > kAmplitudeEpsilon) next[basis | tmask] += to_one;
  }
  amplitudes_ = std::move(next);
  prune();
}

void SparseStatevector::cnot(unsigned control, unsigned target) {
  const unsigned controls[] = {control};
  apply_controlled(gates::pauli_x(), controls, target);
}

void SparseStatevector::apply_diagonal(
    const std::function<Amplitude(BasisState)>& phase) {
  for (auto& [basis, amp] : amplitudes_) amp *= phase(basis);
  prune();
}

void SparseStatevector::apply_permutation(
    const std::function<BasisState(BasisState)>& pi) {
  std::map<BasisState, Amplitude> next;
  for (const auto& [basis, amp] : amplitudes_) {
    BasisState image = pi(basis);
    if (num_qubits_ < 64 && image >= (BasisState{1} << num_qubits_)) {
      throw std::invalid_argument("apply_permutation: image out of range");
    }
    auto [it, inserted] = next.emplace(image, amp);
    if (!inserted) throw std::invalid_argument("apply_permutation: not injective");
  }
  amplitudes_ = std::move(next);
}

BasisState SparseStatevector::sample(util::Rng& rng) const {
  double r = rng.uniform();
  double cumulative = 0.0;
  BasisState last = 0;
  for (const auto& [basis, amp] : amplitudes_) {
    cumulative += std::norm(amp);
    last = basis;
    if (r < cumulative) return basis;
  }
  return last;
}

BasisState SparseStatevector::measure_all(util::Rng& rng) {
  BasisState outcome = sample(rng);
  amplitudes_.clear();
  amplitudes_[outcome] = Amplitude{1, 0};
  return outcome;
}

void SparseStatevector::prune() {
  for (auto it = amplitudes_.begin(); it != amplitudes_.end();) {
    if (std::abs(it->second) <= kAmplitudeEpsilon) {
      it = amplitudes_.erase(it);
    } else {
      ++it;
    }
  }
}

void SparseStatevector::check_qubit(unsigned q) const {
  if (q >= num_qubits_) throw std::invalid_argument("qubit index out of range");
}

void fan_out_register(SparseStatevector& state, unsigned src, unsigned dst,
                      unsigned width) {
  if (src == dst) throw std::invalid_argument("fan_out_register: src == dst");
  for (unsigned b = 0; b < width; ++b) state.cnot(src + b, dst + b);
}

}  // namespace qcongest::quantum
