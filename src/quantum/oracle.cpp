#include "src/quantum/oracle.hpp"

namespace qcongest::quantum {

namespace {

std::uint64_t extract(BasisState b, unsigned first, unsigned width) {
  return (b >> first) & ((std::uint64_t{1} << width) - 1);
}

}  // namespace

void apply_bit_oracle(Statevector& state, unsigned index_first, unsigned index_width,
                      unsigned target, const std::function<bool(std::uint64_t)>& f) {
  BasisState tmask = BasisState{1} << target;
  state.apply_permutation([&](BasisState b) {
    std::uint64_t i = extract(b, index_first, index_width);
    return f(i) ? (b ^ tmask) : b;
  });
}

void apply_phase_oracle(Statevector& state, unsigned index_first, unsigned index_width,
                        const std::function<bool(std::uint64_t)>& f) {
  state.apply_diagonal([&](BasisState b) {
    std::uint64_t i = extract(b, index_first, index_width);
    return f(i) ? Amplitude{-1, 0} : Amplitude{1, 0};
  });
}

void apply_value_oracle(Statevector& state, unsigned index_first, unsigned index_width,
                        unsigned value_first, unsigned value_width,
                        const std::function<std::uint64_t(std::uint64_t)>& x) {
  std::uint64_t value_mask = (std::uint64_t{1} << value_width) - 1;
  state.apply_permutation([&](BasisState b) {
    std::uint64_t i = extract(b, index_first, index_width);
    std::uint64_t xi = x(i) & value_mask;
    return b ^ (xi << value_first);
  });
}

}  // namespace qcongest::quantum
