#pragma once

#include <cstddef>

#include "src/quantum/types.hpp"

namespace qcongest::quantum::kernels {

/// Which statevector kernel implementation is driving Statevector::apply*.
///
/// Selection is resolved once per process: `QCONGEST_FORCE_SCALAR` (any
/// non-"0" value) pins the scalar oracle; otherwise the best ISA the CPU
/// reports at runtime wins (AVX2 on x86-64, NEON on aarch64). The binary
/// never requires the ISA it probes for — vector code lives behind
/// per-function target attributes, so one build runs everywhere.
enum class Backend { kScalar, kAvx2, kNeon };

/// The 2x2 unitary of a single-qubit gate, unpacked from Gate1 so the
/// kernel layer does not depend on the gate headers.
struct Gate1Coeffs {
  Amplitude g00, g01, g10, g11;
};

/// One statevector kernel backend. Both entry points walk the strided
/// pair layout of a target-qubit gate: for `base` stepping by 2*stride
/// through `dim`, the pair arrays are lo = amps + base, hi = lo + stride,
/// and each (lo[off], hi[off]) pair maps through the 2x2 unitary.
///
/// Contract shared by every backend (the scalar one is the oracle):
///  - identical pair coverage and update formula
///      lo' = g00*lo + g01*hi,  hi' = g10*lo + g11*hi
///  - `control_mask` gates a pair on (base + off) & mask == mask; the mask
///    never contains the target bit (callers validate).
/// Vector backends may take structure fast paths (diagonal / antidiagonal
/// gates skip the zero products) — amplitudes agree with the oracle to
/// floating-point rounding, which the equivalence suite pins down.
struct KernelOps {
  void (*apply_pairs)(Amplitude* amps, std::size_t dim, std::size_t stride,
                      const Gate1Coeffs& g);
  void (*apply_pairs_controlled)(Amplitude* amps, std::size_t dim,
                                 std::size_t stride, const Gate1Coeffs& g,
                                 BasisState control_mask);
};

/// The reference implementation — byte-for-byte the historical scalar
/// loops. Always available; the equivalence tests diff every other
/// backend against it.
const KernelOps& scalar_ops();

/// The backend selected for this process (env override, then CPU probe).
const KernelOps& active_ops();
Backend active_backend();
const char* backend_name(Backend b);

/// Backend providers: null when this build target lacks the ISA entirely
/// (e.g. neon on x86-64) or the running CPU does not report it — each
/// provider performs its own runtime probe, so a non-null result is always
/// safe to call. The equivalence tests exercise every non-null provider.
const KernelOps* avx2_ops_or_null();
const KernelOps* neon_ops_or_null();

}  // namespace qcongest::quantum::kernels
