#include "src/quantum/kernels.hpp"

#include <cstdlib>
#include <cstring>

namespace qcongest::quantum::kernels {
namespace {

// --- Scalar oracle ----------------------------------------------------------
//
// These are the historical Statevector::apply loops verbatim. Strided pair
// iteration: the 0-side indices of the (b, b | 1<<target) pairs are exactly
// the runs [base, base + stride) for base stepping by 2 * stride, so the
// inner loop is branch-free — no per-index bit test — and walks two
// contiguous ranges the hardware prefetcher likes. No structure detection
// here on purpose: the oracle stays the plain formula every backend is
// diffed against.

void scalar_pairs(Amplitude* amps, std::size_t dim, std::size_t stride,
                  const Gate1Coeffs& g) {
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    Amplitude* lo = amps + base;
    Amplitude* hi = lo + stride;
    for (std::size_t off = 0; off < stride; ++off) {
      const Amplitude a0 = lo[off];
      const Amplitude a1 = hi[off];
      lo[off] = g.g00 * a0 + g.g01 * a1;
      hi[off] = g.g10 * a0 + g.g11 * a1;
    }
  }
}

void scalar_pairs_controlled(Amplitude* amps, std::size_t dim,
                             std::size_t stride, const Gate1Coeffs& g,
                             BasisState control_mask) {
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    Amplitude* lo = amps + base;
    Amplitude* hi = lo + stride;
    for (std::size_t off = 0; off < stride; ++off) {
      if (((base + off) & control_mask) != control_mask) continue;
      const Amplitude a0 = lo[off];
      const Amplitude a1 = hi[off];
      lo[off] = g.g00 * a0 + g.g01 * a1;
      hi[off] = g.g10 * a0 + g.g11 * a1;
    }
  }
}

constexpr KernelOps kScalarOps{scalar_pairs, scalar_pairs_controlled};

Backend detect_backend() {
  const char* force = std::getenv("QCONGEST_FORCE_SCALAR");
  if (force != nullptr && std::strcmp(force, "0") != 0) return Backend::kScalar;
  if (avx2_ops_or_null() != nullptr) return Backend::kAvx2;
  if (neon_ops_or_null() != nullptr) return Backend::kNeon;
  return Backend::kScalar;
}

const KernelOps* ops_for(Backend b) {
  switch (b) {
    case Backend::kAvx2:
      return avx2_ops_or_null();
    case Backend::kNeon:
      return neon_ops_or_null();
    case Backend::kScalar:
      break;
  }
  return &kScalarOps;
}

}  // namespace

const KernelOps& scalar_ops() { return kScalarOps; }

Backend active_backend() {
  static const Backend backend = detect_backend();
  return backend;
}

const KernelOps& active_ops() {
  static const KernelOps* ops = ops_for(active_backend());
  return *ops;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

}  // namespace qcongest::quantum::kernels
