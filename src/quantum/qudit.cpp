#include "src/quantum/qudit.hpp"

#include <cmath>
#include <stdexcept>

namespace qcongest::quantum {

QuditState::QuditState(std::size_t dimension) {
  if (dimension == 0) throw std::invalid_argument("QuditState: dimension 0");
  amps_.assign(dimension, Amplitude{0, 0});
  amps_[0] = Amplitude{1, 0};
}

QuditState QuditState::uniform(std::size_t dimension) {
  QuditState s(dimension);
  double a = 1.0 / std::sqrt(static_cast<double>(dimension));
  s.amps_.assign(dimension, Amplitude{a, 0});
  return s;
}

double QuditState::norm() const {
  double total = 0.0;
  for (const Amplitude& a : amps_) total += std::norm(a);
  return std::sqrt(total);
}

void QuditState::apply_phase_oracle(const std::function<bool(std::size_t)>& f) {
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (f(i)) amps_[i] = -amps_[i];
  }
}

void QuditState::apply_diagonal(const std::function<Amplitude(std::size_t)>& phase) {
  for (std::size_t i = 0; i < amps_.size(); ++i) amps_[i] *= phase(i);
}

void QuditState::reflect_about_uniform() {
  Amplitude mean{0, 0};
  for (const Amplitude& a : amps_) mean += a;
  mean /= static_cast<double>(amps_.size());
  for (Amplitude& a : amps_) a = 2.0 * mean - a;
}

Amplitude QuditState::overlap_with_uniform() const {
  Amplitude sum{0, 0};
  for (const Amplitude& a : amps_) sum += a;
  return sum / std::sqrt(static_cast<double>(amps_.size()));
}

std::size_t QuditState::sample(util::Rng& rng) const {
  double r = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    cumulative += std::norm(amps_[i]);
    if (r < cumulative) return i;
  }
  return amps_.size() - 1;
}

double QuditState::probability(std::size_t i) const { return std::norm(amps_.at(i)); }

}  // namespace qcongest::quantum
