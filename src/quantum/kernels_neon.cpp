#include "src/quantum/kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace qcongest::quantum::kernels {
namespace {

// A float64x2_t holds one complex double [re im]. cmul multiplies it by the
// complex scalar g pre-broadcast as gr = [g.re]*2 and gi = [g.im]*2:
//   t1   = (re*gr, im*gr)
//   t2   = (im*gi, re*gi)
//   out  = t1 + t2 * (-1, +1) = (re*gr - im*gi, im*gr + re*gi)
// The (-1, +1) multiply is exact, so each component sees one rounded
// product and one rounded add — the same rounding schedule as the scalar
// oracle's std::complex operator* (no fused multiply-add).
inline float64x2_t cmul(float64x2_t v, float64x2_t gr, float64x2_t gi,
                        float64x2_t sign) {
  const float64x2_t t1 = vmulq_f64(v, gr);
  const float64x2_t swapped = vextq_f64(v, v, 1);
  const float64x2_t t2 = vmulq_f64(swapped, gi);
  return vaddq_f64(t1, vmulq_f64(t2, sign));
}

void neon_pairs(Amplitude* amps, std::size_t dim, std::size_t stride,
                const Gate1Coeffs& g) {
  const float64x2_t sign = {-1.0, 1.0};
  const float64x2_t g00r = vdupq_n_f64(g.g00.real()), g00i = vdupq_n_f64(g.g00.imag());
  const float64x2_t g01r = vdupq_n_f64(g.g01.real()), g01i = vdupq_n_f64(g.g01.imag());
  const float64x2_t g10r = vdupq_n_f64(g.g10.real()), g10i = vdupq_n_f64(g.g10.imag());
  const float64x2_t g11r = vdupq_n_f64(g.g11.real()), g11i = vdupq_n_f64(g.g11.imag());
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    double* lo = reinterpret_cast<double*>(amps + base);
    double* hi = reinterpret_cast<double*>(amps + base + stride);
    for (std::size_t off = 0; off < 2 * stride; off += 2) {
      const float64x2_t a0 = vld1q_f64(lo + off);
      const float64x2_t a1 = vld1q_f64(hi + off);
      vst1q_f64(lo + off, vaddq_f64(cmul(a0, g00r, g00i, sign),
                                    cmul(a1, g01r, g01i, sign)));
      vst1q_f64(hi + off, vaddq_f64(cmul(a0, g10r, g10i, sign),
                                    cmul(a1, g11r, g11i, sign)));
    }
  }
}

void neon_pairs_controlled(Amplitude* amps, std::size_t dim, std::size_t stride,
                           const Gate1Coeffs& g, BasisState control_mask) {
  const float64x2_t sign = {-1.0, 1.0};
  const float64x2_t g00r = vdupq_n_f64(g.g00.real()), g00i = vdupq_n_f64(g.g00.imag());
  const float64x2_t g01r = vdupq_n_f64(g.g01.real()), g01i = vdupq_n_f64(g.g01.imag());
  const float64x2_t g10r = vdupq_n_f64(g.g10.real()), g10i = vdupq_n_f64(g.g10.imag());
  const float64x2_t g11r = vdupq_n_f64(g.g11.real()), g11i = vdupq_n_f64(g.g11.imag());
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    Amplitude* lo = amps + base;
    Amplitude* hi = lo + stride;
    for (std::size_t off = 0; off < stride; ++off) {
      if (((base + off) & control_mask) != control_mask) continue;
      const float64x2_t a0 = vld1q_f64(reinterpret_cast<double*>(lo + off));
      const float64x2_t a1 = vld1q_f64(reinterpret_cast<double*>(hi + off));
      vst1q_f64(reinterpret_cast<double*>(lo + off),
                vaddq_f64(cmul(a0, g00r, g00i, sign), cmul(a1, g01r, g01i, sign)));
      vst1q_f64(reinterpret_cast<double*>(hi + off),
                vaddq_f64(cmul(a0, g10r, g10i, sign), cmul(a1, g11r, g11i, sign)));
    }
  }
}

constexpr KernelOps kNeonOps{neon_pairs, neon_pairs_controlled};

}  // namespace

// NEON is architecturally guaranteed on aarch64 — no runtime probe needed.
const KernelOps* neon_ops_or_null() { return &kNeonOps; }

}  // namespace qcongest::quantum::kernels

#else  // not aarch64

namespace qcongest::quantum::kernels {
const KernelOps* neon_ops_or_null() { return nullptr; }
}  // namespace qcongest::quantum::kernels

#endif
