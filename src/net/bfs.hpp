#pragma once

#include <vector>

#include "src/net/engine.hpp"

namespace qcongest::net {

/// Result of leader election: every node agrees on the max-id node.
struct LeaderElectionResult {
  NodeId leader = 0;
  RunResult cost;
};

/// Flood-max leader election: every node floods the largest identifier it
/// has seen; after O(D) rounds all agree on the maximum. (The paper assumes
/// a designated leader or picks the max id, noting O(D) rounds suffice.)
LeaderElectionResult elect_leader(Engine& engine);

/// A rooted BFS spanning tree, the communication backbone of Lemma 7 and
/// Theorem 8.
struct BfsTree {
  NodeId root = 0;
  std::vector<NodeId> parent;               // parent[root] == root
  std::vector<std::vector<NodeId>> children;
  std::vector<std::size_t> depth;
  std::size_t height = 0;                   // max depth
  RunResult cost;
};

/// Builds a BFS tree from `root` by the folklore flooding algorithm
/// (footnote 2 of the paper): O(D) rounds; children register with their
/// parent so the tree is usable for pipelined down- and up-casts.
BfsTree build_bfs_tree(Engine& engine, NodeId root);

}  // namespace qcongest::net
