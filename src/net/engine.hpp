#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "src/net/graph.hpp"
#include "src/net/message.hpp"
#include "src/util/rng.hpp"

namespace qcongest::net {

class Engine;

/// Per-round, per-node view of the network. Programs may only touch their
/// own id, their neighbor list, and their inbox — the CONGEST locality
/// constraint.
class Context {
 public:
  NodeId id() const { return id_; }
  std::size_t round() const { return round_; }
  std::size_t num_nodes() const;  // n is global knowledge in CONGEST
  /// Per-edge per-direction words per round (the CONGEST(B) parameter).
  std::size_t bandwidth() const;
  const std::vector<NodeId>& neighbors() const;

  /// Queue a word for delivery to `to` (must be a neighbor) at the start of
  /// the next round. Throws if the edge's bandwidth for this round is
  /// exhausted — protocols are responsible for their own congestion control.
  void send(NodeId to, Word word);

  /// Mark this node finished. A halted node is no longer scheduled; the run
  /// ends when every node has halted and no messages are in flight.
  void halt() { halted_ = true; }

  /// Node-local randomness (forked per node from the engine seed).
  util::Rng& rng() { return *rng_; }

 private:
  friend class Engine;
  Engine* engine_ = nullptr;
  NodeId id_ = 0;
  std::size_t round_ = 0;
  util::Rng* rng_ = nullptr;
  bool halted_ = false;
};

/// A node's protocol logic. One instance per node; the engine invokes
/// on_round once per round with all messages delivered this round.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  virtual void on_round(Context& ctx, const std::vector<Message>& inbox) = 0;
};

/// Statistics of one protocol run.
struct RunResult {
  std::size_t rounds = 0;
  bool completed = false;  // all nodes halted before the round limit
  std::size_t messages = 0;
  std::size_t classical_words = 0;
  std::size_t quantum_words = 0;
  /// Peak words sent over one directed edge in one round; always <= the
  /// engine's bandwidth (the CONGEST constraint), recorded for
  /// observability and utilization analysis.
  std::size_t max_edge_words = 0;
  /// Words that crossed the tracked cut (Engine::track_cut), both
  /// directions. Zero when no cut is tracked. This is the two-party
  /// communication of the reduction arguments (Lemmas 11/13/15, Thm 18):
  /// a CONGEST protocol on a gadget graph induces a two-party protocol
  /// whose communication is exactly the words crossing the cut.
  std::size_t cut_words = 0;

  /// Accumulate a subsequent phase's cost (protocols compose sequentially).
  RunResult& operator+=(const RunResult& other) {
    rounds += other.rounds;
    completed = completed && other.completed;
    messages += other.messages;
    classical_words += other.classical_words;
    quantum_words += other.quantum_words;
    max_edge_words = std::max(max_edge_words, other.max_edge_words);
    cut_words += other.cut_words;
    return *this;
  }
};

/// Synchronous CONGEST round scheduler with per-edge bandwidth enforcement.
class Engine {
 public:
  explicit Engine(const Graph& graph, std::size_t bandwidth_words = 1,
                  std::uint64_t seed = 1);

  const Graph& graph() const { return *graph_; }
  std::size_t bandwidth() const { return bandwidth_; }

  /// Run the given per-node programs (programs.size() == num_nodes) until
  /// all halt or `max_rounds` is reached. Message delivery: words sent in
  /// round r arrive in round r + 1.
  RunResult run(std::span<const std::unique_ptr<NodeProgram>> programs,
                std::size_t max_rounds);

  /// Track the words crossing the node bipartition (side[v] false/true) in
  /// every subsequent run — the two-party communication of the reduction
  /// arguments. Pass an empty vector to stop tracking.
  void track_cut(std::vector<bool> side);

  /// Record every delivery of subsequent runs into `trace` (nullptr stops).
  /// The trace is never cleared by the engine; phases accumulate.
  void set_trace(class Trace* trace) { trace_ = trace; }

 private:
  friend class Context;

  void deliver(NodeId from, NodeId to, Word word);

  const Graph* graph_;
  std::size_t bandwidth_;
  util::Rng seed_rng_;
  std::vector<util::Rng> node_rngs_;

  // Per-run state.
  std::vector<std::vector<Message>> next_inbox_;
  std::vector<std::size_t> sent_this_round_;  // indexed by directed edge slot
  std::vector<std::size_t> edge_slot_offset_;
  std::vector<bool> cut_side_;  // empty when no cut is tracked
  class Trace* trace_ = nullptr;
  RunResult stats_;
  NodeId current_sender_ = 0;
  std::size_t current_pass_ = 0;

  std::size_t edge_slot(NodeId from, NodeId to) const;
};

}  // namespace qcongest::net
