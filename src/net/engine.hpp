#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/net/fault.hpp"
#include "src/net/graph.hpp"
#include "src/net/message.hpp"
#include "src/recover/checkpoint.hpp"
#include "src/util/arena.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace qcongest::net {

class Engine;
struct RunResult;

/// What the fault lottery decided for one admitted word.
enum class DeliveryFate {
  /// Placed in the receiver's next-round inbox.
  kDelivered,
  /// Lost to the per-link drop lottery.
  kDroppedLottery,
  /// Lost because the receiver is inside a crash window at arrival time.
  kDroppedCrashed,
};

/// Passive tap on the engine's scheduling and delivery decisions, the hook
/// the model-conformance verifier (src/check/verifier.hpp) hangs off.
/// Observers must not mutate the engine or send messages; they see every
/// admitted word, its fate, every retransmission note, and round/run
/// boundaries — enough to re-derive all of RunResult independently and
/// cross-check the engine's own accounting.
///
/// Observer callbacks always fire on the engine's own thread in canonical
/// delivery order — ascending (sender, send order) within a round — even
/// when the round itself was executed by parallel shards (see
/// Engine::set_threads), so an observer never needs locks.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// A fresh run is starting (per-run observer state should reset).
  virtual void on_run_begin(const Engine& engine) { (void)engine; }
  /// A word passed bandwidth admission on (from, to) in `round`.
  /// `edge_words` is the per-round count on that directed edge after this
  /// send (so 1 <= edge_words <= bandwidth when the engine is honest).
  virtual void on_send(std::size_t round, NodeId from, NodeId to, const Word& word,
                       std::size_t edge_words) {
    (void)round, (void)from, (void)to, (void)word, (void)edge_words;
  }
  /// The fate of the word just admitted by on_send. `corrupted` /
  /// `duplicated` only apply to delivered words.
  virtual void on_delivery(std::size_t round, NodeId from, NodeId to,
                           DeliveryFate fate, bool corrupted, bool duplicated) {
    (void)round, (void)from, (void)to, (void)fate, (void)corrupted, (void)duplicated;
  }
  /// The reliable transport re-sent a frame during `round`.
  virtual void on_retransmission(std::size_t round) { (void)round; }
  /// All programs have taken their turn for `round`.
  virtual void on_round_end(std::size_t round) { (void)round; }
  /// The run returned normally with the given final stats. Not called when
  /// run() exits by exception — the caller that catches it decides what to
  /// do with the partial observations.
  virtual void on_run_end(const RunResult& stats) { (void)stats; }
};

/// Per-round, per-node view of the network. Programs may only touch their
/// own id, their neighbor list, and their inbox — the CONGEST locality
/// constraint.
///
/// The mutating entry points (send / halt / keep_alive) are virtual so a
/// transport adapter (see src/net/reliable.hpp) can interpose between a
/// NodeProgram and the engine without the program being rewritten.
class Context {
 public:
  virtual ~Context() = default;

  NodeId id() const { return id_; }
  std::size_t round() const { return round_; }
  std::size_t num_nodes() const;  // n is global knowledge in CONGEST
  /// Per-edge per-direction words per round (the CONGEST(B) parameter).
  std::size_t bandwidth() const;
  const std::vector<NodeId>& neighbors() const;

  /// Queue a word for delivery to `to` (must be a neighbor) at the start of
  /// the next round. Throws if the edge's bandwidth for this round is
  /// exhausted — protocols are responsible for their own congestion control.
  virtual void send(NodeId to, Word word);

  /// Mark this node finished. A halted node is no longer scheduled; the run
  /// ends when every node has halted and no messages are in flight.
  virtual void halt() { halted_ = true; }

  /// Declare that this node intends to act in a *later* round even though it
  /// neither sent nor received anything this round (e.g. it is waiting on a
  /// retransmission timer). The engine's quiescence rule — terminate after
  /// any globally silent pass — would otherwise end the run underneath it.
  /// Call this every round the intent holds; it is cleared each pass.
  virtual void keep_alive() { keep_alive_ = true; }

  /// Node-local randomness (forked per node from the engine seed).
  virtual util::Rng& rng() { return *rng_; }

 protected:
  // Adapters populate these directly (they have no Engine of their own).
  friend class Engine;
  Engine* engine_ = nullptr;
  NodeId id_ = 0;
  std::size_t round_ = 0;
  util::Rng* rng_ = nullptr;
  bool halted_ = false;
  bool keep_alive_ = false;
};

/// A node's protocol logic. One instance per node; the engine invokes
/// on_round once per round with all messages delivered this round.
///
/// Under Engine::set_threads(t > 1) different nodes' on_round calls for the
/// same round may execute concurrently. A program may freely touch its own
/// state, its Context, and per-node slots of shared result arrays (distinct
/// elements of a std::vector<T> for T other than bool are distinct memory
/// locations); it must not mutate state shared with other nodes' programs
/// mid-round — which a correct CONGEST protocol has no business doing
/// anyway, since nodes only communicate through messages.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  /// The inbox is a view into the engine's per-round delivery arena, valid
  /// only for the duration of this call — programs that need messages later
  /// must copy them (the words, not the span).
  virtual void on_round(Context& ctx, std::span<const Message> inbox) = 0;

  // --- Durable-state interface (crash-with-amnesia recovery) -------------
  // A program opts in to recoverability by overriding snapshot/restore (and
  // bumping state_version when the word format changes). The contract: the
  // serialized words must capture the program's entire evolving state — so
  // that restore(snapshot()) followed by a replay of the same inboxes
  // reproduces the same behavior — and a recoverable program must not draw
  // from ctx.rng() (replayed rounds would re-draw from an advanced stream).
  // Members reconstructed by the run's program factory (config, pointers to
  // shared immutable inputs) are exempt; the qlint `unsnapshotted-state`
  // rule checks the rest.

  /// Append the program's durable state to `out` as words. Return false if
  /// the program does not support snapshots (the default).
  virtual bool snapshot(std::vector<std::int64_t>& out) const {
    (void)out;
    return false;
  }
  /// Overwrite the program's state from words produced by snapshot() under
  /// the given state-format version. Return false to reject (unknown
  /// version, malformed words) — the node then recovers from the start of
  /// the phase, or dies if it cannot.
  virtual bool restore(std::uint32_t version, std::span<const std::int64_t> words) {
    (void)version, (void)words;
    return false;
  }
  /// Version tag of the snapshot word format.
  virtual std::uint32_t state_version() const { return 0; }

  /// Hook invoked on the outermost program when its node restarts from an
  /// amnesia crash (engine thread, ascending node order, before the restart
  /// round executes). Return true when the program handled the wipe itself —
  /// the reliable-transport adapter does, reconstructing its inner program
  /// and orchestrating neighbor-assisted catch-up (src/net/reliable.cpp).
  /// The default returns false, letting the engine apply its direct-transport
  /// recovery path (factory reconstruction + checkpoint restore) or declare
  /// the node dead.
  virtual bool on_amnesia_restart(std::size_t restart_round) {
    (void)restart_round;
    return false;
  }
};

/// Statistics of one protocol run.
struct RunResult {
  std::size_t rounds = 0;
  /// All nodes halted (or quiesced) before the round limit. Defaults to
  /// true so that a fresh RunResult{} is the identity of operator+= — a
  /// phase accumulator that never runs a phase is vacuously complete, and
  /// one incomplete phase poisons the whole sum.
  bool completed = true;
  std::size_t messages = 0;
  std::size_t classical_words = 0;
  std::size_t quantum_words = 0;
  /// Peak words sent over one directed edge in one round; always <= the
  /// engine's bandwidth (the CONGEST constraint), recorded for
  /// observability and utilization analysis.
  std::size_t max_edge_words = 0;
  /// Words that crossed the tracked cut (Engine::track_cut), both
  /// directions. Zero when no cut is tracked. This is the two-party
  /// communication of the reduction arguments (Lemmas 11/13/15, Thm 18):
  /// a CONGEST protocol on a gadget graph induces a two-party protocol
  /// whose communication is exactly the words crossing the cut.
  std::size_t cut_words = 0;

  // --- Fault-injection counters (zero on a perfect network) --------------
  /// Words lost in transit: the drop lottery, plus words that arrived at a
  /// crashed node.
  std::size_t dropped_words = 0;
  /// Words whose payload bits were flipped in transit (still delivered).
  std::size_t corrupted_words = 0;
  /// Extra copies injected by the duplication lottery (not charged against
  /// the sender's bandwidth — the network, not the node, duplicates).
  std::size_t duplicated_words = 0;
  /// Frames re-sent by the reliable link layer (reported via
  /// Engine::note_retransmission by the transport).
  std::size_t retransmissions = 0;
  /// Crash events that actually fired during the run (a node with two
  /// disjoint outage windows counts twice).
  std::size_t crashed_nodes = 0;

  // --- Recovery counters (the "recovery tax", zero without amnesia) ------
  /// Physical state-transfer words spent on neighbor-assisted catch-up
  /// (requests, headers, replayed data, including their retransmissions).
  /// They share the CONGEST(B) budget with protocol traffic.
  std::size_t recovery_words = 0;
  /// Rounds in which any recovery activity happened (a node was catching up
  /// or state-transfer words moved).
  std::size_t recovery_rounds = 0;

  /// Accumulate a subsequent phase's cost (protocols compose sequentially).
  /// RunResult{} is the identity: completed starts true, everything else 0.
  RunResult& operator+=(const RunResult& other) {
    rounds += other.rounds;
    completed = completed && other.completed;
    messages += other.messages;
    classical_words += other.classical_words;
    quantum_words += other.quantum_words;
    max_edge_words = std::max(max_edge_words, other.max_edge_words);
    cut_words += other.cut_words;
    dropped_words += other.dropped_words;
    corrupted_words += other.corrupted_words;
    duplicated_words += other.duplicated_words;
    retransmissions += other.retransmissions;
    crashed_nodes += other.crashed_nodes;
    recovery_words += other.recovery_words;
    recovery_rounds += other.recovery_rounds;
    return *this;
  }

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

/// How Engine::run moves words between programs.
enum class Transport {
  /// Words sent in round r arrive in round r + 1, subject to the fault plan.
  kDirect,
  /// Every program is wrapped in the ack/retransmit sliding-window link
  /// layer (src/net/reliable.hpp): programs see perfect synchronous rounds
  /// even on a lossy network, at a measured round/word overhead.
  kReliable,
};

/// Tuning of the reliable link transport (Transport::kReliable).
struct ReliableParams {
  /// Max unacknowledged frames per directed link before new frames queue.
  std::size_t window = 16;
  /// Initial retransmission timeout in physical rounds.
  std::size_t rto_rounds = 8;
  /// Exponential-backoff cap for the timeout.
  std::size_t rto_cap = 128;
  /// Physical-round budget per virtual round: run(programs, R) may spend up
  /// to R * round_stretch + round_slack physical rounds before giving up.
  std::size_t round_stretch = 24;
  std::size_t round_slack = 256;
  /// Salt of the per-word checksums.
  std::uint64_t checksum_salt = 0x9e3779b97f4a7c15ULL;
};

/// Synchronous CONGEST round scheduler with per-edge bandwidth enforcement,
/// deterministic fault injection, an optional reliable link transport, and
/// a deterministic sharded parallel execution mode (the "ParallelEngine"
/// mode, see set_threads).
class Engine {
 public:
  explicit Engine(const Graph& graph, std::size_t bandwidth_words = 1,
                  std::uint64_t seed = 1);

  const Graph& graph() const { return *graph_; }
  std::size_t bandwidth() const { return bandwidth_; }

  /// Run the given per-node programs (programs.size() == num_nodes) until
  /// all halt or `max_rounds` is reached. Message delivery: words sent in
  /// round r arrive in round r + 1.
  RunResult run(std::span<const std::unique_ptr<NodeProgram>> programs,
                std::size_t max_rounds);

  /// Track the words crossing the node bipartition (side[v] false/true) in
  /// every subsequent run — the two-party communication of the reduction
  /// arguments. Pass an empty vector to stop tracking.
  void track_cut(std::vector<bool> side);

  /// Record every delivery of subsequent runs into `trace` (nullptr stops).
  /// The trace is never cleared by the engine; phases accumulate.
  void set_trace(class Trace* trace) { trace_ = trace; }

  /// Install a deterministic fault schedule consulted on every delivery of
  /// every subsequent run. The plan is validated against the graph. An
  /// inactive plan (all-zero rates, no crashes) is equivalent to
  /// clear_fault_plan(): the delivery fast path is taken and runs are
  /// byte-identical to a fault-free engine.
  ///
  /// The fault lottery draws from an independent RNG stream *per directed
  /// edge* (forked deterministically from the plan seed), so an edge's
  /// draws depend only on that edge's own traffic order — never on how
  /// sends across different edges interleave. This is what keeps faulty
  /// runs byte-identical between the serial and sharded-parallel paths.
  void set_fault_plan(FaultPlan plan);
  void clear_fault_plan();
  bool fault_plan_active() const { return fault_active_; }

  /// Select the transport for subsequent runs (default kDirect).
  void set_transport(Transport transport, ReliableParams params = {});
  Transport transport() const { return transport_; }
  const ReliableParams& reliable_params() const { return reliable_params_; }

  /// Deterministic sharded round execution — the ParallelEngine mode.
  /// With threads > 1, each pass partitions the runnable nodes into
  /// contiguous shards executed concurrently on an internal worker pool;
  /// sends are admitted (bandwidth-checked) in the worker and buffered in
  /// a per-sender outbox, then merged on the engine thread in ascending
  /// (sender, send-order) — which is exactly the serial engine's delivery
  /// order, so traces, observer callbacks, fault lotteries, and every
  /// RunResult counter are byte-identical to threads == 1, for any thread
  /// count.
  ///
  /// threads == 0 or 1 selects the serial path. The knob is a no-op (runs
  /// stay serial) under Transport::kReliable, whose link adapters mutate
  /// shared engine state mid-round; see DESIGN.md "Execution model".
  void set_threads(std::size_t threads);
  std::size_t threads() const { return threads_ == 0 ? 1 : threads_; }

  /// Stats of the run in progress (or the last run) — valid even when run()
  /// exits by exception, so callers can charge aborted phases honestly.
  const RunResult& last_stats() const { return stats_; }

  /// Called by the reliable transport each time it re-sends a frame.
  void note_retransmission() {
    ++stats_.retransmissions;
    if (observer_ != nullptr) observer_->on_retransmission(current_pass_);
  }

  // --- Crash-with-amnesia recovery (src/recover, DESIGN.md §11) ----------

  /// Configure recovery for subsequent runs. When enabled, nodes hit by an
  /// amnesia crash (CrashEvent::amnesia) reconstruct their program from the
  /// run's program factory, restore their latest checkpoint from the
  /// engine-owned store, and catch up; when disabled, an amnesia restart
  /// leaves the node effectively crash-stopped.
  void set_recovery(recover::RecoveryPolicy policy) { recovery_ = policy; }
  const recover::RecoveryPolicy& recovery() const { return recovery_; }

  /// The per-node "stable storage" checkpoints survive amnesia in. Reset at
  /// the start of every run (each framework phase recovers within itself).
  recover::CheckpointStore& checkpoint_store() { return checkpoint_store_; }

  /// Reconstructs a node's program from scratch — the recovery analogue of
  /// the construction the protocol function itself performed. Installed by
  /// each protocol-library phase for the duration of its run (it captures
  /// the phase's locals) and cleared when run() returns, so it never
  /// dangles.
  using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(NodeId)>;
  void set_program_factory(ProgramFactory factory) {
    program_factory_ = std::move(factory);
  }
  const ProgramFactory& program_factory() const { return program_factory_; }

  /// Called by the transport for every physical state-transfer word it puts
  /// on the wire (recovery traffic shares the CONGEST(B) budget).
  void note_recovery_words(std::size_t words) {
    stats_.recovery_words += words;
    recovery_activity_ = true;
  }
  /// Flag the current round as spent (in part) on recovery; rounds with the
  /// flag raised are tallied into RunResult::recovery_rounds at pass end.
  void note_recovery_activity() { recovery_activity_ = true; }

  /// Attach a passive observer notified of every admitted send, delivery
  /// fate, retransmission, and round/run boundary (nullptr detaches). The
  /// observer must outlive every subsequent run. One observer per engine;
  /// src/check/Verifier is the intended client.
  void set_observer(EngineObserver* observer) { observer_ = observer; }
  EngineObserver* observer() const { return observer_; }

 private:
  friend class Context;

  /// A send admitted by a parallel shard, awaiting the canonical-order
  /// merge on the engine thread. `edge_words` is the per-round count on the
  /// directed edge right after admission (what on_send reports).
  struct PendingSend {
    NodeId to = 0;
    Word word{};
    std::size_t slot = 0;
    std::size_t edge_words = 0;
  };

  /// Node v's inbox for the pass being executed: a contiguous span of the
  /// delivery arena (see scatter_inboxes).
  std::span<const Message> inbox_span(NodeId v) const {
    // Untouched receivers keep a stale offset (scatter bookkeeping is
    // scoped to touched nodes); never form a pointer from one.
    const std::size_t len = inbox_len_[v];
    if (len == 0) return {};
    return {inbox_msgs_ + inbox_offset_[v], len};
  }

  /// Append one delivery to the fill buffers (receiver-tagged, canonical
  /// send order). The hot path is two stores and a bump.
  void enqueue_delivery(NodeId to, const Message& m) {
    if (fill_count_ == fill_cap_) grow_fill();
    fill_to_[fill_count_] = to;
    fill_msgs_[fill_count_] = m;
    ++fill_count_;
  }
  void grow_fill();

  /// Start-of-pass delivery: stable counting scatter of the fill buffers
  /// into per-receiver contiguous spans of the delivery arena, then recycle
  /// the fill arena for the next pass. Replaces the old
  /// vector-of-vectors inbox swap-and-clear.
  void scatter_inboxes();
  /// Reset both message arenas to the empty state (run start).
  void reset_delivery_buffers();

  RunResult run_direct(std::span<const std::unique_ptr<NodeProgram>> programs,
                       std::size_t max_rounds);
  /// Amnesia handling for node v restarting at `round`: offer the wipe to
  /// the program (reliable adapter recovers itself); otherwise apply the
  /// engine's direct-transport path — transplant factory-fresh state into
  /// the program object and restore the latest checkpoint. Marks the node
  /// amnesia-dead when neither succeeds. Engine thread only.
  void handle_amnesia_restart(NodeProgram& program, NodeId v, std::size_t round);
  /// Engine-driven checkpointing (direct transport; the reliable adapter
  /// checkpoints at virtual-round boundaries itself).
  void write_checkpoints(std::span<const std::unique_ptr<NodeProgram>> programs,
                         std::size_t rounds_done);
  void run_pass_serial(std::span<const std::unique_ptr<NodeProgram>> programs,
                       std::size_t round, bool crash_active);
  void run_pass_parallel(std::span<const std::unique_ptr<NodeProgram>> programs,
                         std::size_t round, bool crash_active);
  void deliver(NodeId from, NodeId to, Word word);
  /// Bandwidth admission: validates the edge and charges one word against
  /// its per-round budget. Returns the slot; `sent_this_round_[slot]` is
  /// the count including this word. Safe to call from the sender's shard —
  /// a directed edge's budget is only ever touched by its own sender.
  std::size_t admit(NodeId from, NodeId to);
  /// Everything after admission: stats, cut tracking, trace, observer,
  /// fault lottery, and the inbox push. Engine thread only.
  void commit(NodeId from, NodeId to, const Word& word, std::size_t slot,
              std::size_t edge_words);
  void corrupt_payload(Word& word, std::uint64_t raw);
  /// True when `node` is inside a crash window at round `round`.
  /// O(log events-on-node) via the per-node sorted crash schedule.
  bool crashed_at(NodeId node, std::size_t round) const;
  /// True when some node has a restart scheduled at or after `round` whose
  /// outage has already begun (the run must idle until it wakes).
  /// O(log restarts) via the sorted interval index built by set_fault_plan.
  bool restart_pending(std::size_t round) const;

  std::size_t edge_slot(NodeId from, NodeId to) const;

  const Graph* graph_;
  std::size_t bandwidth_;
  util::Rng seed_rng_;
  std::vector<util::Rng> node_rngs_;

  // Fault state (compiled from the plan).
  FaultPlan fault_plan_;
  bool fault_active_ = false;
  std::vector<FaultRates> edge_rates_;  // per directed edge slot
  std::vector<std::vector<CrashEvent>> crash_schedule_;  // per node, sorted
  std::vector<NodeId> crash_nodes_;  // nodes with at least one crash event
  /// Finite-restart windows sorted by crash_round with a running max of
  /// restart_round — the O(log) index behind restart_pending.
  std::vector<std::pair<std::size_t, std::size_t>> restart_windows_;
  std::vector<std::size_t> restart_prefix_max_;
  /// Rates compiled to fixed-point lottery thresholds (set_fault_plan).
  struct EdgeThresholds {
    std::uint64_t drop, corrupt, duplicate;
  };
  std::vector<EdgeThresholds> edge_thresholds_;  // per directed edge slot
  FaultLottery fault_lottery_;  // batched per-edge raw draws

  Transport transport_ = Transport::kDirect;
  ReliableParams reliable_params_;

  // Crash-with-amnesia recovery.
  recover::RecoveryPolicy recovery_;
  recover::CheckpointStore checkpoint_store_;
  ProgramFactory program_factory_;
  /// Per node: sorted restart rounds of its amnesia crash windows (finite
  /// restarts only), compiled by set_fault_plan.
  std::vector<std::vector<std::size_t>> amnesia_restarts_;
  /// Nodes whose amnesia restart failed (no recovery path): treated as
  /// crashed for the rest of the run.
  std::vector<unsigned char> amnesia_dead_;
  /// Per node: index of the first not-yet-applied entry of amnesia_restarts_
  /// this run (adjacent windows merge into one observed outage, so a single
  /// restart can consume several wipes).
  std::vector<std::size_t> amnesia_cursor_;
  bool recovery_activity_ = false;  // current pass touched recovery

  // Parallel execution (the ParallelEngine mode).
  std::size_t threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;

  // Per-run state. All buffers persist across passes and runs so the hot
  // loop never reallocates in steady state.
  //
  // Message delivery is arena-based (DESIGN.md §13): sends of pass r are
  // appended receiver-tagged to the flat fill buffers (fill arena) in
  // canonical (sender, send-order); at the start of pass r+1 a stable
  // counting scatter groups them by receiver into the delivery arena,
  // giving every node a contiguous inbox span. Both arenas are recycled
  // each pass with a pointer reset — no per-send push_back reallocation,
  // no per-node vector clears, no vector-of-vectors pointer chase.
  util::Arena fill_arena_;
  util::Arena deliver_arena_;
  Message* fill_msgs_ = nullptr;  // receiver-tagged sends, canonical order
  NodeId* fill_to_ = nullptr;
  std::size_t fill_count_ = 0;
  std::size_t fill_cap_ = 0;
  std::size_t fill_high_ = 0;  // high-water message count over all passes
  Message* inbox_msgs_ = nullptr;           // grouped by receiver
  std::vector<std::size_t> inbox_offset_;   // per node, into inbox_msgs_
  std::vector<std::size_t> inbox_len_;      // per node (clearable)
  std::vector<std::size_t> scatter_cursor_; // scatter write heads, scratch
  std::vector<NodeId> inbox_touched_;       // receivers with a nonzero inbox
  std::vector<Context> contexts_;
  std::vector<NodeId> active_;    // not-yet-halted nodes, ascending
  std::vector<NodeId> runnable_;  // active minus currently-crashed, per pass
  // Parallel mode: one flat send buffer per shard (a shard is executed by
  // exactly one worker, and nodes within it run in ascending order, so the
  // buffer is already in canonical order); per-node slices locate each
  // sender's sends for the merge.
  std::vector<std::vector<PendingSend>> shard_sends_;
  std::vector<std::uint32_t> shard_of_node_;  // per node, valid for runnable
  std::vector<std::size_t> shard_bounds_;     // shard s = runnable_[bounds[s], bounds[s+1])
  std::vector<std::size_t> outbox_off_;  // per node: slice of its shard buffer
  std::vector<std::size_t> outbox_len_;
  std::vector<std::size_t> shard_weights_;  // partition scratch, per runnable
  std::vector<unsigned char> crashed_now_;      // node crashed this round
  std::vector<unsigned char> crashed_arrival_;  // node crashed next round
  std::vector<unsigned char> was_crashed_;
  std::vector<std::size_t> sent_this_round_;  // indexed by directed edge slot
  std::vector<std::size_t> edge_slot_offset_;
  std::vector<bool> cut_side_;  // empty when no cut is tracked
  class Trace* trace_ = nullptr;
  EngineObserver* observer_ = nullptr;
  RunResult stats_;
  NodeId current_sender_ = 0;
  std::size_t current_pass_ = 0;
  bool parallel_pass_ = false;   // sends buffer to outboxes instead of committing
  bool fast_path_ = false;       // no fault/observer/trace/cut this run
  bool delivered_any_ = false;   // something was delivered for the next pass
  bool keep_alive_pending_ = false;
};

// Context accessors run once per node per round (or per send) — inline them
// so the hot loop pays no cross-TU call.
inline std::size_t Context::num_nodes() const { return engine_->graph().num_nodes(); }
inline std::size_t Context::bandwidth() const { return engine_->bandwidth(); }
inline const std::vector<NodeId>& Context::neighbors() const {
  return engine_->graph().neighbors(id_);
}

}  // namespace qcongest::net
