#include "src/net/generators.hpp"

#include <stdexcept>

namespace qcongest::net {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle_graph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: n < 3");
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

Graph star_graph(std::size_t n) {
  if (n < 2) throw std::invalid_argument("star_graph: n < 2");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph binary_tree(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(i, (i - 1) / 2);
  return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) g.add_edge(at(r, c), at(r + 1, c));
    }
  }
  return g;
}

Graph hypercube(unsigned dims) {
  if (dims == 0 || dims > 20) throw std::invalid_argument("hypercube: bad dims");
  std::size_t n = std::size_t{1} << dims;
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (unsigned d = 0; d < dims; ++d) {
      std::size_t u = v ^ (std::size_t{1} << d);
      if (u > v) g.add_edge(v, u);
    }
  }
  return g;
}

Graph petersen_graph() {
  Graph g(10);
  // Outer 5-cycle, inner pentagram, spokes.
  for (std::size_t i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);
    g.add_edge(5 + i, 5 + (i + 2) % 5);
    g.add_edge(i, 5 + i);
  }
  return g;
}

Graph random_connected_graph(std::size_t n, std::size_t extra_edges, util::Rng& rng) {
  Graph g(n);
  // Random spanning tree: attach each node to a random earlier node of a
  // random permutation.
  auto order = rng.permutation(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(order[i], order[rng.index(i)]);
  }
  std::size_t added = 0, attempts = 0;
  while (added < extra_edges && attempts < 20 * extra_edges + 100) {
    ++attempts;
    NodeId u = rng.index(n), v = rng.index(n);
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
    ++added;
  }
  return g;
}

Graph two_stars_graph(std::size_t left_size, std::size_t right_size,
                      std::size_t path_length) {
  if (path_length == 0) throw std::invalid_argument("two_stars_graph: path_length 0");
  // Layout: [0, left_size) left leaves, then left center, path interior,
  // right center, then right leaves.
  std::size_t left_center = left_size;
  std::size_t right_center = left_size + path_length;
  std::size_t n = left_size + path_length + 1 + right_size;
  Graph g(n);
  for (std::size_t i = 0; i < left_size; ++i) g.add_edge(i, left_center);
  for (std::size_t i = left_center; i < right_center; ++i) g.add_edge(i, i + 1);
  for (std::size_t i = 0; i < right_size; ++i) {
    g.add_edge(right_center, right_center + 1 + i);
  }
  return g;
}

Graph cycle_with_trees(std::size_t girth, std::size_t n, util::Rng& rng) {
  if (girth < 3 || girth > n) throw std::invalid_argument("cycle_with_trees: bad sizes");
  Graph g(n);
  for (std::size_t i = 0; i < girth; ++i) g.add_edge(i, (i + 1) % girth);
  // Hang remaining nodes as trees off random existing nodes. Attaching a
  // leaf never creates a cycle, so the girth stays exactly `girth`.
  for (std::size_t v = girth; v < n; ++v) g.add_edge(v, rng.index(v));
  return g;
}

Graph lollipop_graph(std::size_t clique_size, std::size_t path_length) {
  if (clique_size < 2) throw std::invalid_argument("lollipop_graph: clique < 2");
  std::size_t n = clique_size + path_length;
  Graph g(n);
  for (std::size_t i = 0; i < clique_size; ++i) {
    for (std::size_t j = i + 1; j < clique_size; ++j) g.add_edge(i, j);
  }
  for (std::size_t i = clique_size; i < n; ++i) g.add_edge(i == clique_size ? 0 : i - 1, i);
  return g;
}

Graph random_regular_graph(std::size_t n, std::size_t degree, util::Rng& rng) {
  if (degree < 2 || degree >= n || (n * degree) % 2 != 0) {
    throw std::invalid_argument("random_regular_graph: invalid (n, d)");
  }
  for (int attempt = 0; attempt < 50; ++attempt) {
    Graph g(n);
    // Pairing model: stubs shuffled and matched greedily.
    std::vector<NodeId> stubs;
    stubs.reserve(n * degree);
    for (NodeId v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < degree; ++i) stubs.push_back(v);
    }
    rng.shuffle(std::span<NodeId>(stubs));
    bool clean = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      NodeId u = stubs[i], v = stubs[i + 1];
      if (u == v || g.has_edge(u, v)) {
        clean = false;  // tolerate: skip the bad pair (degree d-1 for both)
        continue;
      }
      g.add_edge(u, v);
    }
    if (g.connected() && (clean || attempt >= 25)) return g;
  }
  throw std::runtime_error("random_regular_graph: failed to build a connected graph");
}

Graph caveman_graph(std::size_t communities, std::size_t clique_size) {
  if (communities < 2 || clique_size < 2) {
    throw std::invalid_argument("caveman_graph: need >= 2 communities of >= 2 nodes");
  }
  Graph g(communities * clique_size);
  for (std::size_t c = 0; c < communities; ++c) {
    std::size_t base = c * clique_size;
    for (std::size_t i = 0; i < clique_size; ++i) {
      for (std::size_t j = i + 1; j < clique_size; ++j) {
        g.add_edge(base + i, base + j);
      }
    }
    // One bridge to the next community on the ring.
    std::size_t next = ((c + 1) % communities) * clique_size;
    g.add_edge(base + clique_size - 1, next);
  }
  return g;
}

Graph balanced_tree(std::size_t branching, std::size_t depth) {
  if (branching < 1) throw std::invalid_argument("balanced_tree: branching < 1");
  std::size_t n = 1, layer = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    layer *= branching;
    n += layer;
  }
  Graph g(n);
  // Children of node v (0-indexed level order): branching*v + 1 .. + branching.
  for (NodeId v = 1; v < n; ++v) g.add_edge(v, (v - 1) / branching);
  return g;
}

}  // namespace qcongest::net
