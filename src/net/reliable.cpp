#include "src/net/reliable.hpp"

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace qcongest::net {

namespace {

// Link-layer chunk tags live in the negative tag space so they can never
// collide with protocol-level tags (which are small positive constants).
constexpr std::int32_t kRelData0 = -101;  // a = seq<<32 | inner tag, b = word.a
constexpr std::int32_t kRelData1 = -102;  // a = seq<<32 | cksum<<2 | q<<1, b = word.b
constexpr std::int32_t kRelFence = -103;  // a = seq<<32 | cksum<<2 | final<<1, b = round
constexpr std::int32_t kRelAck = -104;    // a = cksum<<2, b = next expected seq
constexpr std::int32_t kRelPoll = -105;   // a = cksum<<2, b = demanded fence round

constexpr std::uint64_t kChecksumMask = 0x3FFFFFFF;  // 30 bits

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint32_t fold30(std::initializer_list<std::uint64_t> fields, std::uint64_t salt) {
  std::uint64_t h = salt;
  for (std::uint64_t f : fields) h = mix64(h ^ f);
  return static_cast<std::uint32_t>(h & kChecksumMask);
}

std::uint32_t data_checksum(std::uint32_t seq, const Word& w, std::uint64_t salt) {
  return fold30({seq, static_cast<std::uint32_t>(w.tag), static_cast<std::uint64_t>(w.a),
                 static_cast<std::uint64_t>(w.b), w.quantum ? 1u : 0u, 0xDAu},
                salt);
}

std::uint32_t fence_checksum(std::uint32_t seq, std::size_t round, bool final,
                             std::uint64_t salt) {
  return fold30({seq, static_cast<std::uint64_t>(round), final ? 1u : 0u, 0xFEu}, salt);
}

std::uint32_t ack_checksum(std::uint32_t next_expected, std::uint64_t salt) {
  return fold30({next_expected, 0xACu}, salt);
}

std::uint32_t poll_checksum(std::size_t round, std::uint64_t salt) {
  return fold30({static_cast<std::uint64_t>(round), 0xB0u}, salt);
}

std::int64_t pack(std::uint32_t hi, std::uint32_t lo) {
  return static_cast<std::int64_t>((static_cast<std::uint64_t>(hi) << 32) | lo);
}

std::uint32_t hi32(std::int64_t v) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) >> 32);
}

std::uint32_t lo32(std::int64_t v) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) & 0xFFFFFFFFULL);
}

/// One sequence-numbered item of a per-link stream: a logical data word or a
/// round fence (final = the sender's program halted; every later round is
/// implicitly fenced too).
struct Item {
  bool is_fence = false;
  Word word;
  std::size_t fence_round = 0;
  bool fence_final = false;

  std::size_t chunk_count() const { return is_fence ? 1 : 2; }
};

class ReliableProgram;

/// The Context subclass handed to the wrapped program: send/halt/keep_alive
/// route into the link layer; id/neighbors/bandwidth/rng come straight from
/// the engine (set up once via configure), and round() reports the *virtual*
/// round.
class ReliableContext final : public Context {
 public:
  void configure(Engine* engine, NodeId id, util::Rng* rng, ReliableProgram* owner) {
    engine_ = engine;
    id_ = id;
    rng_ = rng;
    owner_ = owner;
  }
  void set_round(std::size_t r) { round_ = r; }

  void send(NodeId to, Word word) override;
  void halt() override;
  void keep_alive() override;

 private:
  ReliableProgram* owner_ = nullptr;
};

class ReliableProgram final : public NodeProgram {
 public:
  ReliableProgram(NodeProgram& inner, Engine& engine, const ReliableParams& params)
      : inner_(&inner), engine_(&engine), params_(params) {}

  void on_round(Context& ctx, const std::vector<Message>& inbox) override {
    if (!initialized_) initialize(ctx);
    const std::size_t now = ctx.round();

    for (const Message& m : inbox) {
      auto it = peer_index_.find(m.from);
      if (it == peer_index_.end()) continue;  // cannot happen: engine checks edges
      handle_chunk(it->second, m.word);
    }
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) drain_ready(ni);

    // Execute every inner round we have a reason to execute (exec_target)
    // and whose inputs are complete (can_execute). A degree-0 node has no
    // fences to wait on; cap it at one round per pass so it advances in
    // step with physical time.
    std::size_t executed = 0;
    while (!inner_halted_ &&
           (inner_keep_alive_ ||
            static_cast<std::int64_t>(next_round_) <= exec_target()) &&
           can_execute(next_round_) && (!adj_.empty() || executed == 0)) {
      execute_round(next_round_);
      ++executed;
    }
    if (inner_halted_ && !final_fence_sent_) {
      for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
        enqueue_fence(ni, next_round_ == 0 ? 0 : next_round_ - 1, /*final=*/true);
        fenced_up_to_[ni] = static_cast<std::int64_t>(next_round_);
      }
      final_fence_sent_ = true;
    }
    // Demanded fences: a neighbor polled for rounds we withheld (they were
    // silent). Release what we have executed, up to the demand.
    if (!final_fence_sent_ && next_round_ > 0) {
      for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
        std::int64_t level = std::min(out_[ni].demanded,
                                      static_cast<std::int64_t>(next_round_) - 1);
        if (level > fenced_up_to_[ni]) {
          enqueue_fence(ni, static_cast<std::size_t>(level), /*final=*/false);
          fenced_up_to_[ni] = level;
        }
      }
    }
    // Polls: we want to execute next_round_ but some neighbor has not
    // fenced next_round_ - 1 (it idled and lazily withheld the fence).
    // Demand it, re-demanding on the retransmission timer in case the poll
    // itself is lost.
    bool want_more = !inner_halted_ &&
                     (inner_keep_alive_ ||
                      static_cast<std::int64_t>(next_round_) <= exec_target());
    if (want_more && next_round_ > 0 && !can_execute(next_round_)) {
      for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
        InLink& in = in_[ni];
        if (in.final_seen) continue;
        if (in.fenced_round >= static_cast<std::int64_t>(next_round_) - 1) continue;
        if (static_cast<std::int64_t>(now) >=
            in.last_poll + static_cast<std::int64_t>(params_.rto_rounds)) {
          in.poll_pending = true;
          in.poll_target = next_round_ - 1;
          in.last_poll = static_cast<std::int64_t>(now);
        }
      }
    }

    transmit(ctx, now);

    if (inner_keep_alive_ || want_more || link_work_pending()) ctx.keep_alive();
  }

  // --- called by ReliableContext -----------------------------------------

  void inner_send(NodeId to, Word word) {
    auto it = peer_index_.find(to);
    if (it == peer_index_.end()) {
      throw std::invalid_argument("Engine: send to non-neighbor");
    }
    std::size_t ni = it->second;
    if (++sent_this_vround_[ni] > engine_->bandwidth()) {
      throw std::runtime_error(
          "CONGEST bandwidth exceeded: a node sent more than B words over one "
          "edge in one round");
    }
    sent_any_ = true;
    Item item;
    item.word = word;
    enqueue_item(ni, std::move(item));
  }

  void inner_halt() { inner_halted_ = true; }
  void inner_keep_alive() { inner_keep_alive_ = true; }

 private:
  struct InFlight {
    Item item;
    std::size_t chunks_sent = 0;
    std::size_t last_sent_round = 0;
    std::size_t rto = 0;
    bool fully_sent = false;
  };

  struct OutLink {
    std::uint32_t next_seq = 0;
    std::uint32_t acked_prefix = 0;
    std::map<std::uint32_t, InFlight> inflight;
    std::deque<std::pair<std::uint32_t, Item>> queue;
    /// Highest round the peer has demanded we fence (via a poll); sticky.
    std::int64_t demanded = -1;
  };

  struct Partial {
    bool have0 = false, have1 = false;
    std::int64_t a0 = 0, b0 = 0, a1 = 0, b1 = 0;
  };

  struct InLink {
    std::uint32_t next_expected = 0;
    std::map<std::uint32_t, Item> ready;
    std::map<std::uint32_t, Partial> partial;
    bool ack_dirty = false;
    std::vector<Word> unfenced_words;
    std::map<std::size_t, std::vector<Word>> words_by_round;
    std::int64_t fenced_round = -1;
    bool final_seen = false;
    // Outgoing poll state: when we block on this peer's withheld fence.
    std::int64_t last_poll = std::numeric_limits<std::int64_t>::min() / 2;
    bool poll_pending = false;
    std::size_t poll_target = 0;
  };

  /// The highest inner round this node has a reason to execute: round 0
  /// always runs; delivered-but-unconsumed data for round m forces rounds
  /// up to m + 1; a neighbor's demand forces rounds up to the demanded
  /// fence; momentum (our own last executed round sent something) grants
  /// one more round, since senders drive their own clock. Rounds beyond
  /// the target are provably silent for well-behaved programs (event-driven
  /// or keep_alive-honest) and are simply not executed — that is what lets
  /// a quiet network quiesce.
  std::int64_t exec_target() const {
    std::int64_t t = next_round_ == 0 ? 0 : -1;
    if (momentum_) t = std::max(t, static_cast<std::int64_t>(next_round_));
    for (const OutLink& out : out_) t = std::max(t, out.demanded);
    for (const InLink& in : in_) {
      if (!in.words_by_round.empty()) {
        t = std::max(t,
                     static_cast<std::int64_t>(in.words_by_round.rbegin()->first) + 1);
      }
    }
    return t;
  }

  void initialize(Context& ctx) {
    id_ = ctx.id();
    adj_ = ctx.neighbors();
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) peer_index_[adj_[ni]] = ni;
    out_.resize(adj_.size());
    in_.resize(adj_.size());
    sent_this_vround_.assign(adj_.size(), 0);
    fenced_up_to_.assign(adj_.size(), -1);
    inner_ctx_.configure(engine_, id_, &ctx.rng(), this);
    initialized_ = true;
  }

  bool can_execute(std::size_t r) const {
    if (r == 0) return true;
    for (const InLink& in : in_) {
      if (!in.final_seen && in.fenced_round < static_cast<std::int64_t>(r) - 1) {
        return false;
      }
    }
    return true;
  }

  void execute_round(std::size_t r) {
    std::vector<Message> inbox;
    if (r > 0) {
      for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
        auto it = in_[ni].words_by_round.find(r - 1);
        if (it == in_[ni].words_by_round.end()) continue;
        for (const Word& w : it->second) inbox.push_back(Message{adj_[ni], w});
        in_[ni].words_by_round.erase(it);
      }
    }
    inner_ctx_.set_round(r);
    inner_keep_alive_ = false;
    sent_any_ = false;
    std::fill(sent_this_vround_.begin(), sent_this_vround_.end(), 0);
    inner_->on_round(inner_ctx_, inbox);
    next_round_ = r + 1;
    momentum_ = sent_any_;
    // Active rounds are fenced immediately; silent rounds withhold the
    // fence until a neighbor demands it (poll), so a globally quiet network
    // goes silent and the engine can quiesce.
    if (!inbox.empty() || sent_any_ || inner_keep_alive_ || inner_halted_) {
      fence_all(r);
    }
  }

  void fence_all(std::size_t r) {
    if (final_fence_sent_) return;
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
      if (fenced_up_to_[ni] < static_cast<std::int64_t>(r)) {
        enqueue_fence(ni, r, /*final=*/false);
        fenced_up_to_[ni] = static_cast<std::int64_t>(r);
      }
    }
  }

  void enqueue_fence(std::size_t ni, std::size_t round, bool final) {
    Item item;
    item.is_fence = true;
    item.fence_round = round;
    item.fence_final = final;
    enqueue_item(ni, std::move(item));
  }

  void enqueue_item(std::size_t ni, Item item) {
    OutLink& out = out_[ni];
    out.queue.emplace_back(out.next_seq++, std::move(item));
  }

  /// Returns true when the chunk carried valid information (data, fence, or
  /// ack — including duplicates, which trigger a re-ack and may wake us).
  bool handle_chunk(std::size_t ni, const Word& w) {
    InLink& in = in_[ni];
    OutLink& out = out_[ni];
    switch (w.tag) {
      case kRelAck: {
        auto next = static_cast<std::uint32_t>(static_cast<std::uint64_t>(w.b));
        if (hi32(w.a) != 0 || lo32(w.a) >> 2 != ack_checksum(next, params_.checksum_salt))
          return false;  // corrupted ack
        if (next > out.next_seq) return false;
        if (next > out.acked_prefix) {
          out.acked_prefix = next;
          out.inflight.erase(out.inflight.begin(), out.inflight.lower_bound(next));
        }
        return true;
      }
      case kRelData0:
      case kRelData1: {
        std::uint32_t seq = hi32(w.a);
        if (!plausible_seq(in, seq)) return seq < in.next_expected || in.ready.count(seq)
                                                ? (in.ack_dirty = true)
                                                : false;
        Partial& p = in.partial[seq];
        if (w.tag == kRelData0) {
          p.have0 = true;
          p.a0 = w.a;
          p.b0 = w.b;
        } else {
          p.have1 = true;
          p.a1 = w.a;
          p.b1 = w.b;
        }
        if (!(p.have0 && p.have1)) return true;
        Word word;
        word.tag = static_cast<std::int32_t>(lo32(p.a0));
        word.a = p.b0;
        word.b = p.b1;
        word.quantum = ((lo32(p.a1) >> 1) & 1) != 0;
        std::uint32_t cksum = lo32(p.a1) >> 2;
        in.partial.erase(seq);
        if (cksum != data_checksum(seq, word, params_.checksum_salt)) {
          return false;  // corrupted frame: discard, retransmission recovers it
        }
        Item item;
        item.word = word;
        in.ready.emplace(seq, std::move(item));
        in.ack_dirty = true;
        return true;
      }
      case kRelFence: {
        std::uint32_t seq = hi32(w.a);
        if (!plausible_seq(in, seq)) return seq < in.next_expected || in.ready.count(seq)
                                                ? (in.ack_dirty = true)
                                                : false;
        bool final = ((lo32(w.a) >> 1) & 1) != 0;
        auto round = static_cast<std::size_t>(w.b);
        if (lo32(w.a) >> 2 != fence_checksum(seq, round, final, params_.checksum_salt)) {
          return false;
        }
        Item item;
        item.is_fence = true;
        item.fence_round = round;
        item.fence_final = final;
        in.ready.emplace(seq, std::move(item));
        in.ack_dirty = true;
        return true;
      }
      case kRelPoll: {
        auto round = static_cast<std::size_t>(w.b);
        if (hi32(w.a) != 0 ||
            lo32(w.a) >> 2 != poll_checksum(round, params_.checksum_salt)) {
          return false;  // corrupted poll; the peer re-polls on its timer
        }
        out.demanded = std::max(out.demanded, static_cast<std::int64_t>(round));
        return true;
      }
      default:
        return false;  // not a link-layer chunk; ignore
    }
  }

  /// A fresh, in-window sequence number. Duplicates and garbage (corrupted
  /// sequence bits far outside the window) are handled by the caller.
  bool plausible_seq(const InLink& in, std::uint32_t seq) const {
    if (seq < in.next_expected) return false;                        // duplicate
    if (seq >= in.next_expected + 4 * params_.window) return false;  // garbage
    return in.ready.find(seq) == in.ready.end();                     // duplicate
  }

  void drain_ready(std::size_t ni) {
    InLink& in = in_[ni];
    while (!in.ready.empty() && in.ready.begin()->first == in.next_expected) {
      Item item = std::move(in.ready.begin()->second);
      in.ready.erase(in.ready.begin());
      ++in.next_expected;
      in.ack_dirty = true;
      if (item.is_fence) {
        // Stream order guarantees all data belonging to rounds <= fence_round
        // precedes the fence; buffered words belong to exactly fence_round.
        if (!in.unfenced_words.empty()) {
          auto& bucket = in.words_by_round[item.fence_round];
          bucket.insert(bucket.end(), in.unfenced_words.begin(), in.unfenced_words.end());
          in.unfenced_words.clear();
        }
        in.fenced_round =
            std::max(in.fenced_round, static_cast<std::int64_t>(item.fence_round));
        if (item.fence_final) in.final_seen = true;
      } else {
        if (inner_halted_) {
          throw std::logic_error("Engine: message delivered to a halted node");
        }
        in.unfenced_words.push_back(item.word);
      }
    }
  }

  void transmit(Context& ctx, std::size_t now) {
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
      std::size_t budget = ctx.bandwidth();
      NodeId peer = adj_[ni];
      InLink& in = in_[ni];
      OutLink& out = out_[ni];

      if (budget > 0 && in.ack_dirty) {
        std::uint32_t cksum = ack_checksum(in.next_expected, params_.checksum_salt);
        ctx.send(peer, Word{kRelAck, pack(0, cksum << 2),
                            static_cast<std::int64_t>(in.next_expected), false});
        in.ack_dirty = false;
        --budget;
      }
      if (budget > 0 && in.poll_pending) {
        std::uint32_t cksum = poll_checksum(in.poll_target, params_.checksum_salt);
        ctx.send(peer, Word{kRelPoll, pack(0, cksum << 2),
                            static_cast<std::int64_t>(in.poll_target), false});
        in.poll_pending = false;
        --budget;
      }
      // Admit queued items into the sliding window (chunks go out as budget
      // allows, resuming across rounds via the chunks_sent cursor).
      while (!out.queue.empty() && out.inflight.size() < params_.window) {
        auto& [seq, item] = out.queue.front();
        InFlight fl;
        fl.item = std::move(item);
        fl.rto = params_.rto_rounds;
        fl.last_sent_round = now;
        out.inflight.emplace(seq, std::move(fl));
        out.queue.pop_front();
      }
      // In-flight frames, oldest first: finish initial transmissions and
      // restart timed-out ones with exponential backoff.
      for (auto& [seq, fl] : out.inflight) {
        if (budget == 0) break;
        if (fl.fully_sent && now >= fl.last_sent_round + fl.rto) {
          fl.fully_sent = false;
          fl.chunks_sent = 0;
          fl.rto = std::min(fl.rto * 2, params_.rto_cap);
          engine_->note_retransmission();
        }
        while (budget > 0 && !fl.fully_sent) {
          ctx.send(peer, make_chunk(seq, fl.item, fl.chunks_sent));
          ++fl.chunks_sent;
          --budget;
          if (fl.chunks_sent == fl.item.chunk_count()) {
            fl.fully_sent = true;
            fl.last_sent_round = now;
          }
        }
      }
    }
  }

  Word make_chunk(std::uint32_t seq, const Item& item, std::size_t chunk) const {
    if (item.is_fence) {
      std::uint32_t cksum =
          fence_checksum(seq, item.fence_round, item.fence_final, params_.checksum_salt);
      std::uint32_t lo = (cksum << 2) | (item.fence_final ? 2u : 0u);
      return Word{kRelFence, pack(seq, lo), static_cast<std::int64_t>(item.fence_round),
                  false};
    }
    const Word& w = item.word;
    if (chunk == 0) {
      return Word{kRelData0, pack(seq, static_cast<std::uint32_t>(w.tag)), w.a, w.quantum};
    }
    std::uint32_t cksum = data_checksum(seq, w, params_.checksum_salt);
    std::uint32_t lo = (cksum << 2) | (w.quantum ? 2u : 0u);
    return Word{kRelData1, pack(seq, lo), w.b, w.quantum};
  }

  bool link_work_pending() const {
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
      if (!out_[ni].queue.empty() || !out_[ni].inflight.empty()) return true;
      if (in_[ni].ack_dirty || in_[ni].poll_pending) return true;
    }
    return false;
  }

  NodeProgram* inner_;
  Engine* engine_;
  ReliableParams params_;
  bool initialized_ = false;
  NodeId id_ = 0;
  std::vector<NodeId> adj_;
  std::unordered_map<NodeId, std::size_t> peer_index_;
  std::vector<OutLink> out_;
  std::vector<InLink> in_;

  ReliableContext inner_ctx_;
  std::size_t next_round_ = 0;  // next inner round to execute
  bool inner_halted_ = false;
  bool inner_keep_alive_ = false;
  bool sent_any_ = false;
  bool momentum_ = false;  // last executed round sent something
  bool final_fence_sent_ = false;
  std::vector<std::size_t> sent_this_vround_;
  std::vector<std::int64_t> fenced_up_to_;
};

void ReliableContext::send(NodeId to, Word word) { owner_->inner_send(to, word); }
void ReliableContext::halt() { owner_->inner_halt(); }
void ReliableContext::keep_alive() { owner_->inner_keep_alive(); }

}  // namespace

std::vector<std::unique_ptr<NodeProgram>> wrap_reliable(
    std::span<const std::unique_ptr<NodeProgram>> programs, Engine& engine,
    const ReliableParams& params) {
  std::vector<std::unique_ptr<NodeProgram>> wrapped;
  wrapped.reserve(programs.size());
  for (const auto& program : programs) {
    wrapped.push_back(std::make_unique<ReliableProgram>(*program, engine, params));
  }
  return wrapped;
}

}  // namespace qcongest::net
