#include "src/net/reliable.hpp"

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace qcongest::net {

namespace {

// Link-layer chunk tags live in the negative tag space so they can never
// collide with protocol-level tags (which are small positive constants).
constexpr std::int32_t kRelData0 = -101;  // a = seq<<32 | inner tag, b = word.a
constexpr std::int32_t kRelData1 = -102;  // a = seq<<32 | cksum<<2 | q<<1, b = word.b
constexpr std::int32_t kRelFence = -103;  // a = seq<<32 | cksum<<2 | final<<1, b = round
constexpr std::int32_t kRelAck = -104;    // a = cksum<<2, b = next expected seq
constexpr std::int32_t kRelPoll = -105;   // a = cksum<<2, b = demanded fence round
// State-transfer items of the amnesia-recovery catch-up protocol. They ride
// the same per-link exactly-once in-order stream as data and fences, and
// their chunks share the CONGEST(B) budget (counted as recovery_words).
constexpr std::int32_t kRelRecReq = -106;  // a = seq<<32 | cksum<<2, b = from<<32 | to
constexpr std::int32_t kRelRecHdr = -107;  // a = seq<<32 | cksum<<2, b = round<<32 | count
constexpr std::int32_t kRelRecW0 = -108;   // replayed data, chunk 0 (like kRelData0)
constexpr std::int32_t kRelRecW1 = -109;   // replayed data, chunk 1 (like kRelData1)

constexpr std::uint64_t kChecksumMask = 0x3FFFFFFF;  // 30 bits

/// Header count marking a requested round the responder has already pruned
/// from its send log (the recovering node then cannot catch up and dies).
/// Unreachable under the documented pruning margin; kept for honesty.
constexpr std::uint32_t kRecUnavailable = 0xFFFFFFFFu;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint32_t fold30(std::initializer_list<std::uint64_t> fields, std::uint64_t salt) {
  std::uint64_t h = salt;
  for (std::uint64_t f : fields) h = mix64(h ^ f);
  return static_cast<std::uint32_t>(h & kChecksumMask);
}

std::uint32_t data_checksum(std::uint32_t seq, const Word& w, std::uint64_t salt) {
  return fold30({seq, static_cast<std::uint32_t>(w.tag), static_cast<std::uint64_t>(w.a),
                 static_cast<std::uint64_t>(w.b), w.quantum ? 1u : 0u, 0xDAu},
                salt);
}

std::uint32_t fence_checksum(std::uint32_t seq, std::size_t round, bool final,
                             std::uint64_t salt) {
  return fold30({seq, static_cast<std::uint64_t>(round), final ? 1u : 0u, 0xFEu}, salt);
}

std::uint32_t ack_checksum(std::uint32_t next_expected, std::uint64_t salt) {
  return fold30({next_expected, 0xACu}, salt);
}

std::uint32_t poll_checksum(std::size_t round, std::uint64_t salt) {
  return fold30({static_cast<std::uint64_t>(round), 0xB0u}, salt);
}

std::uint32_t rec_req_checksum(std::uint32_t seq, std::size_t from, std::size_t to,
                               std::uint64_t salt) {
  return fold30({seq, static_cast<std::uint64_t>(from), static_cast<std::uint64_t>(to),
                 0xEAu},
                salt);
}

std::uint32_t rec_hdr_checksum(std::uint32_t seq, std::size_t round,
                               std::uint32_t count, std::uint64_t salt) {
  return fold30({seq, static_cast<std::uint64_t>(round), count, 0xEBu}, salt);
}

// Distinct checksum domain from live data frames, so a replayed word can
// never masquerade as a fresh one (and vice versa) even under bit flips.
std::uint32_t rec_data_checksum(std::uint32_t seq, const Word& w, std::uint64_t salt) {
  return fold30({seq, static_cast<std::uint32_t>(w.tag), static_cast<std::uint64_t>(w.a),
                 static_cast<std::uint64_t>(w.b), w.quantum ? 1u : 0u, 0xEDu},
                salt);
}

std::int64_t pack(std::uint32_t hi, std::uint32_t lo) {
  return static_cast<std::int64_t>((static_cast<std::uint64_t>(hi) << 32) | lo);
}

std::uint32_t hi32(std::int64_t v) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) >> 32);
}

std::uint32_t lo32(std::int64_t v) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) & 0xFFFFFFFFULL);
}

/// One sequence-numbered item of a per-link stream: a logical data word, a
/// round fence (final = the sender's program halted; every later round is
/// implicitly fenced too), or a state-transfer item of the amnesia-recovery
/// catch-up protocol (request / per-round header / replayed word).
enum class ItemKind : std::uint8_t { kData, kFence, kRecReq, kRecHdr, kRecData };

struct Item {
  ItemKind kind = ItemKind::kData;
  Word word;                   // kData / kRecData payload
  std::size_t fence_round = 0; // kFence
  bool fence_final = false;    // kFence
  std::size_t rec_a = 0;  // kRecReq: first requested round; kRecHdr: round
  std::size_t rec_b = 0;  // kRecReq: one-past-last round; kRecHdr: word count

  bool is_recovery() const {
    return kind == ItemKind::kRecReq || kind == ItemKind::kRecHdr ||
           kind == ItemKind::kRecData;
  }
  std::size_t chunk_count() const {
    return kind == ItemKind::kData || kind == ItemKind::kRecData ? 2 : 1;
  }
};

class ReliableProgram;

/// The Context subclass handed to the wrapped program: send/halt/keep_alive
/// route into the link layer; id/neighbors/bandwidth/rng come straight from
/// the engine (set up once via configure), and round() reports the *virtual*
/// round.
class ReliableContext final : public Context {
 public:
  void configure(Engine* engine, NodeId id, util::Rng* rng, ReliableProgram* owner) {
    engine_ = engine;
    id_ = id;
    rng_ = rng;
    owner_ = owner;
  }
  void set_round(std::size_t r) { round_ = r; }

  void send(NodeId to, Word word) override;
  void halt() override;
  void keep_alive() override;

 private:
  ReliableProgram* owner_ = nullptr;
};

class ReliableProgram final : public NodeProgram {
 public:
  ReliableProgram(NodeProgram& inner, Engine& engine, const ReliableParams& params)
      : inner_(&inner), engine_(&engine), params_(params) {}

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    if (!initialized_) initialize(ctx);
    // A node whose recovery failed (unreachable send-log round) goes silent
    // forever — the closest survivable-model analogue of a crash-stop.
    if (recovery_failed_) return;
    const std::size_t now = ctx.round();

    for (const Message& m : inbox) {
      auto it = peer_index_.find(m.from);
      if (it == peer_index_.end()) continue;  // cannot happen: engine checks edges
      handle_chunk(it->second, m.word);
    }
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) drain_ready(ni);
    if (recovering_ && !recovery_failed_) try_finish_recovery();

    bool want_more = false;
    if (!recovering_ && !recovery_failed_) {
      // Execute every inner round we have a reason to execute (exec_target)
      // and whose inputs are complete (can_execute). A degree-0 node has no
      // fences to wait on; cap it at one round per pass so it advances in
      // step with physical time.
      std::size_t executed = 0;
      while (!inner_halted_ &&
             (inner_keep_alive_ ||
              static_cast<std::int64_t>(next_round_) <= exec_target()) &&
             can_execute(next_round_) && (!adj_.empty() || executed == 0)) {
        execute_round(next_round_);
        ++executed;
      }
      if (inner_halted_ && !final_fence_sent_) {
        for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
          enqueue_fence(ni, next_round_ == 0 ? 0 : next_round_ - 1, /*final=*/true);
          fenced_up_to_[ni] = static_cast<std::int64_t>(next_round_);
        }
        final_fence_sent_ = true;
      }
      // Demanded fences: a neighbor polled for rounds we withheld (they were
      // silent). Release what we have executed, up to the demand.
      if (!final_fence_sent_ && next_round_ > 0) {
        for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
          std::int64_t level = std::min(out_[ni].demanded,
                                        static_cast<std::int64_t>(next_round_) - 1);
          if (level > fenced_up_to_[ni]) {
            enqueue_fence(ni, static_cast<std::size_t>(level), /*final=*/false);
            fenced_up_to_[ni] = level;
          }
        }
      }
      // Polls: we want to execute next_round_ but some neighbor has not
      // fenced next_round_ - 1 (it idled and lazily withheld the fence).
      // Demand it, re-demanding on the retransmission timer in case the poll
      // itself is lost.
      want_more = !inner_halted_ &&
                  (inner_keep_alive_ ||
                   static_cast<std::int64_t>(next_round_) <= exec_target());
      if (want_more && next_round_ > 0 && !can_execute(next_round_)) {
        for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
          InLink& in = in_[ni];
          if (in.final_seen) continue;
          if (in.fenced_round >= static_cast<std::int64_t>(next_round_) - 1) continue;
          if (static_cast<std::int64_t>(now) >=
              in.last_poll + static_cast<std::int64_t>(params_.rto_rounds)) {
            in.poll_pending = true;
            in.poll_target = next_round_ - 1;
            in.last_poll = static_cast<std::int64_t>(now);
          }
        }
      }
    }

    transmit(ctx, now);

    if (recovering_ && !recovery_failed_) {
      // Catch-up in progress: stay scheduled and bill the round to recovery.
      engine_->note_recovery_activity();
      ctx.keep_alive();
    } else if (inner_keep_alive_ || want_more || link_work_pending()) {
      ctx.keep_alive();
    }
  }

  // --- Durable-state interface: the wrapper is transparent ---------------
  // The link layer itself holds no durable state worth checkpointing (it is
  // the part of the node that survives amnesia, like a NIC re-establishing
  // its session), so snapshots pass straight through to the inner program.

  bool snapshot(std::vector<std::int64_t>& out) const override {
    return inner_->snapshot(out);
  }
  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    return inner_->restore(version, words);
  }
  std::uint32_t state_version() const override { return inner_->state_version(); }

  /// Amnesia restart under the reliable transport: the inner program's state
  /// is wiped — reconstructed from the run's program factory by state
  /// transplant (a factory-fresh instance's serialized round-0 state
  /// overwrites the scheduled object, so callers keep reading results from
  /// the original instance) — then rolled forward to the latest checkpoint
  /// and caught up to the pre-crash virtual round by replaying the
  /// neighbors' send logs. Link state (sequence numbers, in-flight frames,
  /// fences, logs) deliberately survives: the outage is invisible at the
  /// item level, retransmission already covers it.
  bool on_amnesia_restart(std::size_t /*restart_round*/) override {
    if (!initialized_) return true;  // never executed: nothing volatile lost
    if (!recovery_logging_) return false;
    const Engine::ProgramFactory& factory = engine_->program_factory();
    if (factory == nullptr) return false;
    std::unique_ptr<NodeProgram> fresh = factory(id_);
    std::vector<std::int64_t> fresh_words;
    if (fresh == nullptr || !fresh->snapshot(fresh_words) ||
        !inner_->restore(fresh->state_version(), fresh_words)) {
      return false;
    }
    std::size_t from = 0;
    if (const recover::Snapshot* snap = engine_->checkpoint_store().latest(id_)) {
      if (snap->intact() && inner_->restore(snap->version, snap->words)) {
        from = snap->round;
      } else if (!inner_->restore(fresh->state_version(), fresh_words)) {
        // Rotted/rejected checkpoint and the fallback re-transplant failed.
        return false;
      }
    }
    engine_->note_recovery_activity();
    replay_from_ = from;
    replay_to_ = next_round_;
    if (replay_to_ <= replay_from_) return true;  // checkpoint is current
    recovering_ = true;
    recovery_failed_ = false;
    // Replaying rounds [from, to) consumes the neighbors' sends of rounds
    // [from - 1, to - 1) — round r's inbox is what they sent in r - 1.
    req_lo_ = replay_from_ == 0 ? 0 : replay_from_ - 1;
    req_hi_ = replay_to_ - 1;
    if (req_hi_ <= req_lo_ || adj_.empty()) {
      do_replay();  // only message-free rounds to redo
      return true;
    }
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
      rec_[ni] = RecState{};
      rec_[ni].pending = true;
      Item req;
      req.kind = ItemKind::kRecReq;
      req.rec_a = req_lo_;
      req.rec_b = req_hi_;
      enqueue_item(ni, std::move(req));
    }
    return true;
  }

  // --- called by ReliableContext -----------------------------------------

  void inner_send(NodeId to, Word word) {
    auto it = peer_index_.find(to);
    if (it == peer_index_.end()) {
      throw std::invalid_argument("Engine: send to non-neighbor");
    }
    std::size_t ni = it->second;
    if (++sent_this_vround_[ni] > engine_->bandwidth()) {
      throw std::runtime_error(
          "CONGEST bandwidth exceeded: a node sent more than B words over one "
          "edge in one round");
    }
    sent_any_ = true;
    // Replayed rounds re-derive sent_any_/bandwidth identically, but their
    // sends must not hit the wire again: the original items still sit in the
    // link stream (the link layer survived the amnesia crash), and the
    // neighbor has long consumed or will consume them.
    if (replay_mode_) return;
    if (recovery_logging_) {
      out_[ni].sent_log[inner_ctx_.round()].push_back(word);
    }
    Item item;
    item.word = word;
    enqueue_item(ni, std::move(item));
  }

  void inner_halt() { inner_halted_ = true; }
  void inner_keep_alive() { inner_keep_alive_ = true; }

 private:
  struct InFlight {
    Item item;
    std::size_t chunks_sent = 0;
    std::size_t last_sent_round = 0;
    std::size_t rto = 0;
    bool fully_sent = false;
  };

  struct OutLink {
    std::uint32_t next_seq = 0;
    std::uint32_t acked_prefix = 0;
    std::map<std::uint32_t, InFlight> inflight;
    std::deque<std::pair<std::uint32_t, Item>> queue;
    /// Highest round the peer has demanded we fence (via a poll); sticky.
    std::int64_t demanded = -1;
    /// Recovery only: inner words sent over this link, by virtual round —
    /// what a recovering peer replays from. Link state, so it survives the
    /// peer's amnesia (and our own). Pruned at checkpoints.
    std::map<std::size_t, std::vector<Word>> sent_log;
    /// First round still in sent_log (everything below was pruned).
    std::size_t log_floor = 0;
  };

  struct Partial {
    bool have0 = false, have1 = false;
    bool rec = false;  // chunks carried kRelRecW* tags (replayed data)
    std::int64_t a0 = 0, b0 = 0, a1 = 0, b1 = 0;
  };

  /// Receive side of one link's state transfer while recovering.
  struct RecState {
    bool pending = false;  // responses still owed on this link
    std::map<std::size_t, std::size_t> expected;  // round -> announced count
    std::map<std::size_t, std::vector<Word>> words;
    std::size_t open_round = 0;  // round of the last header drained
    std::size_t open_left = 0;   // its words still to arrive
    bool discard = false;        // stale/duplicate header: drop its words
  };

  struct InLink {
    std::uint32_t next_expected = 0;
    std::map<std::uint32_t, Item> ready;
    std::map<std::uint32_t, Partial> partial;
    bool ack_dirty = false;
    std::vector<Word> unfenced_words;
    std::map<std::size_t, std::vector<Word>> words_by_round;
    std::int64_t fenced_round = -1;
    bool final_seen = false;
    // Outgoing poll state: when we block on this peer's withheld fence.
    std::int64_t last_poll = std::numeric_limits<std::int64_t>::min() / 2;
    bool poll_pending = false;
    std::size_t poll_target = 0;
  };

  /// The highest inner round this node has a reason to execute: round 0
  /// always runs; delivered-but-unconsumed data for round m forces rounds
  /// up to m + 1; a neighbor's demand forces rounds up to the demanded
  /// fence; momentum (our own last executed round sent something) grants
  /// one more round, since senders drive their own clock. Rounds beyond
  /// the target are provably silent for well-behaved programs (event-driven
  /// or keep_alive-honest) and are simply not executed — that is what lets
  /// a quiet network quiesce.
  std::int64_t exec_target() const {
    std::int64_t t = next_round_ == 0 ? 0 : -1;
    if (momentum_) t = std::max(t, static_cast<std::int64_t>(next_round_));
    for (const OutLink& out : out_) t = std::max(t, out.demanded);
    for (const InLink& in : in_) {
      if (!in.words_by_round.empty()) {
        t = std::max(t,
                     static_cast<std::int64_t>(in.words_by_round.rbegin()->first) + 1);
      }
    }
    return t;
  }

  void initialize(Context& ctx) {
    id_ = ctx.id();
    adj_ = ctx.neighbors();
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) peer_index_[adj_[ni]] = ni;
    out_.resize(adj_.size());
    in_.resize(adj_.size());
    rec_.resize(adj_.size());
    sent_this_vround_.assign(adj_.size(), 0);
    fenced_up_to_.assign(adj_.size(), -1);
    recovery_logging_ = engine_->recovery().enabled;
    inner_ctx_.configure(engine_, id_, &ctx.rng(), this);
    initialized_ = true;
  }

  bool can_execute(std::size_t r) const {
    if (r == 0) return true;
    for (const InLink& in : in_) {
      if (!in.final_seen && in.fenced_round < static_cast<std::int64_t>(r) - 1) {
        return false;
      }
    }
    return true;
  }

  void execute_round(std::size_t r) {
    std::vector<Message> inbox;
    if (r > 0) {
      for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
        auto it = in_[ni].words_by_round.find(r - 1);
        if (it == in_[ni].words_by_round.end()) continue;
        for (const Word& w : it->second) inbox.push_back(Message{adj_[ni], w});
        in_[ni].words_by_round.erase(it);
      }
    }
    run_inner(r, inbox);
  }

  /// One inner round, live or replayed: the only difference is where the
  /// inbox came from (words_by_round vs the neighbors' replayed logs) and
  /// that replayed sends stay off the wire (see inner_send). State updates
  /// (next_round_, momentum_, fences, checkpoints) are identical, which is
  /// what makes a completed replay land exactly on the pre-crash trajectory.
  void run_inner(std::size_t r, std::span<const Message> inbox) {
    inner_ctx_.set_round(r);
    inner_keep_alive_ = false;
    sent_any_ = false;
    std::fill(sent_this_vround_.begin(), sent_this_vround_.end(), 0);
    inner_->on_round(inner_ctx_, inbox);
    next_round_ = r + 1;
    momentum_ = sent_any_;
    // Active rounds are fenced immediately; silent rounds withhold the
    // fence until a neighbor demands it (poll), so a globally quiet network
    // goes silent and the engine can quiesce.
    if (!inbox.empty() || sent_any_ || inner_keep_alive_ || inner_halted_) {
      fence_all(r);
    }
    maybe_checkpoint(r + 1);
  }

  /// Periodic checkpoint at a virtual-round boundary, plus send-log pruning.
  void maybe_checkpoint(std::size_t rounds_done) {
    if (!recovery_logging_) return;
    const recover::RecoveryPolicy& policy = engine_->recovery();
    if (!policy.checkpoint.due(rounds_done)) return;
    std::vector<std::int64_t> words;
    if (inner_->snapshot(words)) {
      recover::Snapshot snap;
      snap.version = inner_->state_version();
      snap.round = rounds_done;
      snap.words = std::move(words);
      engine_->checkpoint_store().put(id_, std::move(snap));
    }
    // A neighbor's catch-up request reaches back to its own checkpoint minus
    // one; neighbors trail our virtual round by at most 1 (they cannot
    // execute r + 1 before we fence r) and checkpoint every k rounds too, so
    // send-rounds below rounds_done - k - margin - 1 are unreachable.
    std::size_t k = policy.checkpoint.every_rounds;
    std::size_t reach = k + policy.log_margin + 1;
    if (rounds_done <= reach) return;
    std::size_t keep_from = rounds_done - reach;
    for (OutLink& out : out_) {
      out.sent_log.erase(out.sent_log.begin(), out.sent_log.lower_bound(keep_from));
      out.log_floor = std::max(out.log_floor, keep_from);
    }
  }

  void fence_all(std::size_t r) {
    if (final_fence_sent_ || replay_mode_) return;
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
      if (fenced_up_to_[ni] < static_cast<std::int64_t>(r)) {
        enqueue_fence(ni, r, /*final=*/false);
        fenced_up_to_[ni] = static_cast<std::int64_t>(r);
      }
    }
  }

  void enqueue_fence(std::size_t ni, std::size_t round, bool final) {
    Item item;
    item.kind = ItemKind::kFence;
    item.fence_round = round;
    item.fence_final = final;
    enqueue_item(ni, std::move(item));
  }

  void enqueue_item(std::size_t ni, Item item) {
    OutLink& out = out_[ni];
    out.queue.emplace_back(out.next_seq++, std::move(item));
  }

  /// Returns true when the chunk carried valid information (data, fence, or
  /// ack — including duplicates, which trigger a re-ack and may wake us).
  bool handle_chunk(std::size_t ni, const Word& w) {
    InLink& in = in_[ni];
    OutLink& out = out_[ni];
    switch (w.tag) {
      case kRelAck: {
        auto next = static_cast<std::uint32_t>(static_cast<std::uint64_t>(w.b));
        if (hi32(w.a) != 0 || lo32(w.a) >> 2 != ack_checksum(next, params_.checksum_salt))
          return false;  // corrupted ack
        if (next > out.next_seq) return false;
        if (next > out.acked_prefix) {
          out.acked_prefix = next;
          out.inflight.erase(out.inflight.begin(), out.inflight.lower_bound(next));
        }
        return true;
      }
      case kRelData0:
      case kRelData1:
      case kRelRecW0:
      case kRelRecW1: {
        const bool rec = w.tag == kRelRecW0 || w.tag == kRelRecW1;
        const bool chunk0 = w.tag == kRelData0 || w.tag == kRelRecW0;
        std::uint32_t seq = hi32(w.a);
        if (!plausible_seq(in, seq)) return seq < in.next_expected || in.ready.count(seq)
                                                ? (in.ack_dirty = true)
                                                : false;
        Partial& p = in.partial[seq];
        p.rec = p.rec || rec;
        if (chunk0) {
          p.have0 = true;
          p.a0 = w.a;
          p.b0 = w.b;
        } else {
          p.have1 = true;
          p.a1 = w.a;
          p.b1 = w.b;
        }
        if (!(p.have0 && p.have1)) return true;
        Word word;
        word.tag = static_cast<std::int32_t>(lo32(p.a0));
        word.a = p.b0;
        word.b = p.b1;
        word.quantum = ((lo32(p.a1) >> 1) & 1) != 0;
        std::uint32_t cksum = lo32(p.a1) >> 2;
        const bool was_rec = p.rec;
        in.partial.erase(seq);
        std::uint32_t expect = was_rec ? rec_data_checksum(seq, word, params_.checksum_salt)
                                       : data_checksum(seq, word, params_.checksum_salt);
        if (cksum != expect) {
          return false;  // corrupted frame: discard, retransmission recovers it
        }
        Item item;
        item.kind = was_rec ? ItemKind::kRecData : ItemKind::kData;
        item.word = word;
        in.ready.emplace(seq, std::move(item));
        in.ack_dirty = true;
        return true;
      }
      case kRelFence: {
        std::uint32_t seq = hi32(w.a);
        if (!plausible_seq(in, seq)) return seq < in.next_expected || in.ready.count(seq)
                                                ? (in.ack_dirty = true)
                                                : false;
        bool final = ((lo32(w.a) >> 1) & 1) != 0;
        auto round = static_cast<std::size_t>(w.b);
        if (lo32(w.a) >> 2 != fence_checksum(seq, round, final, params_.checksum_salt)) {
          return false;
        }
        Item item;
        item.kind = ItemKind::kFence;
        item.fence_round = round;
        item.fence_final = final;
        in.ready.emplace(seq, std::move(item));
        in.ack_dirty = true;
        return true;
      }
      case kRelRecReq: {
        std::uint32_t seq = hi32(w.a);
        if (!plausible_seq(in, seq)) return seq < in.next_expected || in.ready.count(seq)
                                                ? (in.ack_dirty = true)
                                                : false;
        std::size_t from = hi32(w.b);
        std::size_t to = lo32(w.b);
        if (lo32(w.a) >> 2 != rec_req_checksum(seq, from, to, params_.checksum_salt)) {
          return false;  // corrupted; the peer's retransmission recovers it
        }
        Item item;
        item.kind = ItemKind::kRecReq;
        item.rec_a = from;
        item.rec_b = to;
        in.ready.emplace(seq, std::move(item));
        in.ack_dirty = true;
        return true;
      }
      case kRelRecHdr: {
        std::uint32_t seq = hi32(w.a);
        if (!plausible_seq(in, seq)) return seq < in.next_expected || in.ready.count(seq)
                                                ? (in.ack_dirty = true)
                                                : false;
        std::size_t round = hi32(w.b);
        std::uint32_t count = lo32(w.b);
        if (lo32(w.a) >> 2 != rec_hdr_checksum(seq, round, count, params_.checksum_salt)) {
          return false;
        }
        Item item;
        item.kind = ItemKind::kRecHdr;
        item.rec_a = round;
        item.rec_b = count;
        in.ready.emplace(seq, std::move(item));
        in.ack_dirty = true;
        return true;
      }
      case kRelPoll: {
        auto round = static_cast<std::size_t>(w.b);
        if (hi32(w.a) != 0 ||
            lo32(w.a) >> 2 != poll_checksum(round, params_.checksum_salt)) {
          return false;  // corrupted poll; the peer re-polls on its timer
        }
        out.demanded = std::max(out.demanded, static_cast<std::int64_t>(round));
        return true;
      }
      default:
        return false;  // not a link-layer chunk; ignore
    }
  }

  /// A fresh, in-window sequence number. Duplicates and garbage (corrupted
  /// sequence bits far outside the window) are handled by the caller.
  bool plausible_seq(const InLink& in, std::uint32_t seq) const {
    if (seq < in.next_expected) return false;                        // duplicate
    if (seq >= in.next_expected + 4 * params_.window) return false;  // garbage
    return in.ready.find(seq) == in.ready.end();                     // duplicate
  }

  void drain_ready(std::size_t ni) {
    InLink& in = in_[ni];
    while (!in.ready.empty() && in.ready.begin()->first == in.next_expected) {
      Item item = std::move(in.ready.begin()->second);
      in.ready.erase(in.ready.begin());
      ++in.next_expected;
      in.ack_dirty = true;
      switch (item.kind) {
        case ItemKind::kFence:
          // Stream order guarantees all data belonging to rounds <=
          // fence_round precedes the fence; buffered words belong to exactly
          // fence_round.
          if (!in.unfenced_words.empty()) {
            auto& bucket = in.words_by_round[item.fence_round];
            bucket.insert(bucket.end(), in.unfenced_words.begin(),
                          in.unfenced_words.end());
            in.unfenced_words.clear();
          }
          in.fenced_round =
              std::max(in.fenced_round, static_cast<std::int64_t>(item.fence_round));
          if (item.fence_final) in.final_seen = true;
          break;
        case ItemKind::kData:
          if (inner_halted_) {
            throw std::logic_error("Engine: message delivered to a halted node");
          }
          in.unfenced_words.push_back(item.word);
          break;
        case ItemKind::kRecReq:
          respond_state_transfer(ni, item.rec_a, item.rec_b);
          break;
        case ItemKind::kRecHdr:
          on_rec_header(ni, item.rec_a, item.rec_b);
          break;
        case ItemKind::kRecData:
          on_rec_word(ni, item.word);
          break;
      }
    }
  }

  // --- Neighbor-assisted state transfer (amnesia recovery) ---------------

  /// Responder side: a recovering neighbor asked for our sends of rounds
  /// [from, to). Works even while we are recovering ourselves — the send
  /// log is link state, not program state.
  void respond_state_transfer(std::size_t ni, std::size_t from, std::size_t to) {
    OutLink& out = out_[ni];
    for (std::size_t r = from; r < to; ++r) {
      Item hdr;
      hdr.kind = ItemKind::kRecHdr;
      hdr.rec_a = r;
      if (r < out.log_floor) {
        // Pruned beyond reach — unreachable under the documented margin, but
        // answered honestly so the requester dies loudly instead of
        // replaying wrong inboxes.
        hdr.rec_b = kRecUnavailable;
        enqueue_item(ni, std::move(hdr));
        continue;
      }
      auto it = out.sent_log.find(r);
      const std::vector<Word>* words =
          it == out.sent_log.end() ? nullptr : &it->second;
      hdr.rec_b = words == nullptr ? 0 : words->size();
      enqueue_item(ni, std::move(hdr));
      if (words == nullptr) continue;
      for (const Word& w : *words) {
        Item data;
        data.kind = ItemKind::kRecData;
        data.word = w;
        enqueue_item(ni, std::move(data));
      }
    }
  }

  void on_rec_header(std::size_t ni, std::size_t round, std::size_t count) {
    RecState& rs = rec_[ni];
    if (count == kRecUnavailable) {
      if (recovering_ && rs.pending) recovery_failed_ = true;
      rs.open_left = 0;
      return;
    }
    if (!recovering_ || !rs.pending || round < req_lo_ || round >= req_hi_ ||
        rs.expected.count(round) != 0) {
      // A response to a superseded request (e.g. a second amnesia crash hit
      // before the first recovery's data fully arrived). Its words are
      // byte-identical to what the current request will deliver for the same
      // round, so consuming them into the void is safe.
      rs.open_round = round;
      rs.open_left = count;
      rs.discard = true;
      return;
    }
    rs.expected[round] = count;
    rs.open_round = round;
    rs.open_left = count;
    rs.discard = false;
  }

  void on_rec_word(std::size_t ni, const Word& w) {
    RecState& rs = rec_[ni];
    if (rs.open_left == 0) return;  // stray word; nothing claims it
    --rs.open_left;
    if (!rs.discard) rs.words[rs.open_round].push_back(w);
  }

  /// Once every link delivered its full [req_lo_, req_hi_) response, replay.
  void try_finish_recovery() {
    for (const RecState& rs : rec_) {
      if (!rs.pending) continue;
      if (rs.expected.size() != req_hi_ - req_lo_) return;
      if (rs.open_left != 0) return;  // the last header's words still inbound
    }
    do_replay();
  }

  /// Re-execute rounds [replay_from_, replay_to_) on the reconstructed inner
  /// program, feeding each round the inbox rebuilt from the neighbors'
  /// replayed send logs (round r consumes sends of round r - 1, exactly like
  /// execute_round does from words_by_round). Recoverable programs draw no
  /// randomness and the link layer delivered the original words verbatim, so
  /// the replay lands exactly on the pre-crash trajectory: next_round_,
  /// momentum_, halting, and fence levels all re-derive their surviving
  /// values, and the normal execute loop resumes seamlessly.
  void do_replay() {
    replay_mode_ = true;
    for (std::size_t r = replay_from_; r < replay_to_; ++r) {
      std::vector<Message> inbox;
      if (r > 0) {
        for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
          auto it = rec_[ni].words.find(r - 1);
          if (it == rec_[ni].words.end()) continue;
          for (const Word& w : it->second) inbox.push_back(Message{adj_[ni], w});
        }
      }
      run_inner(r, inbox);
    }
    replay_mode_ = false;
    recovering_ = false;
    for (RecState& rs : rec_) rs = RecState{};
    engine_->note_recovery_activity();
  }

  void transmit(Context& ctx, std::size_t now) {
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
      std::size_t budget = ctx.bandwidth();
      NodeId peer = adj_[ni];
      InLink& in = in_[ni];
      OutLink& out = out_[ni];

      if (budget > 0 && in.ack_dirty) {
        std::uint32_t cksum = ack_checksum(in.next_expected, params_.checksum_salt);
        ctx.send(peer, Word{kRelAck, pack(0, cksum << 2),
                            static_cast<std::int64_t>(in.next_expected), false});
        in.ack_dirty = false;
        --budget;
      }
      if (budget > 0 && in.poll_pending) {
        std::uint32_t cksum = poll_checksum(in.poll_target, params_.checksum_salt);
        ctx.send(peer, Word{kRelPoll, pack(0, cksum << 2),
                            static_cast<std::int64_t>(in.poll_target), false});
        in.poll_pending = false;
        --budget;
      }
      // Admit queued items into the sliding window (chunks go out as budget
      // allows, resuming across rounds via the chunks_sent cursor).
      while (!out.queue.empty() && out.inflight.size() < params_.window) {
        auto& [seq, item] = out.queue.front();
        InFlight fl;
        fl.item = std::move(item);
        fl.rto = params_.rto_rounds;
        fl.last_sent_round = now;
        out.inflight.emplace(seq, std::move(fl));
        out.queue.pop_front();
      }
      // In-flight frames, oldest first: finish initial transmissions and
      // restart timed-out ones with capped exponential backoff. The doubled
      // timeout is then jittered downward by a hash of (link, seq, attempt):
      // on a high-loss link every frame times out on the same schedule, and
      // without the jitter whole neighborhoods re-fire in the same round —
      // a synchronized retransmit storm that keeps colliding with itself.
      // Hash-derived jitter keeps the run seed-deterministic (no RNG draw).
      for (auto& [seq, fl] : out.inflight) {
        if (budget == 0) break;
        if (fl.fully_sent && now >= fl.last_sent_round + fl.rto) {
          fl.fully_sent = false;
          fl.chunks_sent = 0;
          std::size_t backoff = std::min(fl.rto * 2, params_.rto_cap);
          std::size_t spread = backoff / 4;
          if (spread > 1) {
            std::uint64_t h = mix64(
                mix64(params_.checksum_salt ^
                      (static_cast<std::uint64_t>(id_) << 40) ^
                      (static_cast<std::uint64_t>(peer) << 20) ^ seq) ^
                fl.rto);
            backoff -= static_cast<std::size_t>(h % spread);
          }
          fl.rto = backoff;
          engine_->note_retransmission();
        }
        while (budget > 0 && !fl.fully_sent) {
          ctx.send(peer, make_chunk(seq, fl.item, fl.chunks_sent));
          if (fl.item.is_recovery()) engine_->note_recovery_words(1);
          ++fl.chunks_sent;
          --budget;
          if (fl.chunks_sent == fl.item.chunk_count()) {
            fl.fully_sent = true;
            fl.last_sent_round = now;
          }
        }
      }
    }
  }

  Word make_chunk(std::uint32_t seq, const Item& item, std::size_t chunk) const {
    switch (item.kind) {
      case ItemKind::kFence: {
        std::uint32_t cksum = fence_checksum(seq, item.fence_round, item.fence_final,
                                             params_.checksum_salt);
        std::uint32_t lo = (cksum << 2) | (item.fence_final ? 2u : 0u);
        return Word{kRelFence, pack(seq, lo),
                    static_cast<std::int64_t>(item.fence_round), false};
      }
      case ItemKind::kRecReq: {
        std::uint32_t cksum =
            rec_req_checksum(seq, item.rec_a, item.rec_b, params_.checksum_salt);
        return Word{kRelRecReq, pack(seq, cksum << 2),
                    pack(static_cast<std::uint32_t>(item.rec_a),
                         static_cast<std::uint32_t>(item.rec_b)),
                    false};
      }
      case ItemKind::kRecHdr: {
        auto count = static_cast<std::uint32_t>(item.rec_b);
        std::uint32_t cksum =
            rec_hdr_checksum(seq, item.rec_a, count, params_.checksum_salt);
        return Word{kRelRecHdr, pack(seq, cksum << 2),
                    pack(static_cast<std::uint32_t>(item.rec_a), count), false};
      }
      case ItemKind::kData:
      case ItemKind::kRecData:
        break;
    }
    const bool rec = item.kind == ItemKind::kRecData;
    const Word& w = item.word;
    if (chunk == 0) {
      return Word{rec ? kRelRecW0 : kRelData0,
                  pack(seq, static_cast<std::uint32_t>(w.tag)), w.a, w.quantum};
    }
    std::uint32_t cksum = rec ? rec_data_checksum(seq, w, params_.checksum_salt)
                              : data_checksum(seq, w, params_.checksum_salt);
    std::uint32_t lo = (cksum << 2) | (w.quantum ? 2u : 0u);
    return Word{rec ? kRelRecW1 : kRelData1, pack(seq, lo), w.b, w.quantum};
  }

  bool link_work_pending() const {
    for (std::size_t ni = 0; ni < adj_.size(); ++ni) {
      if (!out_[ni].queue.empty() || !out_[ni].inflight.empty()) return true;
      if (in_[ni].ack_dirty || in_[ni].poll_pending) return true;
    }
    return false;
  }

  NodeProgram* inner_;
  Engine* engine_;
  ReliableParams params_;
  bool initialized_ = false;
  NodeId id_ = 0;
  std::vector<NodeId> adj_;
  std::unordered_map<NodeId, std::size_t> peer_index_;
  std::vector<OutLink> out_;
  std::vector<InLink> in_;

  ReliableContext inner_ctx_;
  std::size_t next_round_ = 0;  // next inner round to execute
  bool inner_halted_ = false;
  bool inner_keep_alive_ = false;
  bool sent_any_ = false;
  bool momentum_ = false;  // last executed round sent something
  bool final_fence_sent_ = false;
  std::vector<std::size_t> sent_this_vround_;
  std::vector<std::int64_t> fenced_up_to_;

  // Amnesia-recovery state.
  bool recovery_logging_ = false;  // engine recovery enabled (cached)
  bool recovering_ = false;        // awaiting state transfer, inner paused
  bool recovery_failed_ = false;   // unreachable logs: node goes silent
  bool replay_mode_ = false;       // inside do_replay: sends stay off-wire
  std::size_t replay_from_ = 0;    // first round to re-execute
  std::size_t replay_to_ = 0;      // one past the last (pre-crash next_round_)
  std::size_t req_lo_ = 0;         // requested send-round range [lo, hi)
  std::size_t req_hi_ = 0;
  std::vector<RecState> rec_;      // per-link receive state
};

void ReliableContext::send(NodeId to, Word word) { owner_->inner_send(to, word); }
void ReliableContext::halt() { owner_->inner_halt(); }
void ReliableContext::keep_alive() { owner_->inner_keep_alive(); }

}  // namespace

std::vector<std::unique_ptr<NodeProgram>> wrap_reliable(
    std::span<const std::unique_ptr<NodeProgram>> programs, Engine& engine,
    const ReliableParams& params) {
  std::vector<std::unique_ptr<NodeProgram>> wrapped;
  wrapped.reserve(programs.size());
  for (const auto& program : programs) {
    wrapped.push_back(std::make_unique<ReliableProgram>(*program, engine, params));
  }
  return wrapped;
}

}  // namespace qcongest::net
