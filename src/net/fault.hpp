#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/net/graph.hpp"

namespace qcongest::net {

/// Per-word fault probabilities on a directed link. All probabilities are
/// independent per word: a word is first subjected to the drop lottery; a
/// surviving word may be corrupted (random payload bit flips) and/or
/// duplicated (a second copy of the — possibly corrupted — word arrives).
/// Corruption never touches the protocol tag: headers are assumed to be
/// protected by heavier coding, the standard link-layer fault model.
struct FaultRates {
  double drop = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;

  bool any() const { return drop > 0.0 || corrupt > 0.0 || duplicate > 0.0; }
};

/// A scheduled node outage. The node executes no rounds in
/// [crash_round, restart_round): its program is not invoked and every word
/// that would arrive in that window is dropped (counted as dropped_words).
/// By default program state is preserved across the outage (crash-restart);
/// with restart_round == kNeverRestarts the node is crash-stopped for the
/// rest of the run. Rounds are the values Context::round() reports.
struct CrashEvent {
  static constexpr std::size_t kNeverRestarts = static_cast<std::size_t>(-1);

  NodeId node = 0;
  std::size_t crash_round = 0;
  std::size_t restart_round = kNeverRestarts;
  /// Crash-with-amnesia: at restart the node's volatile program state is
  /// destroyed and a fresh program is reconstructed from the run's program
  /// factory. The node survives only if recovery is enabled
  /// (Engine::set_recovery) — restoring its last checkpoint and replaying
  /// forward with neighbor-assisted state transfer (see src/recover and
  /// DESIGN.md §11); otherwise the restart leaves it effectively
  /// crash-stopped. Meaningless combined with kNeverRestarts.
  bool amnesia = false;
};

/// A deterministic, seeded fault schedule for one engine. The fault lottery
/// uses its own RNG (seeded from `seed`), independent of the node RNGs, so
/// identical (plan, engine seed, programs) triples reproduce bit-identical
/// RunResults including every fault counter. A plan whose rates are all zero
/// and whose crash list is empty is exactly the perfect network: the engine
/// takes the unfaulted fast path and all counters stay zero.
struct FaultPlan {
  /// Default rates applied to every directed edge.
  FaultRates link;
  /// Per-directed-edge overrides (from, to) -> rates; replaces `link` for
  /// that direction only.
  std::vector<std::pair<std::pair<NodeId, NodeId>, FaultRates>> edge_overrides;
  /// Scheduled outages. Multiple events per node are allowed as long as
  /// their [crash, restart) windows are disjoint.
  std::vector<CrashEvent> crashes;
  /// Seed of the fault lottery.
  std::uint64_t seed = 0x0fa17ab1e5eedULL;

  /// True when the plan can affect a run at all.
  bool active() const;

  /// Throws std::invalid_argument on out-of-range probabilities, unknown
  /// nodes, or overlapping crash windows.
  void validate(std::size_t num_nodes) const;
};

}  // namespace qcongest::net
