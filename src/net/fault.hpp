#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/net/graph.hpp"
#include "src/util/rng.hpp"

namespace qcongest::net {

/// Per-word fault probabilities on a directed link. All probabilities are
/// independent per word: a word is first subjected to the drop lottery; a
/// surviving word may be corrupted (random payload bit flips) and/or
/// duplicated (a second copy of the — possibly corrupted — word arrives).
/// Corruption never touches the protocol tag: headers are assumed to be
/// protected by heavier coding, the standard link-layer fault model.
struct FaultRates {
  double drop = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;

  bool any() const { return drop > 0.0 || corrupt > 0.0 || duplicate > 0.0; }
};

/// A scheduled node outage. The node executes no rounds in
/// [crash_round, restart_round): its program is not invoked and every word
/// that would arrive in that window is dropped (counted as dropped_words).
/// By default program state is preserved across the outage (crash-restart);
/// with restart_round == kNeverRestarts the node is crash-stopped for the
/// rest of the run. Rounds are the values Context::round() reports.
struct CrashEvent {
  static constexpr std::size_t kNeverRestarts = static_cast<std::size_t>(-1);

  NodeId node = 0;
  std::size_t crash_round = 0;
  std::size_t restart_round = kNeverRestarts;
  /// Crash-with-amnesia: at restart the node's volatile program state is
  /// destroyed and a fresh program is reconstructed from the run's program
  /// factory. The node survives only if recovery is enabled
  /// (Engine::set_recovery) — restoring its last checkpoint and replaying
  /// forward with neighbor-assisted state transfer (see src/recover and
  /// DESIGN.md §11); otherwise the restart leaves it effectively
  /// crash-stopped. Meaningless combined with kNeverRestarts.
  bool amnesia = false;
};

/// A deterministic, seeded fault schedule for one engine. The fault lottery
/// uses its own RNG (seeded from `seed`), independent of the node RNGs, so
/// identical (plan, engine seed, programs) triples reproduce bit-identical
/// RunResults including every fault counter. A plan whose rates are all zero
/// and whose crash list is empty is exactly the perfect network: the engine
/// takes the unfaulted fast path and all counters stay zero.
struct FaultPlan {
  /// Default rates applied to every directed edge.
  FaultRates link;
  /// Per-directed-edge overrides (from, to) -> rates; replaces `link` for
  /// that direction only.
  std::vector<std::pair<std::pair<NodeId, NodeId>, FaultRates>> edge_overrides;
  /// Scheduled outages. Multiple events per node are allowed as long as
  /// their [crash, restart) windows are disjoint.
  std::vector<CrashEvent> crashes;
  /// Seed of the fault lottery.
  std::uint64_t seed = 0x0fa17ab1e5eedULL;

  /// True when the plan can affect a run at all.
  bool active() const;

  /// Throws std::invalid_argument on out-of-range probabilities, unknown
  /// nodes, or overlapping crash windows.
  void validate(std::size_t num_nodes) const;
};

/// Batched per-edge fault lottery.
///
/// One independent raw-u64 stream per directed edge slot, forked in slot
/// order from the plan seed — an edge's draws depend only on its own
/// traffic order, never on how sends across edges interleave, which is the
/// property that keeps faulty runs byte-identical between the serial and
/// sharded engine paths. Each stream pre-generates draws in blocks of
/// kBatch into a reusable flat buffer, so the per-(edge, round) cost in the
/// delivery loop is an index bump and a compare instead of a
/// std::bernoulli_distribution construction; the k-th draw of a slot is the
/// same number whether it was buffered or generated on demand.
///
/// Bernoulli trials are fixed-point: a draw fires when the raw u64 is
/// below threshold(p) = round-down(p * 2^64). p <= 0 and p >= 1
/// short-circuit without consuming a draw, preserving the guarantee that a
/// plan with all-zero rates leaves every counter and stream byte-identical
/// to the unfaulted engine.
class FaultLottery {
 public:
  static constexpr std::size_t kBatch = 16;
  static constexpr std::uint64_t kNever = 0;
  static constexpr std::uint64_t kAlways = ~std::uint64_t{0};

  /// Fixed-point threshold for probability p (see class comment). Values
  /// that would collide with the kAlways sentinel clamp one below it.
  static std::uint64_t threshold(double p);

  /// Fork `slots` per-edge streams from `seed` and mark all buffers empty.
  void reset(std::uint64_t seed, std::size_t slots);
  void clear();

  /// Bernoulli trial on `slot`'s stream. kNever / kAlways short-circuit
  /// without consuming a draw.
  bool draw(std::size_t slot, std::uint64_t threshold) {
    if (threshold == kNever) return false;
    if (threshold == kAlways) return true;
    return draw_raw(slot) < threshold;
  }

  /// Next raw u64 of `slot`'s stream (e.g. for corrupt-bit selection).
  std::uint64_t draw_raw(std::size_t slot) {
    std::uint32_t& pos = pos_[slot];
    if (pos == kBatch) refill(slot);
    return buffer_[slot * kBatch + pos++];
  }

 private:
  void refill(std::size_t slot);  // bulk-generate kBatch draws, pos -> 0

  std::vector<util::Rng> streams_;     // one per directed edge slot
  std::vector<std::uint64_t> buffer_;  // slots x kBatch raw draws
  std::vector<std::uint32_t> pos_;     // next unconsumed; kBatch = empty
};

}  // namespace qcongest::net
