#pragma once

#include <cstdint>

#include "src/net/graph.hpp"

namespace qcongest::net {

/// One CONGEST message word.
///
/// The CONGEST model allows O(log n) bits per edge per round. We account in
/// *words*: one word is Theta(log n) bits — enough for a constant number of
/// identifiers / values — and the engine enforces a per-edge per-direction
/// budget of `bandwidth` words per round (1 by default). Quantum CONGEST
/// words carry Theta(log n) qubits instead; the `quantum` flag only affects
/// the statistics (and honesty of the model), not the scheduling.
struct Word {
  std::int32_t tag = 0;   // protocol-level multiplexing tag
  std::int64_t a = 0;     // first payload field (e.g. an id or a value)
  std::int64_t b = 0;     // second payload field
  bool quantum = false;

  friend bool operator==(const Word&, const Word&) = default;
};

/// A word in flight, annotated with its sender.
struct Message {
  NodeId from = 0;
  Word word;
};

}  // namespace qcongest::net
