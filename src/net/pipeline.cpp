#include "src/net/pipeline.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>

namespace qcongest::net {

namespace {

constexpr std::int32_t kTagDown = 10;
constexpr std::int32_t kTagConv = 11;
constexpr std::int32_t kTagConvPad = 12;

/// Streams the root's payload down the tree. In pipelined mode a word is
/// forwarded the round after it arrives; in unpipelined mode a node waits
/// for the full payload first.
class DowncastProgram final : public NodeProgram {
 public:
  DowncastProgram(const BfsTree& tree, const std::vector<std::int64_t>* payload,
                  bool quantum, bool pipelined)
      : tree_(&tree), payload_(payload), quantum_(quantum), pipelined_(pipelined) {}

  const std::vector<std::int64_t>& received() const { return received_; }

  void on_round(Context& ctx, const std::vector<Message>& inbox) override {
    const NodeId v = ctx.id();
    if (v == tree_->root && received_.empty() && ctx.round() == 0) {
      received_ = *payload_;  // the root "receives" its own payload at once
    }
    for (const Message& m : inbox) {
      if (m.word.tag == kTagDown) {
        if (static_cast<std::size_t>(m.word.a) != received_.size()) {
          throw std::logic_error("downcast: word out of order");
        }
        received_.push_back(m.word.b);
      }
    }
    // Forward the next word(s) to every child once eligible — up to B words
    // per edge per round in the CONGEST(B) model.
    for (std::size_t budget = ctx.bandwidth(); budget > 0; --budget) {
      bool eligible = pipelined_ ? next_to_send_ < received_.size()
                                 : received_.size() == payload_->size();
      if (!eligible || next_to_send_ >= received_.size()) break;
      for (NodeId c : tree_->children[v]) {
        ctx.send(c, Word{kTagDown, static_cast<std::int64_t>(next_to_send_),
                         received_[next_to_send_], quantum_});
      }
      ++next_to_send_;
    }
  }

  bool snapshot(std::vector<std::int64_t>& out) const override {
    out.push_back(static_cast<std::int64_t>(next_to_send_));
    out.push_back(static_cast<std::int64_t>(received_.size()));
    out.insert(out.end(), received_.begin(), received_.end());
    return true;
  }

  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    if (version != 1 || words.size() < 2) return false;
    auto count = static_cast<std::size_t>(words[1]);
    if (words.size() != 2 + count) return false;
    next_to_send_ = static_cast<std::size_t>(words[0]);
    received_.assign(words.begin() + 2, words.end());
    return true;
  }

  std::uint32_t state_version() const override { return 1; }

 private:
  const BfsTree* tree_;
  const std::vector<std::int64_t>* payload_;
  bool quantum_;    // qlint-allow(unsnapshotted-state): factory-reconstructed config
  bool pipelined_;  // qlint-allow(unsnapshotted-state): factory-reconstructed config
  std::vector<std::int64_t> received_;
  std::size_t next_to_send_ = 0;
};

DowncastResult run_downcast(Engine& engine, const BfsTree& tree,
                            const std::vector<std::int64_t>& payload, bool quantum,
                            bool pipelined) {
  const std::size_t n = engine.graph().num_nodes();
  if (payload.empty()) throw std::invalid_argument("downcast: empty payload");
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(
        std::make_unique<DowncastProgram>(tree, &payload, quantum, pipelined));
  }
  engine.set_program_factory([&tree, &payload, quantum, pipelined](NodeId) {
    return std::make_unique<DowncastProgram>(tree, &payload, quantum, pipelined);
  });
  DowncastResult result;
  std::size_t limit = (tree.height + 2) * (payload.size() + 2) + 16;
  result.cost = engine.run(programs, limit);
  if (!result.cost.completed) throw std::logic_error("downcast: did not complete");
  result.received.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = static_cast<DowncastProgram&>(*programs[v]);
    if (p.received().size() != payload.size()) {
      throw std::logic_error("downcast: node missed words");
    }
    result.received.push_back(p.received());
  }
  return result;
}

/// Aggregating convergecast. Each node owns one value per item; once all
/// children have delivered their (full, value_words-wide) aggregate for item
/// i, the node combines and enqueues item i for its parent. One word per
/// round flows on each tree edge; items are pipelined, chunks of one item
/// are not combinable until complete.
class ConvergecastProgram final : public NodeProgram {
 public:
  ConvergecastProgram(const BfsTree& tree, std::vector<std::int64_t> own,
                      std::size_t value_words, const CombineOp* op, bool quantum)
      : tree_(&tree),
        acc_(std::move(own)),
        value_words_(value_words),
        op_(op),
        quantum_(quantum),
        children_done_(acc_.size(), 0),
        chunks_seen_(acc_.size()) {}

  const std::vector<std::int64_t>& totals() const { return acc_; }

  void on_round(Context& ctx, const std::vector<Message>& inbox) override {
    const NodeId v = ctx.id();
    const std::size_t num_children = tree_->children[v].size();

    for (const Message& m : inbox) {
      if (m.word.tag == kTagConv) {
        auto item = static_cast<std::size_t>(m.word.a);
        pending_value_[m.from] = m.word.b;
        note_chunk(m.from, item);
      } else if (m.word.tag == kTagConvPad) {
        note_chunk(m.from, static_cast<std::size_t>(m.word.a));
      }
    }

    // Enqueue (in item order) every item whose children contributions are
    // complete. Leaves enqueue everything in round 0.
    while (next_ready_ < acc_.size() && children_done_[next_ready_] == num_children) {
      if (v != tree_->root) {
        outbox_.push_back(Word{kTagConv, static_cast<std::int64_t>(next_ready_),
                               acc_[next_ready_], quantum_});
        for (std::size_t c = 1; c < value_words_; ++c) {
          outbox_.push_back(Word{kTagConvPad, static_cast<std::int64_t>(next_ready_),
                                 static_cast<std::int64_t>(c), quantum_});
        }
      }
      ++next_ready_;
    }

    for (std::size_t budget = ctx.bandwidth(); budget > 0 && !outbox_.empty();
         --budget) {
      ctx.send(tree_->parent[v], outbox_.front());
      outbox_.pop_front();
    }
  }

  // Unordered maps are serialized with keys sorted so the byte stream is
  // independent of hash-table iteration order; on_round only ever looks the
  // maps up by key, so the rebuilt layout is observationally identical.
  bool snapshot(std::vector<std::int64_t>& out) const override {
    const std::size_t items = acc_.size();
    out.push_back(static_cast<std::int64_t>(items));
    out.insert(out.end(), acc_.begin(), acc_.end());
    for (std::size_t done : children_done_) {
      out.push_back(static_cast<std::int64_t>(done));
    }
    out.push_back(static_cast<std::int64_t>(next_ready_));
    for (const auto& per_child : chunks_seen_) {  // qlint-allow(unordered-iter): iterates the outer vector, one map per child; each map's entries are sorted below before use
      std::vector<std::pair<NodeId, std::size_t>> entries(
          per_child.begin(), per_child.end());  // qlint-allow(unordered-iter): sorted next line
      std::sort(entries.begin(), entries.end());
      out.push_back(static_cast<std::int64_t>(entries.size()));
      for (const auto& [child, seen] : entries) {
        out.push_back(static_cast<std::int64_t>(child));
        out.push_back(static_cast<std::int64_t>(seen));
      }
    }
    std::vector<std::pair<NodeId, std::int64_t>> sorted_pending(
        pending_value_.begin(), pending_value_.end());  // qlint-allow(unordered-iter): sorted next line
    std::sort(sorted_pending.begin(), sorted_pending.end());
    out.push_back(static_cast<std::int64_t>(sorted_pending.size()));
    for (const auto& [child, value] : sorted_pending) {
      out.push_back(static_cast<std::int64_t>(child));
      out.push_back(value);
    }
    out.push_back(static_cast<std::int64_t>(outbox_.size()));
    for (const Word& w : outbox_) {
      out.push_back(w.tag);
      out.push_back(w.a);
      out.push_back(w.b);
      out.push_back(w.quantum ? 1 : 0);
    }
    return true;
  }

  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    if (version != 1) return false;
    std::size_t pos = 0;
    auto take = [&](std::int64_t& out) {
      if (pos >= words.size()) return false;
      out = words[pos++];
      return true;
    };
    std::int64_t w = 0;
    if (!take(w) || static_cast<std::size_t>(w) != acc_.size()) return false;
    const std::size_t items = acc_.size();
    std::vector<std::int64_t> acc(items);
    std::vector<std::size_t> done(items);
    for (std::size_t i = 0; i < items; ++i) {
      if (!take(acc[i])) return false;
    }
    for (std::size_t i = 0; i < items; ++i) {
      if (!take(w)) return false;
      done[i] = static_cast<std::size_t>(w);
    }
    if (!take(w)) return false;
    const auto next_ready = static_cast<std::size_t>(w);
    std::vector<std::unordered_map<NodeId, std::size_t>> chunks(items);
    for (std::size_t i = 0; i < items; ++i) {
      if (!take(w)) return false;
      for (auto entries = static_cast<std::size_t>(w); entries > 0; --entries) {
        std::int64_t child = 0;
        std::int64_t seen = 0;
        if (!take(child) || !take(seen)) return false;
        chunks[i][static_cast<NodeId>(child)] = static_cast<std::size_t>(seen);
      }
    }
    std::unordered_map<NodeId, std::int64_t> pending;
    if (!take(w)) return false;
    for (auto entries = static_cast<std::size_t>(w); entries > 0; --entries) {
      std::int64_t child = 0;
      std::int64_t value = 0;
      if (!take(child) || !take(value)) return false;
      pending[static_cast<NodeId>(child)] = value;
    }
    if (!take(w)) return false;
    std::deque<Word> outbox;
    for (auto entries = static_cast<std::size_t>(w); entries > 0; --entries) {
      std::int64_t tag = 0;
      std::int64_t a = 0;
      std::int64_t b = 0;
      std::int64_t quantum = 0;
      if (!take(tag) || !take(a) || !take(b) || !take(quantum)) return false;
      outbox.push_back(Word{static_cast<std::int32_t>(tag), a, b, quantum != 0});
    }
    if (pos != words.size()) return false;
    acc_ = std::move(acc);
    children_done_ = std::move(done);
    next_ready_ = next_ready;
    chunks_seen_ = std::move(chunks);
    pending_value_ = std::move(pending);
    outbox_ = std::move(outbox);
    return true;
  }

  std::uint32_t state_version() const override { return 1; }

 private:
  void note_chunk(NodeId child, std::size_t item) {
    if (item >= acc_.size()) throw std::logic_error("convergecast: bad item");
    std::size_t seen = ++chunks_seen_[item][child];
    if (seen == value_words_) {
      acc_[item] = (*op_)(acc_[item], pending_value_[child]);
      ++children_done_[item];
    }
  }

  const BfsTree* tree_;
  std::vector<std::int64_t> acc_;
  std::size_t value_words_;  // qlint-allow(unsnapshotted-state): factory-reconstructed config
  const CombineOp* op_;
  bool quantum_;  // qlint-allow(unsnapshotted-state): factory-reconstructed config
  std::vector<std::size_t> children_done_;
  std::vector<std::unordered_map<NodeId, std::size_t>> chunks_seen_;
  std::unordered_map<NodeId, std::int64_t> pending_value_;
  std::size_t next_ready_ = 0;
  std::deque<Word> outbox_;
};

}  // namespace

DowncastResult pipelined_downcast(Engine& engine, const BfsTree& tree,
                                  const std::vector<std::int64_t>& payload,
                                  bool quantum) {
  return run_downcast(engine, tree, payload, quantum, /*pipelined=*/true);
}

DowncastResult unpipelined_downcast(Engine& engine, const BfsTree& tree,
                                    const std::vector<std::int64_t>& payload,
                                    bool quantum) {
  return run_downcast(engine, tree, payload, quantum, /*pipelined=*/false);
}

ConvergecastResult pipelined_convergecast(
    Engine& engine, const BfsTree& tree,
    const std::vector<std::vector<std::int64_t>>& values, std::size_t value_words,
    const CombineOp& op, bool quantum) {
  const std::size_t n = engine.graph().num_nodes();
  if (values.size() != n) {
    throw std::invalid_argument("convergecast: one value vector per node");
  }
  if (value_words == 0) throw std::invalid_argument("convergecast: value_words 0");
  const std::size_t items = values[0].size();
  for (const auto& v : values) {
    if (v.size() != items) {
      throw std::invalid_argument("convergecast: item count mismatch");
    }
  }
  if (items == 0) throw std::invalid_argument("convergecast: no items");

  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(std::make_unique<ConvergecastProgram>(tree, values[v],
                                                             value_words, &op, quantum));
  }
  engine.set_program_factory([&tree, &values, value_words, &op, quantum](NodeId v) {
    return std::make_unique<ConvergecastProgram>(tree, values[v], value_words, &op,
                                                 quantum);
  });
  ConvergecastResult result;
  std::size_t limit = (tree.height + items + 2) * (value_words + 1) * 2 + 16;
  result.cost = engine.run(programs, limit);
  if (!result.cost.completed) throw std::logic_error("convergecast: did not complete");
  result.totals = static_cast<ConvergecastProgram&>(*programs[tree.root]).totals();
  return result;
}

}  // namespace qcongest::net
