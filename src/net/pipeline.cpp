#include "src/net/pipeline.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace qcongest::net {

namespace {

constexpr std::int32_t kTagDown = 10;
constexpr std::int32_t kTagConv = 11;
constexpr std::int32_t kTagConvPad = 12;

/// Streams the root's payload down the tree. In pipelined mode a word is
/// forwarded the round after it arrives; in unpipelined mode a node waits
/// for the full payload first.
class DowncastProgram final : public NodeProgram {
 public:
  DowncastProgram(const BfsTree& tree, const std::vector<std::int64_t>* payload,
                  bool quantum, bool pipelined)
      : tree_(&tree), payload_(payload), quantum_(quantum), pipelined_(pipelined) {
    received_.reserve(payload->size());
  }

  /// Reset to a fresh round-0 state for a new run (pooled reuse); retains
  /// the received_ capacity so steady-state runs allocate nothing.
  void reinit(const BfsTree& tree, const std::vector<std::int64_t>* payload,
              bool quantum, bool pipelined) {
    tree_ = &tree;
    payload_ = payload;
    quantum_ = quantum;
    pipelined_ = pipelined;
    received_.clear();
    received_.reserve(payload->size());
    next_to_send_ = 0;
  }

  const std::vector<std::int64_t>& received() const { return received_; }

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    const NodeId v = ctx.id();
    if (v == tree_->root && received_.empty() && ctx.round() == 0) {
      received_ = *payload_;  // the root "receives" its own payload at once
    }
    for (const Message& m : inbox) {
      if (m.word.tag == kTagDown) {
        if (static_cast<std::size_t>(m.word.a) != received_.size()) {
          throw std::logic_error("downcast: word out of order");
        }
        received_.push_back(m.word.b);
      }
    }
    // Forward the next word(s) to every child once eligible — up to B words
    // per edge per round in the CONGEST(B) model.
    for (std::size_t budget = ctx.bandwidth(); budget > 0; --budget) {
      bool eligible = pipelined_ ? next_to_send_ < received_.size()
                                 : received_.size() == payload_->size();
      if (!eligible || next_to_send_ >= received_.size()) break;
      for (NodeId c : tree_->children[v]) {
        ctx.send(c, Word{kTagDown, static_cast<std::int64_t>(next_to_send_),
                         received_[next_to_send_], quantum_});
      }
      ++next_to_send_;
    }
    // Received and forwarded everything: nothing can arrive here again
    // (the parent sends exactly |payload| words), so drop out of the
    // schedule instead of idling until the deepest leaf finishes. The pass
    // count and message schedule are untouched — only idle on_round calls
    // disappear.
    if (received_.size() == payload_->size() &&
        next_to_send_ == received_.size()) {
      ctx.halt();
    }
  }

  bool snapshot(std::vector<std::int64_t>& out) const override {
    out.push_back(static_cast<std::int64_t>(next_to_send_));
    out.push_back(static_cast<std::int64_t>(received_.size()));
    out.insert(out.end(), received_.begin(), received_.end());
    return true;
  }

  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    if (version != 1 || words.size() < 2) return false;
    auto count = static_cast<std::size_t>(words[1]);
    if (words.size() != 2 + count) return false;
    next_to_send_ = static_cast<std::size_t>(words[0]);
    received_.assign(words.begin() + 2, words.end());
    return true;
  }

  std::uint32_t state_version() const override { return 1; }

 private:
  const BfsTree* tree_;
  const std::vector<std::int64_t>* payload_;
  bool quantum_;    // qlint-allow(unsnapshotted-state): factory-reconstructed config
  bool pipelined_;  // qlint-allow(unsnapshotted-state): factory-reconstructed config
  std::vector<std::int64_t> received_;
  std::size_t next_to_send_ = 0;
};

/// Rebind `ws` to `tree`, discarding pooled programs built for another tree
/// (or another node count — both pools are per-node arrays).
void bind_workspace(PipelineWorkspace& ws, const BfsTree& tree) {
  if (ws.bound_tree == &tree) return;
  ws.downcast_programs.clear();
  ws.convergecast_programs.clear();
  ws.bound_tree = &tree;
}

DowncastResult run_downcast(Engine& engine, const BfsTree& tree,
                            const std::vector<std::int64_t>& payload, bool quantum,
                            bool pipelined, PipelineWorkspace* ws,
                            bool collect_received) {
  const std::size_t n = engine.graph().num_nodes();
  if (payload.empty()) throw std::invalid_argument("downcast: empty payload");
  std::vector<std::unique_ptr<NodeProgram>> local;
  std::vector<std::unique_ptr<NodeProgram>>* programs = &local;
  if (ws != nullptr) {
    bind_workspace(*ws, tree);
    programs = &ws->downcast_programs;
  }
  if (programs->size() == n) {
    for (NodeId v = 0; v < n; ++v) {
      static_cast<DowncastProgram&>(*(*programs)[v])
          .reinit(tree, &payload, quantum, pipelined);
    }
  } else {
    programs->clear();
    programs->reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      programs->push_back(
          std::make_unique<DowncastProgram>(tree, &payload, quantum, pipelined));
    }
  }
  engine.set_program_factory([&tree, &payload, quantum, pipelined](NodeId) {
    return std::make_unique<DowncastProgram>(tree, &payload, quantum, pipelined);
  });
  DowncastResult result;
  std::size_t limit = (tree.height + 2) * (payload.size() + 2) + 16;
  result.cost = engine.run(*programs, limit);
  if (!result.cost.completed) throw std::logic_error("downcast: did not complete");
  if (collect_received) result.received.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = static_cast<DowncastProgram&>(*(*programs)[v]);
    if (p.received().size() != payload.size()) {
      throw std::logic_error("downcast: node missed words");
    }
    if (collect_received) result.received.push_back(p.received());
  }
  return result;
}

/// Aggregating convergecast. Each node owns one value per item; once all
/// children have delivered their (full, value_words-wide) aggregate for item
/// i, the node combines and enqueues item i for its parent. One word per
/// round flows on each tree edge; items are pipelined, chunks of one item
/// are not combinable until complete.
///
/// Per-child state lives in dense arrays indexed by the child's slot in a
/// sorted copy of the tree children list (the earlier hash-map layout
/// dominated the framework benchmarks' profile). The snapshot byte stream is
/// unchanged: entries are emitted sorted by child id, only for children that
/// have been touched, exactly as the sorted-map serialization did.
class ConvergecastProgram final : public NodeProgram {
 public:
  ConvergecastProgram(const BfsTree& tree, NodeId self, std::vector<std::int64_t> own,
                      std::size_t value_words, const CombineOp* op, bool quantum)
      : tree_(&tree),
        children_(tree.children[self]),
        acc_(std::move(own)),
        value_words_(value_words),
        op_(op),
        quantum_(quantum),
        children_done_(acc_.size(), 0),
        chunks_seen_(acc_.size() * children_.size(), 0),
        pending_value_(children_.size(), 0),
        pending_has_(children_.size(), 0) {
    std::sort(children_.begin(), children_.end());
  }

  /// Reset to a fresh round-0 state for a new run with new owned values
  /// (pooled reuse — same tree/node, so the children list is kept). All
  /// per-item/per-child arrays are reassigned in place, so steady-state runs
  /// with a stable item count allocate nothing.
  void reinit(const std::vector<std::int64_t>& own, std::size_t value_words,
              const CombineOp* op, bool quantum) {
    acc_.assign(own.begin(), own.end());
    value_words_ = value_words;
    op_ = op;
    quantum_ = quantum;
    children_done_.assign(acc_.size(), 0);
    chunks_seen_.assign(acc_.size() * children_.size(), 0);
    pending_value_.assign(children_.size(), 0);
    pending_has_.assign(children_.size(), 0);
    next_ready_ = 0;
    outbox_.clear();
    outbox_head_ = 0;
  }

  const std::vector<std::int64_t>& totals() const { return acc_; }

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    const NodeId v = ctx.id();
    const std::size_t num_children = children_.size();

    for (const Message& m : inbox) {
      if (m.word.tag == kTagConv) {
        auto item = static_cast<std::size_t>(m.word.a);
        const std::size_t slot = child_slot(m.from);
        pending_value_[slot] = m.word.b;
        pending_has_[slot] = 1;
        note_chunk(slot, item);
      } else if (m.word.tag == kTagConvPad) {
        note_chunk(child_slot(m.from), static_cast<std::size_t>(m.word.a));
      }
    }

    // Enqueue (in item order) every item whose children contributions are
    // complete. Leaves enqueue everything in round 0.
    while (next_ready_ < acc_.size() && children_done_[next_ready_] == num_children) {
      if (v != tree_->root) {
        outbox_.push_back(Word{kTagConv, static_cast<std::int64_t>(next_ready_),
                               acc_[next_ready_], quantum_});
        for (std::size_t c = 1; c < value_words_; ++c) {
          outbox_.push_back(Word{kTagConvPad, static_cast<std::int64_t>(next_ready_),
                                 static_cast<std::int64_t>(c), quantum_});
        }
      }
      ++next_ready_;
    }

    for (std::size_t budget = ctx.bandwidth();
         budget > 0 && outbox_head_ < outbox_.size(); --budget) {
      ctx.send(tree_->parent[v], outbox_[outbox_head_]);
      ++outbox_head_;
    }
    if (outbox_head_ == outbox_.size()) {
      outbox_.clear();
      outbox_head_ = 0;
    }
    // Every item combined and (for non-roots) forwarded: children have
    // halted before us — values only flow child to parent — so nothing can
    // arrive here again and the node can leave the schedule. Pass count and
    // message schedule are untouched.
    if (next_ready_ == acc_.size() && outbox_.empty()) {
      ctx.halt();
    }
  }

  // Per-child entries are serialized sorted by child id and only for touched
  // children, matching the byte stream the earlier sorted-map serialization
  // produced; on_round only ever looks per-child state up by child id, so
  // the rebuilt layout is observationally identical.
  bool snapshot(std::vector<std::int64_t>& out) const override {
    const std::size_t items = acc_.size();
    const std::size_t nc = children_.size();
    out.push_back(static_cast<std::int64_t>(items));
    out.insert(out.end(), acc_.begin(), acc_.end());
    for (std::size_t done : children_done_) {
      out.push_back(static_cast<std::int64_t>(done));
    }
    out.push_back(static_cast<std::int64_t>(next_ready_));
    for (std::size_t i = 0; i < items; ++i) {
      std::size_t touched = 0;
      for (std::size_t s = 0; s < nc; ++s) {
        if (chunks_seen_[i * nc + s] != 0) ++touched;
      }
      out.push_back(static_cast<std::int64_t>(touched));
      for (std::size_t s = 0; s < nc; ++s) {
        if (chunks_seen_[i * nc + s] == 0) continue;
        out.push_back(static_cast<std::int64_t>(children_[s]));
        out.push_back(static_cast<std::int64_t>(chunks_seen_[i * nc + s]));
      }
    }
    std::size_t touched_pending = 0;
    for (std::size_t s = 0; s < nc; ++s) {
      if (pending_has_[s] != 0) ++touched_pending;
    }
    out.push_back(static_cast<std::int64_t>(touched_pending));
    for (std::size_t s = 0; s < nc; ++s) {
      if (pending_has_[s] == 0) continue;
      out.push_back(static_cast<std::int64_t>(children_[s]));
      out.push_back(pending_value_[s]);
    }
    out.push_back(static_cast<std::int64_t>(outbox_.size() - outbox_head_));
    for (std::size_t i = outbox_head_; i < outbox_.size(); ++i) {
      out.push_back(outbox_[i].tag);
      out.push_back(outbox_[i].a);
      out.push_back(outbox_[i].b);
      out.push_back(outbox_[i].quantum ? 1 : 0);
    }
    return true;
  }

  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    if (version != 1) return false;
    std::size_t pos = 0;
    auto take = [&](std::int64_t& out) {
      if (pos >= words.size()) return false;
      out = words[pos++];
      return true;
    };
    std::int64_t w = 0;
    if (!take(w) || static_cast<std::size_t>(w) != acc_.size()) return false;
    const std::size_t items = acc_.size();
    const std::size_t nc = children_.size();
    std::vector<std::int64_t> acc(items);
    std::vector<std::size_t> done(items);
    for (std::size_t i = 0; i < items; ++i) {
      if (!take(acc[i])) return false;
    }
    for (std::size_t i = 0; i < items; ++i) {
      if (!take(w)) return false;
      done[i] = static_cast<std::size_t>(w);
    }
    if (!take(w)) return false;
    const auto next_ready = static_cast<std::size_t>(w);
    std::vector<std::uint32_t> chunks(items * nc, 0);
    for (std::size_t i = 0; i < items; ++i) {
      if (!take(w)) return false;
      for (auto entries = static_cast<std::size_t>(w); entries > 0; --entries) {
        std::int64_t child = 0;
        std::int64_t seen = 0;
        if (!take(child) || !take(seen)) return false;
        const std::size_t slot = find_slot(static_cast<NodeId>(child));
        if (slot == nc) return false;
        chunks[i * nc + slot] = static_cast<std::uint32_t>(seen);
      }
    }
    std::vector<std::int64_t> pending(nc, 0);
    std::vector<std::uint8_t> pending_has(nc, 0);
    if (!take(w)) return false;
    for (auto entries = static_cast<std::size_t>(w); entries > 0; --entries) {
      std::int64_t child = 0;
      std::int64_t value = 0;
      if (!take(child) || !take(value)) return false;
      const std::size_t slot = find_slot(static_cast<NodeId>(child));
      if (slot == nc) return false;
      pending[slot] = value;
      pending_has[slot] = 1;
    }
    if (!take(w)) return false;
    std::vector<Word> outbox;
    for (auto entries = static_cast<std::size_t>(w); entries > 0; --entries) {
      std::int64_t tag = 0;
      std::int64_t a = 0;
      std::int64_t b = 0;
      std::int64_t quantum = 0;
      if (!take(tag) || !take(a) || !take(b) || !take(quantum)) return false;
      outbox.push_back(Word{static_cast<std::int32_t>(tag), a, b, quantum != 0});
    }
    if (pos != words.size()) return false;
    acc_ = std::move(acc);
    children_done_ = std::move(done);
    next_ready_ = next_ready;
    chunks_seen_ = std::move(chunks);
    pending_value_ = std::move(pending);
    pending_has_ = std::move(pending_has);
    outbox_ = std::move(outbox);
    outbox_head_ = 0;
    return true;
  }

  std::uint32_t state_version() const override { return 1; }

 private:
  /// Slot of `child` in the sorted children list, or children_.size().
  /// Tree fanout is tiny in practice (1 on the bench path graphs), so a
  /// short linear scan beats binary-search dispatch on the hot receive loop.
  std::size_t find_slot(NodeId child) const {
    const std::size_t nc = children_.size();
    if (nc <= 8) {
      for (std::size_t slot = 0; slot < nc; ++slot) {
        if (children_[slot] == child) return slot;
        if (children_[slot] > child) break;
      }
      return nc;
    }
    auto it = std::lower_bound(children_.begin(), children_.end(), child);
    if (it == children_.end() || *it != child) return nc;
    return static_cast<std::size_t>(it - children_.begin());
  }

  std::size_t child_slot(NodeId child) const {
    const std::size_t slot = find_slot(child);
    if (slot == children_.size()) {
      throw std::logic_error("convergecast: chunk from non-child");
    }
    return slot;
  }

  void note_chunk(std::size_t slot, std::size_t item) {
    if (item >= acc_.size()) throw std::logic_error("convergecast: bad item");
    std::uint32_t seen = ++chunks_seen_[item * children_.size() + slot];
    if (seen == value_words_) {
      pending_has_[slot] = 1;  // matches the old map's default-insert on combine
      acc_[item] = (*op_)(acc_[item], pending_value_[slot]);
      ++children_done_[item];
    }
  }

  const BfsTree* tree_;
  std::vector<NodeId> children_;  // sorted; dense slot index for per-child state
  std::vector<std::int64_t> acc_;
  std::size_t value_words_;  // qlint-allow(unsnapshotted-state): factory-reconstructed config
  const CombineOp* op_;
  bool quantum_;  // qlint-allow(unsnapshotted-state): factory-reconstructed config
  std::vector<std::size_t> children_done_;
  std::vector<std::uint32_t> chunks_seen_;   // items x children_, row-major
  std::vector<std::int64_t> pending_value_;  // per child slot
  std::vector<std::uint8_t> pending_has_;    // per child slot: serialize entry?
  std::size_t next_ready_ = 0;
  std::vector<Word> outbox_;
  std::size_t outbox_head_ = 0;  // outbox_[0, head) already sent
};

}  // namespace

DowncastResult pipelined_downcast(Engine& engine, const BfsTree& tree,
                                  const std::vector<std::int64_t>& payload,
                                  bool quantum) {
  return run_downcast(engine, tree, payload, quantum, /*pipelined=*/true,
                      /*ws=*/nullptr, /*collect_received=*/true);
}

DowncastResult pipelined_downcast(Engine& engine, const BfsTree& tree,
                                  const std::vector<std::int64_t>& payload,
                                  bool quantum, PipelineWorkspace& ws,
                                  bool collect_received) {
  return run_downcast(engine, tree, payload, quantum, /*pipelined=*/true, &ws,
                      collect_received);
}

DowncastResult unpipelined_downcast(Engine& engine, const BfsTree& tree,
                                    const std::vector<std::int64_t>& payload,
                                    bool quantum) {
  return run_downcast(engine, tree, payload, quantum, /*pipelined=*/false,
                      /*ws=*/nullptr, /*collect_received=*/true);
}

namespace {

ConvergecastResult run_convergecast(
    Engine& engine, const BfsTree& tree,
    const std::vector<std::vector<std::int64_t>>& values, std::size_t value_words,
    const CombineOp& op, bool quantum, PipelineWorkspace* ws) {
  const std::size_t n = engine.graph().num_nodes();
  if (values.size() != n) {
    throw std::invalid_argument("convergecast: one value vector per node");
  }
  if (value_words == 0) throw std::invalid_argument("convergecast: value_words 0");
  const std::size_t items = values[0].size();
  for (const auto& v : values) {
    if (v.size() != items) {
      throw std::invalid_argument("convergecast: item count mismatch");
    }
  }
  if (items == 0) throw std::invalid_argument("convergecast: no items");

  std::vector<std::unique_ptr<NodeProgram>> local;
  std::vector<std::unique_ptr<NodeProgram>>* programs = &local;
  if (ws != nullptr) {
    bind_workspace(*ws, tree);
    programs = &ws->convergecast_programs;
  }
  if (programs->size() == n) {
    for (NodeId v = 0; v < n; ++v) {
      static_cast<ConvergecastProgram&>(*(*programs)[v])
          .reinit(values[v], value_words, &op, quantum);
    }
  } else {
    programs->clear();
    programs->reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      programs->push_back(std::make_unique<ConvergecastProgram>(
          tree, v, values[v], value_words, &op, quantum));
    }
  }
  engine.set_program_factory([&tree, &values, value_words, &op, quantum](NodeId v) {
    return std::make_unique<ConvergecastProgram>(tree, v, values[v], value_words, &op,
                                                 quantum);
  });
  ConvergecastResult result;
  std::size_t limit = (tree.height + items + 2) * (value_words + 1) * 2 + 16;
  result.cost = engine.run(*programs, limit);
  if (!result.cost.completed) throw std::logic_error("convergecast: did not complete");
  result.totals = static_cast<ConvergecastProgram&>(*(*programs)[tree.root]).totals();
  return result;
}

}  // namespace

ConvergecastResult pipelined_convergecast(
    Engine& engine, const BfsTree& tree,
    const std::vector<std::vector<std::int64_t>>& values, std::size_t value_words,
    const CombineOp& op, bool quantum) {
  return run_convergecast(engine, tree, values, value_words, op, quantum,
                          /*ws=*/nullptr);
}

ConvergecastResult pipelined_convergecast(
    Engine& engine, const BfsTree& tree,
    const std::vector<std::vector<std::int64_t>>& values, std::size_t value_words,
    const CombineOp& op, bool quantum, PipelineWorkspace& ws) {
  return run_convergecast(engine, tree, values, value_words, op, quantum, &ws);
}

}  // namespace qcongest::net
