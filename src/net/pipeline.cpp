#include "src/net/pipeline.hpp"

#include <deque>
#include <memory>
#include <stdexcept>

namespace qcongest::net {

namespace {

constexpr std::int32_t kTagDown = 10;
constexpr std::int32_t kTagConv = 11;
constexpr std::int32_t kTagConvPad = 12;

/// Streams the root's payload down the tree. In pipelined mode a word is
/// forwarded the round after it arrives; in unpipelined mode a node waits
/// for the full payload first.
class DowncastProgram final : public NodeProgram {
 public:
  DowncastProgram(const BfsTree& tree, const std::vector<std::int64_t>* payload,
                  bool quantum, bool pipelined)
      : tree_(&tree), payload_(payload), quantum_(quantum), pipelined_(pipelined) {}

  const std::vector<std::int64_t>& received() const { return received_; }

  void on_round(Context& ctx, const std::vector<Message>& inbox) override {
    const NodeId v = ctx.id();
    if (v == tree_->root && received_.empty() && ctx.round() == 0) {
      received_ = *payload_;  // the root "receives" its own payload at once
    }
    for (const Message& m : inbox) {
      if (m.word.tag == kTagDown) {
        if (static_cast<std::size_t>(m.word.a) != received_.size()) {
          throw std::logic_error("downcast: word out of order");
        }
        received_.push_back(m.word.b);
      }
    }
    // Forward the next word(s) to every child once eligible — up to B words
    // per edge per round in the CONGEST(B) model.
    for (std::size_t budget = ctx.bandwidth(); budget > 0; --budget) {
      bool eligible = pipelined_ ? next_to_send_ < received_.size()
                                 : received_.size() == payload_->size();
      if (!eligible || next_to_send_ >= received_.size()) break;
      for (NodeId c : tree_->children[v]) {
        ctx.send(c, Word{kTagDown, static_cast<std::int64_t>(next_to_send_),
                         received_[next_to_send_], quantum_});
      }
      ++next_to_send_;
    }
  }

 private:
  const BfsTree* tree_;
  const std::vector<std::int64_t>* payload_;
  bool quantum_;
  bool pipelined_;
  std::vector<std::int64_t> received_;
  std::size_t next_to_send_ = 0;
};

DowncastResult run_downcast(Engine& engine, const BfsTree& tree,
                            const std::vector<std::int64_t>& payload, bool quantum,
                            bool pipelined) {
  const std::size_t n = engine.graph().num_nodes();
  if (payload.empty()) throw std::invalid_argument("downcast: empty payload");
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(
        std::make_unique<DowncastProgram>(tree, &payload, quantum, pipelined));
  }
  DowncastResult result;
  std::size_t limit = (tree.height + 2) * (payload.size() + 2) + 16;
  result.cost = engine.run(programs, limit);
  if (!result.cost.completed) throw std::logic_error("downcast: did not complete");
  result.received.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = static_cast<DowncastProgram&>(*programs[v]);
    if (p.received().size() != payload.size()) {
      throw std::logic_error("downcast: node missed words");
    }
    result.received.push_back(p.received());
  }
  return result;
}

/// Aggregating convergecast. Each node owns one value per item; once all
/// children have delivered their (full, value_words-wide) aggregate for item
/// i, the node combines and enqueues item i for its parent. One word per
/// round flows on each tree edge; items are pipelined, chunks of one item
/// are not combinable until complete.
class ConvergecastProgram final : public NodeProgram {
 public:
  ConvergecastProgram(const BfsTree& tree, std::vector<std::int64_t> own,
                      std::size_t value_words, const CombineOp* op, bool quantum)
      : tree_(&tree),
        acc_(std::move(own)),
        value_words_(value_words),
        op_(op),
        quantum_(quantum),
        children_done_(acc_.size(), 0),
        chunks_seen_(acc_.size()) {}

  const std::vector<std::int64_t>& totals() const { return acc_; }

  void on_round(Context& ctx, const std::vector<Message>& inbox) override {
    const NodeId v = ctx.id();
    const std::size_t num_children = tree_->children[v].size();

    for (const Message& m : inbox) {
      if (m.word.tag == kTagConv) {
        auto item = static_cast<std::size_t>(m.word.a);
        pending_value_[m.from] = m.word.b;
        note_chunk(m.from, item);
      } else if (m.word.tag == kTagConvPad) {
        note_chunk(m.from, static_cast<std::size_t>(m.word.a));
      }
    }

    // Enqueue (in item order) every item whose children contributions are
    // complete. Leaves enqueue everything in round 0.
    while (next_ready_ < acc_.size() && children_done_[next_ready_] == num_children) {
      if (v != tree_->root) {
        outbox_.push_back(Word{kTagConv, static_cast<std::int64_t>(next_ready_),
                               acc_[next_ready_], quantum_});
        for (std::size_t c = 1; c < value_words_; ++c) {
          outbox_.push_back(Word{kTagConvPad, static_cast<std::int64_t>(next_ready_),
                                 static_cast<std::int64_t>(c), quantum_});
        }
      }
      ++next_ready_;
    }

    for (std::size_t budget = ctx.bandwidth(); budget > 0 && !outbox_.empty();
         --budget) {
      ctx.send(tree_->parent[v], outbox_.front());
      outbox_.pop_front();
    }
  }

 private:
  void note_chunk(NodeId child, std::size_t item) {
    if (item >= acc_.size()) throw std::logic_error("convergecast: bad item");
    std::size_t seen = ++chunks_seen_[item][child];
    if (seen == value_words_) {
      acc_[item] = (*op_)(acc_[item], pending_value_[child]);
      ++children_done_[item];
    }
  }

  const BfsTree* tree_;
  std::vector<std::int64_t> acc_;
  std::size_t value_words_;
  const CombineOp* op_;
  bool quantum_;
  std::vector<std::size_t> children_done_;
  std::vector<std::unordered_map<NodeId, std::size_t>> chunks_seen_;
  std::unordered_map<NodeId, std::int64_t> pending_value_;
  std::size_t next_ready_ = 0;
  std::deque<Word> outbox_;
};

}  // namespace

DowncastResult pipelined_downcast(Engine& engine, const BfsTree& tree,
                                  const std::vector<std::int64_t>& payload,
                                  bool quantum) {
  return run_downcast(engine, tree, payload, quantum, /*pipelined=*/true);
}

DowncastResult unpipelined_downcast(Engine& engine, const BfsTree& tree,
                                    const std::vector<std::int64_t>& payload,
                                    bool quantum) {
  return run_downcast(engine, tree, payload, quantum, /*pipelined=*/false);
}

ConvergecastResult pipelined_convergecast(
    Engine& engine, const BfsTree& tree,
    const std::vector<std::vector<std::int64_t>>& values, std::size_t value_words,
    const CombineOp& op, bool quantum) {
  const std::size_t n = engine.graph().num_nodes();
  if (values.size() != n) {
    throw std::invalid_argument("convergecast: one value vector per node");
  }
  if (value_words == 0) throw std::invalid_argument("convergecast: value_words 0");
  const std::size_t items = values[0].size();
  for (const auto& v : values) {
    if (v.size() != items) {
      throw std::invalid_argument("convergecast: item count mismatch");
    }
  }
  if (items == 0) throw std::invalid_argument("convergecast: no items");

  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(std::make_unique<ConvergecastProgram>(tree, values[v],
                                                             value_words, &op, quantum));
  }
  ConvergecastResult result;
  std::size_t limit = (tree.height + items + 2) * (value_words + 1) * 2 + 16;
  result.cost = engine.run(programs, limit);
  if (!result.cost.completed) throw std::logic_error("convergecast: did not complete");
  result.totals = static_cast<ConvergecastProgram&>(*programs[tree.root]).totals();
  return result;
}

}  // namespace qcongest::net
