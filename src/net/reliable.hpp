#pragma once

#include <memory>
#include <span>

#include "src/net/engine.hpp"

namespace qcongest::net {

/// The reliable link transport: an ack/retransmit sliding-window link layer
/// that presents *perfect synchronous rounds* to an unmodified NodeProgram
/// while running over a network with drops, corruption, duplication, and
/// crash-restart outages.
///
/// Mechanism (per directed link, all deterministic):
///  - Every logical word and every round fence is a sequence-numbered item
///    in a per-link stream. Data items travel as two physical word chunks
///    (header+payload-a, checksum+payload-b); fences and acks are one word.
///  - A per-item checksum (salted 30-bit mix over the full frame) detects
///    payload corruption; corrupted or incomplete frames are discarded and
///    recovered by retransmission.
///  - Cumulative acks; unacked items are re-sent after a timeout with
///    exponential backoff (Engine::note_retransmission counts each re-send).
///    Backoff is capped at ReliableParams::rto_cap and deterministically
///    jittered (a hash of link, sequence number, and current timeout) so
///    that retransmissions for independent links desynchronize instead of
///    thundering in lockstep.
///  - Duplicates are discarded by sequence number; delivery to the program
///    is exactly-once, in order.
///
/// Round synchronization uses lazy fences with demand-driven execution:
/// after an *active* virtual round (non-empty inbox, something sent, or
/// the inner program called keep_alive) a node fences the round on every
/// link; silent rounds are not even executed unless there is a reason to —
/// pending delivered data, a latched keep_alive, momentum (the node's own
/// previous round sent something), or an explicit demand. A node that
/// needs a lagging neighbor's fence to execute its next round sends that
/// neighbor a *poll* (repeated on the retransmission timer, so polls
/// tolerate loss); the polled node catches up and fences up to the demand.
/// Traffic therefore provably ceases once no node wants progress, and the
/// engine's quiescence-based termination still fires. A node executes
/// inner round r+1 once every neighbor has fenced round r; fenced data is
/// buffered per (neighbor, round) and the inbox is assembled in neighbor
/// order, which makes the inner execution — and hence the protocol's
/// outputs — identical across fault rates and fault seeds.
///
/// Contract: a program that idles intending to act in a later round must
/// call Context::keep_alive every idle round — the same contract the
/// engine's own quiescence rule already imposes, applied per node.
///
/// The CONGEST(B) budget is respected physically: acks, fences, chunks, and
/// retransmissions all share the B words per edge per round, which is what
/// the measured "reliability tax" in rounds and words consists of.
///
/// Crash-with-amnesia recovery (when Engine::set_recovery is enabled): each
/// wrapper keeps per-link logs of the words its program sent in every
/// virtual round (pruned once a checkpoint makes them unnecessary) and
/// periodically checkpoints the inner program's snapshot. When an amnesia
/// crash destroys a node's volatile state, the wrapper rebuilds the program
/// by state transplant — a factory-fresh instance's snapshot restored into
/// the scheduled object — then restores the last intact checkpoint and
/// replays the checkpoint-to-crash virtual rounds against neighbor-assisted
/// state transfer: REQ/HDR/DATA items (sequence-numbered like any other
/// item, sharing the CONGEST(B) budget) ship the neighbors' logged sends
/// for the replay window. Replayed rounds re-derive the node's own sends,
/// fences, and momentum, so the node lands exactly on its pre-crash
/// trajectory; the extra traffic is the *recovery tax* reported in
/// RunResult::recovery_words / recovery_rounds. Link-layer state (sequence
/// numbers, in-flight windows, fences) deliberately survives amnesia — it
/// models the NIC, not the node's volatile memory.
///
/// Programs opt in without rewrites: they receive a ReliableContext (a
/// Context subclass) whose send/halt/keep_alive route through the link
/// layer. Enable per engine with
/// `engine.set_transport(Transport::kReliable, params)`.
std::vector<std::unique_ptr<NodeProgram>> wrap_reliable(
    std::span<const std::unique_ptr<NodeProgram>> programs, Engine& engine,
    const ReliableParams& params);

}  // namespace qcongest::net
