#pragma once

#include <vector>

#include "src/net/engine.hpp"

namespace qcongest::net {

/// Result of a multi-source BFS: hop distances from every source.
struct MultiBfsResult {
  /// dist[v][i] = d(v, sources[i]), kUnreachable beyond the depth limit.
  std::vector<std::vector<std::size_t>> dist;
  /// parent[v][i] = the neighbor that delivered v's final distance for
  /// source i (kUnreachable at the source itself and at unreached nodes).
  /// The parent pointers form a shortest-path forest rooted at each source.
  std::vector<std::vector<NodeId>> parent;
  RunResult cost;
};

/// Runs BFS from all `sources` simultaneously with per-edge congestion
/// control (at most `bandwidth` distance tokens per edge per round, smaller
/// distances first). Completes in O(|S| + D) rounds [PRT12; HW12] — the
/// alpha(p) subroutine of Lemma 20 / Lemma 21.
///
/// `depth_limit` truncates each BFS at that hop distance (use
/// kUnreachable-like large values, e.g. n, for unlimited).
MultiBfsResult multi_source_bfs(Engine& engine, const std::vector<NodeId>& sources,
                                std::size_t depth_limit);

/// The full Lemma 20 ([PRT12; HW12]): each source *learns its own
/// eccentricity* in O(|S| + D) rounds. Runs multi_source_bfs and then a
/// per-source max-echo over each BFS tree (children register with their
/// parents, DONE markers delimit the registration, echoes aggregate the
/// subtree maxima upward) — all through per-edge word queues.
struct EccentricityEchoResult {
  /// eccentricity[i]: max_v d(v, sources[i]) over reached nodes, as learned
  /// *at* sources[i].
  std::vector<std::size_t> eccentricity;
  MultiBfsResult bfs;
  net::RunResult echo_cost;
};
EccentricityEchoResult multi_source_eccentricities(Engine& engine,
                                                   const std::vector<NodeId>& sources,
                                                   std::size_t depth_limit);

}  // namespace qcongest::net
