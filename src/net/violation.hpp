#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "src/net/graph.hpp"

namespace qcongest::net {

/// A CONGEST model rule was broken by a protocol (or by the engine itself).
/// Unlike a bare std::runtime_error, the violation carries full provenance —
/// which rule, in which round, on which directed edge, and how far over the
/// line the offender went — so the model-conformance verifier
/// (src/check/verifier.hpp) can report it, and tests can assert on the
/// specifics instead of matching message strings.
class CongestViolation : public std::runtime_error {
 public:
  enum class Kind {
    /// More than B words pushed into one directed edge in one round.
    kBandwidthExceeded,
    /// A send addressed to a node that is not a neighbor of the sender.
    kNonNeighborSend,
  };

  CongestViolation(Kind kind, std::size_t round, NodeId from, NodeId to,
                   std::size_t words_attempted, std::size_t budget)
      : std::runtime_error(describe(kind, round, from, to, words_attempted, budget)),
        kind_(kind),
        round_(round),
        from_(from),
        to_(to),
        words_attempted_(words_attempted),
        budget_(budget) {}

  Kind kind() const { return kind_; }
  std::size_t round() const { return round_; }
  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  /// Words the sender tried to place on the edge this round (the violating
  /// send included).
  std::size_t words_attempted() const { return words_attempted_; }
  /// The per-edge per-round budget in force (the CONGEST B parameter).
  std::size_t budget() const { return budget_; }

  static std::string describe(Kind kind, std::size_t round, NodeId from, NodeId to,
                              std::size_t words_attempted, std::size_t budget) {
    std::string what;
    switch (kind) {
      case Kind::kBandwidthExceeded:
        what = "CONGEST bandwidth exceeded";
        break;
      case Kind::kNonNeighborSend:
        what = "CONGEST send to non-neighbor";
        break;
    }
    what += ": round " + std::to_string(round) + ", edge " + std::to_string(from) +
            " -> " + std::to_string(to) + ", words attempted " +
            std::to_string(words_attempted) + ", budget " + std::to_string(budget);
    return what;
  }

 private:
  Kind kind_;
  std::size_t round_;
  NodeId from_;
  NodeId to_;
  std::size_t words_attempted_;
  std::size_t budget_;
};

}  // namespace qcongest::net
