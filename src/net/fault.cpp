#include "src/net/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace qcongest::net {

namespace {

void check_rates(const FaultRates& rates, const char* where) {
  auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(rates.drop) || !in_unit(rates.corrupt) || !in_unit(rates.duplicate)) {
    throw std::invalid_argument(std::string("FaultPlan: probability outside [0, 1] in ") +
                                where);
  }
}

}  // namespace

bool FaultPlan::active() const {
  if (link.any() || !crashes.empty()) return true;
  return std::any_of(edge_overrides.begin(), edge_overrides.end(),
                     [](const auto& e) { return e.second.any(); });
}

void FaultPlan::validate(std::size_t num_nodes) const {
  check_rates(link, "link");
  // Overrides are keyed by *directed* edge; a duplicate key would make
  // "which rates apply to u->v" depend on lookup order, and a self-loop
  // names a channel the CONGEST graph cannot contain. Both are caller bugs
  // and must be named precisely, not silently last-writer-wins.
  std::vector<std::pair<NodeId, NodeId>> seen_edges;
  seen_edges.reserve(edge_overrides.size());
  for (const auto& [edge, rates] : edge_overrides) {
    auto edge_name = [&edge]() {
      return std::to_string(edge.first) + "->" + std::to_string(edge.second);
    };
    if (edge.first >= num_nodes || edge.second >= num_nodes) {
      throw std::invalid_argument("FaultPlan: edge override endpoint out of range on edge " +
                                  edge_name() + " (num_nodes " +
                                  std::to_string(num_nodes) + ")");
    }
    if (edge.first == edge.second) {
      throw std::invalid_argument("FaultPlan: self-loop edge override on edge " + edge_name());
    }
    seen_edges.push_back(edge);
    check_rates(rates, "edge override");
  }
  std::sort(seen_edges.begin(), seen_edges.end());
  auto dup = std::adjacent_find(seen_edges.begin(), seen_edges.end());
  if (dup != seen_edges.end()) {
    throw std::invalid_argument("FaultPlan: duplicate edge override on edge " +
                                std::to_string(dup->first) + "->" +
                                std::to_string(dup->second));
  }
  // Per-node crash windows must be disjoint so "is v crashed at round r" is
  // unambiguous.
  std::vector<CrashEvent> sorted = crashes;
  for (const CrashEvent& c : sorted) {
    if (c.node >= num_nodes) {
      throw std::invalid_argument("FaultPlan: crash node " + std::to_string(c.node) +
                                  " out of range (num_nodes " +
                                  std::to_string(num_nodes) + ")");
    }
    if (c.restart_round <= c.crash_round) {
      // Covers the restart_round == crash_round degenerate case: a window
      // [r, r) schedules no outage rounds at all, which is far more likely a
      // caller bug than an intentional no-op.
      throw std::invalid_argument(
          "FaultPlan: empty crash window on node " + std::to_string(c.node) +
          ": [" + std::to_string(c.crash_round) + ", " +
          std::to_string(c.restart_round) + ") schedules no outage rounds");
    }
  }
  std::sort(sorted.begin(), sorted.end(), [](const CrashEvent& a, const CrashEvent& b) {
    return a.node != b.node ? a.node < b.node : a.crash_round < b.crash_round;
  });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const CrashEvent& prev = sorted[i - 1];
    const CrashEvent& cur = sorted[i];
    if (cur.node == prev.node && cur.crash_round < prev.restart_round) {
      auto window = [](const CrashEvent& c) {
        std::string hi = c.restart_round == CrashEvent::kNeverRestarts
                             ? std::string("never")
                             : std::to_string(c.restart_round);
        return "[" + std::to_string(c.crash_round) + ", " + hi + ")";
      };
      throw std::invalid_argument("FaultPlan: overlapping crash windows on node " +
                                  std::to_string(cur.node) + ": " + window(prev) +
                                  " overlaps " + window(cur));
    }
  }
}

std::uint64_t FaultLottery::threshold(double p) {
  if (p <= 0.0) return kNever;
  if (p >= 1.0) return kAlways;
  // x86-64 long double carries a 64-bit mantissa, so p * 2^64 is exact to
  // the u64 grid; on platforms where long double == double the threshold is
  // within one part in 2^53 of p, far below any rate a test can resolve.
  const auto wide =
      static_cast<unsigned __int128>(std::ldexp(static_cast<long double>(p), 64));
  if (wide == 0) return kNever;  // p below 2^-64 never fires
  if (wide >= static_cast<unsigned __int128>(kAlways)) return kAlways - 1;
  return static_cast<std::uint64_t>(wide);
}

void FaultLottery::reset(std::uint64_t seed, std::size_t slots) {
  util::Rng base(seed);
  streams_.clear();
  streams_.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) streams_.push_back(base.fork());
  buffer_.assign(slots * kBatch, 0);
  pos_.assign(slots, kBatch);  // every buffer starts empty
}

void FaultLottery::clear() {
  streams_.clear();
  buffer_.clear();
  pos_.clear();
}

void FaultLottery::refill(std::size_t slot) {
  std::uint64_t* buf = buffer_.data() + slot * kBatch;
  auto& engine = streams_[slot].engine();
  for (std::size_t i = 0; i < kBatch; ++i) buf[i] = engine();
  pos_[slot] = 0;
}

}  // namespace qcongest::net
