#include "src/net/bfs.hpp"

#include <algorithm>
#include <memory>

namespace qcongest::net {

namespace {

constexpr std::int32_t kTagFloodMax = 1;
constexpr std::int32_t kTagBfsToken = 2;
constexpr std::int32_t kTagBfsAdopt = 3;

class FloodMaxProgram final : public NodeProgram {
 public:
  NodeId best() const { return best_; }

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    bool improved = false;
    if (ctx.round() == 0) {
      best_ = ctx.id();
      improved = true;
    }
    for (const Message& m : inbox) {
      if (static_cast<NodeId>(m.word.a) > best_) {
        best_ = static_cast<NodeId>(m.word.a);
        improved = true;
      }
    }
    if (improved) {
      for (NodeId u : ctx.neighbors()) {
        ctx.send(u, Word{kTagFloodMax, static_cast<std::int64_t>(best_), 0, false});
      }
    }
  }

  bool snapshot(std::vector<std::int64_t>& out) const override {
    out.push_back(static_cast<std::int64_t>(best_));
    return true;
  }

  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    if (version != 1 || words.size() != 1) return false;
    best_ = static_cast<NodeId>(words[0]);
    return true;
  }

  std::uint32_t state_version() const override { return 1; }

 private:
  NodeId best_ = 0;
};

class BfsBuildProgram final : public NodeProgram {
 public:
  explicit BfsBuildProgram(NodeId root) : root_(root) {}

  NodeId parent() const { return parent_; }
  std::size_t depth() const { return depth_; }
  const std::vector<NodeId>& children() const { return children_; }

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    if (ctx.round() == 0 && ctx.id() == root_) {
      parent_ = ctx.id();
      depth_ = 0;
      for (NodeId u : ctx.neighbors()) {
        ctx.send(u, Word{kTagBfsToken, 1, 0, false});
      }
      return;
    }
    for (const Message& m : inbox) {
      if (m.word.tag == kTagBfsAdopt) {
        children_.push_back(m.from);
      } else if (m.word.tag == kTagBfsToken && parent_ == kUnreachable) {
        parent_ = m.from;
        depth_ = static_cast<std::size_t>(m.word.a);
        ctx.send(m.from, Word{kTagBfsAdopt, 0, 0, false});
        for (NodeId u : ctx.neighbors()) {
          if (u != m.from) {
            ctx.send(u, Word{kTagBfsToken, static_cast<std::int64_t>(depth_ + 1), 0,
                             false});
          }
        }
      }
    }
  }

  bool snapshot(std::vector<std::int64_t>& out) const override {
    out.push_back(static_cast<std::int64_t>(parent_));
    out.push_back(static_cast<std::int64_t>(depth_));
    out.push_back(static_cast<std::int64_t>(children_.size()));
    for (NodeId c : children_) out.push_back(static_cast<std::int64_t>(c));
    return true;
  }

  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    if (version != 1 || words.size() < 3) return false;
    auto count = static_cast<std::size_t>(words[2]);
    if (words.size() != 3 + count) return false;
    parent_ = static_cast<NodeId>(words[0]);
    depth_ = static_cast<std::size_t>(words[1]);
    children_.assign(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      children_[i] = static_cast<NodeId>(words[3 + i]);
    }
    return true;
  }

  std::uint32_t state_version() const override { return 1; }

 private:
  NodeId root_;  // qlint-allow(unsnapshotted-state): factory-reconstructed config
  NodeId parent_ = kUnreachable;
  std::size_t depth_ = 0;
  std::vector<NodeId> children_;
};

}  // namespace

LeaderElectionResult elect_leader(Engine& engine) {
  const std::size_t n = engine.graph().num_nodes();
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) programs.push_back(std::make_unique<FloodMaxProgram>());
  engine.set_program_factory(
      [](NodeId) { return std::make_unique<FloodMaxProgram>(); });

  LeaderElectionResult result;
  result.cost = engine.run(programs, 4 * n + 16);
  result.leader = static_cast<FloodMaxProgram&>(*programs[0]).best();
  for (NodeId v = 1; v < n; ++v) {
    if (static_cast<FloodMaxProgram&>(*programs[v]).best() != result.leader) {
      throw std::logic_error("elect_leader: nodes disagree (graph disconnected?)");
    }
  }
  return result;
}

BfsTree build_bfs_tree(Engine& engine, NodeId root) {
  const std::size_t n = engine.graph().num_nodes();
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(std::make_unique<BfsBuildProgram>(root));
  }
  engine.set_program_factory(
      [root](NodeId) { return std::make_unique<BfsBuildProgram>(root); });

  BfsTree tree;
  tree.root = root;
  tree.cost = engine.run(programs, 4 * n + 16);
  tree.parent.resize(n);
  tree.children.resize(n);
  tree.depth.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = static_cast<BfsBuildProgram&>(*programs[v]);
    if (p.parent() == kUnreachable) {
      throw std::logic_error("build_bfs_tree: node unreachable from root");
    }
    tree.parent[v] = p.parent();
    tree.depth[v] = p.depth();
    tree.children[v] = p.children();
    std::sort(tree.children[v].begin(), tree.children[v].end());
    tree.height = std::max(tree.height, p.depth());
  }
  return tree;
}

}  // namespace qcongest::net
