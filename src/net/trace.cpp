#include "src/net/trace.hpp"

#include <algorithm>

namespace qcongest::net {

std::vector<std::size_t> Trace::per_round_counts() const {
  std::size_t max_round = 0;
  for (const TraceEvent& e : events_) max_round = std::max(max_round, e.round);
  std::vector<std::size_t> counts(events_.empty() ? 0 : max_round + 1, 0);
  for (const TraceEvent& e : events_) ++counts[e.round];
  return counts;
}

std::vector<std::pair<std::pair<NodeId, NodeId>, std::size_t>> Trace::busiest_edges(
    std::size_t top) const {
  std::map<std::pair<NodeId, NodeId>, std::size_t> counts;
  for (const TraceEvent& e : events_) ++counts[{e.from, e.to}];
  std::vector<std::pair<std::pair<NodeId, NodeId>, std::size_t>> sorted(
      counts.begin(), counts.end());
  // Total order — count descending, then (from, to) ascending — so tied
  // edges come back in the same order on every STL implementation (the
  // comparator alone makes the result unique; sort stability is moot).
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (sorted.size() > top) sorted.resize(top);
  return sorted;
}

std::map<std::int32_t, std::size_t> Trace::per_tag_counts() const {
  std::map<std::int32_t, std::size_t> counts;
  for (const TraceEvent& e : events_) ++counts[e.tag];
  return counts;
}

std::map<std::pair<NodeId, NodeId>, std::size_t> Trace::edge_totals() const {
  std::map<std::pair<NodeId, NodeId>, std::size_t> totals;
  for (const TraceEvent& e : events_) {
    ++totals[{std::min(e.from, e.to), std::max(e.from, e.to)}];
  }
  return totals;
}

std::string Trace::render_timeline(std::size_t width) const {
  auto counts = per_round_counts();
  std::size_t peak = 0;
  for (std::size_t c : counts) peak = std::max(peak, c);
  std::string out;
  for (std::size_t round = 0; round < counts.size(); ++round) {
    std::size_t bar =
        peak == 0 ? 0 : (counts[round] * width + peak - 1) / peak;
    out += "r";
    out += std::to_string(round);
    out += " |";
    out.append(bar, '#');
    out += " ";
    out += std::to_string(counts[round]);
    out += "\n";
  }
  return out;
}

}  // namespace qcongest::net
