#include "src/net/graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace qcongest::net {

Graph::Graph(std::size_t num_nodes)
    : adjacency_(num_nodes), sorted_index_(num_nodes) {
  if (num_nodes == 0) throw std::invalid_argument("Graph: zero nodes");
}

void Graph::add_edge(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes()) {
    throw std::out_of_range("Graph::add_edge: node out of range");
  }
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (has_edge(u, v)) throw std::invalid_argument("Graph::add_edge: duplicate edge");
  auto link = [this](NodeId a, NodeId b) {
    auto& index = sorted_index_[a];
    auto at = std::lower_bound(index.begin(), index.end(),
                               std::make_pair(b, std::size_t{0}));
    index.insert(at, {b, adjacency_[a].size()});
    adjacency_[a].push_back(b);
  };
  link(u, v);
  link(v, u);
  ++num_edges_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return v < num_nodes() && neighbor_index(u, v) != kUnreachable;
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  if (v >= num_nodes()) throw std::out_of_range("Graph::neighbors: node out of range");
  return adjacency_[v];
}

std::vector<std::size_t> Graph::bfs_distances(NodeId src) const {
  std::vector<std::size_t> dist(num_nodes(), kUnreachable);
  std::deque<NodeId> queue{src};
  dist[src] = 0;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    for (NodeId u : adjacency_[v]) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == kUnreachable; });
}

std::size_t Graph::eccentricity(NodeId v) const {
  auto dist = bfs_distances(v);
  std::size_t ecc = 0;
  for (std::size_t d : dist) {
    if (d == kUnreachable) {
      throw std::invalid_argument("eccentricity: graph not connected");
    }
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::size_t Graph::diameter() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, eccentricity(v));
  return best;
}

std::size_t Graph::radius() const {
  std::size_t best = kUnreachable;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::min(best, eccentricity(v));
  return best;
}

double Graph::average_eccentricity() const {
  double total = 0.0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    total += static_cast<double>(eccentricity(v));
  }
  return total / static_cast<double>(num_nodes());
}

std::string Graph::to_dot(
    const std::map<std::pair<NodeId, NodeId>, std::size_t>* edge_labels) const {
  std::string out = "graph G {\n";
  for (NodeId v = 0; v < num_nodes(); ++v) {
    out += "  n" + std::to_string(v) + ";\n";
  }
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (NodeId u : adjacency_[v]) {
      if (u < v) continue;  // emit each undirected edge once
      out += "  n" + std::to_string(v) + " -- n" + std::to_string(u);
      if (edge_labels != nullptr) {
        auto it = edge_labels->find({v, u});
        if (it != edge_labels->end()) {
          out += " [label=\"" + std::to_string(it->second) + "\"]";
        }
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::optional<std::size_t> Graph::girth() const {
  std::size_t best = kUnreachable;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (auto c = shortest_cycle_through(v, best == kUnreachable ? num_nodes() + 1
                                               : best)) {
      best = std::min(best, *c);
    }
  }
  if (best == kUnreachable) return std::nullopt;
  return best;
}

std::optional<std::size_t> Graph::shortest_cycle_through(
    NodeId v, std::size_t max_length, std::optional<NodeId> excluded) const {
  // BFS from v tracking the first edge of the path; the shortest cycle
  // through v closes when two branches meet.
  if (excluded && *excluded == v) {
    throw std::invalid_argument("shortest_cycle_through: v excluded");
  }
  std::vector<std::size_t> dist(num_nodes(), kUnreachable);
  std::vector<NodeId> branch(num_nodes(), kUnreachable);
  std::deque<NodeId> queue{v};
  dist[v] = 0;
  branch[v] = v;
  std::size_t best = kUnreachable;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    if (2 * dist[u] >= best || dist[u] > max_length / 2) continue;
    for (NodeId w : adjacency_[u]) {
      if (excluded && w == *excluded) continue;
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        branch[w] = (u == v) ? w : branch[u];
        queue.push_back(w);
      } else if (dist[w] >= dist[u] && (u == v ? w : branch[u]) != branch[w]) {
        // Two distinct branches meet: cycle through v of this length.
        best = std::min(best, dist[u] + dist[w] + 1);
      }
    }
  }
  if (best == kUnreachable || best > max_length) return std::nullopt;
  return best;
}

}  // namespace qcongest::net
