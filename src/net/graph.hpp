#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qcongest::net {

using NodeId = std::size_t;

inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);

/// Undirected simple graph; the communication topology of a CONGEST network.
///
/// Besides the adjacency structure used by the engine, this class offers
/// centralized analysis helpers (BFS, diameter, girth, ...). Those helpers
/// are *ground truth* for tests and benches — protocols must never call
/// them; they only see the per-node view the engine exposes.
class Graph {
 public:
  explicit Graph(std::size_t num_nodes);

  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}. Self-loops and duplicate edges are
  /// rejected (CONGEST networks are simple graphs).
  void add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;
  const std::vector<NodeId>& neighbors(NodeId v) const;
  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  /// Position of v in neighbors(u), or kUnreachable when {u, v} is not an
  /// edge. The engine's per-send edge-slot lookup: inline, with a short
  /// linear scan for small degrees (the common case, cheaper than binary-
  /// search dispatch) and O(log deg(u)) via the sorted neighbor-index table
  /// otherwise — it must never degrade to a full linear neighbor scan.
  /// Read-only and safe to call from concurrent shards.
  std::size_t neighbor_index(NodeId u, NodeId v) const {
    if (u >= num_nodes()) {
      throw std::out_of_range("Graph::neighbor_index: node out of range");
    }
    const auto& index = sorted_index_[u];
    if (index.size() <= 8) {
      for (const auto& [neighbor, pos] : index) {
        if (neighbor == v) return pos;
        if (neighbor > v) break;
      }
      return kUnreachable;
    }
    auto at = std::lower_bound(index.begin(), index.end(),
                               std::make_pair(v, std::size_t{0}));
    if (at == index.end() || at->first != v) return kUnreachable;
    return at->second;
  }

  // --- Centralized ground-truth analysis (not visible to protocols) -------

  /// Hop distances from src (kUnreachable where disconnected).
  std::vector<std::size_t> bfs_distances(NodeId src) const;

  bool connected() const;

  /// max_u d(v, u); requires a connected graph.
  std::size_t eccentricity(NodeId v) const;

  std::size_t diameter() const;
  std::size_t radius() const;
  double average_eccentricity() const;

  /// Length of the shortest cycle, or nullopt for forests. O(n m) BFS-based.
  std::optional<std::size_t> girth() const;

  /// GraphViz DOT rendering (undirected). Optional per-edge labels keyed by
  /// the (min, max) endpoint pair — e.g. message counts from a Trace.
  std::string to_dot(
      const std::map<std::pair<NodeId, NodeId>, std::size_t>* edge_labels =
          nullptr) const;

  /// BFS-meeting cycle candidate through vertex v, capped at max_length
  /// (nullopt if none). Every returned value is the length of a closed walk
  /// containing a genuine cycle of at most that length, and the minimum
  /// over all v equals the girth. With `excluded` set, the BFS runs on
  /// G minus that vertex (the second stage of [CFGGLO20]'s heavy-cycle
  /// procedure: BFS from the neighbors of s on G \ {s}).
  std::optional<std::size_t> shortest_cycle_through(
      NodeId v, std::size_t max_length,
      std::optional<NodeId> excluded = std::nullopt) const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  /// Per node: (neighbor, position in adjacency_[node]) sorted by neighbor,
  /// kept in lockstep with adjacency_ by add_edge. Backs neighbor_index /
  /// has_edge with binary search instead of a linear scan.
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> sorted_index_;
  std::size_t num_edges_ = 0;
};

}  // namespace qcongest::net
