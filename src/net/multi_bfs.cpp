#include "src/net/multi_bfs.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>

namespace qcongest::net {

namespace {

constexpr std::int32_t kTagBfsDist = 20;

/// Relaxation-based multi-source BFS. Each node keeps its best known
/// distance to every source and forwards improvements; outbound tokens are
/// prioritized by distance (smaller first), which yields the O(|S| + D)
/// schedule of [PRT12; HW12]. Late improvements re-trigger forwarding, so
/// the final distances are exact regardless of queueing delays.
class MultiBfsProgram final : public NodeProgram {
 public:
  MultiBfsProgram(const std::vector<NodeId>* sources, std::size_t depth_limit)
      : sources_(sources), depth_limit_(depth_limit) {}

  const std::vector<std::size_t>& dist() const { return dist_; }
  const std::vector<NodeId>& parent() const { return parent_; }

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    if (ctx.round() == 0) {
      dist_.assign(sources_->size(), kUnreachable);
      parent_.assign(sources_->size(), kUnreachable);
      outbox_.resize(ctx.neighbors().size());
      for (std::size_t i = 0; i < sources_->size(); ++i) {
        if ((*sources_)[i] == ctx.id()) relax(ctx, i, 0, kUnreachable);
      }
    }
    for (const Message& m : inbox) {
      if (m.word.tag != kTagBfsDist) continue;
      relax(ctx, static_cast<std::size_t>(m.word.a),
            static_cast<std::size_t>(m.word.b), m.from);
    }
    // Send up to B queued tokens per neighbor, smallest distance first.
    // Stale entries (already improved upon) are skipped for free.
    for (std::size_t ni = 0; ni < ctx.neighbors().size(); ++ni) {
      auto& queue = outbox_[ni];
      std::size_t budget = ctx.bandwidth();
      while (!queue.empty() && budget > 0) {
        auto it = queue.begin();
        auto [d, src] = it->first;
        queue.erase(it);
        if (d != dist_[src]) continue;  // superseded by a later relaxation
        ctx.send(ctx.neighbors()[ni],
                 Word{kTagBfsDist, static_cast<std::int64_t>(src),
                      static_cast<std::int64_t>(d + 1), false});
        --budget;
      }
    }
  }

  bool snapshot(std::vector<std::int64_t>& out) const override {
    out.push_back(static_cast<std::int64_t>(dist_.size()));
    for (std::size_t d : dist_) out.push_back(static_cast<std::int64_t>(d));
    for (NodeId p : parent_) out.push_back(static_cast<std::int64_t>(p));
    out.push_back(static_cast<std::int64_t>(outbox_.size()));
    for (const auto& queue : outbox_) {
      out.push_back(static_cast<std::int64_t>(queue.size()));
      for (const auto& [key, unused] : queue) {
        (void)unused;
        out.push_back(static_cast<std::int64_t>(key.first));
        out.push_back(static_cast<std::int64_t>(key.second));
      }
    }
    return true;
  }

  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    if (version != 1) return false;
    std::size_t pos = 0;
    auto take = [&](std::int64_t& out) {
      if (pos >= words.size()) return false;
      out = words[pos++];
      return true;
    };
    std::int64_t w = 0;
    if (!take(w)) return false;
    const auto slots = static_cast<std::size_t>(w);
    std::vector<std::size_t> dist(slots);
    std::vector<NodeId> parent(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      if (!take(w)) return false;
      dist[i] = static_cast<std::size_t>(w);
    }
    for (std::size_t i = 0; i < slots; ++i) {
      if (!take(w)) return false;
      parent[i] = static_cast<NodeId>(w);
    }
    if (!take(w)) return false;
    std::vector<std::map<std::pair<std::size_t, std::size_t>, int>> outbox(
        static_cast<std::size_t>(w));
    for (auto& queue : outbox) {
      if (!take(w)) return false;
      for (auto entries = static_cast<std::size_t>(w); entries > 0; --entries) {
        std::int64_t d = 0;
        std::int64_t src = 0;
        if (!take(d) || !take(src)) return false;
        queue.emplace(std::pair{static_cast<std::size_t>(d),
                                static_cast<std::size_t>(src)},
                      0);
      }
    }
    if (pos != words.size()) return false;
    dist_ = std::move(dist);
    parent_ = std::move(parent);
    outbox_ = std::move(outbox);
    return true;
  }

  std::uint32_t state_version() const override { return 1; }

 private:
  void relax(Context& ctx, std::size_t src, std::size_t d, NodeId from) {
    if (src >= dist_.size()) throw std::logic_error("multi_bfs: bad source index");
    if (d >= dist_[src]) return;
    dist_[src] = d;
    parent_[src] = from;
    if (d >= depth_limit_) return;  // do not propagate past the depth limit
    for (std::size_t ni = 0; ni < ctx.neighbors().size(); ++ni) {
      outbox_[ni].emplace(std::pair{d, src}, 0);
    }
  }

  const std::vector<NodeId>* sources_;
  std::size_t depth_limit_;  // qlint-allow(unsnapshotted-state): factory-reconstructed config
  std::vector<std::size_t> dist_;
  std::vector<NodeId> parent_;
  // Per-neighbor priority queue keyed by (distance, source).
  std::vector<std::map<std::pair<std::size_t, std::size_t>, int>> outbox_;
};

constexpr std::int32_t kTagEchoParent = 21;
constexpr std::int32_t kTagEchoDone = 22;
constexpr std::int32_t kTagEchoMax = 23;

/// The echo phase of Lemma 20: children register with their BFS parents
/// (PARENT per source, then one DONE per edge); once a node has heard DONE
/// from every neighbor and the echoes of all its registered children for a
/// source, it forwards the subtree's distance maximum to its own parent.
/// Sources collect their eccentricities.
class EccEchoProgram final : public NodeProgram {
 public:
  EccEchoProgram(const std::vector<NodeId>* sources,
                 const std::vector<std::size_t>* dist,
                 const std::vector<NodeId>* parent)
      : sources_(sources), dist_(dist), parent_(parent) {}

  const std::vector<std::size_t>& eccentricity() const { return ecc_; }

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    const std::size_t slots = sources_->size();
    const auto& adj = ctx.neighbors();
    if (ctx.round() == 0) {
      ecc_.assign(slots, 0);
      expected_.assign(slots, 0);
      echoed_.assign(slots, false);
      subtree_max_.assign(slots, 0);
      outbox_.resize(adj.size());
      for (std::size_t i = 0; i < slots; ++i) {
        subtree_max_[i] = (*dist_)[i] == kUnreachable ? 0 : (*dist_)[i];
        if ((*parent_)[i] != kUnreachable) {
          queue_to(ctx, (*parent_)[i],
                   Word{kTagEchoParent, static_cast<std::int64_t>(i), 0, false});
        }
      }
      for (std::size_t ni = 0; ni < adj.size(); ++ni) {
        outbox_[ni].push_back(Word{kTagEchoDone, 0, 0, false});
      }
    }
    for (const Message& m : inbox) {
      switch (m.word.tag) {
        case kTagEchoParent:
          ++expected_[static_cast<std::size_t>(m.word.a)];
          break;
        case kTagEchoDone:
          ++dones_;
          break;
        case kTagEchoMax: {
          auto slot = static_cast<std::size_t>(m.word.a);
          --expected_[slot];
          subtree_max_[slot] = std::max(
              subtree_max_[slot], static_cast<std::size_t>(m.word.b));
          break;
        }
        default:
          break;
      }
    }
    if (dones_ == adj.size()) {
      for (std::size_t i = 0; i < slots; ++i) {
        if (echoed_[i] || expected_[i] != 0) continue;
        echoed_[i] = true;
        if ((*parent_)[i] != kUnreachable) {
          queue_to(ctx, (*parent_)[i],
                   Word{kTagEchoMax, static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(subtree_max_[i]), false});
        } else if ((*sources_)[i] == ctx.id()) {
          ecc_[i] = subtree_max_[i];
        }
      }
    }
    for (std::size_t ni = 0; ni < outbox_.size(); ++ni) {
      auto& queue = outbox_[ni];
      for (std::size_t budget = ctx.bandwidth(); budget > 0 && !queue.empty();
           --budget) {
        ctx.send(adj[ni], queue.front());
        queue.pop_front();
      }
    }
  }

  bool snapshot(std::vector<std::int64_t>& out) const override {
    out.push_back(static_cast<std::int64_t>(ecc_.size()));
    for (std::size_t e : ecc_) out.push_back(static_cast<std::int64_t>(e));
    for (std::size_t e : expected_) out.push_back(static_cast<std::int64_t>(e));
    for (bool e : echoed_) out.push_back(e ? 1 : 0);
    for (std::size_t m : subtree_max_) out.push_back(static_cast<std::int64_t>(m));
    out.push_back(static_cast<std::int64_t>(dones_));
    out.push_back(static_cast<std::int64_t>(outbox_.size()));
    for (const auto& queue : outbox_) {
      out.push_back(static_cast<std::int64_t>(queue.size()));
      for (const Word& w : queue) {
        out.push_back(w.tag);
        out.push_back(w.a);
        out.push_back(w.b);
        out.push_back(w.quantum ? 1 : 0);
      }
    }
    return true;
  }

  bool restore(std::uint32_t version, std::span<const std::int64_t> words) override {
    if (version != 1) return false;
    std::size_t pos = 0;
    auto take = [&](std::int64_t& out) {
      if (pos >= words.size()) return false;
      out = words[pos++];
      return true;
    };
    auto take_sizes = [&](std::vector<std::size_t>& out, std::size_t count) {
      out.assign(count, 0);
      for (std::size_t i = 0; i < count; ++i) {
        std::int64_t w = 0;
        if (!take(w)) return false;
        out[i] = static_cast<std::size_t>(w);
      }
      return true;
    };
    std::int64_t w = 0;
    if (!take(w)) return false;
    const auto slots = static_cast<std::size_t>(w);
    std::vector<std::size_t> ecc;
    std::vector<std::size_t> expected;
    std::vector<bool> echoed(slots, false);
    std::vector<std::size_t> subtree_max;
    if (!take_sizes(ecc, slots) || !take_sizes(expected, slots)) return false;
    for (std::size_t i = 0; i < slots; ++i) {
      if (!take(w)) return false;
      echoed[i] = w != 0;
    }
    if (!take_sizes(subtree_max, slots)) return false;
    if (!take(w)) return false;
    const auto dones = static_cast<std::size_t>(w);
    if (!take(w)) return false;
    std::vector<std::deque<Word>> outbox(static_cast<std::size_t>(w));
    for (auto& queue : outbox) {
      if (!take(w)) return false;
      for (auto entries = static_cast<std::size_t>(w); entries > 0; --entries) {
        std::int64_t tag = 0;
        std::int64_t a = 0;
        std::int64_t b = 0;
        std::int64_t quantum = 0;
        if (!take(tag) || !take(a) || !take(b) || !take(quantum)) return false;
        queue.push_back(Word{static_cast<std::int32_t>(tag), a, b, quantum != 0});
      }
    }
    if (pos != words.size()) return false;
    ecc_ = std::move(ecc);
    expected_ = std::move(expected);
    echoed_ = std::move(echoed);
    subtree_max_ = std::move(subtree_max);
    dones_ = dones;
    outbox_ = std::move(outbox);
    return true;
  }

  std::uint32_t state_version() const override { return 1; }

 private:
  void queue_to(Context& ctx, NodeId target, Word word) {
    const auto& adj = ctx.neighbors();
    auto it = std::find(adj.begin(), adj.end(), target);
    if (it == adj.end()) throw std::logic_error("ecc echo: parent not a neighbor");
    outbox_[static_cast<std::size_t>(it - adj.begin())].push_back(word);
  }

  const std::vector<NodeId>* sources_;
  const std::vector<std::size_t>* dist_;
  const std::vector<NodeId>* parent_;
  std::vector<std::size_t> ecc_;
  std::vector<std::size_t> expected_;   // registered children minus echoes seen
  std::vector<bool> echoed_;
  std::vector<std::size_t> subtree_max_;
  std::size_t dones_ = 0;
  std::vector<std::deque<Word>> outbox_;
};

}  // namespace

MultiBfsResult multi_source_bfs(Engine& engine, const std::vector<NodeId>& sources,
                                std::size_t depth_limit) {
  const std::size_t n = engine.graph().num_nodes();
  if (sources.empty()) throw std::invalid_argument("multi_source_bfs: no sources");
  for (NodeId s : sources) {
    if (s >= n) throw std::invalid_argument("multi_source_bfs: source out of range");
  }
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(std::make_unique<MultiBfsProgram>(&sources, depth_limit));
  }
  engine.set_program_factory([&sources, depth_limit](NodeId) {
    return std::make_unique<MultiBfsProgram>(&sources, depth_limit);
  });
  MultiBfsResult result;
  std::size_t limit = 8 * (sources.size() + n) + 32;
  result.cost = engine.run(programs, limit);
  if (!result.cost.completed) throw std::logic_error("multi_source_bfs: did not finish");
  result.dist.reserve(n);
  result.parent.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    result.dist.push_back(static_cast<MultiBfsProgram&>(*programs[v]).dist());
    result.parent.push_back(static_cast<MultiBfsProgram&>(*programs[v]).parent());
  }
  return result;
}

EccentricityEchoResult multi_source_eccentricities(Engine& engine,
                                                   const std::vector<NodeId>& sources,
                                                   std::size_t depth_limit) {
  const std::size_t n = engine.graph().num_nodes();
  EccentricityEchoResult result;
  result.bfs = multi_source_bfs(engine, sources, depth_limit);

  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(std::make_unique<EccEchoProgram>(
        &sources, &result.bfs.dist[v], &result.bfs.parent[v]));
  }
  engine.set_program_factory([&sources, &result](NodeId v) {
    return std::make_unique<EccEchoProgram>(&sources, &result.bfs.dist[v],
                                            &result.bfs.parent[v]);
  });
  std::size_t limit = 8 * (sources.size() + n) + 64;
  result.echo_cost = engine.run(programs, limit);
  if (!result.echo_cost.completed) {
    throw std::logic_error("multi_source_eccentricities: echo did not finish");
  }
  result.eccentricity.assign(sources.size(), 0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    result.eccentricity[i] =
        static_cast<EccEchoProgram&>(*programs[sources[i]]).eccentricity()[i];
  }
  return result;
}

}  // namespace qcongest::net
